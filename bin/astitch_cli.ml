(* Command-line driver.

   astitch_cli inspect <model>            graph statistics
   astitch_cli compile <model> [-b NAME]  compile + plan summary
   astitch_cli run <model> [-b NAME]      compile + execute on random params
   astitch_cli cuda <model> [-b NAME]     pseudo-CUDA of the plan
   astitch_cli dot <model>                Graphviz of the graph
   astitch_cli bench [EXPERIMENT]         paper tables/figures
   astitch_cli compare <model>            all backends side by side
   astitch_cli serve [MODEL...]           batched serving with a synthetic
                                          open-loop request generator

   compile/compare take --resilient (per-cluster graceful degradation,
   prints the degradation report) and repeatable
   --inject SITE:MODE[:SEED[:FUEL]] fault-injection options.
   run/compare/bench take --fused/--no-fused to pick the execution
   engine (fused is the default; kernels the fused engine cannot lower
   fall back to the reference path with a logged reason). *)

open Cmdliner
open Astitch_ir
open Astitch_simt
open Astitch_plan
open Astitch_runtime

let backends =
  [
    ("tf", Astitch_backends.Tf_backend.backend);
    ("xla", Astitch_backends.Xla_backend.backend);
    ("tvm", Astitch_backends.Tvm_backend.backend);
    ("ansor", Astitch_backends.Tvm_backend.ansor);
    ("trt", Astitch_backends.Trt_backend.backend);
    ("astitch", Astitch_core.Astitch.full_backend);
    ("atm", Astitch_core.Astitch.atm_backend);
    ("hdm", Astitch_core.Astitch.hdm_backend);
  ]

let lookup_backend name =
  match List.assoc_opt (String.lowercase_ascii name) backends with
  | Some b -> Ok b
  | None ->
      Error
        (Printf.sprintf "unknown backend %s (try: %s)" name
           (String.concat ", " (List.map fst backends)))

let lookup_model name ~training ~tiny =
  match Astitch_workloads.Zoo.find name with
  | None ->
      Error
        (Printf.sprintf "unknown model %s (try: %s)" name
           (String.concat ", "
              (List.map
                 (fun (e : Astitch_workloads.Zoo.entry) -> e.name)
                 Astitch_workloads.Zoo.all)))
  | Some entry ->
      if tiny then Ok (entry.tiny ())
      else if training then
        match entry.training with
        | Some t -> Ok (t ())
        | None -> Error (entry.name ^ " has no training graph")
      else Ok (entry.inference ())

(* --- Common args ---------------------------------------------------------- *)

let model_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL"
         ~doc:"Workload name: CRNN, ASR, BERT, Transformer or DIEN.")

let backend_arg =
  Arg.(value & opt string "astitch" & info [ "b"; "backend" ] ~docv:"BACKEND"
         ~doc:"Backend: tf, xla, tvm, ansor, trt, astitch, atm or hdm.")

let training_arg =
  Arg.(value & flag & info [ "training" ] ~doc:"Use the training graph.")

let tiny_arg =
  Arg.(value & flag & info [ "tiny" ] ~doc:"Use the tiny test-size variant.")

let arch_arg =
  Arg.(value & opt string "v100" & info [ "arch" ] ~docv:"ARCH"
         ~doc:"Device model: v100, t4 or a100.")

let fused_arg =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "fused" ]
              ~doc:
                "Execute through the fused engine: register scalarization, \
                 per-block staging, arena buffers (default).  Kernels the \
                 engine cannot lower automatically fall back to the \
                 reference path; each fallback logs its reason to stderr." );
          ( false,
            info [ "no-fused" ]
              ~doc:"Execute through the reference per-node engine." );
        ])

let resilient_arg =
  Arg.(value & flag
       & info [ "resilient" ]
           ~doc:"Compile with per-cluster graceful degradation and print \
                 the degradation report.")

let inject_arg =
  Arg.(value & opt_all string []
       & info [ "inject" ] ~docv:"SITE:MODE[:SEED[:FUEL]]"
           ~doc:"Arm a deterministic fault (repeatable). Compile sites: \
                 clustering, dominant-merging, mem-planning, launch-config, \
                 codegen; runtime sites: kernel-exec, staged-restage, pack, \
                 unpack, worker-loop; modes: raise, corrupt, stall.")

let parse_injects specs =
  List.fold_left
    (fun acc s ->
      match acc with
      | Error _ -> acc
      | Ok ps -> (
          match Fault.plan_of_string s with
          | Some p -> Ok (ps @ [ p ])
          | None ->
              Error
                (Printf.sprintf
                   "bad --inject %S (want SITE:MODE[:SEED[:FUEL]]; sites: %s)"
                   s
                   (String.concat ", "
                      (List.map Fault.site_to_string Fault.every_site)))))
    (Ok []) specs

(* Fault plans belong to an AStitch config; injecting into a baseline
   backend has no sites to hit. *)
let config_for_backend name =
  match String.lowercase_ascii name with
  | "astitch" -> Some Astitch_core.Config.full
  | "atm" -> Some Astitch_core.Config.atm_only
  | "hdm" -> Some Astitch_core.Config.no_dominant_merging
  | _ -> None

let with_arch name f =
  match Arch.by_name name with
  | Some arch -> f arch
  | None -> `Error (false, "unknown arch " ^ name)

let pp_cache_stats (s : Plan_cache.stats) =
  Format.printf "cache: %a@." Plan_cache.pp_stats s

(* --- Observability surface ------------------------------------------------- *)

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Collect compile/exec spans and write a Chrome trace-event \
                 JSON file (loadable in Perfetto or chrome://tracing).")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print the metrics registry (counters, gauges, latency \
                 histograms with p50/p95/p99) when the command finishes.")

(* Install a trace sink around [f] when [--trace FILE] was given; on the
   way out export the collected records and, with [--metrics], dump the
   process-wide registry.  The finally block runs even when [f] fails, so
   a trace of a crashing run is still written. *)
let with_obs ~trace ~metrics f =
  if trace <> None then Astitch_obs.Trace.install ();
  Fun.protect
    ~finally:(fun () ->
      (match trace with
      | Some path ->
          let records = Astitch_obs.Trace.uninstall () in
          Astitch_obs.Chrome_trace.to_file ~path records;
          Printf.printf "trace: %d records -> %s\n" (List.length records) path
      | None -> ());
      if metrics then
        Format.printf "%a@." Astitch_obs.Metrics.pp Astitch_obs.Metrics.default)
    f

(* --- Subcommands ------------------------------------------------------------ *)

let inspect model training tiny =
  match lookup_model model ~training ~tiny with
  | Error e -> `Error (false, e)
  | Ok g ->
      let st = Graph.stats g in
      Printf.printf "%s: %d ops\n" model st.total_ops;
      Printf.printf "  memory-intensive:  %d\n" st.memory_intensive_ops;
      Printf.printf "  compute-intensive: %d\n" st.compute_intensive_ops;
      Printf.printf "  reduces:           %d\n" st.reduce_ops;
      Printf.printf "  broadcasts:        %d\n" st.broadcast_ops;
      Printf.printf "  heavy element-wise:%d\n" st.heavy_elementwise_ops;
      let clusters = Clustering.clusters g in
      Printf.printf "  stitch scopes:     %d (largest %d ops)\n"
        (List.length clusters)
        (List.fold_left
           (fun acc (c : Clustering.cluster) ->
             Stdlib.max acc (List.length c.nodes))
           0 clusters);
      `Ok ()

let compile model backend training tiny arch resilient injects use_cache
    repeat jobs =
  match
    (lookup_model model ~training ~tiny, lookup_backend backend,
     parse_injects injects)
  with
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> `Error (false, e)
  | Ok g, Ok b, Ok faults ->
      let repeat = Stdlib.max 1 repeat in
      let jobs = Astitch_core.Config.resolve_domains jobs in
      with_arch arch (fun arch ->
          if resilient then begin
            match config_for_backend backend with
            | None ->
                `Error
                  ( false,
                    "--resilient needs an AStitch-family backend (astitch, \
                     atm or hdm)" )
            | Some base -> (
            let config =
              { base with Astitch_core.Config.faults; compile_domains = jobs }
            in
            let cache = Session.make_resilient_cache () in
            let compile_once () =
              if use_cache then
                Session.compile_resilient_cached ~config cache arch g
              else (Session.compile_resilient ~config arch g, Plan_cache.Miss)
            in
            let last = ref (compile_once ()) in
            for i = 2 to repeat do
              if use_cache then
                Printf.printf "compile %d/%d: %s\n" (i - 1) repeat
                  (Plan_cache.outcome_to_string (snd !last));
              last := compile_once ()
            done;
            match !last with
            | Error e, _ -> `Error (false, Compile_error.to_string e)
            | Ok { result; report }, outcome ->
                if use_cache then begin
                  Printf.printf "compile %d/%d: %s\n" repeat repeat
                    (Plan_cache.outcome_to_string outcome);
                  pp_cache_stats (Plan_cache.stats cache)
                end;
                Format.printf "%a@." Kernel_plan.pp result.plan;
                Format.printf "%a@." Astitch_core.Degradation.pp_report report;
                Format.printf "%a@." Profile.pp_breakdown result.profile;
                `Ok ())
          end
          else if faults <> [] then
            (* non-resilient injection: the compile either survives or
               reports a structured error -- never a bare exception *)
            match config_for_backend backend with
            | None ->
                `Error
                  ( false,
                    "--inject without --resilient needs an AStitch-family \
                     backend (astitch, atm or hdm)" )
            | Some base -> (
                let config = { base with Astitch_core.Config.faults } in
                let b = Astitch_core.Astitch.backend ~config () in
                let cache = Session.make_cache () in
                let compile_once () =
                  if use_cache then Session.compile_cached cache b arch g
                  else (Session.compile b arch g, Plan_cache.Miss)
                in
                match compile_once () with
                | r, outcome ->
                    if use_cache then begin
                      (* fault-injected compiles never enter the cache *)
                      Printf.printf "compile 1/1: %s\n"
                        (Plan_cache.outcome_to_string outcome);
                      pp_cache_stats (Plan_cache.stats cache)
                    end;
                    Format.printf "%a@." Kernel_plan.pp r.plan;
                    Format.printf "%a@." Profile.pp_breakdown r.profile;
                    `Ok ()
                | exception Compile_error.Error e ->
                    `Error (false, Compile_error.to_string e))
          else
            let b =
              if jobs <= 1 then b
              else
                match config_for_backend backend with
                | Some base ->
                    Astitch_core.Astitch.backend
                      ~config:
                        { base with Astitch_core.Config.compile_domains = jobs }
                      ()
                | None -> b
            in
            let cache = Session.make_cache () in
            let compile_once () =
              if use_cache then Session.compile_cached cache b arch g
              else (Session.compile b arch g, Plan_cache.Miss)
            in
            let r = ref (compile_once ()) in
            for i = 2 to repeat do
              if use_cache then
                Printf.printf "compile %d/%d: %s\n" (i - 1) repeat
                  (Plan_cache.outcome_to_string (snd !r));
              r := compile_once ()
            done;
            let result, outcome = !r in
            if use_cache then begin
              Printf.printf "compile %d/%d: %s\n" repeat repeat
                (Plan_cache.outcome_to_string outcome);
              pp_cache_stats (Plan_cache.stats cache)
            end;
            Format.printf "%a@." Kernel_plan.pp result.plan;
            Format.printf "%a@." Profile.pp_breakdown result.profile;
            `Ok ())

let log_fallbacks ctx =
  List.iter
    (fun (kernel, reason) ->
      Printf.eprintf "fallback: kernel %s -> reference path (%s)\n%!" kernel
        reason)
    (Executor.context_fallbacks ctx)

let run_model model backend training tiny arch seed repeat fused profile_exec
    use_cache trace metrics =
  match (lookup_model model ~training ~tiny, lookup_backend backend) with
  | Error e, _ | _, Error e -> `Error (false, e)
  | Ok g, Ok b ->
      with_arch arch (fun arch ->
          with_obs ~trace ~metrics (fun () ->
          let repeat = Stdlib.max 1 repeat in
          let r =
            if use_cache then begin
              (* one cached compile per run iteration: the first is a miss,
                 the rest hit, and the stats line proves it *)
              let cache = Session.make_cache () in
              let last = ref None in
              for i = 1 to repeat do
                let r, outcome = Session.compile_cached cache b arch g in
                Printf.printf "compile %d/%d: %s\n" i repeat
                  (Plan_cache.outcome_to_string outcome);
                last := Some r
              done;
              pp_cache_stats (Plan_cache.stats cache);
              Option.get !last
            end
            else Session.compile b arch g
          in
          (* --profile-exec, --metrics and --trace all need per-kernel wall
             time, so any of them implies a timed context: wall_ns is never
             silently zero in a profiled report *)
          let timed = profile_exec || metrics || trace <> None in
          let ctx = Executor.create_context ~fused ~timed r.Session.plan in
          log_fallbacks ctx;
          let params = Session.random_params ~seed g in
          let outputs = ref [] in
          let t0 = Unix.gettimeofday () in
          for _ = 1 to repeat do
            outputs := Executor.run_context ctx ~params
          done;
          let per_run_us =
            (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int repeat
          in
          List.iteri
            (fun i t ->
              let data = Astitch_tensor.Tensor.data t in
              let sum = Array.fold_left ( +. ) 0. data in
              Printf.printf "output %d: shape %s  sum %.6g\n" i
                (Shape.to_string (Astitch_tensor.Tensor.shape t))
                sum)
            !outputs;
          Printf.printf "%d run(s), %.1f us/run, %s execution\n" repeat
            per_run_us
            (if fused then "fused" else "reference");
          if profile_exec || metrics then
            Profile.publish_exec (Executor.exec_report ctx);
          if profile_exec then
            Format.printf "%a@." Profile.pp_exec (Executor.exec_report ctx);
          `Ok ()))

let cuda model backend training tiny arch =
  match (lookup_model model ~training ~tiny, lookup_backend backend) with
  | Error e, _ | _, Error e -> `Error (false, e)
  | Ok g, Ok b ->
      with_arch arch (fun arch ->
          let r = Session.compile b arch g in
          print_string (Astitch_core.Codegen.emit_plan r.plan);
          `Ok ())

let dot model training tiny =
  match lookup_model model ~training ~tiny with
  | Error e -> `Error (false, e)
  | Ok g ->
      print_string (Dot.to_string g);
      `Ok ()

let compare_cmd model training tiny arch resilient injects fused trace metrics
    =
  match (lookup_model model ~training ~tiny, parse_injects injects) with
  | Error e, _ | _, Error e -> `Error (false, e)
  | Ok g, Ok faults ->
      with_arch arch (fun arch ->
          with_obs ~trace ~metrics (fun () ->
          let params = Session.random_params ~seed:11 g in
          Printf.printf "%-10s %10s %8s %14s %14s %12s\n" "backend" "kernels"
            "CPY" "time (us)" "vs TF"
            (if fused then "run (us)" else "ref-run (us)");
          let tf_time = ref 0. in
          let print_row name (r : Session.result) =
            let t = r.profile.Profile.total_time_us in
            if name = "tf" then tf_time := t;
            (* measured execution of this backend's plan, median of 3 *)
            let ctx = Executor.create_context ~fused r.Session.plan in
            log_fallbacks ctx;
            ignore (Executor.run_context ctx ~params);
            let samples =
              Array.init 3 (fun _ ->
                  let t0 = Unix.gettimeofday () in
                  ignore
                    (Sys.opaque_identity (Executor.run_context ctx ~params));
                  (Unix.gettimeofday () -. t0) *. 1e6)
            in
            Array.sort compare samples;
            Printf.printf "%-10s %10d %8d %14.1f %13.2fx %12.1f\n" name
              (Profile.mem_kernel_count r.profile)
              (Kernel_plan.cpy_count r.plan)
              t
              (if !tf_time > 0. then !tf_time /. t else 1.)
              samples.(1)
          in
          List.iter (fun (name, b) -> print_row name (Session.compile b arch g))
            backends;
          if resilient then begin
            let config = { Astitch_core.Config.full with faults } in
            match Session.compile_resilient ~config arch g with
            | Error e -> `Error (false, Compile_error.to_string e)
            | Ok { result; report } ->
                print_row "resilient" result;
                Format.printf "%a@." Astitch_core.Degradation.pp_report report;
                `Ok ()
          end
          else `Ok ()))

let explain model backend training tiny arch top =
  match (lookup_model model ~training ~tiny, lookup_backend backend) with
  | Error e, _ | _, Error e -> `Error (false, e)
  | Ok g, Ok b ->
      with_arch arch (fun arch ->
          let r = Session.compile b arch g in
          Format.printf "%a@.@." Profile.pp_breakdown r.profile;
          Printf.printf "%-22s %-8s %-18s %6s %6s %9s %9s %9s %4s\n" "kernel"
            "kind" "launch" "occ" "sm-eff" "mem(us)" "comp(us)" "exec(us)"
            "bar";
          List.iteri
            (fun i (kp : Profile.kernel_profile) ->
              if i < top then begin
                let k = kp.kernel in
                Printf.printf "%-22s %-8s %-18s %5.0f%% %5.0f%% %9.2f %9.2f %9.2f %4d\n"
                  (if String.length k.name > 22 then String.sub k.name 0 22
                   else k.name)
                  (match k.kind with
                  | Kernel_plan.Codegen -> "codegen"
                  | Kernel_plan.Library -> "library"
                  | Kernel_plan.Copy -> "copy")
                  (Printf.sprintf "<<<%d,%d>>>" k.launch.Launch.grid
                     k.launch.Launch.block)
                  (100. *. kp.estimate.occupancy)
                  (100. *. kp.estimate.sm_efficiency)
                  kp.estimate.memory_time_us kp.estimate.compute_time_us
                  kp.estimate.exec_time_us k.barriers
              end)
            (List.sort
               (fun (a : Profile.kernel_profile) b ->
                 compare b.estimate.exec_time_us a.estimate.exec_time_us)
               r.profile.kernels);
          `Ok ())

let text model training tiny simplify =
  match lookup_model model ~training ~tiny with
  | Error e -> `Error (false, e)
  | Ok g ->
      let g =
        if simplify then begin
          let g', stats = Simplify.run g in
          Format.eprintf "# simplified: %a@." Simplify.pp_stats stats;
          g'
        end
        else g
      in
      print_string (Text_format.to_string g);
      `Ok ()

let parse_file path backend arch =
  match lookup_backend backend with
  | Error e -> `Error (false, e)
  | Ok b ->
      with_arch arch (fun arch ->
          let ic = open_in path in
          let len = in_channel_length ic in
          let text = really_input_string ic len in
          close_in ic;
          match Text_format.parse text with
          | exception Text_format.Parse_error m -> `Error (false, m)
          | g ->
              Graph.validate g;
              let r = Session.compile b arch g in
              Format.printf "%a@." Kernel_plan.pp r.plan;
              Format.printf "%a@." Profile.pp_breakdown r.profile;
              `Ok ())

let bench experiment fused trace metrics =
  Astitch_experiments.Experiments.fused_exec_default := fused;
  with_obs ~trace ~metrics (fun () ->
      match experiment with
      | None ->
          Astitch_experiments.Experiments.run_all ();
          `Ok ()
      | Some name -> (
          match
            List.find_opt
              (fun (n, _, _) -> n = name)
              Astitch_experiments.Experiments.all
          with
          | Some (_, _, f) ->
              f ();
              `Ok ()
          | None ->
              `Error
                ( false,
                  Printf.sprintf "unknown experiment %s (try: %s)" name
                    (String.concat ", "
                       (List.map
                          (fun (n, _, _) -> n)
                          Astitch_experiments.Experiments.all)) )))

(* --- The trace command ------------------------------------------------------ *)

(* Every compile phase the stitch pipeline runs; [trace --check] requires
   each to appear in the exported file (the CI smoke job greps for the
   same list). *)
let required_phases =
  [
    "clustering";
    "remote-stitching";
    "dominant-grouping";
    "schedule-propagation";
    "locality-placement";
    "mem-planning";
    "launch-config";
    "codegen";
    "kernel-schedule";
    "run-context";
  ]

(* Re-parse the exported file with the in-tree JSON parser and assert the
   structure real consumers rely on: a traceEvents array whose entries
   have name/ph/pid/ts, covering every compile phase and at least one
   execution span per plan kernel. *)
let validate_trace path (plan : Kernel_plan.t) =
  let ( let* ) = Result.bind in
  let module J = Astitch_obs.Json_check in
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let* root = J.parse text in
  let* events =
    match Option.bind (J.member "traceEvents" root) J.as_arr with
    | Some evs -> Ok evs
    | None -> Error "no traceEvents array"
  in
  let* names =
    List.fold_left
      (fun acc ev ->
        let* acc = acc in
        match
          ( Option.bind (J.member "name" ev) J.as_str,
            Option.bind (J.member "ph" ev) J.as_str )
        with
        | Some name, Some _ ->
            if
              J.member "pid" ev = None
              || (J.member "ts" ev = None
                 && Option.bind (J.member "ph" ev) J.as_str <> Some "M")
            then Error (Printf.sprintf "event %S lacks pid/ts" name)
            else
              let cat =
                Option.value ~default:""
                  (Option.bind (J.member "cat" ev) J.as_str)
              in
              Ok ((name, cat) :: acc)
        | _ -> Error "event without name/ph")
      (Ok []) events
  in
  let* () =
    match
      List.filter
        (fun phase -> not (List.mem_assoc phase names))
        required_phases
    with
    | [] -> Ok ()
    | missing ->
        Error ("missing compile phases: " ^ String.concat ", " missing)
  in
  let* () =
    match
      List.filter
        (fun (k : Kernel_plan.kernel) ->
          not (List.exists (fun (n, c) -> n = k.name && c = "exec") names))
        plan.kernels
    with
    | [] -> Ok ()
    | ks ->
        Error
          ("kernels without an execution span: "
          ^ String.concat ", "
              (List.map (fun (k : Kernel_plan.kernel) -> k.name) ks))
  in
  Ok (List.length events)

let trace_model model backend training tiny arch seed repeat out check summary
    =
  match (lookup_model model ~training ~tiny, lookup_backend backend) with
  | Error e, _ | _, Error e -> `Error (false, e)
  | Ok g, Ok b ->
      with_arch arch (fun arch ->
          Astitch_obs.Trace.install ();
          let finished =
            Fun.protect
              ~finally:(fun () ->
                if Astitch_obs.Trace.installed () then
                  ignore (Astitch_obs.Trace.uninstall ()))
              (fun () ->
                let r = Session.compile b arch g in
                let ctx =
                  Executor.create_context ~fused:true ~timed:true
                    r.Session.plan
                in
                let params = Session.random_params ~seed g in
                for _ = 1 to Stdlib.max 1 repeat do
                  ignore (Executor.run_context ctx ~params)
                done;
                Profile.publish_exec (Executor.exec_report ctx);
                (r.Session.plan, Astitch_obs.Trace.uninstall ()))
          in
          let plan, records = finished in
          Astitch_obs.Chrome_trace.to_file ~path:out records;
          Printf.printf "trace: %d records -> %s\n" (List.length records) out;
          if summary then begin
            Format.printf "%a@." Astitch_obs.Summary.pp records;
            Format.printf "%a@." Astitch_obs.Metrics.pp
              Astitch_obs.Metrics.default
          end;
          if check then
            match validate_trace out plan with
            | Ok n ->
                Printf.printf "check: OK (%d events, all %d compile phases, \
                               %d kernels covered)\n"
                  n
                  (List.length required_phases)
                  (List.length plan.Kernel_plan.kernels);
                `Ok ()
            | Error e -> `Error (false, "trace check failed: " ^ e)
          else `Ok ())

(* --- Serving ---------------------------------------------------------------- *)

(* Serving traces carry batch spans, not compile phases: require
   well-formed trace-event JSON with at least one "serve"-category span
   (the per-batch execution record the smoke test relies on). *)
let validate_serve_trace path =
  let ( let* ) = Result.bind in
  let module J = Astitch_obs.Json_check in
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let* root = J.parse text in
  let* events =
    match Option.bind (J.member "traceEvents" root) J.as_arr with
    | Some evs -> Ok evs
    | None -> Error "no traceEvents array"
  in
  let* cats =
    List.fold_left
      (fun acc ev ->
        let* acc = acc in
        match
          ( Option.bind (J.member "name" ev) J.as_str,
            Option.bind (J.member "ph" ev) J.as_str )
        with
        | Some name, Some ph ->
            if J.member "pid" ev = None || (J.member "ts" ev = None && ph <> "M")
            then Error (Printf.sprintf "event %S lacks pid/ts" name)
            else
              Ok
                (Option.value ~default:""
                   (Option.bind (J.member "cat" ev) J.as_str)
                :: acc)
        | _ -> Error "event without name/ph")
      (Ok []) events
  in
  if List.mem "serve" cats then Ok (List.length events)
  else Error "no serve-phase batch span in the trace"

(* An incident dump is a self-contained Chrome trace whose trigger event
   rides inside: require valid JSON, a traceEvents array, and at least
   one phase-"incident" instant (the marker [Flight.incident] emits). *)
let validate_incident_dump path =
  let ( let* ) = Result.bind in
  let module J = Astitch_obs.Json_check in
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let* root = J.parse text in
  let* events =
    match Option.bind (J.member "traceEvents" root) J.as_arr with
    | Some evs -> Ok evs
    | None -> Error (path ^ ": no traceEvents array")
  in
  if
    List.exists
      (fun ev ->
        Option.bind (J.member "cat" ev) J.as_str = Some "incident")
      events
  then Ok ()
  else Error (path ^ ": no incident marker event in the dump")

let write_serve_stats_json ~path server ~rejected =
  let module Serve = Astitch_serve.Serve in
  let module Flight = Astitch_obs.Flight in
  let s = Serve.stats server in
  let sup = Serve.supervision server in
  let d = Serve.disposition server in
  let obj fields = "{" ^ String.concat "," fields ^ "}" in
  let num name v = Printf.sprintf "\"%s\":%d" name v in
  let flt name v = Printf.sprintf "\"%s\":%.3f" name v in
  let str name v = Printf.sprintf "\"%s\":\"%s\"" name v in
  let phase_row (r : Serve.phase_latency) =
    obj
      [
        str "phase" r.phase; num "count" r.count; flt "mean_us" r.mean_us;
        flt "p50_us" r.p50_us; flt "p95_us" r.p95_us; flt "p99_us" r.p99_us;
        flt "max_us" r.max_us;
      ]
  in
  let doc =
    obj
      [
        str "schema" "astitch-serve-stats-v1";
        "\"stats\":"
        ^ obj
            [
              num "submitted" s.submitted; num "rejected" rejected;
              num "shed" s.shed; num "completed" s.completed;
              num "failed" s.failed; num "degraded" s.degraded;
              num "batches" s.batches; num "padded_rows" s.padded_rows;
              num "plan_compiles" s.plan_compiles;
              num "outstanding" s.outstanding;
              num "queue_depth" s.queue_depth;
              num "max_depth_seen" s.max_depth_seen;
              num "retried" s.retried; num "duplicates" s.duplicates;
              num "breaker_opens" s.breaker_opens;
              num "breaker_closes" s.breaker_closes;
            ];
        "\"supervision\":"
        ^ obj
            [
              num "restarts" sup.Serve.restarts;
              num "quarantined" sup.Serve.quarantined;
              num "wedged" sup.Serve.wedged;
              num "workers_alive" sup.Serve.workers_alive;
            ];
        "\"disposition\":"
        ^ obj
            [
              num "served" d.Serve.served; num "degraded" d.Serve.d_degraded;
              num "failed" d.Serve.d_failed;
              num "overloaded" d.Serve.overloaded;
              num "rejected" d.Serve.d_rejected; num "lost" d.Serve.lost;
            ];
        "\"phases\":["
        ^ String.concat "," (List.map phase_row (Serve.latency_breakdown ()))
        ^ "]";
        "\"flight\":"
        ^ obj
            [
              num "dumps" (List.length (Flight.dump_paths ()));
              num "suppressed" (Flight.suppressed ());
            ];
      ]
  in
  let oc = open_out path in
  output_string oc doc;
  output_char oc '\n';
  close_out oc

(* The p99 "blame" table: which lifecycle phase owns the tail.  The
   share column uses phase totals (mean x count), which - unlike
   quantiles - are additive and sum to the end-to-end total. *)
let print_blame_table () =
  let module Serve = Astitch_serve.Serve in
  let rows = Serve.latency_breakdown () in
  let e2e_total =
    List.fold_left
      (fun acc (r : Serve.phase_latency) ->
        if r.phase = "request" then r.mean_us *. float_of_int r.count else acc)
      0. rows
  in
  Printf.printf "p99 blame (per lifecycle phase):\n";
  Printf.printf "  %-10s %7s %9s %9s %9s %9s %9s %7s\n" "phase" "n" "mean_us"
    "p50_us" "p95_us" "p99_us" "max_us" "share";
  List.iter
    (fun (r : Serve.phase_latency) ->
      let share =
        if e2e_total <= 0. then 0.
        else 100. *. r.mean_us *. float_of_int r.count /. e2e_total
      in
      Printf.printf "  %-10s %7d %9.1f %9.0f %9.0f %9.0f %9.0f %6.1f%%\n"
        r.phase r.count r.mean_us r.p50_us r.p95_us r.p99_us r.max_us share)
    rows

let resolve_serve_models names =
  let names = if names = [] then [ "ASR"; "DIEN" ] else names in
  List.fold_left
    (fun acc name ->
      Result.bind acc (fun acc ->
          match Astitch_workloads.Zoo.find name with
          | Some e ->
              Ok ({ Astitch_serve.Serve.name = e.name; build = e.batched } :: acc)
          | None -> Error ("unknown model " ^ name)))
    (Ok []) names
  |> Result.map List.rev

let hist_line name =
  let h = Astitch_obs.Metrics.histogram Astitch_obs.Metrics.default name in
  let q p = Astitch_obs.Metrics.quantile h p in
  Printf.sprintf "p50 %.0f  p95 %.0f  p99 %.0f  (n=%d)" (q 0.5) (q 0.95)
    (q 0.99)
    (Astitch_obs.Metrics.hist_count h)

(* Chaos mode arms every runtime fault site at once, seeded: alternating
   raise/corrupt across the sites, two firings each.  Deterministic per
   [--seed], so a CI failure replays exactly. *)
let chaos_plans seed =
  List.mapi
    (fun i site ->
      Fault.plan site
        ~mode:(if (seed + i) mod 2 = 0 then Fault.Raise else Fault.Corrupt)
        ~seed:(seed + (7 * i)) ~fuel:2)
    Fault.runtime_sites

let serve_cmd_impl models workers max_batch max_wait_us queue_depth requests
    arrival deadline_us verify_every seed arch fused trace metrics chaos
    injects retry_budget breaker_threshold check blame stats_json recorder =
  match resolve_serve_models models with
  | Error e -> `Error (false, e)
  | Ok models -> (
      match parse_injects injects with
      | Error e -> `Error (false, e)
      | Ok inject_plans ->
      let fault_plans =
        inject_plans @ (if chaos then chaos_plans seed else [])
      in
      with_arch arch (fun arch ->
          let module Serve = Astitch_serve.Serve in
          let module Request = Astitch_serve.Request in
          let module Flight = Astitch_obs.Flight in
          let with_plans f =
            if fault_plans = [] then f () else Fault.with_faults fault_plans f
          in
          (match recorder with
          | None -> ()
          | Some dir ->
              (try Unix.mkdir dir 0o755
               with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
              Flight.arm ~dir ();
              Printf.printf "flight recorder: armed -> %s\n%!" dir);
          let result =
            with_obs ~trace ~metrics (fun () ->
            with_plans (fun () ->
                let config =
                  {
                    Serve.default_config with
                    workers;
                    max_batch;
                    max_wait_us;
                    queue_depth;
                    default_deadline_us = deadline_us;
                    arch;
                    fused;
                    verify_every;
                    seed;
                    retry_budget;
                    breaker_threshold;
                  }
                in
                let server = Serve.create ~config models in
                let n_models = List.length models in
                Printf.printf
                  "serve: %d model%s, %d workers, max-batch %d, window %.0fus, \
                   depth %d\n\
                   %!"
                  n_models
                  (if n_models = 1 then "" else "s")
                  workers max_batch max_wait_us queue_depth;
                List.iter
                  (fun (m : Serve.model) ->
                    Printf.printf "  %s: %s\n%!" m.Serve.name
                      (if Serve.symbolic server ~model:m.Serve.name then
                         "shape-polymorphic (1 plan, any batch size)"
                       else "fixed-extent (1 plan per batch size)"))
                  models;
                if fault_plans <> [] then
                  Printf.printf "chaos: %s\n%!"
                    (String.concat " "
                       (List.map Fault.plan_to_string fault_plans));
                Serve.warm server;
                (* Open loop: request i arrives at its own scheduled time
                   (exponential inter-arrivals at [arrival] req/s),
                   whether or not earlier requests finished - so overload
                   builds queue depth instead of slowing the generator. *)
                let st = Random.State.make [| seed |] in
                let t0 = Unix.gettimeofday () in
                let clock = ref 0. in
                let rejected = ref 0 in
                let tickets =
                  List.filter_map
                    (fun i ->
                      (if arrival > 0. then begin
                         let gap =
                           -.Float.log (1. -. Random.State.float st 1.)
                           /. arrival
                         in
                         clock := !clock +. gap;
                         let until = t0 +. !clock -. Unix.gettimeofday () in
                         if until > 0. then Unix.sleepf until
                       end);
                      let model =
                        (List.nth models (i mod n_models)).Serve.name
                      in
                      let params =
                        Serve.random_request server ~model ~seed:(seed + i)
                      in
                      match Serve.submit_async server ~model ~params with
                      | Ok t -> Some (i, t)
                      | Error _ ->
                          incr rejected;
                          None)
                    (List.init requests Fun.id)
                in
                Serve.drain server;
                let wall = Unix.gettimeofday () -. t0 in
                let done_n = ref 0
                and failed = ref 0
                and degraded = ref 0
                and shed = ref 0 in
                List.iter
                  (fun (i, t) ->
                    match Serve.await server t with
                    | Request.Done { degraded = d; _ } ->
                        incr done_n;
                        if d then incr degraded
                    | Request.Overloaded _ -> incr shed
                    | Request.Failed m ->
                        incr failed;
                        Printf.printf "request %d FAILED: %s\n" i m)
                  tickets;
                Serve.shutdown server;
                let s = Serve.stats server in
                let sup = Serve.supervision server in
                Printf.printf "admitted %d  rejected %d  shed %d\n"
                  s.submitted !rejected !shed;
                Printf.printf "completed %d  degraded %d  failed %d\n" !done_n
                  !degraded !failed;
                Printf.printf
                  "retried %d  restarts %d  quarantined %d  wedged %d  \
                   breaker open/close %d/%d\n"
                  s.retried sup.Serve.restarts sup.Serve.quarantined
                  sup.Serve.wedged s.breaker_opens s.breaker_closes;
                let mean_batch =
                  Astitch_obs.Metrics.hist_mean
                    (Astitch_obs.Metrics.histogram Astitch_obs.Metrics.default
                       "serve.batch_size")
                in
                Printf.printf
                  "batches %d  mean batch %.2f  max queue depth %d\n" s.batches
                  mean_batch s.max_depth_seen;
                Printf.printf "padded rows %d  plan compiles %d  contexts %s\n"
                  s.padded_rows s.plan_compiles
                  (String.concat " "
                     (List.map
                        (fun (name, n) -> Printf.sprintf "%s=%d" name n)
                        (Serve.context_pool_sizes server)));
                Printf.printf "wall %.3fs  throughput %.1f req/s\n" wall
                  (float_of_int !done_n /. Float.max wall 1e-9);
                Printf.printf "latency us:    %s\n" (hist_line "serve.request_us");
                Printf.printf "queue wait us: %s\n"
                  (hist_line "serve.queue_wait_us");
                if blame then print_blame_table ();
                (match stats_json with
                | None -> ()
                | Some path ->
                    write_serve_stats_json ~path server ~rejected:!rejected;
                    Printf.printf "stats json -> %s\n" path);
                (!done_n, !failed, !shed, !rejected, s.padded_rows)))
          in
          let done_n, failed, shed, rejected, padded_rows = result in
          let dumps =
            match recorder with
            | None -> []
            | Some _ ->
                let ps = Flight.dump_paths () in
                let sup = Flight.suppressed () in
                Flight.disarm ();
                Printf.printf "flight recorder: %d incident dump%s%s\n"
                  (List.length ps)
                  (if List.length ps = 1 then "" else "s")
                  (if sup = 0 then ""
                   else Printf.sprintf " (%d suppressed past the limit)" sup);
                List.iter (fun p -> Printf.printf "  %s\n" p) ps;
                ps
          in
          if not check then `Ok ()
          else
            let accounted = done_n + failed + shed + rejected in
            if failed > 0 then
              `Error (false, Printf.sprintf "check: %d requests failed" failed)
            else if done_n = 0 then `Error (false, "check: nothing completed")
            else if padded_rows <> 0 then
              `Error
                ( false,
                  Printf.sprintf
                    "check: %d padded rows executed (continuous batching \
                     promises 0)"
                    padded_rows )
            else if accounted <> requests then
              `Error
                ( false,
                  Printf.sprintf "check: %d of %d requests unaccounted for"
                    (requests - accounted) requests )
            else
              let trace_ok =
                match trace with
                | None -> Ok 0
                | Some path -> validate_serve_trace path
              in
              let dumps_ok =
                List.fold_left
                  (fun acc p -> Result.bind acc (fun () -> validate_incident_dump p))
                  (Ok ()) dumps
              in
              let stats_json_ok =
                match stats_json with
                | None -> Ok ()
                | Some path -> (
                    let ic = open_in path in
                    let text =
                      really_input_string ic (in_channel_length ic)
                    in
                    close_in ic;
                    let module J = Astitch_obs.Json_check in
                    match J.parse text with
                    | Error e -> Error (path ^ ": " ^ e)
                    | Ok root ->
                        if
                          Option.bind (J.member "schema" root) J.as_str
                          = Some "astitch-serve-stats-v1"
                        then Ok ()
                        else Error (path ^ ": missing/wrong schema field"))
              in
              match (trace_ok, dumps_ok, stats_json_ok) with
              | Error e, _, _ -> `Error (false, "check: trace invalid: " ^ e)
              | _, Error e, _ ->
                  `Error (false, "check: incident dump invalid: " ^ e)
              | _, _, Error e ->
                  `Error (false, "check: stats json invalid: " ^ e)
              | Ok events, Ok (), Ok () ->
                  Printf.printf
                    "check: OK (%d completed, 0 failed%s%s)\n" done_n
                    (if trace = None then ""
                     else Printf.sprintf ", %d trace events" events)
                    (if dumps = [] then ""
                     else
                       Printf.sprintf ", %d incident dumps valid"
                         (List.length dumps));
                  `Ok ()))

(* --- Multi-tenant zoo ------------------------------------------------------- *)

(* With no --slo the classes cycle in registration order, so a bare
   `zoo` run still exercises the whole multi-tenant scheduler: EDF
   inside the latency class, strict priority over throughput, and the
   fair-share floor keeping best-effort alive. *)
let default_slo_cycle =
  [
    Astitch_serve.Slo.Latency { deadline_us = 50_000. };
    Astitch_serve.Slo.Throughput;
    Astitch_serve.Slo.Best_effort;
  ]

let parse_slo_specs specs =
  List.fold_left
    (fun acc spec ->
      Result.bind acc (fun acc ->
          match String.index_opt spec '=' with
          | None ->
              Error
                (Printf.sprintf
                   "bad --slo %S (want MODEL=CLASS, e.g. ASR=latency:20000)"
                   spec)
          | Some i ->
              let model = String.sub spec 0 i in
              let cls =
                String.sub spec (i + 1) (String.length spec - i - 1)
              in
              if List.mem_assoc model acc then
                Error (Printf.sprintf "duplicate --slo for model %s" model)
              else (
                match Astitch_serve.Slo.of_string cls with
                | Ok s -> Ok (acc @ [ (model, s) ])
                | Error e -> Error (Printf.sprintf "bad --slo %S: %s" spec e))))
    (Ok []) specs

(* Skewed popularity: model i draws traffic proportional to 1/(i+1)
   (first-listed model is hottest), matching the zoo bench's workload
   shape so CLI runs and bench runs stress the same scheduler paths. *)
let skewed_pick st names =
  let n = Array.length names in
  let weights = Array.init n (fun i -> 1. /. float_of_int (i + 1)) in
  let total = Array.fold_left ( +. ) 0. weights in
  let u = Random.State.float st total in
  let rec go i acc =
    if i >= n - 1 then names.(n - 1)
    else
      let acc = acc +. weights.(i) in
      if u < acc then names.(i) else go (i + 1) acc
  in
  go 0 0.

(* Top-level compile spans only (one per plan compiled), not the
   backend-pass spans nested inside them: "zero" must mean zero plans
   compiled, and a nonzero count should read as a number of plans. *)
let count_compile_spans records =
  List.fold_left
    (fun acc r ->
      match r with
      | Astitch_obs.Trace.Span s
        when s.Astitch_obs.Trace.phase = "session"
             && (s.Astitch_obs.Trace.name = "compile"
                || s.Astitch_obs.Trace.name = "compile-resilient") ->
          acc + 1
      | _ -> acc)
    0 records

let zoo_cmd_impl names slo_specs plan_dir verify_plans workers max_batch
    max_wait_us queue_depth requests arrival fair_share_floor seed arch fused
    trace metrics expect_warm check =
  let names = if names = [] then [ "CRNN"; "ASR"; "DIEN" ] else names in
  match (resolve_serve_models names, parse_slo_specs slo_specs) with
  | Error e, _ | _, Error e -> `Error (false, e)
  | Ok models, Ok specs -> (
      match
        List.find_opt (fun (m, _) -> not (List.mem m names)) specs
      with
      | Some (m, _) ->
          `Error (false, Printf.sprintf "--slo names unserved model %s" m)
      | None ->
          with_arch arch (fun arch ->
              let module Serve = Astitch_serve.Serve in
              let module Slo = Astitch_serve.Slo in
              let module Zoo = Astitch_serve.Zoo in
              let module Request = Astitch_serve.Request in
              let registrations =
                List.mapi
                  (fun i (m : Serve.model) ->
                    let slo =
                      match List.assoc_opt m.Serve.name specs with
                      | Some s -> s
                      | None ->
                          if specs = [] then
                            List.nth default_slo_cycle
                              (i mod List.length default_slo_cycle)
                          else Slo.Best_effort
                    in
                    (m, slo))
                  models
              in
              let config =
                {
                  Zoo.serve =
                    {
                      Serve.default_config with
                      workers;
                      max_batch;
                      max_wait_us;
                      queue_depth;
                      arch;
                      fused;
                      seed;
                      fair_share_floor;
                    };
                  plan_dir;
                  verify_plans;
                }
              in
              let result =
                with_obs ~trace ~metrics (fun () ->
                  let zoo = Zoo.create ~config registrations in
                  let server = Zoo.server zoo in
                  let n_models = List.length models in
                  Printf.printf
                    "zoo: %d model%s, %d workers, max-batch %d, depth %d, \
                     floor %.3f%s\n\
                     %!"
                    n_models
                    (if n_models = 1 then "" else "s")
                    workers max_batch queue_depth fair_share_floor
                    (match plan_dir with
                    | None -> ""
                    | Some d -> Printf.sprintf ", plan-dir %s" d);
                  List.iter
                    (fun ((m : Serve.model), slo) ->
                      Printf.printf "  %-12s %-16s %s\n%!" m.Serve.name
                        (Slo.to_string slo)
                        (if Serve.symbolic server ~model:m.Serve.name then
                           "shape-polymorphic"
                         else "fixed-extent"))
                    registrations;
                  let t_pre = Unix.gettimeofday () in
                  let p = Zoo.prewarm zoo in
                  Printf.printf
                    "prewarm: %.0f ms  loaded %d  verified %d  rejected %d  \
                     saved %d\n"
                    ((Unix.gettimeofday () -. t_pre) *. 1e3)
                    p.Zoo.loaded p.Zoo.verified p.Zoo.rejected p.Zoo.saved;
                  (* The line the CI smoke job greps: a restart against a
                     warm store must print "cold compiles: 0". *)
                  Printf.printf "cold compiles: %d\n%!" p.Zoo.compiled;
                  (* The flight recorder goes up only now, after prewarm:
                     any compile-phase span it captures happened while
                     serving traffic - the thing a warm store promises
                     never occurs. *)
                  Astitch_obs.Trace.recorder_install ();
                  let model_names =
                    Array.of_list
                      (List.map (fun (m : Serve.model) -> m.Serve.name) models)
                  in
                  let st = Random.State.make [| seed |] in
                  let t0 = Unix.gettimeofday () in
                  let clock = ref 0. in
                  let rejected = ref 0 in
                  let tickets =
                    List.filter_map
                      (fun i ->
                        (if arrival > 0. then begin
                           let gap =
                             -.Float.log (1. -. Random.State.float st 1.)
                             /. arrival
                           in
                           clock := !clock +. gap;
                           let until = t0 +. !clock -. Unix.gettimeofday () in
                           if until > 0. then Unix.sleepf until
                         end);
                        let model = skewed_pick st model_names in
                        let params =
                          Serve.random_request server ~model ~seed:(seed + i)
                        in
                        match Zoo.submit_async zoo ~model ~params with
                        | Ok t -> Some (i, t)
                        | Error _ ->
                            incr rejected;
                            None)
                      (List.init requests Fun.id)
                  in
                  Zoo.drain zoo;
                  let wall = Unix.gettimeofday () -. t0 in
                  let done_n = ref 0
                  and failed = ref 0
                  and degraded = ref 0
                  and shed = ref 0 in
                  List.iter
                    (fun (i, t) ->
                      match Zoo.await zoo t with
                      | Request.Done { degraded = d; _ } ->
                          incr done_n;
                          if d then incr degraded
                      | Request.Overloaded _ -> incr shed
                      | Request.Failed m ->
                          incr failed;
                          Printf.printf "request %d FAILED: %s\n" i m)
                    tickets;
                  let records = Astitch_obs.Trace.recorder_uninstall () in
                  let traffic_compiles = count_compile_spans records in
                  let saved_at_shutdown = Zoo.shutdown zoo in
                  let s = Serve.stats server in
                  let d = Serve.disposition server in
                  Printf.printf "admitted %d  rejected %d  shed %d\n"
                    s.Serve.submitted !rejected !shed;
                  Printf.printf "completed %d  degraded %d  failed %d\n"
                    !done_n !degraded !failed;
                  Printf.printf
                    "floor picks %d  displaced %d  shed-at-admission %d  \
                     lost %d\n"
                    s.Serve.floor_picks s.Serve.displaced
                    s.Serve.shed_admission d.Serve.lost;
                  Printf.printf
                    "compile-phase spans during traffic: %d\n"
                    traffic_compiles;
                  Printf.printf "plans saved at shutdown: %d\n"
                    saved_at_shutdown;
                  Printf.printf "wall %.3fs  throughput %.1f req/s\n" wall
                    (float_of_int !done_n /. Float.max wall 1e-9);
                  Printf.printf
                    "  %-12s %5s %5s %5s %5s %5s %5s %9s %8s %8s %8s %9s\n"
                    "class" "sub" "done" "shed" "rej" "fail" "met" "mean_us"
                    "p50" "p95" "p99" "goodput/s";
                  List.iter
                    (fun (c : Zoo.class_stats) ->
                      Printf.printf
                        "  %-12s %5d %5d %5d %5d %5d %5d %9.0f %8.0f %8.0f \
                         %8.0f %9.1f\n"
                        c.Zoo.cls c.Zoo.submitted c.Zoo.completed c.Zoo.shed
                        c.Zoo.rejected c.Zoo.failed c.Zoo.deadline_met
                        c.Zoo.mean_us c.Zoo.p50_us c.Zoo.p95_us c.Zoo.p99_us
                        (float_of_int c.Zoo.deadline_met
                        /. Float.max wall 1e-9))
                    (Zoo.class_stats zoo);
                  pp_cache_stats
                    (Plan_cache.stats (Serve.plan_cache server));
                  ( !done_n, !failed, !shed, !rejected, d.Serve.lost,
                    s.Serve.padded_rows, p.Zoo.compiled, p.Zoo.rejected,
                    traffic_compiles ))
              in
              let ( done_n, failed, shed, rejected, lost, padded_rows,
                    cold_compiles, gate_rejected, traffic_compiles ) =
                result
              in
              if not check then `Ok ()
              else
                let accounted = done_n + failed + shed + rejected in
                if failed > 0 then
                  `Error
                    (false, Printf.sprintf "check: %d requests failed" failed)
                else if done_n = 0 then
                  `Error (false, "check: nothing completed")
                else if accounted <> requests then
                  `Error
                    ( false,
                      Printf.sprintf
                        "check: %d of %d requests unaccounted for"
                        (requests - accounted) requests )
                else if lost <> 0 then
                  `Error
                    (false, Printf.sprintf "check: %d requests lost" lost)
                else if padded_rows <> 0 then
                  `Error
                    ( false,
                      Printf.sprintf
                        "check: %d padded rows executed (continuous \
                         batching promises 0)"
                        padded_rows )
                else if verify_plans && gate_rejected > 0 then
                  `Error
                    ( false,
                      Printf.sprintf
                        "check: %d plans failed the bit-identity gate"
                        gate_rejected )
                else if expect_warm && cold_compiles > 0 then
                  `Error
                    ( false,
                      Printf.sprintf
                        "check: expected a warm store but prewarm compiled \
                         %d plans"
                        cold_compiles )
                else if expect_warm && traffic_compiles > 0 then
                  `Error
                    ( false,
                      Printf.sprintf
                        "check: %d compile-phase spans during traffic (warm \
                         store promises 0)"
                        traffic_compiles )
                else
                  let trace_ok =
                    match trace with
                    | None -> Ok 0
                    | Some path -> validate_serve_trace path
                  in
                  match trace_ok with
                  | Error e -> `Error (false, "check: trace invalid: " ^ e)
                  | Ok events ->
                      Printf.printf
                        "check: OK (%d completed, 0 failed, 0 lost%s)\n"
                        done_n
                        (if trace = None then ""
                         else Printf.sprintf ", %d trace events" events);
                      `Ok ()))

(* --- Command wiring ----------------------------------------------------------- *)

let inspect_cmd =
  Cmd.v
    (Cmd.info "inspect" ~doc:"Show graph statistics for a workload")
    Term.(ret (const inspect $ model_arg $ training_arg $ tiny_arg))

let cache_arg =
  Arg.(value & flag
       & info [ "cache" ]
           ~doc:"Compile through the plan cache (keyed by canonical graph \
                 fingerprint, arch and config) and print per-iteration \
                 hit/miss outcomes plus cache statistics.")

let repeat_arg =
  Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
         ~doc:"Compile N times (interesting with --cache: the first is a \
               miss, the rest are hits).")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Compile cluster groups on N domains (AStitch-family \
               backends; plans are identical at any setting).  0 means \
               auto: the machine's recommended domain count, uncapped.")

let compile_cmd =
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a workload and print the kernel plan")
    Term.(
      ret
        (const compile $ model_arg $ backend_arg $ training_arg $ tiny_arg
       $ arch_arg $ resilient_arg $ inject_arg $ cache_arg $ repeat_arg
       $ jobs_arg))

let cuda_cmd =
  Cmd.v
    (Cmd.info "cuda" ~doc:"Emit pseudo-CUDA for a compiled workload")
    Term.(
      ret (const cuda $ model_arg $ backend_arg $ training_arg $ tiny_arg $ arch_arg))

let dot_cmd =
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz for a workload graph")
    Term.(ret (const dot $ model_arg $ training_arg $ tiny_arg))

let compare_cmds =
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare every backend on one workload")
    Term.(
      ret
        (const compare_cmd $ model_arg $ training_arg $ tiny_arg $ arch_arg
       $ resilient_arg $ inject_arg $ fused_arg $ trace_arg $ metrics_arg))

let run_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
           ~doc:"Seed for the random parameter values.")
  in
  let run_repeat_arg =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
           ~doc:"Execute N times on the prepared context and report the \
                 mean per-run wall time.")
  in
  let profile_exec_arg =
    Arg.(value & flag
         & info [ "profile-exec" ]
             ~doc:"Print per-kernel execution counters: wall time, bytes \
                   materialized vs scalarized/staged, arena high-water \
                   mark.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Compile a workload and execute it on random parameters")
    Term.(
      ret
        (const run_model $ model_arg $ backend_arg $ training_arg $ tiny_arg
       $ arch_arg $ seed_arg $ run_repeat_arg $ fused_arg
       $ profile_exec_arg $ cache_arg $ trace_arg $ metrics_arg))

let bench_cmd =
  let exp_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"EXPERIMENT"
           ~doc:"Experiment id (fig1, fig11a, table3, ...); all if omitted.")
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Reproduce the paper's tables and figures")
    Term.(ret (const bench $ exp_arg $ fused_arg $ trace_arg $ metrics_arg))

let trace_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
           ~doc:"Seed for the random parameter values.")
  in
  let trace_repeat_arg =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
           ~doc:"Execute N times so per-kernel spans repeat.")
  in
  let out_arg =
    Arg.(value & opt string "trace.json" & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Output path for the Chrome trace-event JSON.")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Re-parse the emitted file and verify it is valid JSON \
                   covering every compile phase and one execution span per \
                   kernel; exit non-zero otherwise.")
  in
  let summary_arg =
    Arg.(value & flag
         & info [ "summary" ]
             ~doc:"Also print the aggregated text summary and the metrics \
                   registry.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Compile and execute a workload under the trace sink and export \
             a Chrome trace-event JSON file")
    Term.(
      ret
        (const trace_model $ model_arg $ backend_arg $ training_arg
       $ tiny_arg $ arch_arg $ seed_arg $ trace_repeat_arg $ out_arg
       $ check_arg $ summary_arg))

let explain_cmd =
  let top_arg =
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"N"
           ~doc:"Show the N most expensive kernels.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Per-kernel cost breakdown of a compiled workload")
    Term.(
      ret
        (const explain $ model_arg $ backend_arg $ training_arg $ tiny_arg
       $ arch_arg $ top_arg))

let text_cmd =
  let simplify_arg =
    Arg.(value & flag & info [ "simplify" ]
           ~doc:"Run the simplification pass before printing.")
  in
  Cmd.v
    (Cmd.info "text" ~doc:"Emit the textual IR of a workload graph")
    Term.(ret (const text $ model_arg $ training_arg $ tiny_arg $ simplify_arg))

let parse_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Path to a graph in the textual IR format.")
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse a textual-IR file, compile and profile it")
    Term.(ret (const parse_file $ file_arg $ backend_arg $ arch_arg))

let serve_cmd =
  let models_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"MODEL"
           ~doc:"Zoo models to serve (default: ASR DIEN).")
  in
  let workers_arg =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains executing batches (0 = caller-runs: \
                 batches execute on the submitting thread during \
                 await/drain).")
  in
  let max_batch_arg =
    Arg.(value & opt int 8 & info [ "max-batch" ] ~docv:"N"
           ~doc:"Largest batch a dispatch may take.  Batches execute at \
                 exactly their request count (no padding): \
                 shape-polymorphic models compile once at this size and \
                 rebind to any smaller batch.")
  in
  let max_wait_arg =
    Arg.(value & opt float 2000. & info [ "max-wait-us" ] ~docv:"US"
           ~doc:"Batching window: a request is never held longer than this \
                 waiting for batchmates.")
  in
  let queue_depth_arg =
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"N"
           ~doc:"Admission-control bound: past this backlog, submissions \
                 are refused with a structured overload instead of \
                 queuing.")
  in
  let requests_arg =
    Arg.(value & opt int 100 & info [ "requests" ] ~docv:"N"
           ~doc:"Total synthetic requests to generate (round-robin across \
                 the models).")
  in
  let arrival_arg =
    Arg.(value & opt float 0. & info [ "arrival" ] ~docv:"RATE"
           ~doc:"Open-loop arrival rate in requests/second (exponential \
                 inter-arrivals); 0 submits as fast as possible.")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None & info [ "deadline-us" ] ~docv:"US"
           ~doc:"Per-request deadline relative to submission; expired \
                 requests are shed, not executed.")
  in
  let verify_arg =
    Arg.(value & opt int 0 & info [ "verify-every" ] ~docv:"N"
           ~doc:"Every Nth batch, re-execute its first request alone and \
                 assert the batched outputs are bit-identical (0 = off).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
           ~doc:"Seed for weights, request payloads and arrivals.")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Exit non-zero unless every admitted request completed \
                   without failure; with --trace, also re-parse the \
                   emitted JSON and require per-batch serve spans.")
  in
  let chaos_arg =
    Arg.(value & flag
         & info [ "chaos" ]
             ~doc:"Arm every runtime fault site (kernel-exec, \
                   staged-restage, pack, unpack, worker-loop) with seeded \
                   raise/corrupt faults while serving; supervision must \
                   keep every request accounted for.")
  in
  let retry_budget_arg =
    Arg.(value & opt int 2 & info [ "retry-budget" ] ~docv:"N"
           ~doc:"Failed batch executions a request survives before \
                 dropping to per-request fallback.")
  in
  let breaker_arg =
    Arg.(value & opt int 4 & info [ "breaker-threshold" ] ~docv:"N"
           ~doc:"Consecutive batch failures that open a model's circuit \
                 breaker (0 disables breakers).")
  in
  let blame_arg =
    Arg.(value & flag
         & info [ "blame" ]
             ~doc:"Print the tail-latency blame table: per-lifecycle-phase \
                   (queue, batch wait, pack, exec, unpack) latency \
                   quantiles and each phase's share of total end-to-end \
                   time.")
  in
  let stats_json_arg =
    Arg.(value & opt (some string) None
         & info [ "stats-json" ] ~docv:"FILE"
             ~doc:"Write the final serving statistics (counters, \
                   supervision, request disposition, per-phase latency \
                   percentiles) as a JSON document.")
  in
  let recorder_arg =
    Arg.(value & opt (some string) None
         & info [ "recorder" ] ~docv:"DIR"
             ~doc:"Arm the black-box flight recorder: a bounded per-domain \
                   ring of recent lifecycle events, dumped into DIR as a \
                   Chrome-trace file whenever an incident fires (batch \
                   failure, quarantine, breaker open, worker death, wedge \
                   steal).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the batched serving runtime under a synthetic open-loop \
             request generator")
    Term.(
      ret
        (const serve_cmd_impl $ models_arg $ workers_arg $ max_batch_arg
       $ max_wait_arg $ queue_depth_arg $ requests_arg $ arrival_arg
       $ deadline_arg $ verify_arg $ seed_arg $ arch_arg $ fused_arg
       $ trace_arg $ metrics_arg $ chaos_arg $ inject_arg
       $ retry_budget_arg $ breaker_arg $ check_arg $ blame_arg
       $ stats_json_arg $ recorder_arg))

let zoo_cmd =
  let models_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"MODEL"
           ~doc:"Zoo models to host (default: CRNN ASR DIEN).")
  in
  let slo_arg =
    Arg.(value & opt_all string []
         & info [ "slo" ] ~docv:"MODEL=CLASS"
             ~doc:"SLO class for a model (repeatable): \
                   MODEL=latency:DEADLINE_US, MODEL=throughput or \
                   MODEL=best-effort.  Unlisted models default to \
                   best-effort; with no --slo at all the classes cycle \
                   latency/throughput/best-effort in model order.")
  in
  let plan_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "plan-dir" ] ~docv:"DIR"
             ~doc:"Persistent plan store: prewarm loads each model's plans \
                   from DIR instead of compiling (saving fresh compiles \
                   back), and shutdown persists everything compiled since. \
                   A restart against the same DIR reports \"cold compiles: \
                   0\".")
  in
  let verify_plans_arg =
    Arg.(value & flag
         & info [ "verify-plans" ]
             ~doc:"Bit-identity gate: recompile every store-loaded plan and \
                   require its canonical encoding to equal the fresh \
                   compile's, discarding mismatches.  Costs the compiles \
                   the store was saving - a verification mode, not the \
                   serving default.")
  in
  let workers_arg =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains executing batches (0 = caller-runs).")
  in
  let max_batch_arg =
    Arg.(value & opt int 8 & info [ "max-batch" ] ~docv:"N"
           ~doc:"Largest batch a dispatch may take.")
  in
  let max_wait_arg =
    Arg.(value & opt float 2000. & info [ "max-wait-us" ] ~docv:"US"
           ~doc:"Batching window.")
  in
  let queue_depth_arg =
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"N"
           ~doc:"Admission-control bound across models; past it, \
                 best-effort entries are displaced to admit higher \
                 classes before anything is refused.")
  in
  let requests_arg =
    Arg.(value & opt int 100 & info [ "requests" ] ~docv:"N"
           ~doc:"Total synthetic requests, drawn across models with \
                 skewed popularity (first-listed model hottest).")
  in
  let arrival_arg =
    Arg.(value & opt float 0. & info [ "arrival" ] ~docv:"RATE"
           ~doc:"Open-loop arrival rate in requests/second (exponential \
                 inter-arrivals); 0 submits as fast as possible.")
  in
  let floor_arg =
    Arg.(value & opt float 0.125 & info [ "fair-share-floor" ] ~docv:"F"
           ~doc:"Fraction of dispatches reserved for the least-served \
                 model, so best-effort tenants keep making progress under \
                 overload (0 = pure strict priority).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
           ~doc:"Seed for weights, request payloads, popularity draws and \
                 arrivals.")
  in
  let expect_warm_arg =
    Arg.(value & flag
         & info [ "expect-warm" ]
             ~doc:"With --check: fail unless prewarm compiled nothing \
                   (every plan came from the store) and no compile-phase \
                   span occurred while serving traffic.")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Exit non-zero unless every request is accounted for \
                   with zero failures and zero lost; composes with \
                   --verify-plans (no gate rejections), --expect-warm \
                   (zero cold compiles) and --trace (valid serve spans).")
  in
  Cmd.v
    (Cmd.info "zoo"
       ~doc:"Host a multi-tenant model zoo: SLO-class scheduling over a \
             shared worker pool with a persistent plan store")
    Term.(
      ret
        (const zoo_cmd_impl $ models_arg $ slo_arg $ plan_dir_arg
       $ verify_plans_arg $ workers_arg $ max_batch_arg $ max_wait_arg
       $ queue_depth_arg $ requests_arg $ arrival_arg $ floor_arg
       $ seed_arg $ arch_arg $ fused_arg $ trace_arg $ metrics_arg
       $ expect_warm_arg $ check_arg))

let main =
  Cmd.group
    (Cmd.info "astitch_cli" ~version:"1.0"
       ~doc:"AStitch (ASPLOS'22) reproduction: ML-compiler stitching on a \
             simulated SIMT GPU")
    [
      inspect_cmd; compile_cmd; run_cmd; cuda_cmd; dot_cmd; compare_cmds;
      bench_cmd; text_cmd; parse_cmd; explain_cmd; trace_cmd; serve_cmd;
      zoo_cmd;
    ]

let () = exit (Cmd.eval main)
