(* Batched-serving throughput benchmark: the server vs a sequential
   per-request loop.

   For each zoo workload, [requests] identical-shape requests are
   pushed through two paths:

     sequential - per-request execution as a non-batching deployment
                  would do it: a plan-cache lookup (always a hit after
                  the first request) plus one [Executor.run] per
                  request.  Compilation is amortized; what this
                  baseline does NOT have is exactly what the serving
                  runtime adds - pooled reusable contexts and dynamic
                  batching - which is the subsystem under test.

     serve      - the batched serving runtime: open-loop submission of
                  all requests at once (so >= max_batch are in flight
                  throughout - request concurrency 8 with the default
                  cap), continuous batching (every dispatch executes at
                  exactly its request count, no padded rows), pooled
                  shape-polymorphic contexts on the worker pool, drain.

   The worker-domain count adapts to the machine: on a many-core host
   the pool (capped at 8 domains) adds real parallelism on top of
   batching; on a 1-core runner worker domains only add stop-the-world
   GC synchronization, so the bench uses caller-runs mode (workers = 0)
   and batching plus context reuse carry the win alone.

   A third leg exercises the continuous-batching contract directly:
   bursts of ODD sizes (3, 5, 7, ... - sizes the old power-of-two
   bucketing always padded) arrive with exponential gaps at an odd
   [max_batch], and the run asserts zero padded rows, zero lost
   requests, and - for shape-polymorphic models - exactly one plan
   compile and a context pool of size 1.

   The reported speedup is served throughput over sequential
   throughput.  Results go to BENCH_serve.json one "key": value per
   line (same writer/reader convention as BENCH_serving.json - no JSON
   library in the tree).

   [check] compares a fresh quick run against the committed baseline:
   per-workload speedup must not regress below half the baseline's,
   and ASR and DIEN must keep the >= 2x acceptance bar. *)

open Astitch_simt
open Astitch_runtime
module Serve = Astitch_serve.Serve
module Request = Astitch_serve.Request

type row = {
  name : string;
  requests : int;
  workers : int;
  max_batch : int;
  seq_wall_us : float;
  seq_rps : float;
  serve_wall_us : float;
  serve_rps : float;
  speedup : float;
  batches : int;
  mean_batch : float;
  padded_rows : int;
  plan_compiles : int;
  symbolic : bool;  (** one shape-polymorphic plan served every batch *)
  lat_p50_us : float;
  lat_p95_us : float;
  lat_p99_us : float;
  phases : (string * float * float * float) list;
      (** lifecycle-phase latency decomposition, [(phase, p50, p95, p99)]
          in pipeline order - queue, batch_wait, pack, exec, unpack *)
}

(* The sequential leg: the same graphs, weights and request payloads the
   server will see, one cache-hit compile lookup + one fresh
   [Executor.run] per request - per-request execution without the serve
   runtime's context pooling or batching. *)
let sequential_leg (entry : Astitch_workloads.Zoo.entry) ~shared ~payloads =
  let g = entry.batched ~batch:1 in
  let backend = Astitch_core.Astitch.full_backend in
  let cache = Session.make_cache () in
  (* warm the cache outside the clock, mirroring Serve.warm *)
  let warm, _ = Session.compile_cached cache backend Arch.v100 g in
  (match payloads with
  | p :: _ -> ignore (Executor.run warm.Session.plan ~params:(shared @ p))
  | [] -> ());
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun p ->
      let r, _ = Session.compile_cached cache backend Arch.v100 g in
      ignore
        (Sys.opaque_identity (Executor.run r.Session.plan ~params:(shared @ p))))
    payloads;
  (Unix.gettimeofday () -. t0) *. 1e6

let serve_leg (entry : Astitch_workloads.Zoo.entry) ~workers ~max_batch
    ~payloads =
  let config =
    {
      Serve.default_config with
      workers;
      max_batch;
      max_wait_us = 500.;
      queue_depth = 2 * List.length payloads;
    }
  in
  let server =
    Serve.create ~config
      [ { Serve.name = entry.name; build = entry.batched } ]
  in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown server)
    (fun () ->
      Serve.warm server;
      let t0 = Unix.gettimeofday () in
      let tickets =
        List.map
          (fun params ->
            match Serve.submit_async server ~model:entry.name ~params with
            | Ok t -> t
            | Error o ->
                failwith
                  (Printf.sprintf "%s: request refused: %s" entry.name
                     (Request.overload_to_string o)))
          payloads
      in
      Serve.drain server;
      let wall = (Unix.gettimeofday () -. t0) *. 1e6 in
      List.iter
        (fun t ->
          match Serve.await server t with
          | Request.Done _ -> ()
          | Request.Failed m ->
              failwith (Printf.sprintf "%s: request failed: %s" entry.name m)
          | Request.Overloaded o ->
              failwith
                (Printf.sprintf "%s: request shed: %s" entry.name
                   (Request.overload_to_string o)))
        tickets;
      let stats = Serve.stats server in
      let symbolic = Serve.symbolic server ~model:entry.name in
      (wall, stats, symbolic))

let bench_workload ~requests ~workers ~max_batch
    (entry : Astitch_workloads.Zoo.entry) =
  (* one spec analysis to generate identical weights/payloads for both
     legs; the server regenerates the same weights from the same seed *)
  let spec = Astitch_serve.Batching.analyze (fun b -> entry.batched ~batch:b) in
  let payloads =
    List.init requests (fun i ->
        Astitch_serve.Batching.random_request spec ~seed:(Serve.default_config.seed + i))
  in
  let reg = Astitch_obs.Metrics.default in
  Astitch_obs.Metrics.reset reg;
  let serve_wall_us, stats, symbolic =
    serve_leg entry ~workers ~max_batch ~payloads
  in
  let h = Astitch_obs.Metrics.histogram reg "serve.request_us" in
  let lat_p50_us = Astitch_obs.Metrics.quantile h 0.50
  and lat_p95_us = Astitch_obs.Metrics.quantile h 0.95
  and lat_p99_us = Astitch_obs.Metrics.quantile h 0.99 in
  (* the per-phase decomposition captured during the serve leg (the
     registry was reset just before it, so these are this workload's) *)
  let phases =
    List.map
      (fun phase ->
        let h =
          Astitch_obs.Metrics.histogram reg ("serve." ^ phase ^ "_us")
        in
        let q p = Astitch_obs.Metrics.quantile h p in
        (phase, q 0.50, q 0.95, q 0.99))
      [ "queue"; "batch_wait"; "pack"; "exec"; "unpack" ]
  in
  let mean_batch =
    Astitch_obs.Metrics.hist_mean
      (Astitch_obs.Metrics.histogram reg "serve.batch_size")
  in
  (* the server's shared weights: regenerate through its own recipe so
     the sequential leg computes the same numbers *)
  let shared =
    let server =
      Serve.create
        ~config:{ Serve.default_config with workers = 1 }
        [ { Serve.name = entry.name; build = entry.batched } ]
    in
    Fun.protect
      ~finally:(fun () -> Serve.shutdown server)
      (fun () -> Serve.shared_weights server ~model:entry.name)
  in
  let seq_wall_us = sequential_leg entry ~shared ~payloads in
  let n = float_of_int requests in
  let seq_rps = n /. (seq_wall_us /. 1e6)
  and serve_rps = n /. (serve_wall_us /. 1e6) in
  {
    name = entry.name;
    requests;
    workers;
    max_batch;
    seq_wall_us;
    seq_rps;
    serve_wall_us;
    serve_rps;
    speedup = serve_rps /. seq_rps;
    batches = stats.Serve.batches;
    mean_batch;
    padded_rows = stats.Serve.padded_rows;
    plan_compiles = stats.Serve.plan_compiles;
    symbolic;
    lat_p50_us;
    lat_p95_us;
    lat_p99_us;
    phases;
  }

(* --- Continuous-batching leg --------------------------------------------- *)

(* Bursts of odd sizes with exponential inter-burst gaps, served
   caller-runs at an odd [max_batch]: every shape the power-of-two
   bucketing used to pad.  Each burst is awaited before the next
   arrives, so it dispatches as one batch of exactly its (odd) size
   once the batching window expires.  Asserts the continuous-batching
   contract: zero padded rows, zero lost requests, and for a
   shape-polymorphic model exactly one plan compile and a context pool
   of size 1. *)
let continuous_leg (entry : Astitch_workloads.Zoo.entry) =
  let max_batch = 7 in
  let bursts = [ 3; 5; 7; 1; 5; 3 ] in
  let config =
    {
      Serve.default_config with
      workers = 0;
      max_batch;
      max_wait_us = 300.;
      queue_depth = 64;
    }
  in
  let server =
    Serve.create ~config [ { Serve.name = entry.name; build = entry.batched } ]
  in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown server)
    (fun () ->
      Serve.warm server;
      let st = Random.State.make [| 0xC0FFEE |] in
      let seed = ref 0 in
      List.iter
        (fun burst ->
          (* exponential gap between bursts (mean 1 ms) *)
          Unix.sleepf
            (-.Float.log (1. -. Random.State.float st 1.) /. 1000.);
          let tickets =
            List.init burst (fun _ ->
                incr seed;
                let params =
                  Serve.random_request server ~model:entry.name ~seed:!seed
                in
                match Serve.submit_async server ~model:entry.name ~params with
                | Ok t -> t
                | Error o ->
                    failwith
                      (Printf.sprintf "%s: continuous leg refused: %s"
                         entry.name
                         (Request.overload_to_string o)))
          in
          List.iter
            (fun t ->
              match Serve.await server t with
              | Request.Done { degraded = false; _ } -> ()
              | Request.Done { degraded = true; _ } ->
                  failwith (entry.name ^ ": continuous leg degraded")
              | Request.Failed m ->
                  failwith (entry.name ^ ": continuous leg failed: " ^ m)
              | Request.Overloaded o ->
                  failwith
                    (entry.name ^ ": continuous leg shed: "
                   ^ Request.overload_to_string o))
            tickets)
        bursts;
      Serve.drain server;
      let stats = Serve.stats server in
      let disp = Serve.disposition server in
      let symbolic = Serve.symbolic server ~model:entry.name in
      let pool_sizes = Serve.context_pool_sizes server in
      if stats.Serve.padded_rows <> 0 then
        failwith
          (Printf.sprintf "%s: %d padded rows under continuous batching"
             entry.name stats.Serve.padded_rows);
      if disp.Serve.lost <> 0 then
        failwith
          (Printf.sprintf "%s: %d requests lost" entry.name disp.Serve.lost);
      if symbolic then begin
        if stats.Serve.plan_compiles <> 1 then
          failwith
            (Printf.sprintf
               "%s: %d plan compiles for a shape-polymorphic model (want 1)"
               entry.name stats.Serve.plan_compiles);
        match pool_sizes with
        | [ (_, 1) ] -> ()
        | _ ->
            failwith
              (Printf.sprintf "%s: context pool is not a single context"
                 entry.name)
      end;
      Printf.printf
        "continuous %-12s OK: %d odd-size batches, 0 padded rows, %d plan \
         compile%s, pool %s [%s]\n"
        entry.name stats.Serve.batches stats.Serve.plan_compiles
        (if stats.Serve.plan_compiles = 1 then "" else "s")
        (String.concat "+"
           (List.map (fun (_, n) -> string_of_int n) pool_sizes))
        (if symbolic then "symbolic" else "fixed"))

(* --- Reporting ----------------------------------------------------------- *)

let print_table rows =
  (match rows with
  | r :: _ ->
      Printf.printf
        "=== Batched serving vs sequential (max batch %d, workers %d%s) ===\n"
        r.max_batch r.workers
        (if r.workers = 0 then " [caller-runs]" else "")
  | [] -> ());
  Printf.printf
    "%-12s %8s %12s %12s %12s %12s %8s %8s %10s %6s %8s %5s %9s %9s %9s\n"
    "workload" "requests" "seq-wall-us" "seq-rps" "serve-wall" "serve-rps"
    "speedup" "batches" "mean-batch" "padded" "compiles" "plan" "lat-p50"
    "lat-p95" "lat-p99";
  List.iter
    (fun r ->
      Printf.printf
        "%-12s %8d %12.0f %12.1f %12.0f %12.1f %7.2fx %8d %10.2f %6d %8d \
         %5s %9.0f %9.0f %9.0f\n"
        r.name r.requests r.seq_wall_us r.seq_rps r.serve_wall_us r.serve_rps
        r.speedup r.batches r.mean_batch r.padded_rows r.plan_compiles
        (if r.symbolic then "sym" else "fixed")
        r.lat_p50_us r.lat_p95_us r.lat_p99_us)
    rows

let write_json ~path ~quick rows =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"astitch-serve-bench-v1\",\n";
  p "  \"quick\": %b,\n" quick;
  p "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      p "    {\n";
      p "      \"name\": \"%s\",\n" r.name;
      p "      \"requests\": %d,\n" r.requests;
      p "      \"workers\": %d,\n" r.workers;
      p "      \"max_batch\": %d,\n" r.max_batch;
      p "      \"seq_wall_us\": %.1f,\n" r.seq_wall_us;
      p "      \"seq_rps\": %.1f,\n" r.seq_rps;
      p "      \"serve_wall_us\": %.1f,\n" r.serve_wall_us;
      p "      \"serve_rps\": %.1f,\n" r.serve_rps;
      p "      \"speedup\": %.2f,\n" r.speedup;
      p "      \"batches\": %d,\n" r.batches;
      p "      \"mean_batch\": %.2f,\n" r.mean_batch;
      p "      \"padded_rows\": %d,\n" r.padded_rows;
      p "      \"plan_compiles\": %d,\n" r.plan_compiles;
      p "      \"symbolic\": %b,\n" r.symbolic;
      p "      \"latency_p50_us\": %.1f,\n" r.lat_p50_us;
      p "      \"latency_p95_us\": %.1f,\n" r.lat_p95_us;
      p "      \"latency_p99_us\": %.1f,\n" r.lat_p99_us;
      p "      \"phases\": {\n";
      List.iteri
        (fun j (phase, p50, p95, p99) ->
          p
            "        \"%s\": { \"p50_us\": %.1f, \"p95_us\": %.1f, \
             \"p99_us\": %.1f }%s\n"
            phase p50 p95 p99
            (if j = List.length r.phases - 1 then "" else ","))
        r.phases;
      p "      }\n";
      p "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* --- Baseline parsing / regression check --------------------------------- *)

let read_baseline path =
  let ic = open_in path in
  let rows = ref [] in
  let current = ref None in
  let field line key =
    let prefix = Printf.sprintf "\"%s\":" key in
    let line = String.trim line in
    if
      String.length line > String.length prefix
      && String.sub line 0 (String.length prefix) = prefix
    then
      let v =
        String.sub line (String.length prefix)
          (String.length line - String.length prefix)
        |> String.trim
      in
      let v =
        if String.length v > 0 && v.[String.length v - 1] = ',' then
          String.sub v 0 (String.length v - 1)
        else v
      in
      Some v
    else None
  in
  (try
     while true do
       let line = input_line ic in
       (match field line "name" with
       | Some v ->
           let name = String.sub v 1 (String.length v - 2) in
           current := Some name
       | None -> ());
       match (field line "speedup", !current) with
       | Some v, Some name ->
           rows := (name, float_of_string v) :: !rows;
           current := None
       | _ -> ()
     done
   with End_of_file -> close_in ic);
  List.rev !rows

let check ~label base rows =
  let failures = ref [] in
  List.iter
    (fun r ->
      match List.assoc_opt r.name base with
      | None -> ()
      | Some expect ->
          if r.speedup < expect /. 2. then
            failures :=
              Printf.sprintf
                "%s: serve speedup %.2fx regressed below half the baseline \
                 %.2fx"
                r.name r.speedup expect
              :: !failures)
    rows;
  (* the acceptance bar: batched serving at concurrency 8 must at least
     double sequential throughput on the RNN-heavy workloads *)
  List.iter
    (fun r ->
      if List.mem r.name [ "ASR"; "DIEN" ] && r.speedup < 2.0 then
        failures :=
          Printf.sprintf
            "%s: serve speedup %.2fx is below the 2x acceptance bar" r.name
            r.speedup
          :: !failures)
    rows;
  (* continuous batching never pads, and a shape-polymorphic model
     compiles exactly one plan however many batch sizes it served *)
  List.iter
    (fun r ->
      if r.padded_rows <> 0 then
        failures :=
          Printf.sprintf "%s: %d padded rows executed (want 0)" r.name
            r.padded_rows
          :: !failures;
      if r.symbolic && r.plan_compiles <> 1 then
        failures :=
          Printf.sprintf
            "%s: %d plan compiles for a shape-polymorphic model (want 1)"
            r.name r.plan_compiles
          :: !failures)
    rows;
  match !failures with
  | [] ->
      Printf.printf "serve bench check OK (%d workloads vs %s)\n"
        (List.length rows) label
  | fs ->
      List.iter prerr_endline fs;
      exit 1

let run ?(quick = false) ?(out = "BENCH_serve.json") ?baseline () =
  let base = Option.map (fun b -> (b, read_baseline b)) baseline in
  let requests = if quick then 96 else 512 in
  let workers =
    let cores = Astitch_core.Parallel.recommended_domains () in
    if cores > 1 then Stdlib.min 8 cores else 0
  in
  let rows =
    List.map
      (bench_workload ~requests ~workers ~max_batch:8)
      Astitch_workloads.Zoo.all
  in
  print_table rows;
  (* the continuous-batching contract, exercised at odd sizes: raises
     on any padded row, lost request, or extra symbolic-model compile *)
  List.iter continuous_leg Astitch_workloads.Zoo.all;
  write_json ~path:out ~quick rows;
  Option.iter (fun (label, b) -> check ~label b rows) base
