(* The benchmark harness.

   Without arguments: regenerate every table and figure of the paper's
   evaluation section (DESIGN.md maps experiment ids to paper artefacts),
   then run a Bechamel micro-benchmark suite over the compiler passes -
   one Test.make per experiment, timing the computation that produces
   that table with the memo caches cleared.

   With an argument: run a single experiment (e.g. `main.exe table4`) or
   just the micro-benchmarks (`main.exe bechamel`). *)

module Experiments = Astitch_experiments.Experiments

(* --- Bechamel micro-benchmarks -------------------------------------------- *)

(* Run an experiment with stdout silenced (its tables are not the point
   when we are timing it). *)
let silently f () =
  flush stdout;
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let saved = Unix.dup Unix.stdout in
  Unix.dup2 devnull Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close devnull)
    (fun () ->
      Experiments.clear_caches ();
      f ())

let tests =
  let open Bechamel in
  Test.make_grouped ~name:"experiments"
    (List.map
       (fun (name, _, f) -> Test.make ~name (Staged.stage (silently f)))
       (List.filter (fun (name, _, _) -> name <> "overhead") Experiments.all))

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:20 ~stabilize:false ~quota:(Time.second 1.0) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "=== Bechamel: wall time per experiment regeneration ===\n";
  Printf.printf "%-36s %14s\n" "experiment" "time/run";
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some [ est ] ->
             Printf.printf "%-36s %12.2fms\n" name (est /. 1e6)
         | _ -> Printf.printf "%-36s %14s\n" name "n/a")

(* --- Entry point ------------------------------------------------------------ *)

let () =
  match Sys.argv with
  | [| _ |] ->
      Experiments.run_all ();
      run_bechamel ()
  | [| _; "bechamel" |] -> run_bechamel ()
  | [| _; "serving" |] -> Serving_bench.run ()
  | [| _; "serving"; "quick" |] -> Serving_bench.run ~quick:true ()
  | [| _; "serving"; "quick"; "--check"; baseline |] ->
      Serving_bench.run ~quick:true ~baseline ()
  | [| _; "serving"; "--check"; baseline |] -> Serving_bench.run ~baseline ()
  | [| _; "zoo" |] -> Zoo_bench.run ()
  | [| _; "zoo"; "quick" |] -> Zoo_bench.run ~quick:true ()
  | [| _; "zoo"; "quick"; "--check"; baseline |] ->
      Zoo_bench.run ~quick:true ~baseline ()
  | [| _; "zoo"; "--check"; baseline |] -> Zoo_bench.run ~baseline ()
  | [| _; "serve" |] -> Serve_bench.run ()
  | [| _; "serve"; "quick" |] -> Serve_bench.run ~quick:true ()
  | [| _; "serve"; "quick"; "--check"; baseline |] ->
      Serve_bench.run ~quick:true ~baseline ()
  | [| _; "serve"; "--check"; baseline |] -> Serve_bench.run ~baseline ()
  | [| _; name |] -> (
      try Experiments.run name
      with Astitch_plan.Compile_error.Error e ->
        prerr_endline (Astitch_plan.Compile_error.to_string e);
        exit 1)
  | _ ->
      prerr_endline
        "usage: main.exe [experiment-id|bechamel|serving|serve|zoo [quick] \
         [--check BASELINE]]";
      exit 1
