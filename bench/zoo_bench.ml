(* Multi-tenant zoo benchmark: SLO-class scheduling under overload,
   plus the plan store's warm-restart win.

   All five zoo workloads are hosted in one zoo behind a shared worker
   pool, with mixed SLO classes and skewed popularity (the first-listed
   model is hottest, weight 1/(i+1)):

     ASR          latency      (calibrated deadline, EDF dispatch)
     DIEN         throughput
     CRNN         throughput
     Transformer  best-effort
     BERT         best-effort

   The run first measures the zoo's service capacity (full-blast
   submission, no pacing), calibrates the latency-class deadline from
   it, then drives two open-loop legs with exponential inter-arrivals:
   one at the measured capacity (1x) and one at twice it (2x, sustained
   overload).  Per leg it reports per-SLO-class latency quantiles and
   goodput - deadline-met completions per second for the latency class,
   completions per second for the others.

   The multi-tenant contract under test: at 2x overload the latency
   class still meets its deadline at p99 (strict class priority + EDF
   jump the queue), while best-effort keeps nonzero goodput (the
   fair-share floor guarantees "whatever is left" never rounds down to
   zero).

   A final leg times the persistent plan store: cold prewarm (compile
   everything, save) vs warm prewarm (load everything) against the same
   directory, asserting the warm restart compiles nothing.

   Results go to BENCH_zoo.json; [check] compares a fresh quick run
   against the committed baseline with the same line-based reader
   convention as the other bench files (no JSON library in the tree). *)

module Zoo = Astitch_serve.Zoo
module Slo = Astitch_serve.Slo
module Serve = Astitch_serve.Serve
module Request = Astitch_serve.Request

(* Popularity order: hottest first. *)
let entry name =
  match Astitch_workloads.Zoo.find name with
  | Some e -> e
  | None -> failwith ("zoo bench: unknown workload " ^ name)

let model_names = [ "ASR"; "DIEN"; "CRNN"; "Transformer"; "BERT" ]

let registrations ~deadline_us =
  let model name =
    let e = entry name in
    { Serve.name = e.Astitch_workloads.Zoo.name;
      build = e.Astitch_workloads.Zoo.batched }
  in
  [
    (model "ASR", Slo.Latency { deadline_us });
    (model "DIEN", Slo.Throughput);
    (model "CRNN", Slo.Throughput);
    (model "Transformer", Slo.Best_effort);
    (model "BERT", Slo.Best_effort);
  ]

let weights = Array.init 5 (fun i -> 1. /. float_of_int (i + 1))
let weight_total = Array.fold_left ( +. ) 0. weights

let skewed_pick st =
  let u = Random.State.float st weight_total in
  let rec go i acc =
    if i >= Array.length weights - 1 then List.nth model_names i
    else
      let acc = acc +. weights.(i) in
      if u < acc then List.nth model_names i else go (i + 1) acc
  in
  go 0 0.

let zoo_config ~workers ~deadline_us:_ ~plan_dir ~verify_plans =
  {
    Zoo.serve =
      {
        Serve.default_config with
        workers;
        max_batch = 8;
        max_wait_us = 500.;
        queue_depth = 64;
      };
    plan_dir;
    verify_plans;
  }

type class_row = {
  cls : string;
  submitted : int;
  completed : int;
  shed : int;
  rejected : int;
  deadline_met : int;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  goodput_rps : float;
      (** deadline-met (latency class) or completed (others) per second
          of leg wall time *)
}

type leg = {
  load : float;  (** arrival rate as a multiple of measured capacity *)
  arrival_rps : float;  (** 0 = full blast *)
  requests : int;
  wall_s : float;
  failed : int;
  classes : class_row list;
}

(* One open-loop run: [requests] draws from the skewed popularity
   distribution, exponential inter-arrivals at [arrival] req/s (0 =
   submit as fast as possible), drain, await everything.  Returns the
   leg row; raises on any failed request (supervision promises none). *)
let run_leg ~label ~load ~workers ~arrival ~requests ~deadline_us =
  let config =
    zoo_config ~workers ~deadline_us ~plan_dir:None ~verify_plans:false
  in
  let zoo = Zoo.create ~config (registrations ~deadline_us) in
  Fun.protect
    ~finally:(fun () -> ignore (Zoo.shutdown zoo))
    (fun () ->
      ignore (Zoo.prewarm zoo);
      let server = Zoo.server zoo in
      let st = Random.State.make [| 0x5EED + int_of_float (load *. 10.) |] in
      let t0 = Unix.gettimeofday () in
      let clock = ref 0. in
      let tickets =
        List.filter_map
          (fun i ->
            (if arrival > 0. then begin
               let gap =
                 -.Float.log (1. -. Random.State.float st 1.) /. arrival
               in
               clock := !clock +. gap;
               let until = t0 +. !clock -. Unix.gettimeofday () in
               if until > 0. then Unix.sleepf until
             end);
            let model = skewed_pick st in
            let params = Serve.random_request server ~model ~seed:(7 * i) in
            match Zoo.submit_async zoo ~model ~params with
            | Ok t -> Some t
            | Error _ -> None)
          (List.init requests Fun.id)
      in
      Zoo.drain zoo;
      let failed = ref 0 in
      List.iter
        (fun t ->
          match Zoo.await zoo t with
          | Request.Failed _ -> incr failed
          | Request.Done _ | Request.Overloaded _ -> ())
        tickets;
      let wall_s = Unix.gettimeofday () -. t0 in
      let classes =
        List.map
          (fun (c : Zoo.class_stats) ->
            let numerator =
              if c.Zoo.cls = "latency" then c.Zoo.deadline_met
              else c.Zoo.completed
            in
            {
              cls = c.Zoo.cls;
              submitted = c.Zoo.submitted;
              completed = c.Zoo.completed;
              shed = c.Zoo.shed;
              rejected = c.Zoo.rejected;
              deadline_met = c.Zoo.deadline_met;
              p50_us = c.Zoo.p50_us;
              p95_us = c.Zoo.p95_us;
              p99_us = c.Zoo.p99_us;
              goodput_rps = float_of_int numerator /. Float.max wall_s 1e-9;
            })
          (Zoo.class_stats zoo)
      in
      Printf.printf
        "zoo %-9s %5d requests, arrival %8.1f rps, wall %6.3fs\n" label
        requests arrival wall_s;
      List.iter
        (fun r ->
          Printf.printf
            "  %-12s sub %5d done %5d shed %4d rej %4d met %5d p99 %8.0fus \
             goodput %8.1f/s\n"
            r.cls r.submitted r.completed r.shed r.rejected r.deadline_met
            r.p99_us r.goodput_rps)
        classes;
      { load; arrival_rps = arrival; requests; wall_s; failed = !failed;
        classes })

(* --- Plan-store leg ------------------------------------------------------- *)

type store_row = {
  cold_ms : float;
  warm_ms : float;
  cold_compiles : int;
  warm_loaded : int;
  warm_compiles : int;
  saved : int;
}

let store_leg ~workers ~deadline_us =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "astitch-zoo-bench-%d" (Unix.getpid ()))
  in
  let mk () =
    Zoo.create
      ~config:
        (zoo_config ~workers ~deadline_us ~plan_dir:(Some dir)
           ~verify_plans:false)
      (registrations ~deadline_us)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let cold_zoo = mk () in
  let cold, cold_ms = time (fun () -> Zoo.prewarm cold_zoo) in
  ignore (Zoo.shutdown cold_zoo);
  let warm_zoo = mk () in
  let warm, warm_ms = time (fun () -> Zoo.prewarm warm_zoo) in
  ignore (Zoo.shutdown warm_zoo);
  (* best-effort cleanup of the throwaway store *)
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir);
     Unix.rmdir dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  if warm.Zoo.compiled <> 0 then
    failwith
      (Printf.sprintf
         "zoo bench: warm restart compiled %d plans (store promises 0)"
         warm.Zoo.compiled);
  Printf.printf
    "zoo store     cold prewarm %.0fms (%d compiles, %d saved) -> warm \
     prewarm %.0fms (%d loaded, 0 compiles)\n"
    cold_ms cold.Zoo.compiled cold.Zoo.saved warm_ms warm.Zoo.loaded;
  {
    cold_ms;
    warm_ms;
    cold_compiles = cold.Zoo.compiled;
    warm_loaded = warm.Zoo.loaded;
    warm_compiles = warm.Zoo.compiled;
    saved = cold.Zoo.saved;
  }

(* --- Reporting ------------------------------------------------------------- *)

let write_json ~path ~quick ~workers ~capacity_rps ~deadline_us ~store legs =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"astitch-zoo-bench-v1\",\n";
  p "  \"quick\": %b,\n" quick;
  p "  \"workers\": %d,\n" workers;
  p "  \"capacity_rps\": %.1f,\n" capacity_rps;
  p "  \"deadline_us\": %.1f,\n" deadline_us;
  p "  \"store\": {\n";
  p "    \"cold_ms\": %.1f,\n" store.cold_ms;
  p "    \"warm_ms\": %.1f,\n" store.warm_ms;
  p "    \"cold_compiles\": %d,\n" store.cold_compiles;
  p "    \"warm_loaded\": %d,\n" store.warm_loaded;
  p "    \"warm_compiles\": %d,\n" store.warm_compiles;
  p "    \"saved\": %d\n" store.saved;
  p "  },\n";
  p "  \"legs\": [\n";
  List.iteri
    (fun i leg ->
      p "    {\n";
      p "      \"load\": %.1f,\n" leg.load;
      p "      \"arrival_rps\": %.1f,\n" leg.arrival_rps;
      p "      \"requests\": %d,\n" leg.requests;
      p "      \"wall_s\": %.3f,\n" leg.wall_s;
      p "      \"failed\": %d,\n" leg.failed;
      p "      \"classes\": [\n";
      List.iteri
        (fun j r ->
          p "        {\n";
          p "          \"cls\": \"%s\",\n" r.cls;
          p "          \"submitted\": %d,\n" r.submitted;
          p "          \"completed\": %d,\n" r.completed;
          p "          \"shed\": %d,\n" r.shed;
          p "          \"rejected\": %d,\n" r.rejected;
          p "          \"deadline_met\": %d,\n" r.deadline_met;
          p "          \"p50_us\": %.1f,\n" r.p50_us;
          p "          \"p95_us\": %.1f,\n" r.p95_us;
          p "          \"p99_us\": %.1f,\n" r.p99_us;
          p "          \"goodput_rps\": %.1f\n" r.goodput_rps;
          p "        }%s\n" (if j = List.length leg.classes - 1 then "" else ",")
          )
        leg.classes;
      p "      ]\n";
      p "    }%s\n" (if i = List.length legs - 1 then "" else ","))
    legs;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* --- Baseline parsing / regression check ----------------------------------- *)

(* Line-based reader (shared convention with the other BENCH files):
   tracks the current "load" and "cls" context and keys each class's
   goodput as (load, cls). *)
let read_baseline path =
  let ic = open_in path in
  let rows = ref [] in
  let load = ref None and cls = ref None in
  let field line key =
    let prefix = Printf.sprintf "\"%s\":" key in
    let line = String.trim line in
    if
      String.length line > String.length prefix
      && String.sub line 0 (String.length prefix) = prefix
    then
      let v =
        String.sub line (String.length prefix)
          (String.length line - String.length prefix)
        |> String.trim
      in
      let v =
        if String.length v > 0 && v.[String.length v - 1] = ',' then
          String.sub v 0 (String.length v - 1)
        else v
      in
      Some v
    else None
  in
  (try
     while true do
       let line = input_line ic in
       (match field line "load" with
       | Some v -> load := Some (float_of_string v)
       | None -> ());
       (match field line "cls" with
       | Some v -> cls := Some (String.sub v 1 (String.length v - 2))
       | None -> ());
       match (field line "goodput_rps", !load, !cls) with
       | Some v, Some l, Some c ->
           rows := ((l, c), float_of_string v) :: !rows;
           cls := None
       | _ -> ()
     done
   with End_of_file -> close_in ic);
  List.rev !rows

let check ~label base ~deadline_us legs =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  List.iter
    (fun leg ->
      if leg.failed > 0 then
        fail "%.0fx: %d requests failed" leg.load leg.failed;
      let row c = List.find_opt (fun r -> r.cls = c) leg.classes in
      (* the multi-tenant contract at sustained 2x overload *)
      if leg.load >= 2. then begin
        (match row "latency" with
        | Some r when r.completed > 0 ->
            if r.p99_us > deadline_us then
              fail
                "2x overload: latency-class p99 %.0fus blows the %.0fus \
                 deadline"
                r.p99_us deadline_us
        | _ -> fail "2x overload: latency class completed nothing");
        match row "best-effort" with
        | Some r when r.completed > 0 -> ()
        | _ -> fail "2x overload: best-effort starved (goodput 0)"
      end;
      (* every class makes progress at every load *)
      List.iter
        (fun r ->
          if r.completed = 0 then
            fail "%.0fx: class %s completed nothing" leg.load r.cls)
        leg.classes;
      (* against the committed baseline: total goodput per leg must not
         collapse below half *)
      let total =
        List.fold_left (fun acc r -> acc +. r.goodput_rps) 0. leg.classes
      in
      let base_total =
        List.fold_left
          (fun acc ((l, _), g) -> if l = leg.load then acc +. g else acc)
          0. base
      in
      if base_total > 0. && total < base_total /. 2. then
        fail
          "%.0fx: total goodput %.1f/s regressed below half the baseline \
           %.1f/s"
          leg.load total base_total)
    legs;
  match !failures with
  | [] ->
      Printf.printf "zoo bench check OK (%d legs vs %s)\n" (List.length legs)
        label
  | fs ->
      List.iter prerr_endline fs;
      exit 1

let run ?(quick = false) ?(out = "BENCH_zoo.json") ?baseline () =
  let base = Option.map (fun b -> (b, read_baseline b)) baseline in
  let workers =
    let cores = Astitch_core.Parallel.recommended_domains () in
    Stdlib.max 1 (Stdlib.min 4 cores)
  in
  let cap_requests = if quick then 150 else 600 in
  (* Capacity probe: full blast with an effectively-infinite deadline
     (expiry shedding off), so the number is pure service capacity. *)
  let cap =
    run_leg ~label:"capacity" ~load:0. ~workers ~arrival:0.
      ~requests:cap_requests ~deadline_us:1e9
  in
  let capacity_rps =
    let completed =
      List.fold_left (fun acc r -> acc + r.completed) 0 cap.classes
    in
    float_of_int completed /. Float.max cap.wall_s 1e-9
  in
  (* Calibrate the latency deadline to this machine: the worst admitted
     request waits out about a full queue at capacity; give the latency
     class twice that (it jumps the queue, so its real p99 sits far
     below). *)
  let deadline_us =
    Float.max 20_000. (2e6 *. 64. /. Float.max capacity_rps 1e-9)
  in
  Printf.printf "zoo capacity %.1f rps -> latency deadline %.0fus\n"
    capacity_rps deadline_us;
  (* Size each leg to sustain its load long enough for the scheduler's
     steady state (floor picks, displacement) to dominate the numbers,
     not the first batching window. *)
  let requests =
    let duration_s = if quick then 0.4 else 1.5 in
    Stdlib.max 200 (Stdlib.min 8000 (int_of_float (capacity_rps *. duration_s)))
  in
  let legs =
    List.map
      (fun load ->
        run_leg
          ~label:(Printf.sprintf "%.0fx" load)
          ~load ~workers ~arrival:(load *. capacity_rps) ~requests
          ~deadline_us)
      [ 1.0; 2.0 ]
  in
  let store = store_leg ~workers ~deadline_us in
  write_json ~path:out ~quick ~workers ~capacity_rps ~deadline_us ~store legs;
  Option.iter (fun (label, b) -> check ~label b ~deadline_us legs) base
