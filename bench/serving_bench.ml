(* Serving-path benchmarks: compile-once/run-many vs compile-every-time.

   For each zoo workload we time the five legs of a serving request:
     cold compile   - Session.compile, nothing cached
     cached compile - Session.compile_cached on a warm cache (a hit)
     fresh run      - Executor.run (re-walks kernel lists, allocates
                      every intermediate)
     context run    - Executor.run_context on a reference (non-fused)
                      context: prebound buffers, per-node instructions
     fused run      - Executor.run_context on a fused context: register
                      scalarization, block staging, arena buffers
   and report the steady-state request speedup
     (cold compile + fresh run) / (cached compile + fused run),
   plus fused-vs-reference-context speedup and sequential vs parallel
   compile wall time at the recommended domain count.  Results go to
   BENCH_serving.json as one "key": value per line, so the regression
   checker (and CI) can read it back without a JSON library.

   [check] compares a fresh quick run against a committed baseline:
   the per-workload serving speedup must not regress below half the
   baseline's, at least two workloads must keep a >= 4x speedup, and the
   fused engine must not run slower than the reference context on the
   small-kernel workloads (ASR, DIEN). *)

open Astitch_simt
open Astitch_runtime

type row = {
  name : string;
  cold_compile_us : float;
  cached_compile_us : float;
  fresh_run_us : float;
  context_run_us : float;
  fused_run_us : float;
  fused_speedup : float;
  cold_request_us : float;
  serving_request_us : float;
  speedup : float;
  seq_compile_us : float;
  par_compile_us : float;
  par_domains : int;
  par_speedup : float;
  lat_p50_us : float;
  lat_p95_us : float;
  lat_p99_us : float;
}

(* The global-stitching leg: shared-mem-overflow shapes whose softmax
   reductions cannot stage on-chip, executed fused (global scratch +
   in-kernel barriers) against the kernel-per-op no-stitching baseline
   [Fallback.per_op_plan].  The check gate demands every overflow shape
   fuses without a single fallback and at least breaks even. *)
type global_row = {
  gname : string;
  global_run_us : float;
  per_op_run_us : float;
  global_speedup : float;
  global_fallbacks : int;
}

(* Median wall time of [runs] calls, in microseconds. *)
let time_us ~runs f =
  let samples =
    Array.init runs (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (f ()));
        (Unix.gettimeofday () -. t0) *. 1e6)
  in
  Array.sort compare samples;
  samples.(runs / 2)

let bench_workload ~runs (entry : Astitch_workloads.Zoo.entry) ~tiny =
  let g = if tiny then entry.tiny () else entry.inference () in
  let arch = Arch.v100 in
  let backend = Astitch_core.Astitch.full_backend in
  let params = Session.random_params g in
  (* compile legs *)
  let cold_compile_us =
    time_us ~runs (fun () -> Session.compile backend arch g)
  in
  let cache = Session.make_cache () in
  ignore (Session.compile_cached cache backend arch g);
  let cached_compile_us =
    time_us ~runs (fun () -> Session.compile_cached cache backend arch g)
  in
  (* run legs, on the same plan *)
  let plan = (Session.compile backend arch g).Session.plan in
  let fresh_run_us = time_us ~runs (fun () -> Executor.run plan ~params) in
  let ctx = Executor.create_context ~fused:false plan in
  let context_run_us =
    time_us ~runs (fun () -> Executor.run_context ctx ~params)
  in
  let fctx = Executor.create_context ~fused:true plan in
  let fused_run_us =
    time_us ~runs (fun () -> Executor.run_context fctx ~params)
  in
  (* parallel vs sequential compile *)
  let par_domains = Astitch_core.Parallel.recommended_domains () in
  let compile_with_domains d =
    let config =
      { Astitch_core.Config.full with compile_domains = d }
    in
    Astitch_core.Astitch.compile ~config arch g
  in
  let seq_compile_us = time_us ~runs (fun () -> compile_with_domains 1) in
  let par_compile_us =
    time_us ~runs (fun () -> compile_with_domains par_domains)
  in
  let cold_request_us = cold_compile_us +. fresh_run_us in
  let serving_request_us = cached_compile_us +. fused_run_us in
  (* per-request latency distribution of the steady-state serving path
     (cached compile + fused context run), sampled individually into a
     log-bucketed histogram - medians hide the tail, p95/p99 don't *)
  let lat_p50_us, lat_p95_us, lat_p99_us =
    let reg = Astitch_obs.Metrics.create () in
    let h = Astitch_obs.Metrics.histogram reg "serving.request_us" in
    let samples = Stdlib.max 32 (4 * runs) in
    for _ = 1 to samples do
      let t0 = Unix.gettimeofday () in
      ignore (Sys.opaque_identity (Session.compile_cached cache backend arch g));
      ignore (Sys.opaque_identity (Executor.run_context fctx ~params));
      Astitch_obs.Metrics.observe h ((Unix.gettimeofday () -. t0) *. 1e6)
    done;
    Astitch_obs.Metrics.
      (quantile h 0.50, quantile h 0.95, quantile h 0.99)
  in
  {
    name = entry.name;
    cold_compile_us;
    cached_compile_us;
    fresh_run_us;
    context_run_us;
    fused_run_us;
    fused_speedup = context_run_us /. fused_run_us;
    cold_request_us;
    serving_request_us;
    speedup = cold_request_us /. serving_request_us;
    seq_compile_us;
    par_compile_us;
    par_domains;
    par_speedup = seq_compile_us /. par_compile_us;
    lat_p50_us;
    lat_p95_us;
    lat_p99_us;
  }

let global_entries =
  [
    ("ASR-overflow", Astitch_workloads.Asr.overflow);
    ("DIEN-overflow", Astitch_workloads.Dien.overflow);
  ]

let bench_global ~runs (gname, build) =
  let g = build () in
  let arch = Arch.v100 in
  let backend = Astitch_core.Astitch.full_backend in
  let params = Session.random_params g in
  let plan = (Session.compile backend arch g).Session.plan in
  let fctx = Executor.create_context ~fused:true plan in
  let global_fallbacks = List.length (Executor.context_fallbacks fctx) in
  let global_run_us =
    time_us ~runs (fun () -> Executor.run_context fctx ~params)
  in
  let per_op = Astitch_core.Fallback.per_op_plan arch g in
  let pctx = Executor.create_context ~fused:false per_op in
  let per_op_run_us =
    time_us ~runs (fun () -> Executor.run_context pctx ~params)
  in
  {
    gname;
    global_run_us;
    per_op_run_us;
    global_speedup = per_op_run_us /. global_run_us;
    global_fallbacks;
  }

(* --- Reporting ----------------------------------------------------------- *)

let print_table rows =
  Printf.printf "=== Serving fast path (medians, us) ===\n";
  Printf.printf
    "%-12s %12s %12s %12s %12s %12s %8s %9s %12s %12s %8s %9s %9s %9s\n"
    "workload" "cold-comp" "cached-comp" "fresh-run" "ctx-run" "fused-run"
    "fused-x" "speedup" "seq-comp" "par-comp" "par-x" "lat-p50" "lat-p95"
    "lat-p99";
  List.iter
    (fun r ->
      Printf.printf
        "%-12s %12.1f %12.1f %12.1f %12.1f %12.1f %7.2fx %8.1fx %12.1f \
         %12.1f %7.2fx %9.1f %9.1f %9.1f\n"
        r.name r.cold_compile_us r.cached_compile_us r.fresh_run_us
        r.context_run_us r.fused_run_us r.fused_speedup r.speedup
        r.seq_compile_us r.par_compile_us r.par_speedup r.lat_p50_us
        r.lat_p95_us r.lat_p99_us)
    rows

let print_global_table grows =
  Printf.printf
    "=== Global stitching on shared-mem-overflow shapes (medians, us) ===\n";
  Printf.printf "%-14s %12s %12s %9s %10s\n" "workload" "global-run"
    "per-op-run" "global-x" "fallbacks";
  List.iter
    (fun gr ->
      Printf.printf "%-14s %12.1f %12.1f %8.2fx %10d\n" gr.gname
        gr.global_run_us gr.per_op_run_us gr.global_speedup
        gr.global_fallbacks)
    grows

(* One "key": value per line so the checker can read it back with a line
   scanner; no JSON library in the tree. *)
let write_json ~path ~quick rows grows =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"astitch-serving-bench-v1\",\n";
  p "  \"quick\": %b,\n" quick;
  p "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      p "    {\n";
      p "      \"name\": \"%s\",\n" r.name;
      p "      \"cold_compile_us\": %.1f,\n" r.cold_compile_us;
      p "      \"cached_compile_us\": %.1f,\n" r.cached_compile_us;
      p "      \"fresh_run_us\": %.1f,\n" r.fresh_run_us;
      p "      \"context_run_us\": %.1f,\n" r.context_run_us;
      p "      \"fused_run_us\": %.1f,\n" r.fused_run_us;
      p "      \"fused_speedup\": %.2f,\n" r.fused_speedup;
      p "      \"cold_request_us\": %.1f,\n" r.cold_request_us;
      p "      \"serving_request_us\": %.1f,\n" r.serving_request_us;
      p "      \"speedup\": %.2f,\n" r.speedup;
      p "      \"seq_compile_us\": %.1f,\n" r.seq_compile_us;
      p "      \"par_compile_us\": %.1f,\n" r.par_compile_us;
      p "      \"par_domains\": %d,\n" r.par_domains;
      p "      \"par_speedup\": %.2f,\n" r.par_speedup;
      p "      \"latency_p50_us\": %.1f,\n" r.lat_p50_us;
      p "      \"latency_p95_us\": %.1f,\n" r.lat_p95_us;
      p "      \"latency_p99_us\": %.1f\n" r.lat_p99_us;
      p "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  (* the globals section keys off "workload", never "name"/"speedup":
     the baseline line-scanner above must not mistake these rows for
     workload rows *)
  p "  \"globals\": [\n";
  List.iteri
    (fun i gr ->
      p "    {\n";
      p "      \"workload\": \"%s\",\n" gr.gname;
      p "      \"global_run_us\": %.1f,\n" gr.global_run_us;
      p "      \"per_op_run_us\": %.1f,\n" gr.per_op_run_us;
      p "      \"global_speedup\": %.2f,\n" gr.global_speedup;
      p "      \"global_fallbacks\": %d\n" gr.global_fallbacks;
      p "    }%s\n" (if i = List.length grows - 1 then "" else ","))
    grows;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* --- Baseline parsing / regression check --------------------------------- *)

(* Reads the writer's line-per-field format: tracks the current "name"
   and collects the numeric fields we compare. *)
let read_baseline path =
  let ic = open_in path in
  let rows = ref [] in
  let current = ref None in
  let field line key =
    let prefix = Printf.sprintf "\"%s\":" key in
    let line = String.trim line in
    if String.length line > String.length prefix
       && String.sub line 0 (String.length prefix) = prefix
    then
      let v =
        String.sub line (String.length prefix)
          (String.length line - String.length prefix)
        |> String.trim
      in
      let v =
        if String.length v > 0 && v.[String.length v - 1] = ',' then
          String.sub v 0 (String.length v - 1)
        else v
      in
      Some v
    else None
  in
  (try
     while true do
       let line = input_line ic in
       (match field line "name" with
       | Some v ->
           let name = String.sub v 1 (String.length v - 2) in
           current := Some name
       | None -> ());
       match (field line "speedup", !current) with
       | Some v, Some name ->
           rows := (name, float_of_string v) :: !rows;
           current := None
       | _ -> ()
     done
   with End_of_file -> close_in ic);
  List.rev !rows

let check ~label base rows grows =
  let failures = ref [] in
  List.iter
    (fun r ->
      match List.assoc_opt r.name base with
      | None -> ()
      | Some expect ->
          if r.speedup < expect /. 2. then
            failures :=
              Printf.sprintf
                "%s: serving speedup %.2fx regressed below half the \
                 baseline %.2fx"
                r.name r.speedup expect
              :: !failures)
    rows;
  (* The committed baseline demonstrates the >= 5x acceptance bar; the CI
     smoke floor sits at 4x to absorb shared-runner timing noise while the
     half-of-baseline regression gate above does the real work. *)
  let fast = List.filter (fun r -> r.speedup >= 4.) rows in
  if List.length fast < 2 then
    failures :=
      Printf.sprintf
        "only %d workload(s) keep a >= 4x serving speedup (need >= 2)"
        (List.length fast)
      :: !failures;
  (* Fused execution must never lose to the reference context, gated on
     the workloads where per-kernel overhead is least amortized.  Uses
     the current run's own legs, so baselines predating the fused engine
     still parse. *)
  List.iter
    (fun r ->
      if List.mem r.name [ "ASR"; "DIEN" ] && r.fused_speedup < 1.0 then
        failures :=
          Printf.sprintf
            "%s: fused execution is %.2fx vs the reference context \
             (must stay >= 1.0x)"
            r.name r.fused_speedup
          :: !failures)
    rows;
  (* Global stitching gate, on the current run's own legs: the overflow
     shapes must fuse without any fallback and at least break even
     against the kernel-per-op baseline - the whole point of executing
     Scheme.Global instead of materializing. *)
  List.iter
    (fun gr ->
      if gr.global_fallbacks <> 0 then
        failures :=
          Printf.sprintf
            "%s: %d kernel(s) fell back - overflow shapes must fuse \
             globally"
            gr.gname gr.global_fallbacks
          :: !failures;
      if gr.global_speedup < 1.0 then
        failures :=
          Printf.sprintf
            "%s: global stitching is %.2fx vs kernel-per-op (must stay \
             >= 1.0x)"
            gr.gname gr.global_speedup
          :: !failures)
    grows;
  match !failures with
  | [] ->
      Printf.printf "serving bench check OK (%d workloads vs %s)\n"
        (List.length rows) label
  | fs ->
      List.iter prerr_endline fs;
      exit 1

let run ?(quick = false) ?(out = "BENCH_serving.json") ?baseline () =
  (* read the baseline before writing: check mode may point both at the
     committed BENCH_serving.json *)
  let base = Option.map (fun b -> (b, read_baseline b)) baseline in
  let runs = if quick then 7 else 9 in
  let rows =
    List.map
      (fun e -> bench_workload ~runs e ~tiny:quick)
      Astitch_workloads.Zoo.all
  in
  let grows = List.map (bench_global ~runs) global_entries in
  print_table rows;
  print_global_table grows;
  write_json ~path:out ~quick rows grows;
  Option.iter (fun (label, b) -> check ~label b rows grows) base
