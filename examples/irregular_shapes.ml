(* The paper's Figure 6 / Figure 8: irregular production tensor shapes and
   the adaptive thread mapping that fixes them.

   <750000,32>: 750k tiny reduction rows.  One block per row (XLA) gives
   32-thread blocks - horizontal packing puts 32 rows in each 1024-thread
   block and vertical packing caps the grid at one wave so a global
   barrier stays legal.

   <64,30000>: 64 huge rows.  One block per row leaves 3/4 of a V100 idle -
   task splitting spreads each row over several blocks with cross-block
   atomics.

   Run with: dune exec examples/irregular_shapes.exe *)

open Astitch_ir
open Astitch_simt
open Astitch_plan
open Astitch_runtime

let reduce_graph rows cols =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ rows; cols ] in
  let r = Builder.reduce_sum b ~axes:[ 1 ] x in
  (* a consumer chain, so stitching has something to attach *)
  let s = Builder.sigmoid b r in
  Builder.finish b ~outputs:[ s ]

let show_case name rows cols =
  Printf.printf "--- %s: row-reduce <%d,%d> -> <%d> ---\n" name rows cols rows;
  let g = reduce_graph rows cols in
  List.iter
    (fun (backend : Backend_intf.t) ->
      let r = Session.compile backend Arch.v100 g in
      let kp = List.hd (Profile.mem_kernels_by_time r.profile) in
      let reduce_op =
        List.find
          (fun (o : Kernel_plan.compiled_op) -> Op.is_reduce (Graph.op g o.id))
          kp.kernel.ops
      in
      Printf.printf
        "%-8s launch <<<%d, %d>>>  occupancy %4.0f%%  sm-eff %4.0f%%  %8.1f us\n"
        backend.name kp.kernel.launch.Launch.grid kp.kernel.launch.Launch.block
        (100. *. kp.estimate.Cost_model.occupancy)
        (100. *. kp.estimate.Cost_model.sm_efficiency)
        kp.estimate.Cost_model.exec_time_us;
      Printf.printf "         mapping: %s\n"
        (Thread_mapping.to_string reduce_op.mapping))
    [ Astitch_backends.Xla_backend.backend; Astitch_core.Astitch.full_backend ];
  print_newline ()

let () =
  Printf.printf
    "V100 reference: at block size 1024 the machine holds %d blocks per \
     wave.\n\n"
    (Astitch_core.Adaptive_mapping.blocks_per_wave Arch.v100);
  show_case "Fig 6(a) - DIEN candidate pooling" 750_000 32;
  show_case "Fig 6(b) - Transformer vocab softmax rows" 64 30_000;
  (* numeric sanity on scaled-down versions of both shapes *)
  List.iter
    (fun (rows, cols) ->
      let g = reduce_graph rows cols in
      let params = Session.random_params g in
      ignore (Session.run Astitch_core.Astitch.full_backend Arch.v100 g ~params))
    [ (1500, 32); (8, 3000) ];
  Printf.printf
    "Scaled-down variants of both shapes executed and checked against the \
     reference interpreter.\n"
