(* A training step: forward + reverse-mode backward graph of a small
   BERT-style encoder, compiled by each backend.  The backward halves are
   where broadcast<->reduce duality produces the dense memory-intensive
   subgraphs the paper stitches (Figure 11b).

   Run with: dune exec examples/training_step.exe *)

open Astitch_ir
open Astitch_simt
open Astitch_plan
open Astitch_runtime

let () =
  let config =
    { Astitch_workloads.Bert.layers = 2; hidden = 16; ffn_hidden = 32;
      batch = 2; seq = 8; heads = 2 }
  in
  let fwd = Astitch_workloads.Bert.inference ~config () in
  let g = Astitch_workloads.Bert.training ~config () in
  Printf.printf "forward graph: %d ops;  forward+backward graph: %d ops\n"
    (Graph.num_nodes fwd) (Graph.num_nodes g);
  let st = Graph.stats g in
  Printf.printf
    "training graph: %d reduces, %d broadcasts, %d heavy element-wise ops\n\n"
    st.reduce_ops st.broadcast_ops st.heavy_elementwise_ops;

  let params = Session.random_params g in
  Printf.printf "%-12s %8s %10s %14s\n" "backend" "kernels" "CPY" "time (us)";
  List.iter
    (fun (backend : Backend_intf.t) ->
      (* run_and_check: gradients must match the interpreter's *)
      let _, r = Session.run backend Arch.v100 g ~params in
      Printf.printf "%-12s %8d %10d %14.1f\n" backend.name
        (Profile.mem_kernel_count r.profile)
        (Kernel_plan.cpy_count r.plan)
        r.profile.Profile.total_time_us)
    [
      Astitch_backends.Tf_backend.backend;
      Astitch_backends.Xla_backend.backend;
      Astitch_core.Astitch.full_backend;
    ];

  (* gradient spot check against finite differences *)
  let loss_of params =
    match Astitch_tensor.Interp.run g ~params with
    | loss :: _ -> Astitch_tensor.Tensor.get_linear loss 0
    | [] -> assert false
  in
  let name, tensor =
    List.find
      (fun (n, _) -> n = "layer0.ln1.gamma")
      params
  in
  let eps = 1e-4 in
  let bump delta =
    let data = Array.copy (Astitch_tensor.Tensor.data tensor) in
    data.(0) <- data.(0) +. delta;
    (name, Astitch_tensor.Tensor.create (Astitch_tensor.Tensor.shape tensor) data)
    :: List.remove_assoc name params
  in
  let numeric = (loss_of (bump eps) -. loss_of (bump (-.eps))) /. (2. *. eps) in
  (* gradient outputs follow the loss, in parameter order *)
  let outputs = Astitch_tensor.Interp.run g ~params in
  let param_names =
    List.map
      (fun id ->
        match Graph.op g id with
        | Op.Parameter { name } -> name
        | _ -> assert false)
      (Graph.parameters g)
  in
  let index = ref (-1) in
  List.iteri (fun i n -> if n = name then index := i) param_names;
  let grad = List.nth outputs (1 + !index) in
  let analytic = Astitch_tensor.Tensor.get_linear grad 0 in
  Printf.printf
    "\ngradient spot-check on %s[0]: autodiff %.5f vs finite-diff %.5f\n"
    name analytic numeric;
  assert (Float.abs (analytic -. numeric) < 1e-2 *. Float.max 1. (Float.abs numeric));
  Printf.printf "gradients verified.\n"
