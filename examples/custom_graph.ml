(* Bring-your-own graph: author a computation in the textual IR, parse it,
   simplify it, compile it for three GPU generations and read the plan.

   Run with: dune exec examples/custom_graph.exe *)

open Astitch_ir
open Astitch_simt
open Astitch_runtime

let source =
  {|
graph {
  # fused bias + gelu-ish activation + layer-scale, then row softmax -
  # a typical hand-written inference epilogue
  %0 = parameter "x" f32<128,1024>
  %1 = parameter "bias" f32<1024>
  %2 = broadcast dims=[1] %1 -> <128,1024>
  %3 = add %0 %2
  %4 = tanh %3
  %5 = multiply %3 %4
  %6 = parameter "scale" f32<1024>
  %7 = broadcast dims=[1] %6 -> <128,1024>
  %8 = multiply %5 %7
  %9 = reduce.max axes=[1] %8
  %10 = broadcast dims=[0] %9 -> <128,1024>
  %11 = sub %8 %10
  %12 = exp %11
  %13 = reduce.sum axes=[1] %12
  %14 = broadcast dims=[0] %13 -> <128,1024>
  %15 = divide %12 %14
  # a dead branch the simplifier should eliminate, plus foldable math
  %16 = constant 2.0 f32<>
  %17 = constant 3.0 f32<>
  %18 = add %16 %17
  %19 = broadcast dims=[] %18 -> <128,1024>
  %20 = multiply %15 %19
  %21 = power %15 %19
  outputs %20
}
|}

let () =
  let g = Text_format.parse source in
  Graph.validate g;
  Printf.printf "parsed %d nodes\n" (Graph.num_nodes g);

  let g, stats = Simplify.run g in
  Format.printf "simplified to %d nodes (%a)@.@." (Graph.num_nodes g)
    Simplify.pp_stats stats;

  (* correctness against the interpreter, then per-arch plans *)
  let params = Session.random_params g in
  List.iter
    (fun arch ->
      let outputs, result =
        Session.run Astitch_core.Astitch.full_backend arch g ~params
      in
      ignore outputs;
      let xla = Session.compile Astitch_backends.Xla_backend.backend arch g in
      Printf.printf
        "%-5s AStitch %2d kernels %8.1fus  |  XLA %2d kernels %8.1fus  \
         (%.2fx)\n"
        arch.Arch.name
        (Profile.mem_kernel_count result.profile)
        result.profile.Profile.total_time_us
        (Profile.mem_kernel_count xla.profile)
        xla.profile.Profile.total_time_us
        (Session.speedup ~baseline:xla ~contender:result))
    [ Arch.v100; Arch.t4; Arch.a100 ];

  print_newline ();
  let plan = Astitch_core.Astitch.compile Arch.v100 g in
  print_string (Astitch_core.Codegen.emit_plan plan)
