(* The Transformer attention subgraph of the paper's Figure 4: the
   scale -> mask -> softmax chain between two batched matmuls, full of
   reduce->consumer and broadcast one-to-many dependencies.

   Compares every backend's fusion decisions on it, and shows where each
   one cuts.

   Run with: dune exec examples/attention_softmax.exe *)

open Astitch_ir
open Astitch_simt
open Astitch_plan
open Astitch_runtime

let build ~batch_heads ~seq ~dim =
  let b = Builder.create () in
  let q = Builder.parameter b "q" [ batch_heads; seq; dim ] in
  let k = Builder.parameter b "k" [ batch_heads; seq; dim ] in
  let v = Builder.parameter b "v" [ batch_heads; seq; dim ] in
  let mask = Builder.parameter b "mask" [ seq; seq ] in
  let out =
    Astitch_workloads.Blocks.attention b ~q ~k ~v ~mask:(Some mask)
      ~scale:(1. /. Float.sqrt (float_of_int dim))
  in
  Builder.finish b ~outputs:[ out ]

let backends =
  [
    Astitch_backends.Tf_backend.backend;
    Astitch_backends.Xla_backend.backend;
    Astitch_backends.Tvm_backend.backend;
    Astitch_backends.Trt_backend.backend;
    Astitch_core.Astitch.full_backend;
  ]

let () =
  let g = build ~batch_heads:16 ~seq:128 ~dim:64 in
  let st = Graph.stats g in
  Printf.printf
    "Attention subgraph: %d ops (%d memory-intensive, %d reduces, %d \
     broadcasts), 2 batched matmuls\n\n"
    st.total_ops st.memory_intensive_ops st.reduce_ops st.broadcast_ops;

  (* correctness first: all backends agree with the interpreter on a
     small instance *)
  let tiny = build ~batch_heads:2 ~seq:4 ~dim:8 in
  let params = Session.random_params tiny in
  List.iter
    (fun b -> ignore (Session.run b Arch.v100 tiny ~params))
    backends;
  Printf.printf "All backends verified against the reference interpreter.\n\n";

  Printf.printf "%-12s %8s %8s %10s %12s %12s\n" "backend" "kernels" "CPY"
    "time (us)" "mem insts" "dram writes";
  List.iter
    (fun (backend : Backend_intf.t) ->
      let r = Session.compile backend Arch.v100 g in
      let c = Profile.mem_counters r.profile in
      Printf.printf "%-12s %8d %8d %10.1f %12d %12d\n" backend.name
        (Profile.mem_kernel_count r.profile)
        (Kernel_plan.cpy_count r.plan)
        r.profile.Profile.total_time_us c.inst_fp32 c.dram_write_transactions)
    backends;

  (* show why TVM pays for fusing pattern 2 while AStitch does not *)
  let recompute_total (backend : Backend_intf.t) =
    let r = Session.compile backend Arch.v100 g in
    List.fold_left
      (fun acc (k : Kernel_plan.kernel) ->
        List.fold_left
          (fun acc (o : Kernel_plan.compiled_op) -> acc + (o.recompute - 1))
          acc k.ops)
      0 r.plan.kernels
  in
  Printf.printf
    "\nRedundant element recomputations (sum of recompute-1 over ops):\n";
  List.iter
    (fun (b : Backend_intf.t) ->
      Printf.printf "  %-12s %d\n" b.name (recompute_total b))
    backends
