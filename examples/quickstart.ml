(* Quickstart: build the paper's Figure 7(a)-style memory-intensive
   subgraph, compile it with XLA-style fusion and with AStitch, execute
   both plans against the reference interpreter, and show the stitched
   pseudo-CUDA.

   Run with: dune exec examples/quickstart.exe *)

open Astitch_ir
open Astitch_simt
open Astitch_plan
open Astitch_runtime

let build_fig7 () =
  let b = Builder.create () in
  let p1 = Builder.parameter b "parameter.1" [ 64; 128 ] in
  let p2 = Builder.parameter b "parameter.2" [ 64; 128 ] in
  let add1 = Builder.add b p1 p2 in
  let reduce1 = Builder.reduce_sum b ~axes:[ 1 ] add1 in
  let bc1 = Builder.broadcast b reduce1 ~dims:[ 0 ] [ 64; 128 ] in
  let div1 = Builder.div b p2 bc1 in
  let two = Builder.broadcast_scalar b (Builder.constant b 2.) [ 64; 128 ] in
  let pow1 = Builder.pow b div1 two in
  let reduce2 = Builder.reduce_sum b ~axes:[ 1 ] pow1 in
  let bc2 = Builder.broadcast b reduce2 ~dims:[ 0 ] [ 64; 128 ] in
  let mul1 = Builder.mul b bc2 add1 in
  Builder.finish b ~outputs:[ mul1 ]

let () =
  let g = build_fig7 () in
  Format.printf "The graph (Figure 7-a):@.%a@.@." Graph.pp g;

  let params = Session.random_params g in
  let describe (backend : Backend_intf.t) =
    let outputs, result = Session.run backend Arch.v100 g ~params in
    Printf.printf "%-8s: %2d memory-intensive kernels, simulated %7.1f us\n"
      backend.name
      (Profile.mem_kernel_count result.profile)
      result.profile.Profile.total_time_us;
    (outputs, result)
  in
  Printf.printf "Compiling and executing (results checked against the \
                 reference interpreter):\n";
  let _ = describe Astitch_backends.Tf_backend.backend in
  let _ = describe Astitch_backends.Xla_backend.backend in
  let _, astitch = describe Astitch_core.Astitch.full_backend in

  Printf.printf "\nAStitch lowers the whole subgraph to one kernel:\n\n";
  print_string (Astitch_core.Codegen.emit_plan astitch.plan);

  let kernel = List.hd (Kernel_plan.memory_intensive_kernels astitch.plan) in
  Printf.printf "Stitching schemes chosen (Table 1 of the paper):\n";
  List.iter
    (fun (o : Kernel_plan.compiled_op) ->
      Printf.printf "  %%%d %-12s -> %-11s in %s\n" o.id
        (Op.mnemonic (Graph.op g o.id))
        (Scheme.to_string o.scheme)
        (Kernel_plan.placement_to_string o.placement))
    kernel.ops
