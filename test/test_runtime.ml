(* Runtime: every backend's plan executes to the reference interpreter's
   values, and the simulated profiles have the paper's shape (AStitch:
   fewer kernels, less DRAM write traffic, faster). *)

open Astitch_ir
open Astitch_simt
open Astitch_plan
open Astitch_runtime

let check = Alcotest.(check bool)

let all_backends =
  [
    Astitch_backends.Tf_backend.backend;
    Astitch_backends.Xla_backend.backend;
    Astitch_backends.Tvm_backend.backend;
    Astitch_backends.Tvm_backend.ansor;
    Astitch_backends.Trt_backend.backend;
    Astitch_core.Astitch.full_backend;
    Astitch_core.Astitch.atm_backend;
    Astitch_core.Astitch.hdm_backend;
  ]

let check_all_backends name g =
  let params = Session.random_params g in
  List.iter
    (fun (b : Backend_intf.t) ->
      match Session.run b Arch.v100 g ~params with
      | _ -> ()
      | exception e ->
          Alcotest.failf "%s on %s: %s" b.name name (Printexc.to_string e))
    all_backends

let softmax_graph () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4; 8 ] in
  Builder.finish b ~outputs:[ Builder.softmax b x ]

let layernorm_graph () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 3; 16 ] in
  let gamma = Builder.parameter b "gamma" [ 16 ] in
  let beta = Builder.parameter b "beta" [ 16 ] in
  Builder.finish b ~outputs:[ Builder.layer_norm b x ~gamma ~beta ]

let attention_graph () =
  let b = Builder.create () in
  let q = Builder.parameter b "q" [ 2; 4; 8 ] in
  let k = Builder.parameter b "k" [ 2; 4; 8 ] in
  let v = Builder.parameter b "v" [ 2; 4; 8 ] in
  let out = Astitch_workloads.Blocks.attention b ~q ~k ~v ~mask:None ~scale:0.35 in
  Builder.finish b ~outputs:[ out ]

let test_softmax_equivalence () = check_all_backends "softmax" (softmax_graph ())
let test_layernorm_equivalence () = check_all_backends "layernorm" (layernorm_graph ())
let test_attention_equivalence () = check_all_backends "attention" (attention_graph ())

let test_executor_rejects_bad_plan () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4 ] in
  let t = Builder.tanh b x in
  let r = Builder.neg b t in
  let g = Builder.finish b ~outputs:[ r ] in
  let mapping = Thread_mapping.Elementwise { elements = 4; block = 32; grid = 1; rows = None } in
  let k =
    {
      Kernel_plan.name = "bad";
      kind = Kernel_plan.Codegen;
      ops =
        [
          {
            Kernel_plan.id = r;
            scheme = Scheme.Local;
            placement = Kernel_plan.Device_mem;
            mapping;
            recompute = 1;
            group = 0;
          };
        ];
      launch = Launch.make ~grid:1 ~block:32 ();
      barriers = 0;
      scratch_bytes = 0;
    }
  in
  let plan =
    { Kernel_plan.arch = Arch.v100; graph = g; kernels = [ k ];
      memcpys = 0; memsets = 0; memcpy_bytes = 0; batch = None }
  in
  match Executor.run plan ~params:[ ("x", Astitch_tensor.Tensor.ones (Shape.of_list [ 4 ])) ] with
  | _ -> Alcotest.fail "expected Execution_error"
  | exception Executor.Execution_error _ -> ()

(* --- Profile shape ---------------------------------------------------------- *)

let profiles g =
  let xla = Session.compile Astitch_backends.Xla_backend.backend Arch.v100 g in
  let astitch = Session.compile Astitch_core.Astitch.full_backend Arch.v100 g in
  (xla, astitch)

let big_softmax_graph () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 512; 1024 ] in
  let s = Builder.softmax b x in
  let gamma = Builder.parameter b "gamma" [ 1024 ] in
  let beta = Builder.parameter b "beta" [ 1024 ] in
  Builder.finish b ~outputs:[ Builder.layer_norm b s ~gamma ~beta ]

let test_profile_astitch_wins () =
  let g = big_softmax_graph () in
  let xla, astitch = profiles g in
  check "fewer kernels" true
    (Profile.mem_kernel_count astitch.profile < Profile.mem_kernel_count xla.profile);
  check "faster" true
    (astitch.profile.Profile.total_time_us < xla.profile.Profile.total_time_us);
  let cx = Profile.mem_counters xla.profile in
  let ca = Profile.mem_counters astitch.profile in
  check "fewer dram writes" true
    (ca.dram_write_transactions < cx.dram_write_transactions)

let test_profile_components_positive () =
  let g = big_softmax_graph () in
  let _, astitch = profiles g in
  let p = astitch.profile in
  check "total positive" true (p.total_time_us > 0.);
  check "mem positive" true (p.mem_time_us > 0.);
  check "overhead positive" true (p.overhead_us > 0.);
  check "sum" true
    (abs_float (p.total_time_us -. (p.mem_time_us +. p.compute_time_us +. p.overhead_us))
    < 1e-6)

let test_top_mem_kernels () =
  let g = big_softmax_graph () in
  let xla, _ = profiles g in
  let top = Profile.top_mem_kernels ~frac:0.8 xla.profile in
  check "nonempty" true (top <> []);
  check "subset" true
    (List.length top <= List.length (Profile.mem_kernels_by_time xla.profile));
  let occ = Profile.avg_occupancy top in
  check "occ in [0,1]" true (occ >= 0. && occ <= 1.)

let test_tf_overhead_dominates () =
  let g = softmax_graph () in
  let tf = Session.compile Astitch_backends.Tf_backend.backend Arch.v100 g in
  (* tiny tensors: TF's per-op framework overhead must dominate *)
  check "overhead > mem" true
    (tf.profile.Profile.overhead_us > tf.profile.Profile.mem_time_us)

(* --- Sessions ----------------------------------------------------------------- *)

let test_random_params () =
  let g = softmax_graph () in
  let p1 = Session.random_params g in
  let p2 = Session.random_params g in
  check "deterministic" true
    (List.for_all2
       (fun (n1, t1) (n2, t2) ->
         n1 = n2 && Astitch_tensor.Tensor.equal_approx t1 t2)
       p1 p2);
  let p3 = Session.random_params ~seed:99 g in
  check "seed changes data" false
    (List.for_all2
       (fun (_, t1) (_, t2) -> Astitch_tensor.Tensor.equal_approx t1 t2)
       p1 p3)

let test_compare_backends_order () =
  let g = softmax_graph () in
  let results =
    Session.compare_backends
      [ Astitch_backends.Tf_backend.backend; Astitch_core.Astitch.full_backend ]
      Arch.v100 g
  in
  Alcotest.(check (list string)) "input order"
    [ "TensorFlow"; "AStitch" ]
    (List.map (fun (r : Session.result) -> r.backend_name) results);
  match results with
  | [ tf; astitch ] ->
      check "speedup > 1" true (Session.speedup ~baseline:tf ~contender:astitch > 1.)
  | _ -> Alcotest.fail "two results expected"

(* --- Counters and profile internals --------------------------------------------- *)

let test_mem_counters_exclude_library () =
  (* Table 5 counts memory-intensive kernels only: a GEMM-dominated graph
     must show tiny counters *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 64; 64 ] in
  let w = Builder.parameter b "w" [ 64; 64 ] in
  let d = Builder.dot b x w in
  let out = Builder.neg b d in
  let g = Builder.finish b ~outputs:[ out ] in
  let r = Session.compile Astitch_backends.Xla_backend.backend Arch.v100 g in
  let c = Profile.mem_counters r.profile in
  (* the neg kernel reads+writes 16KB: 512 transactions each way; the
     GEMM's far larger traffic must not appear *)
  check "reads bounded" true (c.dram_read_transactions <= 1200);
  check "insts exclude matmul" true (c.inst_fp32 <= 64 * 64 * 2)

let test_library_kernels_faster_on_a100 () =
  (* TF32 tensor cores: the same GEMM costs less on A100 *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 1024; 1024 ] in
  let w = Builder.parameter b "w" [ 1024; 1024 ] in
  let g = Builder.finish b ~outputs:[ Builder.dot b x w ] in
  let time arch =
    let r = Session.compile Astitch_backends.Xla_backend.backend arch g in
    r.profile.Profile.compute_time_us
  in
  check "a100 much faster" true (time Arch.v100 /. time Arch.a100 > 3.)

let test_copy_kernels_costed_as_memcpy () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 64; 64 ] in
  let w = Builder.parameter b "w" [ 64; 64 ] in
  let d = Builder.dot b x w in
  let rs = Builder.reshape b d [ 4096 ] in
  let g = Builder.finish b ~outputs:[ rs ] in
  let r = Session.compile Astitch_backends.Xla_backend.backend Arch.v100 g in
  let copy =
    List.find
      (fun (kp : Profile.kernel_profile) -> kp.kernel.kind = Kernel_plan.Copy)
      r.profile.kernels
  in
  check "latency-floor cost" true (copy.estimate.Cost_model.time_us >= 6.0)

let test_executor_kernel_order_enforced () =
  (* kernels out of dependency order must be rejected at execution *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4 ] in
  let t = Builder.tanh b x in
  let r = Builder.neg b t in
  let g = Builder.finish b ~outputs:[ r ] in
  let mapping = Thread_mapping.Elementwise { elements = 4; block = 32; grid = 1; rows = None } in
  let mk name id =
    {
      Kernel_plan.name;
      kind = Kernel_plan.Codegen;
      ops =
        [
          {
            Kernel_plan.id;
            scheme = Scheme.Local;
            placement = Kernel_plan.Device_mem;
            mapping;
            recompute = 1;
            group = 0;
          };
        ];
      launch = Launch.make ~grid:1 ~block:32 ();
      barriers = 0;
      scratch_bytes = 0;
    }
  in
  let plan =
    { Kernel_plan.arch = Arch.v100; graph = g;
      kernels = [ mk "second" r; mk "first" t ];
      memcpys = 0; memsets = 0; memcpy_bytes = 0; batch = None }
  in
  match
    Executor.run plan
      ~params:[ ("x", Astitch_tensor.Tensor.ones (Shape.of_list [ 4 ])) ]
  with
  | _ -> Alcotest.fail "expected Execution_error"
  | exception Executor.Execution_error _ -> ()

let () =
  Alcotest.run "runtime"
    [
      ( "equivalence",
        [
          Alcotest.test_case "softmax" `Quick test_softmax_equivalence;
          Alcotest.test_case "layernorm" `Quick test_layernorm_equivalence;
          Alcotest.test_case "attention" `Quick test_attention_equivalence;
          Alcotest.test_case "bad plan rejected" `Quick test_executor_rejects_bad_plan;
        ] );
      ( "profile",
        [
          Alcotest.test_case "astitch wins" `Quick test_profile_astitch_wins;
          Alcotest.test_case "components" `Quick test_profile_components_positive;
          Alcotest.test_case "top kernels" `Quick test_top_mem_kernels;
          Alcotest.test_case "tf overhead" `Quick test_tf_overhead_dominates;
        ] );
      ( "session",
        [
          Alcotest.test_case "random params" `Quick test_random_params;
          Alcotest.test_case "compare backends" `Quick test_compare_backends_order;
        ] );
      ( "internals",
        [
          Alcotest.test_case "on-chip values die with kernel" `Quick
            (fun () ->
              (* a register value read by a LATER kernel must be rejected
                 at execution time, not just by the static checker *)
              let b = Builder.create () in
              let x = Builder.parameter b "x" [ 4 ] in
              let t = Builder.tanh b x in
              let r = Builder.neg b t in
              let g = Builder.finish b ~outputs:[ r ] in
              let mapping =
                Thread_mapping.Elementwise
                  { elements = 4; block = 32; grid = 1; rows = None }
              in
              let mk name id placement =
                {
                  Kernel_plan.name;
                  kind = Kernel_plan.Codegen;
                  ops =
                    [
                      {
                        Kernel_plan.id;
                        scheme = Scheme.Local;
                        placement;
                        mapping;
                        recompute = 1;
                        group = 0;
                      };
                    ];
                  launch = Launch.make ~grid:1 ~block:32 ();
                  barriers = 0;
                  scratch_bytes = 0;
                }
              in
              let plan =
                {
                  Kernel_plan.arch = Arch.v100;
                  graph = g;
                  kernels =
                    [
                      mk "producer" t Kernel_plan.Register;
                      mk "consumer" r Kernel_plan.Device_mem;
                    ];
                  memcpys = 0;
                  memsets = 0;
                  memcpy_bytes = 0;
                  batch = None;
                }
              in
              match
                Executor.run plan
                  ~params:
                    [ ("x", Astitch_tensor.Tensor.ones (Shape.of_list [ 4 ])) ]
              with
              | _ -> Alcotest.fail "expected Execution_error"
              | exception Executor.Execution_error _ -> ());
          Alcotest.test_case "counters scope" `Quick test_mem_counters_exclude_library;
          Alcotest.test_case "a100 tensor cores" `Quick test_library_kernels_faster_on_a100;
          Alcotest.test_case "copy cost" `Quick test_copy_kernels_costed_as_memcpy;
          Alcotest.test_case "kernel order" `Quick test_executor_kernel_order_enforced;
        ] );
    ]
