(* The textual graph format: golden output, parsing, round-tripping,
   error reporting. *)

open Astitch_ir

let check = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let small_graph () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4; 8 ] in
  let t = Builder.tanh b x in
  let r = Builder.reduce_sum b ~axes:[ 1 ] t in
  let bc = Builder.broadcast b r ~dims:[ 0 ] [ 4; 8 ] in
  let out = Builder.add b bc x in
  Builder.finish b ~outputs:[ out ]

let test_golden_print () =
  let text = Text_format.to_string (small_graph ()) in
  check_string "golden"
    "graph {\n\
    \  %0 = parameter \"x\" f32<4,8>\n\
    \  %1 = tanh %0\n\
    \  %2 = reduce.sum axes=[1] %1\n\
    \  %3 = broadcast dims=[0] %2 -> <4,8>\n\
    \  %4 = add %3 %0\n\
    \  outputs %4\n\
     }\n"
    text

let test_parse_golden () =
  let g =
    Text_format.parse
      "graph {\n\
      \  %0 = parameter \"x\" f32<4,8>   # a comment\n\
      \  %1 = tanh %0\n\
      \  %2 = reduce.sum axes=[1] %1\n\
      \  %3 = broadcast dims=[0] %2 -> <4,8>\n\
      \  %4 = add %3 %0\n\
      \  outputs %4\n\
       }\n"
  in
  Graph.validate g;
  Alcotest.(check int) "nodes" 5 (Graph.num_nodes g);
  check "reduce present" true (Op.is_reduce (Graph.op g 2))

let test_roundtrip_all_ops () =
  (* a graph touching every op constructor *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 2; 3 ] in
  let w = Builder.parameter b "w" [ 3; 2 ] in
  let c = Builder.constant b 1.5 ~dims:[ 2; 3 ] in
  let i = Builder.iota b ~axis:1 [ 2; 3 ] in
  let u = Builder.exp b x in
  let bin = Builder.add b u c in
  let pred = Builder.gt b bin i in
  let sel = Builder.select b ~pred ~on_true:bin ~on_false:c in
  let tr = Builder.transpose b sel ~perm:[ 1; 0 ] in
  let d = Builder.dot b sel w in
  let rs = Builder.reshape b d [ 4 ] in
  let sl = Builder.slice b rs ~starts:[ 1 ] ~stops:[ 3 ] in
  let pd = Builder.pad b sl ~low:[ 1 ] ~high:[ 1 ] in
  let cc = Builder.concat b ~axis:0 [ pd; rs ] in
  let red = Builder.reduce_max b ~axes:[ 0 ] cc in
  let img = Builder.parameter b "img" [ 1; 4; 4; 1 ] in
  let filt = Builder.parameter b "f" [ 2; 2; 1; 1 ] in
  let conv = Builder.conv2d b ~stride:2 img filt in
  let g = Builder.finish b ~outputs:[ red; conv; tr ] in
  let text = Text_format.to_string g in
  let g2 = Text_format.parse text in
  check_string "round trip" text (Text_format.to_string g2);
  (* and the parsed graph computes the same values *)
  let params =
    List.map
      (fun id ->
        match Graph.op g id with
        | Op.Parameter { name } ->
            ( name,
              Astitch_tensor.Tensor.random ~seed:(3 * (id + 1))
                (Graph.shape g id) )
        | _ -> assert false)
      (Graph.parameters g)
  in
  List.iter2
    (fun a b2 -> check "values" true (Astitch_tensor.Tensor.equal_approx a b2))
    (Astitch_tensor.Interp.run g ~params)
    (Astitch_tensor.Interp.run g2 ~params)

let expect_parse_error text =
  match Text_format.parse text with
  | _ -> Alcotest.failf "expected Parse_error on: %s" text
  | exception Text_format.Parse_error _ -> ()

let test_parse_errors () =
  expect_parse_error "graph {\n  %0 = tanh %5\n  outputs %0\n}";
  expect_parse_error "graph {\n  %0 = parameter \"x\" f32<2>\n}";
  (* no outputs *)
  expect_parse_error "graph {\n  %1 = parameter \"x\" f32<2>\n  outputs %1\n}";
  (* ids not dense *)
  expect_parse_error
    "graph {\n  %0 = frobnicate %0\n  outputs %0\n}";
  expect_parse_error
    "graph {\n  %0 = parameter \"x\" f99<2>\n  outputs %0\n}"

let test_roundtrip_constants_precisely () =
  (* %h printing keeps exact float bits through the round trip *)
  let b = Builder.create () in
  let c = Builder.constant b 0.1 ~dims:[ 2 ] in
  let x = Builder.parameter b "x" [ 2 ] in
  let out = Builder.add b x c in
  let g = Builder.finish b ~outputs:[ out ] in
  let g2 = Text_format.parse (Text_format.to_string g) in
  match Graph.op g2 0 with
  | Op.Constant { value } -> check "exact" true (value = 0.1)
  | _ -> (
      match Graph.op g2 1 with
      | Op.Constant { value } -> check "exact" true (value = 0.1)
      | _ -> Alcotest.fail "constant not found")

let () =
  Alcotest.run "text_format"
    [
      ( "print/parse",
        [
          Alcotest.test_case "golden print" `Quick test_golden_print;
          Alcotest.test_case "parse golden" `Quick test_parse_golden;
          Alcotest.test_case "all ops round trip" `Quick test_roundtrip_all_ops;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "constants exact" `Quick
            test_roundtrip_constants_precisely;
        ] );
    ]
