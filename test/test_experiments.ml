(* The experiment harness: registry integrity, cheap experiments run, and
   the report renderer. *)

module E = Astitch_experiments.Experiments
module R = Astitch_experiments.Report

let check = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let test_registry () =
  let ids = List.map (fun (n, _, _) -> n) E.all in
  (* every table/figure of the paper's evaluation section is present *)
  List.iter
    (fun required ->
      check ("has " ^ required) true (List.mem required ids))
    [
      "fig1"; "fig6"; "fig11a"; "fig11b"; "fig12"; "fig13"; "table3";
      "fig14"; "table4"; "fig15"; "fig16"; "table5"; "ansor"; "table6";
      "overhead";
    ];
  check "ids unique" true
    (List.length ids = List.length (List.sort_uniq compare ids))

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_unknown_experiment () =
  match E.run "no-such-experiment" with
  | () -> Alcotest.fail "expected Compile_error.Error"
  | exception Astitch_plan.Compile_error.Error e ->
      let msg = Astitch_plan.Compile_error.to_string e in
      (* the error must name the offender and list what is available *)
      check "names offender" true (contains msg "no-such-experiment");
      List.iter
        (fun id -> check ("lists " ^ id) true (contains msg id))
        [ "fig1"; "table4"; "overhead" ]

(* run the cheap experiments end-to-end (output goes to stdout) *)
let test_cheap_experiments_run () =
  List.iter E.run [ "table6"; "fig6" ]

let test_clear_caches () =
  E.run "fig6";
  E.clear_caches ();
  E.run "fig6"

let test_report_table () =
  let rendered =
    R.table ~title:"t" ~header:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  check_string "layout"
    "=== t ===\na    bb\n-------\n1    2 \n333  4 \n" rendered

let test_report_formats () =
  check_string "pct" "12.5%" (R.pct 0.125);
  check_string "speedup" "1.84x" (R.speedup 1.84);
  check_string "us" "3.5us" (R.us 3.5);
  check_string "ms" "1.50ms" (R.ms_of_us 1500.);
  check_string "f1" "1.9" (R.f1 1.85);
  check_string "f2" "1.85" (R.f2 1.85)

let () =
  Alcotest.run "experiments"
    [
      ( "harness",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "unknown id" `Quick test_unknown_experiment;
          Alcotest.test_case "cheap experiments" `Quick test_cheap_experiments_run;
          Alcotest.test_case "cache clearing" `Quick test_clear_caches;
        ] );
      ( "report",
        [
          Alcotest.test_case "table" `Quick test_report_table;
          Alcotest.test_case "formats" `Quick test_report_formats;
        ] );
    ]
