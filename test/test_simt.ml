(* SIMT device model: occupancy calculator reference points, barrier
   legality and cost, roofline estimates. *)

open Astitch_simt

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let launch ?(regs = 32) ?(smem = 0) grid block =
  Launch.make ~regs_per_thread:regs ~shared_mem_per_block:smem ~grid ~block ()

(* The paper's reference point: V100, block 1024 -> 160 blocks per wave. *)
let test_v100_reference () =
  let l = launch 1 1024 in
  check_int "blocks/SM" 2 (Occupancy.blocks_per_sm Arch.v100 l);
  check_int "blocks/wave" 160 (Occupancy.blocks_per_wave Arch.v100 l);
  Alcotest.(check (float 1e-9)) "theoretical occ" 1.0
    (Occupancy.theoretical_occupancy Arch.v100 l)

let test_small_block_occupancy () =
  (* block 32: limited by 32 blocks/SM -> 1024 threads = 50% occupancy *)
  let l = launch 750_000 32 in
  check_int "blocks/SM" 32 (Occupancy.blocks_per_sm Arch.v100 l);
  Alcotest.(check (float 1e-6)) "occ 50%" 0.5
    (Occupancy.theoretical_occupancy Arch.v100 l)

let test_small_grid_fullness () =
  (* Fig 6(b): 64 blocks of 1024 on V100 -> 40% of one wave; the 64 active
     SMs hold one block each where two fit -> 50% achieved occupancy *)
  let l = launch 64 1024 in
  Alcotest.(check (float 1e-6)) "fullness" 0.4 (Occupancy.wave_fullness Arch.v100 l);
  Alcotest.(check (float 1e-6)) "achieved occ" 0.5
    (Occupancy.achieved_occupancy Arch.v100 l);
  (* 128 blocks spread over 80 SMs: 1.6 resident blocks avg -> 80% *)
  Alcotest.(check (float 1e-6)) "achieved occ 128" 0.8
    (Occupancy.achieved_occupancy Arch.v100 (launch 128 1024))

let test_resource_limits () =
  (* registers bound residency: 64 regs x 1024 threads fills the file *)
  let l = launch ~regs:64 1 1024 in
  check "reg-bound blocks/SM < 2" true (Occupancy.blocks_per_sm Arch.v100 l < 2);
  (* a 255-reg 1024-thread block cannot launch at all *)
  (match Occupancy.check_launchable Arch.v100 (launch ~regs:255 1 1024) with
  | () -> Alcotest.fail "255 regs x 1024 threads must be unlaunchable"
  | exception Occupancy.Unlaunchable _ -> ());
  (* shared memory bounds residency *)
  let l = launch ~smem:(40 * 1024) 1 256 in
  check_int "smem-bound" 2 (Occupancy.blocks_per_sm Arch.v100 l);
  (* unlaunchable configs *)
  (match Occupancy.check_launchable Arch.v100 (launch 1 2048) with
  | () -> Alcotest.fail "block 2048 must be unlaunchable"
  | exception Occupancy.Unlaunchable _ -> ());
  match Occupancy.check_launchable Arch.v100 (launch ~smem:(100 * 1024) 1 256) with
  | () -> Alcotest.fail "smem 100KB must be unlaunchable"
  | exception Occupancy.Unlaunchable _ -> ()

let test_waves () =
  let l = launch 320 1024 in
  check_int "two waves" 2 (Occupancy.waves Arch.v100 l);
  Alcotest.(check (float 1e-6)) "full" 1.0 (Occupancy.wave_fullness Arch.v100 l);
  let l = launch 161 1024 in
  check_int "tail wave" 2 (Occupancy.waves Arch.v100 l);
  check "tail fullness ~ 0.5" true
    (abs_float (Occupancy.wave_fullness Arch.v100 l -. (161. /. 320.)) < 1e-9)

(* --- Barrier (Table 6) -------------------------------------------------- *)

let test_barrier_legality () =
  check "160 legal" true (Barrier.is_legal Arch.v100 (launch 160 1024));
  check "161 illegal" false (Barrier.is_legal Arch.v100 (launch 161 1024));
  match Barrier.check_legal Arch.v100 (launch 300 1024) with
  | () -> Alcotest.fail "expected deadlock"
  | exception Barrier.Deadlock _ -> ()

(* the legality boundary is exactly the co-residency limit whatever the
   block geometry: computed from the occupancy model, never hard-coded *)
let test_barrier_boundary_tracks_occupancy () =
  List.iter
    (fun ((arch : Arch.t), block) ->
      let bpw = Occupancy.blocks_per_wave arch (launch 1 block) in
      let label s = Printf.sprintf "%s/block=%d: %s" arch.name block s in
      check (label "one wave legal") true
        (Barrier.is_legal arch (launch bpw block));
      check (label "one block past the wave illegal") false
        (Barrier.is_legal arch (launch (bpw + 1) block));
      (match Barrier.check_legal arch (launch bpw block) with
      | () -> ()
      | exception Barrier.Deadlock _ ->
          Alcotest.fail (label "legal grid deadlocked"));
      match Barrier.check_legal arch (launch (bpw + 1) block) with
      | () -> Alcotest.fail (label "expected Deadlock past the wave")
      | exception Barrier.Deadlock _ -> ())
    [ (Arch.v100, 1024); (Arch.v100, 32); (Arch.t4, 256); (Arch.a100, 1024) ]

let test_barrier_cost_shape () =
  (* Table 6: ~2.5us at 20 blocks, <= ~2.8us at 160; weakly increasing *)
  let c20 = Barrier.cost_us ~blocks:20 in
  let c160 = Barrier.cost_us ~blocks:160 in
  check "c20 in band" true (c20 > 2.3 && c20 < 2.7);
  check "c160 in band" true (c160 > c20 && c160 < 2.9);
  check "below launch overhead" true
    (c160 < Cost_model.default_config.kernel_launch_overhead_us)

(* more co-resident blocks can only make the all-arrive sync slower *)
let test_barrier_cost_monotone () =
  ignore
    (List.fold_left
       (fun prev blocks ->
         let c = Barrier.cost_us ~blocks in
         check
           (Printf.sprintf "cost at %d blocks >= cost at fewer" blocks)
           true (c >= prev);
         c)
       0.
       [ 1; 20; 80; 160; 320; 1280; 2560 ])

(* --- Cost model ---------------------------------------------------------- *)

let est ?(work = Cost_model.no_work) l = Cost_model.estimate Arch.v100 l work

let test_cost_monotone_bytes () =
  let l = launch 160 1024 in
  let w bytes = { Cost_model.no_work with dram_read_bytes = bytes } in
  let t1 = (Cost_model.estimate Arch.v100 l (w 1_000_000)).exec_time_us in
  let t2 = (Cost_model.estimate Arch.v100 l (w 10_000_000)).exec_time_us in
  check "more bytes, more time" true (t2 > t1)

let test_cost_occupancy_derates () =
  let w = { Cost_model.no_work with dram_read_bytes = 100_000_000 } in
  (* same bytes, small grid (underutilized) vs full wave *)
  let t_small = (Cost_model.estimate Arch.v100 (launch 16 1024) w).exec_time_us in
  let t_full = (Cost_model.estimate Arch.v100 (launch 160 1024) w).exec_time_us in
  check "underutilization is slower" true (t_small > t_full)

let test_cost_overheads () =
  let e = est (launch 1 32) in
  check "launch overhead present" true (e.Cost_model.overhead_us >= 8.0);
  let cfg =
    { Cost_model.default_config with framework_op_overhead_us = 20. }
  in
  let e2 = Cost_model.estimate ~config:cfg Arch.v100 (launch 1 32) Cost_model.no_work in
  check "framework overhead adds" true
    (e2.Cost_model.overhead_us > e.Cost_model.overhead_us +. 19.)

let test_cost_barrier_deadlock () =
  let w = { Cost_model.no_work with num_barriers = 1 } in
  match Cost_model.estimate Arch.v100 (launch 300 1024) w with
  | _ -> Alcotest.fail "expected deadlock"
  | exception Barrier.Deadlock _ -> ()

let test_transactions () =
  check_int "exact" 4 (Cost_model.transactions 128);
  check_int "round up" 5 (Cost_model.transactions 129);
  check_int "zero" 0 (Cost_model.transactions 0)

let test_archs () =
  check "A100 has more bandwidth" true
    (Arch.a100.dram_bandwidth_gbs > Arch.v100.dram_bandwidth_gbs);
  check "T4 smaller" true (Arch.t4.num_sms < Arch.v100.num_sms);
  check "by_name" true (Arch.by_name "v100" = Some Arch.v100);
  check "by_name unknown" true (Arch.by_name "hopper" = None)

let () =
  Alcotest.run "simt"
    [
      ( "occupancy",
        [
          Alcotest.test_case "v100 reference" `Quick test_v100_reference;
          Alcotest.test_case "small blocks" `Quick test_small_block_occupancy;
          Alcotest.test_case "small grid" `Quick test_small_grid_fullness;
          Alcotest.test_case "resource limits" `Quick test_resource_limits;
          Alcotest.test_case "waves" `Quick test_waves;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "legality" `Quick test_barrier_legality;
          Alcotest.test_case "boundary tracks occupancy" `Quick
            test_barrier_boundary_tracks_occupancy;
          Alcotest.test_case "cost shape" `Quick test_barrier_cost_shape;
          Alcotest.test_case "cost monotone in blocks" `Quick
            test_barrier_cost_monotone;
        ] );
      ( "cost",
        [
          Alcotest.test_case "monotone bytes" `Quick test_cost_monotone_bytes;
          Alcotest.test_case "occupancy derates" `Quick test_cost_occupancy_derates;
          Alcotest.test_case "overheads" `Quick test_cost_overheads;
          Alcotest.test_case "barrier deadlock" `Quick test_cost_barrier_deadlock;
          Alcotest.test_case "transactions" `Quick test_transactions;
          Alcotest.test_case "archs" `Quick test_archs;
        ] );
    ]
