(* Regression tests for bugs found (and fixed) while building the
   reproduction.  Each test reconstructs the original failure structure. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Bug 1: undirected union-find component formation let softmax's
   reduce->broadcast->divide and reduce->(in-kernel)->divide paths form a
   cyclic kernel pair under TRT's broadcast cuts. *)
let test_trt_softmax_schedulable () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4; 8 ] in
  let g = Builder.finish b ~outputs:[ Builder.softmax b x ] in
  let plan = Astitch_backends.Trt_backend.compile Arch.v100 g in
  Kernel_plan.check plan

(* Bug 2: pairwise merge-legality checks on node-level paths missed
   kernel-level cycles through components with no internal directed path
   (seed 13866 of the synthetic generator). *)
let test_contraction_cycle_seed_13866 () =
  let g = Astitch_workloads.Synthetic.random_graph ~seed:13866 ~nodes:120 () in
  List.iter
    (fun (backend : Backend_intf.t) ->
      Kernel_plan.check (backend.compile Arch.v100 g))
    [
      Astitch_backends.Trt_backend.backend;
      Astitch_backends.Xla_backend.backend;
      Astitch_backends.Tvm_backend.backend;
    ]

(* Bug 3: greedy remote stitching merged mutually-unreachable clusters
   into groups that were cyclic *between* groups (CRNN tiny). *)
let test_remote_stitch_group_dag () =
  let g = Astitch_workloads.Crnn.tiny () in
  Kernel_plan.check (Astitch_core.Astitch.compile Arch.v100 g)

(* Bug 4: a reduce pulled into a fusion component through a side path was
   left in registers with recompute = row_length x fanout, exploding the
   simulated time by ~50x (Transformer training log-softmax backward).
   The reduce must become a multi-output fusion root. *)
let test_reduce_never_recomputed_in_xla () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 64; 256 ] in
  (* softmax-like: the reduce's consumer also reads exp directly *)
  let e = Builder.exp b x in
  let z = Builder.reduce_sum b ~axes:[ 1 ] e in
  let z_b = Builder.broadcast b z ~dims:[ 0 ] [ 64; 256 ] in
  let out = Builder.div b e z_b in
  let g = Builder.finish b ~outputs:[ out ] in
  let plan = Astitch_backends.Xla_backend.compile Arch.v100 g in
  Kernel_plan.check plan;
  List.iter
    (fun (k : Kernel_plan.kernel) ->
      List.iter
        (fun (o : Kernel_plan.compiled_op) ->
          if Op.is_reduce (Graph.op g o.id) then begin
            check_int "reduce recompute" 1 o.recompute;
            check "reduce materialized" true
              (o.placement = Kernel_plan.Device_mem)
          end)
        k.ops)
    plan.kernels

(* Bug 5: dead nodes (no consumers, not outputs) were lowered and broke
   the register-fanout invariant; backends must DCE them. *)
let test_dead_nodes_not_lowered () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4 ] in
  let live = Builder.tanh b x in
  let dead_heavy = Builder.pow b x x in
  let _dead_bc = Builder.broadcast b dead_heavy ~dims:[ 0 ] [ 4; 16 ] in
  let g = Builder.finish b ~outputs:[ live ] in
  List.iter
    (fun (backend : Backend_intf.t) ->
      let plan = backend.compile Arch.v100 g in
      Kernel_plan.check plan;
      List.iter
        (fun (k : Kernel_plan.kernel) ->
          List.iter
            (fun (o : Kernel_plan.compiled_op) ->
              check "only live ops lowered" true (o.id = x || o.id = live))
            k.ops)
        plan.kernels)
    [
      Astitch_backends.Tf_backend.backend;
      Astitch_backends.Xla_backend.backend;
      Astitch_core.Astitch.full_backend;
      Astitch_core.Astitch.hdm_backend;
    ]

(* Bug 6: the kernel schedule was derived from node-id order, which
   breaks after remote stitching interleaves cluster ids. *)
let test_toposort_after_remote_stitching () =
  (* two chains with a compute op forcing interleaved cluster positions *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 8; 8 ] in
  let a1 = Builder.tanh b x in
  let w = Builder.parameter b "w" [ 8; 8 ] in
  let d = Builder.dot b a1 w in
  let a2 = Builder.sigmoid b d in
  let y = Builder.parameter b "y" [ 8; 8 ] in
  let b1 = Builder.relu b y in (* independent of the chain above *)
  let g = Builder.finish b ~outputs:[ a2; b1 ] in
  let plan = Astitch_core.Astitch.compile Arch.v100 g in
  Kernel_plan.check plan;
  (* and it still executes correctly *)
  ignore
    (Astitch_runtime.Executor.run_and_check plan
       ~params:(Astitch_runtime.Session.random_params g))

(* Bug 7: a scalar-input full reduction took the whole-kernel schedule to
   grid 1; XLA's two-stage fallback must kick in for very long rows. *)
let test_two_stage_reduce_mapping () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 1; 1_000_000 ] in
  let r = Builder.reduce_sum b ~axes:[ 1 ] x in
  let g = Builder.finish b ~outputs:[ r ] in
  match Astitch_backends.Fusion_common.naive_mapping Arch.v100 g r with
  | Thread_mapping.Row_reduce m ->
      check "splits long row" true (m.split > 1)
  | _ -> Alcotest.fail "expected row-reduce"

(* ...while the Fig 6(b) shape must NOT be split by the baseline (that is
   exactly the pathology the paper pins on XLA). *)
let test_fig6b_not_split_by_xla () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 64; 30_000 ] in
  let r = Builder.reduce_sum b ~axes:[ 1 ] x in
  let g = Builder.finish b ~outputs:[ r ] in
  match Astitch_backends.Fusion_common.naive_mapping Arch.v100 g r with
  | Thread_mapping.Row_reduce m ->
      check_int "no split" 1 m.split;
      check_int "grid = rows" 64 (Thread_mapping.grid (Thread_mapping.Row_reduce m))
  | _ -> Alcotest.fail "expected row-reduce"

(* Bug 8: infinities compared unequal to themselves in tensor equality,
   tripping the equivalence check on exp overflow. *)
let test_inf_equality () =
  let t = Astitch_tensor.Tensor.scalar infinity in
  check "inf = inf" true (Astitch_tensor.Tensor.equal_approx t t);
  let n = Astitch_tensor.Tensor.scalar nan in
  check "nan = nan" true (Astitch_tensor.Tensor.equal_approx n n)

(* Bug 9: register footprints above the SM file crashed launches for
   large fusions; the register estimate must be capped by block size. *)
let test_register_cap_on_large_fusion () =
  let b = Builder.create () in
  let x = ref (Builder.parameter b "x" [ 64; 30_000 ]) in
  for _ = 1 to 40 do
    x := Builder.add b (Builder.tanh b !x) !x
  done;
  let r = Builder.reduce_sum b ~axes:[ 1 ] !x in
  let g = Builder.finish b ~outputs:[ r ] in
  let plan = Astitch_backends.Xla_backend.compile Arch.v100 g in
  Kernel_plan.check plan (* raises Unlaunchable without the cap *)

let () =
  Alcotest.run "regressions"
    [
      ( "fusion legality",
        [
          Alcotest.test_case "trt softmax" `Quick test_trt_softmax_schedulable;
          Alcotest.test_case "contraction cycle 13866" `Quick
            test_contraction_cycle_seed_13866;
          Alcotest.test_case "remote group DAG" `Quick test_remote_stitch_group_dag;
          Alcotest.test_case "toposort after remote" `Quick
            test_toposort_after_remote_stitching;
        ] );
      ( "recompute",
        [
          Alcotest.test_case "reduce roots" `Quick test_reduce_never_recomputed_in_xla;
          Alcotest.test_case "dead nodes" `Quick test_dead_nodes_not_lowered;
        ] );
      ( "mappings",
        [
          Alcotest.test_case "two-stage long reduce" `Quick test_two_stage_reduce_mapping;
          Alcotest.test_case "fig6b stays naive" `Quick test_fig6b_not_split_by_xla;
          Alcotest.test_case "register cap" `Quick test_register_cap_on_large_fusion;
        ] );
      ( "numerics",
        [ Alcotest.test_case "inf/nan equality" `Quick test_inf_equality ] );
    ]
