(* Property-based tests (qcheck):
   - THE invariant: any random graph, any backend -> plan passes all
     structural checks and executes to the reference interpreter's values;
   - occupancy-calculator algebra;
   - adaptive-mapping geometry always covers all rows within one wave;
   - scratch allocator never aliases live buffers. *)

open Astitch_simt
open Astitch_plan
open Astitch_runtime

let backends =
  [
    ("tf", Astitch_backends.Tf_backend.backend);
    ("xla", Astitch_backends.Xla_backend.backend);
    ("tvm", Astitch_backends.Tvm_backend.backend);
    ("ansor", Astitch_backends.Tvm_backend.ansor);
    ("trt", Astitch_backends.Trt_backend.backend);
    ("astitch", Astitch_core.Astitch.full_backend);
    ("atm", Astitch_core.Astitch.atm_backend);
    ("hdm", Astitch_core.Astitch.hdm_backend);
  ]

let prop_backend_equivalence =
  QCheck2.Test.make ~name:"all backends match the interpreter" ~count:60
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 20 80))
    (fun (seed, nodes) ->
      let g = Astitch_workloads.Synthetic.random_graph ~seed ~nodes () in
      let params = Session.random_params g in
      List.for_all
        (fun (name, b) ->
          match Session.run ~check:true b Arch.v100 g ~params with
          | _ -> true
          | exception e ->
              QCheck2.Test.fail_reportf "backend %s failed on seed %d: %s"
                name seed (Printexc.to_string e))
        backends)

let prop_plans_structurally_valid =
  QCheck2.Test.make ~name:"plans pass invariants" ~count:60
    QCheck2.Gen.(pair (int_range 10_001 20_000) (int_range 30 120))
    (fun (seed, nodes) ->
      let g = Astitch_workloads.Synthetic.random_graph ~seed ~nodes () in
      List.for_all
        (fun (name, (b : Backend_intf.t)) ->
          let plan = b.compile Arch.v100 g in
          match Kernel_plan.check plan with
          | () -> true
          | exception e ->
              QCheck2.Test.fail_reportf "plan check %s failed on seed %d: %s"
                name seed (Printexc.to_string e))
        backends)

let prop_astitch_never_more_kernels =
  QCheck2.Test.make
    ~name:"astitch never launches more memory-intensive kernels than XLA"
    ~count:60
    QCheck2.Gen.(pair (int_range 20_001 30_000) (int_range 30 120))
    (fun (seed, nodes) ->
      let g = Astitch_workloads.Synthetic.random_graph ~seed ~nodes () in
      let count (b : Backend_intf.t) =
        List.length (Kernel_plan.memory_intensive_kernels (b.compile Arch.v100 g))
      in
      count Astitch_core.Astitch.full_backend
      <= count Astitch_backends.Xla_backend.backend)

let prop_occupancy_bounds =
  QCheck2.Test.make ~name:"occupancy in [0,1], waves cover grid" ~count:200
    QCheck2.Gen.(
      triple (int_range 1 100_000) (int_range 1 32) (int_range 16 64))
    (fun (grid, warps, regs) ->
      let block = warps * 32 in
      let l = Launch.make ~regs_per_thread:regs ~grid ~block () in
      let occ = Occupancy.achieved_occupancy Arch.v100 l in
      let bpw = Occupancy.blocks_per_wave Arch.v100 l in
      let w = Occupancy.waves Arch.v100 l in
      occ >= 0. && occ <= 1. && w * bpw >= grid && (w - 1) * bpw < grid)

let prop_occupancy_monotone_regs =
  QCheck2.Test.make ~name:"more registers never increase occupancy" ~count:100
    QCheck2.Gen.(pair (int_range 1 8) (int_range 16 120))
    (fun (warps, regs) ->
      let block = warps * 32 in
      let occ r =
        Occupancy.theoretical_occupancy Arch.v100
          (Launch.make ~regs_per_thread:r ~grid:1000 ~block ())
      in
      occ regs >= occ (regs + 16))

let prop_adaptive_mapping_covers =
  QCheck2.Test.make ~name:"adaptive row-reduce covers rows within a wave"
    ~count:300
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 1 100_000))
    (fun (rows, row_length) ->
      let tm = Astitch_core.Adaptive_mapping.row_reduce Arch.v100 ~rows ~row_length in
      Thread_mapping.validate tm;
      let bpw = Astitch_core.Adaptive_mapping.blocks_per_wave Arch.v100 in
      match tm with
      | Thread_mapping.Row_reduce m ->
          let grid = Thread_mapping.grid tm in
          grid <= bpw
          && Thread_mapping.block tm <= 1024
          && (if m.split > 1 then grid = rows * m.split
              else grid * m.rows_per_block * m.row_groups_per_block >= rows)
      | _ -> false)

let prop_scratch_no_alias =
  QCheck2.Test.make ~name:"scratch allocator never aliases live buffers"
    ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 20)
        (triple (int_range 1 5000) (int_range 0 30) (int_range 0 10)))
    (fun entries ->
      let entries =
        List.mapi
          (fun i (size, def, extra) -> (i, size, def, def + extra))
          entries
      in
      let allocations, total = Astitch_core.Mem_planner.plan_scratch entries in
      match Astitch_core.Mem_planner.check_no_aliasing allocations with
      | () ->
          (* arena never exceeds sum of aligned sizes *)
          let sum =
            List.fold_left
              (fun acc (_, s, _, _) -> acc + ((s + 255) / 256 * 256))
              0 entries
          in
          total <= sum
      | exception Compile_error.Error _ -> false)

let prop_fit_shared_fits =
  QCheck2.Test.make ~name:"shared-memory demotion always fits the budget"
    ~count:200
    QCheck2.Gen.(
      pair (int_range 0 100_000)
        (list_size (int_range 0 12) (int_range 1 50_000)))
    (fun (budget, sizes) ->
      let entries = List.mapi (fun i s -> (i, s)) sizes in
      let kept, demoted = Astitch_core.Mem_planner.fit_shared ~budget entries in
      let total = List.fold_left (fun a (_, b) -> a + b) 0 kept in
      (total <= budget || kept = [])
      && List.length kept + List.length demoted = List.length entries)

let prop_transactions =
  QCheck2.Test.make ~name:"transactions round up to 32B sectors" ~count:200
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun bytes ->
      let t = Cost_model.transactions bytes in
      t * 32 >= bytes && (t = 0 || (t - 1) * 32 < bytes))

(* --- Compiler-pass properties -------------------------------------------- *)

let prop_simplify_preserves_values =
  QCheck2.Test.make ~name:"simplification preserves outputs" ~count:80
    QCheck2.Gen.(pair (int_range 30_001 40_000) (int_range 20 100))
    (fun (seed, nodes) ->
      let g = Astitch_workloads.Synthetic.random_graph ~seed ~nodes () in
      let g', _ = Astitch_ir.Simplify.run g in
      Astitch_ir.Graph.validate g';
      let params = Session.random_params g in
      let a = Astitch_tensor.Interp.run g ~params in
      let b = Astitch_tensor.Interp.run g' ~params in
      List.for_all2
        (fun x y -> Astitch_tensor.Tensor.equal_approx ~eps:1e-5 x y)
        a b)

let prop_simplify_never_grows =
  QCheck2.Test.make ~name:"simplification never grows the graph" ~count:80
    QCheck2.Gen.(pair (int_range 40_001 50_000) (int_range 20 100))
    (fun (seed, nodes) ->
      let g = Astitch_workloads.Synthetic.random_graph ~seed ~nodes () in
      let g', _ = Astitch_ir.Simplify.run g in
      Astitch_ir.Graph.num_nodes g' <= Astitch_ir.Graph.num_nodes g)

let prop_text_roundtrip =
  QCheck2.Test.make ~name:"textual IR round-trips" ~count:80
    QCheck2.Gen.(pair (int_range 50_001 60_000) (int_range 20 100))
    (fun (seed, nodes) ->
      let g = Astitch_workloads.Synthetic.random_graph ~seed ~nodes () in
      let text = Astitch_ir.Text_format.to_string g in
      let g2 = Astitch_ir.Text_format.parse text in
      Astitch_ir.Text_format.to_string g2 = text)

let prop_clusters_single_depth =
  QCheck2.Test.make ~name:"clusters never span compute depths" ~count:100
    QCheck2.Gen.(pair (int_range 60_001 70_000) (int_range 20 120))
    (fun (seed, nodes) ->
      let g = Astitch_workloads.Synthetic.random_graph ~seed ~nodes () in
      let depth = Clustering.compute_depths g in
      List.for_all
        (fun (c : Clustering.cluster) ->
          match c.nodes with
          | [] -> false
          | first :: rest -> List.for_all (fun n -> depth.(n) = depth.(first)) rest)
        (Clustering.clusters g))

let prop_kernel_dag_schedulable =
  QCheck2.Test.make
    ~name:"every backend's kernel list is already a valid schedule" ~count:80
    QCheck2.Gen.(pair (int_range 70_001 80_000) (int_range 20 120))
    (fun (seed, nodes) ->
      let g = Astitch_workloads.Synthetic.random_graph ~seed ~nodes () in
      List.for_all
        (fun (_, (b : Backend_intf.t)) ->
          let plan = b.compile Arch.v100 g in
          (* replaying toposort must keep a valid order (idempotent up to
             dependency-respecting permutation; check = full validation) *)
          let resorted =
            Kernel_plan.toposort_kernels g plan.kernels
          in
          Kernel_plan.check { plan with kernels = resorted };
          true)
        backends)

let prop_amp_never_slower =
  QCheck2.Test.make ~name:"AMP (f16) never increases simulated time" ~count:50
    QCheck2.Gen.(pair (int_range 80_001 90_000) (int_range 20 80))
    (fun (seed, nodes) ->
      let g = Astitch_workloads.Synthetic.random_graph ~seed ~nodes () in
      let gh = Astitch_ir.Amp.to_half g in
      let time graph =
        let plan = Astitch_core.Astitch.compile Arch.v100 graph in
        (Profile.profile plan).Profile.total_time_us
      in
      time gh <= time g +. 1e-6)

let prop_achieved_le_theoretical =
  QCheck2.Test.make ~name:"achieved occupancy <= theoretical" ~count:200
    QCheck2.Gen.(
      triple (int_range 1 100_000) (int_range 1 32) (int_range 16 64))
    (fun (grid, warps, regs) ->
      let l = Launch.make ~regs_per_thread:regs ~grid ~block:(warps * 32) () in
      Occupancy.achieved_occupancy Arch.v100 l
      <= Occupancy.theoretical_occupancy Arch.v100 l +. 1e-9)

let prop_launch_config_preserves_wave =
  QCheck2.Test.make
    ~name:"assume-relax-apply keeps the assumed blocks-per-wave" ~count:100
    QCheck2.Gen.(pair (int_range 1 48) (int_range 0 48))
    (fun (warps, smem_kb) ->
      let block = Stdlib.min 1024 (warps * 32) in
      let budget = Astitch_core.Launch_config.shared_mem_budget Arch.v100 in
      let smem = Stdlib.min budget (smem_kb * 1024) in
      let lc = Astitch_core.Launch_config.plan Arch.v100 ~block ~shared_mem_per_block:smem in
      lc.regs_per_thread >= Astitch_core.Adaptive_mapping.assumed_regs
      && (block < 1024
         || lc.blocks_per_wave >= Astitch_core.Adaptive_mapping.blocks_per_wave Arch.v100))

let prop_scatter_gather_mass =
  QCheck2.Test.make
    ~name:"scatter_add(ids, gather(t, ids)) preserves summed mass" ~count:100
    QCheck2.Gen.(pair (int_range 1 10) (int_range 1 12))
    (fun (rows, k) ->
      let open Astitch_ir in
      let b = Builder.create () in
      let t = Builder.parameter b "t" [ rows; 3 ] in
      let ids = Builder.parameter b "ids" [ k ] in
      let gathered = Builder.gather b t ids in
      let scattered = Builder.scatter_add b ~rows ids gathered in
      let total = Builder.reduce_sum b ~axes:[ 0; 1 ] scattered in
      let per_pick = Builder.reduce_sum b ~axes:[ 0; 1 ] gathered in
      let g = Builder.finish b ~outputs:[ total; per_pick ] in
      let params =
        [
          ("t", Astitch_tensor.Tensor.random ~seed:(rows + (17 * k)) (Shape.of_list [ rows; 3 ]));
          ( "ids",
            Astitch_tensor.Tensor.init (Shape.of_list [ k ]) (fun i ->
                float_of_int ((i * 7) mod rows)) );
        ]
      in
      match Astitch_tensor.Interp.run g ~params with
      | [ a; b2 ] ->
          Float.abs
            (Astitch_tensor.Tensor.get_linear a 0
            -. Astitch_tensor.Tensor.get_linear b2 0)
          < 1e-6
      | _ -> false)

let prop_max_pool_dominates_members =
  QCheck2.Test.make ~name:"max-pool output >= every window member" ~count:100
    QCheck2.Gen.(pair (int_range 2 6) (int_range 0 10_000))
    (fun (hw, seed) ->
      let open Astitch_ir in
      let b = Builder.create () in
      let x = Builder.parameter b "x" [ 1; hw; hw; 2 ] in
      let p = Builder.max_pool b ~window:2 ~stride:1 x in
      let g = Builder.finish b ~outputs:[ p ] in
      let xt = Astitch_tensor.Tensor.random ~seed (Shape.of_list [ 1; hw; hw; 2 ]) in
      match Astitch_tensor.Interp.run g ~params:[ ("x", xt) ] with
      | [ pt ] ->
          let ps = Astitch_tensor.Tensor.shape pt in
          let ok = ref true in
          for i = 0 to Astitch_tensor.Tensor.num_elements pt - 1 do
            let idx = Shape.multi_index ps i in
            let v = Astitch_tensor.Tensor.get_linear pt i in
            for wy = 0 to 1 do
              for wx = 0 to 1 do
                let m =
                  Astitch_tensor.Tensor.get xt
                    [| 0; idx.(1) + wy; idx.(2) + wx; idx.(3) |]
                in
                if m > v then ok := false
              done
            done
          done;
          !ok
      | _ -> false)

let prop_autodiff_matches_finite_diff =
  QCheck2.Test.make
    ~name:"autodiff matches finite differences on random smooth graphs"
    ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let open Astitch_ir in
      (* a small random smooth elementwise+reduce pipeline *)
      let rng = ref (seed lxor 0x5bd1e995) in
      let next n = rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF; !rng mod n in
      let b = Builder.create () in
      let x = Builder.parameter b "x" [ 2; 3 ] in
      let v = ref x in
      for _ = 1 to 1 + next 4 do
        v :=
          (match next 4 with
          | 0 -> Builder.tanh b !v
          | 1 -> Builder.sigmoid b !v
          | 2 -> Builder.mul b !v !v
          | _ -> Builder.add b !v (Builder.constant b 0.3 ~dims:[ 2; 3 ]))
      done;
      let loss = Builder.reduce_sum b ~axes:[ 0; 1 ] !v in
      let grads = Autodiff.gradients b ~output:loss ~wrt:[ x ] in
      let g = Builder.finish b ~outputs:(loss :: grads) in
      let x0 =
        Astitch_tensor.Tensor.map
          (fun t -> (0.3 *. t) +. 0.7)
          (Astitch_tensor.Tensor.random ~seed:(seed + 3) (Shape.of_list [ 2; 3 ]))
      in
      let loss_at xt =
        match Astitch_tensor.Interp.run g ~params:[ ("x", xt) ] with
        | l :: _ -> Astitch_tensor.Tensor.get_linear l 0
        | [] -> assert false
      in
      let grad =
        match Astitch_tensor.Interp.run g ~params:[ ("x", x0) ] with
        | [ _; gt ] -> gt
        | _ -> assert false
      in
      let eps = 1e-4 in
      let i = next 6 in
      let bump delta =
        let d = Astitch_tensor.Tensor.create (Astitch_tensor.Tensor.shape x0)
            (Array.copy (Astitch_tensor.Tensor.data x0)) in
        Astitch_tensor.Tensor.set_linear d i
          (Astitch_tensor.Tensor.get_linear d i +. delta);
        d
      in
      let numeric = (loss_at (bump eps) -. loss_at (bump (-.eps))) /. (2. *. eps) in
      let analytic = Astitch_tensor.Tensor.get_linear grad i in
      Float.abs (numeric -. analytic) <= 2e-2 *. Float.max 1. (Float.abs numeric))

let prop_astitch_barriers_always_legal =
  QCheck2.Test.make ~name:"stitch kernels' barriers are always legal"
    ~count:80
    QCheck2.Gen.(pair (int_range 90_001 100_000) (int_range 20 120))
    (fun (seed, nodes) ->
      let g = Astitch_workloads.Synthetic.random_graph ~seed ~nodes () in
      let plan = Astitch_core.Astitch.compile Arch.v100 g in
      List.for_all
        (fun (k : Kernel_plan.kernel) ->
          k.barriers = 0 || Barrier.is_legal Arch.v100 k.launch)
        plan.kernels)

let suite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "properties"
    [
      suite "semantics" [ prop_backend_equivalence; prop_plans_structurally_valid ];
      suite "kernels" [ prop_astitch_never_more_kernels ];
      suite "occupancy" [ prop_occupancy_bounds; prop_occupancy_monotone_regs ];
      suite "mapping" [ prop_adaptive_mapping_covers ];
      suite "memory" [ prop_scratch_no_alias; prop_fit_shared_fits ];
      suite "counters" [ prop_transactions ];
      suite "passes"
        [
          prop_simplify_preserves_values;
          prop_simplify_never_grows;
          prop_text_roundtrip;
        ];
      suite "structure"
        [ prop_clusters_single_depth; prop_kernel_dag_schedulable ];
      suite "model"
        [
          prop_amp_never_slower;
          prop_achieved_le_theoretical;
          prop_launch_config_preserves_wave;
          prop_astitch_barriers_always_legal;
        ];
      suite "ops"
        [
          prop_scatter_gather_mass;
          prop_max_pool_dominates_members;
          prop_autodiff_matches_finite_diff;
        ];
    ]
