(* End-to-end coverage of the code paths behind the CLI (invoked as
   library calls; cmdliner wiring itself is exercised manually). *)

open Astitch_ir
open Astitch_simt
open Astitch_plan
open Astitch_runtime

let check = Alcotest.(check bool)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

(* the `compare` path over every registered model (tiny variants) *)
let test_compare_path_all_models () =
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      let g = e.tiny () in
      let results =
        Session.compare_backends
          [
            Astitch_backends.Tf_backend.backend;
            Astitch_backends.Xla_backend.backend;
            Astitch_core.Astitch.full_backend;
          ]
          Arch.v100 g
      in
      match results with
      | [ tf; xla; astitch ] ->
          check (e.name ^ ": astitch <= xla <= tf kernels") true
            (Profile.mem_kernel_count astitch.profile
             <= Profile.mem_kernel_count xla.profile
            && Profile.mem_kernel_count xla.profile
               <= Profile.mem_kernel_count tf.profile)
      | _ -> Alcotest.fail "three results expected")
    Astitch_workloads.Zoo.all

(* the `cuda` path renders every model's stitched plan *)
let test_cuda_path_all_models () =
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      let g = e.tiny () in
      let plan = Astitch_core.Astitch.compile Arch.v100 g in
      let text = Astitch_core.Codegen.emit_plan plan in
      check (e.name ^ " emits kernels") true (contains text "__global__"))
    Astitch_workloads.Zoo.all

(* the `text --simplify` path round-trips every model *)
let test_text_simplify_path () =
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      let g = e.tiny () in
      let g', _ = Simplify.run g in
      let text = Text_format.to_string g' in
      let g2 = Text_format.parse text in
      check (e.name ^ " round-trips after simplify") true
        (Text_format.to_string g2 = text))
    Astitch_workloads.Zoo.all

(* the `dot` path *)
let test_dot_path () =
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      let dot = Dot.to_string (e.tiny ()) in
      check (e.name ^ " dot export") true (contains dot "digraph"))
    Astitch_workloads.Zoo.all

(* the `inspect` statistics path *)
let test_inspect_path () =
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      let g = e.tiny () in
      let st = Graph.stats g in
      let clusters = Clustering.clusters g in
      check (e.name ^ " sane stats") true
        (st.total_ops = Graph.num_nodes g
        && st.memory_intensive_ops + st.compute_intensive_ops = st.total_ops
        && clusters <> []))
    Astitch_workloads.Zoo.all

let () =
  Alcotest.run "cli_surface"
    [
      ( "paths",
        [
          Alcotest.test_case "compare" `Quick test_compare_path_all_models;
          Alcotest.test_case "cuda" `Quick test_cuda_path_all_models;
          Alcotest.test_case "text --simplify" `Quick test_text_simplify_path;
          Alcotest.test_case "dot" `Quick test_dot_path;
          Alcotest.test_case "inspect" `Quick test_inspect_path;
        ] );
    ]
