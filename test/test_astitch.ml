(* The AStitch compiler: adaptive mapping, dominants, locality, memory
   planning, launch configuration, whole-cluster stitching. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan
open Astitch_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Adaptive thread mapping (Fig 8) ------------------------------------- *)

let test_packing_750000x32 () =
  match Adaptive_mapping.row_reduce Arch.v100 ~rows:750_000 ~row_length:32 with
  | Thread_mapping.Row_reduce m as tm ->
      Thread_mapping.validate tm;
      check_int "horizontal packing" 32 m.rows_per_block;
      check_int "block 1024" 1024 (Thread_mapping.block tm);
      check "vertical packing engaged" true (m.row_groups_per_block > 1);
      check "grid within a wave" true
        (Thread_mapping.grid tm <= Adaptive_mapping.blocks_per_wave Arch.v100);
      (* all rows covered *)
      check "covers rows" true
        (Thread_mapping.grid tm * m.rows_per_block * m.row_groups_per_block
         >= 750_000)
  | _ -> Alcotest.fail "expected row-reduce"

let test_splitting_64x30000 () =
  match Adaptive_mapping.row_reduce Arch.v100 ~rows:64 ~row_length:30_000 with
  | Thread_mapping.Row_reduce m as tm ->
      Thread_mapping.validate tm;
      check "splits" true (m.split > 1);
      check "atomics" true (Thread_mapping.uses_atomics tm);
      check "more blocks than rows" true (Thread_mapping.grid tm > 64);
      check "grid within a wave" true
        (Thread_mapping.grid tm <= Adaptive_mapping.blocks_per_wave Arch.v100)
  | _ -> Alcotest.fail "expected row-reduce"

let test_elementwise_capped () =
  let tm = Adaptive_mapping.elementwise Arch.v100 ~elements:100_000_000 ~rows:None in
  check "grid within a wave" true
    (Thread_mapping.grid tm <= Adaptive_mapping.blocks_per_wave Arch.v100)

let test_bpw_reference () =
  check_int "v100 wave" 160 (Adaptive_mapping.blocks_per_wave Arch.v100)

(* --- Dominants (Fig 9) ---------------------------------------------------- *)

(* a Figure 7(a)-like chain: add -> reduce.1 -> broadcast -> divide ->
   power -> broadcast -> reduce.2 -> ... -> multiply output *)
let fig7_graph () =
  let b = Builder.create () in
  let p1 = Builder.parameter b "p1" [ 8; 16 ] in
  let p2 = Builder.parameter b "p2" [ 8; 16 ] in
  let add1 = Builder.add b p1 p2 in
  let reduce1 = Builder.reduce_sum b ~axes:[ 1 ] add1 in
  let bc1 = Builder.broadcast b reduce1 ~dims:[ 0 ] [ 8; 16 ] in
  let div1 = Builder.div b p2 bc1 in
  let pow1 =
    Builder.pow b div1 (Builder.broadcast_scalar b (Builder.constant b 2.) [ 8; 16 ])
  in
  let reduce2 = Builder.reduce_sum b ~axes:[ 1 ] pow1 in
  let bc2 = Builder.broadcast b reduce2 ~dims:[ 0 ] [ 8; 16 ] in
  let mul1 = Builder.mul b bc2 add1 in
  (Builder.finish b ~outputs:[ mul1 ], reduce1, pow1, reduce2, mul1)

let test_dominant_candidates () =
  let g, reduce1, _pow1, reduce2, mul1 = fig7_graph () in
  let nodes =
    List.filter (Clustering.is_clusterable g) (Graph.topo_order g)
  in
  let escaping id = Graph.is_output g id in
  let cands = Dominant.candidates g ~nodes ~escaping in
  check "reduce1 candidate" true (List.mem reduce1 cands);
  check "reduce2 candidate" true (List.mem reduce2 cands);
  check "output candidate" true (List.mem mul1 cands)

let test_groups_merged_vs_not () =
  let g, _, _, _, _ = fig7_graph () in
  let nodes = List.filter (Clustering.is_clusterable g) (Graph.topo_order g) in
  let escaping id = Graph.is_output g id in
  let merged = Dominant.group_ops ~merging:true g ~nodes ~escaping in
  let unmerged = Dominant.group_ops ~merging:false g ~nodes ~escaping in
  check "merging reduces group count" true
    (List.length merged <= List.length unmerged);
  (* merged groups partition the nodes *)
  let covered = List.concat_map (fun (grp : Dominant.group) -> grp.members) merged in
  check_int "partition" (List.length nodes) (List.length covered);
  (* unmerged cones may duplicate shared producers *)
  let occurrences = Dominant.occurrences unmerged in
  check "some node shared" true (List.exists (fun id -> occurrences id > 1) nodes);
  (* every group's dominant is a member *)
  List.iter
    (fun (grp : Dominant.group) ->
      check "dominant in members" true (List.mem grp.dominant grp.members))
    (merged @ unmerged)

let test_dominant_prefers_reduce () =
  let g, reduce1, _, reduce2, _ = fig7_graph () in
  let nodes = List.filter (Clustering.is_clusterable g) (Graph.topo_order g) in
  let escaping id = Graph.is_output g id in
  let merged = Dominant.group_ops ~merging:true g ~nodes ~escaping in
  let dominants = List.map (fun (grp : Dominant.group) -> grp.dominant) merged in
  check "some reduce dominates" true
    (List.mem reduce1 dominants || List.mem reduce2 dominants)

(* --- Whole-graph stitching ------------------------------------------------ *)

let test_stitch_single_kernel () =
  let g, _, _, _, _ = fig7_graph () in
  let plan = Astitch.compile Arch.v100 g in
  Kernel_plan.check plan;
  check_int "one stitch kernel" 1
    (List.length (Kernel_plan.memory_intensive_kernels plan));
  (* fewer kernels than XLA on the same graph *)
  let xla = Astitch_backends.Xla_backend.compile Arch.v100 g in
  check "fewer than XLA" true
    (List.length (Kernel_plan.memory_intensive_kernels plan)
    < List.length (Kernel_plan.memory_intensive_kernels xla))

let test_stitch_schemes_assigned () =
  let g, reduce1, _, _, _ = fig7_graph () in
  let plan = Astitch.compile Arch.v100 g in
  let kernel = List.hd (Kernel_plan.memory_intensive_kernels plan) in
  let op = Option.get (Kernel_plan.find_op kernel reduce1) in
  check "reduce1 buffered on-chip or scratch" true
    (op.placement = Kernel_plan.Shared_mem
    || op.placement = Kernel_plan.Global_scratch);
  check "no recompute for dominants" true (op.recompute = 1)

let test_stitch_no_heavy_recompute () =
  (* the Fig 5 pattern: AStitch must buffer pow once, not recompute x128 *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 2 ] in
  let e = Builder.parameter b "e" [ 2 ] in
  let p = Builder.pow b x e in
  let bc = Builder.broadcast b p ~dims:[ 0 ] [ 2; 128 ] in
  let other = Builder.parameter b "other" [ 2; 128 ] in
  let a = Builder.add b bc other in
  let g = Builder.finish b ~outputs:[ a ] in
  let plan = Astitch.compile Arch.v100 g in
  Kernel_plan.check plan;
  check_int "one kernel" 1 (List.length (Kernel_plan.memory_intensive_kernels plan));
  let kernel = List.hd (Kernel_plan.memory_intensive_kernels plan) in
  let pow_op = Option.get (Kernel_plan.find_op kernel p) in
  check_int "pow computed once" 1 pow_op.recompute;
  check "pow buffered" true (pow_op.placement <> Kernel_plan.Register)

let test_barrier_legal_always () =
  let g, _, _, _, _ = fig7_graph () in
  let plan = Astitch.compile Arch.v100 g in
  List.iter
    (fun (k : Kernel_plan.kernel) ->
      if k.barriers > 0 then Barrier.check_legal Arch.v100 k.launch)
    plan.kernels

(* --- Memory planner -------------------------------------------------------- *)

let test_fit_shared_demotes () =
  let entries = [ (1, 10_000); (2, 30_000); (3, 20_000) ] in
  let kept, demoted = Mem_planner.fit_shared ~budget:35_000 entries in
  let total = List.fold_left (fun a (_, b) -> a + b) 0 kept in
  check "fits" true (total <= 35_000);
  check "something demoted" true (demoted <> []);
  check_int "everything accounted" 3 (List.length kept + List.length demoted);
  (* under generous budget nothing is demoted *)
  let kept2, demoted2 = Mem_planner.fit_shared ~budget:100_000 entries in
  check_int "all kept" 3 (List.length kept2);
  check "none demoted" true (demoted2 = [])

let test_scratch_reuse () =
  (* two buffers with disjoint live ranges share space *)
  let allocations, total =
    Mem_planner.plan_scratch [ (1, 1000, 0, 1); (2, 1000, 2, 3) ]
  in
  Mem_planner.check_no_aliasing allocations;
  check "reused" true (total <= 1024);
  (* overlapping ranges cannot share *)
  let allocations2, total2 =
    Mem_planner.plan_scratch [ (1, 1000, 0, 3); (2, 1000, 1, 2) ]
  in
  Mem_planner.check_no_aliasing allocations2;
  check "no reuse" true (total2 >= 2048)

(* --- Launch configuration --------------------------------------------------- *)

let test_launch_config_relax () =
  let lc = Launch_config.plan Arch.v100 ~block:1024 ~shared_mem_per_block:0 in
  check_int "assumed regs hold" 32 lc.regs_per_thread;
  check_int "wave 160" 160 lc.blocks_per_wave;
  (* smaller blocks leave more registers per thread *)
  let lc2 = Launch_config.plan Arch.v100 ~block:256 ~shared_mem_per_block:0 in
  check "relaxed regs" true (lc2.regs_per_thread >= 32)

let test_shared_budget () =
  let budget = Launch_config.shared_mem_budget Arch.v100 in
  check_int "48KB on V100" (48 * 1024) budget

(* --- Ablation ladder --------------------------------------------------------- *)

let test_ablation_monotone_kernels () =
  let g, _, _, _, _ = fig7_graph () in
  let count backend =
    let plan = Backend_intf.compile backend Arch.v100 g in
    Kernel_plan.check plan;
    List.length (Kernel_plan.memory_intensive_kernels plan)
  in
  let xla = count Astitch_backends.Xla_backend.backend in
  let atm = count Astitch.atm_backend in
  let hdm = count Astitch.hdm_backend in
  let full = count Astitch.full_backend in
  check_int "ATM keeps XLA's fusion scopes" xla atm;
  check "HDM stitches more" true (hdm <= xla);
  check "full stitches most" true (full <= hdm)

(* --- Remote stitching / combine_parts -------------------------------------- *)

let test_remote_parts_add_grids () =
  (* independent chains of real size: the merged kernel's grid must cover
     both parts concurrently (the Fig 2 parallelism increase) *)
  let b = Builder.create () in
  let o1 = Builder.tanh b (Builder.parameter b "x" [ 64; 512 ]) in
  let o2 = Builder.sigmoid b (Builder.parameter b "y" [ 64; 512 ]) in
  let g = Builder.finish b ~outputs:[ o1; o2 ] in
  let plan = Astitch.compile Arch.v100 g in
  Kernel_plan.check plan;
  check_int "one merged kernel" 1
    (List.length (Kernel_plan.memory_intensive_kernels plan));
  let merged = List.hd (Kernel_plan.memory_intensive_kernels plan) in
  let solo =
    let b = Builder.create () in
    let o = Builder.tanh b (Builder.parameter b "x" [ 64; 512 ]) in
    let g = Builder.finish b ~outputs:[ o ] in
    List.hd
      (Kernel_plan.memory_intensive_kernels (Astitch.compile Arch.v100 g))
  in
  check "grid grows when merged" true
    (merged.launch.Launch.grid > solo.launch.Launch.grid)

let test_remote_parts_smem_budget_split () =
  (* each part gets a budget slice; the combined declaration stays within
     the device limit *)
  let b = Builder.create () in
  let outs =
    List.init 4 (fun i ->
        let x = Builder.parameter b (Printf.sprintf "x%d" i) [ 128; 64 ] in
        let r = Builder.reduce_sum b ~axes:[ 1 ] x in
        let rb = Builder.broadcast b r ~dims:[ 0 ] [ 128; 64 ] in
        Builder.div b x rb)
  in
  let g = Builder.finish b ~outputs:outs in
  let plan = Astitch.compile Arch.v100 g in
  Kernel_plan.check plan;
  List.iter
    (fun (k : Kernel_plan.kernel) ->
      check "smem within device limit" true
        (k.launch.Launch.shared_mem_per_block
        <= Arch.v100.shared_mem_per_block))
    plan.kernels

let test_proactive_adaptation_gives_regional () =
  (* softmax at a round shape: the element-wise consumer group adopts the
     reduce's partition, so the reduce can live in shared memory *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 256; 256 ] in
  let g = Builder.finish b ~outputs:[ Builder.softmax b x ] in
  let plan = Astitch.compile Arch.v100 g in
  let kernel = List.hd (Kernel_plan.memory_intensive_kernels plan) in
  let regional =
    List.exists
      (fun (o : Kernel_plan.compiled_op) ->
        o.placement = Kernel_plan.Shared_mem)
      kernel.ops
  in
  check "some regional buffering" true regional

let test_split_reduce_goes_global () =
  (* a split (atomic) reduce cannot satisfy block locality: global scheme *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 64; 30_000 ] in
  let r = Builder.reduce_sum b ~axes:[ 1 ] x in
  let s = Builder.sigmoid b r in
  let g = Builder.finish b ~outputs:[ s ] in
  let plan = Astitch.compile Arch.v100 g in
  let kernel = List.hd (Kernel_plan.memory_intensive_kernels plan) in
  let reduce_op =
    List.find (fun (o : Kernel_plan.compiled_op) -> o.id = r) kernel.ops
  in
  check "global scheme" true (reduce_op.scheme = Scheme.Global);
  check "barrier present" true (kernel.barriers > 0)

let test_scheme_table1_memory_spaces () =
  check "independent" true (Scheme.memory_space Scheme.Independent = "none");
  check "local" true (Scheme.memory_space Scheme.Local = "register");
  check "regional" true (Scheme.memory_space Scheme.Regional = "shared memory");
  check "global" true (Scheme.memory_space Scheme.Global = "global memory");
  check "only global barriers" true
    (Scheme.needs_global_barrier Scheme.Global
    && (not (Scheme.needs_global_barrier Scheme.Regional))
    && (not (Scheme.needs_global_barrier Scheme.Local))
    && not (Scheme.needs_global_barrier Scheme.Independent))

let test_smem_demotion_under_pressure () =
  (* many simultaneously-live reduce outputs of a wide shape exhaust the
     48KB budget: some must demote to global scratch *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 8; 4096 ] in
  let outs =
    List.init 6 (fun i ->
        let y = Builder.unary b (if i mod 2 = 0 then Op.Tanh else Op.Sigmoid) x in
        let r = Builder.reduce_sum b ~axes:[ 0 ] y in (* column: global *)
        let rr = Builder.reduce_sum b ~axes:[ 0 ] r in
        ignore rr;
        let rb = Builder.broadcast b r ~dims:[ 1 ] [ 8; 4096 ] in
        Builder.add b y rb)
  in
  let out = List.fold_left (Builder.add b) (List.hd outs) (List.tl outs) in
  let g = Builder.finish b ~outputs:[ out ] in
  let plan = Astitch.compile Arch.v100 g in
  Kernel_plan.check plan (* the budget invariant is part of check *)

let test_config_printing () =
  check "full string" true (String.length (Config.to_string Config.full) > 0);
  check "atm differs" true (Config.atm_only <> Config.full);
  check "hdm differs" true (Config.no_dominant_merging <> Config.full)

let () =
  Alcotest.run "astitch"
    [
      ( "adaptive mapping",
        [
          Alcotest.test_case "packing 750000x32" `Quick test_packing_750000x32;
          Alcotest.test_case "splitting 64x30000" `Quick test_splitting_64x30000;
          Alcotest.test_case "elementwise cap" `Quick test_elementwise_capped;
          Alcotest.test_case "wave reference" `Quick test_bpw_reference;
        ] );
      ( "dominants",
        [
          Alcotest.test_case "candidates" `Quick test_dominant_candidates;
          Alcotest.test_case "merged vs cones" `Quick test_groups_merged_vs_not;
          Alcotest.test_case "prefers reduce" `Quick test_dominant_prefers_reduce;
        ] );
      ( "stitching",
        [
          Alcotest.test_case "single kernel" `Quick test_stitch_single_kernel;
          Alcotest.test_case "schemes" `Quick test_stitch_schemes_assigned;
          Alcotest.test_case "no heavy recompute" `Quick test_stitch_no_heavy_recompute;
          Alcotest.test_case "barriers legal" `Quick test_barrier_legal_always;
        ] );
      ( "memory",
        [
          Alcotest.test_case "shared demotion" `Quick test_fit_shared_demotes;
          Alcotest.test_case "scratch reuse" `Quick test_scratch_reuse;
        ] );
      ( "launch",
        [
          Alcotest.test_case "assume-relax-apply" `Quick test_launch_config_relax;
          Alcotest.test_case "shared budget" `Quick test_shared_budget;
        ] );
      ( "ablation",
        [ Alcotest.test_case "kernel monotone" `Quick test_ablation_monotone_kernels ] );
      ( "remote stitching",
        [
          Alcotest.test_case "grids add" `Quick test_remote_parts_add_grids;
          Alcotest.test_case "smem budget split" `Quick test_remote_parts_smem_budget_split;
        ] );
      ( "schemes",
        [
          Alcotest.test_case "proactive regional" `Quick test_proactive_adaptation_gives_regional;
          Alcotest.test_case "split goes global" `Quick test_split_reduce_goes_global;
          Alcotest.test_case "table 1 spaces" `Quick test_scheme_table1_memory_spaces;
          Alcotest.test_case "smem demotion" `Quick test_smem_demotion_under_pressure;
          Alcotest.test_case "config" `Quick test_config_printing;
        ] );
    ]
