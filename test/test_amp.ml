(* Auto mixed precision: dtype conversion and its cost-model effect. *)

open Astitch_ir
open Astitch_simt
open Astitch_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let graph_with_pred () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 64; 64 ] in
  let y = Builder.parameter b "y" [ 64; 64 ] in
  let mask = Builder.gt b x y in
  let out = Builder.select b ~pred:mask ~on_true:x ~on_false:y in
  Builder.finish b ~outputs:[ out ]

let test_dtype_conversion () =
  let g = graph_with_pred () in
  let gh = Amp.to_half g in
  Graph.validate gh;
  check "params become f16" true (Dtype.equal (Graph.dtype gh 0) Dtype.F16);
  (* the comparison result stays a predicate *)
  check "pred preserved" true (Dtype.equal (Graph.dtype gh 2) Dtype.Pred);
  check_int "same node count" (Graph.num_nodes g) (Graph.num_nodes gh)

let test_bytes_halve () =
  let g = graph_with_pred () in
  let gh = Amp.to_half g in
  check_int "f32 bytes" (64 * 64 * 4) (Graph.bytes g 0);
  check_int "f16 bytes" (64 * 64 * 2) (Graph.bytes gh 0)

let test_amp_execution_matches () =
  (* numerics are unchanged (the simulator computes in OCaml floats) *)
  let g = graph_with_pred () in
  let gh = Amp.to_half g in
  let params = Session.random_params g in
  let a = Astitch_tensor.Interp.run g ~params in
  let b2 = Astitch_tensor.Interp.run gh ~params in
  List.iter2
    (fun x y -> check "same values" true (Astitch_tensor.Tensor.equal_approx x y))
    a b2

let test_amp_reduces_memory_time () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 2048; 1024 ] in
  let out = Builder.tanh b x in
  let g = Builder.finish b ~outputs:[ out ] in
  let time graph =
    let plan = Astitch_core.Astitch.compile Arch.v100 graph in
    (Profile.profile plan).Profile.mem_time_us
  in
  let full = time g and half = time (Amp.to_half g) in
  check "f16 saves memory time" true (half < full);
  (* the tensor dominates; savings should approach 2x *)
  check "roughly half" true (full /. half > 1.5)

let test_amp_idempotent () =
  let g = graph_with_pred () in
  let gh = Amp.to_half g in
  let ghh = Amp.to_half gh in
  check "idempotent" true
    (Graph.fold_nodes
       (fun acc nd -> acc && Dtype.equal nd.dtype (Graph.dtype gh nd.id))
       true ghh)

let () =
  Alcotest.run "amp"
    [
      ( "amp",
        [
          Alcotest.test_case "dtype conversion" `Quick test_dtype_conversion;
          Alcotest.test_case "bytes halve" `Quick test_bytes_halve;
          Alcotest.test_case "execution matches" `Quick test_amp_execution_matches;
          Alcotest.test_case "memory time drops" `Quick test_amp_reduces_memory_time;
          Alcotest.test_case "idempotent" `Quick test_amp_idempotent;
        ] );
    ]
