(* Multi-tenant zoo serving: SLO-class scheduling and the persistent
   plan store.

   Scheduler level (driven directly, no worker domains, so dispatch
   order is fully observable and deterministic):
   - EDF across latency-class models: the earlier absolute deadline
     dispatches first regardless of submission order;
   - strict class priority: Latency > Throughput > Best_effort;
   - the fair-share floor: under a strict-priority backlog, every
     floor-period-th dispatch goes to the least-served model, so
     best-effort completes work while higher classes are still queued
     (and floor_picks counts it);
   - admission-time expiry: a request whose deadline is already past is
     refused as [Deadline_exceeded] at submit - counted under
     [shed_admission], never queued, never producing an outcome;
   - displacement shedding: a full queue evicts its newest
     strictly-lower-class entry (completed [Overloaded Displaced]) to
     admit a higher-class arrival, and never displaces an equal class;
   - with [slos = []] everything above is off: legacy FIFO picks.

   Zoo level (caller-runs, a cheap batchable builder):
   - traffic is refused before prewarm;
   - per-class accounting sums to the outcomes observed;
   - the plan store round-trips across zoo restarts: cold prewarm
     compiles and saves, warm prewarm loads everything and compiles
     nothing, and the served outputs are bit-identical either way;
   - the bit-identity gate: --verify-plans accepts an intact store
     (all loaded plans verified) and a corrupted store file is
     rejected and recompiled without the zoo missing a request. *)

open Astitch_ir
open Astitch_tensor
open Astitch_serve

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Scheduler-level fixtures --------------------------------------------- *)

let next_id = ref 0

let mk_req ?deadline_us ~model () =
  incr next_id;
  let now = Unix.gettimeofday () *. 1e6 in
  {
    Request.id = !next_id;
    model;
    params = [];
    submitted_us = now;
    deadline_us = Option.map (fun d -> now +. d) deadline_us;
    attempts = 0;
    trace = Astitch_obs.Trace.new_context ();
    dispatched_us = 0.;
  }

let done_outcome =
  Request.Done { outputs = []; latency_us = 0.; batch = 1; degraded = false }

(* One-request batches + zero batching window: each [next_batch] call
   returns exactly the scheduler's next pick. *)
let mk_sched ?(queue_depth = 16) ?(fair_share_floor = 0.) ~slos () =
  Scheduler.create ~slos ~fair_share_floor
    ~policy:(Batcher.policy ~max_batch:1 ~max_wait_us:0.)
    ~queue_depth ()

let submit_ok s req =
  match Scheduler.submit s req with
  | Ok () -> ()
  | Error o ->
      Alcotest.failf "submit refused: %s" (Request.overload_to_string o)

(* Drain [n] picks, completing each, returning the model order. *)
let pick_models s n =
  List.init n (fun _ ->
      match Scheduler.next_batch s with
      | None -> Alcotest.fail "scheduler shut down mid-test"
      | Some b ->
          List.iter (fun r -> Scheduler.complete s r done_outcome) b.requests;
          b.Scheduler.model)

let test_edf_across_latency_models () =
  let s =
    mk_sched
      ~slos:
        [
          ("A", Slo.Latency { deadline_us = 1e9 });
          ("B", Slo.Latency { deadline_us = 1e9 });
        ]
      ()
  in
  (* A submitted first but with the later absolute deadline *)
  submit_ok s (mk_req ~model:"A" ~deadline_us:10_000_000. ());
  submit_ok s (mk_req ~model:"B" ~deadline_us:1_000_000. ());
  Alcotest.(check (list string))
    "earliest deadline first" [ "B"; "A" ] (pick_models s 2);
  Scheduler.shutdown s;
  Scheduler.dispose s

let test_strict_class_priority () =
  let s =
    mk_sched
      ~slos:
        [
          ("L", Slo.Latency { deadline_us = 1e9 });
          ("T", Slo.Throughput);
          ("E", Slo.Best_effort);
        ]
      ()
  in
  (* submitted in reverse priority order *)
  submit_ok s (mk_req ~model:"E" ());
  submit_ok s (mk_req ~model:"T" ());
  submit_ok s (mk_req ~model:"L" ~deadline_us:1e9 ());
  Alcotest.(check (list string))
    "latency > throughput > best-effort" [ "L"; "T"; "E" ] (pick_models s 3);
  Scheduler.shutdown s;
  Scheduler.dispose s

let test_fair_share_floor () =
  let s =
    mk_sched ~fair_share_floor:0.5
      ~slos:[ ("L", Slo.Latency { deadline_us = 1e9 }); ("E", Slo.Best_effort) ]
      ()
  in
  List.iter
    (fun _ -> submit_ok s (mk_req ~model:"L" ~deadline_us:1e9 ()))
    (List.init 6 Fun.id);
  submit_ok s (mk_req ~model:"E" ());
  submit_ok s (mk_req ~model:"E" ());
  let order = pick_models s 8 in
  (* floor period 2: every second dispatch goes to the least-served
     model, so both E requests complete while L is still backlogged *)
  Alcotest.(check (list string))
    "floor interleaves best-effort under a latency backlog"
    [ "L"; "E"; "L"; "E"; "L"; "L"; "L"; "L" ]
    order;
  let st = Scheduler.stats s in
  (* every second dispatch is a floor turn, counted even once the floor
     pick coincides with strict priority (E drained) *)
  check_int "floor picks counted" 4 st.Scheduler.floor_picks;
  Scheduler.shutdown s;
  Scheduler.dispose s

let test_pure_strict_priority_starves () =
  (* floor 0 is the control: best-effort waits out the entire backlog *)
  let s =
    mk_sched ~fair_share_floor:0.
      ~slos:[ ("L", Slo.Latency { deadline_us = 1e9 }); ("E", Slo.Best_effort) ]
      ()
  in
  List.iter
    (fun _ -> submit_ok s (mk_req ~model:"L" ~deadline_us:1e9 ()))
    (List.init 4 Fun.id);
  submit_ok s (mk_req ~model:"E" ());
  Alcotest.(check (list string))
    "strict priority first" [ "L"; "L"; "L"; "L"; "E" ] (pick_models s 5);
  check_int "no floor picks" 0 (Scheduler.stats s).Scheduler.floor_picks;
  Scheduler.shutdown s;
  Scheduler.dispose s

let test_admission_expiry_refused () =
  List.iter
    (fun slos ->
      let s = mk_sched ~slos () in
      let req = mk_req ~model:"L" ~deadline_us:(-1000.) () in
      (match Scheduler.submit s req with
      | Error Request.Deadline_exceeded -> ()
      | Error o ->
          Alcotest.failf "wrong refusal: %s" (Request.overload_to_string o)
      | Ok () -> Alcotest.fail "expired request admitted");
      let st = Scheduler.stats s in
      check_int "counted under shed_admission" 1 st.Scheduler.shed_admission;
      check_int "counted under rejected" 1 st.Scheduler.rejected;
      check_int "never admitted" 0 st.Scheduler.submitted;
      check_int "nothing outstanding" 0 (Scheduler.outstanding s);
      Scheduler.shutdown s;
      Scheduler.dispose s)
    (* the admission-time check applies in legacy FIFO mode too *)
    [ [ ("L", Slo.Latency { deadline_us = 1e9 }) ]; [] ]

let test_displacement () =
  let s =
    mk_sched ~queue_depth:2
      ~slos:[ ("L", Slo.Latency { deadline_us = 1e9 }); ("E", Slo.Best_effort) ]
      ()
  in
  let e1 = mk_req ~model:"E" () in
  let e2 = mk_req ~model:"E" () in
  submit_ok s e1;
  submit_ok s e2;
  (* equal class cannot displace: a third E is a plain refusal *)
  (match Scheduler.submit s (mk_req ~model:"E" ()) with
  | Error Request.Queue_full -> ()
  | Error o -> Alcotest.failf "wrong refusal: %s" (Request.overload_to_string o)
  | Ok () -> Alcotest.fail "over-depth equal-class admitted");
  (* a latency arrival displaces the NEWEST best-effort entry *)
  let l1 = mk_req ~model:"L" ~deadline_us:1e9 () in
  submit_ok s l1;
  (match Scheduler.await s e2.Request.id with
  | Request.Overloaded Request.Displaced -> ()
  | o ->
      Alcotest.failf "displaced request got %s"
        (match o with
        | Request.Done _ -> "Done"
        | Request.Failed m -> "Failed " ^ m
        | Request.Overloaded o -> Request.overload_to_string o));
  check_int "displacement counted" 1 (Scheduler.stats s).Scheduler.displaced;
  (* dispatch order after displacement: the latency request, then the
     surviving oldest best-effort *)
  Alcotest.(check (list string)) "L then e1" [ "L"; "E" ] (pick_models s 2);
  (match Scheduler.await s e1.Request.id with
  | Request.Done _ -> ()
  | _ -> Alcotest.fail "e1 not served");
  (match Scheduler.await s l1.Request.id with
  | Request.Done _ -> ()
  | _ -> Alcotest.fail "l1 not served");
  Scheduler.shutdown s;
  Scheduler.dispose s

let test_legacy_fifo_unchanged () =
  (* without slos, picks are oldest-head FIFO across models *)
  let s = mk_sched ~slos:[] () in
  submit_ok s (mk_req ~model:"E" ());
  submit_ok s (mk_req ~model:"T" ());
  submit_ok s (mk_req ~model:"L" ());
  Alcotest.(check (list string))
    "submission order" [ "E"; "T"; "L" ] (pick_models s 3);
  let st = Scheduler.stats s in
  check_int "no floor picks in legacy mode" 0 st.Scheduler.floor_picks;
  check_int "no displacement in legacy mode" 0 st.Scheduler.displaced;
  Scheduler.shutdown s;
  Scheduler.dispose s

(* --- Zoo level ------------------------------------------------------------- *)

(* The cheap batchable fixture: dense layer + softmax over shared
   weights, per-request rows. *)
let mlp_build ~batch =
  let k = 6 in
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ batch; k ] in
  let w = Builder.parameter b "w" [ k; k ] in
  let h = Builder.dot b x w in
  let out = Builder.softmax b (Builder.gelu b h) in
  Builder.finish b ~outputs:[ out ]

let mlp2_build ~batch =
  let k = 5 in
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ batch; k ] in
  let w = Builder.parameter b "w" [ k; k ] in
  let out = Builder.tanh b (Builder.dot b x w) in
  Builder.finish b ~outputs:[ out ]

let registrations =
  [
    ({ Serve.name = "mlp"; build = mlp_build }, Slo.Latency { deadline_us = 1e8 });
    ({ Serve.name = "mlp2"; build = mlp2_build }, Slo.Best_effort);
  ]

let zoo_config ?plan_dir ?(verify_plans = false) () =
  {
    Zoo.serve =
      { Serve.default_config with workers = 0; max_batch = 4; queue_depth = 32 };
    plan_dir;
    verify_plans;
  }

let with_store_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "astitch-test-zoo-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun x ->
             try Sys.remove (Filename.concat dir x) with Sys_error _ -> ())
           (Sys.readdir dir);
         Unix.rmdir dir
       with Sys_error _ | Unix.Unix_error _ -> ()))
    (fun () -> f dir)

let test_refuses_traffic_before_prewarm () =
  let zoo = Zoo.create ~config:(zoo_config ()) registrations in
  (match
     Zoo.submit_async zoo ~model:"mlp"
       ~params:(Serve.random_request (Zoo.server zoo) ~model:"mlp" ~seed:1)
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zoo accepted traffic before prewarm");
  ignore (Zoo.shutdown zoo)

let run_some zoo n =
  let outs = ref [] in
  for i = 1 to n do
    let model = if i mod 3 = 0 then "mlp2" else "mlp" in
    let params = Serve.random_request (Zoo.server zoo) ~model ~seed:i in
    match Zoo.submit zoo ~model ~params with
    | Request.Done { outputs; _ } -> outs := (model, i, outputs) :: !outs
    | Request.Failed m -> Alcotest.failf "request %d failed: %s" i m
    | Request.Overloaded o ->
        Alcotest.failf "request %d shed: %s" i (Request.overload_to_string o)
  done;
  List.rev !outs

let test_class_accounting () =
  let zoo = Zoo.create ~config:(zoo_config ()) registrations in
  ignore (Zoo.prewarm zoo);
  ignore (run_some zoo 9);
  let stats = Zoo.class_stats zoo in
  let find c =
    match List.find_opt (fun (r : Zoo.class_stats) -> r.Zoo.cls = c) stats with
    | Some r -> r
    | None -> Alcotest.failf "class %s missing from stats" c
  in
  let lat = find "latency" and be = find "best-effort" in
  check_int "latency submitted" 6 lat.Zoo.submitted;
  check_int "latency completed" 6 lat.Zoo.completed;
  check_int "latency deadline met (generous deadline)" 6 lat.Zoo.deadline_met;
  check_int "best-effort submitted" 3 be.Zoo.submitted;
  check_int "best-effort completed" 3 be.Zoo.completed;
  check_bool "latency p99 recorded" true (lat.Zoo.p99_us > 0.);
  ignore (Zoo.shutdown zoo)

let test_store_roundtrip_across_restart () =
  with_store_dir (fun dir ->
      (* cold zoo: compiles, saves, serves *)
      let cold = Zoo.create ~config:(zoo_config ~plan_dir:dir ()) registrations in
      let p1 = Zoo.prewarm cold in
      check_bool "cold run compiled" true (p1.Zoo.compiled > 0);
      check_int "cold run saved every compile" p1.Zoo.compiled p1.Zoo.saved;
      check_int "cold run loaded nothing" 0 p1.Zoo.loaded;
      let cold_outs = run_some cold 6 in
      ignore (Zoo.shutdown cold);
      (* warm zoo against the same directory: loads, compiles nothing *)
      let warm = Zoo.create ~config:(zoo_config ~plan_dir:dir ()) registrations in
      let p2 = Zoo.prewarm warm in
      check_int "warm restart compiles nothing" 0 p2.Zoo.compiled;
      check_int "warm restart loads every plan" p1.Zoo.saved p2.Zoo.loaded;
      check_int "warm restart rejects nothing" 0 p2.Zoo.rejected;
      let warm_outs = run_some warm 6 in
      ignore (Zoo.shutdown warm);
      (* store-served plans answer bit-identically to fresh compiles *)
      List.iter2
        (fun (m1, i1, o1) (m2, i2, o2) ->
          check_bool "same request" true (m1 = m2 && i1 = i2);
          check_bool
            (Printf.sprintf "request %d bit-identical across restart" i1)
            true
            (List.for_all2 (fun a b -> Tensor.equal_approx ~eps:0. a b) o1 o2))
        cold_outs warm_outs)

let test_verify_gate_accepts_intact_store () =
  with_store_dir (fun dir ->
      let cold = Zoo.create ~config:(zoo_config ~plan_dir:dir ()) registrations in
      let p1 = Zoo.prewarm cold in
      ignore (Zoo.shutdown cold);
      let v =
        Zoo.create
          ~config:(zoo_config ~plan_dir:dir ~verify_plans:true ())
          registrations
      in
      let p2 = Zoo.prewarm v in
      check_int "every loaded plan passes the gate" p1.Zoo.saved p2.Zoo.verified;
      check_int "gate rejects nothing" 0 p2.Zoo.rejected;
      ignore (run_some v 3);
      ignore (Zoo.shutdown v))

let test_corrupted_store_file_recompiled () =
  with_store_dir (fun dir ->
      let cold = Zoo.create ~config:(zoo_config ~plan_dir:dir ()) registrations in
      let p1 = Zoo.prewarm cold in
      ignore (Zoo.shutdown cold);
      (* flip one payload byte in one stored plan *)
      let victim =
        match Sys.readdir dir with
        | [||] -> Alcotest.fail "store is empty"
        | files -> Filename.concat dir files.(0)
      in
      let bytes =
        let ic = open_in_bin victim in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let b = Bytes.of_string bytes in
      Bytes.set b 24 (Char.chr (Char.code (Bytes.get b 24) lxor 0x01));
      let oc = open_out_bin victim in
      output_bytes oc b;
      close_out oc;
      (* the damaged plan is rejected and recompiled; the rest load *)
      let warm = Zoo.create ~config:(zoo_config ~plan_dir:dir ()) registrations in
      let p2 = Zoo.prewarm warm in
      check_int "one plan rejected" 1 p2.Zoo.rejected;
      check_int "one plan recompiled" 1 p2.Zoo.compiled;
      check_int "the rest loaded" (p1.Zoo.saved - 1) p2.Zoo.loaded;
      (* and serving is unaffected *)
      ignore (run_some warm 6);
      ignore (Zoo.shutdown warm))

let test_prewarm_idempotent () =
  let zoo = Zoo.create ~config:(zoo_config ()) registrations in
  let p1 = Zoo.prewarm zoo in
  let p2 = Zoo.prewarm zoo in
  check_bool "second prewarm is the memo" true (p1 = p2);
  ignore (Zoo.shutdown zoo)

let () =
  Alcotest.run "zoo"
    [
      ( "scheduler",
        [
          Alcotest.test_case "EDF across latency models" `Quick
            test_edf_across_latency_models;
          Alcotest.test_case "strict class priority" `Quick
            test_strict_class_priority;
          Alcotest.test_case "fair-share floor" `Quick test_fair_share_floor;
          Alcotest.test_case "floor 0 = pure strict priority" `Quick
            test_pure_strict_priority_starves;
          Alcotest.test_case "expired deadlines refused at admission" `Quick
            test_admission_expiry_refused;
          Alcotest.test_case "displacement shedding" `Quick test_displacement;
          Alcotest.test_case "legacy FIFO unchanged without slos" `Quick
            test_legacy_fifo_unchanged;
        ] );
      ( "zoo",
        [
          Alcotest.test_case "refuses traffic before prewarm" `Quick
            test_refuses_traffic_before_prewarm;
          Alcotest.test_case "per-class accounting" `Quick
            test_class_accounting;
          Alcotest.test_case "plan store round-trip across restart" `Quick
            test_store_roundtrip_across_restart;
          Alcotest.test_case "bit-identity gate accepts intact store" `Quick
            test_verify_gate_accepts_intact_store;
          Alcotest.test_case "corrupted store file rejected + recompiled"
            `Quick test_corrupted_store_file_recompiled;
          Alcotest.test_case "prewarm idempotent" `Quick test_prewarm_idempotent;
        ] );
    ]
