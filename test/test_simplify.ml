(* The simplification pass: folding, identities, CSE, and - most
   importantly - value preservation. *)

open Astitch_ir
open Astitch_tensor

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let count_ops g pred =
  Graph.fold_nodes (fun acc nd -> if pred nd.Graph.op then acc + 1 else acc) 0 g

let test_constant_folding () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4 ] in
  let two = Builder.constant b 2. in
  let three = Builder.constant b 3. in
  let five = Builder.add b two three in
  let five_b = Builder.broadcast_scalar b five [ 4 ] in
  let out = Builder.mul b x five_b in
  let g = Builder.finish b ~outputs:[ out ] in
  let g', stats = Simplify.run g in
  check "folded something" true (stats.folded >= 1);
  (* the add of constants is gone *)
  check_int "no binary constant ops left" 1
    (count_ops g' (function Op.Binary _ -> true | _ -> false));
  let params = [ ("x", Tensor.of_list [ 4 ] [ 1.; 2.; 3.; 4. ]) ] in
  let expected = Tensor.of_list [ 4 ] [ 5.; 10.; 15.; 20. ] in
  check "value" true
    (Tensor.equal_approx (List.hd (Interp.run g' ~params)) expected)

let test_fold_reduce_of_uniform () =
  let b = Builder.create () in
  let ones = Builder.broadcast_scalar b (Builder.constant b 1.) [ 3; 4 ] in
  let s = Builder.reduce_sum b ~axes:[ 1 ] ones in
  let x = Builder.parameter b "x" [ 3 ] in
  let out = Builder.mul b x s in
  let g = Builder.finish b ~outputs:[ out ] in
  let g', stats = Simplify.run g in
  check "reduce folded" true (stats.folded >= 1);
  check_int "no reduce left" 0 (count_ops g' Op.is_reduce);
  let params = [ ("x", Tensor.of_list [ 3 ] [ 1.; 2.; 3. ]) ] in
  check "value = x*4" true
    (Tensor.equal_approx
       (List.hd (Interp.run g' ~params))
       (Tensor.of_list [ 3 ] [ 4.; 8.; 12. ]))

let test_identities () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4 ] in
  let zero = Builder.broadcast_scalar b (Builder.constant b 0.) [ 4 ] in
  let one = Builder.broadcast_scalar b (Builder.constant b 1.) [ 4 ] in
  let y = Builder.add b x zero in
  let y = Builder.mul b y one in
  let y = Builder.div b y one in
  let y = Builder.neg b (Builder.neg b y) in
  let y = Builder.relu b (Builder.relu b y) in
  let g = Builder.finish b ~outputs:[ y ] in
  let g', stats = Simplify.run g in
  check "identities applied" true (stats.identities >= 4);
  (* only the parameter and one relu survive *)
  check "small result" true (Graph.num_nodes g' <= 3);
  let params = [ ("x", Tensor.of_list [ 4 ] [ -1.; 0.; 1.; 2. ]) ] in
  check "value" true
    (Tensor.equal_approx
       (List.hd (Interp.run g' ~params))
       (Tensor.of_list [ 4 ] [ 0.; 0.; 1.; 2. ]))

let test_cse () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4 ] in
  let t1 = Builder.tanh b x in
  let t2 = Builder.tanh b x in
  let out = Builder.add b t1 t2 in
  let g = Builder.finish b ~outputs:[ out ] in
  let g', stats = Simplify.run g in
  check_int "one tanh left" 1
    (count_ops g' (function Op.Unary { kind = Op.Tanh; _ } -> true | _ -> false));
  check "cse counted" true (stats.cse >= 1)

let test_reshape_identity () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 2; 3 ] in
  let r = Builder.reshape b x [ 2; 3 ] in
  let out = Builder.neg b r in
  let g = Builder.finish b ~outputs:[ out ] in
  let g', _ = Simplify.run g in
  check_int "reshape dropped" 0
    (count_ops g' (function Op.Reshape _ -> true | _ -> false))

let test_transpose_identity () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 2; 3 ] in
  let t = Builder.transpose b x ~perm:[ 0; 1 ] in
  let out = Builder.neg b t in
  let g = Builder.finish b ~outputs:[ out ] in
  let g', _ = Simplify.run g in
  check_int "identity transpose dropped" 0
    (count_ops g' (function Op.Transpose _ -> true | _ -> false))

let test_uniform_value () =
  let b = Builder.create () in
  let c = Builder.constant b 2.5 in
  let bc = Builder.broadcast_scalar b c [ 3; 4 ] in
  let rs = Builder.reshape b bc [ 12 ] in
  let x = Builder.parameter b "x" [ 12 ] in
  let out = Builder.add b x rs in
  let g = Builder.finish b ~outputs:[ out ] in
  check "constant" true (Simplify.uniform_value g c = Some 2.5);
  check "broadcast chain" true (Simplify.uniform_value g rs = Some 2.5);
  check "parameter" true (Simplify.uniform_value g x = None)

let test_workload_equivalence () =
  (* simplified workload graphs compute the same outputs *)
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      let g = e.tiny () in
      let g', _ = Simplify.run g in
      Graph.validate g';
      check (e.name ^ " simplification shrinks or keeps") true
        (Graph.num_nodes g' <= Graph.num_nodes g);
      let params =
        List.map
          (fun id ->
            match Graph.op g id with
            | Op.Parameter { name } ->
                (name, Tensor.random ~seed:(17 * (id + 1)) (Graph.shape g id))
            | _ -> assert false)
          (Graph.parameters g)
      in
      List.iter2
        (fun a b2 ->
          if not (Tensor.equal_approx ~eps:1e-5 a b2) then
            Alcotest.failf "%s: simplified outputs diverge" e.name)
        (Interp.run g ~params)
        (Interp.run g' ~params))
    Astitch_workloads.Zoo.all

let test_simplified_graphs_compile () =
  (* compiled plans of simplified graphs still pass every invariant *)
  let g, _ = Simplify.run (Astitch_workloads.Bert.tiny ()) in
  List.iter
    (fun (backend : Astitch_plan.Backend_intf.t) ->
      Astitch_plan.Kernel_plan.check
        (backend.compile Astitch_simt.Arch.v100 g))
    [
      Astitch_backends.Tf_backend.backend;
      Astitch_backends.Xla_backend.backend;
      Astitch_core.Astitch.full_backend;
    ]

let () =
  Alcotest.run "simplify"
    [
      ( "rules",
        [
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "reduce of uniform" `Quick test_fold_reduce_of_uniform;
          Alcotest.test_case "identities" `Quick test_identities;
          Alcotest.test_case "cse" `Quick test_cse;
          Alcotest.test_case "reshape identity" `Quick test_reshape_identity;
          Alcotest.test_case "transpose identity" `Quick test_transpose_identity;
          Alcotest.test_case "uniform value" `Quick test_uniform_value;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "workloads" `Slow test_workload_equivalence;
          Alcotest.test_case "compilable" `Quick test_simplified_graphs_compile;
        ] );
    ]
