(* Plan codec + plan store:
   - round-trip: decode (encode p) is structurally equal (canonical
     byte equality) and executes bit-identically, for the zoo
     workloads and for random stitched plans - including plans
     compiled on a shared-mem-starved arch, where kernels carry
     Global-scheme ops and demoted tapes;
   - every corruption mode of the on-disk format (truncation, wrong
     magic, version skew, bit flips, trailing garbage, malformed
     payload behind a valid checksum) surfaces as the right structured
     [Codec_error] and never as an escaping exception;
   - the store round-trips plans by fingerprint x arch, rejects
     damaged files, and ignores other-version/other-arch entries. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan
open Astitch_runtime
open Astitch_tensor

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let backend = Astitch_core.Astitch.full_backend

let compile ?(arch = Arch.v100) g = backend.Backend_intf.compile arch g

let same_outputs a b =
  List.length a = List.length b
  && List.for_all2 (fun x y -> Tensor.equal_approx ~eps:0. x y) a b

(* Round-trip one plan: canonical equality plus bit-identical
   execution of the decoded plan. *)
let roundtrip ~name ?(seed = 3) g plan =
  let bytes = Plan_codec.encode plan in
  match Plan_codec.decode bytes with
  | Error e -> Alcotest.failf "%s: decode failed: %s" name (Plan_codec.error_to_string e)
  | Ok plan' ->
      check (name ^ ": canonical equality") true (Plan_codec.equal plan plan');
      check (name ^ ": re-encode is byte-identical") true
        (String.equal bytes (Plan_codec.encode plan'));
      let params = Session.random_params ~seed g in
      check
        (name ^ ": decoded plan executes bit-identically")
        true
        (same_outputs (Executor.run plan ~params) (Executor.run plan' ~params))

let test_roundtrip_workloads () =
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      let g = e.tiny () in
      roundtrip ~name:e.name g (compile g))
    Astitch_workloads.Zoo.all

let test_roundtrip_batched () =
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      let g = e.batched ~batch:3 in
      roundtrip ~name:(e.name ^ "-batched") g (compile g))
    Astitch_workloads.Zoo.all

(* Random stitched plans. *)
let prop_roundtrip_random =
  QCheck2.Test.make ~name:"codec round-trips random stitched plans" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g =
        Astitch_workloads.Synthetic.random_graph ~seed ~nodes:30 ()
      in
      let plan = compile g in
      roundtrip ~name:(Printf.sprintf "random-%d" seed) ~seed g plan;
      true)

(* Shared-mem-starved arch: staged rows overflow the budget, so plans
   carry Global-scheme ops, demoted tapes and in-kernel barriers - the
   widest part of the scheme/placement encoding. *)
let tight_smem_arch =
  { Arch.v100 with name = "v100-tight-smem"; shared_mem_per_block = 128 }

let prop_roundtrip_global =
  QCheck2.Test.make
    ~name:"codec round-trips Global-scheme / demoted plans" ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g =
        Astitch_workloads.Synthetic.random_graph ~seed
          ~dims_pool:[ 2; 3; 5; 32 ] ~nodes:20 ()
      in
      let plan = compile ~arch:tight_smem_arch g in
      roundtrip ~name:(Printf.sprintf "tight-%d" seed) ~seed g plan;
      true)

let test_global_scheme_covered () =
  (* the tight-smem generator must actually produce what its name
     promises on at least one seed: a kernel with a barrier *)
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 40 do
    let g =
      Astitch_workloads.Synthetic.random_graph ~seed:!seed
        ~dims_pool:[ 2; 3; 5; 32 ] ~nodes:20 ()
    in
    let plan = compile ~arch:tight_smem_arch g in
    if
      List.exists
        (fun (k : Kernel_plan.kernel) -> k.barriers > 0)
        plan.Kernel_plan.kernels
    then found := true;
    incr seed
  done;
  check "some tight-smem plan ran a barrier" true !found

(* --- Corruption ----------------------------------------------------------- *)

let sample_plan () =
  let e = List.hd Astitch_workloads.Zoo.all in
  compile (e.tiny ())

let expect name bytes want =
  match Plan_codec.decode bytes with
  | Ok _ -> Alcotest.failf "%s: decoded successfully" name
  | Error e ->
      Alcotest.check
        (Alcotest.testable
           (fun ppf e ->
             Format.pp_print_string ppf (Plan_codec.error_to_string e))
           ( = ))
        name want e

let fnv1a64 s =
  let prime = 0x100000001b3L and offset = 0xcbf29ce484222325L in
  let h = ref offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let test_corruption_modes () =
  let bytes = Plan_codec.encode (sample_plan ()) in
  let n = String.length bytes in
  expect "empty" "" (Plan_codec.Truncated { want = 4; have = 0 });
  expect "short prefix" (String.sub bytes 0 3)
    (Plan_codec.Truncated { want = 4; have = 3 });
  expect "bad magic"
    ("XXXX" ^ String.sub bytes 4 (n - 4))
    Plan_codec.Bad_magic;
  expect "header only" (String.sub bytes 0 12)
    (Plan_codec.Truncated { want = 20; have = 12 });
  (let b = Bytes.of_string bytes in
   Bytes.set_int64_le b 4 99L;
   expect "version skew" (Bytes.to_string b)
     (Plan_codec.Unsupported_version 99));
  expect "truncated payload"
    (String.sub bytes 0 (n - 9))
    (Plan_codec.Truncated { want = n; have = n - 9 });
  (let b = Bytes.of_string bytes in
   Bytes.set b 24 (Char.chr (Char.code (Bytes.get b 24) lxor 0x40));
   expect "flipped payload bit" (Bytes.to_string b)
     Plan_codec.Checksum_mismatch);
  (match Plan_codec.decode (bytes ^ "garbage") with
  | Error (Plan_codec.Malformed _) -> ()
  | Error e ->
      Alcotest.failf "trailing garbage: wrong error %s"
        (Plan_codec.error_to_string e)
  | Ok _ -> Alcotest.fail "trailing garbage decoded");
  (* a well-checksummed but structurally bogus payload must be
     Malformed, proving the parser itself is bounded *)
  let bogus =
    let payload = "\xff" in
    let b = Buffer.create 32 in
    Buffer.add_string b "ASPK";
    Buffer.add_int64_le b (Int64.of_int Plan_codec.version);
    Buffer.add_int64_le b (Int64.of_int (String.length payload));
    Buffer.add_string b payload;
    Buffer.add_int64_le b (fnv1a64 payload);
    Buffer.contents b
  in
  (match Plan_codec.decode bogus with
  | Error (Plan_codec.Malformed _) -> ()
  | Error e ->
      Alcotest.failf "bogus payload: wrong error %s"
        (Plan_codec.error_to_string e)
  | Ok _ -> Alcotest.fail "bogus payload decoded")

let test_decode_exn_raises_codec_error () =
  (match Plan_codec.decode_exn "not a plan" with
  | _ -> Alcotest.fail "decode_exn succeeded on garbage"
  | exception Plan_codec.Codec_error Plan_codec.Bad_magic -> ()
  | exception e ->
      Alcotest.failf "decode_exn escaped with %s" (Printexc.to_string e));
  match Plan_codec.decode_exn "" with
  | _ -> Alcotest.fail "decode_exn succeeded on empty"
  | exception Plan_codec.Codec_error (Plan_codec.Truncated _) -> ()
  | exception e ->
      Alcotest.failf "decode_exn escaped with %s" (Printexc.to_string e)

(* decode never raises, whatever the bytes *)
let prop_decode_total =
  QCheck2.Test.make ~name:"decode is total on arbitrary bytes" ~count:200
    QCheck2.Gen.(string_size ~gen:char (int_range 0 200))
    (fun s ->
      match Plan_codec.decode s with
      | Ok _ | Error _ -> true
      | exception e ->
          QCheck2.Test.fail_reportf "decode raised %s on %S"
            (Printexc.to_string e) s)

(* prefixes/mutations of a real encoding: the adversarial half of
   totality, where length fields and checksums almost line up *)
let prop_decode_total_near_valid =
  QCheck2.Test.make ~name:"decode is total near valid encodings" ~count:200
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 0 1_000))
    (fun (cut, flip) ->
      let bytes = Plan_codec.encode (sample_plan ()) in
      let n = String.length bytes in
      let b = Bytes.of_string (String.sub bytes 0 (min (cut mod (n + 1)) n)) in
      if Bytes.length b > 0 then begin
        let i = flip mod Bytes.length b in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff))
      end;
      match Plan_codec.decode (Bytes.to_string b) with
      | Ok _ | Error _ -> true
      | exception e ->
          QCheck2.Test.fail_reportf "decode raised %s" (Printexc.to_string e))

(* --- Plan store ------------------------------------------------------------ *)

let with_store f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "astitch-test-store-%d-%d" (Unix.getpid ())
         (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun f ->
             try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
           (Sys.readdir dir);
         Unix.rmdir dir
       with Sys_error _ | Unix.Unix_error _ -> ()))
    (fun () -> f (Plan_store.open_ ~dir))

let test_store_roundtrip () =
  with_store (fun store ->
      let e = List.hd Astitch_workloads.Zoo.all in
      let g = e.tiny () in
      let plan = compile g in
      let fingerprint = Fingerprint.of_graph g in
      (match Plan_store.save store ~fingerprint ~arch:"v100" plan with
      | Ok () -> ()
      | Error m -> Alcotest.failf "save failed: %s" m);
      check_int "one file listed" 1 (List.length (Plan_store.list store));
      (match Plan_store.load store ~fingerprint ~arch:"v100" with
      | Plan_store.Loaded plan' ->
          check "loaded equals saved" true (Plan_codec.equal plan plan')
      | Plan_store.Absent -> Alcotest.fail "saved plan absent"
      | Plan_store.Rejected m -> Alcotest.failf "saved plan rejected: %s" m);
      (match Plan_store.load store ~fingerprint ~arch:"a100" with
      | Plan_store.Absent -> ()
      | _ -> Alcotest.fail "other-arch key hit");
      match Plan_store.load store ~fingerprint:"nope" ~arch:"v100" with
      | Plan_store.Absent -> ()
      | _ -> Alcotest.fail "other-fingerprint key hit")

let test_store_rejects_damage () =
  with_store (fun store ->
      let e = List.hd Astitch_workloads.Zoo.all in
      let g = e.tiny () in
      let plan = compile g in
      let fingerprint = Fingerprint.of_graph g in
      (match Plan_store.save store ~fingerprint ~arch:"v100" plan with
      | Ok () -> ()
      | Error m -> Alcotest.failf "save failed: %s" m);
      let path =
        Filename.concat (Plan_store.dir store)
          (Plan_store.filename ~fingerprint ~arch:"v100")
      in
      (* truncate the file mid-payload *)
      let bytes =
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let oc = open_out_bin path in
      output_string oc (String.sub bytes 0 (String.length bytes / 2));
      close_out oc;
      (match Plan_store.load store ~fingerprint ~arch:"v100" with
      | Plan_store.Rejected _ -> ()
      | Plan_store.Loaded _ -> Alcotest.fail "loaded a truncated file"
      | Plan_store.Absent -> Alcotest.fail "truncated file reported absent");
      (* overwrite with garbage that is not a plan at all *)
      let oc = open_out_bin path in
      output_string oc "this is not a kernel plan";
      close_out oc;
      match Plan_store.load store ~fingerprint ~arch:"v100" with
      | Plan_store.Rejected _ -> ()
      | Plan_store.Loaded _ -> Alcotest.fail "loaded garbage"
      | Plan_store.Absent -> Alcotest.fail "garbage reported absent")

let test_store_save_is_atomic_per_plan () =
  with_store (fun store ->
      (* saving over an existing file replaces it wholesale *)
      let e = List.hd Astitch_workloads.Zoo.all in
      let g = e.tiny () in
      let plan = compile g in
      let fingerprint = Fingerprint.of_graph g in
      (match Plan_store.save store ~fingerprint ~arch:"v100" plan with
      | Ok () -> ()
      | Error m -> Alcotest.failf "first save failed: %s" m);
      (match Plan_store.save store ~fingerprint ~arch:"v100" plan with
      | Ok () -> ()
      | Error m -> Alcotest.failf "second save failed: %s" m);
      check_int "still one file" 1 (List.length (Plan_store.list store));
      (* no temp files left behind *)
      check "no stray temp files" true
        (List.for_all
           (fun f -> Filename.check_suffix f ".plan")
           (Array.to_list (Sys.readdir (Plan_store.dir store)))))

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "codec"
    [
      ( "round-trip",
        [
          Alcotest.test_case "zoo workload plans" `Quick
            test_roundtrip_workloads;
          Alcotest.test_case "batched zoo plans" `Quick test_roundtrip_batched;
          Alcotest.test_case "tight-smem plans exercise barriers" `Quick
            test_global_scheme_covered;
        ]
        @ qsuite [ prop_roundtrip_random; prop_roundtrip_global ] );
      ( "corruption",
        [
          Alcotest.test_case "every mode is a structured error" `Quick
            test_corruption_modes;
          Alcotest.test_case "decode_exn raises Codec_error only" `Quick
            test_decode_exn_raises_codec_error;
        ]
        @ qsuite [ prop_decode_total; prop_decode_total_near_valid ] );
      ( "store",
        [
          Alcotest.test_case "save/load round-trip by key" `Quick
            test_store_roundtrip;
          Alcotest.test_case "damaged files rejected, never raised" `Quick
            test_store_rejects_damage;
          Alcotest.test_case "atomic overwrite, no temp litter" `Quick
            test_store_save_is_atomic_per_plan;
        ] );
    ]
