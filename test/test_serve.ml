(* The batched serving runtime.

   The load-bearing claims, each tested directly:
   - [Batching.analyze] classifies per-request vs shared parameters and
     batch-carrying vs invariant outputs, and rejects builders that do
     not scale exactly one axis;
   - pack/unpack is lossless at ANY batch size (primes included),
     batch-invariant outputs are copied whole to every request, and
     when padding is asked for it replicates the last request;
   - symbolic batch extents: one plan compiled at max_batch rebinds to
     every smaller size bit-identically to a fresh fixed-extent
     compile (unit, zoo, and a qcheck property on random graphs);
   - continuous batching end-to-end: odd-size bursts dispatch at
     exactly their request count on one shape-polymorphic context -
     zero padded rows, one plan compile - and a queue that reaches
     max_batch wakes the worker without waiting out the window;
   - THE serving invariant: batched execution (including padded tail
     batches) is bit-identical to running every request alone - as a
     unit test on hand builders and every zoo workload at batch
     {1,3,8}, and as a qcheck property over random row-independent
     builders and random request counts;
   - the server end-to-end: all submitted requests come back [Done]
     with solo-identical outputs; admission control refuses past the
     queue bound with a structured [Overloaded] and sheds expired
     requests as [Deadline_exceeded] (visible in serve.shed); a
     poisoned request fails alone without taking down its batchmates
     or the server;
   - the batcher policy's dispatch algebra;
   - the plan cache stays coherent when hammered from many domains. *)

open Astitch_ir
open Astitch_tensor
open Astitch_simt
open Astitch_plan
open Astitch_runtime
open Astitch_serve

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bitwise_equal a b =
  Shape.equal (Tensor.shape a) (Tensor.shape b)
  && Array.for_all2 Float.equal (Tensor.data a) (Tensor.data b)

let check_outputs_identical what expected got =
  check_int (what ^ ": output arity") (List.length expected) (List.length got);
  List.iteri
    (fun i (e, g) ->
      check_bool (Printf.sprintf "%s: output %d bit-identical" what i) true
        (bitwise_equal e g))
    (List.combine expected got)

(* --- Fixture builders ---------------------------------------------------- *)

(* The canonical batchable family: per-request rows through a dense
   layer, softmax, layer norm - plus a batch-invariant second output
   derived only from the shared weights. *)
let mlp_build ~batch =
  let k = 6 in
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ batch; k ] in
  let w = Builder.parameter b "w" [ k; k ] in
  let bias = Builder.parameter b "bias" [ k ] in
  let gamma = Builder.parameter b "gamma" [ k ] in
  let beta = Builder.parameter b "beta" [ k ] in
  let h =
    Builder.add b (Builder.dot b x w)
      (Builder.broadcast b bias ~dims:[ 1 ] [ batch; k ])
  in
  let h = Builder.gelu b h in
  let h = Builder.layer_norm b h ~gamma ~beta in
  let out = Builder.softmax b h in
  let aux = Builder.tanh b w in
  Builder.finish b ~outputs:[ out; aux ]

(* Scales two axes with the batch: must be rejected. *)
let two_axis_build ~batch =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ batch; batch + 1 ] in
  Builder.finish b ~outputs:[ Builder.tanh b x ]

(* No per-request parameter at all: nothing to batch. *)
let weights_only_build ~batch:_ =
  let b = Builder.create () in
  let w = Builder.parameter b "w" [ 4; 4 ] in
  Builder.finish b ~outputs:[ Builder.exp b w ]

(* A random row-independent builder family.  The op menu never mixes
   rows (elementwise, last-axis softmax, dense against shared weights,
   row-wise mean centering), so batched execution must be bit-identical
   to solo execution for any of these.  All structural choices are
   drawn before the returned closure, so every batch size builds the
   same family member. *)
let random_batchable ~seed =
  let st = Random.State.make [| seed |] in
  let k = 2 + Random.State.int st 5 in
  let depth = 1 + Random.State.int st 4 in
  let ops = List.init depth (fun _ -> Random.State.int st 6) in
  fun ~batch ->
    let b = Builder.create () in
    let x = Builder.parameter b "x" [ batch; k ] in
    let w = Builder.parameter b "w" [ k; k ] in
    let bias = Builder.parameter b "bias" [ k ] in
    let v =
      List.fold_left
        (fun v op ->
          match op with
          | 0 -> Builder.tanh b v
          | 1 -> Builder.softmax b v
          | 2 ->
              Builder.add b (Builder.dot b v w)
                (Builder.broadcast b bias ~dims:[ 1 ] [ batch; k ])
          | 3 -> Builder.gelu b v
          | 4 ->
              (* row-wise mean centering: reduce over the feature axis
                 only, never across requests *)
              let m = Builder.reduce_mean b ~axes:[ 1 ] v in
              Builder.sub b v (Builder.broadcast b m ~dims:[ 0 ] [ batch; k ])
          | _ -> Builder.sigmoid b (Builder.mul b v v))
        x ops
    in
    Builder.finish b ~outputs:[ v; Builder.exp b w ]

(* --- Batching analysis --------------------------------------------------- *)

let test_analyze_classifies () =
  let spec = Batching.analyze (fun n -> mlp_build ~batch:n) in
  check_int "one per-request parameter" 1 (List.length spec.request_params);
  let name, info = List.hd spec.request_params in
  Alcotest.(check string) "it is x" "x" name;
  check_int "batch axis 0" 0 info.axis;
  check_int "extent 1 at batch 1" 1 info.extent;
  check_int "four shared parameters" 4 (List.length spec.shared_params);
  (match spec.outputs with
  | [ Some { axis = 0; extent = 1 }; None ] -> ()
  | _ -> Alcotest.fail "outputs misclassified");
  check_bool "fingerprint is the batch-1 graph's" true
    (String.equal spec.fingerprint (Fingerprint.of_graph (mlp_build ~batch:1)))

let test_analyze_rejects_two_axis () =
  match Batching.analyze (fun n -> two_axis_build ~batch:n) with
  | exception Batching.Not_batchable _ -> ()
  | _ -> Alcotest.fail "two-axis scaling must be rejected"

let test_analyze_rejects_weights_only () =
  match Batching.analyze (fun n -> weights_only_build ~batch:n) with
  | exception Batching.Not_batchable _ -> ()
  | _ -> Alcotest.fail "builder without per-request parameters must be rejected"

let test_concat_slice_roundtrip () =
  let ts =
    List.init 5 (fun i -> Tensor.random ~seed:(100 + i) (Shape.of_list [ 2; 3; 4 ]))
  in
  List.iter
    (fun axis ->
      let cat = Batching.concat_axis ~axis ts in
      List.iteri
        (fun i t ->
          let lo = i * Shape.dim (Tensor.shape t) axis in
          let hi = lo + Shape.dim (Tensor.shape t) axis in
          check_bool
            (Printf.sprintf "axis %d part %d survives the roundtrip" axis i)
            true
            (bitwise_equal t (Batching.slice_axis ~axis ~lo ~hi cat)))
        ts)
    [ 0; 1; 2 ]

let test_pack_pads_with_last () =
  let spec = Batching.analyze (fun n -> mlp_build ~batch:n) in
  let reqs = List.init 3 (fun i -> Batching.random_request spec ~seed:(7 * i)) in
  let packed = Batching.pack spec ~batch:4 reqs in
  let x = List.assoc "x" packed in
  check_bool "packed to the bucket" true
    (Shape.equal (Tensor.shape x) (Shape.of_list [ 4; 6 ]));
  let last = List.assoc "x" (List.nth reqs 2) in
  check_bool "pad row replicates the last request" true
    (bitwise_equal last (Batching.slice_axis ~axis:0 ~lo:3 ~hi:4 x));
  check_bool "row 2 is the last request too" true
    (bitwise_equal last (Batching.slice_axis ~axis:0 ~lo:2 ~hi:3 x))

let test_pack_rejects_bad_shape () =
  let spec = Batching.analyze (fun n -> mlp_build ~batch:n) in
  let bad = [ ("x", Tensor.random ~seed:1 (Shape.of_list [ 1; 5 ])) ] in
  match Batching.pack spec ~batch:1 [ bad ] with
  | exception Batching.Not_batchable _ -> ()
  | _ -> Alcotest.fail "wrong-shaped binding must be rejected"

(* Continuous batching dispatches at exactly the request count, so
   pack/unpack must be exact at ANY size - primes are the sizes a
   pow-2 bucket scheme never exercised. *)
let test_pack_unpack_primes () =
  let spec = Batching.analyze (fun n -> mlp_build ~batch:n) in
  let shared = Batching.random_shared spec ~seed:31 in
  List.iter
    (fun n ->
      let reqs =
        List.init n (fun i ->
            Batching.random_request spec ~seed:((n * 100) + i))
      in
      let packed = Batching.pack spec ~batch:n reqs in
      let x = List.assoc "x" packed in
      check_bool
        (Printf.sprintf "batch %d packs at exactly %d rows" n n)
        true
        (Shape.equal (Tensor.shape x) (Shape.of_list [ n; 6 ]));
      let out = Interp.run (mlp_build ~batch:n) ~params:(shared @ packed) in
      let sliced = Batching.unpack spec ~count:n out in
      check_int (Printf.sprintf "batch %d unpacks %d results" n n) n
        (List.length sliced);
      (* the batch-invariant aux output (tanh of the shared weights) is
         copied whole to every request, not sliced *)
      let aux = List.nth out 1 in
      List.iteri
        (fun i outs ->
          check_bool
            (Printf.sprintf "batch %d request %d gets the invariant output" n i)
            true
            (bitwise_equal aux (List.nth outs 1)))
        sliced;
      List.iteri
        (fun i req ->
          let solo = Interp.run spec.base ~params:(shared @ req) in
          check_outputs_identical
            (Printf.sprintf "prime batch %d request %d" n i)
            solo (List.nth sliced i))
        reqs)
    [ 3; 5; 7; 13 ]

(* --- Bit-identity -------------------------------------------------------- *)

(* Run [count] requests through the batched graph at [bucket] (padding
   when count < bucket) and compare every slice against solo batch-1
   interpretation.  Pure interpreter - no compiler in the loop - so a
   failure here indicts the batching transform itself. *)
let assert_bit_identity ~what build ~count ~bucket =
  let spec = Batching.analyze (fun n -> build ~batch:n) in
  let shared = Batching.random_shared spec ~seed:999 in
  let reqs = List.init count (fun i -> Batching.random_request spec ~seed:i) in
  let packed = Batching.pack spec ~batch:bucket reqs in
  let batched_out =
    Interp.run (build ~batch:bucket) ~params:(shared @ packed)
  in
  let sliced = Batching.unpack spec ~count batched_out in
  List.iteri
    (fun i req ->
      let solo = Interp.run spec.base ~params:(shared @ req) in
      check_outputs_identical
        (Printf.sprintf "%s request %d/%d bucket %d" what i count bucket)
        solo (List.nth sliced i))
    reqs

let test_bit_identity_mlp () =
  assert_bit_identity ~what:"mlp" mlp_build ~count:4 ~bucket:4;
  assert_bit_identity ~what:"mlp padded" mlp_build ~count:3 ~bucket:4;
  assert_bit_identity ~what:"mlp solo" mlp_build ~count:1 ~bucket:1

let prop_bit_identity_random =
  QCheck2.Test.make ~name:"random row-independent builders are batchable"
    ~count:40
    QCheck2.Gen.(pair (int_range 0 5_000) (int_range 1 8))
    (fun (seed, count) ->
      let build = random_batchable ~seed in
      let bucket =
        let rec up b = if b >= count then b else up (2 * b) in
        up 1
      in
      assert_bit_identity
        ~what:(Printf.sprintf "random(seed=%d)" seed)
        build ~count ~bucket;
      true)

(* Every zoo workload, both through the interpreter (transform-level
   identity) and through the full compiler + fused executor at batch
   {1,3,8} - 3 exercises the padded tail into bucket 4. *)
let test_zoo_batched_build_compile_run () =
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      List.iter
        (fun n ->
          let g = e.batched ~batch:n in
          let plan = Astitch_core.Astitch.compile Arch.v100 g in
          let params = Session.random_params g in
          let out = Astitch_runtime.Executor.run plan ~params in
          check_bool
            (Printf.sprintf "%s batch %d runs" e.name n)
            true (out <> []))
        [ 1; 3; 8 ])
    Astitch_workloads.Zoo.all

let test_zoo_batched_bit_identity () =
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      (* padded: 3 requests in bucket 4 *)
      let spec = Batching.analyze (fun n -> e.batched ~batch:n) in
      let shared = Batching.random_shared spec ~seed:4242 in
      let reqs = List.init 3 (fun i -> Batching.random_request spec ~seed:i) in
      let packed = Batching.pack spec ~batch:4 reqs in
      let g4 = e.batched ~batch:4 in
      let plan4 = Astitch_core.Astitch.compile Arch.v100 g4 in
      let batched_out =
        Astitch_runtime.Executor.run plan4 ~params:(shared @ packed)
      in
      let sliced = Batching.unpack spec ~count:3 batched_out in
      let plan1 = Astitch_core.Astitch.compile Arch.v100 spec.base in
      List.iteri
        (fun i req ->
          let solo =
            Astitch_runtime.Executor.run plan1 ~params:(shared @ req)
          in
          check_outputs_identical
            (Printf.sprintf "%s padded request %d" e.name i)
            solo (List.nth sliced i))
        reqs)
    Astitch_workloads.Zoo.all

(* --- Symbolic batch extents ---------------------------------------------- *)

(* Classify a builder family, compile the max-batch graph once with the
   batch classification attached, and run every batch size 1..max on the
   SAME context via [~batch] - each must be bit-identical to a fresh
   fixed-extent compile at that size. *)
let assert_symbolic_rebind ~what build ~max_batch =
  let g1 = build ~batch:1 and g2 = build ~batch:2 in
  let cls =
    match Batch_axis.analyze ~g1 ~g2 with
    | Ok cls -> cls
    | Error m -> Alcotest.failf "%s: not symbolic: %s" what m
  in
  let gmax = build ~batch:max_batch in
  (match Batch_axis.validate_at cls ~base:g1 ~at:gmax ~batch:max_batch with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: classification invalid at max: %s" what m);
  let plan =
    {
      (Astitch_core.Astitch.compile Arch.v100 gmax) with
      Kernel_plan.batch = Some { Batch_axis.max_batch; cls };
    }
  in
  let ctx = Astitch_runtime.Executor.create_context plan in
  check_bool (what ^ ": context rebindable") true
    (Astitch_runtime.Executor.rebindable ctx);
  let spec = Batching.analyze (fun n -> build ~batch:n) in
  let shared = Batching.random_shared spec ~seed:77 in
  for b = 1 to max_batch do
    let reqs = List.init b (fun i -> Batching.random_request spec ~seed:i) in
    let packed = Batching.pack spec ~batch:b reqs in
    let params = shared @ packed in
    let rebound =
      Astitch_runtime.Executor.run_context ~batch:b ctx ~params
    in
    let fresh_plan = Astitch_core.Astitch.compile Arch.v100 (build ~batch:b) in
    let fresh = Astitch_runtime.Executor.run fresh_plan ~params in
    check_outputs_identical
      (Printf.sprintf "%s batch %d rebound = fresh compile" what b)
      fresh rebound
  done

let test_symbolic_rebind_mlp () =
  assert_symbolic_rebind ~what:"mlp" mlp_build ~max_batch:8

let test_symbolic_rebind_zoo () =
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      let g1 = e.batched ~batch:1 and g2 = e.batched ~batch:2 in
      match Batch_axis.analyze ~g1 ~g2 with
      | Ok _ -> assert_symbolic_rebind ~what:e.name e.batched ~max_batch:8
      | Error _ ->
          (* not prefix-executable: the serving layer uses fixed-extent
             compilation for these; nothing to assert here *)
          ())
    Astitch_workloads.Zoo.all

let prop_symbolic_rebind_random =
  QCheck2.Test.make
    ~name:"symbolic rebinding = fresh fixed-extent compile on random graphs"
    ~count:25
    QCheck2.Gen.(pair (int_range 0 5_000) (int_range 2 8))
    (fun (seed, max_batch) ->
      let build = random_batchable ~seed in
      assert_symbolic_rebind
        ~what:(Printf.sprintf "random(seed=%d)" seed)
        build ~max_batch;
      true)

let test_thread_mapping_rebind () =
  let open Thread_mapping in
  (* elementwise: elements shrink exactly, grid follows *)
  (match
     rebind (Elementwise { elements = 800; block = 100; grid = 8; rows = None })
       ~num:3 ~den:8
   with
  | Elementwise { elements = 300; block = 100; grid = 3; rows = None } -> ()
  | m -> Alcotest.failf "elementwise rebind wrong: %s" (to_string m));
  (* row reduce: rows shrink, block geometry (packing, split) is kept *)
  (match
     rebind
       (Row_reduce
          { rows = 64; row_length = 128; threads_per_row = 32;
            rows_per_block = 4; row_groups_per_block = 2; split = 1 })
       ~num:5 ~den:8
   with
  | Row_reduce
      { rows = 40; row_length = 128; threads_per_row = 32; rows_per_block = 4;
        row_groups_per_block = 2; split = 1 } ->
      ()
  | m -> Alcotest.failf "row-reduce rebind wrong: %s" (to_string m));
  (* column reduce: independent-reduction count shrinks *)
  (match
     rebind
       (Column_reduce { rows = 16; row_length = 32; block = 128; grid = 4 })
       ~num:1 ~den:8
   with
  | Column_reduce { rows = 2; row_length = 32; block = 128; grid = 1 } -> ()
  | m -> Alcotest.failf "column-reduce rebind wrong: %s" (to_string m));
  (* never collapses to zero work *)
  match
    rebind (Elementwise { elements = 4; block = 256; grid = 1; rows = None })
      ~num:1 ~den:8
  with
  | Elementwise { elements = 1; _ } -> ()
  | m -> Alcotest.failf "tiny rebind wrong: %s" (to_string m)

(* --- Batcher policy ------------------------------------------------------ *)

let test_batcher_decisions () =
  let p = Batcher.policy ~max_batch:4 ~max_wait_us:1000. in
  let decide = Batcher.decide p in
  check_bool "empty waits" true
    (decide ~pending:0 ~oldest_wait_us:1e9 ~draining:true = Batcher.Wait);
  check_bool "full batch dispatches" true
    (decide ~pending:4 ~oldest_wait_us:0. ~draining:false = Batcher.Dispatch 4);
  check_bool "overfull clamps to max" true
    (decide ~pending:9 ~oldest_wait_us:0. ~draining:false = Batcher.Dispatch 4);
  check_bool "window open waits" true
    (decide ~pending:2 ~oldest_wait_us:500. ~draining:false = Batcher.Wait);
  check_bool "window expired dispatches partial" true
    (decide ~pending:2 ~oldest_wait_us:1000. ~draining:false
    = Batcher.Dispatch 2);
  check_bool "draining flushes immediately" true
    (decide ~pending:2 ~oldest_wait_us:0. ~draining:true = Batcher.Dispatch 2)

(* --- The server end-to-end ----------------------------------------------- *)

let mlp_model = { Serve.name = "mlp"; build = (fun ~batch -> mlp_build ~batch) }

let serve_config ?(workers = 2) ?(max_batch = 4) ?(max_wait_us = 500.)
    ?(queue_depth = 64) () =
  {
    Serve.default_config with
    workers;
    max_batch;
    max_wait_us;
    queue_depth;
    verify_every = 3;
  }

let test_serve_end_to_end () =
  let server = Serve.create ~config:(serve_config ()) [ mlp_model ] in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown server)
    (fun () ->
      let spec = Serve.spec server ~model:"mlp" in
      let shared = Serve.shared_weights server ~model:"mlp" in
      let n = 24 in
      let reqs =
        List.init n (fun i -> Serve.random_request server ~model:"mlp" ~seed:i)
      in
      let tickets =
        List.map
          (fun params ->
            match Serve.submit_async server ~model:"mlp" ~params with
            | Ok t -> t
            | Error o ->
                Alcotest.failf "request refused: %s"
                  (Request.overload_to_string o))
          reqs
      in
      List.iteri
        (fun i ticket ->
          match Serve.await server ticket with
          | Request.Done { outputs; batch; degraded; latency_us } ->
              check_bool "not degraded" false degraded;
              check_bool "latency positive" true (latency_us > 0.);
              check_bool "bucket sane" true (batch >= 1 && batch <= 4);
              let solo =
                Interp.run spec.base ~params:(shared @ List.nth reqs i)
              in
              check_outputs_identical
                (Printf.sprintf "served request %d" i)
                solo outputs
          | Request.Overloaded o ->
              Alcotest.failf "request %d overloaded: %s" i
                (Request.overload_to_string o)
          | Request.Failed m -> Alcotest.failf "request %d failed: %s" i m)
        tickets;
      let s = Serve.stats server in
      check_int "all submitted" n s.submitted;
      check_int "all completed" n s.completed;
      check_int "nothing rejected" 0 s.rejected;
      check_int "nothing shed" 0 s.shed;
      check_int "nothing failed" 0 s.failed;
      check_int "nothing outstanding" 0 s.outstanding;
      check_int "no padded rows" 0 s.padded_rows;
      check_bool "batching actually happened" true (s.batches <= n))

let test_serve_weights_match_spec () =
  (* [Serve.random_request] and the server's internal shared weights are
     both deterministic; a second server with the same seed serves
     bit-identical results. *)
  let run_once () =
    let server = Serve.create ~config:(serve_config ()) [ mlp_model ] in
    Fun.protect
      ~finally:(fun () -> Serve.shutdown server)
      (fun () ->
        let params = Serve.random_request server ~model:"mlp" ~seed:5 in
        match Serve.submit server ~model:"mlp" ~params with
        | Request.Done { outputs; _ } -> outputs
        | _ -> Alcotest.fail "request did not complete")
  in
  check_outputs_identical "two servers, same seed, same answer" (run_once ())
    (run_once ())

let test_caller_runs_mode () =
  (* workers = 0: no domains; [await] and [drain] pump batches on the
     calling thread.  Same bit-identity contract as the pooled path. *)
  let server =
    Serve.create ~config:(serve_config ~workers:0 ()) [ mlp_model ]
  in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown server)
    (fun () ->
      let spec = Serve.spec server ~model:"mlp" in
      let shared = Serve.shared_weights server ~model:"mlp" in
      (* await-pumping without a drain: the awaiting thread itself must
         wait out the batching window and execute the batch *)
      let p0 = Serve.random_request server ~model:"mlp" ~seed:0 in
      (match Serve.submit server ~model:"mlp" ~params:p0 with
      | Request.Done { outputs; degraded; _ } ->
          check_bool "not degraded" false degraded;
          check_outputs_identical "caller-runs await"
            (Interp.run spec.base ~params:(shared @ p0))
            outputs
      | _ -> Alcotest.fail "caller-runs submit must complete");
      (* drain-pumping: a backlog of async submissions flushes on the
         draining thread, batched *)
      let n = 9 in
      let reqs =
        List.init n (fun i ->
            Serve.random_request server ~model:"mlp" ~seed:(100 + i))
      in
      let tickets =
        List.map
          (fun params ->
            match Serve.submit_async server ~model:"mlp" ~params with
            | Ok t -> t
            | Error o ->
                Alcotest.failf "request refused: %s"
                  (Request.overload_to_string o))
          reqs
      in
      Serve.drain server;
      List.iteri
        (fun i ticket ->
          match Serve.poll server ticket with
          | Some (Request.Done { outputs; _ }) ->
              check_outputs_identical
                (Printf.sprintf "caller-runs drained request %d" i)
                (Interp.run spec.base ~params:(shared @ List.nth reqs i))
                outputs
          | _ -> Alcotest.failf "request %d not completed by drain" i)
        tickets;
      let s = Serve.stats server in
      check_int "all completed" (n + 1) s.completed;
      check_bool "backlog was batched" true (s.batches < n + 1))

let test_continuous_exact_batches () =
  (* Odd burst sizes through a caller-runs server with an hour-long
     window: drain dispatches each burst as ONE batch at exactly its
     request count.  One shape-polymorphic context serves all of them -
     zero padded rows, one plan compile, pool size 1. *)
  let config =
    serve_config ~workers:0 ~max_batch:7 ~max_wait_us:3.6e9 ()
  in
  let server = Serve.create ~config [ mlp_model ] in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown server)
    (fun () ->
      check_bool "mlp is shape-polymorphic" true
        (Serve.symbolic server ~model:"mlp");
      List.iter
        (fun n ->
          let tickets =
            List.init n (fun i ->
                match
                  Serve.submit_async server ~model:"mlp"
                    ~params:
                      (Serve.random_request server ~model:"mlp"
                         ~seed:((n * 10) + i))
                with
                | Ok t -> t
                | Error o ->
                    Alcotest.failf "refused: %s" (Request.overload_to_string o))
          in
          Serve.drain server;
          List.iter
            (fun t ->
              match Serve.poll server t with
              | Some (Request.Done { batch; _ }) ->
                  check_int
                    (Printf.sprintf "burst of %d dispatched at exactly %d" n n)
                    n batch
              | _ -> Alcotest.failf "burst of %d: request not completed" n)
            tickets)
        [ 3; 5; 7; 1 ];
      let s = Serve.stats server in
      check_int "zero padded rows" 0 s.padded_rows;
      check_int "one plan compile for the symbolic model" 1 s.plan_compiles;
      check_int "each burst was one batch" 4 s.batches;
      match Serve.context_pool_sizes server with
      | [ ("mlp", 1) ] -> ()
      | sizes ->
          Alcotest.failf "expected one pooled context, got [%s]"
            (String.concat "; "
               (List.map (fun (m, c) -> Printf.sprintf "%s:%d" m c) sizes)))

let test_full_batch_dispatches_immediately () =
  (* An hour-long batching window, but the queue reaches max_batch: the
     submit-side wake must rouse the parked worker and dispatch NOW -
     awaits complete in poll-tick time, not window time. *)
  let config =
    serve_config ~workers:1 ~max_batch:4 ~max_wait_us:3.6e9 ()
  in
  let server = Serve.create ~config [ mlp_model ] in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown server)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let tickets =
        List.init 4 (fun i ->
            match
              Serve.submit_async server ~model:"mlp"
                ~params:(Serve.random_request server ~model:"mlp" ~seed:i)
            with
            | Ok t -> t
            | Error _ -> Alcotest.fail "empty queue refused a request")
      in
      List.iter
        (fun t ->
          match Serve.await server t with
          | Request.Done _ -> ()
          | _ -> Alcotest.fail "full batch must be served")
        tickets;
      let elapsed = Unix.gettimeofday () -. t0 in
      check_bool
        (Printf.sprintf "full batch served without the window (%.3fs)" elapsed)
        true (elapsed < 2.);
      let s = Serve.stats server in
      check_int "one batch of four" 1 s.batches;
      check_int "no padding" 0 s.padded_rows)

let test_admission_control () =
  (* max_batch 8 with only 4 queue slots and an hour-long window: the
     worker can never assemble a batch, so the queue fills and stays
     full - admission must refuse deterministically. *)
  let config =
    serve_config ~workers:1 ~max_batch:8 ~max_wait_us:3.6e9 ~queue_depth:4 ()
  in
  let server = Serve.create ~config [ mlp_model ] in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown server)
    (fun () ->
      let outcomes =
        List.init 10 (fun i ->
            Serve.submit_async server ~model:"mlp"
              ~params:(Serve.random_request server ~model:"mlp" ~seed:i))
      in
      let admitted, refused =
        List.partition (function Ok _ -> true | Error _ -> false) outcomes
      in
      check_int "exactly queue_depth admitted" 4 (List.length admitted);
      check_int "the rest refused" 6 (List.length refused);
      List.iter
        (function
          | Error Request.Queue_full -> ()
          | Error o ->
              Alcotest.failf "wrong overload: %s" (Request.overload_to_string o)
          | Ok _ -> ())
        refused;
      (* drain flushes the stuck partial batch *)
      Serve.drain server;
      List.iter
        (function
          | Ok t -> (
              match Serve.await server t with
              | Request.Done _ -> ()
              | _ -> Alcotest.fail "admitted request must complete")
          | Error _ -> ())
        outcomes;
      let s = Serve.stats server in
      check_int "rejected counted" 6 s.rejected;
      check_int "admitted completed" 4 s.completed)

let test_deadline_shedding () =
  let before =
    Astitch_obs.Metrics.value
      (Astitch_obs.Metrics.counter Astitch_obs.Metrics.default "serve.shed")
  in
  (* Batch can't fill (max_batch 8, window 1h), so the requests sit
     until their 2ms deadline passes and the dispatch loop sheds them. *)
  let config =
    serve_config ~workers:1 ~max_batch:8 ~max_wait_us:3.6e9 ~queue_depth:64 ()
  in
  let server = Serve.create ~config [ mlp_model ] in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown server)
    (fun () ->
      let tickets =
        List.init 3 (fun i ->
            match
              Serve.submit_async server ~deadline_us:2_000. ~model:"mlp"
                ~params:(Serve.random_request server ~model:"mlp" ~seed:i)
            with
            | Ok t -> t
            | Error _ -> Alcotest.fail "admission refused an empty queue")
      in
      List.iter
        (fun t ->
          match Serve.await server t with
          | Request.Overloaded Request.Deadline_exceeded -> ()
          | Request.Done _ -> Alcotest.fail "expired request must be shed"
          | o ->
              Alcotest.failf "unexpected outcome: %s"
                (match o with
                | Request.Failed m -> m
                | Request.Overloaded ov -> Request.overload_to_string ov
                | _ -> "done"))
        tickets;
      let s = Serve.stats server in
      check_int "all shed" 3 s.shed;
      let after =
        Astitch_obs.Metrics.value
          (Astitch_obs.Metrics.counter Astitch_obs.Metrics.default "serve.shed")
      in
      check_bool "serve.shed metric advanced" true (after >= before + 3))

let test_poisoned_request_fails_alone () =
  (* Two requests forced into one batch (max_batch 2, long window); one
     has a wrong-shaped binding.  The batch fails at pack and
     supervision re-dispatches each request solo: the good one is
     served at full strength (NOT degraded - its solo batch packs
     fine), the bad one burns its retry budget and fails on the
     fallback rung; the server survives and keeps serving. *)
  let config =
    serve_config ~workers:1 ~max_batch:2 ~max_wait_us:3.6e9 ~queue_depth:64 ()
  in
  let server = Serve.create ~config [ mlp_model ] in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown server)
    (fun () ->
      let good = Serve.random_request server ~model:"mlp" ~seed:1 in
      let bad = [ ("x", Tensor.random ~seed:2 (Shape.of_list [ 1; 5 ])) ] in
      let t_good =
        match Serve.submit_async server ~model:"mlp" ~params:good with
        | Ok t -> t
        | Error _ -> Alcotest.fail "good request refused"
      in
      let t_bad =
        match Serve.submit_async server ~model:"mlp" ~params:bad with
        | Ok t -> t
        | Error _ -> Alcotest.fail "bad request refused"
      in
      (match Serve.await server t_good with
      | Request.Done { degraded; _ } ->
          check_bool "good batchmate served at full strength" false degraded
      | _ -> Alcotest.fail "good batchmate must complete");
      (match Serve.await server t_bad with
      | Request.Failed _ -> ()
      | _ -> Alcotest.fail "poisoned request must fail");
      (* the server still serves after the failure; the hour-long window
         means a lone request only flushes on drain *)
      (let t3 =
         match
           Serve.submit_async server ~model:"mlp"
             ~params:(Serve.random_request server ~model:"mlp" ~seed:3)
         with
         | Ok t -> t
         | Error _ -> Alcotest.fail "server must keep admitting"
       in
       Serve.drain server;
       match Serve.await server t3 with
       | Request.Done _ -> ()
       | _ -> Alcotest.fail "server must keep serving after a failure");
      let s = Serve.stats server in
      check_int "one failure" 1 s.failed;
      check_int "nothing served degraded" 0 s.degraded;
      check_bool "both batchmates were retried solo" true (s.retried >= 2))

let test_unknown_model_rejected () =
  let server =
    Serve.create ~config:(serve_config ~workers:1 ()) [ mlp_model ]
  in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown server)
    (fun () ->
      match Serve.submit_async server ~model:"nope" ~params:[] with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "unknown model must raise")

(* --- Plan cache under domain pressure ------------------------------------ *)

let prop_plan_cache_domain_hammer =
  QCheck2.Test.make ~name:"plan cache coherent under concurrent domains"
    ~count:15
    QCheck2.Gen.(int_range 0 1_000)
    (fun seed ->
      let cache : int Plan_cache.t = Plan_cache.create ~capacity:8 () in
      let domains =
        List.init 4 (fun d ->
            Domain.spawn (fun () ->
                let st = Random.State.make [| seed; d |] in
                for i = 1 to 500 do
                  let key = Printf.sprintf "k%d" (Random.State.int st 16) in
                  match Plan_cache.find cache key with
                  | Some _ -> ()
                  | None -> Plan_cache.add cache key (d * 1000 + i)
                done))
      in
      List.iter Domain.join domains;
      let s = Plan_cache.stats cache in
      Plan_cache.length cache <= 8
      && s.hits + s.misses = 2000
      && s.insertions >= s.evictions
      && Plan_cache.length cache = s.insertions - s.evictions)

(* --- Chaos: supervision under injected runtime faults --------------------- *)

(* The supervision contract, exercised per fault: every admitted request
   resolves ([Done]/[Failed]/[Overloaded], never lost), survivors are
   bit-identical to solo interpretation (degraded or not - degradation
   never changes numerics), and the server keeps serving afterwards. *)
let await_all_accounted server ~what tickets_with_reqs =
  let spec = Serve.spec server ~model:"mlp" in
  let shared = Serve.shared_weights server ~model:"mlp" in
  List.iter
    (fun (ticket, params) ->
      match Serve.await server ticket with
      | Request.Done { outputs; _ } ->
          check_outputs_identical what
            (Interp.run spec.base ~params:(shared @ params))
            outputs
      | Request.Failed m -> Alcotest.failf "%s: request failed: %s" what m
      | Request.Overloaded o ->
          Alcotest.failf "%s: request overloaded: %s" what
            (Request.overload_to_string o))
    tickets_with_reqs

let submit_burst server ~what ~seed n =
  List.init n (fun j ->
      let params =
        Serve.random_request server ~model:"mlp" ~seed:((seed * 31) + j)
      in
      match Serve.submit_async server ~model:"mlp" ~params with
      | Ok t -> (t, params)
      | Error o ->
          Alcotest.failf "%s: request refused: %s" what
            (Request.overload_to_string o))

(* Every runtime fault site x 50 seeds x {raise, corrupt}, against a
   live worker-backed server.  One server per (site, mode): arming is
   per-burst, so each seed replays deterministically. *)
let test_chaos_sweep () =
  List.iter
    (fun site ->
      List.iter
        (fun mode ->
          let config = serve_config ~workers:1 ~max_batch:2 () in
          let server = Serve.create ~config [ mlp_model ] in
          Fun.protect
            ~finally:(fun () -> Serve.shutdown server)
            (fun () ->
              let what =
                Printf.sprintf "chaos %s:%s"
                  (Fault.site_to_string site)
                  (Fault.mode_to_string mode)
              in
              for seed = 0 to 49 do
                Fault.with_faults
                  [ Fault.plan site ~mode ~seed ~fuel:2 ]
                  (fun () ->
                    let burst =
                      submit_burst server ~what:(Printf.sprintf "%s seed %d" what seed) ~seed 3
                    in
                    Serve.drain server;
                    await_all_accounted server
                      ~what:(Printf.sprintf "%s seed %d" what seed)
                      burst)
              done;
              (* liveness after the storm: a clean request at full strength *)
              let p = Serve.random_request server ~model:"mlp" ~seed:9999 in
              (match Serve.submit server ~model:"mlp" ~params:p with
              | Request.Done { degraded; _ } ->
                  check_bool (what ^ ": clean request not degraded") false
                    degraded
              | _ -> Alcotest.failf "%s: server not live after sweep" what);
              let s = Serve.stats server in
              check_int (what ^ ": nothing outstanding") 0 s.outstanding;
              check_int (what ^ ": every request resolved")
                s.submitted
                (s.completed + s.failed + s.shed);
              check_int (what ^ ": no request failed") 0 s.failed))
        [ Fault.Raise; Fault.Corrupt ])
    Fault.runtime_sites

(* A fault that never stops firing: kernel-exec raises on every batch,
   forever.  Breakers off so nothing is fast-rejected; every request
   must ride the ladder down to the fault-free fallback rung and come
   back [Done] (degraded), bit-identical. *)
let test_chaos_persistent_fault_liveness () =
  let config =
    { (serve_config ~workers:1 ~max_batch:2 ()) with
      Serve.breaker_threshold = 0 }
  in
  let server = Serve.create ~config [ mlp_model ] in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown server)
    (fun () ->
      Fault.with_faults
        [ Fault.plan Fault.Kernel_exec ~mode:Fault.Raise ~seed:3 ~fuel:max_int ]
        (fun () ->
          let burst = submit_burst server ~what:"persistent" ~seed:1 6 in
          Serve.drain server;
          let spec = Serve.spec server ~model:"mlp" in
          let shared = Serve.shared_weights server ~model:"mlp" in
          List.iter
            (fun (ticket, params) ->
              match Serve.await server ticket with
              | Request.Done { outputs; degraded; _ } ->
                  check_bool "persistent: served on the fallback rung" true
                    degraded;
                  check_outputs_identical "persistent"
                    (Interp.run spec.base ~params:(shared @ params))
                    outputs
              | _ -> Alcotest.fail "persistent: request must resolve Done")
            burst;
          let s = Serve.stats server in
          check_int "persistent: no failures" 0 s.failed;
          check_int "persistent: nothing outstanding" 0 s.outstanding;
          check_bool "persistent: retries happened" true (s.retried > 0)))

(* Breaker lifecycle: consecutive batch failures open it, open refuses
   fast with the structured overload, a successful half-open probe
   closes it.  Caller-runs mode makes the failure count deterministic. *)
let test_chaos_breaker_opens_and_closes () =
  let config =
    { (serve_config ~workers:0 ~max_batch:2 ()) with
      Serve.breaker_threshold = 3;
      breaker_cooldown_us = 10_000. }
  in
  let server = Serve.create ~config [ mlp_model ] in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown server)
    (fun () ->
      check_bool "breaker starts closed" true
        (Serve.breaker_state server ~model:"mlp" = `Closed);
      Fault.with_faults
        [ Fault.plan Fault.Kernel_exec ~mode:Fault.Raise ~seed:1 ~fuel:max_int ]
        (fun () ->
          (* one request = initial batch + 2 retries = 3 consecutive
             failures = threshold; it still resolves via the fallback *)
          (match
             Serve.submit server ~model:"mlp"
               ~params:(Serve.random_request server ~model:"mlp" ~seed:1)
           with
          | Request.Done { degraded; _ } ->
              check_bool "first request served degraded" true degraded
          | _ -> Alcotest.fail "first request must resolve");
          check_bool "breaker open after threshold failures" true
            (Serve.breaker_state server ~model:"mlp" = `Open);
          (* open = fast structured rejection at submission *)
          match
            Serve.submit_async server ~model:"mlp"
              ~params:(Serve.random_request server ~model:"mlp" ~seed:2)
          with
          | Error Request.Breaker_open -> ()
          | Ok _ -> Alcotest.fail "open breaker must refuse"
          | Error o ->
              Alcotest.failf "wrong overload: %s"
                (Request.overload_to_string o));
      (* cooldown passes, faults are gone: the next request is the
         half-open probe and its success closes the breaker *)
      Unix.sleepf 0.015;
      (match
         Serve.submit server ~model:"mlp"
           ~params:(Serve.random_request server ~model:"mlp" ~seed:3)
       with
      | Request.Done { degraded; _ } ->
          check_bool "probe served at full strength" false degraded
      | _ -> Alcotest.fail "half-open probe must be admitted and served");
      check_bool "breaker closed after probe success" true
        (Serve.breaker_state server ~model:"mlp" = `Closed);
      let s = Serve.stats server in
      check_bool "open transitions counted" true (s.breaker_opens >= 1);
      check_bool "close transitions counted" true (s.breaker_closes >= 1))

(* Worker death and restart: the worker-loop site kills the worker with
   a batch in hand; the monitor recovers the batch and respawns the
   worker within its backoff budget.  Everything completes. *)
let test_chaos_worker_restart () =
  let config = serve_config ~workers:1 ~max_batch:2 () in
  let server = Serve.create ~config [ mlp_model ] in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown server)
    (fun () ->
      Fault.with_faults
        [ Fault.plan Fault.Worker_loop ~mode:Fault.Raise ~seed:5 ~fuel:2 ]
        (fun () ->
          let burst = submit_burst server ~what:"restart" ~seed:4 4 in
          Serve.drain server;
          await_all_accounted server ~what:"restart" burst);
      let sup = Serve.supervision server in
      check_bool "worker restarted" true (sup.Serve.restarts >= 1);
      check_int "worker alive again" 1 sup.Serve.workers_alive;
      let d = Serve.disposition server in
      check_int "no request lost" 0 d.Serve.lost)

(* Wedge detection: the worker-loop stall freezes the worker for 10ms
   with a batch in hand; a 2ms wedge timeout means the monitor steals
   and recovers the batch while the worker sleeps.  The worker then
   finishes the original batch too - first-wins completion delivers one
   outcome and counts the other as a duplicate. *)
let test_chaos_wedged_worker () =
  let config =
    { (serve_config ~workers:1 ~max_batch:2 ()) with
      Serve.wedge_timeout_us = 2_000. }
  in
  let server = Serve.create ~config [ mlp_model ] in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown server)
    (fun () ->
      Fault.with_faults
        (* seed 9 -> 10ms stall (stall_s = 1ms * (1 + seed mod 10)) *)
        [ Fault.plan Fault.Worker_loop ~mode:Fault.Stall ~seed:9 ~fuel:1 ]
        (fun () ->
          let burst = submit_burst server ~what:"wedge" ~seed:6 1 in
          Serve.drain server;
          await_all_accounted server ~what:"wedge" burst);
      let sup = Serve.supervision server in
      check_bool "wedge detected" true (sup.Serve.wedged >= 1);
      let s = Serve.stats server in
      check_int "request delivered exactly once" 1 s.completed;
      check_int "nothing outstanding" 0 s.outstanding)

(* Corrupt-mode quarantine: a silently-corrupted batch is detected via
   the fired counter, its context quarantined, and the retry serves the
   request CLEAN - full strength, bit-identical.  Corruption must never
   reach a caller. *)
let test_chaos_corrupt_quarantines_and_retries () =
  let config = serve_config ~workers:0 ~max_batch:2 () in
  let server = Serve.create ~config [ mlp_model ] in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown server)
    (fun () ->
      let spec = Serve.spec server ~model:"mlp" in
      let shared = Serve.shared_weights server ~model:"mlp" in
      let params = Serve.random_request server ~model:"mlp" ~seed:11 in
      Fault.with_faults
        [ Fault.plan Fault.Kernel_exec ~mode:Fault.Corrupt ~seed:7 ~fuel:1 ]
        (fun () ->
          match Serve.submit server ~model:"mlp" ~params with
          | Request.Done { outputs; degraded; _ } ->
              check_bool "retried request served at full strength" false
                degraded;
              check_outputs_identical "corrupt-retry"
                (Interp.run spec.base ~params:(shared @ params))
                outputs
          | _ -> Alcotest.fail "corrupted batch must be retried to Done");
      let sup = Serve.supervision server in
      check_bool "context quarantined" true (sup.Serve.quarantined >= 1);
      let s = Serve.stats server in
      check_bool "request was retried" true (s.retried >= 1);
      check_int "corruption never delivered as a failure" 0 s.failed)

(* The batcher-polling shutdown satellite: with an hour-long window and
   a pending partial batch, the worker is in its poll loop; drain +
   shutdown must complete within poll-tick latency, not window
   latency. *)
let test_shutdown_prompt_under_open_window () =
  let config =
    serve_config ~workers:1 ~max_batch:8 ~max_wait_us:3.6e9 ~queue_depth:8 ()
  in
  let server = Serve.create ~config [ mlp_model ] in
  let burst = submit_burst server ~what:"shutdown" ~seed:8 2 in
  let t0 = Unix.gettimeofday () in
  Serve.drain server;
  await_all_accounted server ~what:"shutdown" burst;
  Serve.shutdown server;
  let elapsed = Unix.gettimeofday () -. t0 in
  check_bool
    (Printf.sprintf "drain+shutdown prompt (%.3fs)" elapsed)
    true (elapsed < 2.);
  (* the poll-interval clamp the promptness bound rests on *)
  let interval max_wait_us =
    Batcher.poll_interval_us (Batcher.policy ~max_batch:4 ~max_wait_us)
  in
  check_bool "huge window clamps to 200us" true (interval 3.6e9 = 200.);
  check_bool "zero window clamps to 50us" true (interval 0. = 50.);
  check_bool "quarter window in between" true (interval 400. = 100.)

(* The plan-cache invalidation satellite. *)
let test_plan_cache_remove () =
  let cache : int Plan_cache.t = Plan_cache.create ~capacity:4 () in
  Plan_cache.add cache "a" 1;
  Plan_cache.add cache "b" 2;
  check_bool "remove present" true (Plan_cache.remove cache "a");
  check_bool "remove absent" false (Plan_cache.remove cache "a");
  check_bool "removed key misses" true (Plan_cache.find cache "a" = None);
  check_bool "other key survives" true (Plan_cache.find cache "b" = Some 2);
  let s = Plan_cache.stats cache in
  check_int "one removal counted" 1 s.removals;
  check_int "length = insertions - evictions - removals"
    (s.insertions - s.evictions - s.removals)
    (Plan_cache.length cache)

(* --- Request tracing: span chains, decomposition, flight recorder --------- *)

module Trace = Astitch_obs.Trace

(* The latency decomposition telescopes: the five phase stamps are the
   same floats the end-to-end sample is computed from, so summed over a
   clean run the phase histograms must reconcile with serve.request_us
   to within float rounding - the "blame" table adds up to 100%. *)
let test_phase_decomposition_reconciles () =
  let reg = Astitch_obs.Metrics.default in
  Astitch_obs.Metrics.reset reg;
  let server = Serve.create ~config:(serve_config ~workers:1 ()) [ mlp_model ] in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown server)
    (fun () ->
      let burst = submit_burst server ~what:"decomp" ~seed:2 12 in
      Serve.drain server;
      await_all_accounted server ~what:"decomp" burst);
  let h name =
    Astitch_obs.Metrics.histogram reg ("serve." ^ name ^ "_us")
  in
  let sum name = Astitch_obs.Metrics.hist_sum (h name) in
  let n = Astitch_obs.Metrics.hist_count (h "request") in
  check_int "every completed request is decomposed" 12 n;
  List.iter
    (fun phase ->
      check_int (phase ^ " observed once per request") n
        (Astitch_obs.Metrics.hist_count (h phase)))
    [ "queue"; "batch_wait"; "pack"; "exec"; "unpack" ];
  let parts =
    sum "queue" +. sum "batch_wait" +. sum "pack" +. sum "exec"
    +. sum "unpack"
  in
  let e2e = sum "request" in
  check_bool
    (Printf.sprintf "phases sum to end-to-end latency (%.3f vs %.3f us)"
       parts e2e)
    true
    (Float.abs (parts -. e2e) <= 1.0 +. (1e-9 *. e2e));
  let rows = Serve.latency_breakdown () in
  check_int "blame table: five phases + end-to-end" 6 (List.length rows);
  List.iter
    (fun (r : Serve.phase_latency) ->
      check_int (r.Serve.phase ^ ": blame row counts every request") n
        r.Serve.count)
    rows

(* Satellite property: under every runtime fault site x raise/corrupt,
   each admitted request's flow chain stays well-formed - exactly one
   "s" per request, every "t"/"f" resolves to it, exactly one "f" per
   chain, never before its "s".  The recorder rides along with a
   deliberately tiny ring so chaos overflows it; an overflowed ring must
   still export valid Chrome-trace JSON. *)
let prop_span_chain_under_chaos =
  QCheck2.Test.make ~name:"span chains well-formed under chaos" ~count:12
    QCheck2.Gen.(
      triple
        (int_range 0 (List.length Fault.runtime_sites - 1))
        bool (int_range 0 1_000))
    (fun (site_idx, use_raise, seed) ->
      let site = List.nth Fault.runtime_sites site_idx in
      let mode = if use_raise then Fault.Raise else Fault.Corrupt in
      if Trace.installed () then ignore (Trace.uninstall ());
      if Trace.recorder_installed () then ignore (Trace.recorder_uninstall ());
      Trace.install ();
      Trace.recorder_install ~capacity:32 ();
      let server =
        Serve.create ~config:(serve_config ~workers:1 ~max_batch:2 ()) [ mlp_model ]
      in
      let ok = ref true in
      let fail_if c = if c then ok := false in
      Fun.protect
        ~finally:(fun () ->
          Serve.shutdown server;
          if Trace.installed () then ignore (Trace.uninstall ());
          if Trace.recorder_installed () then
            ignore (Trace.recorder_uninstall ()))
        (fun () ->
          Fault.with_faults
            [ Fault.plan site ~mode ~seed ~fuel:2 ]
            (fun () ->
              let burst = submit_burst server ~what:"span-chain" ~seed 4 in
              Serve.drain server;
              List.iter (fun (t, _) -> ignore (Serve.await server t)) burst);
          (* ring overflow under chaos never yields invalid JSON *)
          let rec_records = Trace.recorder_records () in
          (match
             Astitch_obs.Json_check.parse
               (Astitch_obs.Chrome_trace.to_string rec_records)
           with
          | Ok _ -> ()
          | Error _ -> ok := false);
          let fl =
            List.filter_map
              (function Trace.Flow f -> Some f | _ -> None)
              (Trace.records ())
          in
          let dir d =
            List.filter (fun (f : Trace.flow) -> f.Trace.fdir = d) fl
          in
          let starts = dir Trace.Flow_start and ends = dir Trace.Flow_end in
          fail_if (List.length starts <> 4);
          fail_if (List.length ends <> List.length starts);
          (* every step/end arrow resolves to exactly one start of its
             id and never precedes it (no orphan flow events) *)
          List.iter
            (fun (f : Trace.flow) ->
              match
                List.filter
                  (fun (s : Trace.flow) -> s.Trace.fid = f.Trace.fid)
                  starts
              with
              | [ s ] -> fail_if (f.Trace.fts_ns < s.Trace.fts_ns)
              | _ -> ok := false)
            (dir Trace.Flow_step @ ends);
          (* first-wins completion: one terminating arrow per chain,
             even when steal paths double-execute *)
          let end_ids = List.map (fun (f : Trace.flow) -> f.Trace.fid) ends in
          fail_if
            (List.length (List.sort_uniq compare end_ids)
            <> List.length end_ids));
      !ok)

(* --- Suite --------------------------------------------------------------- *)

let () =
  Alcotest.run "serve"
    [
      ( "batching",
        [
          Alcotest.test_case "analyze classifies params and outputs" `Quick
            test_analyze_classifies;
          Alcotest.test_case "analyze rejects two-axis scaling" `Quick
            test_analyze_rejects_two_axis;
          Alcotest.test_case "analyze rejects weights-only builders" `Quick
            test_analyze_rejects_weights_only;
          Alcotest.test_case "concat/slice roundtrip" `Quick
            test_concat_slice_roundtrip;
          Alcotest.test_case "pack pads with the last request" `Quick
            test_pack_pads_with_last;
          Alcotest.test_case "pack rejects bad shapes" `Quick
            test_pack_rejects_bad_shape;
          Alcotest.test_case "pack/unpack exact at prime batch sizes" `Quick
            test_pack_unpack_primes;
        ] );
      ( "bit-identity",
        [
          Alcotest.test_case "mlp batched = solo (incl. padded)" `Quick
            test_bit_identity_mlp;
          QCheck_alcotest.to_alcotest prop_bit_identity_random;
          Alcotest.test_case "zoo batched builders compile and run {1,3,8}"
            `Quick test_zoo_batched_build_compile_run;
          Alcotest.test_case "zoo padded batches slice back identical" `Quick
            test_zoo_batched_bit_identity;
        ] );
      ( "symbolic-batch",
        [
          Alcotest.test_case "mlp rebind = fresh compile at 1..8" `Quick
            test_symbolic_rebind_mlp;
          Alcotest.test_case "zoo symbolic workloads rebind identically" `Quick
            test_symbolic_rebind_zoo;
          QCheck_alcotest.to_alcotest prop_symbolic_rebind_random;
          Alcotest.test_case "thread-mapping rebind geometry" `Quick
            test_thread_mapping_rebind;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "dispatch decisions" `Quick test_batcher_decisions;
        ] );
      ( "server",
        [
          Alcotest.test_case "end-to-end: all served bit-identical" `Quick
            test_serve_end_to_end;
          Alcotest.test_case "deterministic across servers" `Quick
            test_serve_weights_match_spec;
          Alcotest.test_case "caller-runs mode (workers = 0)" `Quick
            test_caller_runs_mode;
          Alcotest.test_case "continuous batching: exact odd-size batches"
            `Quick test_continuous_exact_batches;
          Alcotest.test_case "full batch wakes the worker immediately" `Quick
            test_full_batch_dispatches_immediately;
          Alcotest.test_case "admission control refuses past the bound" `Quick
            test_admission_control;
          Alcotest.test_case "deadline shedding" `Quick test_deadline_shedding;
          Alcotest.test_case "poisoned request fails alone" `Quick
            test_poisoned_request_fails_alone;
          Alcotest.test_case "unknown model rejected" `Quick
            test_unknown_model_rejected;
        ] );
      ( "plan-cache-domains",
        [ QCheck_alcotest.to_alcotest prop_plan_cache_domain_hammer ] );
      ( "chaos",
        [
          Alcotest.test_case "sweep: every runtime site x 50 seeds x mode"
            `Slow test_chaos_sweep;
          Alcotest.test_case "persistent fault: fallback keeps serving" `Quick
            test_chaos_persistent_fault_liveness;
          Alcotest.test_case "breaker opens, half-opens, closes" `Quick
            test_chaos_breaker_opens_and_closes;
          Alcotest.test_case "dead worker restarts, batch recovered" `Quick
            test_chaos_worker_restart;
          Alcotest.test_case "wedged worker's batch stolen" `Quick
            test_chaos_wedged_worker;
          Alcotest.test_case "corrupt batch quarantined, retried clean" `Quick
            test_chaos_corrupt_quarantines_and_retries;
          Alcotest.test_case "shutdown prompt under an open window" `Quick
            test_shutdown_prompt_under_open_window;
          Alcotest.test_case "plan cache invalidation" `Quick
            test_plan_cache_remove;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "phase decomposition reconciles" `Quick
            test_phase_decomposition_reconciles;
          QCheck_alcotest.to_alcotest prop_span_chain_under_chaos;
        ] );
    ]
