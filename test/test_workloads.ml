(* Workload generators: graphs validate, have the structure the paper
   describes, and their tiny variants execute correctly under every
   backend. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan
open Astitch_runtime
open Astitch_workloads

let check = Alcotest.(check bool)

let backends =
  [
    Astitch_backends.Tf_backend.backend;
    Astitch_backends.Xla_backend.backend;
    Astitch_backends.Tvm_backend.backend;
    Astitch_core.Astitch.full_backend;
  ]

let exec_tiny name g =
  Graph.validate g;
  let params = Session.random_params g in
  List.iter
    (fun (b : Backend_intf.t) ->
      match Session.run b Arch.v100 g ~params with
      | _ -> ()
      | exception e ->
          Alcotest.failf "%s tiny on %s: %s" name b.name (Printexc.to_string e))
    backends

let test_tiny_execution () =
  List.iter (fun (e : Zoo.entry) -> exec_tiny e.name (e.tiny ())) Zoo.all

let test_tiny_training_execution () =
  exec_tiny "bert-train" (Bert.tiny_training ());
  exec_tiny "dien-train" (Dien.tiny_training ())

let test_full_graphs_validate () =
  List.iter
    (fun (e : Zoo.entry) ->
      let g = e.inference () in
      Graph.validate g;
      let st = Graph.stats g in
      check (e.name ^ " mostly memory-intensive") true
        (st.memory_intensive_ops > st.compute_intensive_ops))
    Zoo.all

let test_transformer_reduce_heavy () =
  let g = Transformer.inference () in
  let st = Graph.stats g in
  (* the paper: reduces are ~10% of Transformer's ops *)
  let frac = float_of_int st.reduce_ops /. float_of_int st.total_ops in
  check "reduce fraction > 4%" true (frac > 0.04)

let test_dien_irregular_shape () =
  let g = Dien.inference () in
  let has_pool_reduce =
    Graph.fold_nodes
      (fun acc nd ->
        acc
        || (Op.is_reduce nd.op
           && Pattern.reduce_geometry g nd.id = (750_000, 32)))
      false g
  in
  check "contains <750000,32> reduce" true has_pool_reduce

let test_transformer_vocab_softmax () =
  let g = Transformer.inference () in
  let has_vocab_reduce =
    Graph.fold_nodes
      (fun acc nd ->
        acc
        || (Op.is_reduce nd.op
           && snd (Pattern.reduce_geometry g nd.id) = 30_000))
      false g
  in
  check "contains <*,30000> reduce" true has_vocab_reduce

let test_training_graphs_bigger () =
  let infer = Graph.num_nodes (Bert.inference ~config:Bert.tiny_config ()) in
  let train = Graph.num_nodes (Bert.training ~config:Bert.tiny_config ()) in
  check "training adds backward graph" true (train > 2 * infer)

let test_synthetic_deterministic () =
  let g1 = Synthetic.random_graph ~seed:5 ~nodes:60 () in
  let g2 = Synthetic.random_graph ~seed:5 ~nodes:60 () in
  Alcotest.(check int) "same size" (Graph.num_nodes g1) (Graph.num_nodes g2);
  let g3 = Synthetic.random_graph ~seed:6 ~nodes:60 () in
  Graph.validate g1;
  Graph.validate g3;
  check "at least requested nodes" true (Graph.num_nodes g1 >= 60)

let test_synthetic_scales () =
  let g = Synthetic.random_graph ~seed:1 ~nodes:2000 () in
  Graph.validate g;
  check "big" true (Graph.num_nodes g >= 2000)

(* --- Registry and configs ---------------------------------------------------- *)

let test_zoo_registry () =
  Alcotest.(check int) "five models" 5 (List.length Zoo.all);
  check "find case-insensitive" true (Zoo.find "bert" <> None);
  check "find exact" true (Zoo.find "Transformer" <> None);
  check "unknown" true (Zoo.find "resnet" = None);
  (* Table 2 batch sizes *)
  let batch name =
    let e = Option.get (Zoo.find name) in
    (e.infer_batch, e.train_batch)
  in
  check "crnn" true (batch "CRNN" = (1, None));
  check "asr" true (batch "ASR" = (1, None));
  check "bert" true (batch "BERT" = (200, Some 12));
  check "transformer" true (batch "Transformer" = (1, Some 4096));
  check "dien" true (batch "DIEN" = (256, Some 256))

let test_gradients_per_parameter () =
  (* a training graph outputs the loss plus one gradient per parameter *)
  let g = Bert.training ~config:Bert.tiny_config () in
  let fwd_params =
    (* parameters of the forward part only: count from the inference graph *)
    List.length (Graph.parameters (Bert.inference ~config:Bert.tiny_config ()))
  in
  Alcotest.(check int) "loss + grads" (1 + fwd_params)
    (List.length (Graph.outputs g))

let test_crnn_contains_norm_reduces () =
  (* the instance-norm column reduces XLA materializes around *)
  let g = Crnn.inference () in
  let column_reduces =
    Graph.fold_nodes
      (fun acc nd ->
        if
          Op.is_reduce nd.op
          && Pattern.reduce_layout g nd.id = Pattern.Column_reduce
        then acc + 1
        else acc)
      0 g
  in
  check "has column reduces" true (column_reduces >= 4)

let test_asr_has_convs_and_encoder () =
  let g = Asr.inference () in
  let convs =
    Graph.fold_nodes
      (fun acc nd -> match nd.op with Op.Conv2d _ -> acc + 1 | _ -> acc)
      0 g
  in
  Alcotest.(check int) "two conv layers" 2 convs;
  let st = Graph.stats g in
  check "attention reduces present" true (st.reduce_ops > 10)

let test_blocks_gru_shapes () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4; 8 ] in
  let h = Builder.parameter b "h" [ 4; 16 ] in
  let h' = Blocks.gru_cell b ~name:"cell" ~x ~h ~batch:4 ~hidden:16 in
  Alcotest.(check string) "state shape" "<4,16>"
    (Shape.to_string (Builder.shape_of b h'));
  (* gru gates: 3 gates x (2 matmuls) = 6 dots *)
  let g = Builder.finish b ~outputs:[ h' ] in
  let dots =
    Graph.fold_nodes
      (fun acc nd -> match nd.op with Op.Dot _ -> acc + 1 | _ -> acc)
      0 g
  in
  Alcotest.(check int) "six gate matmuls" 6 dots

let test_blocks_attention_shapes () =
  let b = Builder.create () in
  let q = Builder.parameter b "q" [ 6; 10; 16 ] in
  let k = Builder.parameter b "k" [ 6; 10; 16 ] in
  let v = Builder.parameter b "v" [ 6; 10; 16 ] in
  let out = Blocks.attention b ~q ~k ~v ~mask:None ~scale:0.25 in
  Alcotest.(check string) "context shape" "<6,10,16>"
    (Shape.to_string (Builder.shape_of b out))

let test_dtype_uniform_f32 () =
  List.iter
    (fun (e : Zoo.entry) ->
      let g = e.tiny () in
      Graph.iter_nodes
        (fun nd ->
          match nd.dtype with
          | Astitch_ir.Dtype.F32 | Astitch_ir.Dtype.Pred -> ()
          | other ->
              Alcotest.failf "%s: unexpected dtype %s" e.name
                (Astitch_ir.Dtype.to_string other))
        g)
    Zoo.all

let () =
  Alcotest.run "workloads"
    [
      ( "execution",
        [
          Alcotest.test_case "tiny inference" `Slow test_tiny_execution;
          Alcotest.test_case "tiny training" `Slow test_tiny_training_execution;
        ] );
      ( "structure",
        [
          Alcotest.test_case "full graphs validate" `Quick test_full_graphs_validate;
          Alcotest.test_case "transformer reduces" `Quick test_transformer_reduce_heavy;
          Alcotest.test_case "dien irregular" `Quick test_dien_irregular_shape;
          Alcotest.test_case "transformer vocab" `Quick test_transformer_vocab_softmax;
          Alcotest.test_case "training bigger" `Quick test_training_graphs_bigger;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "scales" `Quick test_synthetic_scales;
        ] );
      ( "registry",
        [
          Alcotest.test_case "zoo" `Quick test_zoo_registry;
          Alcotest.test_case "grads per param" `Quick test_gradients_per_parameter;
          Alcotest.test_case "crnn norms" `Quick test_crnn_contains_norm_reduces;
          Alcotest.test_case "asr structure" `Quick test_asr_has_convs_and_encoder;
          Alcotest.test_case "gru shapes" `Quick test_blocks_gru_shapes;
          Alcotest.test_case "attention shapes" `Quick test_blocks_attention_shapes;
          Alcotest.test_case "dtypes" `Quick test_dtype_uniform_f32;
        ] );
    ]
