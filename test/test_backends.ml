(* Baseline backends: fusion decisions must match the paper's description
   of XLA / TVM / TensorRT / TensorFlow behaviour. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan
open Astitch_backends

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* softmax over <4,8>: reduce-max, sub, exp, reduce-sum, div *)
let softmax_graph () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4; 8 ] in
  let s = Builder.softmax b x in
  Builder.finish b ~outputs:[ s ]

let fig5_graph () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 2 ] in
  let e = Builder.parameter b "e" [ 2 ] in
  let p = Builder.pow b x e in
  let bc = Builder.broadcast b p ~dims:[ 0 ] [ 2; 128 ] in
  let other = Builder.parameter b "other" [ 2; 128 ] in
  let a = Builder.add b bc other in
  (Builder.finish b ~outputs:[ a ], p)

let mem_kernels plan = List.length (Kernel_plan.memory_intensive_kernels plan)

let test_tf_one_kernel_per_op () =
  let g = softmax_graph () in
  let plan = Tf_backend.compile Arch.v100 g in
  Kernel_plan.check plan;
  (* every non-leaf memory-intensive op is its own kernel *)
  let expected =
    List.length
      (List.filter
         (fun id -> not (Kernel_plan.is_leaf g id))
         (Graph.memory_intensive_ids g))
  in
  check_int "kernel per op" expected (mem_kernels plan);
  check "all recompute 1" true
    (List.for_all
       (fun (k : Kernel_plan.kernel) ->
         List.for_all (fun (o : Kernel_plan.compiled_op) -> o.recompute = 1) k.ops)
       plan.kernels)

let test_xla_cuts_patterns () =
  let g = softmax_graph () in
  let plan = Xla_backend.compile Arch.v100 g in
  Kernel_plan.check plan;
  (* XLA cuts after both reduces: 3 kernels
     (max+producers | sub,exp,sum via...) - at minimum more than 1 and
     fewer than TF's per-op count *)
  let tf = mem_kernels (Tf_backend.compile Arch.v100 g) in
  let xla = mem_kernels plan in
  check "fuses something" true (xla < tf);
  check "cuts at reduces" true (xla >= 3)

let test_xla_cuts_pattern2 () =
  let g, p = fig5_graph () in
  let plan = Xla_backend.compile Arch.v100 g in
  Kernel_plan.check plan;
  (* pow feeds a broadcast: XLA refuses to fuse them -> pow's kernel ends
     at pow, no recompute *)
  let pow_op =
    List.find_map (fun k -> Kernel_plan.find_op k p) plan.kernels
    |> Option.get
  in
  check_int "xla pow recompute" 1 pow_op.recompute;
  check "pow materialized" true (pow_op.placement = Kernel_plan.Device_mem);
  check_int "two mem kernels" 2 (mem_kernels plan)

let test_tvm_fuses_pattern2_with_recompute () =
  let g, p = fig5_graph () in
  let plan = Tvm_backend.compile Arch.v100 g in
  Kernel_plan.check plan;
  let pow_op =
    List.find_map (fun k -> Kernel_plan.find_op k p) plan.kernels
    |> Option.get
  in
  (* Figure 5: power recomputed once per broadcast replica *)
  check_int "tvm pow recompute" 128 pow_op.recompute;
  check "pow stays in registers" true (pow_op.placement = Kernel_plan.Register);
  check_int "one mem kernel" 1 (mem_kernels plan)

let test_tvm_still_cuts_reduces () =
  let g = softmax_graph () in
  let plan = Tvm_backend.compile Arch.v100 g in
  Kernel_plan.check plan;
  check "multiple kernels (reduce cuts)" true (mem_kernels plan >= 3)

let test_trt_more_kernels_than_xla () =
  let g = softmax_graph () in
  let xla = mem_kernels (Xla_backend.compile Arch.v100 g) in
  let trt = mem_kernels (Trt_backend.compile Arch.v100 g) in
  check "trt >= xla kernels" true (trt >= xla)

let test_naive_mapping_fig6 () =
  (* Fig 6(a): <750000,32> row-reduce -> block 32, grid 750000 *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 750_000; 32 ] in
  let r = Builder.reduce_sum b ~axes:[ 1 ] x in
  let g = Builder.finish b ~outputs:[ r ] in
  (match Fusion_common.naive_mapping Arch.v100 g r with
  | Thread_mapping.Row_reduce m ->
      check_int "block 32" 32 (m.threads_per_row * m.rows_per_block);
      check_int "grid 750000" 750_000
        (Thread_mapping.grid (Thread_mapping.Row_reduce m))
  | _ -> Alcotest.fail "expected row-reduce mapping");
  (* Fig 6(b): <64,30000> -> block 1024, grid 64 *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 64; 30_000 ] in
  let r = Builder.reduce_sum b ~axes:[ 1 ] x in
  let g = Builder.finish b ~outputs:[ r ] in
  match Fusion_common.naive_mapping Arch.v100 g r with
  | Thread_mapping.Row_reduce m ->
      check_int "block 1024" 1024 m.threads_per_row;
      check_int "grid 64" 64 (Thread_mapping.grid (Thread_mapping.Row_reduce m))
  | _ -> Alcotest.fail "expected row-reduce mapping"

let test_ansor_packs_rows () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 1000; 32 ] in
  let r = Builder.reduce_sum b ~axes:[ 1 ] x in
  let g = Builder.finish b ~outputs:[ r ] in
  match Fusion_common.tuned_mapping Arch.v100 g r with
  | Thread_mapping.Row_reduce m ->
      check_int "packs 32 rows" 32 m.rows_per_block;
      check_int "full block" 1024 (m.threads_per_row * m.rows_per_block)
  | _ -> Alcotest.fail "expected row-reduce mapping"

let test_layout_ops_become_copies () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4; 4 ] in
  let w = Builder.parameter b "w" [ 4; 4 ] in
  let d = Builder.dot b x w in
  let rs = Builder.reshape b d [ 16 ] in
  let g = Builder.finish b ~outputs:[ rs ] in
  let plan = Xla_backend.compile Arch.v100 g in
  check_int "one copy kernel" 1 (List.length (Kernel_plan.copy_kernels plan));
  check "counted as CPY" true (Kernel_plan.cpy_count plan >= 2)
  (* reshape copy + output memcpy *)

(* --- More behaviour coverage ---------------------------------------------- *)

let test_cuda_graph_same_plan_cheaper_launches () =
  let g = softmax_graph () in
  let xla = Xla_backend.compile Arch.v100 g in
  let cg = Cuda_graph_backend.compile Arch.v100 g in
  (* identical kernels, cheaper dispatch *)
  Alcotest.(check int) "same kernel count" (List.length xla.kernels)
    (List.length cg.kernels);
  let time (b : Backend_intf.t) =
    (Astitch_runtime.Profile.profile ~config:b.cost_config xla)
      .Astitch_runtime.Profile.total_time_us
  in
  check "graph launch cheaper" true
    (time Cuda_graph_backend.backend < time Xla_backend.backend)

let test_ansor_fuses_like_tvm () =
  let g, _ = fig5_graph () in
  let tvm = Tvm_backend.compile Arch.v100 g in
  let ansor = Tvm_backend.compile_ansor Arch.v100 g in
  Alcotest.(check int) "same fusion decisions" (mem_kernels tvm) (mem_kernels ansor)

let test_multi_consumer_producer_materialized_once () =
  (* A feeding B and C (paper Fig 4's operator-level one-to-many): the
     producer is materialized exactly once whatever backend runs *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 8; 8 ] in
  let a = Builder.tanh b x in
  let o1 = Builder.reduce_sum b ~axes:[ 1 ] a in
  let o2 = Builder.reduce_max b ~axes:[ 0 ] a in
  let g = Builder.finish b ~outputs:[ o1; o2 ] in
  List.iter
    (fun (backend : Backend_intf.t) ->
      let plan = backend.compile Arch.v100 g in
      Kernel_plan.check plan;
      let device_count =
        List.fold_left
          (fun acc (k : Kernel_plan.kernel) ->
            acc
            + List.length
                (List.filter
                   (fun (o : Kernel_plan.compiled_op) ->
                     o.id = a && o.placement = Kernel_plan.Device_mem)
                   k.ops))
          0 plan.kernels
      in
      check (backend.name ^ " materializes once") true (device_count <= 1))
    [ Tf_backend.backend; Xla_backend.backend; Tvm_backend.backend;
      Astitch_core.Astitch.full_backend ]

let test_column_reduce_mapping () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 64; 128 ] in
  let r = Builder.reduce_sum b ~axes:[ 0 ] x in
  let g = Builder.finish b ~outputs:[ r ] in
  (match Fusion_common.naive_mapping Arch.v100 g r with
  | Thread_mapping.Column_reduce m ->
      Alcotest.(check int) "block" 256 m.block;
      check "atomics" true
        (Thread_mapping.uses_atomics (Thread_mapping.Column_reduce m))
  | _ -> Alcotest.fail "expected column reduce");
  (* plans with column reduces count a memset for the accumulator *)
  let plan = Xla_backend.compile Arch.v100 g in
  check "memset counted" true (plan.memsets >= 1)

let test_backend_cost_configs () =
  let open Astitch_simt.Cost_model in
  check "tf pays per-op scheduling" true
    (Tf_backend.cost_config.framework_op_overhead_us
    > Xla_backend.cost_config.framework_op_overhead_us);
  check "cuda graph cheapest dispatch" true
    (Cuda_graph_backend.cost_config.kernel_launch_overhead_us
    < default_config.kernel_launch_overhead_us)

let test_library_kernels_for_compute_ops () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 8; 8 ] in
  let w = Builder.parameter b "w" [ 8; 8 ] in
  let d1 = Builder.dot b x w in
  let d2 = Builder.dot b d1 w in
  let out = Builder.tanh b d2 in
  let g = Builder.finish b ~outputs:[ out ] in
  List.iter
    (fun (backend : Backend_intf.t) ->
      let plan = backend.compile Arch.v100 g in
      Alcotest.(check int)
        (backend.name ^ " library kernels")
        2
        (List.length (Kernel_plan.compute_intensive_kernels plan)))
    [ Tf_backend.backend; Xla_backend.backend; Astitch_core.Astitch.full_backend ]

let () =
  Alcotest.run "backends"
    [
      ( "tf",
        [ Alcotest.test_case "kernel per op" `Quick test_tf_one_kernel_per_op ] );
      ( "xla",
        [
          Alcotest.test_case "cuts patterns" `Quick test_xla_cuts_patterns;
          Alcotest.test_case "cuts pattern2" `Quick test_xla_cuts_pattern2;
          Alcotest.test_case "naive mapping fig6" `Quick test_naive_mapping_fig6;
          Alcotest.test_case "layout copies" `Quick test_layout_ops_become_copies;
        ] );
      ( "tvm",
        [
          Alcotest.test_case "fuses pattern2" `Quick
            test_tvm_fuses_pattern2_with_recompute;
          Alcotest.test_case "cuts reduces" `Quick test_tvm_still_cuts_reduces;
          Alcotest.test_case "ansor packs" `Quick test_ansor_packs_rows;
        ] );
      ( "trt",
        [ Alcotest.test_case "more kernels" `Quick test_trt_more_kernels_than_xla ] );
      ( "behaviour",
        [
          Alcotest.test_case "cuda graph" `Quick test_cuda_graph_same_plan_cheaper_launches;
          Alcotest.test_case "ansor = tvm fusion" `Quick test_ansor_fuses_like_tvm;
          Alcotest.test_case "materialize once" `Quick
            test_multi_consumer_producer_materialized_once;
          Alcotest.test_case "column reduce" `Quick test_column_reduce_mapping;
          Alcotest.test_case "cost configs" `Quick test_backend_cost_configs;
          Alcotest.test_case "library kernels" `Quick test_library_kernels_for_compute_ops;
        ] );
    ]
