(* Pseudo-CUDA emission: parameters, buffer declarations, scheme
   annotations, barriers. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan

let check = Alcotest.(check bool)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let fig7_graph () =
  let b = Builder.create () in
  let p1 = Builder.parameter b "p1" [ 8; 16 ] in
  let p2 = Builder.parameter b "p2" [ 8; 16 ] in
  let add1 = Builder.add b p1 p2 in
  let reduce1 = Builder.reduce_sum b ~axes:[ 1 ] add1 in
  let bc1 = Builder.broadcast b reduce1 ~dims:[ 0 ] [ 8; 16 ] in
  let div1 = Builder.div b p2 bc1 in
  let out = Builder.mul b div1 add1 in
  Builder.finish b ~outputs:[ out ]

let stitch_plan () =
  Astitch_core.Astitch.compile Arch.v100 (fig7_graph ())

let test_kernel_params () =
  let plan = stitch_plan () in
  let k = List.hd (Kernel_plan.memory_intensive_kernels plan) in
  let inputs, outputs = Astitch_core.Codegen.kernel_params plan.graph k in
  Alcotest.(check (list int)) "inputs are the parameters" [ 0; 1 ] inputs;
  check "one output" true (List.length outputs = 1)

let test_emit_mentions_everything () =
  let plan = stitch_plan () in
  let text = Astitch_core.Codegen.emit_plan plan in
  check "global decl" true (contains text "__global__ void stitch_op_0");
  check "names parameters" true (contains text "const float* p1");
  check "writes output" true (contains text "out_v");
  check "schemes annotated" true
    (contains text "local" || contains text "regional" || contains text "global");
  check "launch comment" true (contains text "// launch: <<<")

let test_emit_shared_decl () =
  (* the buffered reduce shows up as a __shared__ or scratch declaration *)
  let plan = stitch_plan () in
  let text = Astitch_core.Codegen.emit_plan plan in
  check "on-chip buffer declared" true
    (contains text "__shared__ float smem_v" || contains text "float* gmem_v")

let test_emit_recompute_annotation () =
  (* TVM's pattern-2 fusion shows the x128 recompute in the rendering *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 2 ] in
  let e = Builder.parameter b "e" [ 2 ] in
  let p = Builder.pow b x e in
  let bc = Builder.broadcast b p ~dims:[ 0 ] [ 2; 128 ] in
  let other = Builder.parameter b "other" [ 2; 128 ] in
  let a = Builder.add b bc other in
  let g = Builder.finish b ~outputs:[ a ] in
  let plan = Astitch_backends.Tvm_backend.compile Arch.v100 g in
  let text = Astitch_core.Codegen.emit_plan plan in
  check "recompute annotated" true (contains text "recompute x128")

let test_emit_library_and_copy () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4; 4 ] in
  let w = Builder.parameter b "w" [ 4; 4 ] in
  let d = Builder.dot b x w in
  let rs = Builder.reshape b d [ 16 ] in
  let g = Builder.finish b ~outputs:[ rs ] in
  let plan = Astitch_backends.Xla_backend.compile Arch.v100 g in
  let text = Astitch_core.Codegen.emit_plan plan in
  check "library call" true (contains text "vendor library call");
  check "memcpy" true (contains text "cudaMemcpyDeviceToDevice")

let test_barrier_rendering () =
  (* a stitch kernel with a global-scheme boundary renders a barrier *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 64; 30000 ] in
  let r = Builder.reduce_sum b ~axes:[ 1 ] x in
  let s = Builder.sigmoid b r in
  let g = Builder.finish b ~outputs:[ s ] in
  let plan = Astitch_core.Astitch.compile Arch.v100 g in
  let k = List.hd (Kernel_plan.memory_intensive_kernels plan) in
  if k.barriers > 0 then begin
    let text = Astitch_core.Codegen.emit_kernel plan.graph k in
    check "barrier rendered" true (contains text "__sync_or_global_barrier")
  end

let () =
  Alcotest.run "codegen"
    [
      ( "emit",
        [
          Alcotest.test_case "kernel params" `Quick test_kernel_params;
          Alcotest.test_case "mentions everything" `Quick test_emit_mentions_everything;
          Alcotest.test_case "shared decl" `Quick test_emit_shared_decl;
          Alcotest.test_case "recompute annotation" `Quick test_emit_recompute_annotation;
          Alcotest.test_case "library+copy" `Quick test_emit_library_and_copy;
          Alcotest.test_case "barrier" `Quick test_barrier_rendering;
        ] );
    ]
