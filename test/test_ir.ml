(* Unit tests for the IR: shapes, builder inference, graph validation,
   pattern analysis, autodiff vs finite differences. *)

open Astitch_ir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_raises_any name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected an exception" name
  | exception _ -> ()

(* --- Shape -------------------------------------------------------------- *)

let test_shape_basics () =
  let s = Shape.of_list [ 2; 3; 4 ] in
  check_int "rank" 3 (Shape.rank s);
  check_int "elements" 24 (Shape.num_elements s);
  Alcotest.(check (list int)) "strides" [ 12; 4; 1 ] (Array.to_list (Shape.strides s));
  check_int "linear" 23 (Shape.linear_index s [| 1; 2; 3 |]);
  Alcotest.(check (list int)) "multi" [ 1; 2; 3 ]
    (Array.to_list (Shape.multi_index s 23));
  check "equal" true (Shape.equal s (Shape.of_list [ 2; 3; 4 ]));
  check "not equal" false (Shape.equal s (Shape.of_list [ 2; 3 ]))

let test_shape_axes () =
  let s = Shape.of_list [ 2; 3; 4 ] in
  Alcotest.(check (list int)) "remove middle" [ 2; 4 ]
    (Array.to_list (Shape.remove_axes s [| 1 |]));
  check_int "along" 12 (Shape.elements_along s [| 1; 2 |]);
  check "suffix yes" true (Shape.axes_are_suffix s [| 2 |]);
  check "suffix yes 2" true (Shape.axes_are_suffix s [| 1; 2 |]);
  check "suffix no" false (Shape.axes_are_suffix s [| 0 |]);
  check "suffix no 2" false (Shape.axes_are_suffix s [| 0; 2 |])

let test_shape_invalid () =
  check_raises_any "zero dim" (fun () -> Shape.of_list [ 2; 0 ]);
  check_raises_any "negative dim" (fun () -> Shape.of_list [ -1 ]);
  check_raises_any "oob index" (fun () ->
      Shape.linear_index (Shape.of_list [ 2 ]) [| 5 |])

(* --- Builder / shape inference ------------------------------------------ *)

let test_builder_elementwise () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 2; 3 ] in
  let y = Builder.parameter b "y" [ 2; 3 ] in
  let z = Builder.add b x y in
  Alcotest.(check string) "shape" "<2,3>" (Shape.to_string (Builder.shape_of b z));
  let p = Builder.lt b x y in
  check "pred dtype" true (Dtype.equal (Builder.dtype_of b p) Dtype.Pred)

let test_builder_mismatch () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 2; 3 ] in
  let y = Builder.parameter b "y" [ 3; 2 ] in
  check_raises_any "binary shape mismatch" (fun () -> Builder.add b x y)

let test_builder_broadcast () =
  let b = Builder.create () in
  let v = Builder.parameter b "v" [ 4 ] in
  let m = Builder.broadcast b v ~dims:[ 1 ] [ 3; 4 ] in
  Alcotest.(check string) "bshape" "<3,4>" (Shape.to_string (Builder.shape_of b m));
  check_raises_any "wrong dims" (fun () ->
      Builder.broadcast b v ~dims:[ 0 ] [ 3; 4 ]);
  check_raises_any "decreasing dims" (fun () ->
      let u = Builder.parameter b "u" [ 3; 4 ] in
      Builder.broadcast b u ~dims:[ 1; 0 ] [ 4; 3 ])

let test_builder_reduce_dot () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 2; 5 ] in
  let r = Builder.reduce_sum b ~axes:[ 1 ] x in
  Alcotest.(check string) "reduced" "<2>" (Shape.to_string (Builder.shape_of b r));
  let w = Builder.parameter b "w" [ 5; 7 ] in
  let d = Builder.dot b x w in
  Alcotest.(check string) "dot" "<2,7>" (Shape.to_string (Builder.shape_of b d));
  check_raises_any "dot mismatch" (fun () -> Builder.dot b x x);
  check_raises_any "dup axes" (fun () -> Builder.reduce_sum b ~axes:[ 1; 1 ] x)

let test_graph_validate () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 2; 2 ] in
  let y = Builder.tanh b x in
  let g = Builder.finish b ~outputs:[ y ] in
  Graph.validate g;
  check_int "nodes" 2 (Graph.num_nodes g);
  Alcotest.(check (list int)) "consumers of x" [ 1 ] (Graph.consumers g x);
  check "x memory intensive" true
    (Op.classify (Graph.op g x) = Op.Memory_intensive)

let test_graph_stats () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 2; 4 ] in
  let s = Builder.softmax b x in
  let w = Builder.parameter b "w" [ 4; 4 ] in
  let d = Builder.dot b s w in
  let g = Builder.finish b ~outputs:[ d ] in
  let st = Graph.stats g in
  check_int "compute intensive" 1 st.compute_intensive_ops;
  check_int "reduces" 2 st.reduce_ops;
  check_int "broadcasts" 2 st.broadcast_ops;
  check "total" true (st.total_ops = Graph.num_nodes g)

(* --- Pattern analysis ---------------------------------------------------- *)

let fig5_graph () =
  (* power<2> - broadcast<2,128> - add<2,128>: the TVM redundancy example *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 2 ] in
  let e = Builder.parameter b "e" [ 2 ] in
  let p = Builder.pow b x e in
  let bc = Builder.broadcast b p ~dims:[ 0 ] [ 2; 128 ] in
  let other = Builder.parameter b "other" [ 2; 128 ] in
  let a = Builder.add b bc other in
  (Builder.finish b ~outputs:[ a ], p, bc, a)

let test_edge_deps () =
  let g, p, bc, a = fig5_graph () in
  check "pow->bc one-to-many" true
    (Pattern.edge_dep g ~producer:p ~consumer:bc = Pattern.One_to_many);
  check "bc->add one-to-one" true
    (Pattern.edge_dep g ~producer:bc ~consumer:a = Pattern.One_to_one);
  check_int "fanout" 128 (Pattern.fanout g ~producer:p ~consumer:bc);
  check "pattern2" true (Pattern.is_pattern2_edge g ~producer:p ~consumer:bc);
  check "dominant candidate" true (Pattern.is_dominant_candidate g p)

let test_reduce_patterns () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 6; 8 ] in
  let row = Builder.reduce_sum b ~axes:[ 1 ] x in
  let col = Builder.reduce_sum b ~axes:[ 0 ] x in
  let y = Builder.add b row (Builder.reduce_max b ~axes:[ 1 ] x) in
  let g = Builder.finish b ~outputs:[ y; col ] in
  check "row layout" true (Pattern.reduce_layout g row = Pattern.Row_reduce);
  check "col layout" true (Pattern.reduce_layout g col = Pattern.Column_reduce);
  Alcotest.(check (pair int int)) "row geometry" (6, 8) (Pattern.reduce_geometry g row);
  Alcotest.(check (pair int int)) "col geometry" (8, 6) (Pattern.reduce_geometry g col);
  check "pattern1" true (Pattern.is_pattern1_edge g ~producer:row ~consumer:y);
  check "reduce is candidate" true (Pattern.is_dominant_candidate g row)

(* --- Autodiff ------------------------------------------------------------ *)

open Astitch_tensor

(* Finite-difference check of d(sum(f(x)))/dx for a builder function. *)
let finite_diff_check ?(eps = 1e-4) ?(tol = 2e-2) name build dims =
  let make () =
    let b = Builder.create () in
    let x = Builder.parameter b "x" dims in
    let y = build b x in
    (b, x, y)
  in
  let b, x, y = make () in
  let grads = Autodiff.gradients b ~output:y ~wrt:[ x ] in
  let gx = match grads with [ g ] -> g | _ -> assert false in
  let g = Builder.finish b ~outputs:[ y; gx ] in
  let x0 = Tensor.random ~seed:7 (Shape.of_list dims) in
  (* keep values in a numerically friendly band *)
  let x0 = Tensor.map (fun v -> (0.4 *. v) +. 1.2) x0 in
  let outputs = Interp.run g ~params:[ ("x", x0) ] in
  let grad = match outputs with [ _; gt ] -> gt | _ -> assert false in
  let loss_at xt =
    let outs = Interp.run g ~params:[ ("x", xt) ] in
    match outs with
    | yv :: _ -> Array.fold_left ( +. ) 0. (Tensor.data yv)
    | [] -> assert false
  in
  let n = Tensor.num_elements x0 in
  for i = 0 to Stdlib.min (n - 1) 7 do
    let bump delta =
      let d = Tensor.create (Tensor.shape x0) (Array.copy (Tensor.data x0)) in
      Tensor.set_linear d i (Tensor.get_linear d i +. delta);
      d
    in
    let numeric = (loss_at (bump eps) -. loss_at (bump (-.eps))) /. (2. *. eps) in
    let analytic = Tensor.get_linear grad i in
    let scale = Float.max 1. (Float.abs numeric) in
    if Float.abs (numeric -. analytic) > tol *. scale then
      Alcotest.failf "%s grad[%d]: analytic %g vs numeric %g" name i analytic
        numeric
  done

let test_autodiff_elementwise () =
  finite_diff_check "tanh" (fun b x -> Builder.reduce_sum b ~axes:[ 0; 1 ] (Builder.tanh b x)) [ 2; 3 ];
  finite_diff_check "sigmoid*x"
    (fun b x ->
      Builder.reduce_sum b ~axes:[ 0; 1 ] (Builder.mul b x (Builder.sigmoid b x)))
    [ 2; 3 ];
  finite_diff_check "exp-log"
    (fun b x ->
      Builder.reduce_sum b ~axes:[ 0; 1 ] (Builder.log b (Builder.exp b x)))
    [ 2; 2 ]

let test_autodiff_softmax () =
  finite_diff_check "softmax"
    (fun b x ->
      let s = Builder.softmax b x in
      Builder.reduce_sum b ~axes:[ 0; 1 ] (Builder.mul b s s))
    [ 3; 4 ]

let test_autodiff_layernorm () =
  finite_diff_check "layer_norm"
    (fun b x ->
      let gamma = Builder.constant b 1.5 ~dims:[ 4 ] in
      let beta = Builder.constant b 0.1 ~dims:[ 4 ] in
      let ln = Builder.layer_norm b x ~gamma ~beta in
      Builder.reduce_sum b ~axes:[ 0; 1 ] (Builder.mul b ln ln))
    [ 3; 4 ]

let test_autodiff_matmul () =
  finite_diff_check "dot"
    (fun b x ->
      let w = Builder.constant b 0.5 ~dims:[ 3; 2 ] in
      let y = Builder.dot b x w in
      Builder.reduce_sum b ~axes:[ 0; 1 ] (Builder.mul b y y))
    [ 2; 3 ]

let test_autodiff_broadcast_reduce () =
  finite_diff_check "broadcast+reduce"
    (fun b x ->
      let r = Builder.reduce_mean b ~axes:[ 1 ] x in
      let bc = Builder.broadcast b r ~dims:[ 0 ] [ 2; 3 ] in
      Builder.reduce_sum b ~axes:[ 0; 1 ] (Builder.mul b bc x))
    [ 2; 3 ]

(* --- Shape-inference error paths, per op ------------------------------- *)

let test_inference_errors () =
  let b () = Builder.create () in
  (* transpose *)
  check_raises_any "perm rank" (fun () ->
      let b = b () in
      Builder.transpose b (Builder.parameter b "x" [ 2; 3 ]) ~perm:[ 0 ]);
  check_raises_any "perm dup" (fun () ->
      let b = b () in
      Builder.transpose b (Builder.parameter b "x" [ 2; 3 ]) ~perm:[ 0; 0 ]);
  (* select *)
  check_raises_any "select pred dtype" (fun () ->
      let b = b () in
      let x = Builder.parameter b "x" [ 2 ] in
      Builder.select b ~pred:x ~on_true:x ~on_false:x);
  check_raises_any "select shapes" (fun () ->
      let b = b () in
      let x = Builder.parameter b "x" [ 2 ] in
      let y = Builder.parameter b "y" [ 3 ] in
      let p = Builder.gt b x x in
      Builder.select b ~pred:p ~on_true:x ~on_false:y);
  (* concat *)
  check_raises_any "concat empty" (fun () ->
      let b = b () in
      Builder.concat b ~axis:0 []);
  check_raises_any "concat dim mismatch" (fun () ->
      let b = b () in
      let x = Builder.parameter b "x" [ 2; 3 ] in
      let y = Builder.parameter b "y" [ 2; 4 ] in
      Builder.concat b ~axis:0 [ x; y ]);
  (* slice *)
  check_raises_any "slice bounds" (fun () ->
      let b = b () in
      Builder.slice b (Builder.parameter b "x" [ 4 ]) ~starts:[ 2 ] ~stops:[ 5 ]);
  check_raises_any "slice empty" (fun () ->
      let b = b () in
      Builder.slice b (Builder.parameter b "x" [ 4 ]) ~starts:[ 2 ] ~stops:[ 2 ]);
  (* pad *)
  check_raises_any "pad negative" (fun () ->
      let b = b () in
      Builder.pad b (Builder.parameter b "x" [ 4 ]) ~low:[ -1 ] ~high:[ 0 ]);
  (* reshape *)
  check_raises_any "reshape count" (fun () ->
      let b = b () in
      Builder.reshape b (Builder.parameter b "x" [ 4 ]) [ 5 ]);
  (* conv *)
  check_raises_any "conv channels" (fun () ->
      let b = b () in
      let img = Builder.parameter b "i" [ 1; 8; 8; 3 ] in
      let f = Builder.parameter b "f" [ 3; 3; 4; 8 ] in
      Builder.conv2d b ~stride:1 img f);
  check_raises_any "conv kernel too big" (fun () ->
      let b = b () in
      let img = Builder.parameter b "i" [ 1; 2; 2; 1 ] in
      let f = Builder.parameter b "f" [ 3; 3; 1; 1 ] in
      Builder.conv2d b ~stride:1 img f);
  (* iota *)
  check_raises_any "iota axis" (fun () ->
      let b = b () in
      Builder.iota b ~axis:2 [ 2; 3 ]);
  (* dot batch mismatch *)
  check_raises_any "dot batch" (fun () ->
      let b = b () in
      let x = Builder.parameter b "x" [ 2; 3; 4 ] in
      let y = Builder.parameter b "y" [ 5; 4; 3 ] in
      Builder.dot b x y)

let test_op_tables () =
  (* classification *)
  check "dot compute" true
    (Op.classify (Op.Dot { lhs = 0; rhs = 1 }) = Op.Compute_intensive);
  check "reduce memory" true
    (Op.classify (Op.Reduce { input = 0; kind = Op.Sum; axes = [| 0 |] })
    = Op.Memory_intensive);
  (* the paper's light/heavy split *)
  List.iter
    (fun k -> check "light" true (Op.unary_weight k = Op.Light))
    [ Op.Neg; Op.Abs; Op.Sign; Op.Relu; Op.Rcp ];
  List.iter
    (fun k -> check "heavy" true (Op.unary_weight k = Op.Heavy))
    [ Op.Exp; Op.Log; Op.Tanh; Op.Sigmoid; Op.Sqrt; Op.Rsqrt; Op.Erf ];
  check "pow heavy" true (Op.binary_weight Op.Pow = Op.Heavy);
  check "add light" true (Op.binary_weight Op.Add = Op.Light);
  (* transcendentals cost more instructions than arithmetic *)
  let insts k = Op.fp32_insts_per_element (Op.Unary { kind = k; input = 0 }) in
  check "tanh > exp > neg" true (insts Op.Tanh > insts Op.Exp && insts Op.Exp > insts Op.Neg);
  check "structural ops free" true
    (Op.fp32_insts_per_element (Op.Broadcast { input = 0; dims = [| 0 |] }) = 0)

let test_map_operands () =
  let op = Op.Select { pred = 1; on_true = 2; on_false = 3 } in
  let mapped = Op.map_operands (fun i -> i * 10) op in
  Alcotest.(check (list int)) "remapped" [ 10; 20; 30 ] (Op.operands mapped);
  let c = Op.Concat { inputs = [ 4; 5 ]; axis = 0 } in
  Alcotest.(check (list int)) "concat remap" [ 40; 50 ]
    (Op.operands (Op.map_operands (fun i -> i * 10) c))

let test_live_ids () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 2 ] in
  let live = Builder.tanh b x in
  let dead = Builder.sigmoid b x in
  let deader = Builder.neg b dead in
  let g = Builder.finish b ~outputs:[ live ] in
  let l = Graph.live_ids g in
  check "x live" true l.(x);
  check "tanh live" true l.(live);
  check "sigmoid dead" false l.(dead);
  check "neg dead" false l.(deader)

(* --- More autodiff rules ------------------------------------------------- *)

let test_autodiff_minmax_select () =
  finite_diff_check "max"
    (fun b x ->
      let y = Builder.constant b 1.3 ~dims:[ 2; 3 ] in
      Builder.reduce_sum b ~axes:[ 0; 1 ] (Builder.max b x y))
    [ 2; 3 ];
  finite_diff_check "select"
    (fun b x ->
      let zero = Builder.constant b 1.0 ~dims:[ 2; 3 ] in
      let p = Builder.gt b x zero in
      Builder.reduce_sum b ~axes:[ 0; 1 ]
        (Builder.select b ~pred:p ~on_true:(Builder.mul b x x) ~on_false:x))
    [ 2; 3 ]

let test_autodiff_reduce_max () =
  finite_diff_check "reduce max"
    (fun b x ->
      let m = Builder.reduce_max b ~axes:[ 1 ] x in
      Builder.reduce_sum b ~axes:[ 0 ] (Builder.mul b m m))
    [ 3; 4 ]

let test_autodiff_layout_ops () =
  finite_diff_check "transpose"
    (fun b x ->
      let t = Builder.transpose b x ~perm:[ 1; 0 ] in
      Builder.reduce_sum b ~axes:[ 0; 1 ] (Builder.mul b t t))
    [ 2; 3 ];
  finite_diff_check "slice+pad"
    (fun b x ->
      let s = Builder.slice b x ~starts:[ 0; 1 ] ~stops:[ 2; 3 ] in
      let p = Builder.pad b s ~low:[ 0; 0 ] ~high:[ 0; 1 ] in
      Builder.reduce_sum b ~axes:[ 0; 1 ] (Builder.mul b p p))
    [ 2; 3 ];
  finite_diff_check "concat"
    (fun b x ->
      let c = Builder.concat b ~axis:1 [ x; x ] in
      Builder.reduce_sum b ~axes:[ 0; 1 ] (Builder.mul b c c))
    [ 2; 3 ];
  finite_diff_check "reshape"
    (fun b x ->
      let r = Builder.reshape b x [ 6 ] in
      Builder.reduce_sum b ~axes:[ 0 ] (Builder.mul b r r))
    [ 2; 3 ]

let test_autodiff_heavy_ops () =
  finite_diff_check "erf"
    (fun b x -> Builder.reduce_sum b ~axes:[ 0; 1 ] (Builder.erf b x))
    [ 2; 2 ];
  finite_diff_check "rsqrt"
    (fun b x -> Builder.reduce_sum b ~axes:[ 0; 1 ] (Builder.rsqrt b x))
    [ 2; 2 ];
  finite_diff_check "sqrt"
    (fun b x -> Builder.reduce_sum b ~axes:[ 0; 1 ] (Builder.sqrt b x))
    [ 2; 2 ];
  finite_diff_check "pow"
    (fun b x ->
      let e = Builder.constant b 2.5 ~dims:[ 2; 2 ] in
      Builder.reduce_sum b ~axes:[ 0; 1 ] (Builder.pow b x e))
    [ 2; 2 ];
  finite_diff_check "div"
    (fun b x ->
      let d = Builder.constant b 1.7 ~dims:[ 2; 2 ] in
      Builder.reduce_sum b ~axes:[ 0; 1 ] (Builder.div b d x))
    [ 2; 2 ]

let test_autodiff_unsupported_conv () =
  let b = Builder.create () in
  let img = Builder.parameter b "i" [ 1; 4; 4; 1 ] in
  let f = Builder.parameter b "f" [ 2; 2; 1; 1 ] in
  let c = Builder.conv2d b ~stride:1 img f in
  let loss = Builder.reduce_sum b ~axes:[ 0; 1; 2; 3 ] c in
  match Autodiff.gradients b ~output:loss ~wrt:[ f ] with
  | _ -> Alcotest.fail "conv gradient should be unsupported"
  | exception Autodiff.Unsupported _ -> ()

let test_autodiff_unused_param_zero_grad () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 2 ] in
  let unused = Builder.parameter b "unused" [ 3 ] in
  let loss = Builder.reduce_sum b ~axes:[ 0 ] x in
  match Autodiff.gradients b ~output:loss ~wrt:[ x; unused ] with
  | [ _; gz ] ->
      let g = Builder.finish b ~outputs:[ gz ] in
      let out =
        Astitch_tensor.Interp.run g
          ~params:
            [
              ("x", Astitch_tensor.Tensor.ones (Shape.of_list [ 2 ]));
              ("unused", Astitch_tensor.Tensor.ones (Shape.of_list [ 3 ]));
            ]
      in
      check "zero grad" true
        (Astitch_tensor.Tensor.equal_approx (List.hd out)
           (Astitch_tensor.Tensor.zeros (Shape.of_list [ 3 ])))
  | _ -> Alcotest.fail "expected two gradients"

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_dot_export () =
  let g, _, _, _ = fig5_graph () in
  let dot = Dot.to_string g in
  check "has digraph" true (String.length dot > 7 && String.sub dot 0 7 = "digraph");
  check "mentions power" true (contains dot "power");
  check "mentions broadcast" true (contains dot "broadcast")

let () =
  Alcotest.run "ir"
    [
      ( "shape",
        [
          Alcotest.test_case "basics" `Quick test_shape_basics;
          Alcotest.test_case "axes" `Quick test_shape_axes;
          Alcotest.test_case "invalid" `Quick test_shape_invalid;
        ] );
      ( "builder",
        [
          Alcotest.test_case "elementwise" `Quick test_builder_elementwise;
          Alcotest.test_case "mismatch" `Quick test_builder_mismatch;
          Alcotest.test_case "broadcast" `Quick test_builder_broadcast;
          Alcotest.test_case "reduce+dot" `Quick test_builder_reduce_dot;
          Alcotest.test_case "validate" `Quick test_graph_validate;
          Alcotest.test_case "stats" `Quick test_graph_stats;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "edge deps" `Quick test_edge_deps;
          Alcotest.test_case "reduce patterns" `Quick test_reduce_patterns;
        ] );
      ("dot", [ Alcotest.test_case "export" `Quick test_dot_export ]);
      ( "inference errors",
        [
          Alcotest.test_case "per-op errors" `Quick test_inference_errors;
          Alcotest.test_case "op tables" `Quick test_op_tables;
          Alcotest.test_case "map_operands" `Quick test_map_operands;
          Alcotest.test_case "liveness" `Quick test_live_ids;
        ] );
      ( "autodiff extended",
        [
          Alcotest.test_case "min/max/select" `Quick test_autodiff_minmax_select;
          Alcotest.test_case "reduce max" `Quick test_autodiff_reduce_max;
          Alcotest.test_case "layout ops" `Quick test_autodiff_layout_ops;
          Alcotest.test_case "heavy ops" `Quick test_autodiff_heavy_ops;
          Alcotest.test_case "conv unsupported" `Quick test_autodiff_unsupported_conv;
          Alcotest.test_case "unused param" `Quick test_autodiff_unused_param_zero_grad;
        ] );
      ( "autodiff",
        [
          Alcotest.test_case "elementwise" `Quick test_autodiff_elementwise;
          Alcotest.test_case "softmax" `Quick test_autodiff_softmax;
          Alcotest.test_case "layer_norm" `Quick test_autodiff_layernorm;
          Alcotest.test_case "matmul" `Quick test_autodiff_matmul;
          Alcotest.test_case "broadcast+reduce" `Quick
            test_autodiff_broadcast_reduce;
        ] );
    ]
