(* The observability layer: trace spans/events, the metrics registry,
   the Chrome-trace exporter and the instrumentation hooks.

   The load-bearing claims, each tested directly:
   - spans nest well-formedly per domain and the exporter's output is
     valid JSON a real consumer can load;
   - under an injectable manual clock the whole export is deterministic;
   - with no sink installed the hot-path entry points allocate nothing;
   - concurrent domain emitters never interleave or corrupt records
     (per-domain ring buffers), checked as a QCheck property;
   - compiling instruments every pipeline phase, executing instruments
     every kernel, and cache/fallback/fault activity lands in the
     metrics registry. *)

open Astitch_simt
open Astitch_plan
open Astitch_runtime
module Trace = Astitch_obs.Trace
module Metrics = Astitch_obs.Metrics
module Clock = Astitch_obs.Clock
module Chrome = Astitch_obs.Chrome_trace
module J = Astitch_obs.Json_check

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let with_manual_sink f =
  Trace.install ~clock:(Clock.read (Clock.manual ())) ();
  Fun.protect
    ~finally:(fun () -> if Trace.installed () then ignore (Trace.uninstall ()))
    f

let spans records =
  List.filter_map (function Trace.Span s -> Some s | _ -> None) records

let events records =
  List.filter_map (function Trace.Event e -> Some e | _ -> None) records

let span_names records =
  List.map (fun (s : Trace.span) -> s.Trace.name) (spans records)

(* --- Spans ---------------------------------------------------------------- *)

let test_span_nesting () =
  let records =
    with_manual_sink (fun () ->
        Trace.with_span ~phase:"t" "outer" (fun () ->
            Trace.with_span ~phase:"t" "inner" (fun () ->
                Trace.instant ~phase:"t" "tick"));
        Trace.records ())
  in
  let find name =
    List.find (fun (s : Trace.span) -> s.Trace.name = name) (spans records)
  in
  let outer = find "outer" and inner = find "inner" in
  check_int "inner's parent is outer" outer.Trace.id inner.Trace.parent;
  check_int "outer is a root" 0 outer.Trace.parent;
  check_bool "parent interval contains child" true
    (outer.Trace.start_ns <= inner.Trace.start_ns
    && inner.Trace.end_ns <= outer.Trace.end_ns);
  check_int "event between the span ends" 1 (List.length (events records));
  check_bool "ids are distinct and nonzero" true
    (outer.Trace.id > 0 && inner.Trace.id > 0
    && outer.Trace.id <> inner.Trace.id)

let test_span_auto_close () =
  let records =
    with_manual_sink (fun () ->
        let a = Trace.span_begin ~phase:"t" "a" in
        let _b = Trace.span_begin ~phase:"t" "b" in
        (* ending the parent auto-closes the still-open child *)
        Trace.span_end a;
        check_int "stack is balanced" 0 (Trace.open_spans ());
        Trace.records ())
  in
  let find name =
    List.find (fun (s : Trace.span) -> s.Trace.name = name) (spans records)
  in
  check_int "both spans closed" 2 (List.length (spans records));
  check_int "child closed at the parent's end" (find "a").Trace.end_ns
    (find "b").Trace.end_ns

let test_with_span_exception () =
  let records =
    with_manual_sink (fun () ->
        (try
           Trace.with_span ~phase:"t" "boom" (fun () -> failwith "injected")
         with Failure _ -> ());
        Trace.records ())
  in
  match spans records with
  | [ s ] ->
      check_string "span survived the exception" "boom" s.Trace.name;
      check_bool "error attribute recorded" true
        (List.mem_assoc "error" s.Trace.attrs)
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_ring_overflow () =
  Trace.install ~clock:(Clock.read (Clock.manual ())) ~capacity:8 ();
  for i = 1 to 20 do
    Trace.instant ~phase:"t" (Printf.sprintf "e%d" i)
  done;
  check_int "dropped counts the overflow" 12 (Trace.dropped ());
  let records = Trace.uninstall () in
  check_int "ring keeps the newest 8" 8 (List.length records);
  check_string "oldest survivor is e13" "e13"
    (match List.hd records with Trace.Event e -> e.Trace.ename | _ -> "?")

(* --- Chrome exporter ------------------------------------------------------ *)

let sample_records () =
  with_manual_sink (fun () ->
      Trace.with_span ~phase:"compile" "clustering"
        ~attrs:[ ("n", Trace.Int 3); ("note", Trace.Str "a\"b\\c\n") ]
        (fun () -> Trace.instant ~phase:"cache" "cache-hit");
      Trace.records ())

let test_chrome_json_valid () =
  let text = Chrome.to_string (sample_records ()) in
  match J.parse text with
  | Error e -> Alcotest.failf "exporter output does not parse: %s" e
  | Ok root -> (
      check_string "displayTimeUnit" "ms"
        (Option.value ~default:"?"
           (Option.bind (J.member "displayTimeUnit" root) J.as_str));
      match Option.bind (J.member "traceEvents" root) J.as_arr with
      | None -> Alcotest.fail "no traceEvents array"
      | Some evs ->
          check_int "metadata + span + instant" 3 (List.length evs);
          List.iter
            (fun ev ->
              check_bool "every event has name and ph" true
                (J.member "name" ev <> None && J.member "ph" ev <> None))
            evs;
          let span =
            List.find
              (fun ev ->
                Option.bind (J.member "ph" ev) J.as_str = Some "X")
              evs
          in
          check_bool "span has ts/dur/cat/tid/args" true
            (J.member "ts" span <> None
            && J.member "dur" span <> None
            && J.member "cat" span <> None
            && J.member "tid" span <> None
            && J.member "args" span <> None);
          let args = Option.get (J.member "args" span) in
          check_bool "attrs travel in args" true
            (Option.bind (J.member "n" args) J.as_num = Some 3.);
          check_string "escaped string round-trips" "a\"b\\c\n"
            (Option.value ~default:"?"
               (Option.bind (J.member "note" args) J.as_str)))

let test_deterministic_export () =
  let once () = Chrome.to_string (sample_records ()) in
  check_string "two manual-clock runs export identical JSON" (once ())
    (once ())

(* --- Zero cost when disabled --------------------------------------------- *)

let test_disabled_no_alloc () =
  if Trace.installed () then ignore (Trace.uninstall ());
  if Trace.recorder_installed () then ignore (Trace.recorder_uninstall ());
  (* warm up so any one-time setup is out of the measured window *)
  let id = Trace.span_begin ~phase:"exec" "warm" in
  Trace.span_end id;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    let id = Trace.span_begin ~phase:"exec" "kernel" in
    Trace.span_end id;
    Trace.instant ~phase:"exec" "tick";
    (* the request-tracing entry points share the contract: with both
       sinks off, minting a context hands back the shared null context
       and every flow emitter returns before touching it *)
    let ctx = Trace.new_context () in
    Trace.flow_start ~phase:"serve" ctx "request";
    Trace.flow_step ~phase:"serve" ctx "request";
    Trace.flow_end ~phase:"serve" ctx "request";
    ignore (Trace.enabled ());
    ignore (Trace.active ())
  done;
  let allocated = Gc.minor_words () -. before in
  Alcotest.(check (float 0.))
    "no sink => no allocation on the span/flow hot path" 0. allocated

(* --- Concurrent emitters (qcheck) ----------------------------------------- *)

let prop_concurrent_domains =
  QCheck2.Test.make ~name:"concurrent domain emitters never corrupt records"
    ~count:25
    QCheck2.Gen.(pair (int_range 2 4) (int_range 1 20))
    (fun (ndomains, per_domain) ->
      Trace.install ~clock:(Clock.read (Clock.manual ())) ();
      let emit idx () =
        for j = 1 to per_domain do
          let id =
            Trace.span_begin ~phase:(Printf.sprintf "p%d" idx)
              (Printf.sprintf "d%d-%d" idx j)
          in
          Trace.instant ~phase:(Printf.sprintf "p%d" idx)
            (Printf.sprintf "e%d-%d" idx j);
          Trace.span_end id
        done
      in
      let doms =
        List.init (ndomains - 1) (fun i -> Domain.spawn (emit (i + 1)))
      in
      emit 0 ();
      List.iter Domain.join doms;
      let records = Trace.uninstall () in
      let ok = ref true in
      for idx = 0 to ndomains - 1 do
        let prefix = Printf.sprintf "d%d-" idx in
        let mine =
          List.filter
            (fun (s : Trace.span) ->
              String.length s.Trace.name >= String.length prefix
              && String.sub s.Trace.name 0 (String.length prefix) = prefix)
            (spans records)
        in
        if List.length mine <> per_domain then ok := false;
        (* every record of one emitter is intact: phase matches the name,
           timestamps are ordered, and all share one domain id *)
        List.iter
          (fun (s : Trace.span) ->
            if s.Trace.phase <> Printf.sprintf "p%d" idx then ok := false;
            if s.Trace.end_ns < s.Trace.start_ns then ok := false)
          mine;
        match mine with
        | [] -> ok := false
        | s0 :: rest ->
            List.iter
              (fun (s : Trace.span) ->
                if s.Trace.domain <> s0.Trace.domain then ok := false)
              rest
      done;
      let total_spans = List.length (spans records) in
      if total_spans <> ndomains * per_domain then ok := false;
      !ok)

(* --- Flows, cross-domain rule, recorder + flight dumps -------------------- *)

module Flight = Astitch_obs.Flight

let flows records =
  List.filter_map (function Trace.Flow f -> Some f | _ -> None) records

let test_flow_chain () =
  let ctx_ref = ref Trace.null_context in
  let records =
    with_manual_sink (fun () ->
        let sid = Trace.span_begin ~phase:"serve" "submit" in
        let ctx = Trace.new_context () in
        ctx_ref := ctx;
        Trace.flow_start ~phase:"serve" ctx "request";
        Trace.span_end sid;
        Trace.with_span ~phase:"serve" "batch" (fun () ->
            Trace.flow_step ~phase:"serve" ctx "request";
            Trace.flow_end ~phase:"serve" ctx "request");
        Trace.records ())
  in
  let fl = flows records in
  check_int "three flow records" 3 (List.length fl);
  let ctx = !ctx_ref in
  check_bool "fresh context has a nonzero id" true (ctx.Trace.trace_id > 0);
  let submit =
    List.find (fun (s : Trace.span) -> s.Trace.name = "submit") (spans records)
  in
  check_int "context parents under the minting span" submit.Trace.id
    ctx.Trace.parent_span;
  List.iter
    (fun (f : Trace.flow) ->
      check_int "every arrow carries the trace id" ctx.Trace.trace_id
        f.Trace.fid)
    fl;
  (match List.map (fun (f : Trace.flow) -> f.Trace.fdir) fl with
  | [ Trace.Flow_start; Trace.Flow_step; Trace.Flow_end ] -> ()
  | _ -> Alcotest.fail "flow arrows out of order");
  (* two contexts never share an id, even across sink reinstalls *)
  let other = with_manual_sink (fun () -> Trace.new_context ()) in
  check_bool "flow ids are never reused" true
    (other.Trace.trace_id <> ctx.Trace.trace_id);
  (* the null context is inert *)
  let quiet =
    with_manual_sink (fun () ->
        Trace.flow_start ~phase:"serve" Trace.null_context "request";
        Trace.flow_end ~phase:"serve" Trace.null_context "request";
        Trace.records ())
  in
  check_int "null context emits nothing" 0 (List.length quiet)

let test_flow_chrome_export () =
  let records =
    with_manual_sink (fun () ->
        Trace.with_span ~phase:"serve" "submit" (fun () ->
            let ctx = Trace.new_context () in
            Trace.flow_start ~phase:"serve" ctx "request";
            Trace.flow_step ~phase:"serve" ctx "request"
              ~attrs:[ ("hop", Trace.Str "retry") ];
            Trace.flow_end ~phase:"serve" ctx "request");
        Trace.records ())
  in
  let text = Chrome.to_string records in
  match J.parse text with
  | Error e -> Alcotest.failf "flow export does not parse: %s" e
  | Ok root ->
      let evs =
        Option.value ~default:[]
          (Option.bind (J.member "traceEvents" root) J.as_arr)
      in
      let by_ph ph =
        List.filter
          (fun ev -> Option.bind (J.member "ph" ev) J.as_str = Some ph)
          evs
      in
      check_int "one s arrow" 1 (List.length (by_ph "s"));
      check_int "one t arrow" 1 (List.length (by_ph "t"));
      check_int "one f arrow" 1 (List.length (by_ph "f"));
      let ids =
        List.map
          (fun ev -> Option.bind (J.member "id" ev) J.as_num)
          (by_ph "s" @ by_ph "t" @ by_ph "f")
      in
      (match ids with
      | [ Some a; Some b; Some c ] when a = b && b = c -> ()
      | _ -> Alcotest.fail "flow events do not share one id");
      check_string "the f arrow binds to its enclosing slice" "e"
        (Option.value ~default:"?"
           (Option.bind
              (Option.bind (J.member "bp" (List.hd (by_ph "f"))) J.as_str)
              Option.some));
      check_string "the t arrow keeps its attrs" "retry"
        (Option.value ~default:"?"
           (Option.bind (J.member "args" (List.hd (by_ph "t"))) (fun args ->
                Option.bind (J.member "hop" args) J.as_str)))

(* The cross-domain rule: a span closed on a domain that did not open it
   must never touch the owner's stack - it surfaces as a diagnostic
   instant, and the owner can still close its span normally. *)
let test_cross_domain_span_end () =
  let records =
    with_manual_sink (fun () ->
        let sid = Trace.span_begin ~phase:"serve" "owned" in
        let d = Domain.spawn (fun () -> Trace.span_end sid) in
        Domain.join d;
        check_int "owner's stack is untouched by the foreign close" 1
          (Trace.open_spans ());
        Trace.span_end sid;
        Trace.records ())
  in
  (match spans records with
  | [ s ] -> check_string "the owner's close wins" "owned" s.Trace.name
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l));
  match events records with
  | [ e ] ->
      check_string "foreign close becomes a diagnostic instant"
        "cross-domain-span-end" e.Trace.ename;
      check_string "diagnostic is in the trace phase" "trace" e.Trace.ephase
  | l -> Alcotest.failf "expected 1 diagnostic event, got %d" (List.length l)

let test_recorder_tee () =
  if Trace.installed () then ignore (Trace.uninstall ());
  if Trace.recorder_installed () then ignore (Trace.recorder_uninstall ());
  Trace.recorder_install ~clock:(Clock.read (Clock.manual ())) ();
  Fun.protect
    ~finally:(fun () ->
      if Trace.installed () then ignore (Trace.uninstall ());
      if Trace.recorder_installed () then ignore (Trace.recorder_uninstall ()))
    (fun () ->
      check_bool "recorder-only: active but not enabled" true
        (Trace.active () && not (Trace.enabled ()));
      Trace.instant ~phase:"serve" "black-box-only";
      Trace.install ~clock:(Clock.read (Clock.manual ())) ();
      Trace.with_span ~phase:"serve" "teed" (fun () -> ());
      let traced = Trace.uninstall () in
      check_bool "the trace sink saw the teed span" true
        (List.exists
           (fun (s : Trace.span) -> s.Trace.name = "teed")
           (spans traced));
      check_bool "the trace sink missed the pre-install event" false
        (List.exists
           (fun (e : Trace.event) -> e.Trace.ename = "black-box-only")
           (events traced));
      let rec_ = Trace.recorder_records () in
      check_bool "the recorder holds both" true
        (List.exists
           (fun (e : Trace.event) -> e.Trace.ename = "black-box-only")
           (events rec_)
        && List.exists
             (fun (s : Trace.span) -> s.Trace.name = "teed")
             (spans rec_)))

let test_recorder_overflow_export () =
  if Trace.installed () then ignore (Trace.uninstall ());
  Trace.recorder_install ~clock:(Clock.read (Clock.manual ())) ~capacity:8 ();
  Fun.protect
    ~finally:(fun () ->
      if Trace.recorder_installed () then ignore (Trace.recorder_uninstall ()))
    (fun () ->
      for i = 1 to 50 do
        Trace.instant ~phase:"serve" (Printf.sprintf "e%d" i)
      done;
      check_bool "overflow is counted" true (Trace.recorder_dropped () > 0);
      let text = Chrome.to_string (Trace.recorder_records ()) in
      match J.parse text with
      | Error e -> Alcotest.failf "overflowed recorder export invalid: %s" e
      | Ok root ->
          let evs =
            Option.value ~default:[]
              (Option.bind (J.member "traceEvents" root) J.as_arr)
          in
          (* 8 survivors + the process metadata record *)
          check_int "ring keeps the newest 8" 9 (List.length evs))

let test_flight_dump () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "astitch-flight-test-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Flight.arm ~dir ~limit:2 ();
  Fun.protect
    ~finally:(fun () -> Flight.disarm ())
    (fun () ->
      Trace.instant ~phase:"serve" "pre-incident-context";
      (match Flight.incident ~reason:"test-incident" () with
      | None -> Alcotest.fail "armed incident produced no dump"
      | Some path -> (
          check_bool "dump file exists" true (Sys.file_exists path);
          let ic = open_in path in
          let text = really_input_string ic (in_channel_length ic) in
          close_in ic;
          match J.parse text with
          | Error e -> Alcotest.failf "dump is not valid JSON: %s" e
          | Ok root ->
              let evs =
                Option.value ~default:[]
                  (Option.bind (J.member "traceEvents" root) J.as_arr)
              in
              let has name =
                List.exists
                  (fun ev ->
                    Option.bind (J.member "name" ev) J.as_str = Some name)
                  evs
              in
              check_bool "the trigger instant is inside its own dump" true
                (has "test-incident");
              check_bool "events preceding the incident are captured" true
                (has "pre-incident-context")));
      ignore (Flight.incident ~reason:"test-incident" ());
      check_int "two dumps written" 2 (List.length (Flight.dump_paths ()));
      ignore (Flight.incident ~reason:"test-incident" ());
      check_int "still two dumps at the limit" 2
        (List.length (Flight.dump_paths ()));
      check_int "the third incident is counted as suppressed" 1
        (Flight.suppressed ()))

(* --- Metrics -------------------------------------------------------------- *)

let test_counters_gauges () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "c" in
  Metrics.inc c;
  Metrics.add c 4;
  check_int "counter accumulates" 5 (Metrics.value c);
  check_bool "get-or-create returns the same counter" true
    (Metrics.value (Metrics.counter reg "c") = 5);
  let g = Metrics.gauge reg "g" in
  Metrics.set g 2.5;
  Metrics.set_max g 1.0;
  Alcotest.(check (float 1e-9)) "set_max keeps the high water" 2.5
    (Metrics.gauge_value g);
  Metrics.set_max g 7.0;
  Alcotest.(check (float 1e-9)) "set_max raises" 7.0 (Metrics.gauge_value g);
  check_bool "re-registering as a different kind rejects" true
    (match Metrics.histogram reg "c" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_histogram_quantiles () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "lat" in
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i)
  done;
  check_int "count" 1000 (Metrics.hist_count h);
  let within q expect =
    let v = Metrics.quantile h q in
    let rel = Float.abs (v -. expect) /. expect in
    if rel > 0.15 then
      Alcotest.failf "q%.0f: %.1f not within 15%% of %.1f" (100. *. q) v
        expect
  in
  within 0.50 500.;
  within 0.95 950.;
  within 0.99 990.;
  let mean = Metrics.hist_mean h in
  check_bool "mean close to 500.5" true (Float.abs (mean -. 500.5) < 1.)

(* The serving runtime reads p50/p95/p99 off histograms that may not
   have seen a single sample yet (a server queried before its first
   request); the quantile path must degrade to 0, never crash or go
   NaN, whatever the inputs. *)
let test_quantile_edge_cases () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "empty" in
  List.iter
    (fun q ->
      let v = Metrics.quantile h q in
      check_bool
        (Printf.sprintf "empty histogram q=%f answers 0" q)
        true (v = 0.))
    [ 0.; 0.5; 0.95; 0.99; 1.; -1.; 2.; Float.nan ];
  check_bool "empty mean is finite" true
    (Float.is_finite (Metrics.hist_mean h));
  (* pathological observations land in the underflow bucket and report 0 *)
  let p = Metrics.histogram reg "pathological" in
  List.iter (Metrics.observe p)
    [ 0.; -5.; Float.nan; Float.infinity; Float.neg_infinity ];
  check_int "all pathological observations counted" 5 (Metrics.hist_count p);
  List.iter
    (fun q ->
      let v = Metrics.quantile p q in
      check_bool
        (Printf.sprintf "underflow bucket q=%f answers exactly 0" q)
        true (v = 0.))
    [ 0.5; 0.95; 0.99 ];
  (* one real sample among garbage: high quantiles find it, and no
     query returns NaN *)
  Metrics.observe p 100.;
  let v = Metrics.quantile p 1.0 in
  check_bool "q1 lands near the real sample" true (v > 50. && v < 200.);
  List.iter
    (fun q ->
      check_bool "no quantile query returns NaN" false
        (Float.is_nan (Metrics.quantile p q)))
    [ 0.; 0.25; 0.5; 0.75; 0.95; 0.99; 1.; Float.nan ]

let test_snapshot_reset () =
  let reg = Metrics.create () in
  Metrics.inc (Metrics.counter reg "b");
  Metrics.set (Metrics.gauge reg "a") 3.;
  Metrics.observe (Metrics.histogram reg "c") 10.;
  Metrics.observe (Metrics.histogram reg "c") 30.;
  (match Metrics.snapshot reg with
  | [ Metrics.Gauge_s { name = "a"; _ }; Metrics.Counter_s { name = "b"; _ };
      Metrics.Hist_s { name = "c"; n = 2; mean; min; max; _ } ] ->
      (* the extrema are exact (not bucket-rounded), the mean is total/n *)
      check_bool "snapshot mean" true (Float.abs (mean -. 20.) < 1e-9);
      check_bool "snapshot min is exact" true (min = 10.);
      check_bool "snapshot max is exact" true (max = 30.)
  | _ -> Alcotest.fail "snapshot shape/order");
  Metrics.reset reg;
  check_int "reset zeroes counters" 0 (Metrics.value (Metrics.counter reg "b"));
  check_int "reset zeroes histograms" 0
    (Metrics.hist_count (Metrics.histogram reg "c"));
  check_bool "reset clears the extrema" true
    (Metrics.hist_min (Metrics.histogram reg "c") = 0.
    && Metrics.hist_max (Metrics.histogram reg "c") = 0.)

(* --- Pipeline instrumentation -------------------------------------------- *)

let crnn_tiny () =
  match Astitch_workloads.Zoo.find "CRNN" with
  | Some e -> e.tiny ()
  | None -> Alcotest.fail "no CRNN in the zoo"

let compile_phases =
  [
    "clustering"; "remote-stitching"; "dominant-grouping";
    "schedule-propagation"; "locality-placement"; "mem-planning";
    "launch-config"; "codegen"; "kernel-schedule";
  ]

let test_compile_spans () =
  let records =
    with_manual_sink (fun () ->
        ignore
          (Session.compile Astitch_core.Astitch.full_backend Arch.v100
             (crnn_tiny ()));
        Trace.records ())
  in
  let names = span_names records in
  List.iter
    (fun phase ->
      check_bool (phase ^ " span present") true (List.mem phase names))
    compile_phases;
  check_bool "session compile span present" true (List.mem "compile" names);
  check_bool "per-cluster spans present" true (List.mem "cluster" names);
  (* nesting well-formedness across the whole compile: every non-root
     span's parent exists and its interval contains the child *)
  let by_id = Hashtbl.create 128 in
  List.iter
    (fun (s : Trace.span) -> Hashtbl.replace by_id s.Trace.id s)
    (spans records);
  List.iter
    (fun (s : Trace.span) ->
      if s.Trace.parent <> 0 then
        match Hashtbl.find_opt by_id s.Trace.parent with
        | None -> Alcotest.failf "span %s has a dangling parent" s.Trace.name
        | Some p ->
            check_bool
              (Printf.sprintf "%s nested in %s" s.Trace.name p.Trace.name)
              true
              (p.Trace.start_ns <= s.Trace.start_ns
              && s.Trace.end_ns <= p.Trace.end_ns))
    (spans records)

let test_exec_spans_and_timing () =
  let g = crnn_tiny () in
  let r = Session.compile Astitch_core.Astitch.full_backend Arch.v100 g in
  let params = Session.random_params g in
  let ctx, records =
    with_manual_sink (fun () ->
        let ctx = Executor.create_context ~fused:true ~timed:true r.plan in
        ignore (Executor.run_context ctx ~params);
        (ctx, Trace.records ()))
  in
  let names = span_names records in
  check_bool "run-context span present" true (List.mem "run-context" names);
  check_bool "create-context span present" true
    (List.mem "create-context" names);
  List.iter
    (fun (k : Kernel_plan.kernel) ->
      check_bool (k.name ^ " has an execution span") true
        (List.mem k.name names))
    r.plan.Kernel_plan.kernels;
  (* a timed context never reports wall_ns silently zero across the run *)
  let report = Executor.exec_report ctx in
  List.iter
    (fun (k : Profile.exec_kernel) ->
      check_int (k.kname ^ " counted its run") 1 k.runs)
    report.Profile.exec_kernels;
  check_bool "total measured wall time is positive" true
    (List.fold_left
       (fun acc (k : Profile.exec_kernel) -> acc +. k.wall_ns)
       0. report.Profile.exec_kernels
    > 0.)

let test_cache_metrics () =
  let g = crnn_tiny () in
  let v name = Metrics.value (Metrics.counter Metrics.default name) in
  let h0 = v "plan_cache.hit" and m0 = v "plan_cache.miss" in
  let i0 = v "plan_cache.insertion" in
  let cache = Session.make_cache () in
  ignore
    (Session.compile_cached cache Astitch_core.Astitch.full_backend Arch.v100 g);
  ignore
    (Session.compile_cached cache Astitch_core.Astitch.full_backend Arch.v100 g);
  check_int "one miss published" (m0 + 1) (v "plan_cache.miss");
  check_int "one insertion published" (i0 + 1) (v "plan_cache.insertion");
  check_int "one hit published" (h0 + 1) (v "plan_cache.hit")

let test_fault_and_degrade_events () =
  let g = crnn_tiny () in
  let config =
    {
      Astitch_core.Config.full with
      faults = [ Fault_site.plan ~mode:Fault_site.Raise Fault_site.Mem_planning ];
    }
  in
  let fired0 = Metrics.value (Metrics.counter Metrics.default "fault.fired") in
  let deg0 =
    Metrics.value (Metrics.counter Metrics.default "fallback.degradations")
  in
  let report, records =
    with_manual_sink (fun () ->
        match Session.compile_resilient ~config Arch.v100 g with
        | Error e -> Alcotest.failf "resilient compile failed: %s"
                       (Compile_error.to_string e)
        | Ok { report; _ } -> (report, Trace.records ()))
  in
  check_bool "the ladder stepped down" true
    (not (Astitch_core.Degradation.is_empty report));
  let enames = List.map (fun (e : Trace.event) -> e.Trace.ename) (events records) in
  check_bool "fault-fired event emitted" true (List.mem "fault-fired" enames);
  check_bool "degrade event emitted" true (List.mem "degrade" enames);
  check_bool "fault.fired counter bumped" true
    (Metrics.value (Metrics.counter Metrics.default "fault.fired") > fired0);
  check_bool "fallback.degradations counter bumped" true
    (Metrics.value (Metrics.counter Metrics.default "fallback.degradations")
    > deg0)

let test_publish_exec () =
  let g = crnn_tiny () in
  let r = Session.compile Astitch_core.Astitch.full_backend Arch.v100 g in
  let ctx = Executor.create_context ~fused:true ~timed:true r.plan in
  let params = Session.random_params g in
  for _ = 1 to 3 do
    ignore (Executor.run_context ctx ~params)
  done;
  let reg = Metrics.create () in
  Profile.publish_exec ~metrics:reg (Executor.exec_report ctx);
  let v name = Metrics.value (Metrics.counter reg name) in
  check_int "one report" 1 (v "exec.reports");
  check_bool "kernels counted" true (v "exec.kernels" > 0);
  check_int "fused + reference = kernels" (v "exec.kernels")
    (v "exec.kernels_fused" + v "exec.kernels_reference");
  check_bool "arena gauge set" true
    (Metrics.gauge_value (Metrics.gauge reg "exec.arena_bytes") > 0.);
  check_bool "wall-time histogram fed" true
    (Metrics.hist_count (Metrics.histogram reg "exec.kernel_wall_us") > 0)

(* --- Suite ---------------------------------------------------------------- *)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "auto-close" `Quick test_span_auto_close;
          Alcotest.test_case "exception" `Quick test_with_span_exception;
          Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "valid JSON" `Quick test_chrome_json_valid;
          Alcotest.test_case "deterministic" `Quick test_deterministic_export;
        ] );
      ( "cost",
        [ Alcotest.test_case "disabled = no alloc" `Quick test_disabled_no_alloc ]
      );
      ( "concurrency",
        [ QCheck_alcotest.to_alcotest ~long:false prop_concurrent_domains ] );
      ( "flows",
        [
          Alcotest.test_case "flow chain" `Quick test_flow_chain;
          Alcotest.test_case "chrome flow export" `Quick
            test_flow_chrome_export;
          Alcotest.test_case "cross-domain span end" `Quick
            test_cross_domain_span_end;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "tee to both sinks" `Quick test_recorder_tee;
          Alcotest.test_case "overflow export valid" `Quick
            test_recorder_overflow_export;
          Alcotest.test_case "flight dump" `Quick test_flight_dump;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters + gauges" `Quick test_counters_gauges;
          Alcotest.test_case "histogram quantiles" `Quick
            test_histogram_quantiles;
          Alcotest.test_case "quantile edge cases" `Quick
            test_quantile_edge_cases;
          Alcotest.test_case "snapshot + reset" `Quick test_snapshot_reset;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "compile spans" `Quick test_compile_spans;
          Alcotest.test_case "exec spans + timing" `Quick
            test_exec_spans_and_timing;
          Alcotest.test_case "cache metrics" `Quick test_cache_metrics;
          Alcotest.test_case "fault + degrade events" `Quick
            test_fault_and_degrade_events;
          Alcotest.test_case "publish_exec" `Quick test_publish_exec;
        ] );
    ]
