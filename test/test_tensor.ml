(* Tensor arithmetic and reference-interpreter semantics. *)

open Astitch_ir
open Astitch_tensor

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let test_tensor_basics () =
  let t = Tensor.of_list [ 2; 3 ] [ 1.; 2.; 3.; 4.; 5.; 6. ] in
  checkf "get" 6. (Tensor.get t [| 1; 2 |]);
  checkf "get_linear" 4. (Tensor.get_linear t 3);
  let sq = Tensor.map (fun x -> x *. x) t in
  checkf "map" 36. (Tensor.get sq [| 1; 2 |]);
  let s = Tensor.map2 ( +. ) t t in
  checkf "map2" 12. (Tensor.get s [| 1; 2 |]);
  check "equal_approx self" true (Tensor.equal_approx t t);
  check "inf equal" true
    (Tensor.equal_approx (Tensor.scalar infinity) (Tensor.scalar infinity));
  check "nan equal" true
    (Tensor.equal_approx (Tensor.scalar nan) (Tensor.scalar nan));
  check "not equal" false (Tensor.equal_approx t sq)

let test_random_deterministic () =
  let a = Tensor.random ~seed:3 (Shape.of_list [ 10 ]) in
  let b = Tensor.random ~seed:3 (Shape.of_list [ 10 ]) in
  check "same seed same data" true (Tensor.equal_approx a b);
  let c = Tensor.random ~seed:4 (Shape.of_list [ 10 ]) in
  check "diff seed diff data" false (Tensor.equal_approx a c);
  check "bounded" true
    (Array.for_all (fun x -> x >= -1. && x <= 1.) (Tensor.data a))

let run1 build params =
  let b = Builder.create () in
  let out = build b in
  let g = Builder.finish b ~outputs:[ out ] in
  match Interp.run g ~params with [ t ] -> t | _ -> assert false

let test_interp_elementwise () =
  let t =
    run1
      (fun b ->
        let x = Builder.parameter b "x" [ 4 ] in
        Builder.relu b (Builder.neg b x))
      [ ("x", Tensor.of_list [ 4 ] [ -2.; -0.5; 0.; 3. ]) ]
  in
  check "relu(neg)" true
    (Tensor.equal_approx t (Tensor.of_list [ 4 ] [ 2.; 0.5; 0.; 0. ]))

let test_interp_softmax () =
  let t =
    run1
      (fun b ->
        let x = Builder.parameter b "x" [ 1; 3 ] in
        Builder.softmax b x)
      [ ("x", Tensor.of_list [ 1; 3 ] [ 1.; 2.; 3. ]) ]
  in
  let z = exp 1. +. exp 2. +. exp 3. in
  let expected = Tensor.of_list [ 1; 3 ] [ exp 1. /. z; exp 2. /. z; exp 3. /. z ] in
  check "softmax" true (Tensor.equal_approx t expected);
  (* rows sum to one *)
  let sum = Array.fold_left ( +. ) 0. (Tensor.data t) in
  checkf "sums to one" 1. (Float.round (sum *. 1e9) /. 1e9)

let test_interp_reduce () =
  let x = Tensor.of_list [ 2; 3 ] [ 1.; 2.; 3.; 4.; 5.; 6. ] in
  let row =
    run1
      (fun b ->
        Builder.reduce_sum b ~axes:[ 1 ] (Builder.parameter b "x" [ 2; 3 ]))
      [ ("x", x) ]
  in
  check "row sums" true (Tensor.equal_approx row (Tensor.of_list [ 2 ] [ 6.; 15. ]));
  let col =
    run1
      (fun b ->
        Builder.reduce_max b ~axes:[ 0 ] (Builder.parameter b "x" [ 2; 3 ]))
      [ ("x", x) ]
  in
  check "col maxes" true
    (Tensor.equal_approx col (Tensor.of_list [ 3 ] [ 4.; 5.; 6. ]));
  let mean =
    run1
      (fun b ->
        Builder.reduce_mean b ~axes:[ 0; 1 ] (Builder.parameter b "x" [ 2; 3 ]))
      [ ("x", x) ]
  in
  check "mean" true (Tensor.equal_approx mean (Tensor.scalar 3.5))

let test_interp_broadcast () =
  let v = Tensor.of_list [ 2 ] [ 10.; 20. ] in
  let t =
    run1
      (fun b ->
        Builder.broadcast b (Builder.parameter b "v" [ 2 ]) ~dims:[ 0 ] [ 2; 3 ])
      [ ("v", v) ]
  in
  check "broadcast rows" true
    (Tensor.equal_approx t (Tensor.of_list [ 2; 3 ] [ 10.; 10.; 10.; 20.; 20.; 20. ]));
  let t2 =
    run1
      (fun b ->
        Builder.broadcast b (Builder.parameter b "v" [ 2 ]) ~dims:[ 1 ] [ 3; 2 ])
      [ ("v", v) ]
  in
  check "broadcast cols" true
    (Tensor.equal_approx t2 (Tensor.of_list [ 3; 2 ] [ 10.; 20.; 10.; 20.; 10.; 20. ]))

let test_interp_layout_ops () =
  let x = Tensor.of_list [ 2; 3 ] [ 1.; 2.; 3.; 4.; 5.; 6. ] in
  let tr =
    run1
      (fun b ->
        Builder.transpose b (Builder.parameter b "x" [ 2; 3 ]) ~perm:[ 1; 0 ])
      [ ("x", x) ]
  in
  check "transpose" true
    (Tensor.equal_approx tr (Tensor.of_list [ 3; 2 ] [ 1.; 4.; 2.; 5.; 3.; 6. ]));
  let sl =
    run1
      (fun b ->
        Builder.slice b (Builder.parameter b "x" [ 2; 3 ]) ~starts:[ 0; 1 ]
          ~stops:[ 2; 3 ])
      [ ("x", x) ]
  in
  check "slice" true
    (Tensor.equal_approx sl (Tensor.of_list [ 2; 2 ] [ 2.; 3.; 5.; 6. ]));
  let pd =
    run1
      (fun b ->
        Builder.pad b (Builder.parameter b "v" [ 2 ]) ~low:[ 1 ] ~high:[ 1 ])
      [ ("v", Tensor.of_list [ 2 ] [ 7.; 8. ]) ]
  in
  check "pad" true (Tensor.equal_approx pd (Tensor.of_list [ 4 ] [ 0.; 7.; 8.; 0. ]));
  let cc =
    run1
      (fun b ->
        let x1 = Builder.parameter b "a" [ 2 ] in
        let x2 = Builder.parameter b "b" [ 3 ] in
        Builder.concat b ~axis:0 [ x1; x2 ])
      [ ("a", Tensor.of_list [ 2 ] [ 1.; 2. ]); ("b", Tensor.of_list [ 3 ] [ 3.; 4.; 5. ]) ]
  in
  check "concat" true
    (Tensor.equal_approx cc (Tensor.of_list [ 5 ] [ 1.; 2.; 3.; 4.; 5. ]))

let test_interp_dot_conv () =
  let a = Tensor.of_list [ 2; 2 ] [ 1.; 2.; 3.; 4. ] in
  let bm = Tensor.of_list [ 2; 2 ] [ 5.; 6.; 7.; 8. ] in
  let d =
    run1
      (fun b ->
        Builder.dot b (Builder.parameter b "a" [ 2; 2 ]) (Builder.parameter b "b" [ 2; 2 ]))
      [ ("a", a); ("b", bm) ]
  in
  check "matmul" true
    (Tensor.equal_approx d (Tensor.of_list [ 2; 2 ] [ 19.; 22.; 43.; 50. ]));
  (* 2x2 conv over 3x3 image of ones with filter of ones = 4s *)
  let img = Tensor.ones (Shape.of_list [ 1; 3; 3; 1 ]) in
  let filt = Tensor.ones (Shape.of_list [ 2; 2; 1; 1 ]) in
  let c =
    run1
      (fun b ->
        Builder.conv2d b ~stride:1
          (Builder.parameter b "img" [ 1; 3; 3; 1 ])
          (Builder.parameter b "f" [ 2; 2; 1; 1 ]))
      [ ("img", img); ("f", filt) ]
  in
  check "conv" true (Tensor.equal_approx c (Tensor.full (Shape.of_list [ 1; 2; 2; 1 ]) 4.))

let test_interp_select_iota () =
  let t =
    run1
      (fun b ->
        let x = Builder.parameter b "x" [ 4 ] in
        let zero = Builder.broadcast_scalar b (Builder.constant b 0.) [ 4 ] in
        Builder.select b ~pred:(Builder.gt b x zero) ~on_true:x ~on_false:zero)
      [ ("x", Tensor.of_list [ 4 ] [ -1.; 2.; -3.; 4. ]) ]
  in
  check "select = relu" true
    (Tensor.equal_approx t (Tensor.of_list [ 4 ] [ 0.; 2.; 0.; 4. ]));
  let i =
    run1
      (fun b -> Builder.iota b ~axis:1 [ 2; 3 ])
      []
  in
  check "iota" true
    (Tensor.equal_approx i (Tensor.of_list [ 2; 3 ] [ 0.; 1.; 2.; 0.; 1.; 2. ]))

let test_interp_gather_scatter () =
  let table = Tensor.of_list [ 3; 2 ] [ 1.; 2.; 3.; 4.; 5.; 6. ] in
  let g =
    run1
      (fun b ->
        let t = Builder.parameter b "t" [ 3; 2 ] in
        let ids = Builder.parameter b "ids" [ 4 ] in
        Builder.gather b t ids)
      [ ("t", table); ("ids", Tensor.of_list [ 4 ] [ 2.; 0.; 1.; 9. ]) ]
  in
  (* index 9 clamps to the last row *)
  check "gather" true
    (Tensor.equal_approx g
       (Tensor.of_list [ 4; 2 ] [ 5.; 6.; 1.; 2.; 3.; 4.; 5.; 6. ]));
  let s =
    run1
      (fun b ->
        let ids = Builder.parameter b "ids" [ 3 ] in
        let ups = Builder.parameter b "ups" [ 3; 2 ] in
        Builder.scatter_add b ~rows:2 ids ups)
      [
        ("ids", Tensor.of_list [ 3 ] [ 0.; 1.; 0. ]);
        ("ups", Tensor.of_list [ 3; 2 ] [ 1.; 1.; 2.; 2.; 4.; 4. ]);
      ]
  in
  (* rows 0 and 2 accumulate into output row 0 *)
  check "scatter-add" true
    (Tensor.equal_approx s (Tensor.of_list [ 2; 2 ] [ 5.; 5.; 2.; 2. ]))

let test_interp_max_pool () =
  let img =
    Tensor.of_list [ 1; 4; 4; 1 ]
      [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10.; 11.; 12.; 13.; 14.; 15.; 16. ]
  in
  let p =
    run1
      (fun b ->
        Builder.max_pool b ~window:2 ~stride:2 (Builder.parameter b "x" [ 1; 4; 4; 1 ]))
      [ ("x", img) ]
  in
  check "2x2 pool" true
    (Tensor.equal_approx p (Tensor.of_list [ 1; 2; 2; 1 ] [ 6.; 8.; 14.; 16. ]))

let test_gather_grad_is_scatter () =
  (* d(sum(gather(t, ids) * w)) / dt accumulates w into the gathered rows *)
  let b = Builder.create () in
  let t = Builder.parameter b "t" [ 3; 2 ] in
  let ids = Builder.parameter b "ids" [ 2 ] in
  let gth = Builder.gather b t ids in
  let loss = Builder.reduce_sum b ~axes:[ 0; 1 ] gth in
  let grads = Autodiff.gradients b ~output:loss ~wrt:[ t ] in
  let g = Builder.finish b ~outputs:grads in
  let out =
    Interp.run g
      ~params:
        [
          ("t", Tensor.of_list [ 3; 2 ] [ 0.; 0.; 0.; 0.; 0.; 0. ]);
          ("ids", Tensor.of_list [ 2 ] [ 1.; 1. ]);
        ]
  in
  check "grad accumulates on row 1" true
    (Tensor.equal_approx (List.hd out)
       (Tensor.of_list [ 3; 2 ] [ 0.; 0.; 2.; 2.; 0.; 0. ]))

let test_missing_parameter () =
  match
    run1 (fun b -> Builder.parameter b "absent" [ 1 ]) []
  with
  | _ -> Alcotest.fail "expected Missing_parameter"
  | exception Interp.Missing_parameter "absent" -> ()

(* --- Mathematical identities of the op implementations ----------------------- *)

let close ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps

let test_unary_identities () =
  let f = Interp.unary_fn in
  check "sigmoid(0)=1/2" true (close (f Op.Sigmoid 0.) 0.5);
  check "tanh odd" true (close (f Op.Tanh (-0.7)) (-.f Op.Tanh 0.7));
  check "erf(0)=0" true (close (f Op.Erf 0.) 0.);
  check "erf(inf)~1" true (close (f Op.Erf 6.) 1. ~eps:1e-6);
  check "erf odd" true (close (f Op.Erf (-1.3)) (-.f Op.Erf 1.3));
  check "exp(log x)=x" true (close (f Op.Exp (f Op.Log 3.7)) 3.7 ~eps:1e-9);
  check "rsqrt = 1/sqrt" true
    (close (f Op.Rsqrt 2.) (1. /. f Op.Sqrt 2.) ~eps:1e-12);
  check "rcp" true (close (f Op.Rcp 4.) 0.25);
  check "relu clamps" true (f Op.Relu (-3.) = 0. && f Op.Relu 3. = 3.);
  check "sign" true
    (f Op.Sign (-2.) = -1. && f Op.Sign 0. = 0. && f Op.Sign 9. = 1.);
  check "abs" true (f Op.Abs (-2.5) = 2.5)

let test_binary_identities () =
  let f = Interp.binary_fn in
  check "pow" true (close (f Op.Pow 2. 10.) 1024.);
  check "max/min" true (f Op.Max 2. 3. = 3. && f Op.Min 2. 3. = 2.);
  check "comparisons" true
    (f Op.Lt 1. 2. = 1. && f Op.Gt 1. 2. = 0. && f Op.Eq 2. 2. = 1.);
  check "div" true (close (f Op.Div 1. 8.) 0.125)

let test_reduce_identities () =
  check "sum init" true (Interp.reduce_init Op.Sum = 0.);
  check "max init" true (Interp.reduce_init Op.Max_r = Float.neg_infinity);
  check "min init" true (Interp.reduce_init Op.Min_r = Float.infinity);
  check "steps" true
    (Interp.reduce_step Op.Sum 1. 2. = 3.
    && Interp.reduce_step Op.Max_r 1. 2. = 2.
    && Interp.reduce_step Op.Min_r 1. 2. = 1.)

let test_dtype_table () =
  let open Astitch_ir.Dtype in
  check "sizes" true
    (size_bytes F32 = 4 && size_bytes F16 = 2 && size_bytes I32 = 4
   && size_bytes Pred = 1);
  check "floating" true
    (is_floating F32 && is_floating F16 && (not (is_floating I32))
    && not (is_floating Pred));
  check "names" true
    (to_string F32 = "f32" && to_string F16 = "f16" && to_string I32 = "i32"
   && to_string Pred = "pred")

let test_shape_strides_roundtrip () =
  let s = Shape.of_list [ 3; 4; 5 ] in
  for i = 0 to Shape.num_elements s - 1 do
    if Shape.linear_index s (Shape.multi_index s i) <> i then
      Alcotest.failf "strides roundtrip broke at %d" i
  done

let () =
  Alcotest.run "tensor"
    [
      ( "tensor",
        [
          Alcotest.test_case "basics" `Quick test_tensor_basics;
          Alcotest.test_case "random" `Quick test_random_deterministic;
        ] );
      ( "interp",
        [
          Alcotest.test_case "elementwise" `Quick test_interp_elementwise;
          Alcotest.test_case "softmax" `Quick test_interp_softmax;
          Alcotest.test_case "reduce" `Quick test_interp_reduce;
          Alcotest.test_case "broadcast" `Quick test_interp_broadcast;
          Alcotest.test_case "layout" `Quick test_interp_layout_ops;
          Alcotest.test_case "dot+conv" `Quick test_interp_dot_conv;
          Alcotest.test_case "select+iota" `Quick test_interp_select_iota;
          Alcotest.test_case "gather+scatter" `Quick test_interp_gather_scatter;
          Alcotest.test_case "max pool" `Quick test_interp_max_pool;
          Alcotest.test_case "gather grad" `Quick test_gather_grad_is_scatter;
          Alcotest.test_case "missing param" `Quick test_missing_parameter;
        ] );
      ( "identities",
        [
          Alcotest.test_case "unary" `Quick test_unary_identities;
          Alcotest.test_case "binary" `Quick test_binary_identities;
          Alcotest.test_case "reduce" `Quick test_reduce_identities;
          Alcotest.test_case "dtype table" `Quick test_dtype_table;
          Alcotest.test_case "strides roundtrip" `Quick test_shape_strides_roundtrip;
        ] );
    ]
