(* The kernel traffic model (Kernel_plan.kernel_work): the L2 rule behind
   Table 5's read/write asymmetry and the per-group register-reuse rule
   behind dominant merging. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ew ?(grid = 1) elements =
  Thread_mapping.Elementwise { elements; block = 256; grid; rows = None }

let mk_op ?(scheme = Scheme.Local) ?(placement = Kernel_plan.Register)
    ?(recompute = 1) ?(group = 0) id mapping =
  { Kernel_plan.id; scheme; placement; mapping; recompute; group }

let mk_kernel ?(barriers = 0) name ops =
  {
    Kernel_plan.name;
    kind = Kernel_plan.Codegen;
    ops;
    launch = Launch.make ~grid:160 ~block:256 ();
    barriers;
    scratch_bytes = 0;
  }

let mk_plan g kernels =
  { Kernel_plan.arch = Arch.v100; graph = g; kernels;
    memcpys = 0; memsets = 0; memcpy_bytes = 0; batch = None }

(* x --tanh--> t --neg--> r, all 1024 floats (4KB each) *)
let chain_graph () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 1024 ] in
  let t = Builder.tanh b x in
  let r = Builder.neg b t in
  (Builder.finish b ~outputs:[ r ], x, t, r)

let test_fused_vs_split_writes () =
  let g, _, t, r = chain_graph () in
  (* fused: t stays in registers *)
  let fused =
    mk_kernel "fused"
      [ mk_op t (ew 1024); mk_op ~placement:Kernel_plan.Device_mem r (ew 1024) ]
  in
  let plan = mk_plan g [ fused ] in
  let w = Kernel_plan.kernel_work plan fused in
  check_int "fused reads param once" 4096 w.Cost_model.dram_read_bytes;
  check_int "fused writes output once" 4096 w.Cost_model.dram_write_bytes;
  (* split: t materialized, then re-read (but it is small: L2 hit) *)
  let k1 = mk_kernel "k1" [ mk_op ~placement:Kernel_plan.Device_mem t (ew 1024) ] in
  let k2 = mk_kernel "k2" [ mk_op ~placement:Kernel_plan.Device_mem r (ew 1024) ] in
  let plan2 = mk_plan g [ k1; k2 ] in
  let w1 = Kernel_plan.kernel_work plan2 k1 in
  let w2 = Kernel_plan.kernel_work plan2 k2 in
  check_int "k1 writes the intermediate" 4096 w1.Cost_model.dram_write_bytes;
  (* Table 5's structure: the split plan writes twice as much... *)
  check_int "split writes double" (2 * 4096)
    (w1.Cost_model.dram_write_bytes + w2.Cost_model.dram_write_bytes);
  (* ...but reads stay flat: k2's read of t hits L2 *)
  check_int "k2 read is an L2 hit" 0 w2.Cost_model.dram_read_bytes

let test_big_intermediate_misses_l2 () =
  (* a 4M-element (16MB) intermediate exceeds half of V100's 6MB L2 *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4_194_304 ] in
  let t = Builder.tanh b x in
  let r = Builder.neg b t in
  let g = Builder.finish b ~outputs:[ r ] in
  let k1 = mk_kernel "k1" [ mk_op ~placement:Kernel_plan.Device_mem t (ew ~grid:160 4_194_304) ] in
  let k2 = mk_kernel "k2" [ mk_op ~placement:Kernel_plan.Device_mem r (ew ~grid:160 4_194_304) ] in
  let plan = mk_plan g [ k1; k2 ] in
  let w2 = Kernel_plan.kernel_work plan k2 in
  check_int "k2 re-reads from DRAM" (4_194_304 * 4) w2.Cost_model.dram_read_bytes

let test_group_reload_rule () =
  (* one parameter consumed by two ops: same group loads once, two groups
     load twice (the operator-level reuse dominant merging buys) *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 1024 ] in
  let t = Builder.tanh b x in
  let s = Builder.sigmoid b x in
  let r = Builder.add b t s in
  let g = Builder.finish b ~outputs:[ r ] in
  let ops group_of =
    [
      mk_op ~group:(group_of 0) t (ew 1024);
      mk_op ~group:(group_of 1) s (ew 1024);
      mk_op ~group:(group_of 2) ~placement:Kernel_plan.Device_mem r (ew 1024);
    ]
  in
  let one_group = mk_kernel "merged" (ops (fun _ -> 0)) in
  let split_groups = mk_kernel "cones" (ops (fun i -> i)) in
  let plan1 = mk_plan g [ one_group ] in
  let plan2 = mk_plan g [ split_groups ] in
  let r1 = (Kernel_plan.kernel_work plan1 one_group).Cost_model.dram_read_bytes in
  let r2 = (Kernel_plan.kernel_work plan2 split_groups).Cost_model.dram_read_bytes in
  check_int "merged loads once" 4096 r1;
  check_int "split groups reload" (2 * 4096) r2

let test_recompute_inflates_insts_not_reads () =
  let g, _, t, r = chain_graph () in
  let base =
    mk_kernel "base"
      [ mk_op t (ew 1024); mk_op ~placement:Kernel_plan.Device_mem r (ew 1024) ]
  in
  let redundant =
    mk_kernel "redundant"
      [
        mk_op ~recompute:8 t (ew 1024);
        mk_op ~placement:Kernel_plan.Device_mem r (ew 1024);
      ]
  in
  let p1 = mk_plan g [ base ] and p2 = mk_plan g [ redundant ] in
  let w1 = Kernel_plan.kernel_work p1 base in
  let w2 = Kernel_plan.kernel_work p2 redundant in
  check "insts inflate" true (w2.Cost_model.fp32_insts > 7 * w1.Cost_model.fp32_insts);
  (* reloads are capped by the cache *)
  check "reads capped" true
    (w2.Cost_model.dram_read_bytes <= 4 * w1.Cost_model.dram_read_bytes)

let test_barrier_count_propagates () =
  let g, _, t, r = chain_graph () in
  let k =
    mk_kernel ~barriers:2 "b"
      [
        mk_op ~placement:Kernel_plan.Global_scratch ~scheme:Scheme.Global t (ew 1024);
        mk_op ~placement:Kernel_plan.Device_mem r (ew 1024);
      ]
  in
  let plan = mk_plan g [ k ] in
  let w = Kernel_plan.kernel_work plan k in
  check_int "barriers forwarded" 2 w.Cost_model.num_barriers;
  (* and the estimate charges them *)
  let est = Cost_model.estimate Arch.v100 k.launch w in
  check "barrier time" true (est.Cost_model.barrier_us > 5.0)

let test_scatter_atomics_counted () =
  let b = Builder.create () in
  let t = Builder.parameter b "t" [ 8; 4 ] in
  let ids = Builder.iota b ~axis:0 [ 16 ] in
  let gth = Builder.gather b t ids in
  let sc = Builder.scatter_add b ~rows:8 ids gth in
  let g = Builder.finish b ~outputs:[ sc ] in
  let plan = Astitch_core.Astitch.compile Arch.v100 g in
  let work =
    List.fold_left
      (fun acc k -> Cost_model.add_work acc (Kernel_plan.kernel_work plan k))
      Cost_model.no_work plan.kernels
  in
  check "atomics counted" true (work.Cost_model.atomic_insts >= 8 * 4)

let () =
  Alcotest.run "traffic"
    [
      ( "l2 model",
        [
          Alcotest.test_case "fused vs split writes" `Quick test_fused_vs_split_writes;
          Alcotest.test_case "big intermediate" `Quick test_big_intermediate_misses_l2;
          Alcotest.test_case "group reload" `Quick test_group_reload_rule;
          Alcotest.test_case "recompute insts" `Quick test_recompute_inflates_insts_not_reads;
          Alcotest.test_case "barriers" `Quick test_barrier_count_propagates;
          Alcotest.test_case "scatter atomics" `Quick test_scatter_atomics_counted;
        ] );
    ]
