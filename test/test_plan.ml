(* Planning layer: thread mappings, clustering, plan invariants. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Thread mappings ----------------------------------------------------- *)

let test_mapping_geometry () =
  let m =
    Thread_mapping.Row_reduce
      { rows = 750_000; row_length = 32; threads_per_row = 32;
        rows_per_block = 32; row_groups_per_block = 147; split = 1 }
  in
  Thread_mapping.validate m;
  check_int "block" 1024 (Thread_mapping.block m);
  check_int "grid" 160 (Thread_mapping.grid m);
  check "no atomics" false (Thread_mapping.uses_atomics m);
  let s =
    Thread_mapping.Row_reduce
      { rows = 64; row_length = 30_000; threads_per_row = 1024;
        rows_per_block = 1; row_groups_per_block = 1; split = 2 }
  in
  Thread_mapping.validate s;
  check_int "split grid" 128 (Thread_mapping.grid s);
  check "split atomics" true (Thread_mapping.uses_atomics s);
  check "split no contiguous outputs" true
    (Thread_mapping.contiguous_outputs_per_block s = None)

let test_mapping_validation () =
  (match
     Thread_mapping.validate
       (Thread_mapping.Row_reduce
          { rows = 4; row_length = 8; threads_per_row = 2048;
            rows_per_block = 1; row_groups_per_block = 1; split = 1 })
   with
  | () -> Alcotest.fail "oversized block must fail"
  | exception Thread_mapping.Invalid _ -> ());
  match
    Thread_mapping.validate
      (Thread_mapping.Row_reduce
         { rows = 4; row_length = 8; threads_per_row = 32; rows_per_block = 2;
           row_groups_per_block = 1; split = 2 })
  with
  | () -> Alcotest.fail "split+packing must fail"
  | exception Thread_mapping.Invalid _ -> ()

let test_mapping_alignment () =
  let red =
    Thread_mapping.Row_reduce
      { rows = 100; row_length = 64; threads_per_row = 64; rows_per_block = 16;
        row_groups_per_block = 1; split = 1 }
  in
  let grid = Thread_mapping.grid red in
  let aligned =
    Thread_mapping.Elementwise
      { elements = 6400; block = 1024; grid; rows = Some 100 }
  in
  check "aligned" true (Thread_mapping.block_aligned red aligned);
  let misaligned =
    Thread_mapping.Elementwise
      { elements = 6400; block = 1024; grid = grid + 1; rows = Some 100 }
  in
  check "grid mismatch" false (Thread_mapping.block_aligned red misaligned);
  let rowless =
    Thread_mapping.Elementwise { elements = 6400; block = 1024; grid; rows = None }
  in
  check "rowless" false (Thread_mapping.block_aligned red rowless)

(* --- Clustering ----------------------------------------------------------- *)

(* mem -> dot -> mem sandwich: clusters must not span the dot. *)
let sandwich_graph () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4; 4 ] in
  let a = Builder.tanh b x in
  let w = Builder.parameter b "w" [ 4; 4 ] in
  let d = Builder.dot b a w in
  let y = Builder.add b d a in (* reads across the compute op *)
  let out = Builder.sigmoid b y in
  (Builder.finish b ~outputs:[ out ], a, d, y, out)

let test_cluster_depth_split () =
  let g, a, d, y, out = sandwich_graph () in
  let depths = Clustering.compute_depths g in
  check_int "a depth" 0 depths.(a);
  check_int "y depth" 1 depths.(y);
  let cs = Clustering.clusters g in
  check_int "two clusters" 2 (List.length cs);
  let find_cluster n = List.find (fun c -> List.mem n c.Clustering.nodes) cs in
  check "a alone" true (find_cluster a != find_cluster y);
  check "y with out" true (find_cluster y == find_cluster out);
  check "dot not clustered" true
    (List.for_all (fun c -> not (List.mem d c.Clustering.nodes)) cs)

let test_remote_stitch_independent () =
  (* two disconnected memory-intensive chains merge *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 8 ] in
  let y = Builder.parameter b "y" [ 8 ] in
  let o1 = Builder.tanh b (Builder.neg b x) in
  let o2 = Builder.sigmoid b (Builder.abs b y) in
  let g = Builder.finish b ~outputs:[ o1; o2 ] in
  let cs = Clustering.clusters g in
  check_int "two before" 2 (List.length cs);
  let merged = Clustering.remote_stitch g cs in
  check_int "one after" 1 (List.length merged)

let test_remote_stitch_dependent () =
  (* chains linked through a dot must NOT merge (would be cyclic) *)
  let g, _, _, _, _ = sandwich_graph () in
  let cs = Clustering.clusters g in
  let merged = Clustering.remote_stitch g cs in
  check_int "still two" 2 (List.length merged)

let test_remote_stitch_width_cap () =
  let b = Builder.create () in
  let outs =
    List.init 6 (fun i ->
        Builder.tanh b (Builder.parameter b (Printf.sprintf "x%d" i) [ 4 ]))
  in
  let g = Builder.finish b ~outputs:outs in
  let merged = Clustering.remote_stitch ~max_merge_width:2 g (Clustering.clusters g) in
  check_int "3 groups of 2" 3 (List.length merged)

(* --- Plan invariants ------------------------------------------------------ *)

let tiny_plan_graph () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4; 8 ] in
  let t = Builder.tanh b x in
  let r = Builder.reduce_sum b ~axes:[ 1 ] t in
  (Builder.finish b ~outputs:[ r ], t, r)

let mk_op ?(scheme = Scheme.Local) ?(placement = Kernel_plan.Register)
    ?(recompute = 1) id mapping =
  { Kernel_plan.id; scheme; placement; mapping; recompute; group = 0 }

let ew elements =
  Thread_mapping.Elementwise { elements; block = 256; grid = 1; rows = None }

let test_check_catches_unavailable () =
  let g, t, r = tiny_plan_graph () in
  let k =
    {
      Kernel_plan.name = "k";
      kind = Kernel_plan.Codegen;
      ops = [ mk_op ~placement:Kernel_plan.Device_mem r (ew 4) ];
      launch = Launch.make ~grid:1 ~block:256 ();
      barriers = 0;
      scratch_bytes = 0;
    }
  in
  let plan =
    { Kernel_plan.arch = Arch.v100; graph = g; kernels = [ k ];
      memcpys = 0; memsets = 0; memcpy_bytes = 0; batch = None }
  in
  (match Kernel_plan.check plan with
  | () -> Alcotest.fail "reading tanh before computing it must fail"
  | exception Compile_error.Error _ -> ());
  (* fixed plan passes *)
  let k_ok = { k with ops = [ mk_op t (ew 32); mk_op ~placement:Kernel_plan.Device_mem r (ew 4) ] } in
  Kernel_plan.check { plan with kernels = [ k_ok ] }

let test_check_catches_register_escape () =
  let g, t, r = tiny_plan_graph () in
  let k1 =
    {
      Kernel_plan.name = "k1";
      kind = Kernel_plan.Codegen;
      ops = [ mk_op ~placement:Kernel_plan.Register t (ew 32) ];
      launch = Launch.make ~grid:1 ~block:256 ();
      barriers = 0;
      scratch_bytes = 0;
    }
  in
  let k2 = { k1 with name = "k2"; ops = [ mk_op ~placement:Kernel_plan.Device_mem r (ew 4) ] } in
  let plan =
    { Kernel_plan.arch = Arch.v100; graph = g; kernels = [ k1; k2 ];
      memcpys = 0; memsets = 0; memcpy_bytes = 0; batch = None }
  in
  match Kernel_plan.check plan with
  | () -> Alcotest.fail "register value escaping its kernel must fail"
  | exception Compile_error.Error _ -> ()

let test_check_catches_double_materialize () =
  let g, t, r = tiny_plan_graph () in
  let mk name ops =
    { Kernel_plan.name; kind = Kernel_plan.Codegen; ops;
      launch = Launch.make ~grid:1 ~block:256 (); barriers = 0; scratch_bytes = 0 }
  in
  let dev id n = mk_op ~placement:Kernel_plan.Device_mem id (ew n) in
  let plan =
    { Kernel_plan.arch = Arch.v100; graph = g;
      kernels = [ mk "a" [ dev t 32 ]; mk "b" [ dev t 32 ]; mk "c" [ dev r 4 ] ];
      memcpys = 0; memsets = 0; memcpy_bytes = 0; batch = None }
  in
  match Kernel_plan.check plan with
  | () -> Alcotest.fail "double materialization must fail"
  | exception Compile_error.Error _ -> ()

let test_check_barrier_required () =
  let g, t, r = tiny_plan_graph () in
  let k =
    {
      Kernel_plan.name = "k";
      kind = Kernel_plan.Codegen;
      ops =
        [
          mk_op ~placement:Kernel_plan.Global_scratch ~scheme:Scheme.Global t (ew 32);
          mk_op ~placement:Kernel_plan.Device_mem r (ew 4);
        ];
      launch = Launch.make ~grid:1 ~block:256 ();
      barriers = 0;
      scratch_bytes = 0;
    }
  in
  let plan =
    { Kernel_plan.arch = Arch.v100; graph = g; kernels = [ k ];
      memcpys = 0; memsets = 0; memcpy_bytes = 0; batch = None }
  in
  (match Kernel_plan.check plan with
  | () -> Alcotest.fail "global scratch without barrier must fail"
  | exception Compile_error.Error _ -> ());
  Kernel_plan.check { plan with kernels = [ { k with barriers = 1 } ] }

let test_toposort_kernels () =
  let g, t, r = tiny_plan_graph () in
  let mk name ops =
    { Kernel_plan.name; kind = Kernel_plan.Codegen; ops;
      launch = Launch.make ~grid:1 ~block:256 (); barriers = 0; scratch_bytes = 0 }
  in
  let dev id n = mk_op ~placement:Kernel_plan.Device_mem id (ew n) in
  let k_consumer = mk "consumer" [ dev r 4 ] in
  let k_producer = mk "producer" [ dev t 32 ] in
  (* given in the wrong order, toposort must fix it *)
  let sorted = Kernel_plan.toposort_kernels g [ k_consumer; k_producer ] in
  Alcotest.(check (list string)) "order" [ "producer"; "consumer" ]
    (List.map (fun (k : Kernel_plan.kernel) -> k.name) sorted)

(* --- kernel_work traffic -------------------------------------------------- *)

let test_kernel_work () =
  let g, t, r = tiny_plan_graph () in
  let k =
    {
      Kernel_plan.name = "k";
      kind = Kernel_plan.Codegen;
      ops =
        [
          mk_op t (ew 32);
          mk_op ~placement:Kernel_plan.Device_mem r (ew 4);
        ];
      launch = Launch.make ~grid:1 ~block:256 ();
      barriers = 0;
      scratch_bytes = 0;
    }
  in
  let plan =
    { Kernel_plan.arch = Arch.v100; graph = g; kernels = [ k ];
      memcpys = 0; memsets = 0; memcpy_bytes = 0; batch = None }
  in
  let w = Kernel_plan.kernel_work plan k in
  (* reads the 4x8 f32 parameter, writes the 4-element reduce result *)
  check_int "reads" (32 * 4) w.Astitch_simt.Cost_model.dram_read_bytes;
  check_int "writes" (4 * 4) w.Astitch_simt.Cost_model.dram_write_bytes;
  (* tanh: 28 insts x 32 elements; reduce: 32 accumulations *)
  check_int "insts" ((28 * 32) + 32) w.Astitch_simt.Cost_model.fp32_insts

(* --- Lowering helpers --------------------------------------------------------- *)

let test_lowering_helpers () =
  check_int "pow2 1" 1 (Lowering.next_pow2 0);
  check_int "pow2 5" 8 (Lowering.next_pow2 5);
  check_int "pow2 exact" 64 (Lowering.next_pow2 64);
  check_int "round 7->32" 32 (Lowering.round_up_to 32 7);
  check_int "round exact" 64 (Lowering.round_up_to 32 64);
  check_int "ceil" 4 (Lowering.ceil_div 7 2);
  (* threads_for_row: warp-rounded, capped at the block limit *)
  let tfr = Lowering.threads_for_row ~warp_size:32 ~max_block:1024 in
  check_int "tiny row" 32 (tfr 5);
  check_int "row 37" 64 (tfr 37);
  check_int "row 1024" 1024 (tfr 1024);
  check_int "huge row capped" 1024 (tfr 30_000)

let test_library_kernel_shape () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 64; 64 ] in
  let w = Builder.parameter b "w" [ 64; 64 ] in
  let d = Builder.dot b x w in
  let g = Builder.finish b ~outputs:[ d ] in
  let k = Lowering.library_kernel Arch.v100 g d in
  check "library kind" true (k.kind = Kernel_plan.Library);
  check_int "one op" 1 (List.length k.ops);
  check "grid bounded" true (k.launch.Launch.grid <= Arch.v100.num_sms * 8)

let test_memcpy_conventions () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4 ] in
  let y = Builder.tanh b x in
  let z = Builder.sigmoid b x in
  let g = Builder.finish b ~outputs:[ y; z ] in
  check_int "one DtoH per output" 2 (Lowering.output_memcpys g);
  check_int "output bytes" 32 (Lowering.output_bytes g)

(* --- Thread-mapping remaining branches ------------------------------------------ *)

let test_mapping_column_and_elementwise () =
  let col = Thread_mapping.Column_reduce { rows = 8; row_length = 64; block = 256; grid = 2 } in
  Thread_mapping.validate col;
  check "col atomics" true (Thread_mapping.uses_atomics col);
  check "col no contiguous" true (Thread_mapping.contiguous_outputs_per_block col = None);
  check "col no partition" true (Thread_mapping.row_partition col = None);
  let ew = Thread_mapping.Elementwise { elements = 100; block = 256; grid = 4; rows = None } in
  check_int "ew per block" 25 (Option.get (Thread_mapping.contiguous_outputs_per_block ew));
  check "strings" true
    (String.length (Thread_mapping.to_string col) > 0
    && String.length (Thread_mapping.to_string ew) > 0)

let test_remote_stitch_levels () =
  (* a 3-deep chain of clusters through compute ops keeps 3 levels *)
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4; 4 ] in
  let w = Builder.parameter b "w" [ 4; 4 ] in
  let a1 = Builder.tanh b x in
  let d1 = Builder.dot b a1 w in
  let a2 = Builder.sigmoid b d1 in
  let d2 = Builder.dot b a2 w in
  let a3 = Builder.relu b d2 in
  let g = Builder.finish b ~outputs:[ a3 ] in
  let groups = Clustering.remote_stitch_groups g (Clustering.clusters g) in
  check_int "three sequential groups" 3 (List.length groups);
  check "all singleton" true (List.for_all (fun grp -> List.length grp = 1) groups)

let () =
  Alcotest.run "plan"
    [
      ( "mapping",
        [
          Alcotest.test_case "geometry" `Quick test_mapping_geometry;
          Alcotest.test_case "validation" `Quick test_mapping_validation;
          Alcotest.test_case "alignment" `Quick test_mapping_alignment;
        ] );
      ( "clustering",
        [
          Alcotest.test_case "depth split" `Quick test_cluster_depth_split;
          Alcotest.test_case "remote merge" `Quick test_remote_stitch_independent;
          Alcotest.test_case "no cyclic merge" `Quick test_remote_stitch_dependent;
          Alcotest.test_case "width cap" `Quick test_remote_stitch_width_cap;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "availability" `Quick test_check_catches_unavailable;
          Alcotest.test_case "register escape" `Quick test_check_catches_register_escape;
          Alcotest.test_case "double materialize" `Quick test_check_catches_double_materialize;
          Alcotest.test_case "barrier required" `Quick test_check_barrier_required;
          Alcotest.test_case "toposort" `Quick test_toposort_kernels;
          Alcotest.test_case "kernel work" `Quick test_kernel_work;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "helpers" `Quick test_lowering_helpers;
          Alcotest.test_case "library kernel" `Quick test_library_kernel_shape;
          Alcotest.test_case "memcpy conventions" `Quick test_memcpy_conventions;
          Alcotest.test_case "column+elementwise" `Quick test_mapping_column_and_elementwise;
          Alcotest.test_case "remote levels" `Quick test_remote_stitch_levels;
        ] );
    ]
