(* The fused execution engine (tape lowering, register scalarization,
   per-block staging, the slot arena).

   The load-bearing claims, each tested directly:
   - fused execution is bit-identical to Executor.run and Interp.run on
     every zoo workload, across backends, context and non-context paths,
     and on QCheck-random graphs;
   - the slot arena never shares a backing buffer between overlapping
     live ranges, and the fused engine allocates strictly fewer full
     buffers than it executes ops on stitched plans;
   - Regional staging stays bit-identical when the block geometry does
     not divide the staged element count (irregular tail blocks);
   - kernels the tape cannot lower fall back to the reference path with
     a reason, and the mixed context is still bit-identical;
   - fit_shared demotes largest-first and keeps everything under budget;
   - Config.fused_exec is a runtime knob: it does not change the plan
     cache key. *)

open Astitch_ir
open Astitch_tensor
open Astitch_simt
open Astitch_plan
open Astitch_runtime

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let backend_named = function
  | "astitch" -> Astitch_core.Astitch.full_backend
  | "xla" -> Astitch_backends.Xla_backend.backend
  | "tf" -> Astitch_backends.Tf_backend.backend
  | n -> Alcotest.failf "unknown backend %s" n

let compile_tiny backend (e : Astitch_workloads.Zoo.entry) =
  (Session.compile (backend_named backend) Arch.v100 (e.tiny ())).Session.plan

let check_outputs msg expected got =
  check_int (msg ^ ": output count") (List.length expected) (List.length got);
  List.iteri
    (fun i (a, b) ->
      check_bool (Printf.sprintf "%s: output %d bitwise" msg i) true
        (Tensor.equal_approx ~eps:0. a b))
    (List.combine expected got)

(* --- Bit-identity --------------------------------------------------------- *)

(* fused == reference context == fresh run == interpreter, on two
   different parameter sets through the same context (exercises buffer
   and slab reuse across calls) *)
let test_zoo_bit_identical () =
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      List.iter
        (fun backend ->
          let plan = compile_tiny backend e in
          let g = plan.Kernel_plan.graph in
          let fused = Executor.create_context ~fused:true plan in
          let reference = Executor.create_context ~fused:false plan in
          List.iter
            (fun seed ->
              let params = Session.random_params ~seed g in
              let fo = Executor.run_context fused ~params in
              let label = Printf.sprintf "%s/%s/seed%d" e.name backend seed in
              check_outputs (label ^ " vs reference context")
                (Executor.run_context reference ~params)
                fo;
              check_outputs (label ^ " vs fresh run")
                (Executor.run plan ~params) fo;
              check_outputs (label ^ " vs interp") (Interp.run g ~params) fo)
            [ 7; 1902 ])
        [ "astitch"; "xla"; "tf" ])
    Astitch_workloads.Zoo.all

(* AStitch plans place on-chip values, so every zoo workload must fuse
   without fallbacks and allocate strictly fewer full buffers than it
   executes ops *)
let test_zoo_fewer_buffers_than_ops () =
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      let plan = compile_tiny "astitch" e in
      let ctx = Executor.create_context ~fused:true plan in
      check_int (e.name ^ ": no fallbacks") 0
        (List.length (Executor.context_fallbacks ctx));
      let r = Executor.exec_report ctx in
      check_bool
        (Printf.sprintf "%s: %d buffers < %d ops" e.name
           r.Profile.buffers_allocated r.Profile.nodes_executed)
        true
        (r.Profile.buffers_allocated < r.Profile.nodes_executed);
      (* scalarization must actually happen for the claim to mean much *)
      let params = Session.random_params ~seed:3 plan.Kernel_plan.graph in
      ignore (Executor.run_context ctx ~params);
      let r = Executor.exec_report ctx in
      check_bool (e.name ^ ": some bytes scalarized away") true
        (List.fold_left
           (fun acc (k : Profile.exec_kernel) -> acc + k.bytes_scalarized)
           0 r.Profile.exec_kernels
        > 0))
    Astitch_workloads.Zoo.all

let test_random_graphs_bit_identical =
  QCheck.Test.make ~count:30 ~name:"fused == run == interp (random graphs)"
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let g =
        Astitch_workloads.Synthetic.random_graph ~seed ~nodes:24 ()
      in
      let plan =
        (Session.compile Astitch_core.Astitch.full_backend Arch.v100 g)
          .Session.plan
      in
      let params = Session.random_params ~seed g in
      let ctx = Executor.create_context ~fused:true plan in
      let fo = Executor.run_context ctx ~params in
      let same a b =
        List.for_all2 (fun x y -> Tensor.equal_approx ~eps:0. x y) a b
      in
      same fo (Executor.run plan ~params) && same fo (Interp.run g ~params))

(* --- Slot arena ----------------------------------------------------------- *)

module Mem = Astitch_core.Mem_planner

let test_arena_reuse_and_exclusivity () =
  (* (node, elems, def, last): 1 dies before 3 defines -> same slot;
     2 overlaps both but is a different size anyway *)
  let assignments, slots =
    Mem.plan_slots [ (1, 16, 0, 1); (2, 8, 0, 3); (3, 16, 2, 3) ]
  in
  let slot_of n =
    (List.find (fun (a : Mem.slot_assignment) -> a.node = n) assignments)
      .slot
  in
  check_int "two buffers for three nodes" 2 (List.length slots);
  check_int "disjoint same-size lifetimes share a slot" (slot_of 1)
    (slot_of 3);
  check_bool "different sizes never share" true (slot_of 2 <> slot_of 1);
  Mem.check_slot_exclusive assignments;
  (* equal last/def positions overlap (the reader runs in the defining
     kernel's position or later): no reuse *)
  let a2, s2 = Mem.plan_slots [ (1, 16, 0, 2); (3, 16, 2, 3) ] in
  check_int "touching lifetimes do not share" 2 (List.length s2);
  Mem.check_slot_exclusive a2

let test_arena_exclusivity_raises () =
  let overlapping =
    [
      { Mem.node = 1; slot = 0; elems = 4; def_pos = 0; last_pos = 2 };
      { Mem.node = 2; slot = 0; elems = 4; def_pos = 1; last_pos = 3 };
    ]
  in
  match Mem.check_slot_exclusive overlapping with
  | () -> Alcotest.fail "expected Scratch_aliasing"
  | exception Compile_error.Error _ -> ()

let test_arena_random_exclusive =
  QCheck.Test.make ~count:200 ~name:"random intervals: slots stay exclusive"
    QCheck.(
      list_of_size Gen.(1 -- 30)
        (triple (int_bound 20) (int_bound 6) (int_bound 20)))
    (fun raw ->
      let entries =
        List.mapi
          (fun i (def, len, elems) ->
            (i, (4 * elems) + 4, def, def + len))
          raw
      in
      let assignments, slots = Mem.plan_slots entries in
      Mem.check_slot_exclusive assignments;
      List.length slots <= List.length entries)

(* --- fit_shared ----------------------------------------------------------- *)

let test_fit_shared () =
  (* under budget: untouched, original order *)
  let kept, demoted =
    Mem.fit_shared ~budget:500 [ (1, 100); (2, 50); (3, 200) ]
  in
  check_bool "under budget keeps everything in order" true
    (kept = [ (1, 100); (2, 50); (3, 200) ] && demoted = []);
  (* over budget: largest demoted first, until the remainder fits *)
  let kept, demoted =
    Mem.fit_shared ~budget:160 [ (1, 100); (2, 50); (3, 200) ]
  in
  check_bool "largest buffer demoted" true (demoted = [ (3, 200) ]);
  check_bool "survivors fit" true
    (List.fold_left (fun acc (_, b) -> acc + b) 0 kept <= 160);
  let _, demoted =
    Mem.fit_shared ~budget:50 [ (1, 80); (2, 60); (3, 40); (4, 20) ]
  in
  check_bool "multiple demotions, largest first" true
    (demoted = [ (1, 80); (2, 60); (3, 40) ])

(* --- Plan surgery helpers ------------------------------------------------- *)

(* rewrite the thread mapping of the first Shared_mem op found *)
let rewrite_first_shared plan ~mapping =
  let hit = ref None in
  let kernels =
    List.map
      (fun (k : Kernel_plan.kernel) ->
        let ops =
          List.map
            (fun (o : Kernel_plan.compiled_op) ->
              if
                !hit = None && o.placement = Kernel_plan.Shared_mem
              then begin
                hit := Some o.id;
                { o with mapping = mapping o }
              end
              else o)
            k.ops
        in
        { k with ops })
      plan.Kernel_plan.kernels
  in
  (!hit, { plan with kernels })

(* --- Regional staging at irregular block geometry -------------------------- *)

let test_irregular_staging () =
  let exercised = ref 0 in
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      let plan = compile_tiny "astitch" e in
      let g = plan.Kernel_plan.graph in
      (* force a block geometry whose per-block element count does not
         divide the staged total, so the last block is a short tail *)
      let hit, plan' =
        rewrite_first_shared plan ~mapping:(fun o ->
            let total = Graph.num_elements g o.id in
            let grid =
              (* smallest grid with an irregular tail, if one exists *)
              List.find_opt
                (fun grid ->
                  let bk = (total + grid - 1) / grid in
                  grid > 1 && bk > 0 && total mod bk <> 0)
                (List.init total (fun i -> i + 1))
              |> Option.value ~default:1
            in
            Thread_mapping.Elementwise
              { elements = total; block = 32; grid; rows = None })
      in
      match hit with
      | None -> ()
      | Some _ ->
          incr exercised;
          let ctx = Executor.create_context ~fused:true plan' in
          check_int (e.name ^ ": still fuses with irregular blocks") 0
            (List.length (Executor.context_fallbacks ctx));
          let params = Session.random_params ~seed:5 g in
          check_outputs
            (e.name ^ ": irregular staging bitwise")
            (Interp.run g ~params)
            (Executor.run_context ctx ~params);
          let r = Executor.exec_report ctx in
          check_bool (e.name ^ ": staging traffic recorded") true
            (Profile.exec_total_staged r > 0))
    Astitch_workloads.Zoo.all;
  check_bool "at least one workload staged irregularly" true (!exercised > 0)

(* --- Fallback vs demotion -------------------------------------------------- *)

(* A Shared_mem op mapped as a column reduce has no contiguous block
   geometry to stage per block.  At grid 1 the barrier a global staging
   needs is legal, so the tape now demotes the buffer to global scratch
   instead of falling back: zero fallbacks, bit-identical, and the exec
   report shows the demotion and the staged traffic. *)
let test_demotes_instead_of_falling_back () =
  let exercised = ref 0 in
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      let plan = compile_tiny "astitch" e in
      let g = plan.Kernel_plan.graph in
      let hit, plan' =
        rewrite_first_shared plan ~mapping:(fun o ->
            let total = Graph.num_elements g o.id in
            Thread_mapping.Column_reduce
              { rows = 1; row_length = total; block = 32; grid = 1 })
      in
      match hit with
      | None -> ()
      | Some _ ->
          incr exercised;
          let ctx = Executor.create_context ~fused:true plan' in
          check_int (e.name ^ ": demoted, not fallen back") 0
            (List.length (Executor.context_fallbacks ctx));
          let params = Session.random_params ~seed:5 g in
          check_outputs
            (e.name ^ ": demoted context bitwise")
            (Interp.run g ~params)
            (Executor.run_context ctx ~params);
          let r = Executor.exec_report ctx in
          let demotions, gstaged =
            List.fold_left
              (fun (d, s) (k : Profile.exec_kernel) ->
                (d + k.demotions, s + k.bytes_staged_global))
              (0, 0) r.Profile.exec_kernels
          in
          check_bool (e.name ^ ": demotion recorded") true (demotions > 0);
          check_bool (e.name ^ ": global staging traffic recorded") true
            (gstaged > 0))
    Astitch_workloads.Zoo.all;
  check_bool "at least one workload demoted" true (!exercised > 0)

(* The same surgery with the kernel grid widened past one co-resident
   wave: the demotion's barrier would deadlock, so the kernel genuinely
   falls back with the legality reason, and the mixed fused/reference
   context must still be bit-identical (the mapping is irrelevant to the
   reference path). *)
let test_illegal_demotion_falls_back () =
  let exercised = ref 0 in
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      let plan = compile_tiny "astitch" e in
      let g = plan.Kernel_plan.graph in
      let hit, plan' =
        rewrite_first_shared plan ~mapping:(fun o ->
            let total = Graph.num_elements g o.id in
            Thread_mapping.Column_reduce
              { rows = 1; row_length = total; block = 32; grid = 1 })
      in
      match hit with
      | None -> ()
      | Some hit_id ->
          incr exercised;
          (* widen the owning kernel's launch so no wave can co-resident
             the grid: Barrier.is_legal fails and the demotion is off *)
          let kernels =
            List.map
              (fun (k : Kernel_plan.kernel) ->
                if List.exists (fun (o : Kernel_plan.compiled_op) ->
                       o.id = hit_id) k.ops
                then
                  let block = k.launch.Launch.block in
                  let wide =
                    2 * Astitch_simt.Occupancy.blocks_per_wave Arch.v100
                          k.launch
                  in
                  { k with launch = Launch.make ~grid:wide ~block () }
                else k)
              plan'.Kernel_plan.kernels
          in
          let plan' = { plan' with kernels } in
          let ctx = Executor.create_context ~fused:true plan' in
          (match Executor.context_fallbacks ctx with
          | [ (_, reason) ] ->
              check_bool
                (e.name ^ ": reason names the co-residency limit")
                true
                (String.length reason > 0)
          | fs ->
              Alcotest.failf "%s: expected exactly 1 fallback, got %d"
                e.name (List.length fs));
          let params = Session.random_params ~seed:5 g in
          check_outputs
            (e.name ^ ": mixed context bitwise")
            (Interp.run g ~params)
            (Executor.run_context ctx ~params))
    Astitch_workloads.Zoo.all;
  check_bool "at least one workload fell back" true (!exercised > 0)

(* --- Global stitching execution -------------------------------------------- *)

let overflow_entries =
  [
    ("ASR-overflow", Astitch_workloads.Asr.overflow);
    ("DIEN-overflow", Astitch_workloads.Dien.overflow);
  ]

(* The shared-mem-overflow shapes must fuse without any fallback - the
   whole point of the global scheme - and run bit-identical to both
   reference paths while actually exercising global staging and
   in-kernel barriers. *)
let test_overflow_shapes_fuse_globally () =
  List.iter
    (fun (name, build) ->
      let g = build () in
      let plan =
        (Session.compile Astitch_core.Astitch.full_backend Arch.v100 g)
          .Session.plan
      in
      let ctx = Executor.create_context ~fused:true plan in
      check_int (name ^ ": fused without fallback") 0
        (List.length (Executor.context_fallbacks ctx));
      let params = Session.random_params ~seed:11 g in
      let fo = Executor.run_context ctx ~params in
      check_outputs (name ^ " vs fresh run") (Executor.run plan ~params) fo;
      check_outputs (name ^ " vs interp") (Interp.run g ~params) fo;
      let r = Executor.exec_report ctx in
      let staged, barriers =
        List.fold_left
          (fun (s, b) (k : Profile.exec_kernel) ->
            (s + k.bytes_staged_global, b + k.barriers_run))
          (0, 0) r.Profile.exec_kernels
      in
      check_bool (name ^ ": bytes staged globally") true (staged > 0);
      check_bool (name ^ ": barriers executed") true (barriers > 0))
    overflow_entries

(* Random graphs on an arch whose per-block shared memory is almost
   gone: any staged row overflows the budget, so nearly every kernel
   exercises demotion, global staging and the demote-vs-split gate -
   with tensors small enough for the interpreter.  Execution itself is
   arch-independent, so bit-identity still holds against the
   interpreter. *)
let tight_smem_arch =
  { Arch.v100 with name = "v100-tight-smem"; shared_mem_per_block = 128 }

let test_random_overflow_bit_identical =
  QCheck.Test.make ~count:25
    ~name:"fused == run == interp (shared-mem-overflow random graphs)"
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let g =
        Astitch_workloads.Synthetic.random_graph ~seed
          ~dims_pool:[ 2; 3; 5; 32 ] ~nodes:20 ()
      in
      let plan =
        (Session.compile Astitch_core.Astitch.full_backend tight_smem_arch g)
          .Session.plan
      in
      let params = Session.random_params ~seed g in
      let ctx = Executor.create_context ~fused:true plan in
      let fo = Executor.run_context ctx ~params in
      let same a b =
        List.for_all2 (fun x y -> Tensor.equal_approx ~eps:0. x y) a b
      in
      same fo (Executor.run plan ~params) && same fo (Interp.run g ~params))

(* demote-vs-split gating on both sides of the crossover *)
let test_gating_crossover () =
  let open Astitch_core.Global_gating in
  let launch = Launch.make ~grid:64 ~block:256 () in
  let v1 = gate Arch.v100 ~launch ~barriers:1 ~staged_bytes:4096 in
  check_bool "one cheap barrier: demote" true (v1.choice = Demote && v1.legal);
  check_bool "demote priced below split" true (v1.demote_us <= v1.split_us);
  let v8 = gate Arch.v100 ~launch ~barriers:8 ~staged_bytes:4096 in
  check_bool "eight barriers: split" true (v8.choice = Split && v8.legal);
  check_bool "split priced below demote" true (v8.split_us < v8.demote_us);
  (* the crossover tracks launch overhead: pricier launches demote again *)
  let cfg =
    {
      Astitch_simt.Cost_model.default_config with
      kernel_launch_overhead_us = 30.0;
    }
  in
  let v8' =
    gate ~config:cfg Arch.v100 ~launch ~barriers:8 ~staged_bytes:4096
  in
  check_bool "pricier launches: demote again" true (v8'.choice = Demote);
  (* illegality forces a split whatever the costs say *)
  let wide = Launch.make ~grid:100_000 ~block:1024 () in
  let vw = gate Arch.v100 ~launch:wide ~barriers:1 ~staged_bytes:4096 in
  check_bool "illegal barrier: forced split" true
    (vw.choice = Split && not vw.legal)

let test_disabled_engine_is_all_reference () =
  let plan = compile_tiny "astitch" (List.hd Astitch_workloads.Zoo.all) in
  let ctx = Executor.create_context ~fused:false plan in
  check_int "every kernel on the reference path"
    (List.length plan.Kernel_plan.kernels)
    (List.length (Executor.context_fallbacks ctx))

(* --- Config --------------------------------------------------------------- *)

let test_fused_exec_not_in_cache_key () =
  let open Astitch_core.Config in
  Alcotest.(check string)
    "fused_exec is runtime-only: same cache key either way"
    (cache_key full)
    (cache_key { full with fused_exec = false })

let () =
  Alcotest.run "fused"
    [
      ( "bit-identity",
        [
          Alcotest.test_case "zoo x backends x seeds" `Quick
            test_zoo_bit_identical;
          QCheck_alcotest.to_alcotest test_random_graphs_bit_identical;
        ] );
      ( "arena",
        [
          Alcotest.test_case "reuse and exclusivity" `Quick
            test_arena_reuse_and_exclusivity;
          Alcotest.test_case "overlap raises" `Quick
            test_arena_exclusivity_raises;
          QCheck_alcotest.to_alcotest test_arena_random_exclusive;
          Alcotest.test_case "fewer buffers than ops" `Quick
            test_zoo_fewer_buffers_than_ops;
        ] );
      ( "shared-memory",
        [
          Alcotest.test_case "fit_shared demotion order" `Quick
            test_fit_shared;
          Alcotest.test_case "irregular block staging" `Quick
            test_irregular_staging;
        ] );
      ( "fallback",
        [
          Alcotest.test_case "legal demotion instead of fallback" `Quick
            test_demotes_instead_of_falling_back;
          Alcotest.test_case "illegal demotion falls back with reason" `Quick
            test_illegal_demotion_falls_back;
          Alcotest.test_case "disabled engine" `Quick
            test_disabled_engine_is_all_reference;
        ] );
      ( "global",
        [
          Alcotest.test_case "overflow shapes fuse globally" `Quick
            test_overflow_shapes_fuse_globally;
          QCheck_alcotest.to_alcotest test_random_overflow_bit_identical;
          Alcotest.test_case "demote-vs-split crossover" `Quick
            test_gating_crossover;
        ] );
      ( "config",
        [
          Alcotest.test_case "fused_exec outside the cache key" `Quick
            test_fused_exec_not_in_cache_key;
        ] );
    ]
