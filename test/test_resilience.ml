(* The resilience contract (robustness PR):
   - under any injected fault, compilation either degrades to an
     interpreter-identical plan or returns a structured [Compile_error.t]
     -- never a bare exception, never silent wrong numerics;
   - with no faults, [Session.compile_resilient] is byte-identical to the
     plain AStitch compile and the degradation report is empty;
   - persistent faults (huge fuel at every site) still terminate at the
     kernel-per-op floor;
   - no backend lets a bare [Failure]/[Invalid_argument] escape through
     [Backend_intf.compile_result];
   - satellite units: non-raising [Pattern] probes, [combine_parts] on an
     empty group, [Fault.plan_of_string] round-trips. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan
open Astitch_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let arch = Arch.v100

let plan_to_string plan =
  Format.asprintf "%a" Kernel_plan.pp plan

(* --- Fault sweep: 5 sites x 100 seeds ------------------------------------ *)

(* The acceptance bar: every (site, seed) either compiles to a plan that
   matches the reference interpreter or returns a structured error. *)
let test_fault_sweep () =
  let ok = ref 0 and degraded = ref 0 and err = ref 0 in
  List.iter
    (fun site ->
      for seed = 0 to 99 do
        let mode = if seed mod 2 = 0 then Fault.Raise else Fault.Corrupt in
        let fuel = 1 + (seed mod 3) in
        let g =
          Astitch_workloads.Synthetic.random_graph ~seed ~nodes:40 ()
        in
        let config =
          {
            Astitch_core.Config.full with
            faults = [ Fault.plan ~mode ~seed ~fuel site ];
          }
        in
        match Session.compile_resilient ~config arch g with
        | Ok r ->
            incr ok;
            if not (Astitch_core.Degradation.is_empty r.report) then
              incr degraded;
            let params = Session.random_params g in
            ignore (Executor.run_and_check r.result.plan ~params)
        | Error _ -> incr err
        | exception e ->
            Alcotest.failf "site %s seed %d raised: %s"
              (Fault.site_to_string site) seed (Printexc.to_string e)
      done)
    Fault.all_sites;
  check_int "all 500 runs accounted for" 500 (!ok + !err);
  (* the ladder must actually be exercised, not just error out *)
  check "most runs still compile" true (!ok >= 450);
  check "some runs degrade" true (!degraded > 0)

(* --- No-fault identity ---------------------------------------------------- *)

let test_no_fault_identity () =
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      let g = e.tiny () in
      match Session.compile_resilient arch g with
      | Error err ->
          Alcotest.failf "%s: %s" e.name (Compile_error.to_string err)
      | Ok r ->
          check (e.name ^ " report empty") true
            (Astitch_core.Degradation.is_empty r.report);
          let plain = Astitch_core.Astitch.full_backend.compile arch g in
          Alcotest.(check string)
            (e.name ^ " plan identical")
            (plan_to_string plain)
            (plan_to_string r.result.plan))
    Astitch_workloads.Zoo.all

(* --- Persistent faults terminate ------------------------------------------ *)

(* Every site armed at once with effectively infinite fuel: the ladder
   must still bottom out (the kernel-per-op floor touches no fault site)
   with interpreter-identical numerics. *)
let test_persistent_faults_terminate () =
  List.iter
    (fun mode ->
      List.iter
        (fun (e : Astitch_workloads.Zoo.entry) ->
          let g = e.tiny () in
          let config =
            {
              Astitch_core.Config.full with
              faults =
                List.map
                  (fun site -> Fault.plan ~mode ~seed:7 ~fuel:10_000 site)
                  Fault.all_sites;
            }
          in
          match Session.compile_resilient ~config arch g with
          | Error _ -> ()
          | Ok r ->
              check
                (e.name ^ " degraded under persistent faults")
                true
                (not (Astitch_core.Degradation.is_empty r.report));
              let params = Session.random_params g in
              ignore (Executor.run_and_check r.result.plan ~params)
          | exception ex ->
              Alcotest.failf "%s (%s) raised: %s" e.name
                (Fault.mode_to_string mode) (Printexc.to_string ex))
        Astitch_workloads.Zoo.all)
    [ Fault.Raise; Fault.Corrupt ]

(* --- Structured errors only (qcheck) -------------------------------------- *)

let backends =
  [
    ("tf", Astitch_backends.Tf_backend.backend);
    ("xla", Astitch_backends.Xla_backend.backend);
    ("tvm", Astitch_backends.Tvm_backend.backend);
    ("ansor", Astitch_backends.Tvm_backend.ansor);
    ("trt", Astitch_backends.Trt_backend.backend);
    ("astitch", Astitch_core.Astitch.full_backend);
    ("atm", Astitch_core.Astitch.atm_backend);
    ("hdm", Astitch_core.Astitch.hdm_backend);
  ]

(* [compile_result] never raises, and faults armed around any backend only
   ever surface as [Ok] or structured [Error] -- in particular the
   AStitch-family backends, which pass through the instrumented sites. *)
let prop_structured_errors_only =
  QCheck2.Test.make ~name:"compile_result never lets an exception escape"
    ~count:100
    QCheck2.Gen.(
      triple (int_range 0 10_000) (int_range 20 60) (int_range 0 9))
    (fun (seed, nodes, site_ix) ->
      let g = Astitch_workloads.Synthetic.random_graph ~seed ~nodes () in
      let site = List.nth Fault.all_sites (site_ix mod 5) in
      let mode = if site_ix < 5 then Fault.Raise else Fault.Corrupt in
      let faults = [ Fault.plan ~mode ~seed ~fuel:2 site ] in
      List.for_all
        (fun (name, b) ->
          match
            Fault.with_faults faults (fun () ->
                Backend_intf.compile_result b arch g)
          with
          | Ok _ | Error _ -> true
          | exception e ->
              QCheck2.Test.fail_reportf "backend %s raised on seed %d: %s"
                name seed (Printexc.to_string e))
        backends)

(* [wrap] keeps the exception flow but narrows it to [Compile_error.Error]. *)
let prop_wrap_only_compile_error =
  QCheck2.Test.make ~name:"wrapped backends raise only Compile_error.Error"
    ~count:60
    QCheck2.Gen.(pair (int_range 0 5_000) (int_range 0 4))
    (fun (seed, site_ix) ->
      let g = Astitch_workloads.Synthetic.random_graph ~seed ~nodes:40 () in
      let site = List.nth Fault.all_sites site_ix in
      let faults = [ Fault.plan ~mode:Fault.Raise ~seed ~fuel:1 site ] in
      List.for_all
        (fun (name, b) ->
          let wrapped = Backend_intf.wrap b in
          match
            Fault.with_faults faults (fun () -> wrapped.compile arch g)
          with
          | _ -> true
          | exception Compile_error.Error _ -> true
          | exception e ->
              QCheck2.Test.fail_reportf "backend %s leaked %s on seed %d"
                name (Printexc.to_string e) seed)
        backends)

(* --- Satellite units ------------------------------------------------------ *)

let test_pattern_opt () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 6; 8 ] in
  let row = Builder.reduce_sum b ~axes:[ 1 ] x in
  let y = Builder.add b row row in
  let g = Builder.finish b ~outputs:[ y ] in
  check "reduce layout Some" true
    (Pattern.reduce_layout_opt g row = Some Pattern.Row_reduce);
  check "reduce geometry Some" true
    (Pattern.reduce_geometry_opt g row = Some (6, 8));
  check "non-reduce layout None" true (Pattern.reduce_layout_opt g y = None);
  check "non-reduce geometry None" true
    (Pattern.reduce_geometry_opt g y = None);
  (* the raising variants still raise, for callers that matched on it *)
  check "raising variant raises" true
    (match Pattern.reduce_layout g y with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_combine_parts_empty () =
  check "empty group combines to None" true
    (Astitch_core.Stitch_backend.combine_parts arch ~name:"empty" [] = None)

let test_fault_plan_round_trip () =
  List.iter
    (fun site ->
      List.iter
        (fun mode ->
          let p = Fault.plan ~mode ~seed:3 ~fuel:2 site in
          check
            (Fault.plan_to_string p ^ " round-trips")
            true
            (Fault.plan_of_string (Fault.plan_to_string p) = Some p))
        [ Fault.Raise; Fault.Corrupt ])
    Fault.all_sites;
  (* defaults and malformed specs *)
  check "site-only spec" true
    (Fault.plan_of_string "codegen" = Some (Fault.plan Fault.Codegen));
  check "unknown site rejected" true
    (Fault.plan_of_string "nonsense:raise" = None);
  check "unknown mode rejected" true
    (Fault.plan_of_string "codegen:explode" = None);
  check "non-numeric seed rejected" true
    (Fault.plan_of_string "codegen:raise:abc" = None)

let () =
  Alcotest.run "resilience"
    [
      ( "faults",
        [
          Alcotest.test_case "sweep 5 sites x 100 seeds" `Slow
            test_fault_sweep;
          Alcotest.test_case "persistent faults terminate" `Quick
            test_persistent_faults_terminate;
        ] );
      ( "identity",
        [
          Alcotest.test_case "no-fault plans match plain compile" `Quick
            test_no_fault_identity;
        ] );
      ( "contract",
        List.map QCheck_alcotest.to_alcotest
          [ prop_structured_errors_only; prop_wrap_only_compile_error ] );
      ( "satellites",
        [
          Alcotest.test_case "pattern opt probes" `Quick test_pattern_opt;
          Alcotest.test_case "combine_parts empty" `Quick
            test_combine_parts_empty;
          Alcotest.test_case "fault plan round-trip" `Quick
            test_fault_plan_round_trip;
        ] );
    ]
