(* The serving fast path: canonical fingerprints, the plan cache,
   reusable execution contexts, and parallel cluster compilation.

   The load-bearing claims, each tested directly:
   - fingerprints are invariant under node renumbering/dead code and
     sensitive to semantic changes (cache-key soundness);
   - a cache hit returns the identical compiled result, eviction is
     strict LRU, and degraded/fault-injected compiles never get cached;
   - run_context is bit-identical to a fresh Executor.run;
   - parallel cluster compilation is byte-identical to sequential on
     every zoo workload and on random graphs. *)

open Astitch_ir
open Astitch_tensor
open Astitch_simt
open Astitch_plan
open Astitch_runtime

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

module Fault = Fault_site

(* --- Graph fixtures ----------------------------------------------------- *)

(* softmax(x) + y, built straightforwardly *)
let serving_graph () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4; 8 ] in
  let y = Builder.parameter b "y" [ 4; 8 ] in
  Builder.finish b ~outputs:[ Builder.add b (Builder.softmax b x) y ]

(* the same computation with dead nodes interleaved: ids shift, live
   structure is identical *)
let serving_graph_with_dead () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4; 8 ] in
  let _dead1 = Builder.exp b x in
  let y = Builder.parameter b "y" [ 4; 8 ] in
  let _dead2 = Builder.mul b x x in
  Builder.finish b ~outputs:[ Builder.add b (Builder.softmax b x) y ]

(* one changed op kind: must fingerprint differently *)
let serving_graph_sub () =
  let b = Builder.create () in
  let x = Builder.parameter b "x" [ 4; 8 ] in
  let y = Builder.parameter b "y" [ 4; 8 ] in
  Builder.finish b ~outputs:[ Builder.sub b (Builder.softmax b x) y ]

(* --- Fingerprint -------------------------------------------------------- *)

let test_fingerprint_stable () =
  let g = serving_graph () in
  check_string "same graph, same fingerprint" (Fingerprint.of_graph g)
    (Fingerprint.of_graph (serving_graph ()))

let test_fingerprint_dead_code_invariant () =
  check_string "dead nodes do not change the fingerprint"
    (Fingerprint.of_graph (serving_graph ()))
    (Fingerprint.of_graph (serving_graph_with_dead ()))

let test_fingerprint_sensitive () =
  check_bool "changing one op kind changes the fingerprint" false
    (String.equal
       (Fingerprint.of_graph (serving_graph ()))
       (Fingerprint.of_graph (serving_graph_sub ())));
  (* shape changes too *)
  let shaped dims =
    let b = Builder.create () in
    let x = Builder.parameter b "x" dims in
    Builder.finish b ~outputs:[ Builder.relu b x ]
  in
  check_bool "changing a shape changes the fingerprint" false
    (String.equal
       (Fingerprint.of_graph (shaped [ 4; 8 ]))
       (Fingerprint.of_graph (shaped [ 8; 4 ])));
  (* parameter names are semantic (they key the bindings) *)
  let named n =
    let b = Builder.create () in
    let x = Builder.parameter b n [ 4 ] in
    Builder.finish b ~outputs:[ Builder.relu b x ]
  in
  check_bool "renaming a parameter changes the fingerprint" false
    (String.equal
       (Fingerprint.of_graph (named "x"))
       (Fingerprint.of_graph (named "weights")))

let test_fingerprint_output_order () =
  let two_outputs flip =
    let b = Builder.create () in
    let x = Builder.parameter b "x" [ 4 ] in
    let a = Builder.relu b x and c = Builder.exp b x in
    Builder.finish b ~outputs:(if flip then [ c; a ] else [ a; c ])
  in
  check_bool "output order is semantic" false
    (String.equal
       (Fingerprint.of_graph (two_outputs false))
       (Fingerprint.of_graph (two_outputs true)))

(* --- Plan cache --------------------------------------------------------- *)

let test_cache_hit_identity () =
  let cache = Session.make_cache () in
  let b = Astitch_core.Astitch.full_backend in
  let r1, o1 = Session.compile_cached cache b Arch.v100 (serving_graph ()) in
  let r2, o2 =
    (* a different construction of the same live graph still hits *)
    Session.compile_cached cache b Arch.v100 (serving_graph_with_dead ())
  in
  check_bool "first compile misses" true (o1 = Plan_cache.Miss);
  check_bool "second compile hits" true (o2 = Plan_cache.Hit);
  check_bool "hit returns the identical result" true (r1 == r2)

let test_cache_key_separates () =
  let cache = Session.make_cache () in
  let b = Astitch_core.Astitch.full_backend in
  let _ = Session.compile_cached cache b Arch.v100 (serving_graph ()) in
  let _, o_arch = Session.compile_cached cache b Arch.t4 (serving_graph ()) in
  let _, o_backend =
    Session.compile_cached cache Astitch_core.Astitch.atm_backend Arch.v100
      (serving_graph ())
  in
  let _, o_graph =
    Session.compile_cached cache b Arch.v100 (serving_graph_sub ())
  in
  check_bool "different arch misses" true (o_arch = Plan_cache.Miss);
  check_bool "different backend misses" true (o_backend = Plan_cache.Miss);
  check_bool "different graph misses" true (o_graph = Plan_cache.Miss)

let test_lru_eviction_order () =
  let cache : int Plan_cache.t = Plan_cache.create ~capacity:2 () in
  let key n = Plan_cache.key ~fingerprint:n ~arch:"v100" ~config:"c" in
  Plan_cache.add cache (key "a") 1;
  Plan_cache.add cache (key "b") 2;
  (* touch "a": now "b" is least recent *)
  check_bool "a present" true (Plan_cache.find cache (key "a") = Some 1);
  Plan_cache.add cache (key "c") 3;
  check_int "capacity respected" 2 (Plan_cache.length cache);
  check_bool "b evicted (LRU)" true (Plan_cache.find cache (key "b") = None);
  check_bool "a survives" true (Plan_cache.find cache (key "a") = Some 1);
  check_bool "c present" true (Plan_cache.find cache (key "c") = Some 3);
  let s = Plan_cache.stats cache in
  check_int "one eviction" 1 s.Plan_cache.evictions;
  (* re-adding an existing key must not evict *)
  Plan_cache.add cache (key "a") 10;
  check_int "replace does not evict" 1
    (Plan_cache.stats cache).Plan_cache.evictions;
  check_bool "replaced value" true (Plan_cache.find cache (key "a") = Some 10)

let test_stats_printer_invariant () =
  let cache : int Plan_cache.t = Plan_cache.create ~capacity:2 () in
  let key n = Plan_cache.key ~fingerprint:n ~arch:"v100" ~config:"c" in
  Plan_cache.add cache (key "a") 1;
  Plan_cache.add cache (key "b") 2;
  Plan_cache.add cache (key "c") 3 (* evicts the LRU entry *);
  ignore (Plan_cache.remove cache (key "c"));
  let s = Plan_cache.stats cache in
  let printed = Format.asprintf "%a" Plan_cache.pp_stats s in
  (* Every counter the invariant needs must be readable off the printed
     line - in particular [removals], which the printer used to omit. *)
  let contains sub =
    let n = String.length sub and len = String.length printed in
    let rec go i = i + n <= len && (String.sub printed i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (count, label) ->
      check_bool
        (Printf.sprintf "printed stats mention %S" label)
        true
        (contains (Printf.sprintf "%d %s" count label)))
    [
      (s.Plan_cache.insertions, "insertions");
      (s.Plan_cache.evictions, "evictions");
      (s.Plan_cache.removals, "removals");
      (s.Plan_cache.bypasses, "bypasses");
    ];
  check_int "length = insertions - evictions - removals"
    (Plan_cache.length cache)
    (s.Plan_cache.insertions - s.Plan_cache.evictions - s.Plan_cache.removals)

let test_entries_fold () =
  let cache : int Plan_cache.t = Plan_cache.create ~capacity:8 () in
  let key n = Plan_cache.key ~fingerprint:n ~arch:"v100" ~config:"c" in
  List.iter (fun (k, v) -> Plan_cache.add cache (key k) v)
    [ ("a", 1); ("b", 2); ("c", 3) ];
  let entries =
    List.sort compare (List.map snd (Plan_cache.entries cache))
  in
  check_bool "entries snapshot all values" true (entries = [ 1; 2; 3 ]);
  let sum = Plan_cache.fold (fun acc _k v -> acc + v) 0 cache in
  check_int "fold visits every entry" 6 sum;
  (* iteration must not perturb recency or hit/miss accounting *)
  let s = Plan_cache.stats cache in
  check_int "no hits from iteration" 0 s.Plan_cache.hits;
  check_int "no misses from iteration" 0 s.Plan_cache.misses

let test_fault_injected_compile_bypasses_cache () =
  let g = serving_graph () in
  (* a Corrupt fault that fires somewhere in the pipeline *)
  List.iter
    (fun site ->
      let cache = Session.make_cache () in
      let config =
        {
          Astitch_core.Config.full with
          faults = [ Fault.plan ~mode:Fault.Corrupt ~fuel:max_int site ];
        }
      in
      let b = Astitch_core.Astitch.backend ~config () in
      match Session.compile_cached cache b Arch.v100 g with
      | _, outcome ->
          check_bool
            (Fault.site_to_string site ^ " corrupt compile not cached")
            true
            (outcome = Plan_cache.Bypassed);
          check_int
            (Fault.site_to_string site ^ " cache stays empty")
            0 (Plan_cache.length cache)
      | exception _ ->
          (* corruption made the compile fail outright (structured or
             bare, e.g. an unlaunchable config): nothing was cached *)
          check_int
            (Fault.site_to_string site ^ " cache stays empty")
            0 (Plan_cache.length cache))
    Fault.all_sites

let test_degraded_compile_bypasses_cache () =
  let g = serving_graph () in
  let cache = Session.make_resilient_cache () in
  let config =
    {
      Astitch_core.Config.full with
      faults =
        [ Fault.plan ~mode:Fault.Raise ~fuel:1 Fault.Launch_config ];
    }
  in
  (match Session.compile_resilient_cached ~config cache Arch.v100 g with
  | Ok r, outcome ->
      check_bool "fault produced a degradation" true
        (not (Astitch_core.Degradation.is_empty r.Session.report));
      check_bool "degraded result bypassed" true
        (outcome = Plan_cache.Bypassed);
      check_int "nothing cached" 0 (Plan_cache.length cache)
  | Error _, _ -> Alcotest.fail "resilient compile should degrade, not fail");
  (* the same cache serves clean compiles normally afterwards *)
  let clean_cache = Session.make_resilient_cache () in
  (match Session.compile_resilient_cached clean_cache Arch.v100 g with
  | Ok _, o1 ->
      check_bool "clean compile misses then caches" true (o1 = Plan_cache.Miss)
  | Error _, _ -> Alcotest.fail "clean compile failed");
  match Session.compile_resilient_cached clean_cache Arch.v100 g with
  | Ok _, o2 -> check_bool "clean recompile hits" true (o2 = Plan_cache.Hit)
  | Error _, _ -> Alcotest.fail "clean recompile failed"

(* --- Execution contexts ------------------------------------------------- *)

let context_workloads () =
  [ ("serving", serving_graph ()) ]
  @ List.map
      (fun (e : Astitch_workloads.Zoo.entry) -> (e.name, e.tiny ()))
      Astitch_workloads.Zoo.all

let test_context_bit_identical () =
  List.iter
    (fun (name, g) ->
      let plan = Astitch_core.Astitch.compile Arch.v100 g in
      let ctx = Executor.create_context plan in
      (* several rounds with different params: buffer reuse must never
         leak one run's values into the next *)
      List.iter
        (fun seed ->
          let params = Session.random_params ~seed g in
          let fresh = Executor.run plan ~params in
          let reused = Executor.run_context ctx ~params in
          List.iteri
            (fun i (a, b) ->
              if not (Tensor.equal_approx ~eps:0. a b) then
                Alcotest.failf
                  "%s (seed %d) output %d: context diverges from run by %g"
                  name seed i (Tensor.max_abs_diff a b))
            (List.combine fresh reused))
        [ 1; 7; 1902 ])
    (context_workloads ())

let test_context_across_backends () =
  let g = serving_graph () in
  let params = Session.random_params g in
  List.iter
    (fun (b : Backend_intf.t) ->
      let plan = b.compile Arch.v100 g in
      let ctx = Executor.create_context plan in
      let fresh = Executor.run plan ~params in
      let reused = Executor.run_context ctx ~params in
      List.iter2
        (fun a b' ->
          check_bool
            (Printf.sprintf "%s context bit-identical" b.name)
            true
            (Tensor.equal_approx ~eps:0. a b'))
        fresh reused)
    [
      Astitch_backends.Tf_backend.backend;
      Astitch_backends.Xla_backend.backend;
      Astitch_core.Astitch.full_backend;
    ]

let test_context_missing_param () =
  let g = serving_graph () in
  let plan = Astitch_core.Astitch.compile Arch.v100 g in
  let ctx = Executor.create_context plan in
  let params = Session.random_params g in
  (* dropping a binding raises the interpreter's error, as run does *)
  match Executor.run_context ctx ~params:(List.tl params) with
  | _ -> Alcotest.fail "expected Missing_parameter"
  | exception Interp.Missing_parameter _ -> ()

(* --- Parallel compilation ----------------------------------------------- *)

let marshal_plan (p : Kernel_plan.t) = Marshal.to_string p []

let parallel_config domains =
  { Astitch_core.Config.full with compile_domains = domains }

let test_parallel_equals_sequential_zoo () =
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      let g = e.tiny () in
      let seq =
        Astitch_core.Astitch.compile ~config:(parallel_config 1) Arch.v100 g
      in
      let par =
        Astitch_core.Astitch.compile ~config:(parallel_config 4) Arch.v100 g
      in
      check_bool (e.name ^ ": parallel plan byte-identical") true
        (String.equal (marshal_plan seq) (marshal_plan par)))
    Astitch_workloads.Zoo.all

let test_parallel_equals_sequential_resilient () =
  List.iter
    (fun (e : Astitch_workloads.Zoo.entry) ->
      let g = e.tiny () in
      let compile domains =
        match
          Session.compile_resilient ~config:(parallel_config domains)
            Arch.v100 g
        with
        | Ok r -> (marshal_plan r.Session.result.plan, r.Session.report)
        | Error e -> Alcotest.failf "resilient compile failed: %s"
                       (Compile_error.to_string e)
      in
      let plan_seq, report_seq = compile 1 in
      let plan_par, report_par = compile 4 in
      check_bool (e.name ^ ": resilient parallel byte-identical") true
        (String.equal plan_seq plan_par);
      check_int (e.name ^ ": same degradation events")
        (List.length report_seq) (List.length report_par))
    Astitch_workloads.Zoo.all

let test_parallel_equals_sequential_random =
  QCheck.Test.make ~count:30 ~name:"parallel compile == sequential (random)"
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let g = Astitch_workloads.Synthetic.random_graph ~seed ~nodes:24 () in
      let compile domains =
        match
          Astitch_core.Astitch.compile ~config:(parallel_config domains)
            Arch.v100 g
        with
        | p -> Ok (marshal_plan p)
        | exception Compile_error.Error e -> Error (Compile_error.to_string e)
      in
      compile 1 = compile 3)

let test_parallel_map_exception_order () =
  (* lowest failing index wins, as in a sequential left-to-right map *)
  match
    Astitch_core.Parallel.mapi ~domains:4
      (fun i () -> if i >= 2 then failwith (string_of_int i) else i)
      [ (); (); (); (); () ]
  with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure m -> check_string "first failure surfaced" "2" m

let () =
  Alcotest.run "serving"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "stable across constructions" `Quick
            test_fingerprint_stable;
          Alcotest.test_case "dead-code invariant" `Quick
            test_fingerprint_dead_code_invariant;
          Alcotest.test_case "semantically sensitive" `Quick
            test_fingerprint_sensitive;
          Alcotest.test_case "output order sensitive" `Quick
            test_fingerprint_output_order;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit returns identical plan" `Quick
            test_cache_hit_identity;
          Alcotest.test_case "key separates arch/config/graph" `Quick
            test_cache_key_separates;
          Alcotest.test_case "LRU eviction order" `Quick
            test_lru_eviction_order;
          Alcotest.test_case "stats printer invariant" `Quick
            test_stats_printer_invariant;
          Alcotest.test_case "entries/fold snapshot" `Quick test_entries_fold;
          Alcotest.test_case "fault-injected compiles bypass" `Quick
            test_fault_injected_compile_bypasses_cache;
          Alcotest.test_case "degraded compiles bypass" `Quick
            test_degraded_compile_bypasses_cache;
        ] );
      ( "context",
        [
          Alcotest.test_case "bit-identical to run (zoo)" `Quick
            test_context_bit_identical;
          Alcotest.test_case "bit-identical across backends" `Quick
            test_context_across_backends;
          Alcotest.test_case "missing parameter raises" `Quick
            test_context_missing_param;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "zoo plans byte-identical" `Quick
            test_parallel_equals_sequential_zoo;
          Alcotest.test_case "resilient plans byte-identical" `Quick
            test_parallel_equals_sequential_resilient;
          QCheck_alcotest.to_alcotest test_parallel_equals_sequential_random;
          Alcotest.test_case "exception order deterministic" `Quick
            test_parallel_map_exception_order;
        ] );
    ]
