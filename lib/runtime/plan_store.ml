(* Persistent plan store: a directory of Plan_codec-encoded plans, one
   file per (fingerprint, arch) at the current codec version.

   Failure philosophy: the store is an accelerator, not a source of
   truth.  Every load failure - missing file, unreadable file, bad
   magic, version skew, corruption - degrades to "recompile", so the
   worst a damaged store can do is cost the cold compile the caller was
   prepared to pay anyway.  Saves are tmp+rename atomic per plan so a
   crash mid-save leaves either the old file or none, never a torn one
   that a later load would have to reject. *)

open Astitch_ir
open Astitch_plan

type t = { dir : string }

let dir t = t.dir

(* mkdir -p: create missing path components, tolerate racing creators. *)
let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ~dir =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  { dir }

(* Fingerprints are hex digests (filename-safe by construction); arch
   names are usually "v100"/"t4"/"a100" but tests register synthetic
   arches with arbitrary names, so mangle anything risky. *)
let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' -> c
      | _ -> '_')
    s

let suffix = ".plan"

let filename ~fingerprint ~arch =
  Printf.sprintf "%s-%s-v%d%s" (sanitize fingerprint) (sanitize arch)
    Plan_codec.version suffix

let path t ~fingerprint ~arch = Filename.concat t.dir (filename ~fingerprint ~arch)

let write_file path data =
  (* Unique-enough tmp name: pid disambiguates concurrent processes;
     within a process saves of the same key are idempotent anyway. *)
  let tmp =
    Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data);
  Sys.rename tmp path

let save t ~fingerprint ~arch plan =
  match write_file (path t ~fingerprint ~arch) (Plan_codec.encode plan) with
  | () -> Ok ()
  | exception Sys_error m -> Error m
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

type load = Loaded of Kernel_plan.t | Absent | Rejected of string

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load t ~fingerprint ~arch =
  let p = path t ~fingerprint ~arch in
  if not (Sys.file_exists p) then Absent
  else
    match read_file p with
    | exception Sys_error m -> Rejected m
    | exception End_of_file -> Rejected (p ^ ": short read")
    | bytes -> (
        match Plan_codec.decode bytes with
        | Ok plan -> Loaded plan
        | Error e ->
            Rejected
              (Printf.sprintf "%s: %s" (Filename.basename p)
                 (Plan_codec.error_to_string e)))

(* Persist a session cache.  The (fingerprint, arch) address of each
   entry is recovered from the plan itself - the graph travels inside
   the plan and Fingerprint.of_graph is canonical - so this never has
   to parse cache-key strings.  Only entries compiled by [backend] are
   saved: the store holds one compiler identity (see mli). *)
let save_session_cache t ~backend (cache : Session.cache) =
  List.fold_left
    (fun (saved, failed) (_key, (r : Session.result)) ->
      if r.backend_name <> backend then (saved, failed)
      else
        let fingerprint = Fingerprint.of_graph r.plan.Kernel_plan.graph in
        let arch = r.plan.Kernel_plan.arch.Astitch_simt.Arch.name in
        match save t ~fingerprint ~arch r.plan with
        | Ok () -> (saved + 1, failed)
        | Error _ -> (saved, failed + 1))
    (0, 0) (Plan_cache.entries cache)

let list t =
  let want_suffix = Printf.sprintf "-v%d%s" Plan_codec.version suffix in
  Sys.readdir t.dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f want_suffix)
  |> List.sort compare
