(** Simulated nvprof: per-kernel estimates, the MEM/compute/OVERHEAD
    breakdown of Figure 13, Table 5's aggregate counters and the
    top-k% occupancy/SM-efficiency analyses of Figures 14-16. *)

open Astitch_simt
open Astitch_plan

type kernel_profile = {
  kernel : Kernel_plan.kernel;
  work : Cost_model.work;
  estimate : Cost_model.estimate;
}

type t = {
  plan : Kernel_plan.t;
  kernels : kernel_profile list;
  mem_time_us : float;
  compute_time_us : float;
  overhead_us : float;
  total_time_us : float;
}

val profile : ?config:Cost_model.config -> Kernel_plan.t -> t

type counters = {
  dram_read_transactions : int;
  dram_write_transactions : int;
  inst_fp32 : int;
}

val zero_counters : counters

val mem_counters : t -> counters
(** Aggregated over memory-intensive kernels only (as in Table 5). *)

val mem_kernels_by_time : t -> kernel_profile list
(** Memory-intensive kernels, descending execution time. *)

val top_mem_kernels : frac:float -> t -> kernel_profile list
(** Kernels covering the top [frac] of memory-intensive execution time. *)

val avg_occupancy : kernel_profile list -> float
val avg_sm_efficiency : kernel_profile list -> float
val mem_kernel_count : t -> int
val pp_breakdown : Format.formatter -> t -> unit

(** {1 Measured execution profiling}

    Filled by the fused execution engine: static byte accounting at
    context-creation time, mutable counters (staging traffic, wall time
    when timing is enabled) updated as the context runs. *)

type exec_kernel = {
  kname : string;
  fused : bool;
  fallback : string option;
      (** why the kernel runs on the reference path *)
  ops : int;
  demotions : int;  (** regional ops demoted to global staging *)
  mutable loops : int;  (** materialization loops the fused tape runs *)
  mutable bytes_materialized : int;  (** full-buffer bytes written per run *)
  mutable bytes_scalarized : int;  (** register values never materialized *)
  mutable slab_bytes : int;  (** shared-slab capacity for staged values *)
  mutable bytes_staged : int;  (** slab fills, accumulated across runs *)
  mutable restages : int;  (** slab fills beyond one pass per consumer *)
  mutable gscratch_bytes : int;  (** global-scratch slot capacity *)
  mutable bytes_staged_global : int;
      (** cross-block scratch fills, accumulated across runs *)
  mutable barriers_run : int;
      (** global barrier points executed, accumulated across runs *)
  mutable wall_ns : float;  (** accumulated when timing is enabled *)
  mutable runs : int;
}

type exec_report = {
  exec_kernels : exec_kernel list;  (** plan order *)
  nodes_executed : int;  (** ops across all kernels *)
  buffers_requested : int;
      (** values the reference path would materialize *)
  buffers_allocated : int;  (** arena slots actually backing them *)
  arena_bytes : int;  (** arena high-water mark *)
  naive_bytes : int;  (** full-buffer bytes without scalarization/arena *)
}

val exec_total_staged : exec_report -> int

val exec_fallback_kernels : exec_report -> int
(** Kernels running on the reference path (those with a fallback reason). *)

val fallback_breakdown : exec_report -> (string * int) list
(** Fallback reasons grouped with op/kernel ids squashed to ["N"], with
    per-reason kernel counts, most frequent first. *)

val pp_exec : Format.formatter -> exec_report -> unit

val publish_exec : ?metrics:Astitch_obs.Metrics.t -> exec_report -> unit
(** Publish the report's counters into a metrics registry (default: the
    process-wide one): byte/kernel counters accumulate, arena capacity is
    a high-water gauge, and per-kernel mean wall time (timed contexts
    only) feeds the ["exec.kernel_wall_us"] histogram. *)
