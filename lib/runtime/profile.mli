(** Simulated nvprof: per-kernel estimates, the MEM/compute/OVERHEAD
    breakdown of Figure 13, Table 5's aggregate counters and the
    top-k% occupancy/SM-efficiency analyses of Figures 14-16. *)

open Astitch_simt
open Astitch_plan

type kernel_profile = {
  kernel : Kernel_plan.kernel;
  work : Cost_model.work;
  estimate : Cost_model.estimate;
}

type t = {
  plan : Kernel_plan.t;
  kernels : kernel_profile list;
  mem_time_us : float;
  compute_time_us : float;
  overhead_us : float;
  total_time_us : float;
}

val profile : ?config:Cost_model.config -> Kernel_plan.t -> t

type counters = {
  dram_read_transactions : int;
  dram_write_transactions : int;
  inst_fp32 : int;
}

val zero_counters : counters

val mem_counters : t -> counters
(** Aggregated over memory-intensive kernels only (as in Table 5). *)

val mem_kernels_by_time : t -> kernel_profile list
(** Memory-intensive kernels, descending execution time. *)

val top_mem_kernels : frac:float -> t -> kernel_profile list
(** Kernels covering the top [frac] of memory-intensive execution time. *)

val avg_occupancy : kernel_profile list -> float
val avg_sm_efficiency : kernel_profile list -> float
val mem_kernel_count : t -> int
val pp_breakdown : Format.formatter -> t -> unit
