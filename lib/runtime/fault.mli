(** Deterministic fault-injection harness over the compiler's named
    sites.  Proves the resilience contract: under any injected fault,
    compilation either degrades to an interpreter-identical plan or
    returns a structured error — never a bare exception. *)

type site = Astitch_plan.Fault_site.site =
  | Clustering
  | Dominant_merging
  | Mem_planning
  | Launch_config
  | Codegen

type mode = Astitch_plan.Fault_site.mode = Raise | Corrupt

type plan = Astitch_plan.Fault_site.plan = {
  site : site;
  mode : mode;
  seed : int;
  fuel : int;
}

val all_sites : site list
val site_to_string : site -> string
val site_of_string : string -> site option
val mode_to_string : mode -> string
val mode_of_string : string -> mode option

val plan : ?mode:mode -> ?seed:int -> ?fuel:int -> site -> plan
(** Defaults: [mode = Raise], [seed = 0], [fuel = 1]. *)

val plan_of_string : string -> plan option
(** Parse ["site:mode[:seed[:fuel]]"] — the CLI's [--inject] syntax. *)

val plan_to_string : plan -> string

val inject : plan list -> unit
(** Arm the registry (replaces any armed set, resets the counter). *)

val clear : unit -> unit
val fired : unit -> int
val active : unit -> bool

val with_faults : plan list -> (unit -> 'a) -> 'a
(** Arm, run, disarm (even on exceptions). *)
