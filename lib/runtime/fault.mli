(** Deterministic fault-injection harness over the compiler's and the
    serving runtime's named sites.  Proves the resilience contract:
    under any injected fault, compilation either degrades to an
    interpreter-identical plan or returns a structured error, and
    serving resolves every admitted request to a structured outcome —
    never a bare exception, never silent wrong numerics, never a lost
    request. *)

type site = Astitch_plan.Fault_site.site =
  | Clustering
  | Dominant_merging
  | Mem_planning
  | Launch_config
  | Codegen
  | Kernel_exec
  | Staged_restage
  | Pack
  | Unpack
  | Worker_loop

type mode = Astitch_plan.Fault_site.mode = Raise | Corrupt | Stall

type plan = Astitch_plan.Fault_site.plan = {
  site : site;
  mode : mode;
  seed : int;
  fuel : int;
}

exception
  Runtime_fault of { site : site; seed : int; pass : string }
(** Alias of {!Astitch_plan.Fault_site.Runtime_fault}: a runtime-site
    [Raise] firing.  Serving supervision catches it (like any other
    worker exception) and resolves the batch's requests by retry or
    fallback — it must never escape to a caller. *)

val all_sites : site list
(** The compile-pipeline sites (the resilience sweeps index into this
    list positionally). *)

val runtime_sites : site list
(** The serving-runtime sites: kernel-exec, staged-restage, pack,
    unpack, worker-loop. *)

val every_site : site list

val is_runtime_site : site -> bool
val site_to_string : site -> string
val site_of_string : string -> site option
val mode_to_string : mode -> string
val mode_of_string : string -> mode option

val plan : ?mode:mode -> ?seed:int -> ?fuel:int -> site -> plan
(** Defaults: [mode = Raise], [seed = 0], [fuel = 1]. *)

val plan_of_string : string -> plan option
(** Parse ["site:mode[:seed[:fuel]]"] — the CLI's [--inject] syntax. *)

val plan_to_string : plan -> string

val inject : plan list -> unit
(** Arm the registry (replaces any armed set, resets the counters). *)

val clear : unit -> unit
val fired : unit -> int
val active : unit -> bool

val with_faults : plan list -> (unit -> 'a) -> 'a
(** Arm, run, disarm (even on exceptions). *)
