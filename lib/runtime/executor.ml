(* Plan execution: computes real tensor values by walking the plan's
   kernels in order.

   Stitching never changes numerics - each op still evaluates its operands
   element-wise exactly as the reference interpreter does - so executing a
   plan must reproduce Interp.run bit-for-bit.  What execution adds over
   the interpreter is plan discipline: ops are only evaluated when their
   kernel runs, and operands must already be available under the plan's
   own ordering (the structural side is validated by Kernel_plan.check;
   violations surface here as reads of never-computed nodes). *)

open Astitch_ir
open Astitch_tensor
open Astitch_plan
module Trace = Astitch_obs.Trace

exception Execution_error of string

(* --- Runtime fault instrumentation --------------------------------------

   The reusable-context path ([create_context]/[run_context]) carries two
   of the serving runtime's fault sites: [Kernel_exec] fires after each
   kernel executes, [Staged_restage] inside slab refills.  [run] is
   deliberately NOT instrumented: it is the terminal rung of the serving
   degradation ladder (the per-request fallback), and keeping it
   fault-free is what guarantees every request resolves to a structured
   outcome even under persistent injected faults.

   Corrupt mode perturbs one cell of a live buffer in place - silent
   numeric damage with no exception, which only the serving layer's
   poisoned-batch detection (comparing the fired counter around each
   batch) can catch. *)
let corrupt_cell arr seed =
  let n = Array.length arr in
  if n > 0 then begin
    let i = abs seed mod n in
    arr.(i) <- arr.(i) +. 1.0 +. float_of_int (seed land 0xff)
  end

let run (plan : Kernel_plan.t) ~params : Tensor.t list =
  let traced = Trace.active () in
  let rsid = if traced then Trace.span_begin ~phase:"exec" "run" else 0 in
  let g = plan.graph in
  let n = Graph.num_nodes g in
  let values = Array.make n (Tensor.scalar 0.) in
  let computed = Array.make n false in
  let require id =
    if not computed.(id) then
      raise
        (Execution_error
           (Printf.sprintf "node %%%d read before it was computed" id))
  in
  (* leaves are device-resident before the first kernel launches *)
  Graph.iter_nodes
    (fun nd ->
      if Kernel_plan.is_leaf g nd.id then begin
        values.(nd.id) <- Interp.eval_node g values ~params nd;
        computed.(nd.id) <- true
      end)
    g;
  List.iter
    (fun (k : Kernel_plan.kernel) ->
      let ksid = if traced then Trace.span_begin ~phase:"exec" k.name else 0 in
      List.iter
        (fun (o : Kernel_plan.compiled_op) ->
          List.iter require (Graph.operands g o.id);
          values.(o.id) <- Interp.eval_node g values ~params (Graph.node g o.id);
          computed.(o.id) <- true)
        k.ops;
      (* on-chip and scratch values die with their kernel: only
         device-materialized tensors remain visible downstream.  A later
         kernel reading a purged value is a backend bug this executor
         surfaces independently of the static plan checker. *)
      List.iter
        (fun (o : Kernel_plan.compiled_op) ->
          match o.placement with
          | Kernel_plan.Device_mem -> ()
          | Kernel_plan.Register | Kernel_plan.Shared_mem
          | Kernel_plan.Global_scratch ->
              computed.(o.id) <- false)
        k.ops;
      if ksid <> 0 then Trace.span_end ksid)
    plan.kernels;
  if rsid <> 0 then Trace.span_end rsid;
  List.map
    (fun id ->
      require id;
      values.(id))
    (Graph.outputs g)

(* --- Reusable execution contexts --------------------------------------

   [run] above re-walks the kernel lists and allocates a fresh tensor per
   op on every call.  For serving, a plan is compiled once and executed
   many times, so [create_context] compiles the plan once into per-kernel
   execution recipes and [run_context] replays them.

   Two recipes exist per kernel.  The *fused* recipe (default) finally
   makes the runtime honor the plan's stitching schemes instead of
   re-deriving every value with [Interp.eval_node]:

   - Register ops are scalarized: [Scalar_eval] compiles them into
     element closures evaluated inside their consumers' loops - zero
     materialization (the paper's Local scheme);
   - Shared_mem ops are staged per block: a reusable slab sized from the
     thread mapping's contiguous block geometry holds one block's worth
     of elements, refilled on block change (Regional scheme);
   - only Device_mem / Global_scratch values touch full buffers, and
     those come from a liveness-driven arena ([Astitch_core.Mem_planner.plan_slots]):
     nodes with disjoint live ranges share one backing array, so the
     context allocates strictly fewer full buffers than it executes ops;
   - reshapes of full storage are bound as views (O(1) per run).

   Kernels whose tape lowering hits an unsupported pattern (see [Tape])
   fall back to the *reference* recipe - the PR 2 instruction array over
   [Interp.eval_node_into] with one preallocated buffer per node - and
   the two recipes compose within one context: fused kernels maintain the
   same computed/purged availability flags the reference steps check.

   Bit-identity: every fused loop writes output elements in ascending
   linear order, and each element is produced by exactly the float
   operations, in exactly the order, of the matching [Interp] case
   ([Scalar_eval] documents the per-op argument; reductions fold their
   contributing inputs in ascending linear order, which is precisely the
   order [Interp]'s global ascending sweep feeds each accumulator).
   Values are pure functions of operand elements, so recomputing them
   (scalarization) or re-staging them (slabs) cannot change a bit. *)

type instr =
  | Eval of { nd : Graph.node; operands : int array }
  | Purge of int array (* on-chip values dying at a kernel boundary *)

(* One staged (Shared_mem) value: a slab holding one block of elements.
   [fill] is tied after the element closure exists (it captures it). *)
type slab = {
  total : int;
  block_elems : int;
  s_unit : int; (* per-batch prefix elements; 0 when batch-invariant *)
  sdata : float array;
  mutable cur_block : int; (* -1 = empty; reset per kernel execution *)
  mutable cur_total : int; (* element bound this run: a prefix of [total]
                              when executing a smaller symbolic batch *)
  mutable fill : int -> unit;
}

type action =
  | Loop of { dst : float array; n : int; unit : int; elem : int -> float }
      (* materialize via a precompiled scalarized loop; [unit] is the
         per-batch element count (0 = batch-invariant), so a symbolic
         batch b bounds the loop at [unit * b] instead of [n] *)
  | Stage_global of {
      dst : float array;
      n : int;
      unit : int;
      elem : int -> float;
    } (* write one value into its per-kernel global scratch slot *)
  | Scatter of {
      dst : float array;
      idx : int -> float;
      upd : int -> float;
      k : int;
      row : int;
      rows : int;
      staged : bool; (* destination is a global scratch slot *)
    } (* scatter_add with scalarized index/update operands *)
  | Bind_view of { id : int; root : int; shape : Shape.t }
  | Barrier_sync
      (* in-kernel global barrier: the scratch values staged since the
         previous barrier point become visible to every block *)

type fused_kernel = {
  actions : action array;
  slabs : slab array;
  set_computed : int array; (* materialized ids, flagged after the kernel *)
  fpurged : int array; (* on-chip ids, unflagged after the kernel *)
  fprof : Profile.exec_kernel;
}

type kernel_exec =
  | Fused_k of fused_kernel
  | Ref_k of { steps : instr array; rprof : Profile.exec_kernel }

(* Symbolic-batch support: when the plan carries a batch classification
   (compiled at [smax], every node Invariant or Scaled), the context can
   execute any batch b in [1, smax] over the same max-sized buffers by
   bounding every scaled loop at its prefix.  [checked] memoizes the
   batch sizes whose rebound thread mappings were validated (contexts
   are single-owner, so no locking). *)
type sym_info = {
  smax : int;
  cls : Batch_axis.cls array;
  units : int array; (* node id -> per-batch elems; 0 for invariant *)
  checked : (int, unit) Hashtbl.t;
}

type context = {
  plan : Kernel_plan.t;
  values : Tensor.t array; (* node id -> current value *)
  computed : bool array; (* node id -> available this run *)
  base_computed : bool array; (* run-start template: constants/iotas *)
  bufs : Tensor.t option array; (* reference-path destinations *)
  param_slots : (int * string * Shape.t) array; (* id, name, declared *)
  kernels : kernel_exec array; (* plan order *)
  output_ids : int array;
  report : Profile.exec_report;
  timed : bool;
  sym : sym_info option; (* Some iff every kernel is fused and the plan
                            carries a batch classification *)
}

let bytes_of elems = 8 * elems (* host tensors are unboxed float64 *)

let create_context_body ~fused ~timed (plan : Kernel_plan.t) : context =
  let g = plan.graph in
  let n = Graph.num_nodes g in
  (* symbolic-batch candidate: per-node prefix units (elements per batch
     step), used while lowering to tag scaled loops and slabs.  Only
     meaningful if every kernel below lowers fused; decided at the end. *)
  let sym_cls =
    match plan.batch with
    | Some pb
      when fused
           && pb.Batch_axis.max_batch >= 1
           && Array.length pb.Batch_axis.cls = n ->
        Some pb
    | _ -> None
  in
  let units =
    match sym_cls with
    | None -> [||]
    | Some pb ->
        Array.init n (fun id ->
            match pb.Batch_axis.cls.(id) with
            | Batch_axis.Invariant -> 0
            | Batch_axis.Scaled _ ->
                Graph.num_elements g id / pb.Batch_axis.max_batch)
  in
  let unit_of id = if Array.length units = 0 then 0 else units.(id) in
  let values = Array.make n (Tensor.scalar 0.) in
  let base_computed = Array.make n false in
  let bufs = Array.make n None in
  (* a node gets a preallocated destination unless evaluating it aliases
     existing storage (parameters bind the caller's tensor; reshapes view
     their operand's data) *)
  let wants_buffer (nd : Graph.node) =
    match nd.op with Op.Parameter _ | Op.Reshape _ -> false | _ -> true
  in
  let buffer_for (nd : Graph.node) =
    match bufs.(nd.id) with
    | Some _ as b -> b
    | None ->
        if wants_buffer nd then begin
          bufs.(nd.id) <- Some (Tensor.zeros nd.shape);
          bufs.(nd.id)
        end
        else None
  in
  (* constants and iotas are run-invariant: evaluate them once, into
     their own buffers, and mark them pre-computed in the template *)
  Graph.iter_nodes
    (fun nd ->
      match nd.op with
      | Op.Constant _ | Op.Iota _ ->
          values.(nd.id) <-
            Interp.eval_node_into g values ~params:[] ~dst:(buffer_for nd) nd;
          base_computed.(nd.id) <- true
      | _ -> ())
    g;
  let param_slots =
    Graph.fold_nodes
      (fun acc (nd : Graph.node) ->
        match nd.op with
        | Op.Parameter { name } -> (nd.id, name, nd.shape) :: acc
        | _ -> acc)
      [] g
    |> List.rev |> Array.of_list
  in
  (* ---- tape lowering + arena planning (fused mode) ---- *)
  let lowered, intervals =
    if fused then
      let t = Tape.lower plan in
      (t.Tape.kernels, t.Tape.intervals)
    else
      ( List.mapi
          (fun pos k ->
            Tape.Fallback
              { kernel = k; pos; reason = "fused execution disabled" })
          plan.kernels,
        [] )
  in
  let assignments, slot_table =
    Astitch_core.Mem_planner.plan_slots
      (List.map
         (fun (iv : Tape.interval) ->
           (iv.node, iv.elems, iv.def_pos, iv.last_pos))
         intervals)
  in
  Astitch_core.Mem_planner.check_slot_exclusive assignments;
  let slot_arrays =
    let a = Array.make (List.length slot_table) [||] in
    List.iter (fun (s, elems) -> a.(s) <- Array.make elems 0.) slot_table;
    a
  in
  (* bind every arena-backed node once: differently-shaped tensors over a
     shared slot array are just records; the data is the slot *)
  let arena = Array.make n None in
  List.iter
    (fun (a : Astitch_core.Mem_planner.slot_assignment) ->
      let t = Tensor.create (Graph.shape g a.node) slot_arrays.(a.slot) in
      arena.(a.node) <- Some t;
      values.(a.node) <- t)
    assignments;
  (* ---- per-kernel compilation ---- *)
  let lower_reference (k : Kernel_plan.kernel) reason =
    let steps = ref [] in
    List.iter
      (fun (o : Kernel_plan.compiled_op) ->
        let nd = Graph.node g o.id in
        ignore (buffer_for nd);
        steps :=
          Eval { nd; operands = Array.of_list (Graph.operands g o.id) }
          :: !steps)
      k.ops;
    let purged =
      List.filter_map
        (fun (o : Kernel_plan.compiled_op) ->
          match o.placement with
          | Kernel_plan.Device_mem -> None
          | Kernel_plan.Register | Kernel_plan.Shared_mem
          | Kernel_plan.Global_scratch ->
              Some o.id)
        k.ops
    in
    if purged <> [] then steps := Purge (Array.of_list purged) :: !steps;
    let rprof : Profile.exec_kernel =
      {
        kname = k.name;
        fused = false;
        fallback = reason;
        ops = List.length k.ops;
        loops = List.length k.ops;
        bytes_materialized =
          List.fold_left
            (fun acc (o : Kernel_plan.compiled_op) ->
              let nd = Graph.node g o.id in
              if wants_buffer nd then acc + bytes_of (Graph.num_elements g o.id)
              else acc)
            0 k.ops;
        bytes_scalarized = 0;
        slab_bytes = 0;
        bytes_staged = 0;
        restages = 0;
        demotions = 0;
        gscratch_bytes = 0;
        bytes_staged_global = 0;
        barriers_run = 0;
        wall_ns = 0.;
        runs = 0;
      }
    in
    Ref_k { steps = Array.of_list (List.rev !steps); rprof }
  in
  let lower_fused (kt : Tape.kernel_tape) =
    let k = kt.kernel in
    let fprof : Profile.exec_kernel =
      {
        kname = k.name;
        fused = true;
        fallback = None;
        ops = List.length k.ops;
        loops = 0;
        bytes_materialized = 0;
        bytes_scalarized = 0;
        slab_bytes = 0;
        bytes_staged = 0;
        restages = 0;
        demotions = List.length kt.demotions;
        gscratch_bytes = 0;
        bytes_staged_global = 0;
        barriers_run = 0;
        wall_ns = 0.;
        runs = 0;
      }
    in
    let roles : (int, Tape.role) Hashtbl.t = Hashtbl.create 16 in
    List.iter (fun (id, r) -> Hashtbl.replace roles id r) kt.roles;
    (* per-kernel global scratch: slots live between barrier-separated
       segments, planned with the same liveness reuse as the plan-wide
       arena but in action indices (a slot frees after its last reader
       and can back a later value in the same kernel) *)
    let gassignments, gslot_table =
      Astitch_core.Mem_planner.plan_slots kt.gslots
    in
    Astitch_core.Mem_planner.check_slot_exclusive gassignments;
    let gslot_arrays =
      let a = Array.make (List.length gslot_table) [||] in
      List.iter (fun (s, elems) -> a.(s) <- Array.make elems 0.) gslot_table;
      a
    in
    fprof.gscratch_bytes <-
      Array.fold_left (fun acc a -> acc + bytes_of (Array.length a)) 0
        gslot_arrays;
    let gscratch : (int, float array) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (a : Astitch_core.Mem_planner.slot_assignment) ->
        Hashtbl.replace gscratch a.node gslot_arrays.(a.slot))
      gassignments;
    let accessors : (int, int -> float) Hashtbl.t = Hashtbl.create 16 in
    let slabs = ref [] in
    (* full-storage element reads: capture the backing array when the
       binding is static (arena slots, pre-evaluated constants), read
       through [values] when it is rebound per run (parameters, views,
       reference-kernel results) *)
    let storage_read id =
      match arena.(id) with
      | Some t ->
          let arr = Tensor.data t in
          fun j -> arr.(j)
      | None ->
          if base_computed.(id) then
            let arr = Tensor.data values.(id) in
            fun j -> arr.(j)
          else fun j -> Tensor.get_linear values.(id) j
    in
    let rec accessor id =
      match Hashtbl.find_opt accessors id with
      | Some f -> f
      | None ->
          let f =
            match Hashtbl.find_opt roles id with
            | None | Some Tape.Materialize -> storage_read id
            | Some (Tape.Staged_global _) ->
                (* the slot array is fixed at context creation; reads are
                   sequenced after the staging action by the tape's
                   barrier points *)
                let arr = Hashtbl.find gscratch id in
                fun j -> arr.(j)
            | Some (Tape.Alias { root }) ->
                (* a reshape view preserves linear order: read the root *)
                accessor root
            | Some Tape.Inline ->
                fprof.bytes_scalarized <-
                  fprof.bytes_scalarized + bytes_of (Graph.num_elements g id);
                Scalar_eval.compile g (Graph.node g id) ~operand:accessor
            | Some (Tape.Staged { block_elems }) ->
                let total = Graph.num_elements g id in
                let sl =
                  {
                    total;
                    block_elems;
                    s_unit = unit_of id;
                    sdata = Array.make block_elems 0.;
                    cur_block = -1;
                    cur_total = total;
                    fill = ignore;
                  }
                in
                slabs := sl :: !slabs;
                fprof.slab_bytes <- fprof.slab_bytes + bytes_of block_elems;
                let elem =
                  Scalar_eval.compile g (Graph.node g id) ~operand:accessor
                in
                sl.fill <-
                  (fun b ->
                    let lo = b * block_elems in
                    let hi = Stdlib.min sl.cur_total (lo + block_elems) in
                    for j = lo to hi - 1 do
                      sl.sdata.(j - lo) <- elem j
                    done;
                    fprof.bytes_staged <-
                      fprof.bytes_staged + bytes_of (hi - lo);
                    (* a backwards move means a consumer re-visits blocks
                       it already staged: irregular access, re-staged *)
                    if b < sl.cur_block then fprof.restages <- fprof.restages + 1;
                    match
                      Fault_site.check_runtime Fault_site.Staged_restage
                        ~pass:"staged-fill"
                    with
                    | None -> ()
                    | Some fseed -> corrupt_cell sl.sdata fseed);
                fun j ->
                  let b = j / block_elems in
                  if sl.cur_block <> b then begin
                    sl.fill b;
                    sl.cur_block <- b
                  end;
                  sl.sdata.(j - (b * block_elems))
          in
          Hashtbl.replace accessors id f;
          f
    in
    let barrier_before : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    List.iter (fun id -> Hashtbl.replace barrier_before id ()) kt.barrier_before;
    let actions =
      List.concat_map
        (fun ((id, role) : int * Tape.role) ->
          let nd = Graph.node g id in
          (* the tape opens a new barrier-separated segment before any
             producer that reads scratch staged since the last barrier *)
          let pre =
            if Hashtbl.mem barrier_before id then [ Barrier_sync ] else []
          in
          match role with
          | Tape.Inline | Tape.Staged _ -> [] (* consumed lazily *)
          | Tape.Alias { root } ->
              pre @ [ Bind_view { id; root; shape = nd.shape } ]
          | Tape.Staged_global _ -> (
              let dst = Hashtbl.find gscratch id in
              fprof.loops <- fprof.loops + 1;
              match nd.op with
              | Op.Scatter_add { indices; updates; rows } ->
                  let us = Graph.shape g updates in
                  let kdim = Shape.dim us 0 in
                  pre
                  @ [
                      Scatter
                        {
                          dst;
                          idx = accessor indices;
                          upd = accessor updates;
                          k = kdim;
                          row = Shape.num_elements us / kdim;
                          rows;
                          staged = true;
                        };
                    ]
              | _ ->
                  let elem = Scalar_eval.compile g nd ~operand:accessor in
                  pre
                  @ [
                      Stage_global
                        {
                          dst;
                          n = Array.length dst;
                          unit = unit_of id;
                          elem;
                        };
                    ])
          | Tape.Materialize -> (
              let dst =
                match arena.(id) with
                | Some t -> t
                | None -> assert false (* every Materialize role has a slot *)
              in
              fprof.loops <- fprof.loops + 1;
              fprof.bytes_materialized <-
                fprof.bytes_materialized + bytes_of (Tensor.num_elements dst);
              (* materialization always runs through precompiled element
                 closures: bit-identical to [Interp.eval_node_into] (see
                 [Scalar_eval]) but with the per-run setup - stride
                 tables, shape checks, per-element index allocation -
                 paid once at context creation *)
              match nd.op with
              | Op.Scatter_add { indices; updates; rows } ->
                  let us = Graph.shape g updates in
                  let kdim = Shape.dim us 0 in
                  pre
                  @ [
                      Scatter
                        {
                          dst = Tensor.data dst;
                          idx = accessor indices;
                          upd = accessor updates;
                          k = kdim;
                          row = Shape.num_elements us / kdim;
                          rows;
                          staged = false;
                        };
                    ]
              | _ ->
                  let elem =
                    Scalar_eval.compile g nd ~operand:accessor
                  in
                  pre
                  @ [
                      Loop
                        {
                          dst = Tensor.data dst;
                          n = Tensor.num_elements dst;
                          unit = unit_of id;
                          elem;
                        };
                    ]))
        kt.roles
    in
    Fused_k
      {
        actions = Array.of_list actions;
        slabs = Array.of_list !slabs;
        set_computed = Array.of_list kt.materialized;
        fpurged = Array.of_list kt.purged;
        fprof;
      }
  in
  let kernels =
    List.map
      (function
        | Tape.Fused kt -> lower_fused kt
        | Tape.Fallback { kernel; reason; _ } ->
            lower_reference kernel (Some reason))
      lowered
    |> Array.of_list
  in
  (* ---- profile report ---- *)
  let requested = Hashtbl.create 64 in
  List.iter
    (fun (k : Kernel_plan.kernel) ->
      List.iter
        (fun (o : Kernel_plan.compiled_op) ->
          if wants_buffer (Graph.node g o.id) then
            Hashtbl.replace requested o.id (Graph.num_elements g o.id))
        k.ops)
    plan.kernels;
  let fallback_bufs =
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (k : Kernel_plan.kernel) ->
        List.iter
          (fun (o : Kernel_plan.compiled_op) ->
            if bufs.(o.id) <> None then Hashtbl.replace seen o.id ())
          k.ops)
      plan.kernels;
    Hashtbl.length seen
  in
  let report : Profile.exec_report =
    {
      exec_kernels =
        Array.to_list kernels
        |> List.map (function
             | Fused_k f -> f.fprof
             | Ref_k r -> r.rprof);
      nodes_executed =
        List.fold_left
          (fun acc (k : Kernel_plan.kernel) -> acc + List.length k.ops)
          0 plan.kernels;
      buffers_requested = Hashtbl.length requested;
      buffers_allocated = Array.length slot_arrays + fallback_bufs;
      arena_bytes =
        Array.fold_left (fun acc a -> acc + bytes_of (Array.length a)) 0
          slot_arrays;
      naive_bytes =
        Hashtbl.fold (fun _ elems acc -> acc + bytes_of elems) requested 0;
    }
  in
  (* symbolic-batch execution requires every kernel on the fused recipe:
     reference kernels re-derive values through [Interp] against the
     full max-batch shapes and cannot be prefix-bounded *)
  let sym =
    match sym_cls with
    | Some pb
      when Array.for_all
             (function Fused_k _ -> true | Ref_k _ -> false)
             kernels ->
        Some
          {
            smax = pb.Batch_axis.max_batch;
            cls = pb.Batch_axis.cls;
            units;
            checked = Hashtbl.create 4;
          }
    | _ -> None
  in
  {
    plan;
    values;
    computed = Array.make n false;
    base_computed;
    bufs;
    param_slots;
    kernels;
    output_ids = Array.of_list (Graph.outputs g);
    report;
    timed;
    sym;
  }

let create_context ?(fused = true) ?(timed = false) (plan : Kernel_plan.t) :
    context =
  if not (Trace.enabled ()) then create_context_body ~fused ~timed plan
  else
    Trace.with_span ~phase:"exec" "create-context"
      ~attrs:
        [
          ("fused", Trace.Bool fused);
          ("kernels", Trace.Int (List.length plan.Kernel_plan.kernels));
        ]
      (fun () -> create_context_body ~fused ~timed plan)

let context_plan ctx = ctx.plan
let exec_report ctx = ctx.report
let rebindable ctx = ctx.sym <> None

let context_fallbacks ctx =
  List.filter_map
    (fun (k : Profile.exec_kernel) ->
      match k.fallback with Some r -> Some (k.kname, r) | None -> None)
    ctx.report.exec_kernels

let run_context ?batch (ctx : context) ~params : Tensor.t list =
  (* [traced] is decided once per run: with no sink (trace or recorder)
     installed the ids stay 0 and no per-kernel code below allocates
     (the zero-cost contract the test suite pins down with
     [Gc.minor_words]).  When the worker pool calls this inside its
     batch span the whole run-context tree - including the per-kernel
     spans - nests under that batch via the domain-local span stack. *)
  let traced = Trace.active () in
  let rsid = if traced then Trace.span_begin ~phase:"exec" "run-context" else 0 in
  let g = ctx.plan.Kernel_plan.graph in
  (* symbolic-batch rebind: [bscale] > 0 executes the prefix for batch
     [bscale] over the max-sized buffers; 0 is the ordinary full run *)
  let scaled =
    match batch with
    | None -> None
    | Some b -> (
        match ctx.sym with
        | None ->
            invalid_arg "run_context: context is not batch-rebindable"
        | Some si ->
            if b < 1 || b > si.smax then
              invalid_arg
                (Printf.sprintf "run_context: batch %d outside 1..%d" b
                   si.smax)
            else if b = si.smax then None
            else Some (b, si))
  in
  let bscale = match scaled with Some (b, _) -> b | None -> 0 in
  (* first time this batch size runs on this context, re-pack every
     scaled op's thread mapping at the new extent (the paper's adaptive
     packing/splitting applied at bind time) and validate the geometry *)
  (match scaled with
  | Some (b, si) when not (Hashtbl.mem si.checked b) ->
      let bsid =
        if traced then
          Trace.span_begin ~phase:"exec" "rebind"
            ~attrs:[ ("batch", Trace.Int b); ("smax", Trace.Int si.smax) ]
        else 0
      in
      List.iter
        (fun (k : Kernel_plan.kernel) ->
          List.iter
            (fun (o : Kernel_plan.compiled_op) ->
              match si.cls.(o.id) with
              | Batch_axis.Scaled _ ->
                  ignore (Thread_mapping.rebind o.mapping ~num:b ~den:si.smax)
              | Batch_axis.Invariant -> ())
            k.ops)
        ctx.plan.Kernel_plan.kernels;
      Hashtbl.replace si.checked b ();
      if bsid <> 0 then Trace.span_end bsid
  | _ -> ());
  let values = ctx.values and computed = ctx.computed in
  Array.blit ctx.base_computed 0 computed 0 (Array.length computed);
  let require id =
    if not computed.(id) then
      raise
        (Execution_error
           (Printf.sprintf "node %%%d read before it was computed" id))
  in
  (* bind parameters through the pre-resolved slots (id order, matching
     the leaf sweep in [run]); under a symbolic batch, scaled parameters
     bind at their prefix shape *)
  Array.iter
    (fun (id, name, shape) ->
      match List.assoc_opt name params with
      | None -> raise (Interp.Missing_parameter name)
      | Some t ->
          let shape =
            match scaled with
            | Some (b, si) -> (
                match si.cls.(id) with
                | Batch_axis.Scaled { axis; _ } ->
                    let s = Array.copy shape in
                    s.(axis) <- shape.(axis) / si.smax * b;
                    s
                | Batch_axis.Invariant -> shape)
            | None -> shape
          in
          if not (Shape.equal (Tensor.shape t) shape) then
            Tensor.mismatch "parameter %s: bound shape %s, declared %s" name
              (Shape.to_string (Tensor.shape t))
              (Shape.to_string shape);
          values.(id) <- t;
          computed.(id) <- true)
    ctx.param_slots;
  Array.iter
    (fun ke ->
      let ksid =
        if traced then
          Trace.span_begin ~phase:"exec"
            (match ke with
            | Fused_k f -> f.fprof.Profile.kname
            | Ref_k r -> r.rprof.Profile.kname)
        else 0
      in
      let t0 = if ctx.timed then Unix.gettimeofday () else 0. in
      (match ke with
      | Fused_k fk ->
          (* slab contents are stale across runs (parameters changed);
             under a symbolic batch the slab bound shrinks to the prefix *)
          Array.iter
            (fun sl ->
              sl.cur_block <- -1;
              sl.cur_total <-
                (if bscale > 0 && sl.s_unit > 0 then sl.s_unit * bscale
                 else sl.total))
            fk.slabs;
          Array.iter
            (function
              | Loop { dst; n; unit; elem } ->
                  let n =
                    if bscale > 0 && unit > 0 then unit * bscale else n
                  in
                  for i = 0 to n - 1 do
                    dst.(i) <- elem i
                  done
              | Stage_global { dst; n; unit; elem } ->
                  let n =
                    if bscale > 0 && unit > 0 then unit * bscale else n
                  in
                  for i = 0 to n - 1 do
                    dst.(i) <- elem i
                  done;
                  fk.fprof.bytes_staged_global <-
                    fk.fprof.bytes_staged_global + bytes_of n
              | Scatter { dst; idx; upd; k; row; rows; staged } ->
                  Array.fill dst 0 (Array.length dst) 0.;
                  let clamp i = Stdlib.max 0 (Stdlib.min (rows - 1) i) in
                  for r = 0 to k - 1 do
                    let d = clamp (int_of_float (idx r)) in
                    for off = 0 to row - 1 do
                      let j = (d * row) + off in
                      dst.(j) <- dst.(j) +. upd ((r * row) + off)
                    done
                  done;
                  if staged then
                    fk.fprof.bytes_staged_global <-
                      fk.fprof.bytes_staged_global
                      + bytes_of (Array.length dst)
              | Barrier_sync ->
                  (* on device: grid-wide sync making the scratch writes
                     of the previous segment visible; on the host model
                     the sequential action order already provides the
                     ordering, so the barrier only counts *)
                  fk.fprof.barriers_run <- fk.fprof.barriers_run + 1
              | Bind_view { id; root; shape } ->
                  (* under a symbolic batch the root holds either a
                     max-sized buffer or a prefix-shaped parameter, so
                     the compiled view shape no longer matches; bind the
                     root raw instead - every read of the view is linear
                     (reshape preserves linear order) and outputs are
                     re-shaped explicitly below *)
                  values.(id) <-
                    (if bscale > 0 then values.(root)
                     else Tensor.reshape values.(root) shape))
            fk.actions;
          Array.iter (fun id -> computed.(id) <- true) fk.set_computed;
          Array.iter (fun id -> computed.(id) <- false) fk.fpurged
      | Ref_k { steps; _ } ->
          Array.iter
            (function
              | Eval { nd; operands } ->
                  Array.iter require operands;
                  values.(nd.id) <-
                    Interp.eval_node_into g values ~params ~dst:ctx.bufs.(nd.id)
                      nd;
                  computed.(nd.id) <- true
              | Purge ids -> Array.iter (fun id -> computed.(id) <- false) ids)
            steps);
      (* serving-runtime fault site: the kernel just "launched" - raise
         models a failed launch, corrupt silently damages one cell of a
         value this kernel materialized.  Unarmed cost is one empty-list
         walk, preserving the zero-allocation contract. *)
      (match
         Fault_site.check_runtime Fault_site.Kernel_exec
           ~pass:
             (match ke with
             | Fused_k f -> f.fprof.Profile.kname
             | Ref_k r -> r.rprof.Profile.kname)
       with
      | None -> ()
      | Some fseed -> (
          match ke with
          | Fused_k fk ->
              let ids = fk.set_computed in
              if Array.length ids > 0 then
                corrupt_cell
                  (Tensor.data values.(ids.(abs fseed mod Array.length ids)))
                  fseed
          | Ref_k { steps; _ } ->
              let last =
                Array.fold_left
                  (fun acc i ->
                    match i with
                    | Eval { nd; _ } -> Some nd.id
                    | Purge _ -> acc)
                  None steps
              in
              (match last with
              | Some id -> corrupt_cell (Tensor.data values.(id)) fseed
              | None -> ())));
      if ctx.timed then begin
        let prof =
          match ke with Fused_k f -> f.fprof | Ref_k r -> r.rprof
        in
        prof.wall_ns <- prof.wall_ns +. ((Unix.gettimeofday () -. t0) *. 1e9);
        prof.runs <- prof.runs + 1
      end;
      if ksid <> 0 then
        Trace.span_end ksid
          ~attrs:
            [
              ( "fused",
                Trace.Bool
                  (match ke with Fused_k _ -> true | Ref_k _ -> false) );
            ])
    ctx.kernels;
  if rsid <> 0 then
    Trace.span_end rsid ~attrs:[ ("batch", Trace.Int bscale) ];
  match scaled with
  | None ->
      Array.fold_right
        (fun id acc ->
          require id;
          Tensor.copy values.(id) :: acc)
        ctx.output_ids []
  | Some (b, si) ->
      (* outputs are the leading prefix of each max-sized buffer, fresh
         copies under the batch-b shape (invariant outputs copy whole) *)
      Array.fold_right
        (fun id acc ->
          require id;
          let full = Graph.shape g id in
          let s, nb =
            match si.cls.(id) with
            | Batch_axis.Invariant -> (full, Shape.num_elements full)
            | Batch_axis.Scaled { axis; _ } ->
                let s = Array.copy full in
                s.(axis) <- full.(axis) / si.smax * b;
                (s, si.units.(id) * b)
          in
          Tensor.create s (Array.sub (Tensor.data values.(id)) 0 nb) :: acc)
        ctx.output_ids []

(* Execute and compare against the reference interpreter. *)
let run_and_check ?(eps = 1e-5) plan ~params =
  let outputs = run plan ~params in
  let reference = Interp.run plan.Kernel_plan.graph ~params in
  List.iter2
    (fun got expect ->
      if not (Tensor.equal_approx ~eps got expect) then
        raise
          (Execution_error
             (Format.asprintf
                "plan output diverges from reference (max abs diff %g)"
                (Tensor.max_abs_diff got expect))))
    outputs reference;
  outputs
