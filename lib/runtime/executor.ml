(* Plan execution: computes real tensor values by walking the plan's
   kernels in order.

   Stitching never changes numerics - each op still evaluates its operands
   element-wise exactly as the reference interpreter does - so executing a
   plan must reproduce Interp.run bit-for-bit.  What execution adds over
   the interpreter is plan discipline: ops are only evaluated when their
   kernel runs, and operands must already be available under the plan's
   own ordering (the structural side is validated by Kernel_plan.check;
   violations surface here as reads of never-computed nodes). *)

open Astitch_ir
open Astitch_tensor
open Astitch_plan

exception Execution_error of string

let run (plan : Kernel_plan.t) ~params : Tensor.t list =
  let g = plan.graph in
  let n = Graph.num_nodes g in
  let values = Array.make n (Tensor.scalar 0.) in
  let computed = Array.make n false in
  let require id =
    if not computed.(id) then
      raise
        (Execution_error
           (Printf.sprintf "node %%%d read before it was computed" id))
  in
  (* leaves are device-resident before the first kernel launches *)
  Graph.iter_nodes
    (fun nd ->
      if Kernel_plan.is_leaf g nd.id then begin
        values.(nd.id) <- Interp.eval_node g values ~params nd;
        computed.(nd.id) <- true
      end)
    g;
  List.iter
    (fun (k : Kernel_plan.kernel) ->
      List.iter
        (fun (o : Kernel_plan.compiled_op) ->
          List.iter require (Graph.operands g o.id);
          values.(o.id) <- Interp.eval_node g values ~params (Graph.node g o.id);
          computed.(o.id) <- true)
        k.ops;
      (* on-chip and scratch values die with their kernel: only
         device-materialized tensors remain visible downstream.  A later
         kernel reading a purged value is a backend bug this executor
         surfaces independently of the static plan checker. *)
      List.iter
        (fun (o : Kernel_plan.compiled_op) ->
          match o.placement with
          | Kernel_plan.Device_mem -> ()
          | Kernel_plan.Register | Kernel_plan.Shared_mem
          | Kernel_plan.Global_scratch ->
              computed.(o.id) <- false)
        k.ops)
    plan.kernels;
  List.map
    (fun id ->
      require id;
      values.(id))
    (Graph.outputs g)

(* --- Reusable execution contexts --------------------------------------

   [run] above re-walks the kernel lists and allocates a fresh tensor per
   op on every call.  For serving, a plan is compiled once and executed
   many times, so the per-run work should be exactly the numeric loops:
   [create_context] flattens the kernels into an instruction array,
   preallocates one destination buffer per evaluated node, evaluates
   constants/iotas once, and pre-resolves parameter slots.  [run_context]
   then binds parameters, replays the instruction array through
   [Interp.eval_node_into], and copies out the outputs - no list
   traversal, and no allocation beyond the output copies (plus O(1) view
   records for reshape ops, which alias their operand's storage).

   Because [eval_node_into] writes the same elements in the same order as
   the allocating evaluation, [run_context] is bit-identical to [run]. *)

type instr =
  | Eval of { nd : Graph.node; operands : int array }
  | Purge of int array (* on-chip values dying at a kernel boundary *)

type context = {
  plan : Kernel_plan.t;
  values : Tensor.t array; (* node id -> current value *)
  computed : bool array; (* node id -> available this run *)
  base_computed : bool array; (* run-start template: constants/iotas *)
  bufs : Tensor.t option array; (* preallocated destinations *)
  param_slots : (int * string * Shape.t) array; (* id, name, declared *)
  steps : instr array;
  output_ids : int array;
}

let create_context (plan : Kernel_plan.t) : context =
  let g = plan.graph in
  let n = Graph.num_nodes g in
  let values = Array.make n (Tensor.scalar 0.) in
  let base_computed = Array.make n false in
  let bufs = Array.make n None in
  (* a node gets a preallocated destination unless evaluating it aliases
     existing storage (parameters bind the caller's tensor; reshapes view
     their operand's data) *)
  let wants_buffer (nd : Graph.node) =
    match nd.op with Op.Parameter _ | Op.Reshape _ -> false | _ -> true
  in
  let buffer_for (nd : Graph.node) =
    match bufs.(nd.id) with
    | Some _ as b -> b
    | None ->
        if wants_buffer nd then begin
          bufs.(nd.id) <- Some (Tensor.zeros nd.shape);
          bufs.(nd.id)
        end
        else None
  in
  (* constants and iotas are run-invariant: evaluate them once, into
     their own buffers, and mark them pre-computed in the template *)
  Graph.iter_nodes
    (fun nd ->
      match nd.op with
      | Op.Constant _ | Op.Iota _ ->
          values.(nd.id) <-
            Interp.eval_node_into g values ~params:[] ~dst:(buffer_for nd) nd;
          base_computed.(nd.id) <- true
      | _ -> ())
    g;
  let param_slots =
    Graph.fold_nodes
      (fun acc (nd : Graph.node) ->
        match nd.op with
        | Op.Parameter { name } -> (nd.id, name, nd.shape) :: acc
        | _ -> acc)
      [] g
    |> List.rev |> Array.of_list
  in
  let steps = ref [] in
  List.iter
    (fun (k : Kernel_plan.kernel) ->
      List.iter
        (fun (o : Kernel_plan.compiled_op) ->
          let nd = Graph.node g o.id in
          ignore (buffer_for nd);
          steps :=
            Eval { nd; operands = Array.of_list (Graph.operands g o.id) }
            :: !steps)
        k.ops;
      let purged =
        List.filter_map
          (fun (o : Kernel_plan.compiled_op) ->
            match o.placement with
            | Kernel_plan.Device_mem -> None
            | Kernel_plan.Register | Kernel_plan.Shared_mem
            | Kernel_plan.Global_scratch ->
                Some o.id)
          k.ops
      in
      if purged <> [] then steps := Purge (Array.of_list purged) :: !steps)
    plan.kernels;
  {
    plan;
    values;
    computed = Array.make n false;
    base_computed;
    bufs;
    param_slots;
    steps = Array.of_list (List.rev !steps);
    output_ids = Array.of_list (Graph.outputs g);
  }

let context_plan ctx = ctx.plan

let run_context (ctx : context) ~params : Tensor.t list =
  let g = ctx.plan.Kernel_plan.graph in
  let values = ctx.values and computed = ctx.computed in
  Array.blit ctx.base_computed 0 computed 0 (Array.length computed);
  let require id =
    if not computed.(id) then
      raise
        (Execution_error
           (Printf.sprintf "node %%%d read before it was computed" id))
  in
  (* bind parameters through the pre-resolved slots (id order, matching
     the leaf sweep in [run]) *)
  Array.iter
    (fun (id, name, shape) ->
      match List.assoc_opt name params with
      | None -> raise (Interp.Missing_parameter name)
      | Some t ->
          if not (Shape.equal (Tensor.shape t) shape) then
            Tensor.mismatch "parameter %s: bound shape %s, declared %s" name
              (Shape.to_string (Tensor.shape t))
              (Shape.to_string shape);
          values.(id) <- t;
          computed.(id) <- true)
    ctx.param_slots;
  Array.iter
    (function
      | Eval { nd; operands } ->
          Array.iter require operands;
          values.(nd.id) <-
            Interp.eval_node_into g values ~params ~dst:ctx.bufs.(nd.id) nd;
          computed.(nd.id) <- true
      | Purge ids -> Array.iter (fun id -> computed.(id) <- false) ids)
    ctx.steps;
  Array.fold_right
    (fun id acc ->
      require id;
      Tensor.copy values.(id) :: acc)
    ctx.output_ids []

(* Execute and compare against the reference interpreter. *)
let run_and_check ?(eps = 1e-5) plan ~params =
  let outputs = run plan ~params in
  let reference = Interp.run plan.Kernel_plan.graph ~params in
  List.iter2
    (fun got expect ->
      if not (Tensor.equal_approx ~eps got expect) then
        raise
          (Execution_error
             (Format.asprintf
                "plan output diverges from reference (max abs diff %g)"
                (Tensor.max_abs_diff got expect))))
    outputs reference;
  outputs
