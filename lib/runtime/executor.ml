(* Plan execution: computes real tensor values by walking the plan's
   kernels in order.

   Stitching never changes numerics - each op still evaluates its operands
   element-wise exactly as the reference interpreter does - so executing a
   plan must reproduce Interp.run bit-for-bit.  What execution adds over
   the interpreter is plan discipline: ops are only evaluated when their
   kernel runs, and operands must already be available under the plan's
   own ordering (the structural side is validated by Kernel_plan.check;
   violations surface here as reads of never-computed nodes). *)

open Astitch_ir
open Astitch_tensor
open Astitch_plan

exception Execution_error of string

let run (plan : Kernel_plan.t) ~params : Tensor.t list =
  let g = plan.graph in
  let n = Graph.num_nodes g in
  let values = Array.make n (Tensor.scalar 0.) in
  let computed = Array.make n false in
  let require id =
    if not computed.(id) then
      raise
        (Execution_error
           (Printf.sprintf "node %%%d read before it was computed" id))
  in
  (* leaves are device-resident before the first kernel launches *)
  Graph.iter_nodes
    (fun nd ->
      if Kernel_plan.is_leaf g nd.id then begin
        values.(nd.id) <- Interp.eval_node g values ~params nd;
        computed.(nd.id) <- true
      end)
    g;
  List.iter
    (fun (k : Kernel_plan.kernel) ->
      List.iter
        (fun (o : Kernel_plan.compiled_op) ->
          List.iter require (Graph.operands g o.id);
          values.(o.id) <- Interp.eval_node g values ~params (Graph.node g o.id);
          computed.(o.id) <- true)
        k.ops;
      (* on-chip and scratch values die with their kernel: only
         device-materialized tensors remain visible downstream.  A later
         kernel reading a purged value is a backend bug this executor
         surfaces independently of the static plan checker. *)
      List.iter
        (fun (o : Kernel_plan.compiled_op) ->
          match o.placement with
          | Kernel_plan.Device_mem -> ()
          | Kernel_plan.Register | Kernel_plan.Shared_mem
          | Kernel_plan.Global_scratch ->
              computed.(o.id) <- false)
        k.ops)
    plan.kernels;
  List.map
    (fun id ->
      require id;
      values.(id))
    (Graph.outputs g)

(* Execute and compare against the reference interpreter. *)
let run_and_check ?(eps = 1e-5) plan ~params =
  let outputs = run plan ~params in
  let reference = Interp.run plan.Kernel_plan.graph ~params in
  List.iter2
    (fun got expect ->
      if not (Tensor.equal_approx ~eps got expect) then
        raise
          (Execution_error
             (Format.asprintf
                "plan output diverges from reference (max abs diff %g)"
                (Tensor.max_abs_diff got expect))))
    outputs reference;
  outputs
