(** Compile-and-run sessions and the backend-comparison harness. *)

open Astitch_ir
open Astitch_tensor
open Astitch_plan

type result = {
  backend_name : string;
  plan : Kernel_plan.t;
  profile : Profile.t;
}

val compile : Backend_intf.t -> Astitch_simt.Arch.t -> Graph.t -> result

type resilient = {
  result : result;
  report : Astitch_core.Degradation.report;
}

val compile_resilient :
  ?config:Astitch_core.Config.t ->
  Astitch_simt.Arch.t ->
  Graph.t ->
  (resilient, Compile_error.t) Stdlib.result
(** Compile with per-cluster graceful degradation ([Fallback.compile]).
    Never raises; with the default config and a healthy graph the report
    is empty and the plan matches [Astitch.compile] exactly. *)

val run :
  ?check:bool ->
  Backend_intf.t ->
  Astitch_simt.Arch.t ->
  Graph.t ->
  params:(string * Tensor.t) list ->
  Tensor.t list * result
(** Compile, execute and (by default) verify against the reference
    interpreter. *)

val random_params : ?seed:int -> Graph.t -> (string * Tensor.t) list

val compare_backends :
  Backend_intf.t list -> Astitch_simt.Arch.t -> Graph.t -> result list

val speedup : baseline:result -> contender:result -> float
