(** Compile-and-run sessions and the backend-comparison harness. *)

open Astitch_ir
open Astitch_tensor
open Astitch_plan

type result = {
  backend_name : string;
  plan : Kernel_plan.t;
  profile : Profile.t;
}

val compile : Backend_intf.t -> Astitch_simt.Arch.t -> Graph.t -> result

type resilient = {
  result : result;
  report : Astitch_core.Degradation.report;
}

val compile_resilient :
  ?config:Astitch_core.Config.t ->
  Astitch_simt.Arch.t ->
  Graph.t ->
  (resilient, Compile_error.t) Stdlib.result
(** Compile with per-cluster graceful degradation ([Fallback.compile]).
    Never raises; with the default config and a healthy graph the report
    is empty and the plan matches [Astitch.compile] exactly. *)

type cache = result Plan_cache.t
(** Compiled results keyed by graph fingerprint x arch x backend name. *)

type resilient_cache = resilient Plan_cache.t

val make_cache : ?capacity:int -> unit -> cache
val make_resilient_cache : ?capacity:int -> unit -> resilient_cache

val cache_key : Backend_intf.t -> Astitch_simt.Arch.t -> Graph.t -> string
(** The cache key {!compile_cached} files results under:
    [Plan_cache.key] over canonical graph fingerprint, arch name and
    backend name.  Exposed so the plan store and zoo prewarming can
    address the same slots. *)

val result_of_plan : Backend_intf.t -> Kernel_plan.t -> result
(** Rebuild a session result around an already-materialized plan (one
    deserialized from the plan store).  The profile is recomputed from
    the plan - deterministic, so it matches what a fresh compile would
    have produced - and no compile-phase trace span is emitted. *)

val precache :
  cache -> Backend_intf.t -> Astitch_simt.Arch.t -> Graph.t -> result -> unit
(** Seed the cache for [(graph, arch, backend)] with an externally
    produced result, so the first checkout hits instead of compiling.
    Callers must only precache full-strength plans (the zoo gates
    store-loaded plans on bit-identity first). *)

val compile_cached :
  cache ->
  Backend_intf.t ->
  Astitch_simt.Arch.t ->
  Graph.t ->
  result * Plan_cache.outcome
(** {!compile} behind an LRU cache.  A compile during which compile-site
    fault injection was armed (at any point) is returned but never
    stored ([Bypassed]); runtime-site faults don't affect caching. *)

val uncache :
  cache -> Backend_intf.t -> Astitch_simt.Arch.t -> Graph.t -> bool
(** Invalidate the cached compile for this (graph, arch, backend) —
    serving quarantine evicting a plan suspected of corrupt output.
    [true] when an entry was present. *)

val compile_resilient_cached :
  ?config:Astitch_core.Config.t ->
  resilient_cache ->
  Astitch_simt.Arch.t ->
  Graph.t ->
  (resilient, Compile_error.t) Stdlib.result * Plan_cache.outcome
(** {!compile_resilient} behind an LRU cache.  Only full-strength
    results are stored: compile errors, non-empty degradation reports
    and fault-injected configs all bypass the cache. *)

val run :
  ?check:bool ->
  Backend_intf.t ->
  Astitch_simt.Arch.t ->
  Graph.t ->
  params:(string * Tensor.t) list ->
  Tensor.t list * result
(** Compile, execute and (by default) verify against the reference
    interpreter. *)

val random_params : ?seed:int -> Graph.t -> (string * Tensor.t) list

val compare_backends :
  Backend_intf.t list -> Astitch_simt.Arch.t -> Graph.t -> result list

val speedup : baseline:result -> contender:result -> float
