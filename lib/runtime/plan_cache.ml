(* LRU cache for compiled artifacts.

   Serving compiles the same graphs over and over; the cache keys an
   arbitrary compiled artifact ('a is a plan, a session result, or a
   resilient result) by the canonical graph fingerprint x architecture x
   config serialization.  Keying on Fingerprint.of_graph makes the key
   sound by construction: two graphs share a key only when their live
   structure is identical, so a hit can serve the cached plan verbatim.

   Recency is tracked with a monotonic tick per access; eviction removes
   the entry with the smallest tick (strict LRU, deterministic).  The
   cache never stores degraded or fault-injected results - callers route
   those through [note_bypass] - so a hit is always a full-strength
   artifact. *)

module Trace = Astitch_obs.Trace
module Metrics = Astitch_obs.Metrics

(* Global cache observability: per-cache [stats] stay the source of truth
   for callers holding the cache; the process-wide metrics registry gets
   the same increments (summed over caches) so `--metrics` and the text
   exporter see cache behaviour without plumbing a handle through. *)
let note what =
  Metrics.(inc (counter default ("plan_cache." ^ what)));
  if Trace.enabled () then Trace.instant ~phase:"cache" ("cache-" ^ what)

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  bypasses : int;
}

let zero_stats =
  { hits = 0; misses = 0; insertions = 0; evictions = 0; bypasses = 0 }

type 'a entry = { value : 'a; mutable last_used : int }

type 'a t = {
  capacity : int;
  table : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
  mutable stats : stats;
}

let create ?(capacity = 128) () =
  if capacity <= 0 then invalid_arg "Plan_cache.create: capacity must be > 0";
  { capacity; table = Hashtbl.create (2 * capacity); tick = 0; stats = zero_stats }

let key ~fingerprint ~arch ~config =
  Printf.sprintf "%s|%s|%s" fingerprint arch config

let length t = Hashtbl.length t.table
let capacity t = t.capacity
let stats t = t.stats

let touch t e =
  t.tick <- t.tick + 1;
  e.last_used <- t.tick

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some e ->
      touch t e;
      t.stats <- { t.stats with hits = t.stats.hits + 1 };
      note "hit";
      Some e.value
  | None ->
      t.stats <- { t.stats with misses = t.stats.misses + 1 };
      note "miss";
      None

(* Evict the least-recently-used entry (smallest tick). *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best.last_used <= e.last_used -> acc
        | _ -> Some (k, e))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.stats <- { t.stats with evictions = t.stats.evictions + 1 };
      note "eviction"

let add t k v =
  (match Hashtbl.find_opt t.table k with
  | Some _ -> Hashtbl.remove t.table k
  | None -> if Hashtbl.length t.table >= t.capacity then evict_one t);
  t.tick <- t.tick + 1;
  Hashtbl.replace t.table k { value = v; last_used = t.tick };
  t.stats <- { t.stats with insertions = t.stats.insertions + 1 };
  note "insertion"

let note_bypass t =
  t.stats <- { t.stats with bypasses = t.stats.bypasses + 1 };
  note "bypass"

type outcome = Hit | Miss | Bypassed

let outcome_to_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Bypassed -> "bypassed"

(* The caching protocol in one place: look up, or compile and - only when
   the compiler says the artifact is cacheable - insert.  Degraded and
   fault-injected compiles return [cacheable = false] and are counted as
   bypasses, never stored. *)
let find_or_compute t k ~compute =
  match find t k with
  | Some v -> (v, Hit)
  | None ->
      let v, cacheable = compute () in
      if cacheable then begin
        add t k v;
        (v, Miss)
      end
      else begin
        note_bypass t;
        (v, Bypassed)
      end
