(* LRU cache for compiled artifacts.

   Serving compiles the same graphs over and over; the cache keys an
   arbitrary compiled artifact ('a is a plan, a session result, or a
   resilient result) by the canonical graph fingerprint x architecture x
   config serialization.  Keying on Fingerprint.of_graph makes the key
   sound by construction: two graphs share a key only when their live
   structure is identical, so a hit can serve the cached plan verbatim.

   Recency is tracked with a monotonic tick per access; eviction removes
   the entry with the smallest tick (strict LRU, deterministic).  The
   cache never stores degraded or fault-injected results - callers route
   those through [note_bypass] - so a hit is always a full-strength
   artifact.

   The cache is safe for concurrent domains: every operation that reads
   or mutates the table, the tick or the stats record holds [mu].  The
   serving worker pool shares one cache across all workers, so lookups,
   insertions and evictions race freely; the mutex keeps the LRU
   invariants (tick monotonicity, length <= capacity, stats consistent
   with table contents) intact under that load.  [find_or_compute] runs
   [compute] OUTSIDE the lock - compilation is slow and must overlap
   across domains - so two domains may compile the same key
   concurrently; the second [add] replaces the first, which is sound
   because equal keys imply interchangeable artifacts. *)

module Trace = Astitch_obs.Trace
module Metrics = Astitch_obs.Metrics

(* Global cache observability: per-cache [stats] stay the source of truth
   for callers holding the cache; the process-wide metrics registry gets
   the same increments (summed over caches) so `--metrics` and the text
   exporter see cache behaviour without plumbing a handle through. *)
let note what =
  Metrics.(inc (counter default ("plan_cache." ^ what)));
  if Trace.enabled () then Trace.instant ~phase:"cache" ("cache-" ^ what)

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  bypasses : int;
  removals : int;
}

let zero_stats =
  {
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    bypasses = 0;
    removals = 0;
  }

type 'a entry = { value : 'a; mutable last_used : int }

type 'a t = {
  mu : Mutex.t;
  capacity : int;
  table : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
  mutable stats : stats;
}

let create ?(capacity = 128) () =
  if capacity <= 0 then invalid_arg "Plan_cache.create: capacity must be > 0";
  {
    mu = Mutex.create ();
    capacity;
    table = Hashtbl.create (2 * capacity);
    tick = 0;
    stats = zero_stats;
  }

let key ~fingerprint ~arch ~config =
  Printf.sprintf "%s|%s|%s" fingerprint arch config

(* Run [f] holding the cache lock; metrics/trace emission stays outside
   the critical section (the metrics registry has its own synchronization
   and the trace sink is per-domain). *)
let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
      Mutex.unlock t.mu;
      v
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let length t = locked t (fun () -> Hashtbl.length t.table)
let capacity t = t.capacity
let stats t = locked t (fun () -> t.stats)

(* Iteration snapshots the table under the lock and releases it before
   handing entries to the caller: [f] may be slow (the plan store
   serializes each plan to disk) and must not stall serving lookups. *)
let entries t =
  locked t (fun () ->
      Hashtbl.fold (fun k e acc -> (k, e.value) :: acc) t.table [])

let fold f init t = List.fold_left (fun acc (k, v) -> f acc k v) init (entries t)

let pp_stats ppf s =
  Format.fprintf ppf
    "%d hits, %d misses, %d insertions, %d evictions, %d bypasses, %d removals"
    s.hits s.misses s.insertions s.evictions s.bypasses s.removals

let touch t e =
  t.tick <- t.tick + 1;
  e.last_used <- t.tick

let find t k =
  let r =
    locked t (fun () ->
        match Hashtbl.find_opt t.table k with
        | Some e ->
            touch t e;
            t.stats <- { t.stats with hits = t.stats.hits + 1 };
            Some e.value
        | None ->
            t.stats <- { t.stats with misses = t.stats.misses + 1 };
            None)
  in
  note (match r with Some _ -> "hit" | None -> "miss");
  r

(* Evict the least-recently-used entry (smallest tick).  Caller holds
   the lock.  Returns whether an eviction happened so the metric can be
   emitted outside the critical section. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best.last_used <= e.last_used -> acc
        | _ -> Some (k, e))
      t.table None
  in
  match victim with
  | None -> false
  | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.stats <- { t.stats with evictions = t.stats.evictions + 1 };
      true

(* Re-adding an existing key (concurrent domains racing on the same
   compile) is an in-place update: it counts as neither insertion nor
   eviction, so [length = insertions - evictions] holds at all times. *)
let add t k v =
  let replaced, evicted =
    locked t (fun () ->
        let replaced = Hashtbl.mem t.table k in
        let evicted =
          (not replaced)
          && Hashtbl.length t.table >= t.capacity
          && evict_one t
        in
        t.tick <- t.tick + 1;
        Hashtbl.replace t.table k { value = v; last_used = t.tick };
        if not replaced then
          t.stats <- { t.stats with insertions = t.stats.insertions + 1 };
        (replaced, evicted))
  in
  if evicted then note "eviction";
  note (if replaced then "replacement" else "insertion")

(* Explicit invalidation: serving quarantine evicts the plan behind a
   batch that produced corrupt output, so the next checkout recompiles
   instead of resurrecting the suspect artifact from cache.  Removals
   are accounted separately from capacity evictions; the length
   invariant becomes [length = insertions - evictions - removals]. *)
let remove t k =
  let removed =
    locked t (fun () ->
        if Hashtbl.mem t.table k then begin
          Hashtbl.remove t.table k;
          t.stats <- { t.stats with removals = t.stats.removals + 1 };
          true
        end
        else false)
  in
  if removed then note "removal";
  removed

let note_bypass t =
  locked t (fun () ->
      t.stats <- { t.stats with bypasses = t.stats.bypasses + 1 });
  note "bypass"

type outcome = Hit | Miss | Bypassed

let outcome_to_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Bypassed -> "bypassed"

(* The caching protocol in one place: look up, or compile and - only when
   the compiler says the artifact is cacheable - insert.  Degraded and
   fault-injected compiles return [cacheable = false] and are counted as
   bypasses, never stored.  [compute] runs outside the cache lock, so
   concurrent domains can miss on the same key and compile in parallel;
   both insertions are sound (equal keys, interchangeable values). *)
let find_or_compute t k ~compute =
  match find t k with
  | Some v -> (v, Hit)
  | None ->
      let v, cacheable = compute () in
      if cacheable then begin
        add t k v;
        (v, Miss)
      end
      else begin
        note_bypass t;
        (v, Bypassed)
      end
