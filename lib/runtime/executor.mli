(** Plan execution against real tensor values.

    Executing a plan must reproduce the reference interpreter exactly,
    whatever backend produced it. *)

open Astitch_tensor
open Astitch_plan

exception Execution_error of string

val run :
  Kernel_plan.t -> params:(string * Tensor.t) list -> Tensor.t list
(** Walk kernels in plan order; graph outputs in declaration order.
    @raise Execution_error if the plan reads a value before computing it. *)

val run_and_check :
  ?eps:float ->
  Kernel_plan.t ->
  params:(string * Tensor.t) list ->
  Tensor.t list
(** {!run}, then compare every output against {!Interp.run}.
    @raise Execution_error on divergence. *)

type context
(** A plan prepared for repeated execution: kernels flattened to an
    instruction array, one preallocated destination buffer per evaluated
    node, constants/iotas folded at preparation time, and parameter slots
    pre-resolved.  Not safe for concurrent use (buffers are shared across
    calls). *)

val create_context : Kernel_plan.t -> context
(** Prepare [plan] for repeated execution.  The one-time cost is
    proportional to the plan; each subsequent {!run_context} call does
    only the numeric work plus output copies. *)

val context_plan : context -> Kernel_plan.t

val run_context :
  context -> params:(string * Tensor.t) list -> Tensor.t list
(** Execute the prepared plan.  Bit-identical to {!run} on the same plan
    and parameters; outputs are freshly copied, so they stay valid after
    later calls reuse the context's buffers.
    @raise Execution_error if the plan reads a value before computing it.
    @raise Interp.Missing_parameter if a graph parameter is unbound. *)
