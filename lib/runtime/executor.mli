(** Plan execution against real tensor values.

    Executing a plan must reproduce the reference interpreter exactly,
    whatever backend produced it. *)

open Astitch_tensor
open Astitch_plan

exception Execution_error of string

val run :
  Kernel_plan.t -> params:(string * Tensor.t) list -> Tensor.t list
(** Walk kernels in plan order; graph outputs in declaration order.
    @raise Execution_error if the plan reads a value before computing it. *)

val run_and_check :
  ?eps:float ->
  Kernel_plan.t ->
  params:(string * Tensor.t) list ->
  Tensor.t list
(** {!run}, then compare every output against {!Interp.run}.
    @raise Execution_error on divergence. *)
