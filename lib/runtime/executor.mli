(** Plan execution against real tensor values.

    Executing a plan must reproduce the reference interpreter exactly,
    whatever backend produced it. *)

open Astitch_tensor
open Astitch_plan

exception Execution_error of string

val run :
  Kernel_plan.t -> params:(string * Tensor.t) list -> Tensor.t list
(** Walk kernels in plan order; graph outputs in declaration order.
    @raise Execution_error if the plan reads a value before computing it. *)

val run_and_check :
  ?eps:float ->
  Kernel_plan.t ->
  params:(string * Tensor.t) list ->
  Tensor.t list
(** {!run}, then compare every output against {!Interp.run}.
    @raise Execution_error on divergence. *)

type context
(** A plan prepared for repeated execution.  By default each kernel is
    compiled into a fused recipe that honors the plan's stitching
    schemes: Register values are scalarized into consumer loops,
    Shared_mem values are staged per block in reusable slabs, and only
    Device_mem/Global_scratch values get full buffers - drawn from a
    liveness-driven arena, so strictly fewer buffers exist than ops run.
    Kernels with unsupported patterns fall back (with a reason, see
    {!context_fallbacks}) to the reference per-node instruction path.
    Not safe for concurrent use (buffers are shared across calls). *)

val create_context : ?fused:bool -> ?timed:bool -> Kernel_plan.t -> context
(** Prepare [plan] for repeated execution.  [fused] (default [true],
    matching [Config.full.fused_exec]) selects the fused engine;
    [~fused:false] forces the reference path for every kernel.  [timed]
    (default [false]) accumulates per-kernel wall time into the
    {!exec_report} at a small per-run cost.  The one-time cost is
    proportional to the plan; each subsequent {!run_context} call does
    only the numeric work plus output copies. *)

val context_plan : context -> Kernel_plan.t

val exec_report : context -> Profile.exec_report
(** Measured execution counters: per-kernel fused/reference mode, bytes
    materialized vs scalarized/staged, arena high-water mark.  Staging
    traffic and wall time accumulate as the context runs. *)

val context_fallbacks : context -> (string * string) list
(** [(kernel, reason)] for every kernel running on the reference path. *)

val rebindable : context -> bool
(** True when the context can execute symbolic batches: its plan carries
    a batch classification ({!Kernel_plan.t}[.batch]) and every kernel
    lowered to the fused recipe.  Reference-path kernels re-derive values
    against the full compiled shapes and cannot be prefix-bounded. *)

val run_context :
  ?batch:int -> context -> params:(string * Tensor.t) list -> Tensor.t list
(** Execute the prepared plan.  Bit-identical to {!run} on the same plan
    and parameters; outputs are freshly copied, so they stay valid after
    later calls reuse the context's buffers.

    [?batch] executes a symbolic batch b on a {!rebindable} context
    compiled at max batch B: scaled parameters bind at their batch-b
    prefix shapes, every scaled loop/slab/scratch bound shrinks to the
    prefix, scaled thread mappings are re-packed (validated once per
    batch size), and outputs come back under their batch-b shapes -
    bit-identical to a fresh fixed-extent compile at b, with no
    recompilation.  Omitting [batch] (or passing B) is the ordinary
    full-extent run.
    @raise Invalid_argument if [batch] is given on a non-rebindable
    context or falls outside [1, B].
    @raise Execution_error if the plan reads a value before computing it.
    @raise Interp.Missing_parameter if a graph parameter is unbound. *)
