(** LRU cache for compiled artifacts, keyed by canonical graph
    fingerprint x architecture x config serialization.

    The key's soundness comes from {!Astitch_ir.Fingerprint}: equal keys
    imply structurally identical live graphs under the same compiler
    settings, so a hit can be served verbatim.  Degraded or
    fault-injected compiles must never be inserted; route them through
    {!note_bypass} (or return [cacheable = false] from
    {!find_or_compute}).

    Safe for concurrent domains: all table/stat mutation is serialized
    behind an internal mutex, so one cache can back a whole serving
    worker pool.  {!find_or_compute} runs its [compute] outside the
    lock; two domains may therefore compile the same key concurrently,
    and the later insertion replaces the earlier (sound, since equal
    keys imply interchangeable artifacts). *)

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  bypasses : int;  (** compiles that were deliberately not cached *)
  removals : int;  (** explicit invalidations ({!remove}) *)
}

val zero_stats : stats

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** An empty cache holding at most [capacity] (default 128) entries.
    @raise Invalid_argument if [capacity <= 0]. *)

val key : fingerprint:string -> arch:string -> config:string -> string
(** Compose the three key components canonically. *)

val find : 'a t -> string -> 'a option
(** Lookup; refreshes recency and counts a hit or miss. *)

val add : 'a t -> string -> 'a -> unit
(** Insert, evicting the least-recently-used entry when full.  Re-adding
    an existing key replaces its value in place - no spurious eviction,
    and no insertion count either, so [length = insertions - evictions]
    is an invariant. *)

val remove : 'a t -> string -> bool
(** Invalidate one entry (quarantine evicting a suspect plan); [true]
    when the key was present.  Counted in [removals], so
    [length = insertions - evictions - removals] is an invariant. *)

val note_bypass : 'a t -> unit
(** Record a compile that deliberately skipped the cache. *)

type outcome = Hit | Miss | Bypassed

val outcome_to_string : outcome -> string

val find_or_compute :
  'a t -> string -> compute:(unit -> 'a * bool) -> 'a * outcome
(** [find_or_compute t k ~compute] returns the cached value on a hit;
    otherwise runs [compute] and inserts the result only when it reports
    itself cacheable ([Miss]), counting a bypass otherwise ([Bypassed]). *)

val length : 'a t -> int
val capacity : 'a t -> int
val stats : 'a t -> stats

val entries : 'a t -> (string * 'a) list
(** Snapshot of all (key, value) pairs, in unspecified order.  Taken
    under the lock, returned outside it: safe to consume slowly (the
    plan store's save path serializes each entry to disk) without
    stalling concurrent lookups.  Does not touch recency or stats. *)

val fold : ('acc -> string -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** [fold f init t] folds [f] over a snapshot of the entries
    (see {!entries}); iteration order is unspecified. *)

val pp_stats : Format.formatter -> stats -> unit
(** Render all six counters (including [removals]) on one line, so
    [length = insertions - evictions - removals] can be read off the
    printed stats directly. *)
