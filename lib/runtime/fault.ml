(* User-facing fault-injection harness.

   Re-exports the registry that lives next to the compiler passes
   ([Astitch_plan.Fault_site]) so tests and the CLI can arm faults
   without depending on pass internals.  The contract under test, per
   layer: with any compile-site fault armed, compilation either degrades
   to a plan that still matches the reference interpreter or returns a
   structured [Compile_error]; with any runtime-site fault armed, every
   admitted serving request still resolves to a structured outcome and
   no corrupted value is ever delivered — never a bare exception, never
   silent wrong numerics, never a lost request. *)

module Site = Astitch_plan.Fault_site

type site = Site.site =
  | Clustering
  | Dominant_merging
  | Mem_planning
  | Launch_config
  | Codegen
  | Kernel_exec
  | Staged_restage
  | Pack
  | Unpack
  | Worker_loop

type mode = Site.mode = Raise | Corrupt | Stall

type plan = Site.plan = {
  site : site;
  mode : mode;
  seed : int;
  fuel : int;
}

exception
  Runtime_fault = Site.Runtime_fault

let all_sites = Site.all_sites
let runtime_sites = Site.runtime_sites
let every_site = Site.every_site
let is_runtime_site = Site.is_runtime_site
let site_to_string = Site.site_to_string
let site_of_string = Site.site_of_string
let mode_to_string = Site.mode_to_string
let mode_of_string = Site.mode_of_string
let plan = Site.plan
let inject plans = Site.arm plans
let clear () = Site.disarm ()
let fired () = Site.fired ()
let active () = Site.active ()

(* Parse "site:mode[:seed[:fuel]]", the CLI's --inject syntax. *)
let plan_of_string s =
  match String.split_on_char ':' s with
  | [] -> None
  | site_s :: rest -> (
      match site_of_string site_s with
      | None -> None
      | Some site -> (
          let int_opt s = int_of_string_opt (String.trim s) in
          match rest with
          | [] -> Some (plan site)
          | [ mode_s ] ->
              Option.map (fun mode -> plan ~mode site) (mode_of_string mode_s)
          | [ mode_s; seed_s ] ->
              Option.bind (mode_of_string mode_s) (fun mode ->
                  Option.map (fun seed -> plan ~mode ~seed site) (int_opt seed_s))
          | [ mode_s; seed_s; fuel_s ] ->
              Option.bind (mode_of_string mode_s) (fun mode ->
                  Option.bind (int_opt seed_s) (fun seed ->
                      Option.map
                        (fun fuel -> plan ~mode ~seed ~fuel site)
                        (int_opt fuel_s)))
          | _ -> None))

let plan_to_string (p : plan) =
  Printf.sprintf "%s:%s:%d:%d" (site_to_string p.site) (mode_to_string p.mode)
    p.seed p.fuel

(* Arm, run, disarm — even on exceptions. *)
let with_faults plans f =
  inject plans;
  Fun.protect ~finally:clear f
