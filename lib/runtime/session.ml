(* Compile-and-run convenience: the "session" a user of the library drives,
   and the comparison harness the benchmarks are built on. *)

open Astitch_ir
open Astitch_tensor
open Astitch_plan
module Trace = Astitch_obs.Trace

type result = {
  backend_name : string;
  plan : Kernel_plan.t;
  profile : Profile.t;
}

let compile (backend : Backend_intf.t) arch g =
  let attrs =
    if Trace.enabled () then
      [
        ("backend", Trace.Str backend.Backend_intf.name);
        ("arch", Trace.Str arch.Astitch_simt.Arch.name);
      ]
    else []
  in
  Trace.with_span ~phase:"session" "compile" ~attrs (fun () ->
      let plan = backend.compile arch g in
      let profile =
        Trace.with_span ~phase:"session" "profile-estimate" (fun () ->
            Profile.profile ~config:backend.cost_config plan)
      in
      { backend_name = backend.name; plan; profile })

type resilient = {
  result : result;
  report : Astitch_core.Degradation.report;
}

(* Compile with per-cluster graceful degradation: scopes that fail at
   full strength fall down the ladder alone, the rest of the graph stays
   fully stitched, and the report says what was lost.  With the default
   config and a healthy graph the report is empty and the plan matches
   [Astitch.compile] exactly. *)
let compile_resilient ?(config = Astitch_core.Config.full) arch g =
  let attrs =
    if Trace.enabled () then
      [ ("arch", Trace.Str arch.Astitch_simt.Arch.name) ]
    else []
  in
  Trace.with_span ~phase:"session" "compile-resilient" ~attrs (fun () ->
      match Astitch_core.Fallback.compile config arch g with
      | Error e -> Error e
      | Ok (plan, report) ->
          let profile =
            Trace.with_span ~phase:"session" "profile-estimate" (fun () ->
                Profile.profile ~config:Astitch_core.Astitch.cost_config plan)
          in
          Ok
            {
              result = { backend_name = "AStitch-resilient"; plan; profile };
              report;
            })

(* --- Compile-once caching ---------------------------------------------

   Serving recompiles the same models; both compile entry points get a
   cached variant keyed by canonical graph fingerprint x architecture x
   compiler identity.  Soundness of serving a hit verbatim rests on the
   fingerprint (structurally identical live graphs) and on never caching
   anything that is not a full-strength compile: fault-injected compiles
   are detected via the Fault_site arming epoch/firing counter, degraded
   resilient compiles via a non-empty report, and both are counted as
   cache bypasses. *)

type cache = result Plan_cache.t
type resilient_cache = resilient Plan_cache.t

let make_cache ?capacity () : cache = Plan_cache.create ?capacity ()

let make_resilient_cache ?capacity () : resilient_cache =
  Plan_cache.create ?capacity ()

(* Did a fault-injection window overlap this compile?  [arm] bumps the
   epoch and [disarm] leaves the counters in place, so comparing epoch
   and firing counter around the compile catches arming inside it even
   though the compile disarms on the way out.  Only compile-site faults
   matter here: a serving process with runtime-site faults armed (chaos
   mode) still produces full-strength plans, and refusing to cache them
   would silently turn chaos runs into compile-bound ones. *)
let with_fault_watch f =
  let epoch0 = Fault_site.epoch () and fired0 = Fault_site.compile_fired () in
  let armed0 = Fault_site.compile_active () in
  let x = f () in
  let clean =
    (not armed0)
    && (not (Fault_site.compile_active ()))
    && Fault_site.epoch () = epoch0
    && Fault_site.compile_fired () = fired0
  in
  (x, clean)

let cache_key (backend : Backend_intf.t) arch g =
  Plan_cache.key
    ~fingerprint:(Fingerprint.of_graph g)
    ~arch:arch.Astitch_simt.Arch.name ~config:backend.Backend_intf.name

(* Rebuild a full session result around a plan that was NOT just
   compiled - one deserialized from the plan store.  The profile is
   deterministic from the plan and the backend's cost config, so
   recomputing it is exact; crucially this path emits no compile-phase
   span, which is what lets a warm restart prove "zero cold compiles"
   from its trace. *)
let result_of_plan (backend : Backend_intf.t) plan =
  {
    backend_name = backend.Backend_intf.name;
    plan;
    profile = Profile.profile ~config:backend.Backend_intf.cost_config plan;
  }

(* Seed the cache with an externally produced result (a store-loaded
   plan that already passed the bit-identity gate), so the first real
   checkout hits instead of compiling. *)
let precache (cache : cache) (backend : Backend_intf.t) arch g result =
  Plan_cache.add cache (cache_key backend arch g) result

let compile_cached (cache : cache) (backend : Backend_intf.t) arch g =
  Plan_cache.find_or_compute cache (cache_key backend arch g)
    ~compute:(fun () -> with_fault_watch (fun () -> compile backend arch g))

(* Quarantine's cache eviction: when a batch served from a cached plan
   produced corrupt output, drop the plan so the next checkout
   recompiles it instead of trusting the suspect artifact. *)
let uncache (cache : cache) (backend : Backend_intf.t) arch g =
  Plan_cache.remove cache (cache_key backend arch g)

let compile_resilient_cached ?(config = Astitch_core.Config.full)
    (cache : resilient_cache) arch g =
  let key =
    Plan_cache.key
      ~fingerprint:(Fingerprint.of_graph g)
      ~arch:arch.Astitch_simt.Arch.name
      ~config:(Astitch_core.Config.cache_key config)
  in
  match Plan_cache.find cache key with
  | Some r -> (Ok r, Plan_cache.Hit)
  | None -> (
      let compiled, fault_free =
        with_fault_watch (fun () -> compile_resilient ~config arch g)
      in
      match compiled with
      | Error _ as e ->
          Plan_cache.note_bypass cache;
          (e, Plan_cache.Bypassed)
      | Ok r ->
          if
            fault_free
            && Astitch_core.Degradation.is_empty r.report
            && config.Astitch_core.Config.faults = []
          then begin
            Plan_cache.add cache key r;
            (Ok r, Plan_cache.Miss)
          end
          else begin
            Plan_cache.note_bypass cache;
            (Ok r, Plan_cache.Bypassed)
          end)

let run ?(check = true) (backend : Backend_intf.t) arch g ~params =
  let result = compile backend arch g in
  let outputs =
    if check then Executor.run_and_check result.plan ~params
    else Executor.run result.plan ~params
  in
  (outputs, result)

(* Deterministic random bindings for every graph parameter. *)
let random_params ?(seed = 42) g =
  List.mapi
    (fun i id ->
      match Graph.op g id with
      | Op.Parameter { name } ->
          (name, Tensor.random ~seed:(seed + (31 * i)) (Graph.shape g id))
      | _ -> assert false)
    (Graph.parameters g)

(* Compare several backends on one graph; returns results in input order. *)
let compare_backends backends arch g =
  List.map (fun b -> compile b arch g) backends

let speedup ~baseline ~contender =
  baseline.profile.Profile.total_time_us
  /. contender.profile.Profile.total_time_us
