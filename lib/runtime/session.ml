(* Compile-and-run convenience: the "session" a user of the library drives,
   and the comparison harness the benchmarks are built on. *)

open Astitch_ir
open Astitch_tensor
open Astitch_plan

type result = {
  backend_name : string;
  plan : Kernel_plan.t;
  profile : Profile.t;
}

let compile (backend : Backend_intf.t) arch g =
  let plan = backend.compile arch g in
  let profile = Profile.profile ~config:backend.cost_config plan in
  { backend_name = backend.name; plan; profile }

type resilient = {
  result : result;
  report : Astitch_core.Degradation.report;
}

(* Compile with per-cluster graceful degradation: scopes that fail at
   full strength fall down the ladder alone, the rest of the graph stays
   fully stitched, and the report says what was lost.  With the default
   config and a healthy graph the report is empty and the plan matches
   [Astitch.compile] exactly. *)
let compile_resilient ?(config = Astitch_core.Config.full) arch g =
  match Astitch_core.Fallback.compile config arch g with
  | Error e -> Error e
  | Ok (plan, report) ->
      let profile =
        Profile.profile ~config:Astitch_core.Astitch.cost_config plan
      in
      Ok
        {
          result = { backend_name = "AStitch-resilient"; plan; profile };
          report;
        }

let run ?(check = true) (backend : Backend_intf.t) arch g ~params =
  let result = compile backend arch g in
  let outputs =
    if check then Executor.run_and_check result.plan ~params
    else Executor.run result.plan ~params
  in
  (outputs, result)

(* Deterministic random bindings for every graph parameter. *)
let random_params ?(seed = 42) g =
  List.mapi
    (fun i id ->
      match Graph.op g id with
      | Op.Parameter { name } ->
          (name, Tensor.random ~seed:(seed + (31 * i)) (Graph.shape g id))
      | _ -> assert false)
    (Graph.parameters g)

(* Compare several backends on one graph; returns results in input order. *)
let compare_backends backends arch g =
  List.map (fun b -> compile b arch g) backends

let speedup ~baseline ~contender =
  baseline.profile.Profile.total_time_us
  /. contender.profile.Profile.total_time_us
