(** Persistent plan store: the on-disk half of compile-once serving.

    A store is a directory of encoded kernel plans
    ({!Astitch_plan.Plan_codec}), one file per plan, named by
    [fingerprint x arch x codec version].  A restarted server points at
    the same directory and loads yesterday's plans instead of paying
    cold compiles; anything unreadable - wrong magic, version skew,
    corruption, truncation - is reported as [Rejected] and the caller
    recompiles, so a damaged store degrades to a cold start, never to a
    crash or a wrong plan.

    One store directory serves one compiler identity: the zoo persists
    plans from the full AStitch backend only, and
    {!save_session_cache} filters by backend name accordingly.  The
    codec version is baked into every filename, so bumping the codec
    orphans old files (they are simply never matched) rather than
    misparsing them.

    Loading performs no semantic validation beyond the codec's - the
    bit-identity gate (deserialized plan must encode identically to a
    fresh compile) belongs to the caller, which is the only place a
    fresh compile exists to compare against. *)

open Astitch_plan

type t

val open_ : dir:string -> t
(** Open (creating the directory, parents included, if needed).
    @raise Sys_error if [dir] exists but is not a directory, or cannot
    be created. *)

val dir : t -> string

val filename : fingerprint:string -> arch:string -> string
(** Basename a plan is stored under: [<fingerprint>-<arch>-v<codec
    version>.plan], with non-filename-safe arch characters mangled.
    Exposed for tests and for the CI smoke job's directory checks. *)

val save :
  t -> fingerprint:string -> arch:string -> Kernel_plan.t ->
  (unit, string) result
(** Encode and persist one plan.  Atomic per plan: written to a
    temporary file in the store directory and renamed into place, so a
    crashed save never leaves a half-written plan where [load] will
    find it.  [Error] carries a human-readable I/O reason. *)

type load =
  | Loaded of Kernel_plan.t
  | Absent  (** no file for this key (includes codec-version skew) *)
  | Rejected of string
      (** file exists but cannot be trusted: I/O failure or structured
          codec error.  Caller recompiles and may {!save} over it. *)

val load : t -> fingerprint:string -> arch:string -> load
(** Never raises: every failure mode folds into [Absent]/[Rejected]. *)

val save_session_cache : t -> backend:string -> Session.cache -> int * int
(** Persist every full-strength entry of a session cache whose backend
    name matches [backend]; returns [(saved, failed)].  Fingerprint and
    arch are recovered from each plan itself (the graph travels inside
    the plan), not parsed out of cache keys. *)

val list : t -> string list
(** Basenames of current-version plan files in the store, sorted. *)
