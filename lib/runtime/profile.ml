(* Simulated nvprof: per-kernel cost estimates, whole-model timing
   breakdown (the MEM / compute / OVERHEAD split of Figure 13) and the
   aggregate performance counters of Table 5. *)

open Astitch_simt
open Astitch_plan

type kernel_profile = {
  kernel : Kernel_plan.kernel;
  work : Cost_model.work;
  estimate : Cost_model.estimate;
}

type t = {
  plan : Kernel_plan.t;
  kernels : kernel_profile list;
  mem_time_us : float; (* execution of memory-intensive (codegen) kernels *)
  compute_time_us : float; (* execution of library kernels *)
  overhead_us : float; (* launches + framework scheduling + copies *)
  total_time_us : float;
}

let profile ?(config = Cost_model.default_config) (plan : Kernel_plan.t) : t =
  let arch = plan.arch in
  let kernels =
    List.map
      (fun (k : Kernel_plan.kernel) ->
        let work = Kernel_plan.kernel_work plan k in
        let estimate =
          match k.kind with
          | Kernel_plan.Copy ->
              (* DtoD copy: read + write the tensor, latency-bound floor *)
              let bytes = work.dram_write_bytes in
              let t =
                Cost_model.memcpy_time_us ~config arch ~bytes:(2 * bytes)
              in
              {
                Cost_model.time_us = t;
                exec_time_us = t -. config.memcpy_overhead_us;
                memory_time_us = t -. config.memcpy_overhead_us;
                compute_time_us = 0.;
                overhead_us = config.memcpy_overhead_us;
                barrier_us = 0.;
                occupancy = 0.;
                sm_efficiency = 0.;
              }
          | Kernel_plan.Codegen -> Cost_model.estimate ~config arch k.launch work
          | Kernel_plan.Library ->
              (* vendor-library kernels sustain a higher issue rate at the
                 generation's default library precision (TF32 tensor cores
                 on A100), and are dispatched by the same stream for every
                 framework, without the per-op interpreter cost *)
              let config =
                {
                  config with
                  Cost_model.compute_efficiency =
                    config.Cost_model.library_compute_efficiency
                    *. arch.Arch.library_tflops /. arch.Arch.fp32_tflops;
                  framework_op_overhead_us =
                    Float.min 1.5 config.Cost_model.framework_op_overhead_us;
                }
              in
              Cost_model.estimate ~config arch k.launch work
        in
        { kernel = k; work; estimate })
      plan.kernels
  in
  let sum f = List.fold_left (fun acc kp -> acc +. f kp) 0. kernels in
  let mem_time_us =
    sum (fun kp ->
        if kp.kernel.kind = Kernel_plan.Codegen then kp.estimate.exec_time_us
        else 0.)
  in
  let compute_time_us =
    sum (fun kp ->
        if kp.kernel.kind = Kernel_plan.Library then kp.estimate.exec_time_us
        else 0.)
  in
  let memcpy_us =
    (float_of_int (plan.memcpys + plan.memsets) *. config.memcpy_overhead_us)
    +. (float_of_int plan.memcpy_bytes /. (arch.Arch.dram_bandwidth_gbs *. 1e3))
  in
  let overhead_us = sum (fun kp -> kp.estimate.overhead_us) +. memcpy_us in
  let copy_exec =
    sum (fun kp ->
        if kp.kernel.kind = Kernel_plan.Copy then kp.estimate.exec_time_us
        else 0.)
  in
  let overhead_us = overhead_us +. copy_exec in
  {
    plan;
    kernels;
    mem_time_us;
    compute_time_us;
    overhead_us;
    total_time_us = mem_time_us +. compute_time_us +. overhead_us;
  }

(* --- Aggregate counters (Table 5 / Sec 6.2) ---------------------------- *)

type counters = {
  dram_read_transactions : int;
  dram_write_transactions : int;
  inst_fp32 : int;
}

let zero_counters =
  { dram_read_transactions = 0; dram_write_transactions = 0; inst_fp32 = 0 }

(* Counters over memory-intensive kernels only, as the paper reports. *)
let mem_counters t =
  List.fold_left
    (fun acc kp ->
      if kp.kernel.kind = Kernel_plan.Codegen then
        {
          dram_read_transactions =
            acc.dram_read_transactions
            + Cost_model.transactions kp.work.dram_read_bytes;
          dram_write_transactions =
            acc.dram_write_transactions
            + Cost_model.transactions kp.work.dram_write_bytes;
          inst_fp32 = acc.inst_fp32 + kp.work.fp32_insts;
        }
      else acc)
    zero_counters t.kernels

(* --- Top-k% analysis (Figure 14/15/16) ---------------------------------- *)

(* Memory-intensive kernels sorted by execution time, descending. *)
let mem_kernels_by_time t =
  List.filter (fun kp -> kp.kernel.kind = Kernel_plan.Codegen) t.kernels
  |> List.sort (fun a b ->
         compare b.estimate.exec_time_us a.estimate.exec_time_us)

(* The kernels covering the top [frac] of memory-intensive execution time. *)
let top_mem_kernels ~frac t =
  let sorted = mem_kernels_by_time t in
  let total = List.fold_left (fun acc kp -> acc +. kp.estimate.exec_time_us) 0. sorted in
  let threshold = frac *. total in
  let rec take acc covered = function
    | [] -> List.rev acc
    | kp :: rest ->
        if covered >= threshold && acc <> [] then List.rev acc
        else take (kp :: acc) (covered +. kp.estimate.exec_time_us) rest
  in
  take [] 0. sorted

let average f = function
  | [] -> 0.
  | l -> List.fold_left (fun acc x -> acc +. f x) 0. l /. float_of_int (List.length l)

let avg_occupancy kps = average (fun kp -> kp.estimate.Cost_model.occupancy) kps
let avg_sm_efficiency kps =
  average (fun kp -> kp.estimate.Cost_model.sm_efficiency) kps

(* --- Reporting helpers --------------------------------------------------- *)

let mem_kernel_count t =
  List.length (Kernel_plan.memory_intensive_kernels t.plan)

let pp_breakdown fmt t =
  Format.fprintf fmt
    "total %.1fus = MEM %.1fus + compute %.1fus + overhead %.1fus \
     (%d mem kernels, %d lib kernels, %d CPY)"
    t.total_time_us t.mem_time_us t.compute_time_us t.overhead_us
    (mem_kernel_count t)
    (List.length (Kernel_plan.compute_intensive_kernels t.plan))
    (Kernel_plan.cpy_count t.plan)

(* --- Measured execution profiling (fused engine) -------------------------- *)

(* Unlike the simulated counters above, these are *measured* on the host:
   the fused execution engine fills one [exec_kernel] per plan kernel at
   context-creation time (the static byte accounting) and updates the
   mutable fields as it runs (staging traffic, wall time when timing is
   enabled). *)

type exec_kernel = {
  kname : string;
  fused : bool;
  fallback : string option; (* why the kernel runs on the reference path *)
  ops : int;
  demotions : int; (* regional ops demoted to global staging *)
  mutable loops : int; (* materialization loops the fused tape runs *)
  mutable bytes_materialized : int; (* full-buffer bytes written per run *)
  mutable bytes_scalarized : int; (* register values never materialized *)
  mutable slab_bytes : int; (* shared-slab capacity for staged values *)
  mutable bytes_staged : int; (* slab fills, accumulated across runs *)
  mutable restages : int; (* slab fills beyond one pass per consumer *)
  mutable gscratch_bytes : int; (* global-scratch slot capacity *)
  mutable bytes_staged_global : int; (* scratch fills, across runs *)
  mutable barriers_run : int; (* global barriers executed, across runs *)
  mutable wall_ns : float; (* accumulated when timing is enabled *)
  mutable runs : int;
}

type exec_report = {
  exec_kernels : exec_kernel list; (* plan order *)
  nodes_executed : int; (* ops across all kernels *)
  buffers_requested : int; (* values the reference path would materialize *)
  buffers_allocated : int; (* arena slots actually backing them *)
  arena_bytes : int; (* arena high-water mark *)
  naive_bytes : int; (* full-buffer bytes without scalarization/arena *)
}

let exec_total_staged r =
  List.fold_left (fun acc k -> acc + k.bytes_staged) 0 r.exec_kernels

let exec_fallback_kernels r =
  List.length (List.filter (fun k -> k.fallback <> None) r.exec_kernels)

(* Group fallback reasons with op/kernel ids squashed, so "op 12: no
   contiguous block geometry" and "op 31: ..." count as one reason. *)
let reason_key reason =
  String.to_seq reason
  |> Seq.fold_left
       (fun (acc, in_digits) c ->
         if c >= '0' && c <= '9' then
           if in_digits then (acc, true) else (acc ^ "N", true)
         else (acc ^ String.make 1 c, false))
       ("", false)
  |> fst

let fallback_breakdown r =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun k ->
      match k.fallback with
      | None -> ()
      | Some reason ->
          let key = reason_key reason in
          Hashtbl.replace tbl key
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    r.exec_kernels;
  Hashtbl.fold (fun key count acc -> (key, count) :: acc) tbl []
  |> List.sort (fun (ka, ca) (kb, cb) ->
         match compare cb ca with 0 -> compare ka kb | c -> c)

let pp_exec fmt r =
  let fused, fell =
    List.partition (fun k -> k.fused) r.exec_kernels
  in
  Format.fprintf fmt
    "@[<v>exec: %d kernels (%d fused, %d reference), %d ops@,\
     buffers: %d requested -> %d arena slots (%d bytes high water, naive %d)@,\
     traffic/run: %d bytes materialized, %d scalarized away, %d slab bytes@,\
     global: %d scratch bytes, %d staged globally, %d barriers, \
     %d demotions@]"
    (List.length r.exec_kernels)
    (List.length fused) (List.length fell) r.nodes_executed
    r.buffers_requested r.buffers_allocated r.arena_bytes r.naive_bytes
    (List.fold_left (fun a k -> a + k.bytes_materialized) 0 r.exec_kernels)
    (List.fold_left (fun a k -> a + k.bytes_scalarized) 0 r.exec_kernels)
    (List.fold_left (fun a k -> a + k.slab_bytes) 0 r.exec_kernels)
    (List.fold_left (fun a k -> a + k.gscratch_bytes) 0 r.exec_kernels)
    (List.fold_left (fun a k -> a + k.bytes_staged_global) 0 r.exec_kernels)
    (List.fold_left (fun a k -> a + k.barriers_run) 0 r.exec_kernels)
    (List.fold_left (fun a k -> a + k.demotions) 0 r.exec_kernels);
  (match fallback_breakdown r with
  | [] -> ()
  | breakdown ->
      Format.fprintf fmt "@,fallbacks: %d kernel(s)" (List.length fell);
      List.iter
        (fun (reason, count) ->
          Format.fprintf fmt "@,  %3dx %s" count reason)
        breakdown);
  List.iter
    (fun k ->
      Format.fprintf fmt
        "@,%-24s %s %2d ops %2d loops  mat %8dB  reg %8dB  slab %6dB  \
         staged %8dB (%d restages)%s%s%s"
        k.kname
        (if k.fused then "fused" else "ref  ")
        k.ops k.loops k.bytes_materialized k.bytes_scalarized k.slab_bytes
        k.bytes_staged k.restages
        (if k.gscratch_bytes > 0 || k.barriers_run > 0 then
           Printf.sprintf "  gmem %dB gstaged %dB %d barriers"
             k.gscratch_bytes k.bytes_staged_global k.barriers_run
         else "")
        (if k.runs > 0 && k.wall_ns > 0. then
           Printf.sprintf "  %.2fus/run" (k.wall_ns /. float_of_int k.runs /. 1e3)
         else "")
        (match k.fallback with
        | Some r -> Printf.sprintf "  [%s]" r
        | None -> ""))
    r.exec_kernels

(* Bridge the measured execution counters into the metrics registry, so
   `--metrics`, the trace CLI and the serving bench see execution
   behaviour alongside the compile/cache metrics.  Byte counters
   accumulate (counters sum across reports); capacity-like quantities are
   high-water gauges; per-kernel wall time (when timing was enabled)
   lands in a log-bucketed histogram for p50/p95/p99. *)
let publish_exec ?(metrics = Astitch_obs.Metrics.default) (r : exec_report) =
  let module M = Astitch_obs.Metrics in
  let c name v = M.add (M.counter metrics name) v in
  c "exec.reports" 1;
  c "exec.kernels" (List.length r.exec_kernels);
  c "exec.kernels_fused"
    (List.length (List.filter (fun k -> k.fused) r.exec_kernels));
  c "exec.kernels_reference"
    (List.length (List.filter (fun k -> not k.fused) r.exec_kernels));
  c "exec.nodes_executed" r.nodes_executed;
  c "exec.bytes_materialized"
    (List.fold_left (fun a k -> a + k.bytes_materialized) 0 r.exec_kernels);
  c "exec.bytes_scalarized"
    (List.fold_left (fun a k -> a + k.bytes_scalarized) 0 r.exec_kernels);
  c "exec.bytes_staged" (exec_total_staged r);
  c "exec.restages"
    (List.fold_left (fun a k -> a + k.restages) 0 r.exec_kernels);
  c "exec.fallback_kernels" (exec_fallback_kernels r);
  c "exec.bytes_staged_global"
    (List.fold_left (fun a k -> a + k.bytes_staged_global) 0 r.exec_kernels);
  c "exec.barriers"
    (List.fold_left (fun a k -> a + k.barriers_run) 0 r.exec_kernels);
  c "exec.global_demotions"
    (List.fold_left (fun a k -> a + k.demotions) 0 r.exec_kernels);
  M.set_max
    (M.gauge metrics "exec.gscratch_bytes")
    (float_of_int
       (List.fold_left (fun a k -> a + k.gscratch_bytes) 0 r.exec_kernels));
  M.set_max (M.gauge metrics "exec.arena_bytes") (float_of_int r.arena_bytes);
  M.set_max
    (M.gauge metrics "exec.buffers_allocated")
    (float_of_int r.buffers_allocated);
  let h = M.histogram metrics "exec.kernel_wall_us" in
  List.iter
    (fun k ->
      if k.runs > 0 && k.wall_ns > 0. then
        M.observe h (k.wall_ns /. float_of_int k.runs /. 1e3))
    r.exec_kernels
