(** Public entry points of the AStitch compiler. *)

open Astitch_simt
open Astitch_plan

val cost_config : Cost_model.config

val compile : ?config:Config.t -> Arch.t -> Astitch_ir.Graph.t -> Kernel_plan.t

val backend : ?config:Config.t -> unit -> Backend_intf.t

val full_backend : Backend_intf.t
val atm_backend : Backend_intf.t
(** Table 4 "ATM": XLA fusion scopes + adaptive thread mapping. *)

val hdm_backend : Backend_intf.t
(** Table 4 "HDM": exhaustive stitching without dominant merging. *)
