(* Public entry points of the AStitch compiler. *)

open Astitch_simt
open Astitch_plan

let cost_config =
  {
    Cost_model.default_config with
    Cost_model.framework_op_overhead_us = 1.5;
  }

let compile ?(config = Config.full) arch g =
  Stitch_backend.compile_with config arch g

let backend ?(config = Config.full) () =
  {
    Backend_intf.name =
      (if config = Config.full then "AStitch"
       else if config = Config.atm_only then "ATM"
       else if config = Config.no_dominant_merging then "HDM"
       else "AStitch" ^ Config.to_string config);
    cost_config;
    compile = (fun arch g -> compile ~config arch g);
  }

(* The Table 4 ablation ladder. *)
let full_backend = backend ()
let atm_backend = backend ~config:Config.atm_only ()
let hdm_backend = backend ~config:Config.no_dominant_merging ()
