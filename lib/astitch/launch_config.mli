(** Resource-aware launch configuration (paper Sec 4.5):
    assume-relax-apply register bounding that preserves the
    blocks-per-wave guarantee global barriers rely on. *)

open Astitch_simt

type t = {
  block : int;
  regs_per_thread : int;
  shared_mem_per_block : int;
  blocks_per_wave : int;
}

val shared_mem_budget : Arch.t -> int
(** Shared memory a block may use without dropping below the assumed SM
    residency (48 KB on a V100 at block 1024). *)

val plan : Arch.t -> block:int -> shared_mem_per_block:int -> t
