(* Resource-aware launch configuration (paper Sec 4.5).

   Assume-relax-apply: assume a 32-register budget (which, with
   1024-thread blocks, keeps two blocks resident per SM on a V100);
   compute the blocks-per-wave bound from that assumption plus the
   planned shared-memory usage; then relax the register bound up to
   whatever the real limiter (shared memory or the thread count) leaves
   on the table, and apply it as the per-thread register cap. *)

open Astitch_simt

type t = {
  block : int;
  regs_per_thread : int;
  shared_mem_per_block : int;
  blocks_per_wave : int;
}

(* Shared memory each block may use without dropping below the assumed
   residency (so the blocks-per-wave bound survives planning). *)
let shared_mem_budget (arch : Arch.t) =
  let block = Stdlib.min Adaptive_mapping.stitch_block arch.max_threads_per_block in
  let assumed_blocks_per_sm =
    Stdlib.max 1 (arch.max_threads_per_sm / block)
  in
  Stdlib.min arch.shared_mem_per_block
    (arch.shared_mem_per_sm / assumed_blocks_per_sm)

let plan (arch : Arch.t) ~block ~shared_mem_per_block =
  (* assume *)
  let assumed = Adaptive_mapping.assumed_regs in
  let probe =
    Launch.make ~regs_per_thread:assumed ~shared_mem_per_block ~grid:1 ~block ()
  in
  let blocks_per_sm = Occupancy.blocks_per_sm arch probe in
  let blocks_per_sm = Stdlib.max 1 blocks_per_sm in
  (* relax: the residency actually achieved bounds the register budget *)
  let relaxed =
    Stdlib.min arch.max_registers_per_thread
      (arch.registers_per_sm / (blocks_per_sm * block))
  in
  let regs = Stdlib.max assumed relaxed in
  (* Fault injection (Corrupt): blow the per-thread register cap past the
     device limit — [Occupancy.check_launchable] rejects the kernel. *)
  let regs =
    match
      Astitch_plan.Fault_site.check Astitch_plan.Fault_site.Launch_config
        ~pass:"launch-config"
    with
    | None -> regs
    | Some seed -> arch.max_registers_per_thread + 32 + (abs seed mod 64)
  in
  (* apply *)
  let final =
    Launch.make ~regs_per_thread:regs ~shared_mem_per_block ~grid:1 ~block ()
  in
  {
    block;
    regs_per_thread = regs;
    shared_mem_per_block;
    blocks_per_wave = Occupancy.blocks_per_wave arch final;
  }
