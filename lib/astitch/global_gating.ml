(* Demote-vs-split gating for shared-memory overflow (paper Sec 4.2 +
   Stripe's cost-driven scheduling).

   When a regional (shared-memory) buffer cannot stay on chip, the
   compiler has two legal lowerings:

   - DEMOTE the buffer to global scratch and keep one kernel: the value
     round-trips through DRAM and every crossing producer costs one
     in-kernel global barrier ([Barrier.cost_us], only legal while the
     whole grid stays co-resident);
   - SPLIT the kernel at the overflow point: the boundary value still
     round-trips through memory, but the second segment pays a fresh
     kernel launch instead of barriers - and its read can hit L2 when
     the boundary tensor is small enough to stay resident.

   Both sides are scored with the same analytical constants the profile
   cost model uses, so the crossover moves when the model's launch
   overhead does.  With the default config a handful of barriers
   (~5 at small sizes) costs more than one extra launch, which is
   exactly the paper's observation that global stitching wins on a few
   wide buffers and loses on many small ones. *)

open Astitch_simt

type choice = Demote | Split

type verdict = {
  choice : choice;
  legal : bool; (* can the one-kernel option hold its barriers at all? *)
  demote_us : float;
  split_us : float;
}

let gate ?(config = Cost_model.default_config) (arch : Arch.t)
    ~(launch : Launch.t) ~barriers ~staged_bytes : verdict =
  let legal = Barrier.is_legal arch launch in
  let bytes_per_us = arch.Arch.dram_bandwidth_gbs *. 1e3 in
  let traffic bytes = float_of_int bytes /. bytes_per_us in
  (* one kernel: each crossing producer syncs the grid once, and the
     staged value is written to and read back from the scratch arena *)
  let demote_us =
    (float_of_int (Stdlib.max 1 barriers)
    *. Barrier.cost_us ~blocks:launch.Launch.grid)
    +. traffic (2 * staged_bytes)
  in
  (* two kernels: the boundary value is written to device memory by the
     first and read by the second - from L2 when it stays resident -
     plus the cost of bringing a second kernel onto the device *)
  let l2_resident = 2 * staged_bytes <= arch.Arch.l2_cache_bytes in
  let split_us =
    config.Cost_model.kernel_launch_overhead_us
    +. config.Cost_model.kernel_fixed_us
    +. traffic staged_bytes
    +. (if l2_resident then 0. else traffic staged_bytes)
  in
  let choice =
    if not legal then Split
    else if demote_us <= split_us then Demote
    else Split
  in
  { choice; legal; demote_us; split_us }
