(** Compiler configuration, including the Table 4 ablation switches. *)

type t = {
  adaptive_thread_mapping : bool;
  hierarchical_data_reuse : bool;
      (** off = fall back to XLA's fusion cuts (the ATM ablation) *)
  dominant_merging : bool;
  remote_stitching : bool;
  max_remote_merge_width : int;
  compile_budget_s : float option;
      (** per-attempt compile-time budget for the resilient pipeline;
          [None] = unbounded *)
  compile_domains : int;
      (** worker domains for per-cluster compilation; [1] = sequential.
          Any setting produces byte-identical plans. *)
  faults : Astitch_plan.Fault_site.plan list;
      (** armed fault-injection plans (testing only; [[]] in production) *)
  fused_exec : bool;
      (** execute plans through the fused engine (register scalarization,
          shared-slab staging, arena-backed device buffers); off = the
          reference per-node executor.  Bit-identical either way. *)
}

val full : t

val resolve_domains : int -> int
(** [resolve_domains n] is [n] for positive [n] and the machine's
    recommended domain count for [n <= 0] ("auto").  The old hard cap of
    8 domains lives nowhere anymore: [compile_domains] is honored as
    given. *)

val auto_domains : unit -> t
(** [full] with [compile_domains] resolved to the machine's recommended
    domain count. *)

val atm_only : t
(** Adaptive thread mapping on XLA's fusion plan (Table 4 "ATM"). *)

val no_dominant_merging : t
(** Exhaustive stitching without dominant merging (Table 4 "HDM"). *)

val to_string : t -> string

val cache_key : t -> string
(** Canonical serialization of every plan-affecting field, for plan-cache
    keys.  [compile_domains] and [fused_exec] are excluded (parallel
    compilation is byte-identical to sequential, and fused execution is a
    runtime choice over an unchanged plan; neither may fragment the
    cache). *)
