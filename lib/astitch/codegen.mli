(** Pseudo-CUDA rendering of kernel plans: one annotated statement per op,
    shared/scratch declarations, group boundaries and barriers. *)

open Astitch_ir
open Astitch_plan

val kernel_params :
  Graph.t -> Kernel_plan.kernel -> Op.node_id list * Op.node_id list
(** [(external inputs, materialized outputs)] of a kernel. *)

val emit_kernel : Graph.t -> Kernel_plan.kernel -> string
val emit_plan : Kernel_plan.t -> string
