(** Dominant identification, dominant merging and op grouping
    (paper Sec 4.3 step 1). *)

open Astitch_ir

type group = {
  dominant : Op.node_id;  (** final dominant: drives the thread mapping *)
  sub_dominants : Op.node_id list;
  members : Op.node_id list;  (** ascending ids; includes all dominants *)
}

val candidates :
  Graph.t -> nodes:Op.node_id list -> escaping:(Op.node_id -> bool) ->
  Op.node_id list
(** Reduces, heavy element-wise ops feeding broadcasts, and the stitch
    scope's outputs. *)

val pick_dominant : Graph.t -> Op.node_id list -> Op.node_id option
(** Prefer a reduce (largest input first), then the largest candidate. *)

val group_ops :
  merging:bool ->
  Graph.t ->
  nodes:Op.node_id list ->
  escaping:(Op.node_id -> bool) ->
  group list
(** With merging, groups partition the scope (candidates joined through
    local ops - including shared producers - share a group).  Without,
    each candidate keeps its own input cone and shared producers appear
    in several groups. *)

val occurrences : group list -> Op.node_id -> int
(** Times a node appears across groups (the duplication dominant merging
    removes). *)
