(* The AStitch compiler (paper Sec 4): lowers each stitch scope to a
   single kernel using the three-step automatic design —
   1. dominant identification + op grouping (Dominant),
   2. adaptive thread mapping + schedule propagation (Adaptive_mapping,
      Locality.adapt_elementwise),
   3. finalization: passive block-locality checking picks regional vs
      global stitching per dominant; memory planning demotes regional
      buffers that overflow the shared-memory budget and lays out the
      global scratch arena; resource-aware launch configuration bounds
      registers so the blocks-per-wave guarantee survives. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan
module Trace = Astitch_obs.Trace

(* --- Per-cluster compilation -------------------------------------------- *)

type node_role = {
  mutable mapping : Thread_mapping.t;
  mutable placement : Kernel_plan.placement;
  mutable scheme : Scheme.t;
  mutable recompute : int;
}

let compile_cluster_body ?demoted_out (config : Config.t) (arch : Arch.t) g
    ~(name : string) ~(smem_budget : int) ~(group_base : int)
    (nodes : Op.node_id list) : Kernel_plan.kernel =
  let in_cluster = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace in_cluster id ()) nodes;
  let live = Graph.live_ids g in
  let escaping id =
    Graph.is_output g id
    || List.exists
         (fun c -> live.(c) && not (Hashtbl.mem in_cluster c))
         (Graph.consumers g id)
  in
  (* Step 1: dominants and groups *)
  let groups =
    Trace.with_span ~phase:"compile" "dominant-grouping" (fun () ->
        Dominant.group_ops ~merging:config.dominant_merging g ~nodes ~escaping)
  in
  let occurrences = Dominant.occurrences groups in
  let is_candidate =
    let set = Hashtbl.create 16 in
    List.iter
      (fun (grp : Dominant.group) ->
        Hashtbl.replace set grp.dominant ();
        List.iter (fun s -> Hashtbl.replace set s ()) grp.sub_dominants)
      groups;
    Hashtbl.mem set
  in
  (* Step 2: thread mapping per group, with proactive adaptation of
     element-wise groups to their producer's row partition *)
  let group_of = Hashtbl.create 16 in
  let group_index = Hashtbl.create 16 in
  let group_mapping : (Op.node_id, Thread_mapping.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let dominant_mapping id =
    if config.adaptive_thread_mapping then Adaptive_mapping.for_dominant arch g id
    else Astitch_backends.Fusion_common.naive_mapping arch g id
  in
  Trace.with_span ~phase:"compile" "schedule-propagation" (fun () ->
  List.iteri
    (fun i (grp : Dominant.group) ->
      List.iter
        (fun id ->
          if not (Hashtbl.mem group_of id) then begin
            Hashtbl.replace group_of id grp;
            Hashtbl.replace group_index id (group_base + i)
          end)
        grp.members)
    groups;
  List.iter
    (fun (grp : Dominant.group) ->
      let d = grp.dominant in
      let mapping =
        if Op.is_reduce (Graph.op g d) then dominant_mapping d
        else begin
          (* proactive block-locality adaptation: adopt the partition of a
             producer group reaching this group through its members *)
          let producer_dominants =
            List.concat_map
              (fun id ->
                List.filter
                  (fun operand ->
                    Hashtbl.mem in_cluster operand
                    && is_candidate operand
                    && not (List.mem operand grp.members))
                  (Graph.operands g id))
              grp.members
          in
          let adopted =
            if config.adaptive_thread_mapping then
              List.find_map
                (fun producer ->
                  match Hashtbl.find_opt group_mapping producer with
                  | Some pm ->
                      Locality.adapt_elementwise arch ~producer:pm
                        ~elements:(Graph.num_elements g d)
                  | None -> None)
                producer_dominants
            else None
          in
          match adopted with
          | Some m -> m
          | None -> dominant_mapping d
        end
      in
      List.iter (fun id -> Hashtbl.replace group_mapping id mapping) grp.members;
      Hashtbl.replace group_mapping d mapping)
    groups);
  (* Sub-dominant reduces keep a reduce-shaped mapping of their own (their
     geometry differs from the final dominant's); everything else shares
     the group schedule through element-wise propagation. *)
  let node_mapping id =
    let grp_map =
      match Hashtbl.find_opt group_mapping id with
      | Some m -> m
      | None ->
          Adaptive_mapping.elementwise arch
            ~elements:(Graph.num_elements g id) ~rows:None
    in
    if Op.is_reduce (Graph.op g id) then dominant_mapping id
    else
      match grp_map with
      | Thread_mapping.Elementwise _ when Thread_mapping.grid grp_map > 0 ->
          let rows = Option.map fst (Thread_mapping.row_partition grp_map) in
          Thread_mapping.Elementwise
            {
              elements = Graph.num_elements g id;
              block = Thread_mapping.block grp_map;
              grid = Thread_mapping.grid grp_map;
              rows;
            }
      | m ->
          let rows = Option.map fst (Thread_mapping.row_partition m) in
          Thread_mapping.Elementwise
            {
              elements = Graph.num_elements g id;
              block = Thread_mapping.block m;
              grid = Thread_mapping.grid m;
              rows;
            }
  in
  (* Step 3: placement / scheme finalization *)
  let roles : (Op.node_id, node_role) Hashtbl.t = Hashtbl.create 16 in
  let in_cluster_consumers id =
    List.filter (Hashtbl.mem in_cluster) (Graph.consumers g id)
  in
  let consumers_aligned id mapping =
    match in_cluster_consumers id with
    | [] -> true
    | consumers ->
        Locality.regional_ok ~producer_mapping:mapping
          ~consumer_mappings:
            (List.map
               (fun c ->
                 match Hashtbl.find_opt group_mapping c with
                 | Some m -> m
                 | None -> node_mapping c)
               consumers)
  in
  Trace.with_span ~phase:"compile" "locality-placement" (fun () ->
  List.iter
    (fun id ->
      let mapping = node_mapping id in
      let atomic = Thread_mapping.uses_atomics mapping in
      let placement, scheme =
        if escaping id then
          let consumers = in_cluster_consumers id in
          if consumers = [] then (Kernel_plan.Device_mem, Scheme.Independent)
          else if (not atomic) && consumers_aligned id mapping then
            (Kernel_plan.Device_mem, Scheme.Regional)
          else (Kernel_plan.Device_mem, Scheme.Global)
        else if is_candidate id then
          if (not atomic) && consumers_aligned id mapping then
            (Kernel_plan.Shared_mem, Scheme.Regional)
          else (Kernel_plan.Global_scratch, Scheme.Global)
        else (Kernel_plan.Register, Scheme.Local)
      in
      Hashtbl.replace roles id { mapping; placement; scheme; recompute = 1 })
    nodes;
  (* recompute: in-group inline duplication of local (cheap) ops, summed
     across the groups sharing a node - that sum is exactly the
     cross-group duplication paid when dominant merging is off *)
  let total_recompute = Hashtbl.create 16 in
  List.iter
    (fun (grp : Dominant.group) ->
      let member_set = Hashtbl.create 16 in
      List.iter (fun id -> Hashtbl.replace member_set id ()) grp.members;
      let demand = Hashtbl.create 16 in
      let get id = Option.value ~default:0 (Hashtbl.find_opt demand id) in
      List.iter
        (fun id ->
          if not (is_candidate id) then begin
            (* per-thread value caching within a group: max, not sum *)
            let d =
              List.fold_left
                (fun acc consumer ->
                  if Hashtbl.mem member_set consumer then
                    Stdlib.max acc
                      (Stdlib.max 1 (get consumer)
                      * Pattern.fanout g ~producer:id ~consumer)
                  else acc)
                0 (Graph.consumers g id)
            in
            Hashtbl.replace demand id (Stdlib.min 1_000_000 (Stdlib.max 1 d))
          end)
        (List.rev grp.members);
      List.iter
        (fun id ->
          let d = Stdlib.max 1 (get id) in
          Hashtbl.replace total_recompute id
            (d + Option.value ~default:0 (Hashtbl.find_opt total_recompute id)))
        grp.members)
    groups;
  List.iter
    (fun id ->
      let role = Hashtbl.find roles id in
      let r =
        if is_candidate id then 1
        else
          Option.value ~default:(occurrences id)
            (Hashtbl.find_opt total_recompute id)
      in
      role.recompute <- Stdlib.min 1_000_000 (Stdlib.max 1 r))
    nodes);
  (* shared-memory budget: demote overflowing regional buffers to global *)
  let smem_per_block, scratch_bytes, barriers =
    Trace.with_span ~phase:"compile" "mem-planning" (fun () ->
  let budget = smem_budget in
  let shared_entries =
    List.filter_map
      (fun id ->
        let role = Hashtbl.find roles id in
        if role.placement = Kernel_plan.Shared_mem then
          match Locality.shared_bytes_per_block g id role.mapping with
          | Some bytes -> Some (id, bytes)
          | None -> None
        else None)
      nodes
  in
  let kept, demoted = Mem_planner.fit_shared ~budget shared_entries in
  (match demoted_out with
  | Some r -> r := List.map fst demoted
  | None -> ());
  List.iter
    (fun (id, _) ->
      let role = Hashtbl.find roles id in
      role.placement <- Kernel_plan.Global_scratch;
      role.scheme <- Scheme.Global)
    demoted;
  let smem_per_block = List.fold_left (fun acc (_, b) -> acc + b) 0 kept in
  (* global-scratch arena with liveness reuse *)
  let position = Hashtbl.create 16 in
  List.iteri (fun i id -> Hashtbl.replace position id i) nodes;
  let scratch_entries =
    List.filter_map
      (fun id ->
        let role = Hashtbl.find roles id in
        if role.placement = Kernel_plan.Global_scratch then begin
          let def = Hashtbl.find position id in
          let last_use =
            List.fold_left
              (fun acc c ->
                match Hashtbl.find_opt position c with
                | Some p -> Stdlib.max acc p
                | None -> acc)
              def (Graph.consumers g id)
          in
          Some (id, Graph.bytes g id, def, last_use)
        end
        else None)
      nodes
  in
  let allocations, scratch_bytes = Mem_planner.plan_scratch scratch_entries in
  Mem_planner.check_no_aliasing allocations;
  (* barriers: one global synchronization per producer whose value crosses
     groups through global memory *)
  let barriers =
    List.length
      (List.filter
         (fun id ->
           let role = Hashtbl.find roles id in
           (role.placement = Kernel_plan.Global_scratch
           || (role.placement = Kernel_plan.Device_mem
              && role.scheme = Scheme.Global))
           && in_cluster_consumers id <> [])
         nodes)
  in
  (smem_per_block, scratch_bytes, barriers))
  in
  (* launch configuration *)
  let launch =
    Trace.with_span ~phase:"compile" "launch-config" (fun () ->
  let block =
    List.fold_left
      (fun acc id ->
        Stdlib.max acc (Thread_mapping.block (Hashtbl.find roles id).mapping))
      1 nodes
  in
  let grid =
    List.fold_left
      (fun acc id ->
        Stdlib.max acc (Thread_mapping.grid (Hashtbl.find roles id).mapping))
      1 nodes
  in
  let lc = Launch_config.plan arch ~block ~shared_mem_per_block:smem_per_block in
  Launch.make ~regs_per_thread:lc.regs_per_thread
    ~shared_mem_per_block:smem_per_block ~grid ~block ())
  in
  Trace.with_span ~phase:"compile" "codegen" (fun () ->
  let ops =
    List.map
      (fun id ->
        let role = Hashtbl.find roles id in
        {
          Kernel_plan.id;
          scheme = role.scheme;
          placement = role.placement;
          mapping = role.mapping;
          recompute = role.recompute;
          group =
            Option.value ~default:group_base (Hashtbl.find_opt group_index id);
        })
      nodes
  in
  let kernel =
    {
      Kernel_plan.name;
      kind = Kernel_plan.Codegen;
      ops;
      launch;
      barriers;
      scratch_bytes;
    }
  in
  (* Fault injection (Corrupt): demote a materialized op to a register.
     Every cluster has at least one escaping (Device_mem) op, so either a
     consumer now lives outside the kernel (co-location invariant) or a
     graph output is never materialized — [Kernel_plan.check] rejects the
     kernel either way; the corruption is never silent. *)
  match Fault_site.check Fault_site.Codegen ~pass:"codegen" with
  | None -> kernel
  | Some seed -> (
      let device_ops =
        List.filter
          (fun (o : Kernel_plan.compiled_op) ->
            o.placement = Kernel_plan.Device_mem)
          kernel.ops
      in
      match device_ops with
      | [] -> kernel
      | _ ->
          let victim =
            (List.nth device_ops (abs seed mod List.length device_ops)).id
          in
          {
            kernel with
            ops =
              List.map
                (fun (o : Kernel_plan.compiled_op) ->
                  if o.id = victim then
                    { o with placement = Kernel_plan.Register }
                  else o)
                kernel.ops;
          }))

let compile_cluster_traced ?demoted_out (config : Config.t) (arch : Arch.t) g
    ~(name : string) ~(smem_budget : int) ~(group_base : int)
    (nodes : Op.node_id list) : Kernel_plan.kernel =
  if not (Trace.enabled ()) then
    compile_cluster_body ?demoted_out config arch g ~name ~smem_budget
      ~group_base nodes
  else
    Trace.with_span ~phase:"compile" "cluster"
      ~attrs:[ ("cluster", Trace.Str name); ("ops", Trace.Int (List.length nodes)) ]
      (fun () ->
        compile_cluster_body ?demoted_out config arch g ~name ~smem_budget
          ~group_base nodes)

let compile_cluster (config : Config.t) (arch : Arch.t) g ~(name : string)
    ~(smem_budget : int) ~(group_base : int) (nodes : Op.node_id list) :
    Kernel_plan.kernel =
  compile_cluster_traced config arch g ~name ~smem_budget ~group_base nodes

(* Gated per-cluster compilation (paper Sec 4.2 + Stripe-style cost
   gating): compile the scope once; when shared-memory pressure demoted
   regional buffers to global scratch - or the kernel's barriers are
   illegal outright (grid wider than one co-resident wave) - decide with
   [Global_gating] between keeping the demotions in one barriered kernel
   and splitting the scope at the first crossing producer.  Splitting
   recompiles both halves from the graph, so the boundary value
   re-derives as an escaping Device_mem result; each half re-enters the
   gate (a half can overflow again). *)
let rec compile_cluster_gated (config : Config.t) (arch : Arch.t) g
    ~(name : string) ~(smem_budget : int) ~(group_base : int)
    (nodes : Op.node_id list) : Kernel_plan.kernel list =
  let demoted = ref [] in
  let k =
    compile_cluster_traced ~demoted_out:demoted config arch g ~name
      ~smem_budget ~group_base nodes
  in
  if k.Kernel_plan.barriers = 0 then [ k ]
  else begin
    let staged_bytes =
      List.fold_left (fun acc id -> acc + Graph.bytes g id) 0 !demoted
    in
    let verdict =
      Global_gating.gate arch ~launch:k.launch
        ~barriers:(List.length !demoted) ~staged_bytes
    in
    let keep =
      verdict.Global_gating.legal
      && (!demoted = [] || verdict.Global_gating.choice = Global_gating.Demote)
    in
    if keep then [ k ]
    else begin
      (* cut after the first producer that forced the barriers: the first
         demoted buffer, or the first global-scheme crossing otherwise *)
      let barrier_source id =
        List.exists (fun d -> d = id) !demoted
        || List.exists
             (fun (o : Kernel_plan.compiled_op) ->
               o.id = id
               && (o.placement = Kernel_plan.Global_scratch
                  || o.scheme = Scheme.Global))
             k.ops
      in
      let rec cut_at i = function
        | [] | [ _ ] -> None (* never split off an empty second half *)
        | id :: rest ->
            if barrier_source id then Some i else cut_at (i + 1) rest
      in
      match cut_at 0 nodes with
      | None -> [ k ]
      | Some cut ->
          if Trace.enabled () then
            Trace.instant ~phase:"compile" "global-split"
              ~attrs:
                [
                  ("cluster", Trace.Str name);
                  ("cut", Trace.Int cut);
                  ("demote_us", Trace.Float verdict.Global_gating.demote_us);
                  ("split_us", Trace.Float verdict.Global_gating.split_us);
                ];
          let nodes_a = List.filteri (fun i _ -> i <= cut) nodes in
          let nodes_b = List.filteri (fun i _ -> i > cut) nodes in
          compile_cluster_gated config arch g ~name:(name ^ "a") ~smem_budget
            ~group_base nodes_a
          @ compile_cluster_gated config arch g ~name:(name ^ "b") ~smem_budget
              ~group_base nodes_b
    end
  end

(* --- Whole-graph compilation -------------------------------------------- *)

(* Combine the per-cluster kernels of one remote-stitched group into a
   single kernel.  The parts are mutually independent, so their blocks run
   concurrently: grids add (capped at the wave bound so barriers stay
   legal), per-block shared memory adds (each part was planned against a
   budget slice), barriers run in lockstep (max). *)
let combine_parts (arch : Arch.t) ~name = function
  | [] -> None
  | [ single ] -> Some { single with Kernel_plan.name }
  | parts ->
      let ops = List.concat_map (fun (k : Kernel_plan.kernel) -> k.ops) parts in
      let block =
        List.fold_left
          (fun acc (k : Kernel_plan.kernel) ->
            Stdlib.max acc k.launch.Launch.block)
          1 parts
      in
      let grid =
        Stdlib.min
          (Adaptive_mapping.blocks_per_wave arch)
          (List.fold_left
             (fun acc (k : Kernel_plan.kernel) -> acc + k.launch.Launch.grid)
             0 parts)
      in
      let smem =
        List.fold_left
          (fun acc (k : Kernel_plan.kernel) ->
            acc + k.launch.Launch.shared_mem_per_block)
          0 parts
      in
      let barriers =
        List.fold_left
          (fun acc (k : Kernel_plan.kernel) -> Stdlib.max acc k.barriers)
          0 parts
      in
      let scratch_bytes =
        List.fold_left
          (fun acc (k : Kernel_plan.kernel) -> acc + k.scratch_bytes)
          0 parts
      in
      let lc = Launch_config.plan arch ~block ~shared_mem_per_block:smem in
      Some
        {
          Kernel_plan.name;
          kind = Kernel_plan.Codegen;
          ops;
          launch =
            Launch.make ~regs_per_thread:lc.regs_per_thread
              ~shared_mem_per_block:smem ~grid ~block ();
          barriers;
          scratch_bytes;
        }

let compile_with_armed (config : Config.t) (arch : Arch.t) g : Kernel_plan.t =
  if not config.hierarchical_data_reuse then
    (* ATM ablation: XLA's fusion scopes, adaptive mappings only *)
    Trace.with_span ~phase:"compile" "fusion-codegen" (fun () ->
        Astitch_backends.Fusion_common.compile ~name:"atm"
          ~cut_edge:Astitch_backends.Xla_backend.For_ablation.cut_edge
          ~mapping_for_root:(fun arch g id ->
            if
              config.adaptive_thread_mapping
              && Op.is_reduce (Graph.op g id)
            then Adaptive_mapping.for_dominant arch g id
            else Astitch_backends.Fusion_common.naive_mapping arch g id)
          arch g)
  else begin
    let clusters =
      Trace.with_span ~phase:"compile" "clustering" (fun () ->
          Clustering.clusters g)
    in
    let cluster_groups =
      Trace.with_span ~phase:"compile" "remote-stitching" (fun () ->
          if config.remote_stitching then
            Clustering.remote_stitch_groups
              ~max_merge_width:config.max_remote_merge_width g clusters
          else List.map (fun c -> [ c ]) clusters)
    in
    (* Each group's kernel depends only on (g, config, arch): the groups
       compile independently and merge back in input order, so the plan
       is byte-identical at any domain count.  Parallelism is gated off
       when fault injection is armed (global mutable registry) or a
       compile budget is set (budgets read process CPU time, which
       concurrent domains inflate). *)
    let domains =
      if
        config.faults <> []
        || Astitch_plan.Fault_site.compile_active ()
        || config.compile_budget_s <> None
      then 1
      else config.compile_domains
    in
    let compile_group i (parts : Clustering.cluster list) =
      match parts with
      | [ { Clustering.nodes = [ single ]; _ } ]
        when Astitch_backends.Fusion_common.is_layout_only g single ->
          [ Astitch_backends.Fusion_common.copy_kernel g single ]
      | [ c ] -> (
          (* single-cluster group: the demote-vs-split gate applies (a
             split is local to this scope; remote-stitched groups merge
             grids and cannot split without breaking the lockstep wave) *)
          let name = Printf.sprintf "stitch_op_%d" i in
          let smem_budget = Launch_config.shared_mem_budget arch in
          match
            compile_cluster_gated config arch g ~name:(name ^ ".0")
              ~smem_budget ~group_base:0 c.Clustering.nodes
          with
          | [ k ] -> [ { k with Kernel_plan.name } ]
          | ks -> ks)
      | _ ->
          let name = Printf.sprintf "stitch_op_%d" i in
          let nparts = List.length parts in
          let smem_budget = Launch_config.shared_mem_budget arch / nparts in
          List.mapi
            (fun j (c : Clustering.cluster) ->
              compile_cluster config arch g
                ~name:(Printf.sprintf "%s.%d" name j)
                ~smem_budget ~group_base:(j * 1024) c.Clustering.nodes)
            parts
          |> combine_parts arch ~name |> Option.to_list
    in
    let stitch_kernels =
      Parallel.mapi ~domains compile_group cluster_groups |> List.concat
    in
    Trace.with_span ~phase:"compile" "kernel-schedule" (fun () ->
        let kernels =
          Kernel_plan.toposort_kernels g
            (stitch_kernels @ Lowering.library_kernels arch g)
        in
        let plan =
          {
            Kernel_plan.arch;
            graph = g;
            kernels;
            memcpys = Lowering.output_memcpys g;
            memsets = Lowering.atomic_memsets kernels;
            memcpy_bytes = Lowering.output_bytes g;
    batch = None;
          }
        in
        Kernel_plan.check plan;
        plan)
  end

(* Arm the config's fault plans for the duration of one compile, so
   [astitch_cli --inject] exercises the non-resilient path too.  Without
   armed faults this is [compile_with_armed] exactly. *)
let compile_with (config : Config.t) (arch : Arch.t) g : Kernel_plan.t =
  if config.faults = [] then compile_with_armed config arch g
  else begin
    Fault_site.arm config.faults;
    Fun.protect
      ~finally:(fun () -> Fault_site.disarm ())
      (fun () -> compile_with_armed config arch g)
  end
