(* Per-cluster graceful degradation.

   The paper's production posture (Sec 6.3) is that a JIT compiler serving
   thousands of jobs must never take a training job down with it.  This
   module implements that posture for compile failures: when a stitch
   scope cannot be compiled at full strength — its plan fails
   [Kernel_plan.check], a pass raises, or the per-attempt compile-time
   budget is exceeded — that scope alone is retried with progressively
   safer strategies while the rest of the graph stays fully stitched:

     Remote -> Stitched -> Regional -> Local -> Fusion -> Kernel_per_op

   Regional demotes global schemes to device memory; Local additionally
   gives up shared memory; Fusion falls back to XLA-style fusion cuts; the
   terminal kernel-per-op rung is a direct constructor that touches none
   of the instrumented passes, so the ladder always terminates even under
   persistent injected faults.  Every accepted kernel is re-validated with
   [Kernel_plan.check_kernel]; every step down is recorded as a
   [Degradation.event].  In the no-fault case the result is structurally
   identical to [Stitch_backend.compile_with] and the report is empty. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan
module FC = Astitch_backends.Fusion_common
module Trace = Astitch_obs.Trace
module Metrics = Astitch_obs.Metrics

(* Observability: every step down the ladder counts against
   [fallback.degradations] and, when a trace sink is installed, emits a
   "degrade" instant carrying the scope and the rung transition. *)
let note_degrade cluster from_level to_level =
  Metrics.(inc (counter default "fallback.degradations"));
  if Trace.enabled () then
    Trace.instant ~phase:"fallback" "degrade"
      ~attrs:
        [
          ("cluster", Trace.Str cluster);
          ("from", Trace.Str (Degradation.level_to_string from_level));
          ("to", Trace.Str (Degradation.level_to_string to_level));
        ]

(* --- Terminal constructors (uninstrumented) ----------------------------- *)

(* One kernel per op: naive mapping, everything materialized.  Deliberately
   avoids every fault-injection site so it cannot be blocked. *)
let per_op_kernel (arch : Arch.t) g id =
  if FC.is_layout_only g id then FC.copy_kernel g id
  else
    let mapping = FC.naive_mapping arch g id in
    {
      Kernel_plan.name = Printf.sprintf "fallback_op_%d" id;
      kind = Kernel_plan.Codegen;
      ops =
        [
          {
            Kernel_plan.id;
            scheme = Scheme.Independent;
            placement = Kernel_plan.Device_mem;
            mapping;
            recompute = 1;
            group = 0;
          };
        ];
      launch =
        Launch.make
          ~grid:(Thread_mapping.grid mapping)
          ~block:(Thread_mapping.block mapping)
          ();
      barriers = 0;
      scratch_bytes = 0;
    }

(* A whole-graph terminal: kernel-per-op for every live memory-intensive
   node.  Always compiles and always validates - it is both the ladder's
   last resort and the bench's "no stitching" baseline. *)
let per_op_plan (arch : Arch.t) g =
  let live = Graph.live_ids g in
  let ids = ref [] in
  for id = Graph.num_nodes g - 1 downto 0 do
    if live.(id) && Clustering.is_clusterable g id then ids := id :: !ids
  done;
  let kernels =
    Kernel_plan.toposort_kernels g
      (List.map (per_op_kernel arch g) !ids @ Lowering.library_kernels arch g)
  in
  {
    Kernel_plan.arch;
    graph = g;
    kernels;
    memcpys = Lowering.output_memcpys g;
    memsets = Lowering.atomic_memsets kernels;
    memcpy_bytes = Lowering.output_bytes g;
    batch = None;
  }

(* --- Scheme demotion (the Regional and Local rungs) --------------------- *)

(* Regional: give up global stitching.  Global-scratch buffers materialize
   to device memory instead, which removes the scratch arena and the
   global barriers the scratch reuse required. *)
let demote_global (k : Kernel_plan.kernel) =
  let ops =
    List.map
      (fun (o : Kernel_plan.compiled_op) ->
        if o.placement = Kernel_plan.Global_scratch then
          {
            o with
            placement = Kernel_plan.Device_mem;
            scheme = Scheme.Independent;
          }
        else if o.scheme = Scheme.Global then
          { o with scheme = Scheme.Independent }
        else o)
      k.Kernel_plan.ops
  in
  { k with Kernel_plan.ops; barriers = 0; scratch_bytes = 0 }

(* Gate-aware Regional rung: before materializing everything to device
   memory, try keeping the kernel's regional values stitched by demoting
   them to global scratch behind in-kernel barriers (the paper's
   regional->global demotion) - but only when the barrier is legal at
   the kernel's grid and the cost model scores the barriers cheaper than
   the split the materializing fallback amounts to. *)
let demote_regional (arch : Arch.t) g (k : Kernel_plan.kernel) =
  let shared =
    List.filter
      (fun (o : Kernel_plan.compiled_op) ->
        o.placement = Kernel_plan.Shared_mem)
      k.Kernel_plan.ops
  in
  let launch =
    Launch.make ~regs_per_thread:k.launch.Launch.regs_per_thread
      ~shared_mem_per_block:0 ~grid:k.launch.Launch.grid
      ~block:k.launch.Launch.block ()
  in
  let in_kernel = Hashtbl.create 16 in
  List.iter
    (fun (o : Kernel_plan.compiled_op) -> Hashtbl.replace in_kernel o.id ())
    k.ops;
  let crossing =
    List.filter
      (fun (o : Kernel_plan.compiled_op) ->
        List.exists (Hashtbl.mem in_kernel) (Graph.consumers g o.id))
      shared
  in
  let staged_bytes =
    List.fold_left
      (fun acc (o : Kernel_plan.compiled_op) -> acc + Graph.bytes g o.id)
      0 shared
  in
  let verdict =
    Global_gating.gate arch ~launch
      ~barriers:(k.barriers + List.length crossing)
      ~staged_bytes:(k.scratch_bytes + staged_bytes)
  in
  if
    shared = []
    || (not verdict.Global_gating.legal)
    || verdict.Global_gating.choice = Global_gating.Split
  then demote_global k
  else
    {
      k with
      Kernel_plan.ops =
        List.map
          (fun (o : Kernel_plan.compiled_op) ->
            if o.placement = Kernel_plan.Shared_mem then
              {
                o with
                placement = Kernel_plan.Global_scratch;
                scheme = Scheme.Global;
              }
            else o)
          k.ops;
      launch;
      barriers = k.barriers + List.length crossing;
      scratch_bytes = k.scratch_bytes + staged_bytes;
    }

(* Local: additionally give up shared memory — registers and device memory
   only, the safest stitching the codegen supports. *)
let demote_local (k : Kernel_plan.kernel) =
  let k = demote_global k in
  let ops =
    List.map
      (fun (o : Kernel_plan.compiled_op) ->
        if o.placement = Kernel_plan.Shared_mem then
          {
            o with
            placement = Kernel_plan.Device_mem;
            scheme = Scheme.Independent;
          }
        else o)
      k.Kernel_plan.ops
  in
  let launch =
    Launch.make ~regs_per_thread:k.launch.Launch.regs_per_thread
      ~shared_mem_per_block:0 ~grid:k.launch.Launch.grid
      ~block:k.launch.Launch.block ()
  in
  { k with Kernel_plan.ops; launch }

(* --- The ladder ---------------------------------------------------------- *)

let ladder_pass = function
  | Degradation.Remote -> "remote-stitching"
  | Degradation.Stitched -> "stitch-compile"
  | Degradation.Regional -> "regional-demotion"
  | Degradation.Local -> "local-demotion"
  | Degradation.Fusion -> "fusion-fallback"
  | Degradation.Kernel_per_op -> "kernel-per-op"

let compile_armed (config : Config.t) (arch : Arch.t) g :
    (Kernel_plan.t * Degradation.report, Compile_error.t) result =
  let events = ref [] in
  let record cluster from_level to_level error =
    note_degrade cluster from_level to_level;
    events :=
      { Degradation.cluster; from_level; to_level; error } :: !events
  in
  (* Run one compile attempt: bare exceptions become structured errors,
     the compile-time budget is enforced, and every produced kernel must
     pass [check_kernel] in isolation. *)
  let attempt ~pass (f : unit -> Kernel_plan.kernel list) =
    let t0 = Sys.time () in
    match
      Compile_error.protect ~pass (fun () ->
          Trace.with_span ~phase:"fallback" pass f)
    with
    | Error e -> Error e
    | Ok ks -> (
        let elapsed = Sys.time () -. t0 in
        match config.compile_budget_s with
        | Some budget when elapsed > budget ->
            Error
              (Compile_error.make ~pass
                 [
                   Compile_error.violation Compile_error.Budget_exceeded
                     "compile attempt took %.3fs > budget %.3fs" elapsed
                     budget;
                 ])
        | _ -> (
            match
              List.concat_map (Kernel_plan.check_kernel arch g) ks
            with
            | [] -> Ok ks
            | violations -> Error (Compile_error.make ~pass violations)))
  in
  (* XLA-style fusion over one scope; components that still fail get
     kernel-per-op treatment, so this rung only fails on bare exceptions. *)
  let fusion_rung ~name nodes =
    let cut = Astitch_backends.Xla_backend.For_ablation.cut_edge in
    FC.components g { Clustering.id = 0; nodes } ~cut_edge:cut
    |> List.mapi (fun i ids ->
           match ids with
           | [ single ] when FC.is_layout_only g single ->
               [ FC.copy_kernel g single ]
           | _ -> (
               let k =
                 FC.build_kernel arch g ~mapping_for_root:FC.naive_mapping
                   ~cut_edge:cut
                   ~name:(Printf.sprintf "%s.f%d" name i)
                   ids
               in
               match Kernel_plan.check_kernel arch g k with
               | [] -> [ k ]
               | _ -> List.map (per_op_kernel arch g) ids))
    |> List.concat
  in
  (* Degrade one cluster through the given rungs; the terminal
     kernel-per-op constructor cannot fail.  [record] is a parameter so
     parallel group compilation can collect events into per-group logs
     instead of racing on the shared one. *)
  let per_cluster_ladder ~record ~rungs ~name ~smem_budget ~group_base nodes =
    let compile_once () =
      Stitch_backend.compile_cluster config arch g ~name ~smem_budget
        ~group_base nodes
    in
    let rung = function
      | Degradation.Stitched ->
          fun () ->
            Stitch_backend.compile_cluster_gated config arch g ~name
              ~smem_budget ~group_base nodes
      | Degradation.Regional ->
          fun () -> [ demote_regional arch g (compile_once ()) ]
      | Degradation.Local -> fun () -> [ demote_local (compile_once ()) ]
      | Degradation.Fusion -> fun () -> fusion_rung ~name nodes
      | Degradation.Remote | Degradation.Kernel_per_op -> assert false
    in
    let rec go = function
      | [] -> List.map (per_op_kernel arch g) nodes
      | level :: rest -> (
          match attempt ~pass:(ladder_pass level) (rung level) with
          | Ok ks -> ks
          | Error e ->
              let next =
                match rest with
                | l :: _ -> l
                | [] -> Degradation.Kernel_per_op
              in
              record name level next e;
              go rest)
    in
    go rungs
  in
  (* One remote-stitched group, mirroring [Stitch_backend.compile_with]
     exactly in the no-fault case (same names, budgets and group bases,
     so the resulting plan is structurally identical). *)
  let group_kernels ~record i (parts : Clustering.cluster list) =
    match parts with
    | [ { Clustering.nodes = [ single ]; _ } ]
      when FC.is_layout_only g single ->
        [ FC.copy_kernel g single ]
    | _ -> (
        let name = Printf.sprintf "stitch_op_%d" i in
        let nparts = List.length parts in
        let smem_budget = Launch_config.shared_mem_budget arch / nparts in
        let combined () =
          (* mirror [Stitch_backend.compile_with_armed] exactly: gated
             single-cluster groups (demote-vs-split), combined remote
             groups *)
          match parts with
          | [ c ] -> (
              match
                Stitch_backend.compile_cluster_gated config arch g
                  ~name:(name ^ ".0") ~smem_budget ~group_base:0
                  c.Clustering.nodes
              with
              | [ k ] -> [ { k with Kernel_plan.name } ]
              | ks -> ks)
          | _ ->
              List.mapi
                (fun j (c : Clustering.cluster) ->
                  Stitch_backend.compile_cluster config arch g
                    ~name:(Printf.sprintf "%s.%d" name j)
                    ~smem_budget ~group_base:(j * 1024) c.Clustering.nodes)
                parts
              |> Stitch_backend.combine_parts arch ~name
              |> Option.to_list
        in
        let top = if nparts > 1 then Degradation.Remote else Degradation.Stitched in
        match attempt ~pass:(ladder_pass top) combined with
        | Ok ks -> ks
        | Error e ->
            (* split the group: each cluster degrades on its own, with the
               full shared-memory budget (it no longer shares a kernel) *)
            let rungs =
              if nparts > 1 then
                [
                  Degradation.Stitched;
                  Degradation.Regional;
                  Degradation.Local;
                  Degradation.Fusion;
                ]
              else
                [ Degradation.Regional; Degradation.Local; Degradation.Fusion ]
            in
            record name top (List.hd rungs) e;
            List.concat
              (List.mapi
                 (fun j (c : Clustering.cluster) ->
                   per_cluster_ladder ~record ~rungs
                     ~name:(Printf.sprintf "%s.%d" name j)
                     ~smem_budget:(Launch_config.shared_mem_budget arch)
                     ~group_base:(j * 1024) c.Clustering.nodes)
                 parts))
  in
  let finish kernels =
    (* Assemble, then repair: a corrupted front-end (e.g. clustering
       dropped a node) shows up here as cross-kernel violations.  Each
       round adds kernel-per-op producers for nodes no kernel materializes
       and replaces codegen kernels that fail in isolation; bounded so a
       truly broken plan returns a structured error instead of looping. *)
    let assemble ks =
      Compile_error.protect ~pass:"kernel-schedule" (fun () ->
          Trace.with_span ~phase:"compile" "kernel-schedule" @@ fun () ->
          let sorted =
            Kernel_plan.toposort_kernels g (ks @ Lowering.library_kernels arch g)
          in
          {
            Kernel_plan.arch;
            graph = g;
            kernels = sorted;
            memcpys = Lowering.output_memcpys g;
            memsets = Lowering.atomic_memsets sorted;
            memcpy_bytes = Lowering.output_bytes g;
    batch = None;
          })
    in
    let live = Graph.live_ids g in
    let rec repair round ks =
      match assemble ks with
      | Error e ->
          (* unschedulable kernel graph: degrade the whole graph *)
          record "graph" Degradation.Stitched Degradation.Kernel_per_op e;
          Ok (per_op_plan arch g)
      | Ok plan -> (
          match Kernel_plan.check_all plan with
          | [] -> Ok plan
          | violations when round >= 4 ->
              Error (Compile_error.make ~pass:"resilient-compile" violations)
          | violations ->
              (* Nodes the violations reference that no kernel
                 materializes (closure over operands).  A per-op producer
                 is NOT enough when some kernel computes the node on-chip:
                 the executor purges on-chip values at kernel exit, which
                 would clobber the materialized copy.  Such kernels are
                 replaced wholesale instead — as are kernels that fail
                 [check_kernel] in isolation. *)
              let produced = Hashtbl.create 64 in
              List.iter
                (fun (k : Kernel_plan.kernel) ->
                  List.iter
                    (fun (o : Kernel_plan.compiled_op) ->
                      if o.placement = Kernel_plan.Device_mem then
                        Hashtbl.replace produced o.id ())
                    k.Kernel_plan.ops)
                (ks @ Lowering.library_kernels arch g);
              let missing = Hashtbl.create 16 in
              let rec need id =
                if
                  live.(id)
                  && (not (Kernel_plan.is_leaf g id))
                  && (not (Hashtbl.mem produced id))
                  && not (Hashtbl.mem missing id)
                then begin
                  Hashtbl.replace missing id ();
                  List.iter need (Graph.operands g id)
                end
              in
              List.iter
                (fun (v : Compile_error.violation) ->
                  List.iter need v.Compile_error.ops)
                violations;
              let must_replace (k : Kernel_plan.kernel) =
                k.kind = Kernel_plan.Codegen
                && (Kernel_plan.check_kernel arch g k <> []
                   || List.exists
                        (fun (o : Kernel_plan.compiled_op) ->
                          o.placement <> Kernel_plan.Device_mem
                          && Hashtbl.mem missing o.id)
                        k.ops)
              in
              let ks' =
                List.concat_map
                  (fun (k : Kernel_plan.kernel) ->
                    if must_replace k then begin
                      record k.name Degradation.Stitched
                        Degradation.Kernel_per_op
                        (Compile_error.make ~pass:"plan-repair" violations);
                      List.map (per_op_kernel arch g)
                        (Kernel_plan.kernel_node_ids k)
                    end
                    else [ k ])
                  ks
              in
              (* whatever is still unproduced gets a per-op producer *)
              List.iter
                (fun (k : Kernel_plan.kernel) ->
                  List.iter
                    (fun (o : Kernel_plan.compiled_op) ->
                      if o.placement = Kernel_plan.Device_mem then
                        Hashtbl.replace produced o.id ())
                    k.Kernel_plan.ops)
                ks';
              let added =
                Hashtbl.fold (fun id () acc -> id :: acc) missing []
                |> List.filter (fun id -> not (Hashtbl.mem produced id))
                |> List.sort compare
                |> List.map (fun id ->
                       record
                         (Printf.sprintf "node_%d" id)
                         Degradation.Stitched Degradation.Kernel_per_op
                         (Compile_error.make ~pass:"plan-repair"
                            [
                              Compile_error.violation ~ops:[ id ]
                                Compile_error.Invalid_structure
                                "node %%%d not materialized by any kernel"
                                id;
                            ]);
                       per_op_kernel arch g id)
              in
              if added = [] && ks' = ks then
                Error
                  (Compile_error.make ~pass:"resilient-compile" violations)
              else repair (round + 1) (ks' @ added))
    in
    repair 0 kernels
  in
  if not config.hierarchical_data_reuse then
    (* ATM ablation: XLA fusion scopes are already the Fusion rung; the
       only step left below them is kernel-per-op for the whole graph. *)
    let f () = Stitch_backend.compile_with_armed config arch g in
    let t0 = Sys.time () in
    match Compile_error.protect ~pass:"fusion-fallback" f with
    | Ok plan
      when match config.compile_budget_s with
           | Some b -> Sys.time () -. t0 <= b
           | None -> true ->
        Ok (plan, [])
    | Ok _ ->
        let e =
          Compile_error.make ~pass:"fusion-fallback"
            [
              Compile_error.violation Compile_error.Budget_exceeded
                "whole-graph compile exceeded the budget";
            ]
        in
        record "graph" Degradation.Fusion Degradation.Kernel_per_op e;
        Result.map (fun p -> (p, List.rev !events)) (Ok (per_op_plan arch g))
    | Error e ->
        record "graph" Degradation.Fusion Degradation.Kernel_per_op e;
        Result.map (fun p -> (p, List.rev !events)) (Ok (per_op_plan arch g))
  else begin
    let clusters =
      match
        Compile_error.protect ~pass:"clustering" (fun () ->
            Trace.with_span ~phase:"compile" "clustering" (fun () ->
                Clustering.clusters g))
      with
      | Ok cs -> cs
      | Error e ->
          (* clustering itself failed: every clusterable node becomes its
             own scope and degrades from there *)
          record "graph" Degradation.Stitched Degradation.Kernel_per_op e;
          let live = Graph.live_ids g in
          let singles = ref [] in
          for id = Graph.num_nodes g - 1 downto 0 do
            if live.(id) && Clustering.is_clusterable g id then
              singles := id :: !singles
          done;
          List.mapi
            (fun i id -> { Clustering.id = i; nodes = [ id ] })
            !singles
    in
    let cluster_groups =
      if config.remote_stitching then
        match
          Compile_error.protect ~pass:"remote-stitching" (fun () ->
              Trace.with_span ~phase:"compile" "remote-stitching" (fun () ->
                  Clustering.remote_stitch_groups
                    ~max_merge_width:config.max_remote_merge_width g clusters))
        with
        | Ok groups -> groups
        | Error e ->
            record "graph" Degradation.Remote Degradation.Stitched e;
            List.map (fun c -> [ c ]) clusters
      else List.map (fun c -> [ c ]) clusters
    in
    (* Groups degrade independently, so they can compile on a domain
       pool: each group collects its ladder events locally and the
       results merge back in group-index order — kernels and event log
       both byte-identical to the sequential walk.  Parallelism is gated
       off under fault injection (global registry) and compile budgets
       (Sys.time is process CPU time, inflated by concurrent domains). *)
    let domains =
      if
        config.faults <> []
        || Fault_site.compile_active ()
        || config.compile_budget_s <> None
      then 1
      else config.compile_domains
    in
    let compiled_groups =
      Parallel.mapi ~domains
        (fun i parts ->
          let local = ref [] in
          let record cluster from_level to_level error =
            note_degrade cluster from_level to_level;
            local :=
              { Degradation.cluster; from_level; to_level; error } :: !local
          in
          let ks = group_kernels ~record i parts in
          (ks, List.rev !local))
        cluster_groups
    in
    List.iter
      (fun (_, evs) -> List.iter (fun e -> events := e :: !events) evs)
      compiled_groups;
    let stitch_kernels = List.concat_map fst compiled_groups in
    match finish stitch_kernels with
    | Ok plan -> Ok (plan, List.rev !events)
    | Error e -> Error e
  end

let compile (config : Config.t) (arch : Arch.t) g =
  if config.faults = [] then compile_armed config arch g
  else begin
    Fault_site.arm config.faults;
    Fun.protect
      ~finally:(fun () -> Fault_site.disarm ())
      (fun () -> compile_armed config arch g)
  end
