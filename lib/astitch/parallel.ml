(* Deterministic fork-join map over OCaml 5 domains.

   Cluster-group compilation is embarrassingly parallel: each group's
   schedule/codegen depends only on the graph, the config and the arch.
   The pool hands items to workers through an atomic cursor (dynamic load
   balancing - scheduling order is NOT deterministic) but every item's
   result lands in its input slot, so the merged output is always in
   input order: byte-identical to the sequential map for pure functions.

   Exceptions are captured per item and re-raised for the lowest failing
   index after all workers drain, matching what a left-to-right
   sequential map would have raised first.  Callers must gate off
   impure work (fault injection arms global state; compile budgets read
   process CPU time, which domains inflate) before coming here. *)

let sequential_mapi f items = List.mapi f items

let mapi ~domains f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let d = Stdlib.max 1 (Stdlib.min domains n) in
  if d = 1 || n <= 1 then sequential_mapi f items
  else begin
    let sid =
      if Astitch_obs.Trace.enabled () then
        Astitch_obs.Trace.span_begin ~phase:"compile" "parallel-map"
          ~attrs:
            [
              ("items", Astitch_obs.Trace.Int n);
              ("domains", Astitch_obs.Trace.Int d);
            ]
      else 0
    in
    let results :
        ('b, exn * Printexc.raw_backtrace) result option array =
      Array.make n None
    in
    let cursor = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add cursor 1 in
      if i < n then begin
        (results.(i) <-
          (try Some (Ok (f i arr.(i)))
           with e -> Some (Error (e, Printexc.get_raw_backtrace ()))));
        worker ()
      end
    in
    let spawned = List.init (d - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Astitch_obs.Trace.span_end sid;
    (* deterministic merge: input order, first failure wins *)
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)
         results)
  end

let map ~domains f items = mapi ~domains (fun _ x -> f x) items

(* The machine's recommended domain count, uncapped.  Callers that want
   fewer domains say so through [Config.compile_domains] (CLI [-j], the
   serving worker pool's [workers]); hardcoding a ceiling here silently
   wasted cores on wide machines. *)
let recommended_domains () =
  Stdlib.max 1 (Domain.recommended_domain_count ())
