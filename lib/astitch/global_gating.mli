(** Cost-model gating between regional->global demotion (one kernel,
    in-kernel global barriers) and kernel splitting (two launches) when a
    shared-memory buffer overflows the per-block budget. *)

open Astitch_simt

type choice = Demote | Split

type verdict = {
  choice : choice;
  legal : bool;
      (** whether the one-kernel option can hold its barriers at all
          ([Barrier.is_legal]); [Split] is forced when false *)
  demote_us : float;  (** barrier syncs + scratch DRAM round trip *)
  split_us : float;  (** extra launch + boundary traffic (L2-aware) *)
}

val gate :
  ?config:Cost_model.config ->
  Arch.t ->
  launch:Launch.t ->
  barriers:int ->
  staged_bytes:int ->
  verdict
(** Score keeping [barriers] crossing producers in one kernel against
    splitting it, for [staged_bytes] of overflow traffic under [launch].
    The crossover tracks [config.kernel_launch_overhead_us], so a model
    with cheaper launches splits earlier. *)
