(* Block-locality analysis (paper Sec 4.3 step 3).

   Passive checking: a dominant's output can live in shared memory
   (regional scheme) only if every consumer group's mapping is
   block-aligned with the producer's - block i reads exactly what block i
   wrote.

   Proactive adaptation: element-wise groups have no schedule of their
   own to defend, so they *adopt* a mapping aligned with their producer's
   row partition before the check runs. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan

(* Proactive block-locality adaptation: an element-wise group consuming a
   producer with row partition (rows, rpb) adopts grid = ceil(rows/rpb),
   giving each block the same row range as the producer's. *)
let adapt_elementwise (arch : Arch.t) ~producer ~elements =
  match Thread_mapping.row_partition producer with
  | None -> None
  | Some (rows, rows_per_block) ->
      let grid = (rows + rows_per_block - 1) / rows_per_block in
      let block = Stdlib.min Adaptive_mapping.stitch_block arch.max_threads_per_block in
      Some (Thread_mapping.Elementwise { elements; block; grid; rows = Some rows })

(* Passive checking: producer mapping vs every consumer mapping. *)
let regional_ok ~producer_mapping ~consumer_mappings =
  Thread_mapping.contiguous_outputs_per_block producer_mapping <> None
  && consumer_mappings <> []
  && List.for_all
       (fun m -> Thread_mapping.block_aligned producer_mapping m)
       consumer_mappings

(* Shared-memory footprint (bytes per block) of buffering [id] regionally. *)
let shared_bytes_per_block g id mapping =
  match Thread_mapping.contiguous_outputs_per_block mapping with
  | None -> None
  | Some per_block -> Some (per_block * Dtype.size_bytes (Graph.dtype g id))
