(* Degradation ladder bookkeeping for the resilient pipeline.

   When a stitch scope cannot be compiled at full strength (a pass raised,
   an invariant failed, the compile-time budget blew), the resilience
   layer retries that scope alone with progressively safer strategies
   while the rest of the graph stays fully stitched.  Every step down the
   ladder is recorded as an event so production logs say exactly which
   scope lost which capability and why — the paper's production-JIT
   posture (Sec 6.3) applied to compiler failures instead of crashes. *)

open Astitch_plan

type level =
  | Remote (* remote-stitched kernel spanning several clusters *)
  | Stitched (* full AStitch: regional/global schemes, one cluster *)
  | Regional (* global schemes demoted to device memory *)
  | Local (* registers + device memory only *)
  | Fusion (* XLA-style fusion cuts over the scope *)
  | Kernel_per_op (* terminal: one kernel per op, always compiles *)

let level_to_string = function
  | Remote -> "remote"
  | Stitched -> "stitched"
  | Regional -> "regional"
  | Local -> "local"
  | Fusion -> "fusion"
  | Kernel_per_op -> "kernel-per-op"

type event = {
  cluster : string; (* scope name, e.g. "stitch_op_3.1" *)
  from_level : level;
  to_level : level;
  error : Compile_error.t; (* why the higher level was rejected *)
}

type report = event list

let is_empty (r : report) = r = []

let pp_event fmt e =
  Format.fprintf fmt "%s: %s -> %s (%s in pass %s)" e.cluster
    (level_to_string e.from_level)
    (level_to_string e.to_level)
    (match e.error.Compile_error.violations with
    | v :: _ -> Compile_error.kind_to_string v.Compile_error.kind
    | [] -> "unknown")
    e.error.Compile_error.pass

let pp_report fmt (r : report) =
  match r with
  | [] -> Format.fprintf fmt "no degradation: all scopes fully stitched"
  | events ->
      Format.fprintf fmt "%d degradation event(s):" (List.length events);
      List.iter (fun e -> Format.fprintf fmt "@.  %a" pp_event e) events

let to_string r = Format.asprintf "%a" pp_report r
