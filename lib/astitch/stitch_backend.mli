(** The AStitch compiler pipeline (paper Sec 4): per-cluster lowering with
    dominant grouping, adaptive mapping, locality finalization, memory
    planning and resource-aware launch configuration. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan

val compile_cluster :
  Config.t ->
  Arch.t ->
  Graph.t ->
  name:string ->
  smem_budget:int ->
  group_base:int ->
  Op.node_id list ->
  Kernel_plan.kernel
(** Lower one stitch scope to a single kernel. *)

val compile_cluster_gated :
  Config.t ->
  Arch.t ->
  Graph.t ->
  name:string ->
  smem_budget:int ->
  group_base:int ->
  Op.node_id list ->
  Kernel_plan.kernel list
(** [compile_cluster] plus demote-vs-split gating: when shared-memory
    pressure demoted regional buffers to global scratch, or the kernel's
    barriers are illegal (grid wider than one co-resident wave), consult
    {!Global_gating} and either keep the single barriered kernel or split
    the scope at the first crossing producer - recursively, each half
    re-entering the gate.  Split kernels are named [name ^ "a"] /
    [name ^ "b"]. *)

val combine_parts :
  Arch.t -> name:string -> Kernel_plan.kernel list -> Kernel_plan.kernel option
(** Merge the kernels of one remote-stitched group: grids add (capped at
    one wave), per-block shared memory adds, barriers run in lockstep.
    [None] when the group is empty. *)

val compile_with : Config.t -> Arch.t -> Graph.t -> Kernel_plan.t
(** Whole-graph compilation; validates the plan before returning.  Arms
    the config's fault plans for the duration of the compile. *)

val compile_with_armed : Config.t -> Arch.t -> Graph.t -> Kernel_plan.t
(** [compile_with] without touching the fault-injection registry — for
    callers (the resilience layer) that manage arming themselves. *)
