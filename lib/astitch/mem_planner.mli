(** Memory usage optimization (paper Sec 4.4): shared-memory budgeting
    with regional-to-global demotion, and liveness-based reuse of the
    global scratch arena. *)

open Astitch_ir

val fit_shared :
  budget:int -> (Op.node_id * int) list -> (Op.node_id * int) list * (Op.node_id * int) list
(** [(kept, demoted)]: keeps a subset fitting the budget, demoting the
    largest overflowing buffers first. *)

type allocation = {
  node : Op.node_id;
  offset : int;
  size : int;
  live_from : int;
  live_to : int;
}

val plan_scratch :
  (Op.node_id * int * int * int) list -> allocation list * int
(** Linear-scan arena allocation over [(node, bytes, def_pos, last_use)];
    returns the allocations and the arena size after reuse. *)

val check_no_aliasing : allocation list -> unit
(** @raise Astitch_plan.Compile_error.Error (kind [Scratch_aliasing]) if
    two live allocations overlap. *)
