(** Memory usage optimization (paper Sec 4.4): shared-memory budgeting
    with regional-to-global demotion, and liveness-based reuse of the
    global scratch arena. *)

open Astitch_ir

val fit_shared :
  budget:int -> (Op.node_id * int) list -> (Op.node_id * int) list * (Op.node_id * int) list
(** [(kept, demoted)]: keeps a subset fitting the budget, demoting the
    largest overflowing buffers first. *)

type allocation = {
  node : Op.node_id;
  offset : int;
  size : int;
  live_from : int;
  live_to : int;
}

val plan_scratch :
  (Op.node_id * int * int * int) list -> allocation list * int
(** Linear-scan arena allocation over [(node, bytes, def_pos, last_use)];
    returns the allocations and the arena size after reuse. *)

val check_no_aliasing : allocation list -> unit
(** @raise Astitch_plan.Compile_error.Error (kind [Scratch_aliasing]) if
    two live allocations overlap. *)

type slot_assignment = {
  node : Op.node_id;
  slot : int;  (** dense slot index; one backing buffer per slot *)
  elems : int;  (** element count = exact size class of the slot *)
  def_pos : int;  (** kernel position that materializes the node *)
  last_pos : int;  (** last kernel position that reads the buffer *)
}

val plan_slots :
  (Op.node_id * int * int * int) list ->
  slot_assignment list * (int * int) list
(** Liveness-driven slot planning for the fused engine's full device
    buffers, over [(node, elems, def_kernel, last_read_kernel)] entries.
    Slots are exact-size classes (tensors insist on data length =
    num_elements); a slot is reused only when its previous holder's last
    read strictly precedes the new holder's defining kernel.  Returns the
    per-node assignments and the [(slot, elems)] table. *)

val check_slot_exclusive : slot_assignment list -> unit
(** @raise Astitch_plan.Compile_error.Error (kind [Scratch_aliasing]) if
    two assignments share a slot while their live ranges overlap. *)
