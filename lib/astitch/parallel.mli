(** Deterministic fork-join map over OCaml 5 domains.

    Work is distributed dynamically, but each item's result lands in its
    input slot, so for pure functions the output is identical to the
    sequential map at any [domains] setting.  If items raise, the
    exception of the lowest failing index is re-raised (with its
    backtrace) after all workers finish — the same exception a
    left-to-right sequential map would have surfaced first.

    Callers are responsible for gating off impure work: fault injection
    mutates global registries and compile budgets read process CPU time,
    neither of which is domain-safe. *)

val map : domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f items]; [domains <= 1] or a short list runs
    sequentially in the calling domain. *)

val mapi : domains:int -> (int -> 'a -> 'b) -> 'a list -> 'b list

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], at least 1 — the default for
    [Config.compile_domains] when the caller asks for "auto" (CLI
    [-j 0], {!Config.auto_domains}).  No hidden ceiling: capping is the
    configuration's job, not this module's. *)
