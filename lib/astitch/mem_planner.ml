(* Memory usage optimization (paper Sec 4.4).

   Two responsibilities:
   - keep the per-block shared-memory footprint of regional buffers under
     the budget that preserves the assumed SM residency, demoting
     regional placements to global one by one when it overflows;
   - plan the global scratch arena with liveness-based reuse, so stitch
     kernels recycle scratch instead of growing their footprint with
     every buffered intermediate. *)

open Astitch_ir
open Astitch_plan

(* --- Regional demotion -------------------------------------------------- *)

(* [fit_shared budget entries] keeps a subset of [(id, bytes)] whose total
   fits the budget, demoting the largest overflowing buffers first (they
   buy back the most space per demotion).  Returns (kept, demoted). *)
let fit_shared ~budget entries =
  let total = List.fold_left (fun acc (_, b) -> acc + b) 0 entries in
  if total <= budget then (entries, [])
  else begin
    let by_size_desc =
      List.sort (fun (_, a) (_, b) -> compare b a) entries
    in
    (* walk the size-descending list accumulating demotions until the
       remainder fits; the survivors are exactly the unwalked tail, so no
       list is ever rebuilt by append *)
    let rec demote acc total = function
      | [] -> ([], List.rev acc)
      | ((id, bytes) :: rest : (Op.node_id * int) list) as entries ->
          if total <= budget then (entries, List.rev acc)
          else demote ((id, bytes) :: acc) (total - bytes) rest
    in
    demote [] total by_size_desc
  end

(* --- Global scratch planning ------------------------------------------- *)

type allocation = {
  node : Op.node_id;
  offset : int;
  size : int;
  live_from : int; (* position of the defining op in the kernel *)
  live_to : int; (* position of the last in-kernel consumer *)
}

(* Linear-scan arena allocation over [ (node, size, def_pos, last_use_pos) ].
   Buffers whose live ranges do not overlap share arena space. *)
let plan_scratch entries =
  let entries =
    List.sort (fun (_, _, d1, _) (_, _, d2, _) -> compare d1 d2) entries
  in
  let align n = (n + 255) / 256 * 256 in
  let live : allocation list ref = ref [] in
  let free : (int * int) list ref = ref [] in (* (offset, size), sorted *)
  let arena = ref 0 in
  let release_dead pos =
    let dead, alive = List.partition (fun a -> a.live_to < pos) !live in
    live := alive;
    List.iter
      (fun a -> free := List.sort compare ((a.offset, a.size) :: !free))
      dead
  in
  let allocate size =
    let rec best_fit best rest = function
      | [] -> (best, List.rev rest)
      | (off, sz) :: tl ->
          if sz >= size then begin
            match best with
            | Some (_, bsz) when bsz <= sz ->
                best_fit best ((off, sz) :: rest) tl
            | _ -> (
                (* swap previous best back into the free list *)
                match best with
                | Some b -> best_fit (Some (off, sz)) (b :: rest) tl
                | None -> best_fit (Some (off, sz)) rest tl)
          end
          else best_fit best ((off, sz) :: rest) tl
    in
    match best_fit None [] !free with
    | Some (off, sz), remaining ->
        let leftover = sz - size in
        free :=
          List.sort compare
            (if leftover > 0 then (off + size, leftover) :: remaining
             else remaining);
        off
    | None, _ ->
        let off = !arena in
        arena := !arena + size;
        off
  in
  let allocations =
    List.map
      (fun (node, size, live_from, live_to) ->
        release_dead live_from;
        let size = align size in
        let offset = allocate size in
        let a = { node; offset; size; live_from; live_to } in
        live := a :: !live;
        a)
      entries
  in
  (* Fault injection (Corrupt): collapse every offset to zero.  With two
     or more overlapping-lifetime buffers, [check_no_aliasing] rejects the
     arena; with fewer the corruption is benign (no live overlap exists). *)
  let allocations =
    match Fault_site.check Fault_site.Mem_planning ~pass:"mem-planning" with
    | None -> allocations
    | Some _seed -> List.map (fun a -> { a with offset = 0 }) allocations
  in
  (allocations, !arena)

(* Invariant used by the property tests: two allocations may overlap in
   arena space only if their live ranges are disjoint. *)
let overlaps a b =
  a.offset < b.offset + b.size && b.offset < a.offset + a.size

let live_together a b = a.live_from <= b.live_to && b.live_from <= a.live_to

let check_no_aliasing allocations =
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
        List.iter
          (fun b ->
            if overlaps a b && live_together a b then
              Compile_error.fail ~pass:"mem-planning"
                ~ops:[ a.node; b.node ] Compile_error.Scratch_aliasing
                "scratch aliasing: nodes %d and %d overlap while live" a.node
                b.node)
          rest;
        pairs rest
  in
  pairs allocations

(* --- Device buffer slot planning ---------------------------------------- *)

(* The same liveness idea applied to full device tensors, for the fused
   execution engine: positions are kernel indices rather than in-kernel op
   positions, and instead of byte offsets in one arena we hand out *slots*
   - whole buffers keyed by exact element count, because the runtime's
   tensors insist on data length = num_elements, so only same-sized nodes
   can share storage.  Two nodes may share a slot only when their live
   ranges are disjoint (strictly: the earlier holder's last read precedes
   the later holder's defining kernel). *)

type slot_assignment = {
  node : Op.node_id;
  slot : int; (* dense slot index; one backing buffer per slot *)
  elems : int; (* element count = exact size class of the slot *)
  def_pos : int; (* kernel position that materializes the node *)
  last_pos : int; (* last kernel position that reads the buffer *)
}

let plan_slots entries =
  let entries =
    List.sort
      (fun (n1, _, d1, _) (n2, _, d2, _) -> compare (d1, n1) (d2, n2))
      entries
  in
  let next_slot = ref 0 in
  let slots : (int * int) list ref = ref [] in (* (slot, elems), built rev *)
  (* free slots per size class, smallest slot id first for determinism *)
  let free : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let live : slot_assignment list ref = ref [] in
  let release_dead pos =
    let dead, alive = List.partition (fun a -> a.last_pos < pos) !live in
    live := alive;
    List.iter
      (fun a ->
        let fl = Option.value ~default:[] (Hashtbl.find_opt free a.elems) in
        Hashtbl.replace free a.elems (List.sort compare (a.slot :: fl)))
      dead
  in
  let assignments =
    List.map
      (fun (node, elems, def_pos, last_pos) ->
        release_dead def_pos;
        let slot =
          match Hashtbl.find_opt free elems with
          | Some (s :: rest) ->
              Hashtbl.replace free elems rest;
              s
          | Some [] | None ->
              let s = !next_slot in
              incr next_slot;
              slots := (s, elems) :: !slots;
              s
        in
        let a = { node; slot; elems; def_pos; last_pos } in
        live := a :: !live;
        a)
      entries
  in
  (assignments, List.rev !slots)

(* Invariant mirrored from [check_no_aliasing]: two assignments to the
   same slot must have disjoint live ranges. *)
let check_slot_exclusive assignments =
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
        List.iter
          (fun b ->
            if
              a.slot = b.slot
              && a.def_pos <= b.last_pos
              && b.def_pos <= a.last_pos
            then
              Compile_error.fail ~pass:"exec-arena"
                ~ops:[ a.node; b.node ] Compile_error.Scratch_aliasing
                "arena slot %d shared by nodes %d and %d while both live"
                a.slot a.node b.node)
          rest;
        pairs rest
  in
  pairs assignments
