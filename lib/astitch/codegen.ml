(* Pseudo-CUDA emission.

   The simulator never runs real device code, but emitting a readable
   CUDA-like rendering of a kernel plan makes the stitching decisions
   inspectable: one statement per op annotated with its scheme, buffer
   placement and recompute factor, shared-memory declarations for regional
   buffers, block barriers between groups and inlined global barriers for
   the global scheme. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan

let buffer_decl g (o : Kernel_plan.compiled_op) =
  let elems = Graph.num_elements g o.id in
  match o.placement with
  | Kernel_plan.Shared_mem -> (
      match Thread_mapping.contiguous_outputs_per_block o.mapping with
      | Some per_block ->
          Some (Printf.sprintf "__shared__ float smem_v%d[%d];" o.id per_block)
      | None -> None)
  | Kernel_plan.Global_scratch ->
      Some (Printf.sprintf "float* gmem_v%d = scratch + /* %dB */;" o.id (4 * elems))
  | Kernel_plan.Register | Kernel_plan.Device_mem -> None

let value_ref g (in_kernel : (Op.node_id, Kernel_plan.compiled_op) Hashtbl.t) id =
  match Hashtbl.find_opt in_kernel id with
  | Some o -> (
      match o.placement with
      | Kernel_plan.Register -> Printf.sprintf "v%d" id
      | Kernel_plan.Shared_mem -> Printf.sprintf "smem_v%d[i]" id
      | Kernel_plan.Global_scratch -> Printf.sprintf "gmem_v%d[i]" id
      | Kernel_plan.Device_mem -> Printf.sprintf "out_v%d[i]" id)
  | None -> (
      match Graph.op g id with
      | Op.Parameter { name } -> Printf.sprintf "%s[i]" name
      | Op.Constant { value } -> Printf.sprintf "%gf" value
      | _ -> Printf.sprintf "in_v%d[i]" id)

let expression g in_kernel (o : Kernel_plan.compiled_op) =
  let v = value_ref g in_kernel in
  match Graph.op g o.id with
  | Op.Parameter { name } -> name ^ "[i]"
  | Op.Constant { value } -> Printf.sprintf "%gf" value
  | Op.Iota { axis } -> Printf.sprintf "index_along_axis_%d(i)" axis
  | Op.Unary { kind; input } ->
      Printf.sprintf "%sf(%s)" (Op.unary_to_string kind) (v input)
  | Op.Binary { kind; lhs; rhs } ->
      Printf.sprintf "%s(%s, %s)" (Op.binary_to_string kind) (v lhs) (v rhs)
  | Op.Broadcast { input; _ } -> Printf.sprintf "%s /* replicated */" (v input)
  | Op.Reduce { input; kind; _ } ->
      Printf.sprintf "%s_reduce_rows(%s)" (Op.reduce_to_string kind) (v input)
  | Op.Reshape { input } -> v input
  | Op.Transpose { input; _ } -> Printf.sprintf "%s /* transposed index */" (v input)
  | Op.Select { pred; on_true; on_false } ->
      Printf.sprintf "%s ? %s : %s" (v pred) (v on_true) (v on_false)
  | Op.Concat { inputs; _ } ->
      Printf.sprintf "concat(%s)" (String.concat ", " (List.map v inputs))
  | Op.Slice { input; _ } -> Printf.sprintf "%s /* sliced index */" (v input)
  | Op.Pad { input; _ } -> Printf.sprintf "pad0(%s)" (v input)
  | Op.Gather { params; indices } ->
      Printf.sprintf "%s /* row %s */" (v params) (v indices)
  | Op.Scatter_add { indices; updates; _ } ->
      Printf.sprintf "atomicAdd(&out[%s], %s)" (v indices) (v updates)
  | Op.Max_pool { input; window; _ } ->
      Printf.sprintf "window_max_%dx%d(%s)" window window (v input)
  | Op.Dot { lhs; rhs } -> Printf.sprintf "cublas_gemm(%s, %s)" (v lhs) (v rhs)
  | Op.Conv2d { input; filter; _ } ->
      Printf.sprintf "cudnn_conv(%s, %s)" (v input) (v filter)

let destination (o : Kernel_plan.compiled_op) =
  match o.placement with
  | Kernel_plan.Register -> Printf.sprintf "float v%d =" o.id
  | Kernel_plan.Shared_mem -> Printf.sprintf "smem_v%d[i] =" o.id
  | Kernel_plan.Global_scratch -> Printf.sprintf "gmem_v%d[i] =" o.id
  | Kernel_plan.Device_mem -> Printf.sprintf "out_v%d[i] =" o.id

let kernel_params g (k : Kernel_plan.kernel) =
  let in_kernel = Hashtbl.create 16 in
  List.iter (fun (o : Kernel_plan.compiled_op) -> Hashtbl.replace in_kernel o.id o) k.ops;
  let inputs =
    List.concat_map
      (fun (o : Kernel_plan.compiled_op) ->
        List.filter (fun operand -> not (Hashtbl.mem in_kernel operand))
          (Graph.operands g o.id))
      k.ops
    |> List.sort_uniq compare
  in
  let outputs =
    List.filter_map
      (fun (o : Kernel_plan.compiled_op) ->
        if o.placement = Kernel_plan.Device_mem then Some o.id else None)
      k.ops
  in
  (inputs, outputs)

let emit_kernel g (k : Kernel_plan.kernel) =
  let buf = Buffer.create 1024 in
  let in_kernel = Hashtbl.create 16 in
  List.iter (fun (o : Kernel_plan.compiled_op) -> Hashtbl.replace in_kernel o.id o) k.ops;
  let inputs, outputs = kernel_params g k in
  let param id prefix = Printf.sprintf "const float* %s_v%d" prefix id in
  let params =
    List.map
      (fun id ->
        match Graph.op g id with
        | Op.Parameter { name } -> "const float* " ^ name
        | _ -> param id "in")
      inputs
    @ List.map (fun id -> Printf.sprintf "float* out_v%d" id) outputs
  in
  Buffer.add_string buf
    (Printf.sprintf "// launch: %s%s\n"
       (Format.asprintf "%a" Launch.pp k.launch)
       (if k.barriers > 0 then Printf.sprintf ", %d global barrier(s)" k.barriers
        else ""));
  Buffer.add_string buf
    (Printf.sprintf "__global__ void %s(%s) {\n" k.name (String.concat ", " params));
  (* shared / scratch declarations *)
  List.iter
    (fun o ->
      match buffer_decl g o with
      | Some decl -> Buffer.add_string buf ("  " ^ decl ^ "\n")
      | None -> ())
    k.ops;
  let current_group = ref min_int in
  List.iter
    (fun (o : Kernel_plan.compiled_op) ->
      if o.group <> !current_group then begin
        if !current_group <> min_int then
          Buffer.add_string buf "  __sync_or_global_barrier();\n";
        current_group := o.group;
        Buffer.add_string buf
          (Printf.sprintf "  // group %d: %s\n" o.group
             (Thread_mapping.to_string o.mapping))
      end;
      Buffer.add_string buf
        (Printf.sprintf "  %s %s;  // %s, %s%s\n" (destination o)
           (expression g in_kernel o)
           (Scheme.to_string o.scheme)
           (Kernel_plan.placement_to_string o.placement)
           (if o.recompute > 1 then Printf.sprintf ", recompute x%d" o.recompute
            else "")))
    k.ops;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let emit_plan (plan : Kernel_plan.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "// plan: %d kernels on %s\n\n"
       (List.length plan.kernels) plan.arch.Arch.name);
  List.iter
    (fun (k : Kernel_plan.kernel) ->
      match k.kind with
      | Kernel_plan.Codegen ->
          Buffer.add_string buf (emit_kernel plan.graph k);
          Buffer.add_string buf "\n"
      | Kernel_plan.Library ->
          Buffer.add_string buf
            (Printf.sprintf "// %s: vendor library call (cuBLAS/cuDNN)\n\n" k.name)
      | Kernel_plan.Copy ->
          Buffer.add_string buf
            (Printf.sprintf "// %s: cudaMemcpyDeviceToDevice\n\n" k.name))
    plan.kernels;
  Buffer.contents buf
