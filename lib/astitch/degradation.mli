(** Degradation ladder bookkeeping: which stitch scope lost which
    capability, and why.  Produced by [Fallback], surfaced through
    [Session.compile_resilient] and the CLI's [--resilient] flag. *)

open Astitch_plan

type level =
  | Remote  (** remote-stitched kernel spanning several clusters *)
  | Stitched  (** full AStitch: regional/global schemes, one cluster *)
  | Regional  (** global schemes demoted to device memory *)
  | Local  (** registers + device memory only *)
  | Fusion  (** XLA-style fusion cuts over the scope *)
  | Kernel_per_op  (** terminal: one kernel per op, always compiles *)

val level_to_string : level -> string

type event = {
  cluster : string;  (** scope name, e.g. "stitch_op_3.1" *)
  from_level : level;
  to_level : level;
  error : Compile_error.t;  (** why the higher level was rejected *)
}

type report = event list

val is_empty : report -> bool
val pp_event : Format.formatter -> event -> unit
val pp_report : Format.formatter -> report -> unit
val to_string : report -> string
