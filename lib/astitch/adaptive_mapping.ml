(* Adaptive thread mapping (paper Sec 3.3 and Sec 4.3 step 2).

   Stitch kernels use the maximum block size (1024) so that the
   blocks-per-wave bound - and hence the global-barrier budget - is as
   small as possible (Sec 4.5).  Against that bound:
   - row reductions with few long rows are *split* across blocks
     (cross-block atomics) to fill the machine;
   - row reductions with many short rows are *packed*: horizontally
     (several rows per block) to fix the small-block-size pathology, then
     vertically (several row batches per block) to stay within one wave;
   - element-wise groups use grid-stride chunks capped at one wave. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan

let stitch_block = 1024

(* Sec 4.5 "assume": start from a 32-register budget; with 1024-thread
   blocks a V100 then fits 2 blocks per SM = 160 blocks per wave. *)
let assumed_regs = 32

let blocks_per_wave (arch : Arch.t) =
  let block = Stdlib.min stitch_block arch.max_threads_per_block in
  Occupancy.blocks_per_wave arch
    (Launch.make ~regs_per_thread:assumed_regs ~grid:1 ~block ())

let row_reduce (arch : Arch.t) ~rows ~row_length =
  let bpw = blocks_per_wave arch in
  let block = Stdlib.min stitch_block arch.max_threads_per_block in
  let split_candidate =
    Stdlib.min (bpw / Stdlib.max 1 rows) (Lowering.ceil_div row_length block)
  in
  let enough_work = rows * row_length >= 65536 in
  (* splitting pays for its atomics only when there is real work to
     spread; tiny reductions keep the single-block schedule *)
  if rows < bpw && row_length > block && split_candidate > 1 && enough_work
  then
    (* task splitting (Fig 8-b): few long rows; several blocks per row *)
    Thread_mapping.Row_reduce
      {
        rows;
        row_length;
        threads_per_row = block;
        rows_per_block = 1;
        row_groups_per_block = 1;
        split = split_candidate;
      }
  else begin
    (* task packing (Fig 8-a) *)
    let threads_per_row =
      Lowering.threads_for_row ~warp_size:arch.warp_size ~max_block:block
        row_length
    in
    let rows_per_block =
      Stdlib.max 1 (Stdlib.min rows (block / threads_per_row))
    in
    let blocks_needed = Lowering.ceil_div rows rows_per_block in
    let row_groups_per_block =
      Stdlib.max 1 (Lowering.ceil_div blocks_needed bpw)
    in
    Thread_mapping.Row_reduce
      {
        rows;
        row_length;
        threads_per_row;
        rows_per_block;
        row_groups_per_block;
        split = 1;
      }
  end

let column_reduce (arch : Arch.t) ~rows ~row_length =
  let bpw = blocks_per_wave arch in
  let block = Stdlib.min stitch_block arch.max_threads_per_block in
  let total = rows * row_length in
  Thread_mapping.Column_reduce
    {
      rows;
      row_length;
      block;
      grid = Stdlib.max 1 (Stdlib.min (Lowering.ceil_div total block) bpw);
    }

let elementwise (arch : Arch.t) ~elements ~rows =
  let bpw = blocks_per_wave arch in
  let block = Stdlib.min stitch_block arch.max_threads_per_block in
  Thread_mapping.Elementwise
    {
      elements;
      block;
      grid = Stdlib.max 1 (Stdlib.min (Lowering.ceil_div elements block) bpw);
      rows;
    }

(* Mapping for a dominant op. *)
let for_dominant arch g id =
  match (Pattern.reduce_geometry_opt g id, Pattern.reduce_layout_opt g id) with
  | Some (rows, row_length), Some Pattern.Row_reduce ->
      row_reduce arch ~rows ~row_length
  | Some (rows, row_length), Some Pattern.Column_reduce ->
      column_reduce arch ~rows ~row_length
  | _ -> elementwise arch ~elements:(Graph.num_elements g id) ~rows:None
