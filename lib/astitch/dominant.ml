(* Dominant identification, dominant merging and op grouping
   (paper Sec 4.3 step 1).

   Within one stitch scope (cluster):
   - candidates = reduces, heavy element-wise ops feeding a broadcast,
     and the stitch op's outputs;
   - cutting every candidate's *out*-edges splits the scope into op
     groups, each terminated by candidates;
   - dominant merging treats the remaining edges as *undirected*: two
     candidates joined through local-scheme ops (including shared
     producers, like broadcast.2 in Figure 9) share one group, enabling
     operator-level data reuse;
   - without merging, each candidate keeps its own input cone, and ops
     shared by several cones are evaluated (and loaded) once per group. *)

open Astitch_ir

type group = {
  dominant : Op.node_id; (* final dominant: drives the thread mapping *)
  sub_dominants : Op.node_id list;
  members : Op.node_id list; (* ascending ids; includes all dominants *)
}

let candidates g ~nodes ~escaping =
  List.filter
    (fun id -> Pattern.is_dominant_candidate g id || escaping id)
    nodes

(* Prefer a reduce as the final dominant (its schedule is the costly one);
   break ties towards the largest input. *)
let reduce_weight g id =
  match Graph.op g id with
  | Op.Reduce { input; _ } -> Graph.num_elements g input
  | _ -> -1

let pick_dominant g cands =
  match cands with
  | [] -> None
  | _ ->
      let best =
        List.fold_left
          (fun acc id ->
            let w = (reduce_weight g id, Graph.num_elements g id, -id) in
            match acc with
            | None -> Some (w, id)
            | Some (bw, _) when w > bw -> Some (w, id)
            | some -> some)
          None cands
      in
      Option.map snd best

(* Edges inside the cluster that survive the candidate cut: every edge
   whose producer is NOT a candidate. *)
let surviving_edges g ~in_cluster ~is_candidate nodes =
  List.concat_map
    (fun id ->
      List.filter_map
        (fun operand ->
          if Hashtbl.mem in_cluster operand && not (is_candidate operand)
          then Some (operand, id)
          else None)
        (Graph.operands g id))
    nodes

(* --- With dominant merging: undirected components ---------------------- *)

let groups_merged g ~nodes ~cands =
  let in_cluster = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace in_cluster id ()) nodes;
  let cand_set = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace cand_set id ()) cands;
  let index = Hashtbl.create 16 in
  List.iteri (fun i id -> Hashtbl.replace index id i) nodes;
  let n = List.length nodes in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(Stdlib.max ra rb) <- Stdlib.min ra rb
  in
  List.iter
    (fun (a, b) -> union (Hashtbl.find index a) (Hashtbl.find index b))
    (surviving_edges g ~in_cluster
       ~is_candidate:(Hashtbl.mem cand_set)
       nodes);
  let members = Hashtbl.create 16 in
  List.iteri
    (fun i id ->
      let r = find i in
      Hashtbl.replace members r
        (id :: Option.value ~default:[] (Hashtbl.find_opt members r)))
    nodes;
  Hashtbl.fold
    (fun _ ids acc ->
      let ids = List.rev ids in
      let group_cands = List.filter (Hashtbl.mem cand_set) ids in
      let dominant =
        match pick_dominant g group_cands with
        | Some d -> d
        | None -> List.nth ids (List.length ids - 1)
      in
      {
        dominant;
        sub_dominants = List.filter (fun c -> c <> dominant) group_cands;
        members = ids;
      }
      :: acc)
    members []
  |> List.sort (fun a b -> compare a.dominant b.dominant)

(* --- Without merging: one input cone per candidate --------------------- *)

let groups_unmerged g ~nodes ~cands =
  let in_cluster = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace in_cluster id ()) nodes;
  let cand_set = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace cand_set id ()) cands;
  let cone candidate =
    let visited = Hashtbl.create 16 in
    let rec walk id =
      if not (Hashtbl.mem visited id) then begin
        Hashtbl.replace visited id ();
        List.iter
          (fun operand ->
            if Hashtbl.mem in_cluster operand && not (Hashtbl.mem cand_set operand)
            then walk operand)
          (Graph.operands g id)
      end
    in
    walk candidate;
    Hashtbl.fold (fun id () acc -> id :: acc) visited [] |> List.sort compare
  in
  List.map
    (fun c -> { dominant = c; sub_dominants = []; members = cone c })
    (List.sort compare cands)

let group_ops ~merging g ~nodes ~escaping =
  (* Fault injection (Corrupt): flip the merging switch.  Both groupings
     are valid schedules, so the corruption is benign by construction —
     it only perturbs the plan's cost, never its correctness. *)
  let merging =
    match
      Astitch_plan.Fault_site.check Astitch_plan.Fault_site.Dominant_merging
        ~pass:"dominant-merging"
    with
    | None -> merging
    | Some _seed -> not merging
  in
  let cands = candidates g ~nodes ~escaping in
  if merging then groups_merged g ~nodes ~cands
  else if cands = [] then groups_merged g ~nodes ~cands
  else groups_unmerged g ~nodes ~cands

(* Times each node appears across groups (1 under merging; >= 1 for shared
   producers without merging - the redundant loads dominant merging is
   there to remove). *)
let occurrences groups =
  let count = Hashtbl.create 32 in
  List.iter
    (fun grp ->
      List.iter
        (fun id ->
          Hashtbl.replace count id
            (1 + Option.value ~default:0 (Hashtbl.find_opt count id)))
        grp.members)
    groups;
  fun id -> Stdlib.max 1 (Option.value ~default:1 (Hashtbl.find_opt count id))
