(* Compiler configuration, including the ablation switches of Table 4:
   XLA -> +ATM (adaptive thread mapping on XLA's fusion scopes)
       -> +HDM (exhaustive stitching with hierarchical data management,
                no dominant merging)
       -> AStitch (everything). *)

type t = {
  adaptive_thread_mapping : bool;
  hierarchical_data_reuse : bool;
      (* stitch across one-to-many boundaries with shared/global buffers;
         off = fall back to XLA's fusion cuts *)
  dominant_merging : bool;
  remote_stitching : bool;
  max_remote_merge_width : int;
  compile_budget_s : float option;
      (* per-attempt compile-time budget for the resilient pipeline
         (Sec 6.4.1 posture); None = unbounded *)
  compile_domains : int;
      (* worker domains for per-cluster compilation; 1 = sequential.
         Plans are byte-identical at any setting (deterministic merge) *)
  faults : Astitch_plan.Fault_site.plan list;
      (* armed fault-injection plans (testing only; [] in production) *)
  fused_exec : bool;
      (* execute plans through the fused engine (scalarized registers,
         staged shared slabs, arena-backed device buffers); off = the
         reference per-node executor.  Runtime-only: results are
         bit-identical either way and the plan itself is unchanged *)
}

let full =
  {
    adaptive_thread_mapping = true;
    hierarchical_data_reuse = true;
    dominant_merging = true;
    remote_stitching = true;
    max_remote_merge_width = 4;
    compile_budget_s = None;
    compile_domains = 1;
    faults = [];
    fused_exec = true;
  }

(* Resolve a requested domain count: [0] (or negative) means "auto", the
   machine's recommended count.  This is where the old hard [min 8] cap
   in Parallel.recommended_domains moved: the clamp is a configuration
   decision, and the only remaining floor is 1. *)
let resolve_domains requested =
  if requested <= 0 then Parallel.recommended_domains () else requested

let auto_domains () = { full with compile_domains = resolve_domains 0 }

(* The "ATM" ablation: adaptive thread mapping on XLA's fusion plan. *)
let atm_only = { full with hierarchical_data_reuse = false;
                 dominant_merging = false; remote_stitching = false }

(* The "HDM" ablation: exhaustive stitching + hierarchical data
   management, without dominant merging. *)
let no_dominant_merging = { full with dominant_merging = false }

let to_string c =
  Printf.sprintf "{atm=%b; hdr=%b; merge=%b; remote=%b}"
    c.adaptive_thread_mapping c.hierarchical_data_reuse c.dominant_merging
    c.remote_stitching

(* Canonical serialization of every field that can change the compiled
   plan - the config component of a plan-cache key.  [compile_domains]
   and [fused_exec] are deliberately excluded: parallel compilation is
   byte-identical to sequential and fused execution is a runtime choice
   over an unchanged plan, so neither may fragment the cache.  [faults]
   and the budget are included so fault-injected or budget-constrained
   configs never alias a production entry. *)
let cache_key c =
  Printf.sprintf "atm=%b;hdr=%b;merge=%b;remote=%b;width=%d;budget=%s;faults=%d"
    c.adaptive_thread_mapping c.hierarchical_data_reuse c.dominant_merging
    c.remote_stitching c.max_remote_merge_width
    (match c.compile_budget_s with
    | None -> "none"
    | Some s -> Printf.sprintf "%h" s)
    (List.length c.faults)
