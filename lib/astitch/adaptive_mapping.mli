(** Adaptive thread mapping (paper Sec 3.3, Sec 4.3 step 2): task packing
    (horizontal and vertical) and task splitting against the
    blocks-per-wave bound that keeps global barriers legal. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan

val stitch_block : int
(** Stitch kernels use the maximum block size (1024). *)

val assumed_regs : int
(** The Sec 4.5 "assume" register budget (32). *)

val blocks_per_wave : Arch.t -> int
(** Resident blocks per wave under the assumed configuration; 160 on a
    V100 at block 1024. *)

val row_reduce : Arch.t -> rows:int -> row_length:int -> Thread_mapping.t
(** Packs many short rows (Fig 8-a) or splits few long rows (Fig 8-b);
    the resulting grid always fits one wave. *)

val column_reduce : Arch.t -> rows:int -> row_length:int -> Thread_mapping.t
val elementwise : Arch.t -> elements:int -> rows:int option -> Thread_mapping.t

val for_dominant : Arch.t -> Graph.t -> Op.node_id -> Thread_mapping.t
(** The mapping a dominant op drives its group with. *)
