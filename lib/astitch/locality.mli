(** Block-locality analysis (paper Sec 4.3 step 3): passive checking for
    the regional-vs-global decision, proactive adaptation for element-wise
    groups. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan

val adapt_elementwise :
  Arch.t -> producer:Thread_mapping.t -> elements:int -> Thread_mapping.t option
(** Proactive block-locality adaptation: adopt the producer's row
    partition so block [i] reads what block [i] wrote. *)

val regional_ok :
  producer_mapping:Thread_mapping.t ->
  consumer_mappings:Thread_mapping.t list ->
  bool
(** Passive checking: contiguous per-block outputs and every consumer
    block-aligned. *)

val shared_bytes_per_block :
  Graph.t -> Op.node_id -> Thread_mapping.t -> int option
(** Shared-memory footprint of buffering the value regionally. *)
