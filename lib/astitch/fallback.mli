(** Per-cluster graceful degradation: compile every stitch scope at the
    highest strength that validates, degrading failing scopes alone
    through Remote -> Stitched -> Regional -> Local -> Fusion ->
    Kernel_per_op while the rest of the graph stays fully stitched.  In
    the no-fault case the plan is structurally identical to
    [Stitch_backend.compile_with] and the report is empty. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan

val compile :
  Config.t ->
  Arch.t ->
  Graph.t ->
  (Kernel_plan.t * Degradation.report, Compile_error.t) result
(** Arms [config.faults] for the duration of the compile.  Never raises:
    any failure the ladder cannot absorb comes back as [Error]; every
    [Ok] plan has passed [Kernel_plan.check_all] with no violations. *)

val per_op_kernel : Arch.t -> Graph.t -> Op.node_id -> Kernel_plan.kernel
(** The terminal constructor: one naive-mapped kernel materializing one
    op to device memory.  Touches no fault-injection site. *)

val per_op_plan : Arch.t -> Graph.t -> Kernel_plan.t
(** The whole-graph terminal: one kernel per live memory-intensive node
    plus the library kernels - the ladder's last resort, and the
    "no stitching" kernel-per-op baseline the serving bench compares
    global stitching against. *)

val demote_global : Kernel_plan.kernel -> Kernel_plan.kernel
(** Give up global stitching: global-scratch placements materialize to
    device memory; barriers and the scratch arena disappear. *)

val demote_regional : Arch.t -> Graph.t -> Kernel_plan.kernel -> Kernel_plan.kernel
(** The Regional rung: demote the kernel's shared-memory buffers to
    global scratch behind in-kernel barriers when {!Global_gating} deems
    that legal and cheaper; otherwise fall back to {!demote_global}. *)

val demote_local : Kernel_plan.kernel -> Kernel_plan.kernel
(** The Local rung: [demote_global] plus shared-memory buffers
    materialize to device memory. *)
