(** BERT-style encoder stack at the paper's production batch sizes
    (Table 2: inference 200, training 12). *)

open Astitch_ir

type config = {
  layers : int;
  batch : int;
  seq : int;
  hidden : int;
  heads : int;
  ffn_hidden : int;
}

val inference_config : config
val training_config : config
val tiny_config : config
val inference : ?config:config -> unit -> Graph.t
val training : ?config:config -> unit -> Graph.t
val tiny : unit -> Graph.t
val tiny_training : unit -> Graph.t

val batched : ?config:config -> batch:int -> unit -> Graph.t
(** Inference at the given batch (default config: {!tiny_config} with
    its batch replaced).  Row-independent per sequence: outputs slice
    back bit-identical to per-sequence batch-1 runs.
    @raise Invalid_argument if [batch < 1]. *)
