(** BERT-style encoder stack at the paper's production batch sizes
    (Table 2: inference 200, training 12). *)

open Astitch_ir

type config = {
  layers : int;
  batch : int;
  seq : int;
  hidden : int;
  heads : int;
  ffn_hidden : int;
}

val inference_config : config
val training_config : config
val tiny_config : config
val inference : ?config:config -> unit -> Graph.t
val training : ?config:config -> unit -> Graph.t
val tiny : unit -> Graph.t
val tiny_training : unit -> Graph.t
