(** Model building blocks shared by the workload generators. *)

open Astitch_ir

type b = Builder.t

val dense : b -> Builder.v -> weight:Builder.v -> bias:Builder.v -> Builder.v

val attention :
  b ->
  q:Builder.v -> k:Builder.v -> v:Builder.v ->
  mask:Builder.v option -> scale:float -> Builder.v
(** Scaled-dot-product attention over [bh; seq; dim] tensors: the Fig 4
    subgraph between two batched matmuls. *)

val encoder_layer :
  b ->
  name:string -> x:Builder.v -> heads:int -> seq:int -> batch:int ->
  hidden:int -> ffn_hidden:int -> Builder.v

val gru_cell :
  b ->
  name:string -> x:Builder.v -> h:Builder.v -> batch:int -> hidden:int ->
  Builder.v
