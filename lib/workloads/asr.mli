(** ESPnet-style speech encoder (conv subsampling + transformer encoder +
    CTC log-softmax) at inference batch 1. *)

open Astitch_ir

type config = {
  frames : int;
  mel : int;
  conv_channels : int;
  layers : int;
  hidden : int;
  heads : int;
  ffn_hidden : int;
  vocab : int;
}

val inference_config : config
val tiny_config : config

val overflow_config : config
(** {!tiny_config} with a production-width vocabulary (32768): the CTC
    log-softmax rows overflow anything a block can stage on-chip, so the
    softmax reductions task-split across blocks into global scratch
    behind in-kernel barriers. *)

val inference : ?config:config -> unit -> Graph.t
val tiny : unit -> Graph.t

val overflow : unit -> Graph.t
(** Inference on {!overflow_config} - the shared-mem-overflow bench and
    test shape. *)

val batched : ?config:config -> batch:int -> unit -> Graph.t
(** [batch] utterances in one graph (default config: {!tiny_config}).
    Row-independent per utterance: outputs slice back bit-identical to
    per-utterance batch-1 runs, which is what the serving batcher packs
    against.  [~batch:1] matches {!inference} on the same config node
    for node.
    @raise Invalid_argument if [batch < 1]. *)
