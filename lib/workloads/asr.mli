(** ESPnet-style speech encoder (conv subsampling + transformer encoder +
    CTC log-softmax) at inference batch 1. *)

open Astitch_ir

type config = {
  frames : int;
  mel : int;
  conv_channels : int;
  layers : int;
  hidden : int;
  heads : int;
  ffn_hidden : int;
  vocab : int;
}

val inference_config : config
val tiny_config : config
val inference : ?config:config -> unit -> Graph.t
val tiny : unit -> Graph.t
