(** ESPnet-style speech encoder (conv subsampling + transformer encoder +
    CTC log-softmax) at inference batch 1. *)

open Astitch_ir

type config = {
  frames : int;
  mel : int;
  conv_channels : int;
  layers : int;
  hidden : int;
  heads : int;
  ffn_hidden : int;
  vocab : int;
}

val inference_config : config
val tiny_config : config
val inference : ?config:config -> unit -> Graph.t
val tiny : unit -> Graph.t

val batched : ?config:config -> batch:int -> unit -> Graph.t
(** [batch] utterances in one graph (default config: {!tiny_config}).
    Row-independent per utterance: outputs slice back bit-identical to
    per-utterance batch-1 runs, which is what the serving batcher packs
    against.  [~batch:1] matches {!inference} on the same config node
    for node.
    @raise Invalid_argument if [batch < 1]. *)
