(** DIEN for CTR prediction at batch 256: the <750000,32> candidate-pool
    reduce of Fig 6(a), a GRU interest extractor and attention-weighted
    interest evolution. *)

open Astitch_ir

type config = {
  batch : int;
  behavior_len : int;
  embedding : int;
  hidden : int;
  candidate_pool : int;
  item_vocab : int;
}

val inference_config : config
val training_config : config
val tiny_config : config
val inference : ?config:config -> unit -> Graph.t
val training : ?config:config -> unit -> Graph.t
val tiny : unit -> Graph.t
val tiny_training : unit -> Graph.t

val batched : ?config:config -> batch:int -> unit -> Graph.t
(** Inference at the given batch (default config: {!tiny_config} with
    its batch replaced).  The candidate-pool branch stays
    batch-independent (shared parameters); per-user inputs are
    row-independent, so outputs slice back bit-identical per user.
    @raise Invalid_argument if [batch < 1]. *)
