(** DIEN for CTR prediction at batch 256: the <750000,32> candidate-pool
    reduce of Fig 6(a), a GRU interest extractor and attention-weighted
    interest evolution. *)

open Astitch_ir

type config = {
  batch : int;
  behavior_len : int;
  embedding : int;
  hidden : int;
  candidate_pool : int;
  item_vocab : int;
}

val inference_config : config
val training_config : config
val tiny_config : config

val overflow_config : config
(** Tiny spine with production-width (8192) candidate embedding rows:
    softmax-normalizing each row before pooling overflows the per-block
    shared-memory budget, forcing the regional->global demotion path. *)

val inference : ?config:config -> ?normalize_pool:bool -> unit -> Graph.t
(** [normalize_pool] (default false) softmax-normalizes each gathered
    candidate embedding row before the Fig 6(a) pooling reduce - the
    whole-row-resident pattern that overflows shared memory at
    production embedding widths. *)

val training : ?config:config -> unit -> Graph.t
val tiny : unit -> Graph.t
val tiny_training : unit -> Graph.t

val overflow : unit -> Graph.t
(** Inference on {!overflow_config} with [normalize_pool] - the
    shared-mem-overflow bench and test shape. *)

val batched : ?config:config -> batch:int -> unit -> Graph.t
(** Inference at the given batch (default config: {!tiny_config} with
    its batch replaced).  The candidate-pool branch stays
    batch-independent (shared parameters); per-user inputs are
    row-independent, so outputs slice back bit-identical per user.
    @raise Invalid_argument if [batch < 1]. *)
