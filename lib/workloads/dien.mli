(** DIEN for CTR prediction at batch 256: the <750000,32> candidate-pool
    reduce of Fig 6(a), a GRU interest extractor and attention-weighted
    interest evolution. *)

open Astitch_ir

type config = {
  batch : int;
  behavior_len : int;
  embedding : int;
  hidden : int;
  candidate_pool : int;
  item_vocab : int;
}

val inference_config : config
val training_config : config
val tiny_config : config
val inference : ?config:config -> unit -> Graph.t
val training : ?config:config -> unit -> Graph.t
val tiny : unit -> Graph.t
val tiny_training : unit -> Graph.t
