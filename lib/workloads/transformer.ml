(* Transformer (Vaswani et al.) for machine translation.

   Distinctive memory-intensive features the paper calls out:
   - ~10% of all ops are reduces (softmaxes + layer-norms everywhere);
   - the vocabulary log-softmax row-reduce of shape <64,30000> - the
     small-block-count pathology of Figure 6(b);
   - inference runs at batch 1 (Table 2), training at 4096 tokens. *)

open Astitch_ir

type config = {
  layers : int;
  batch : int;
  seq : int;
  hidden : int;
  heads : int;
  ffn_hidden : int;
  vocab : int;
}

let inference_config =
  {
    layers = 6;
    batch = 1;
    seq = 64;
    hidden = 512;
    heads = 8;
    ffn_hidden = 2048;
    vocab = 30000;
  }

(* 4096-token training batches: 64 sentences x 64 tokens. *)
let training_config = { inference_config with batch = 64 }

let tiny_config =
  { layers = 1; batch = 1; seq = 4; hidden = 8; heads = 2; ffn_hidden = 16; vocab = 16 }

let log_softmax b logits =
  let s = Shape.to_list (Builder.shape_of b logits) in
  let r = List.length s in
  let keep = List.init (r - 1) Fun.id in
  let m = Builder.reduce_max b ~axes:[ r - 1 ] logits in
  let shifted = Builder.sub b logits (Builder.broadcast b m ~dims:keep s) in
  let z = Builder.reduce_sum b ~axes:[ r - 1 ] (Builder.exp b shifted) in
  let log_z = Builder.log b z in
  Builder.sub b shifted (Builder.broadcast b log_z ~dims:keep s)

let build_forward b (c : config) =
  let tokens = c.batch * c.seq in
  let x = Builder.parameter b "embeddings" [ tokens; c.hidden ] in
  let pos = Builder.parameter b "positional" [ tokens; c.hidden ] in
  let x = Builder.add b x pos in
  let rec stack x i =
    if i >= c.layers then x
    else
      let x =
        Blocks.encoder_layer b
          ~name:(Printf.sprintf "enc%d" i)
          ~x ~heads:c.heads ~seq:c.seq ~batch:c.batch ~hidden:c.hidden
          ~ffn_hidden:c.ffn_hidden
      in
      stack x (i + 1)
  in
  let enc = stack x 0 in
  (* vocabulary projection + log-softmax: the <tokens, vocab> row-reduce *)
  let w_vocab = Builder.parameter b "vocab.w" [ c.hidden; c.vocab ] in
  let logits = Builder.dot b enc w_vocab in
  log_softmax b logits

let inference ?(config = inference_config) () =
  let b = Builder.create () in
  let out = build_forward b config in
  Builder.finish b ~outputs:[ out ]

let training ?(config = training_config) () =
  let b = Builder.create () in
  let log_probs = build_forward b config in
  (* cross-entropy against dense targets *)
  let dims = Shape.to_list (Builder.shape_of b log_probs) in
  let targets = Builder.parameter b "targets" dims in
  let nll = Builder.neg b (Builder.mul b targets log_probs) in
  let loss = Builder.reduce_sum b ~axes:[ 0; 1 ] nll in
  let params =
    List.init (Builder.num_nodes b) Fun.id
    |> List.filter (fun id -> Op.is_parameter (Builder.op_of b id))
    |> List.filter (fun id ->
           match Builder.op_of b id with
           | Op.Parameter { name } -> name <> "targets"
           | _ -> false)
  in
  let grads = Autodiff.gradients b ~output:loss ~wrt:params in
  Builder.finish b ~outputs:(loss :: grads)

let tiny () = inference ~config:tiny_config ()
let tiny_training () = training ~config:tiny_config ()

(* [batch] sentences in one graph; the vocabulary log-softmax reduces
   over the last axis only, so every token row is independent and the
   batched outputs slice back bit-identical per sentence. *)
let batched ?(config = tiny_config) ~batch () =
  if batch < 1 then invalid_arg "Transformer.batched: batch must be >= 1";
  inference ~config:{ config with batch } ()
