(** CRNN for scene-text recognition at batch 1: conv + instance-norm
    pyramid, bidirectional GRU, per-timestep softmax.  The paper's
    detailed case-study model (Table 4/5, Fig 15). *)

open Astitch_ir

type config = {
  height : int;
  width : int;
  channels : int list;
  hidden : int;
  classes : int;
}

val inference_config : config
val tiny_config : config
val inference : ?config:config -> unit -> Graph.t
val tiny : unit -> Graph.t

val batched : ?config:config -> batch:int -> unit -> Graph.t
(** [batch] images in one graph (default config: {!tiny_config}).
    Unlike {!inference}, every statistic (standardization, instance
    norm) is computed per image, so each image's scalar sequence is
    independent of its batch mates and outputs slice back bit-identical
    to per-image batch-1 runs; request [i] owns output rows
    [i*w' .. (i+1)*w').
    @raise Invalid_argument if [batch < 1]. *)
