(** CRNN for scene-text recognition at batch 1: conv + instance-norm
    pyramid, bidirectional GRU, per-timestep softmax.  The paper's
    detailed case-study model (Table 4/5, Fig 15). *)

open Astitch_ir

type config = {
  height : int;
  width : int;
  channels : int list;
  hidden : int;
  classes : int;
}

val inference_config : config
val tiny_config : config
val inference : ?config:config -> unit -> Graph.t
val tiny : unit -> Graph.t
