(** Transformer for MT: reduce-heavy (softmaxes + layer norms), with the
    <64,30000> vocabulary log-softmax of Fig 6(b); inference batch 1,
    training 4096 tokens (Table 2). *)

open Astitch_ir

type config = {
  layers : int;
  batch : int;
  seq : int;
  hidden : int;
  heads : int;
  ffn_hidden : int;
  vocab : int;
}

val inference_config : config
val training_config : config
val tiny_config : config
val log_softmax : Builder.t -> Builder.v -> Builder.v
val inference : ?config:config -> unit -> Graph.t
val training : ?config:config -> unit -> Graph.t
val tiny : unit -> Graph.t
val tiny_training : unit -> Graph.t

val batched : ?config:config -> batch:int -> unit -> Graph.t
(** Inference at the given batch (default config: {!tiny_config} with
    its batch replaced).  Row-independent per sentence: outputs slice
    back bit-identical to per-sentence batch-1 runs.
    @raise Invalid_argument if [batch < 1]. *)
