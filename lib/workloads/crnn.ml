(* CRNN (Shi et al.) for scene-text recognition: CNN feature extractor +
   bidirectional GRU + per-timestep softmax, batch 1 inference (Table 2).

   The paper's detailed case study (Table 4 ablation, Figure 15, Table 5)
   runs on this model: conv layers dominate the compute-intensive side,
   while the recurrent stack generates hundreds of small memory-intensive
   subgraphs. *)

open Astitch_ir

type config = {
  height : int;
  width : int;
  channels : int list; (* conv pyramid *)
  hidden : int;
  classes : int;
}

let inference_config =
  { height = 32; width = 100; channels = [ 64; 128; 256 ]; hidden = 256;
    classes = 37 }

let tiny_config =
  { height = 16; width = 24; channels = [ 2; 4 ]; hidden = 4; classes = 5 }

(* Per-image standardization: one long row-reduce over every pixel - a
   small-block-count shape only adaptive splitting parallelizes. *)
let standardize b x ~pixels =
  let flat = Builder.reshape b x [ 1; pixels ] in
  let mean = Builder.reduce_mean b ~axes:[ 1 ] flat in
  let mean_b = Builder.broadcast b mean ~dims:[ 0 ] [ 1; pixels ] in
  let centered = Builder.sub b flat mean_b in
  let var = Builder.reduce_mean b ~axes:[ 1 ] (Builder.mul b centered centered) in
  let eps = Builder.broadcast_scalar b (Builder.constant b 1e-6) [ 1 ] in
  let inv = Builder.rsqrt b (Builder.add b var eps) in
  let inv_b = Builder.broadcast b inv ~dims:[ 0 ] [ 1; pixels ] in
  Builder.mul b centered inv_b

let build_forward b (c : config) =
  let raw = Builder.parameter b "image" [ 1; c.height; c.width; 1 ] in
  let pixels = c.height * c.width in
  let x =
    Builder.reshape b (standardize b raw ~pixels) [ 1; c.height; c.width; 1 ]
  in
  (* conv pyramid: stride-2 3x3 convs with relu *)
  (* conv -> instance norm -> scale/shift -> relu: the classic CNN block.
     The norm's two reduces over the image-sized activations are exactly
     where XLA's pattern-1 cuts force it to materialize full feature maps
     several times, while stitching keeps them on-chip. *)
  let conv x ~in_ch ~out_ch i =
    let name = Printf.sprintf "conv%d" i in
    let f = Builder.parameter b (name ^ ".w") [ 3; 3; in_ch; out_ch ] in
    let y = Builder.conv2d b ~stride:2 x f in
    let ys = Shape.to_list (Builder.shape_of b y) in
    let n_, h_, w_, c_ =
      match ys with [ n; h; w; c ] -> (n, h, w, c) | _ -> assert false
    in
    let pixels = n_ * h_ * w_ in
    let flat = Builder.reshape b y [ pixels; c_ ] in
    (* per-channel statistics: column reduces over the pixel axis *)
    let mean = Builder.reduce_mean b ~axes:[ 0 ] flat in
    let mean_b = Builder.broadcast b mean ~dims:[ 1 ] [ pixels; c_ ] in
    let centered = Builder.sub b flat mean_b in
    let var =
      Builder.reduce_mean b ~axes:[ 0 ] (Builder.mul b centered centered)
    in
    let eps = Builder.broadcast_scalar b (Builder.constant b 1e-5) [ c_ ] in
    let inv_std = Builder.rsqrt b (Builder.add b var eps) in
    let inv_b = Builder.broadcast b inv_std ~dims:[ 1 ] [ pixels; c_ ] in
    let gamma = Builder.parameter b (name ^ ".gamma") [ c_ ] in
    let beta = Builder.parameter b (name ^ ".beta") [ c_ ] in
    let gamma_b = Builder.broadcast b gamma ~dims:[ 1 ] [ pixels; c_ ] in
    let beta_b = Builder.broadcast b beta ~dims:[ 1 ] [ pixels; c_ ] in
    let normed =
      Builder.add b (Builder.mul b (Builder.mul b centered inv_b) gamma_b) beta_b
    in
    Builder.reshape b (Builder.relu b normed) [ n_; h_; w_; c_ ]
  in
  (* conv (stride 1) + norm + 2x2 max-pool for the first block, strided
     convs after - the classic CRNN front-end *)
  let feat, _, _ =
    List.fold_left
      (fun (x, in_ch, i) out_ch ->
        let y = conv x ~in_ch ~out_ch i in
        let ys = Shape.to_list (Builder.shape_of b y) in
        let pooled =
          match ys with
          | [ _; h; w; _ ] when i = 0 && h >= 2 && w >= 2 ->
              Builder.max_pool b ~window:2 ~stride:2 y
          | _ -> y
        in
        (pooled, out_ch, i + 1))
      (x, 1, 0) c.channels
  in
  let fs = Shape.to_list (Builder.shape_of b feat) in
  let h', w', ch' =
    match fs with
    | [ 1; h; w; ch ] -> (h, w, ch)
    | _ -> Graph.ill_formed "crnn: unexpected conv output shape"
  in
  (* collapse height into channels; timesteps = width *)
  let tr = Builder.transpose b feat ~perm:[ 0; 2; 1; 3 ] in
  let seq = Builder.reshape b tr [ w'; h' * ch' ] in
  let w_in = Builder.parameter b "proj.w" [ h' * ch'; c.hidden ] in
  let b_in = Builder.parameter b "proj.b" [ c.hidden ] in
  let seq = Blocks.dense b seq ~weight:w_in ~bias:b_in in
  (* bidirectional GRU over the width timesteps, batch = 1 *)
  let step t = Builder.slice b seq ~starts:[ t; 0 ] ~stops:[ t + 1; c.hidden ] in
  let run_dir name order =
    let h0 = Builder.parameter b (name ^ ".h0") [ 1; c.hidden ] in
    let _, states =
      List.fold_left
        (fun (h, acc) t ->
          let h' =
            Blocks.gru_cell b
              ~name:(Printf.sprintf "%s.%d" name t)
              ~x:(step t) ~h ~batch:1 ~hidden:c.hidden
          in
          (h', (t, h') :: acc))
        (h0, []) order
    in
    states
  in
  let fwd = run_dir "gru_fwd" (List.init w' Fun.id) in
  let bwd = run_dir "gru_bwd" (List.rev (List.init w' Fun.id)) in
  let state dir t = List.assoc t dir in
  (* per-timestep class posteriors *)
  let w_out = Builder.parameter b "out.w" [ 2 * c.hidden; c.classes ] in
  let b_out = Builder.parameter b "out.b" [ c.classes ] in
  let posts =
    List.init w' (fun t ->
        let h = Builder.concat b ~axis:1 [ state fwd t; state bwd t ] in
        Builder.softmax b (Blocks.dense b h ~weight:w_out ~bias:b_out))
  in
  Builder.concat b ~axis:0 posts

let inference ?(config = inference_config) () =
  let b = Builder.create () in
  let out = build_forward b config in
  Builder.finish b ~outputs:[ out ]

let tiny () = inference ~config:tiny_config ()

(* --- Batched variant ----------------------------------------------------- *)

(* [batch] images in one graph.  The batch-1 builder above cannot be
   reused verbatim: its standardization reduces over [1; pixels] and its
   instance norm reduces over [n*h*w; c] flats, both of which would mix
   images at batch > 1.  The batched builder keeps every statistic
   per-image (rank-3 reduces over the image's own pixels, in the same
   element order as the batch-1 reduce), so each image's scalar sequence
   is identical whatever the batch - the property the serving batcher's
   bit-identity contract rests on.  Timesteps are kept timestep-major
   internally for the GRU slices and transposed back to image-major on
   output: request i owns output rows [i*w' .. (i+1)*w'). *)
let build_batched b (c : config) ~batch:n =
  let raw = Builder.parameter b "image" [ n; c.height; c.width; 1 ] in
  let pixels = c.height * c.width in
  (* per-image standardization over the image's own pixels *)
  let x =
    let flat = Builder.reshape b raw [ n; pixels ] in
    let mean = Builder.reduce_mean b ~axes:[ 1 ] flat in
    let mean_b = Builder.broadcast b mean ~dims:[ 0 ] [ n; pixels ] in
    let centered = Builder.sub b flat mean_b in
    let var =
      Builder.reduce_mean b ~axes:[ 1 ] (Builder.mul b centered centered)
    in
    let eps = Builder.broadcast_scalar b (Builder.constant b 1e-6) [ n ] in
    let inv = Builder.rsqrt b (Builder.add b var eps) in
    let inv_b = Builder.broadcast b inv ~dims:[ 0 ] [ n; pixels ] in
    Builder.reshape b
      (Builder.mul b centered inv_b)
      [ n; c.height; c.width; 1 ]
  in
  (* conv -> per-image instance norm -> scale/shift -> relu *)
  let conv x ~in_ch ~out_ch i =
    let name = Printf.sprintf "conv%d" i in
    let f = Builder.parameter b (name ^ ".w") [ 3; 3; in_ch; out_ch ] in
    let y = Builder.conv2d b ~stride:2 x f in
    let ys = Shape.to_list (Builder.shape_of b y) in
    let n_, h_, w_, c_ =
      match ys with [ n'; h; w; ch ] -> (n', h, w, ch) | _ -> assert false
    in
    let hw = h_ * w_ in
    let flat = Builder.reshape b y [ n_; hw; c_ ] in
    (* per-channel statistics over this image's pixels only *)
    let mean = Builder.reduce_mean b ~axes:[ 1 ] flat in
    let mean_b = Builder.broadcast b mean ~dims:[ 0; 2 ] [ n_; hw; c_ ] in
    let centered = Builder.sub b flat mean_b in
    let var =
      Builder.reduce_mean b ~axes:[ 1 ] (Builder.mul b centered centered)
    in
    let eps =
      Builder.broadcast_scalar b (Builder.constant b 1e-5) [ n_; c_ ]
    in
    let inv_std = Builder.rsqrt b (Builder.add b var eps) in
    let inv_b = Builder.broadcast b inv_std ~dims:[ 0; 2 ] [ n_; hw; c_ ] in
    let gamma = Builder.parameter b (name ^ ".gamma") [ c_ ] in
    let beta = Builder.parameter b (name ^ ".beta") [ c_ ] in
    let gamma_b = Builder.broadcast b gamma ~dims:[ 2 ] [ n_; hw; c_ ] in
    let beta_b = Builder.broadcast b beta ~dims:[ 2 ] [ n_; hw; c_ ] in
    let normed =
      Builder.add b
        (Builder.mul b (Builder.mul b centered inv_b) gamma_b)
        beta_b
    in
    Builder.reshape b (Builder.relu b normed) [ n_; h_; w_; c_ ]
  in
  let feat, _, _ =
    List.fold_left
      (fun (x, in_ch, i) out_ch ->
        let y = conv x ~in_ch ~out_ch i in
        let ys = Shape.to_list (Builder.shape_of b y) in
        let pooled =
          match ys with
          | [ _; h; w; _ ] when i = 0 && h >= 2 && w >= 2 ->
              Builder.max_pool b ~window:2 ~stride:2 y
          | _ -> y
        in
        (pooled, out_ch, i + 1))
      (x, 1, 0) c.channels
  in
  let fs = Shape.to_list (Builder.shape_of b feat) in
  let h', w', ch' =
    match fs with
    | [ n'; h; w; ch ] when n' = n -> (h, w, ch)
    | _ -> Graph.ill_formed "crnn: unexpected conv output shape"
  in
  (* timestep-major token layout: row t*n + i is image i at timestep t,
     so a GRU step is one contiguous [n; hidden] row slice *)
  let tr = Builder.transpose b feat ~perm:[ 2; 0; 1; 3 ] in
  let seq = Builder.reshape b tr [ w' * n; h' * ch' ] in
  let w_in = Builder.parameter b "proj.w" [ h' * ch'; c.hidden ] in
  let b_in = Builder.parameter b "proj.b" [ c.hidden ] in
  let seq = Blocks.dense b seq ~weight:w_in ~bias:b_in in
  let step t =
    Builder.slice b seq ~starts:[ t * n; 0 ] ~stops:[ (t + 1) * n; c.hidden ]
  in
  let run_dir name order =
    let h0 = Builder.parameter b (name ^ ".h0") [ n; c.hidden ] in
    let _, states =
      List.fold_left
        (fun (h, acc) t ->
          let h' =
            Blocks.gru_cell b
              ~name:(Printf.sprintf "%s.%d" name t)
              ~x:(step t) ~h ~batch:n ~hidden:c.hidden
          in
          (h', (t, h') :: acc))
        (h0, []) order
    in
    states
  in
  let fwd = run_dir "gru_fwd" (List.init w' Fun.id) in
  let bwd = run_dir "gru_bwd" (List.rev (List.init w' Fun.id)) in
  let state dir t = List.assoc t dir in
  let w_out = Builder.parameter b "out.w" [ 2 * c.hidden; c.classes ] in
  let b_out = Builder.parameter b "out.b" [ c.classes ] in
  let posts =
    List.init w' (fun t ->
        let h = Builder.concat b ~axis:1 [ state fwd t; state bwd t ] in
        let p = Builder.softmax b (Blocks.dense b h ~weight:w_out ~bias:b_out) in
        (* [n; classes] -> [n; 1; classes] so timesteps concat per image *)
        Builder.reshape b p [ n; 1; c.classes ])
  in
  (* image-major output: request i owns rows [i*w' .. (i+1)*w') *)
  let stacked = Builder.concat b ~axis:1 posts in
  Builder.reshape b stacked [ n * w'; c.classes ]

let batched ?(config = tiny_config) ~batch () =
  if batch < 1 then invalid_arg "Crnn.batched: batch must be >= 1";
  let b = Builder.create () in
  let out = build_batched b config ~batch in
  Builder.finish b ~outputs:[ out ]
