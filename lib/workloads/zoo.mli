(** Registry of the paper's five evaluation workloads (Table 2). *)

open Astitch_ir

type entry = {
  name : string;
  field : string;
  inference : unit -> Graph.t;
  training : (unit -> Graph.t) option;
  tiny : unit -> Graph.t;
  train_batch : int option;
  infer_batch : int;
}

val all : entry list
val find : string -> entry option
