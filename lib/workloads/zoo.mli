(** Registry of the paper's five evaluation workloads (Table 2). *)

open Astitch_ir

type entry = {
  name : string;
  field : string;
  inference : unit -> Graph.t;
  training : (unit -> Graph.t) option;
  tiny : unit -> Graph.t;
  batched : batch:int -> Graph.t;
      (** Test-size inference graph at the given batch, row-independent
          per request: outputs slice back bit-identical to batch-1 runs
          of the same builder.  What the serving runtime executes. *)
  train_batch : int option;
  infer_batch : int;
}

val all : entry list
val find : string -> entry option
