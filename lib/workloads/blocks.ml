(* Model building blocks shared by the workload generators.

   Embedding lookups (gathers) are fed in as already-looked-up activation
   parameters: the lookup itself is neither compute- nor memory-intensive
   in the paper's sense and contributes nothing to fusion structure. *)

open Astitch_ir

type b = Builder.t

let dense b x ~weight ~bias =
  let y = Builder.dot b x weight in
  let s = Shape.to_list (Builder.shape_of b y) in
  let r = List.length s in
  let bias_b = Builder.broadcast b bias ~dims:[ r - 1 ] s in
  Builder.add b y bias_b

(* Scaled-dot-product attention over [batch*heads; seq; dim] tensors:
   the Figure 4 subgraph (scale -> mask-add -> softmax) lives between the
   two batched matmuls. *)
let attention b ~q ~k ~v ~mask ~scale =
  let seq_t =
    let s = Shape.to_list (Builder.shape_of b k) in
    match s with
    | [ bh; s1; d ] -> ignore (bh, s1, d); Builder.transpose b k ~perm:[ 0; 2; 1 ]
    | _ -> Graph.ill_formed "attention: rank-3 [bh;seq;dim] expected"
  in
  let scores = Builder.dot b q seq_t in
  let dims = Shape.to_list (Builder.shape_of b scores) in
  let scale_c = Builder.constant b scale in
  let scale_b = Builder.broadcast_scalar b scale_c dims in
  let scaled = Builder.mul b scores scale_b in
  let masked =
    match mask with
    | None -> scaled
    | Some m ->
        (* mask is [seq; seq]; broadcast over the batch*heads axis *)
        let m_b = Builder.broadcast b m ~dims:[ 1; 2 ] dims in
        Builder.add b scaled m_b
  in
  let probs = Builder.softmax b masked in
  Builder.dot b probs v

(* Transformer encoder layer on [tokens; hidden] activations. *)
let encoder_layer b ~name ~x ~heads ~seq ~batch ~hidden ~ffn_hidden =
  let p suffix dims = Builder.parameter b (name ^ "." ^ suffix) dims in
  let head_dim = hidden / heads in
  let wq = p "wq" [ hidden; hidden ]
  and wk = p "wk" [ hidden; hidden ]
  and wv = p "wv" [ hidden; hidden ]
  and wo = p "wo" [ hidden; hidden ] in
  let bq = p "bq" [ hidden ]
  and bk = p "bk" [ hidden ]
  and bv = p "bv" [ hidden ]
  and bo = p "bo" [ hidden ] in
  let to_heads t =
    (* [batch*seq; hidden] -> [batch*heads; seq; head_dim] *)
    let r = Builder.reshape b t [ batch; seq; heads; head_dim ] in
    let tr = Builder.transpose b r ~perm:[ 0; 2; 1; 3 ] in
    Builder.reshape b tr [ batch * heads; seq; head_dim ]
  in
  let q = to_heads (dense b x ~weight:wq ~bias:bq) in
  let k = to_heads (dense b x ~weight:wk ~bias:bk) in
  let v = to_heads (dense b x ~weight:wv ~bias:bv) in
  let ctx = attention b ~q ~k ~v ~mask:None ~scale:(1. /. Float.sqrt (float_of_int head_dim)) in
  let merged =
    let r = Builder.reshape b ctx [ batch; heads; seq; head_dim ] in
    let tr = Builder.transpose b r ~perm:[ 0; 2; 1; 3 ] in
    Builder.reshape b tr [ batch * seq; hidden ]
  in
  let attn_out = dense b merged ~weight:wo ~bias:bo in
  let res1 = Builder.add b x attn_out in
  let g1 = p "ln1.gamma" [ hidden ] and b1 = p "ln1.beta" [ hidden ] in
  let ln1 = Builder.layer_norm b res1 ~gamma:g1 ~beta:b1 in
  let w1 = p "ffn.w1" [ hidden; ffn_hidden ]
  and bb1 = p "ffn.b1" [ ffn_hidden ]
  and w2 = p "ffn.w2" [ ffn_hidden; hidden ]
  and bb2 = p "ffn.b2" [ hidden ] in
  let h = Builder.gelu b (dense b ln1 ~weight:w1 ~bias:bb1) in
  let ffn_out = dense b h ~weight:w2 ~bias:bb2 in
  let res2 = Builder.add b ln1 ffn_out in
  let g2 = p "ln2.gamma" [ hidden ] and b2 = p "ln2.beta" [ hidden ] in
  Builder.layer_norm b res2 ~gamma:g2 ~beta:b2

(* GRU cell: x [batch; input], h [batch; hidden] -> h' [batch; hidden].
   The three gates are the dense elementwise sigmoid/tanh subgraphs the
   paper's RNN workloads are full of. *)
let gru_cell b ~name ~x ~h ~batch ~hidden =
  ignore batch;
  let p suffix dims = Builder.parameter b (name ^ "." ^ suffix) dims in
  let input_dim =
    match Shape.to_list (Builder.shape_of b x) with
    | [ _; d ] -> d
    | _ -> Graph.ill_formed "gru_cell: x must be [batch; input]"
  in
  let gate suffix activation ~extra =
    let w = p ("w" ^ suffix) [ input_dim; hidden ] in
    let u = p ("u" ^ suffix) [ hidden; hidden ] in
    let bias = p ("b" ^ suffix) [ hidden ] in
    let pre =
      Builder.add b (Builder.dot b x w) (Builder.dot b extra u)
    in
    let dims = Shape.to_list (Builder.shape_of b pre) in
    let bias_b = Builder.broadcast b bias ~dims:[ 1 ] dims in
    activation (Builder.add b pre bias_b)
  in
  let z = gate "z" (Builder.sigmoid b) ~extra:h in
  let r = gate "r" (Builder.sigmoid b) ~extra:h in
  let h_cand = gate "h" (Builder.tanh b) ~extra:(Builder.mul b r h) in
  let one =
    Builder.broadcast_scalar b (Builder.constant b 1.)
      (Shape.to_list (Builder.shape_of b z))
  in
  let keep = Builder.mul b (Builder.sub b one z) h in
  Builder.add b keep (Builder.mul b z h_cand)
