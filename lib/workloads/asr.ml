(* ASR: an ESPnet-style speech encoder (conv subsampling front-end +
   transformer encoder + CTC-ish log-softmax), batch 1 inference as in
   Table 2.  Batch-1 speech features give the small irregular shapes the
   paper's adaptive mapping targets. *)

open Astitch_ir

type config = {
  frames : int; (* input time steps *)
  mel : int; (* feature bins *)
  conv_channels : int;
  layers : int;
  hidden : int;
  heads : int;
  ffn_hidden : int;
  vocab : int;
}

let inference_config =
  {
    frames = 200;
    mel = 80;
    conv_channels = 32;
    layers = 4;
    hidden = 256;
    heads = 4;
    ffn_hidden = 1024;
    vocab = 5000;
  }

let tiny_config =
  { frames = 12; mel = 8; conv_channels = 2; layers = 1; hidden = 8;
    heads = 2; ffn_hidden = 16; vocab = 8 }

(* Shared-mem-overflow shape: the CTC log-softmax rows widen far past
   anything a block can stage on-chip (a 32K-float row is 128KB against
   the 48KB budget), so adaptive mapping task-splits each row across
   blocks and the softmax reductions go global - cross-block partials in
   global scratch behind in-kernel barriers.  Everything else stays tiny
   so the overflow path dominates the graph. *)
let overflow_config = { tiny_config with frames = 16; vocab = 32768 }

(* [batch] utterances in one graph.  Every op is row-independent per
   utterance (convs act per image, the token axis is flattened
   batch-major, attention mixes tokens only within one utterance), so
   the batched graph computes exactly the per-utterance scalar sequences
   of the batch-1 graph: the serving batcher relies on outputs slicing
   back bit-identical.  At [batch = 1] this emits the historical ASR
   graph node for node. *)
let build_forward b (c : config) ~batch =
  (* conv subsampling: two stride-2 3x3 convs with relu *)
  let x = Builder.parameter b "features" [ batch; c.frames; c.mel; 1 ] in
  let f1 = Builder.parameter b "conv1.w" [ 3; 3; 1; c.conv_channels ] in
  let c1 = Builder.relu b (Builder.conv2d b ~stride:2 x f1) in
  let f2 =
    Builder.parameter b "conv2.w" [ 3; 3; c.conv_channels; c.conv_channels ]
  in
  let c2 = Builder.relu b (Builder.conv2d b ~stride:2 c1 f2) in
  let c2_shape = Shape.to_list (Builder.shape_of b c2) in
  let t', m', ch =
    match c2_shape with
    | [ n; t; m; ch ] when n = batch -> (t, m, ch)
    | _ -> Graph.ill_formed "asr: unexpected conv output shape"
  in
  let flat = Builder.reshape b c2 [ batch * t'; m' * ch ] in
  let w_in = Builder.parameter b "proj.w" [ m' * ch; c.hidden ] in
  let b_in = Builder.parameter b "proj.b" [ c.hidden ] in
  let x = Blocks.dense b flat ~weight:w_in ~bias:b_in in
  let rec stack x i =
    if i >= c.layers then x
    else
      let x =
        Blocks.encoder_layer b
          ~name:(Printf.sprintf "enc%d" i)
          ~x ~heads:c.heads ~seq:t' ~batch ~hidden:c.hidden
          ~ffn_hidden:c.ffn_hidden
      in
      stack x (i + 1)
  in
  let enc = stack x 0 in
  let w_out = Builder.parameter b "ctc.w" [ c.hidden; c.vocab ] in
  let logits = Builder.dot b enc w_out in
  Transformer.log_softmax b logits

let inference ?(config = inference_config) () =
  let b = Builder.create () in
  let out = build_forward b config ~batch:1 in
  Builder.finish b ~outputs:[ out ]

let tiny () = inference ~config:tiny_config ()
let overflow () = inference ~config:overflow_config ()

let batched ?(config = tiny_config) ~batch () =
  if batch < 1 then invalid_arg "Asr.batched: batch must be >= 1";
  let b = Builder.create () in
  let out = build_forward b config ~batch in
  Builder.finish b ~outputs:[ out ]
