(* Registry of the paper's five evaluation workloads (Table 2). *)

open Astitch_ir

type entry = {
  name : string;
  field : string;
  inference : unit -> Graph.t;
  training : (unit -> Graph.t) option;
  tiny : unit -> Graph.t;
  batched : batch:int -> Graph.t;
  train_batch : int option;
  infer_batch : int;
}

let all =
  [
    {
      name = "CRNN";
      field = "Images";
      inference = (fun () -> Crnn.inference ());
      training = None;
      tiny = Crnn.tiny;
      batched = (fun ~batch -> Crnn.batched ~batch ());
      train_batch = None;
      infer_batch = 1;
    };
    {
      name = "ASR";
      field = "Speech";
      inference = (fun () -> Asr.inference ());
      training = None;
      tiny = Asr.tiny;
      batched = (fun ~batch -> Asr.batched ~batch ());
      train_batch = None;
      infer_batch = 1;
    };
    {
      name = "BERT";
      field = "NLP";
      inference = (fun () -> Bert.inference ());
      training = Some (fun () -> Bert.training ());
      tiny = Bert.tiny;
      batched = (fun ~batch -> Bert.batched ~batch ());
      train_batch = Some 12;
      infer_batch = 200;
    };
    {
      name = "Transformer";
      field = "NLP";
      inference = (fun () -> Transformer.inference ());
      training = Some (fun () -> Transformer.training ());
      tiny = Transformer.tiny;
      batched = (fun ~batch -> Transformer.batched ~batch ());
      train_batch = Some 4096;
      infer_batch = 1;
    };
    {
      name = "DIEN";
      field = "Recommendation";
      inference = (fun () -> Dien.inference ());
      training = Some (fun () -> Dien.training ());
      tiny = Dien.tiny;
      batched = (fun ~batch -> Dien.batched ~batch ());
      train_batch = Some 256;
      infer_batch = 256;
    };
  ]

let find name =
  List.find_opt
    (fun e -> String.lowercase_ascii e.name = String.lowercase_ascii name)
    all
