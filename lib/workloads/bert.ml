(* BERT-style encoder stack (Devlin et al.), with the production inference
   batch size of the paper's Table 2 (200) and training batch 12.

   Memory-intensive structure per layer: softmax (reduce-max + exp +
   reduce-sum + divide under broadcasts), two layer-norms (mean/variance
   reduces feeding rsqrt and broadcast normalization) and the GELU erf
   chain - exactly the pattern-1/pattern-2 mixture of Sec 2.3. *)

open Astitch_ir

type config = {
  layers : int;
  batch : int;
  seq : int;
  hidden : int;
  heads : int;
  ffn_hidden : int;
}

let inference_config =
  { layers = 12; batch = 200; seq = 128; hidden = 768; heads = 12; ffn_hidden = 3072 }

let training_config = { inference_config with batch = 12 }

let tiny_config =
  { layers = 2; batch = 2; seq = 4; hidden = 8; heads = 2; ffn_hidden = 16 }

let build_forward b (c : config) =
  let tokens = c.batch * c.seq in
  let x = Builder.parameter b "embeddings" [ tokens; c.hidden ] in
  let g0 = Builder.parameter b "ln0.gamma" [ c.hidden ] in
  let b0 = Builder.parameter b "ln0.beta" [ c.hidden ] in
  let x = Builder.layer_norm b x ~gamma:g0 ~beta:b0 in
  let rec stack x i =
    if i >= c.layers then x
    else
      let x =
        Blocks.encoder_layer b
          ~name:(Printf.sprintf "layer%d" i)
          ~x ~heads:c.heads ~seq:c.seq ~batch:c.batch ~hidden:c.hidden
          ~ffn_hidden:c.ffn_hidden
      in
      stack x (i + 1)
  in
  stack x 0

let inference ?(config = inference_config) () =
  let b = Builder.create () in
  let out = build_forward b config in
  Builder.finish b ~outputs:[ out ]

let training ?(config = training_config) () =
  let b = Builder.create () in
  let out = build_forward b config in
  let loss = Builder.reduce_sum b ~axes:[ 0; 1 ] out in
  let params =
    List.init (Builder.num_nodes b) Fun.id
    |> List.filter (fun id -> Op.is_parameter (Builder.op_of b id))
  in
  let grads = Autodiff.gradients b ~output:loss ~wrt:params in
  Builder.finish b ~outputs:(loss :: grads)

let tiny () = inference ~config:tiny_config ()
let tiny_training () = training ~config:tiny_config ()

(* [batch] sequences in one graph: the token axis is batch-major
   ([batch*seq; hidden]) and attention mixes tokens only within one
   sequence, so outputs slice back bit-identical per sequence. *)
let batched ?(config = tiny_config) ~batch () =
  if batch < 1 then invalid_arg "Bert.batched: batch must be >= 1";
  inference ~config:{ config with batch } ()
