(** Seeded random memory-intensive graphs for property tests and the
    compilation-overhead benchmark. *)

open Astitch_ir

val random_graph : ?seed:int -> ?dims_pool:int list -> nodes:int -> unit -> Graph.t
(** At least [nodes] ops over rank-<=2 tensors; deterministic per seed. *)
