(* Random memory-intensive graphs.

   Two consumers:
   - property tests: any generated graph, compiled by any backend, must
     execute to the reference interpreter's values and pass every plan
     invariant (shapes stay small so execution is cheap);
   - the Sec 6.4.1 optimization-overhead benchmark: 5,000-10,000-node
     graphs that only get compiled, never executed. *)

open Astitch_ir

type rng = { mutable state : int }

let rng seed = { state = (seed lxor 0x2545F491) land 0x3FFFFFFF }

let next r =
  r.state <- ((r.state * 1103515245) + 12345) land 0x3FFFFFFF;
  r.state

let below r n = if n <= 0 then 0 else next r mod n

let pick r l = List.nth l (below r (List.length l))

type value = { v : Builder.v; dims : int list }

let safe_unaries =
  [ Op.Neg; Op.Abs; Op.Relu; Op.Tanh; Op.Sigmoid; Op.Exp; Op.Sign; Op.Erf ]

let safe_binaries = [ Op.Add; Op.Sub; Op.Mul; Op.Max; Op.Min ]

(* Generate a graph with roughly [nodes] ops over rank-<=2 tensors whose
   dimensions come from [dims_pool]. *)
let random_graph ?(seed = 1) ?(dims_pool = [ 2; 3; 4; 5; 8 ]) ~nodes () =
  let r = rng seed in
  let b = Builder.create () in
  let dim () = pick r dims_pool in
  let pool : value list ref = ref [] in
  let add dims v = pool := { v; dims } :: !pool in
  let fresh_param i =
    let dims = [ dim (); dim () ] in
    add dims (Builder.parameter b (Printf.sprintf "p%d" i) dims)
  in
  let n_params = 2 + below r 3 in
  for i = 0 to n_params - 1 do
    fresh_param i
  done;
  let values_with f = List.filter f !pool in
  let any () = pick r !pool in
  let emit_step () =
    match below r 100 with
    | x when x < 30 ->
        (* unary *)
        let { v; dims } = any () in
        add dims (Builder.unary b (pick r safe_unaries) v)
    | x when x < 55 -> (
        (* binary on matching shapes *)
        let { v; dims } = any () in
        match values_with (fun u -> u.dims = dims) with
        | [] -> add dims (Builder.neg b v)
        | candidates ->
            let u = pick r candidates in
            add dims (Builder.binary b (pick r safe_binaries) v u.v))
    | x when x < 70 -> (
        (* reduce a rank-2 value over one axis *)
        match values_with (fun u -> List.length u.dims = 2) with
        | [] -> ()
        | candidates ->
            let { v; dims } = pick r candidates in
            let axis = below r 2 in
            let kind = pick r [ Op.Sum; Op.Max_r; Op.Mean ] in
            add
              [ List.nth dims (1 - axis) ]
              (Builder.reduce b kind ~axes:[ axis ] v))
    | x when x < 85 -> (
        (* broadcast a rank-1 value into a rank-2 shape *)
        match values_with (fun u -> List.length u.dims = 1) with
        | [] -> ()
        | candidates ->
            let { v; dims } = pick r candidates in
            let d = List.hd dims in
            let other = dim () in
            if below r 2 = 0 then
              add [ d; other ] (Builder.broadcast b v ~dims:[ 0 ] [ d; other ])
            else add [ other; d ] (Builder.broadcast b v ~dims:[ 1 ] [ other; d ]))
    | x when x < 92 -> (
        (* heavy elementwise then used under broadcast later: seed the
           pattern-2 structure explicitly *)
        match values_with (fun u -> List.length u.dims = 1) with
        | [] -> ()
        | candidates ->
            let { v; dims } = pick r candidates in
            let d = List.hd dims in
            let heavy = Builder.tanh b v in
            let other = dim () in
            add [ d; other ]
              (Builder.broadcast b heavy ~dims:[ 0 ] [ d; other ]))
    | x when x < 94 -> (
        (* dot: [a;b] x [b;c] *)
        match values_with (fun u -> List.length u.dims = 2) with
        | [] -> ()
        | candidates ->
            let { v; dims } = pick r candidates in
            let k = List.nth dims 1 in
            let c = dim () in
            let w = Builder.parameter b
                (Printf.sprintf "w%d" (Builder.num_nodes b)) [ k; c ]
            in
            add [ List.hd dims; c ] (Builder.dot b v w))
    | x when x < 97 -> (
        (* gather with in-range iota indices, sometimes followed by a
           scatter-add back into the table shape *)
        match values_with (fun u -> List.length u.dims = 2) with
        | [] -> ()
        | candidates ->
            let { v; dims } = pick r candidates in
            let rows = List.hd dims and cols = List.nth dims 1 in
            let k = 1 + below r rows in
            let ids = Builder.iota b ~axis:0 [ k ] in
            let gathered = Builder.gather b v ids in
            add [ k; cols ] gathered;
            if below r 2 = 0 then
              add [ rows; cols ] (Builder.scatter_add b ~rows ids gathered))
    | _ -> (
        (* transpose *)
        match values_with (fun u -> List.length u.dims = 2) with
        | [] -> ()
        | candidates ->
            let { v; dims } = pick r candidates in
            add (List.rev dims) (Builder.transpose b v ~perm:[ 1; 0 ]))
  in
  while Builder.num_nodes b < nodes do
    emit_step ()
  done;
  (* outputs: a handful of the most recent values *)
  let outputs =
    !pool
    |> List.filteri (fun i _ -> i < 3)
    |> List.map (fun { v; _ } -> v)
  in
  Builder.finish b ~outputs
