(* DIEN (Deep Interest Evolution Network, Zhou et al.) for CTR
   prediction, at the production batch size 256 of Table 2.

   Distinctive memory-intensive features:
   - the <750000,32> row-reduce of Figure 6(a): pooling candidate-item
     embedding lists - the small-block-size pathology;
   - a GRU interest extractor unrolled over the behaviour sequence:
     hundreds of small element-wise sigmoid/tanh subgraphs between tiny
     GEMMs, which is where XLA's many-small-kernels overhead bites;
   - an attention-weighted interest evolution (AUGRU-style gating). *)

open Astitch_ir

type config = {
  batch : int;
  behavior_len : int;
  embedding : int;
  hidden : int;
  candidate_pool : int; (* rows of the big pooling reduce *)
  item_vocab : int; (* embedding-table rows the candidates gather from *)
}

let inference_config =
  { batch = 256; behavior_len = 30; embedding = 32; hidden = 32;
    candidate_pool = 750_000; item_vocab = 4096 }

let training_config = { inference_config with candidate_pool = 750_000 }

let tiny_config =
  { batch = 2; behavior_len = 3; embedding = 4; hidden = 4;
    candidate_pool = 8; item_vocab = 6 }

(* Shared-mem-overflow shape: widen the candidate embedding rows far past
   the per-block shared-memory budget so the softmax-normalized pooling
   branch ([normalize_pool]) must demote its row staging to global
   scratch.  The GRU/attention spine stays tiny. *)
let overflow_config =
  { batch = 2; behavior_len = 2; embedding = 8192; hidden = 8;
    candidate_pool = 8; item_vocab = 16 }

let build_forward ?(normalize_pool = false) b (c : config) =
  (* candidate-pool pooling branch: embedding lookup over the item table,
     then the irregular-shape reduce of Fig 6(a).  Training backpropagates
     into the table through a scatter-add. *)
  let table =
    Builder.parameter b "item_table" [ c.item_vocab; c.embedding ]
  in
  let ids = Builder.parameter b "candidate_ids" [ c.candidate_pool ] in
  let pool = Builder.gather b table ids in
  (* Fig 6(a) variant: softmax-normalize each gathered embedding row
     before pooling.  The softmax needs the whole row resident, which is
     what overflows shared memory at production embedding widths. *)
  let pool = if normalize_pool then Builder.softmax b pool else pool in
  let pooled = Builder.reduce_sum b ~axes:[ 1 ] pool in (* <750000> *)
  let pooled_norm =
    let dims = Shape.to_list (Builder.shape_of b pooled) in
    let scale =
      Builder.broadcast_scalar b
        (Builder.constant b (1. /. float_of_int c.embedding))
        dims
    in
    Builder.sigmoid b (Builder.mul b pooled scale)
  in
  let pool_score = Builder.reduce_mean b ~axes:[ 0 ] pooled_norm in
  (* GRU interest extractor over the behaviour sequence *)
  let h0 = Builder.parameter b "h0" [ c.batch; c.hidden ] in
  let rec unroll h t acc =
    if t >= c.behavior_len then (h, List.rev acc)
    else begin
      let x =
        Builder.parameter b (Printf.sprintf "behavior.%d" t)
          [ c.batch; c.embedding ]
      in
      let h' =
        Blocks.gru_cell b
          ~name:(Printf.sprintf "gru.%d" t)
          ~x ~h ~batch:c.batch ~hidden:c.hidden
      in
      unroll h' (t + 1) (h' :: acc)
    end
  in
  let h_final, states = unroll h0 0 [] in
  (* attention over hidden states against the target item *)
  let target = Builder.parameter b "target_item" [ c.batch; c.hidden ] in
  let scores =
    List.map
      (fun h -> Builder.reduce_sum b ~axes:[ 1 ] (Builder.mul b h target))
      states
  in
  let score_mat =
    Builder.concat b ~axis:1
      (List.map (fun s -> Builder.reshape b s [ c.batch; 1 ]) scores)
  in
  let weights = Builder.softmax b score_mat in (* <batch, len> *)
  let weighted =
    List.mapi
      (fun t h ->
        let w =
          Builder.slice b weights ~starts:[ 0; t ] ~stops:[ c.batch; t + 1 ]
        in
        let w_b =
          Builder.broadcast b
            (Builder.reshape b w [ c.batch ])
            ~dims:[ 0 ] [ c.batch; c.hidden ]
        in
        Builder.mul b w_b h)
      states
  in
  let interest =
    List.fold_left (Builder.add b) (List.hd weighted) (List.tl weighted)
  in
  (* final MLP: concat features, two dense layers, sigmoid CTR *)
  let features = Builder.concat b ~axis:1 [ interest; h_final; target ] in
  let w1 = Builder.parameter b "mlp.w1" [ 3 * c.hidden; c.hidden ] in
  let b1 = Builder.parameter b "mlp.b1" [ c.hidden ] in
  let w2 = Builder.parameter b "mlp.w2" [ c.hidden; 1 ] in
  let b2 = Builder.parameter b "mlp.b2" [ 1 ] in
  let l1 = Builder.relu b (Blocks.dense b features ~weight:w1 ~bias:b1) in
  let logits = Blocks.dense b l1 ~weight:w2 ~bias:b2 in
  let ctr = Builder.sigmoid b logits in
  (* fold the pooling-branch score in so both branches are live *)
  let pool_b =
    Builder.broadcast_scalar b pool_score (Shape.to_list (Builder.shape_of b ctr))
  in
  Builder.mul b ctr pool_b

let inference ?(config = inference_config) ?(normalize_pool = false) () =
  let b = Builder.create () in
  let out = build_forward ~normalize_pool b config in
  Builder.finish b ~outputs:[ out ]

let training ?(config = training_config) () =
  let b = Builder.create () in
  let out = build_forward b config in
  let loss = Builder.reduce_sum b ~axes:[ 0; 1 ] out in
  let params =
    List.init (Builder.num_nodes b) Fun.id
    |> List.filter (fun id -> Op.is_parameter (Builder.op_of b id))
  in
  let grads = Autodiff.gradients b ~output:loss ~wrt:params in
  Builder.finish b ~outputs:(loss :: grads)

let tiny () = inference ~config:tiny_config ()
let tiny_training () = training ~config:tiny_config ()
let overflow () = inference ~config:overflow_config ~normalize_pool:true ()

(* [batch] users in one graph.  The candidate-pool branch is
   batch-independent (same item table and ids whatever the batch), so
   its parameters stay shared across a served batch; everything keyed by
   the batch axis (h0, behavior.*, target_item) is row-independent, and
   outputs slice back bit-identical per user. *)
let batched ?(config = tiny_config) ~batch () =
  if batch < 1 then invalid_arg "Dien.batched: batch must be >= 1";
  inference ~config:{ config with batch } ()
