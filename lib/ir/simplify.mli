(** Graph simplification: constant folding (over uniform-fill values),
    value-preserving algebraic identities, common subexpression
    elimination, dead-code elimination.

    Simplified graphs compute the same outputs as the originals. *)

type stats = { folded : int; identities : int; cse : int; dce : int }

val no_stats : stats
val pp_stats : Format.formatter -> stats -> unit

val uniform_value : Graph.t -> Op.node_id -> float option
(** The single value filling the node's tensor, when statically known
    (a constant or a data-movement chain above one). *)

val dce : Graph.t -> Graph.t
(** Rebuild keeping only nodes reachable from the outputs. *)

val run : Graph.t -> Graph.t * stats
