(** A textual graph format with a round-tripping printer and parser.

    {v
    graph {
      %0 = parameter "x" f32<4,8>
      %1 = tanh %0
      %2 = reduce.sum axes=[1] %1
      %3 = broadcast dims=[0] %2 -> <4,8>
      outputs %3
    }
    v} *)

exception Parse_error of string

val to_string : Graph.t -> string

val parse : string -> Graph.t
(** @raise Parse_error on malformed input (with the offending line). *)
