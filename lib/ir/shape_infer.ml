(* Single source of truth for output shape/dtype of each op, shared by the
   graph builder and the validator. *)

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let check cond fmt =
  if cond then Format.ikfprintf ignore Format.str_formatter fmt
  else Format.kasprintf (fun s -> raise (Error s)) fmt

let infer ~(shape_of : Op.node_id -> Shape.t) ~(dtype_of : Op.node_id -> Dtype.t)
    (op : Op.t) : Shape.t * Dtype.t =
  match op with
  | Parameter _ | Constant _ | Iota _ ->
      error "shape of %s must be given explicitly" (Op.mnemonic op)
  | Unary { input; _ } -> (shape_of input, dtype_of input)
  | Binary { kind; lhs; rhs } ->
      let ls = shape_of lhs and rs = shape_of rhs in
      check (Shape.equal ls rs) "binary %s: operand shapes %s vs %s differ"
        (Op.binary_to_string kind) (Shape.to_string ls) (Shape.to_string rs);
      let dt =
        match kind with Lt | Gt | Eq -> Dtype.Pred | _ -> dtype_of lhs
      in
      (ls, dt)
  | Broadcast { input; dims } ->
      (* The output shape cannot be derived from the input alone; handled
         by the builder, which stores it on the node.  Validation of the
         dims mapping happens in [validate_broadcast]. *)
      ignore (shape_of input);
      ignore dims;
      error "broadcast output shape must be given explicitly"
  | Reduce { input; axes; _ } ->
      let s = shape_of input in
      check (Array.length axes > 0) "reduce: empty axis list";
      Array.iter
        (fun a ->
          check (a >= 0 && a < Shape.rank s) "reduce: axis %d out of rank %d" a
            (Shape.rank s))
        axes;
      let sorted = Array.copy axes in
      Array.sort compare sorted;
      for i = 1 to Array.length sorted - 1 do
        check (sorted.(i) <> sorted.(i - 1)) "reduce: duplicate axis %d"
          sorted.(i)
      done;
      (Shape.remove_axes s axes, dtype_of input)
  | Reshape { input } ->
      ignore (shape_of input);
      error "reshape output shape must be given explicitly"
  | Transpose { input; perm } ->
      let s = shape_of input in
      let n = Shape.rank s in
      check (Array.length perm = n) "transpose: perm rank mismatch";
      let seen = Array.make n false in
      Array.iter
        (fun p ->
          check (p >= 0 && p < n) "transpose: perm entry %d out of range" p;
          check (not seen.(p)) "transpose: duplicate perm entry %d" p;
          seen.(p) <- true)
        perm;
      (Array.map (fun p -> s.(p)) perm, dtype_of input)
  | Select { pred; on_true; on_false } ->
      let ps = shape_of pred and ts = shape_of on_true and fs = shape_of on_false in
      check (Shape.equal ps ts && Shape.equal ts fs)
        "select: shapes %s / %s / %s differ" (Shape.to_string ps)
        (Shape.to_string ts) (Shape.to_string fs);
      check (Dtype.equal (dtype_of pred) Dtype.Pred) "select: pred must be pred";
      (ts, dtype_of on_true)
  | Concat { inputs; axis } -> (
      match inputs with
      | [] -> error "concat: no inputs"
      | first :: rest ->
          let s0 = shape_of first in
          let n = Shape.rank s0 in
          check (axis >= 0 && axis < n) "concat: axis %d out of rank %d" axis n;
          let total = ref (Shape.dim s0 axis) in
          List.iter
            (fun id ->
              let s = shape_of id in
              check (Shape.rank s = n) "concat: rank mismatch";
              Array.iteri
                (fun i d ->
                  if i <> axis then
                    check (d = s0.(i)) "concat: dim %d mismatch (%d vs %d)" i d
                      s0.(i))
                s;
              total := !total + Shape.dim s axis)
            rest;
          let out = Array.copy s0 in
          out.(axis) <- !total;
          (out, dtype_of first))
  | Slice { input; starts; stops } ->
      let s = shape_of input in
      let n = Shape.rank s in
      check (Array.length starts = n && Array.length stops = n)
        "slice: bounds rank mismatch";
      let out =
        Array.init n (fun i ->
            check (0 <= starts.(i) && starts.(i) < stops.(i) && stops.(i) <= s.(i))
              "slice: bad bounds [%d,%d) on dim %d of size %d" starts.(i)
              stops.(i) i s.(i);
            stops.(i) - starts.(i))
      in
      (out, dtype_of input)
  | Pad { input; low; high } ->
      let s = shape_of input in
      let n = Shape.rank s in
      check (Array.length low = n && Array.length high = n)
        "pad: bounds rank mismatch";
      let out =
        Array.init n (fun i ->
            check (low.(i) >= 0 && high.(i) >= 0) "pad: negative padding";
            s.(i) + low.(i) + high.(i))
      in
      (out, dtype_of input)
  | Gather { params; indices } ->
      let ps = shape_of params and is_ = shape_of indices in
      check (Shape.rank ps >= 1) "gather: params must have rank >= 1";
      check (Shape.rank is_ = 1) "gather: indices must have rank 1";
      let out = Array.copy ps in
      out.(0) <- Shape.dim is_ 0;
      (out, dtype_of params)
  | Scatter_add { indices; updates; rows } ->
      let is_ = shape_of indices and us = shape_of updates in
      check (rows >= 1) "scatter-add: rows must be >= 1";
      check (Shape.rank is_ = 1) "scatter-add: indices must have rank 1";
      check (Shape.rank us >= 1) "scatter-add: updates must have rank >= 1";
      check (Shape.dim us 0 = Shape.dim is_ 0)
        "scatter-add: updates rows %d != indices %d" (Shape.dim us 0)
        (Shape.dim is_ 0);
      let out = Array.copy us in
      out.(0) <- rows;
      (out, dtype_of updates)
  | Max_pool { input; window; stride } ->
      let s = shape_of input in
      check (Shape.rank s = 4) "max-pool: input must be NHWC";
      check (window >= 1 && stride >= 1) "max-pool: bad window/stride";
      let n = s.(0) and h = s.(1) and w = s.(2) and c = s.(3) in
      check (h >= window && w >= window) "max-pool: window larger than input";
      let oh = ((h - window) / stride) + 1 and ow = ((w - window) / stride) + 1 in
      ([| n; oh; ow; c |], dtype_of input)
  | Dot { lhs; rhs } ->
      let ls = shape_of lhs and rs = shape_of rhs in
      let ln = Shape.rank ls and rn = Shape.rank rs in
      check (ln >= 2 && rn >= 2) "dot: operands must have rank >= 2";
      check (ln = rn) "dot: batch rank mismatch";
      for i = 0 to ln - 3 do
        check (ls.(i) = rs.(i)) "dot: batch dim %d mismatch" i
      done;
      let m = ls.(ln - 2) and k = ls.(ln - 1) in
      let k' = rs.(rn - 2) and n = rs.(rn - 1) in
      check (k = k') "dot: contraction mismatch %d vs %d" k k';
      let out = Array.copy ls in
      out.(ln - 2) <- m;
      out.(ln - 1) <- n;
      (out, dtype_of lhs)
  | Conv2d { input; filter; stride } ->
      let is = shape_of input and fs = shape_of filter in
      check (Shape.rank is = 4) "conv2d: input must be NHWC";
      check (Shape.rank fs = 4) "conv2d: filter must be [kh,kw,c,oc]";
      check (stride >= 1) "conv2d: stride must be >= 1";
      let n = is.(0) and h = is.(1) and w = is.(2) and c = is.(3) in
      let kh = fs.(0) and kw = fs.(1) and fc = fs.(2) and oc = fs.(3) in
      check (c = fc) "conv2d: channel mismatch %d vs %d" c fc;
      check (h >= kh && w >= kw) "conv2d: kernel larger than input";
      let oh = ((h - kh) / stride) + 1 and ow = ((w - kw) / stride) + 1 in
      ([| n; oh; ow; oc |], dtype_of input)

let validate_broadcast ~input_shape ~dims ~output_shape =
  let r = Shape.rank input_shape in
  check (Array.length dims = r) "broadcast: dims rank mismatch";
  let out_rank = Shape.rank output_shape in
  let prev = ref (-1) in
  Array.iteri
    (fun i d ->
      check (d > !prev) "broadcast: dims must be strictly increasing";
      check (d >= 0 && d < out_rank) "broadcast: dim %d out of output rank" d;
      check (Shape.dim output_shape d = Shape.dim input_shape i)
        "broadcast: input dim %d (=%d) must match output dim %d (=%d)" i
        (Shape.dim input_shape i) d
        (Shape.dim output_shape d);
      prev := d)
    dims
