(* Reverse-mode differentiation, appending the backward graph into the
   builder that holds the forward graph.

   Training workloads (Figure 11b) are forward+backward graphs: the
   backward halves are where the broadcast<->reduce duality produces the
   dense memory-intensive subgraphs the paper stitches. *)

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

let zeros_like b x =
  Builder.broadcast_scalar b (Builder.constant b 0.)
    (Shape.to_list (Builder.shape_of b x))

let ones_like b x =
  Builder.broadcast_scalar b (Builder.constant b 1.)
    (Shape.to_list (Builder.shape_of b x))

let scalar_like b x c =
  Builder.broadcast_scalar b (Builder.constant b c)
    (Shape.to_list (Builder.shape_of b x))

(* Axes of the input kept by a reduce, in increasing order; they are the
   broadcast dims mapping the reduce output back into the input shape. *)
let kept_axes ~input_rank ~axes =
  List.filter
    (fun i -> not (Array.exists (fun a -> a = i) axes))
    (List.init input_rank Fun.id)

let broadcast_back b grad ~input_shape ~axes =
  Builder.broadcast b grad
    ~dims:(kept_axes ~input_rank:(Shape.rank input_shape) ~axes)
    (Shape.to_list input_shape)

let inverse_perm perm =
  let n = Array.length perm in
  let inv = Array.make n 0 in
  Array.iteri (fun i p -> inv.(p) <- i) perm;
  inv

(* Transpose the last two axes (for matmul gradients). *)
let transpose_last2 b x =
  let r = Shape.rank (Builder.shape_of b x) in
  let perm = List.init r (fun i -> if i = r - 2 then r - 1 else if i = r - 1 then r - 2 else i) in
  Builder.transpose b x ~perm

(* Per-node backward rule: given node [y] with adjoint [g], return the
   adjoint contribution for each operand (same order as Op.operands). *)
let backward b y g : (Op.node_id * Builder.v) list =
  let op = Builder.op_of b y in
  match op with
  | Op.Parameter _ | Op.Constant _ | Op.Iota _ -> []
  | Op.Unary { kind; input = x } ->
      let gx =
        match kind with
        | Op.Neg -> Builder.neg b g
        | Op.Abs -> Builder.mul b g (Builder.sign b x)
        | Op.Sign -> zeros_like b x
        | Op.Relu ->
            Builder.select b
              ~pred:(Builder.gt b x (zeros_like b x))
              ~on_true:g ~on_false:(zeros_like b x)
        | Op.Rcp -> Builder.neg b (Builder.mul b g (Builder.mul b y y))
        | Op.Exp -> Builder.mul b g y
        | Op.Log -> Builder.div b g x
        | Op.Tanh ->
            Builder.mul b g (Builder.sub b (ones_like b y) (Builder.mul b y y))
        | Op.Sigmoid ->
            Builder.mul b g
              (Builder.mul b y (Builder.sub b (ones_like b y) y))
        | Op.Sqrt -> Builder.div b g (Builder.mul b (scalar_like b y 2.) y)
        | Op.Rsqrt ->
            Builder.mul b g
              (Builder.mul b (scalar_like b y (-0.5))
                 (Builder.mul b y (Builder.mul b y y)))
        | Op.Erf ->
            (* d erf / dx = 2/sqrt(pi) * exp(-x^2) *)
            Builder.mul b g
              (Builder.mul b
                 (scalar_like b x 1.1283791670955126)
                 (Builder.exp b (Builder.neg b (Builder.mul b x x))))
      in
      [ (x, gx) ]
  | Op.Binary { kind; lhs; rhs } -> (
      match kind with
      | Op.Add -> [ (lhs, g); (rhs, g) ]
      | Op.Sub -> [ (lhs, g); (rhs, Builder.neg b g) ]
      | Op.Mul -> [ (lhs, Builder.mul b g rhs); (rhs, Builder.mul b g lhs) ]
      | Op.Div ->
          let glhs = Builder.div b g rhs in
          let grhs = Builder.neg b (Builder.mul b glhs (Builder.div b lhs rhs)) in
          [ (lhs, glhs); (rhs, grhs) ]
      | Op.Max ->
          let mask = Builder.gt b lhs rhs in
          let zero = zeros_like b g in
          [
            (lhs, Builder.select b ~pred:mask ~on_true:g ~on_false:zero);
            (rhs, Builder.select b ~pred:mask ~on_true:zero ~on_false:g);
          ]
      | Op.Min ->
          let mask = Builder.lt b lhs rhs in
          let zero = zeros_like b g in
          [
            (lhs, Builder.select b ~pred:mask ~on_true:g ~on_false:zero);
            (rhs, Builder.select b ~pred:mask ~on_true:zero ~on_false:g);
          ]
      | Op.Pow ->
          let one = ones_like b rhs in
          let glhs =
            Builder.mul b g
              (Builder.mul b rhs (Builder.pow b lhs (Builder.sub b rhs one)))
          in
          let grhs = Builder.mul b g (Builder.mul b y (Builder.log b lhs)) in
          [ (lhs, glhs); (rhs, grhs) ]
      | Op.Lt | Op.Gt | Op.Eq -> [])
  | Op.Broadcast { input; dims } ->
      let out_rank = Shape.rank (Builder.shape_of b y) in
      let replicated =
        List.filter
          (fun i -> not (Array.exists (fun d -> d = i) dims))
          (List.init out_rank Fun.id)
      in
      let gx =
        if replicated = [] then
          (* pure axis embedding, no replication: reshape back *)
          Builder.reshape b g (Shape.to_list (Builder.shape_of b input))
        else Builder.reduce_sum b ~axes:replicated g
      in
      [ (input, gx) ]
  | Op.Reduce { input; kind; axes } -> (
      let input_shape = Builder.shape_of b input in
      match kind with
      | Op.Sum -> [ (input, broadcast_back b g ~input_shape ~axes) ]
      | Op.Mean ->
          let n = float_of_int (Shape.elements_along input_shape axes) in
          let gb = broadcast_back b g ~input_shape ~axes in
          [ (input, Builder.div b gb (scalar_like b gb n)) ]
      | Op.Max_r | Op.Min_r ->
          let yb = broadcast_back b y ~input_shape ~axes in
          let gb = broadcast_back b g ~input_shape ~axes in
          let mask = Builder.eq b input yb in
          [
            ( input,
              Builder.select b ~pred:mask ~on_true:gb
                ~on_false:(zeros_like b gb) );
          ])
  | Op.Reshape { input } ->
      [ (input, Builder.reshape b g (Shape.to_list (Builder.shape_of b input))) ]
  | Op.Transpose { input; perm } ->
      [ (input, Builder.transpose b g ~perm:(Array.to_list (inverse_perm perm))) ]
  | Op.Select { pred; on_true; on_false } ->
      let zero = zeros_like b g in
      [
        (on_true, Builder.select b ~pred ~on_true:g ~on_false:zero);
        (on_false, Builder.select b ~pred ~on_true:zero ~on_false:g);
      ]
  | Op.Concat { inputs; axis } ->
      let offset = ref 0 in
      List.map
        (fun input ->
          let s = Builder.shape_of b input in
          let g_shape = Builder.shape_of b g in
          let starts =
            List.init (Shape.rank s) (fun i -> if i = axis then !offset else 0)
          in
          let stops =
            List.init (Shape.rank s) (fun i ->
                if i = axis then !offset + Shape.dim s axis
                else Shape.dim g_shape i)
          in
          offset := !offset + Shape.dim s axis;
          (input, Builder.slice b g ~starts ~stops))
        inputs
  | Op.Slice { input; starts; stops } ->
      let s = Builder.shape_of b input in
      let low = Array.to_list starts in
      let high =
        List.init (Shape.rank s) (fun i -> Shape.dim s i - stops.(i))
      in
      [ (input, Builder.pad b g ~low ~high) ]
  | Op.Pad { input; low; high = _ } ->
      let s = Builder.shape_of b input in
      let starts = Array.to_list low in
      let stops = List.init (Shape.rank s) (fun i -> low.(i) + Shape.dim s i) in
      [ (input, Builder.slice b g ~starts ~stops) ]
  | Op.Dot { lhs; rhs } ->
      [
        (lhs, Builder.dot b g (transpose_last2 b rhs));
        (rhs, Builder.dot b (transpose_last2 b lhs) g);
      ]
  | Op.Gather { params; indices } ->
      let rows = Shape.dim (Builder.shape_of b params) 0 in
      [ (params, Builder.scatter_add b ~rows indices g) ]
  | Op.Scatter_add _ -> unsupported "scatter-add gradient"
  | Op.Max_pool _ -> unsupported "max-pool gradient"
  | Op.Conv2d _ -> unsupported "conv2d gradient"

let gradients b ~output ~wrt =
  let adjoints : (Op.node_id, Builder.v) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace adjoints output (ones_like b output);
  (* Only node ids <= output existed in the forward graph; new nodes
     appended by backward rules have larger ids and are never revisited. *)
  for id = output downto 0 do
    match Hashtbl.find_opt adjoints id with
    | None -> ()
    | Some g ->
        List.iter
          (fun (operand, contribution) ->
            match Hashtbl.find_opt adjoints operand with
            | None -> Hashtbl.replace adjoints operand contribution
            | Some acc ->
                Hashtbl.replace adjoints operand (Builder.add b acc contribution))
          (backward b id g)
  done;
  List.map
    (fun p ->
      match Hashtbl.find_opt adjoints p with
      | Some g -> g
      | None -> zeros_like b p)
    wrt
