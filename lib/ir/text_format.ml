(* A textual graph format with a round-tripping printer/parser.

   Example:

     graph {
       %0 = parameter "x" f32<4,8>
       %1 = tanh %0
       %2 = reduce.sum axes=[1] %1
       %3 = broadcast dims=[0] %2 -> <4,8>
       %4 = add %3 %0
       outputs %4
     }

   Node ids must be dense and ascending (the printer always emits them
   that way); '#' starts a comment. *)

exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* --- Printing ------------------------------------------------------------- *)

let dims_to_string dims =
  "<" ^ String.concat "," (List.map string_of_int (Array.to_list dims)) ^ ">"

let int_list_to_string l =
  "[" ^ String.concat "," (List.map string_of_int (Array.to_list l)) ^ "]"

let node_to_string (nd : Graph.node) =
  let r id = Printf.sprintf "%%%d" id in
  let rhs =
    match nd.op with
    | Op.Parameter { name } ->
        Printf.sprintf "parameter \"%s\" %s%s" name
          (Dtype.to_string nd.dtype)
          (dims_to_string nd.shape)
    | Op.Constant { value } ->
        Printf.sprintf "constant %h %s%s" value
          (Dtype.to_string nd.dtype)
          (dims_to_string nd.shape)
    | Op.Iota { axis } ->
        Printf.sprintf "iota axis=%d %s%s" axis
          (Dtype.to_string nd.dtype)
          (dims_to_string nd.shape)
    | Op.Unary { kind; input } ->
        Printf.sprintf "%s %s" (Op.unary_to_string kind) (r input)
    | Op.Binary { kind; lhs; rhs } ->
        Printf.sprintf "%s %s %s" (Op.binary_to_string kind) (r lhs) (r rhs)
    | Op.Broadcast { input; dims } ->
        Printf.sprintf "broadcast dims=%s %s -> %s" (int_list_to_string dims)
          (r input) (dims_to_string nd.shape)
    | Op.Reduce { input; kind; axes } ->
        Printf.sprintf "reduce.%s axes=%s %s" (Op.reduce_to_string kind)
          (int_list_to_string axes) (r input)
    | Op.Reshape { input } ->
        Printf.sprintf "reshape %s -> %s" (r input) (dims_to_string nd.shape)
    | Op.Transpose { input; perm } ->
        Printf.sprintf "transpose perm=%s %s" (int_list_to_string perm) (r input)
    | Op.Select { pred; on_true; on_false } ->
        Printf.sprintf "select %s %s %s" (r pred) (r on_true) (r on_false)
    | Op.Concat { inputs; axis } ->
        Printf.sprintf "concat axis=%d %s" axis
          (String.concat " " (List.map r inputs))
    | Op.Slice { input; starts; stops } ->
        Printf.sprintf "slice starts=%s stops=%s %s" (int_list_to_string starts)
          (int_list_to_string stops) (r input)
    | Op.Pad { input; low; high } ->
        Printf.sprintf "pad low=%s high=%s %s" (int_list_to_string low)
          (int_list_to_string high) (r input)
    | Op.Gather { params; indices } ->
        Printf.sprintf "gather %s %s" (r params) (r indices)
    | Op.Scatter_add { indices; updates; rows } ->
        Printf.sprintf "scatter_add rows=%d %s %s" rows (r indices) (r updates)
    | Op.Max_pool { input; window; stride } ->
        Printf.sprintf "max_pool window=%d stride=%d %s" window stride (r input)
    | Op.Dot { lhs; rhs } -> Printf.sprintf "dot %s %s" (r lhs) (r rhs)
    | Op.Conv2d { input; filter; stride } ->
        Printf.sprintf "conv2d stride=%d %s %s" stride (r input) (r filter)
  in
  Printf.sprintf "  %%%d = %s" nd.id rhs

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph {\n";
  Graph.iter_nodes
    (fun nd -> Buffer.add_string buf (node_to_string nd ^ "\n"))
    g;
  Buffer.add_string buf
    ("  outputs "
    ^ String.concat " " (List.map (Printf.sprintf "%%%d") (Graph.outputs g))
    ^ "\n}\n");
  Buffer.contents buf

(* --- Parsing ---------------------------------------------------------------- *)

(* Tokens are whitespace-separated; the printer always spaces them out. *)
let tokenize line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_shape_suffix s =
  (* "f32<2,3>" -> (dtype, dims) ; "<2,3>" -> dims with default dtype *)
  match String.index_opt s '<' with
  | None -> parse_error "expected a shape in %s" s
  | Some i ->
      let dtype_str = String.sub s 0 i in
      let dtype =
        match dtype_str with
        | "" | "f32" -> Dtype.F32
        | "f16" -> Dtype.F16
        | "i32" -> Dtype.I32
        | "pred" -> Dtype.Pred
        | other -> parse_error "unknown dtype %s" other
      in
      let inner = String.sub s (i + 1) (String.length s - i - 2) in
      if String.length s = 0 || s.[String.length s - 1] <> '>' then
        parse_error "unterminated shape in %s" s;
      let dims =
        if inner = "" then []
        else List.map int_of_string (String.split_on_char ',' inner)
      in
      (dtype, dims)

let parse_int_list ~key s =
  (* "axes=[1,2]" *)
  let prefix = key ^ "=[" in
  let pl = String.length prefix in
  if String.length s < pl + 1 || String.sub s 0 pl <> prefix then
    parse_error "expected %s=[...] but found %s" key s;
  let inner = String.sub s pl (String.length s - pl - 1) in
  if s.[String.length s - 1] <> ']' then parse_error "unterminated %s" s;
  if inner = "" then [] else List.map int_of_string (String.split_on_char ',' inner)

let parse_int_field ~key s =
  let prefix = key ^ "=" in
  let pl = String.length prefix in
  if String.length s < pl || String.sub s 0 pl <> prefix then
    parse_error "expected %s=N but found %s" key s;
  int_of_string (String.sub s pl (String.length s - pl))

let parse_ref s =
  if String.length s < 2 || s.[0] <> '%' then
    parse_error "expected %%id but found %s" s;
  int_of_string (String.sub s 1 (String.length s - 1))

let parse_name s =
  let n = String.length s in
  if n < 2 || s.[0] <> '"' || s.[n - 1] <> '"' then
    parse_error "expected a quoted name but found %s" s;
  String.sub s 1 (n - 2)

let unary_of_string s =
  List.assoc_opt s
    [
      ("neg", Op.Neg); ("abs", Op.Abs); ("sign", Op.Sign); ("relu", Op.Relu);
      ("rcp", Op.Rcp); ("exp", Op.Exp); ("log", Op.Log); ("tanh", Op.Tanh);
      ("sigmoid", Op.Sigmoid); ("sqrt", Op.Sqrt); ("rsqrt", Op.Rsqrt);
      ("erf", Op.Erf);
    ]

let binary_of_string s =
  List.assoc_opt s
    [
      ("add", Op.Add); ("sub", Op.Sub); ("multiply", Op.Mul);
      ("divide", Op.Div); ("maximum", Op.Max); ("minimum", Op.Min);
      ("power", Op.Pow); ("less", Op.Lt); ("greater", Op.Gt);
      ("equal", Op.Eq);
    ]

let reduce_of_string s =
  List.assoc_opt s
    [ ("sum", Op.Sum); ("max", Op.Max_r); ("min", Op.Min_r); ("mean", Op.Mean) ]

let parse text =
  let b = Builder.create () in
  let outputs = ref None in
  let expect_id = ref 0 in
  let parse_node_line tokens =
    match tokens with
    | id_tok :: "=" :: mnemonic :: args ->
        let id = parse_ref id_tok in
        if id <> !expect_id then
          parse_error "node ids must be dense: expected %%%d, found %%%d"
            !expect_id id;
        incr expect_id;
        let v =
          match (mnemonic, args) with
          | "parameter", [ name; shape ] ->
              let dtype, dims = parse_shape_suffix shape in
              Builder.parameter b ~dtype (parse_name name) dims
          | "constant", [ value; shape ] ->
              let dtype, dims = parse_shape_suffix shape in
              Builder.constant b ~dtype ~dims (float_of_string value)
          | "iota", [ axis; shape ] ->
              let dtype, dims = parse_shape_suffix shape in
              Builder.iota b ~dtype ~axis:(parse_int_field ~key:"axis" axis) dims
          | "broadcast", [ dims_tok; input; "->"; shape ] ->
              let _, out_dims = parse_shape_suffix shape in
              Builder.broadcast b (parse_ref input)
                ~dims:(parse_int_list ~key:"dims" dims_tok)
                out_dims
          | "reshape", [ input; "->"; shape ] ->
              let _, out_dims = parse_shape_suffix shape in
              Builder.reshape b (parse_ref input) out_dims
          | "transpose", [ perm; input ] ->
              Builder.transpose b (parse_ref input)
                ~perm:(parse_int_list ~key:"perm" perm)
          | "select", [ p; t; f ] ->
              Builder.select b ~pred:(parse_ref p) ~on_true:(parse_ref t)
                ~on_false:(parse_ref f)
          | "concat", axis :: inputs when inputs <> [] ->
              Builder.concat b
                ~axis:(parse_int_field ~key:"axis" axis)
                (List.map parse_ref inputs)
          | "slice", [ starts; stops; input ] ->
              Builder.slice b (parse_ref input)
                ~starts:(parse_int_list ~key:"starts" starts)
                ~stops:(parse_int_list ~key:"stops" stops)
          | "pad", [ low; high; input ] ->
              Builder.pad b (parse_ref input)
                ~low:(parse_int_list ~key:"low" low)
                ~high:(parse_int_list ~key:"high" high)
          | "gather", [ params; indices ] ->
              Builder.gather b (parse_ref params) (parse_ref indices)
          | "scatter_add", [ rows; indices; updates ] ->
              Builder.scatter_add b
                ~rows:(parse_int_field ~key:"rows" rows)
                (parse_ref indices) (parse_ref updates)
          | "max_pool", [ window; stride; input ] ->
              Builder.max_pool b
                ~window:(parse_int_field ~key:"window" window)
                ~stride:(parse_int_field ~key:"stride" stride)
                (parse_ref input)
          | "dot", [ lhs; rhs ] -> Builder.dot b (parse_ref lhs) (parse_ref rhs)
          | "conv2d", [ stride; input; filter ] ->
              Builder.conv2d b
                ~stride:(parse_int_field ~key:"stride" stride)
                (parse_ref input) (parse_ref filter)
          | _, args -> (
              (* reduce.KIND, unary, binary *)
              match String.split_on_char '.' mnemonic with
              | [ "reduce"; kind_str ] -> (
                  match (reduce_of_string kind_str, args) with
                  | Some kind, [ axes; input ] ->
                      Builder.reduce b kind
                        ~axes:(parse_int_list ~key:"axes" axes)
                        (parse_ref input)
                  | _ -> parse_error "bad reduce: %s" (String.concat " " args))
              | _ -> (
                  match (unary_of_string mnemonic, binary_of_string mnemonic, args) with
                  | Some kind, _, [ input ] -> Builder.unary b kind (parse_ref input)
                  | _, Some kind, [ lhs; rhs ] ->
                      Builder.binary b kind (parse_ref lhs) (parse_ref rhs)
                  | _ -> parse_error "unknown op %s" mnemonic))
        in
        if v <> id then
          parse_error "internal id drift at %%%d" id
    | _ -> parse_error "malformed node line: %s" (String.concat " " tokens)
  in
  String.split_on_char '\n' text
  |> List.iteri (fun lineno line ->
         let line = strip_comment line in
         match tokenize line with
         | [] -> ()
         | [ "graph"; "{" ] | [ "}" ] -> ()
         | "outputs" :: outs -> (
             if !outputs <> None then
               parse_error "line %d: duplicate outputs" (lineno + 1);
             try outputs := Some (List.map parse_ref outs)
             with Parse_error m | Failure m ->
               parse_error "line %d: %s" (lineno + 1) m)
         | tokens -> (
             try parse_node_line tokens with
             | Parse_error m -> parse_error "line %d: %s" (lineno + 1) m
             | Graph.Ill_formed m | Shape.Invalid m | Shape_infer.Error m ->
                 parse_error "line %d: %s" (lineno + 1) m
             | Failure m ->
                 parse_error "line %d: %s" (lineno + 1) m));
  match !outputs with
  | None -> parse_error "missing outputs line"
  | Some outs -> Builder.finish b ~outputs:outs
