(* Symbolic batch-axis classification.

   A builder family [build : batch:int -> Graph.t] is shape-polymorphic
   when every node either keeps the same shape at every batch size
   (Invariant) or scales exactly one axis linearly with the batch
   (Scaled).  Builders are deterministic, so node ids — dense in
   construction order — line up across batch sizes and the family can be
   classified by diffing the batch-1 and batch-2 graphs node by node.

   The classification is sound for *prefix execution*: a plan compiled
   at [max_batch] can evaluate any batch b <= max by bounding each
   scaled loop at b x unit elements, reading and writing only the
   leading prefix of every max-sized buffer.  That works only when the
   batch axis is effectively outermost (no non-trivial dimensions
   before it), because then every per-element index computation —
   stride tables, reduce odometers, concat offsets — is identical for
   prefix indices regardless of the compiled extent.  [analyze] rejects
   families where any rule below fails; the serving layer falls back to
   fixed-extent compilation for those. *)

type cls = Invariant | Scaled of { axis : int; unit : int }
type plan = { max_batch : int; cls : cls array }

let cls_to_string = function
  | Invariant -> "invariant"
  | Scaled { axis; unit } -> Printf.sprintf "scaled{axis=%d, unit=%d}" axis unit

(* The shape a node takes at batch [b], given its batch-1 unit shape. *)
let shape_at cls (s : Shape.t) ~batch =
  match cls with
  | Invariant -> s
  | Scaled { axis; unit } ->
      let s' = Array.copy s in
      s'.(axis) <- unit * batch;
      s'

(* Ops at the same node id must agree structurally across batch sizes:
   same constructor, same operand ids, same static payload.  The one
   payload allowed to differ is a Slice's [stops] at the node's batch
   axis — slicing a scaled tensor full-length along the batch axis
   scales with it. *)
let ops_compatible ~axis (o1 : Op.t) (o2 : Op.t) =
  match (o1, o2) with
  | ( Op.Slice { input = i1; starts = st1; stops = sp1 },
      Op.Slice { input = i2; starts = st2; stops = sp2 } ) ->
      i1 = i2 && st1 = st2
      && Array.length sp1 = Array.length sp2
      && (match axis with
         | Some ax ->
             (* starts must be batch-independent everywhere; stops may
                differ only at the batch axis *)
             Array.for_all2 ( = ) st1 st2
             && Array.length sp1 > ax
             && Array.for_all2 ( = )
                  (Array.mapi (fun i v -> if i = ax then 0 else v) sp1)
                  (Array.mapi (fun i v -> if i = ax then 0 else v) sp2)
         | None -> sp1 = sp2)
  | _ -> o1 = o2

(* Classify one node from its shapes at batch 1 and 2.  Exactly one axis
   doubling -> Scaled; identical -> Invariant; anything else is not a
   linear one-axis family. *)
let classify_shapes (s1 : Shape.t) (s2 : Shape.t) =
  if Array.length s1 <> Array.length s2 then Error "rank changes with batch"
  else if Shape.equal s1 s2 then Ok Invariant
  else begin
    let diff = ref [] in
    Array.iteri
      (fun i d1 -> if d1 <> s2.(i) then diff := (i, d1, s2.(i)) :: !diff)
      s1;
    match !diff with
    | [ (axis, d1, d2) ] when d2 = 2 * d1 ->
        Ok (Scaled { axis; unit = d1 })
    | _ -> Error "shape does not scale exactly one axis linearly"
  end

let scaled_axis = function Scaled { axis; _ } -> Some axis | Invariant -> None

let analyze ~(g1 : Graph.t) ~(g2 : Graph.t) : (cls array, string) result =
  let n = Graph.num_nodes g1 in
  if Graph.num_nodes g2 <> n then Error "node count changes with batch"
  else begin
    let cls = Array.make n Invariant in
    let err = ref None in
    let fail id fmt =
      Printf.ksprintf
        (fun m ->
          if !err = None then err := Some (Printf.sprintf "node %%%d: %s" id m))
        fmt
    in
    (let exception Stop in
     try
       for id = 0 to n - 1 do
         let s1 = Graph.shape g1 id and s2 = Graph.shape g2 id in
         (match classify_shapes s1 s2 with
         | Error m ->
             fail id "%s" m;
             raise Stop
         | Ok c -> cls.(id) <- c);
         let o1 = Graph.op g1 id and o2 = Graph.op g2 id in
         if not (ops_compatible ~axis:(scaled_axis cls.(id)) o1 o2) then begin
           fail id "op payload changes with batch";
           raise Stop
         end;
         (* Prefix soundness: the batch axis must be effectively
            outermost — only extent-1 dimensions may precede it — so
            prefix linear indices decode to the same coordinates at
            every compiled extent. *)
         (match cls.(id) with
         | Invariant -> ()
         | Scaled { axis; _ } ->
             let lead = ref 1 in
             for i = 0 to axis - 1 do
               lead := !lead * s1.(i)
             done;
             if !lead <> 1 then begin
               fail id "batch axis %d is not outermost" axis;
               raise Stop
             end);
         (* Batch-collapsing ops break prefix execution: an Invariant
            node reading a Scaled operand folds the whole batch extent
            into a fixed-size result (reduce over batch, full-tensor
            reshape, ...). *)
         let operand_cls i = cls.(i) in
         let scaled_operand =
           List.exists
             (fun i -> operand_cls i <> Invariant)
             (Graph.operands g1 id)
         in
         (match cls.(id) with
         | Invariant when scaled_operand ->
             fail id "batch-collapsing op (invariant node, scaled operand)";
             raise Stop
         | _ -> ());
         (* Per-op rules where prefix execution is unsound even with a
            scaled result. *)
         (match (o1, cls.(id)) with
         | Op.Concat { axis = cat_axis; _ }, Scaled { axis; _ }
           when cat_axis = axis ->
             (* concatenating along the batch axis interleaves inputs at
                positions that depend on the compiled extent *)
             fail id "concat along the batch axis";
             raise Stop
         | Op.Gather { params; _ }, _ when operand_cls params <> Invariant ->
             fail id "gather from a scaled table";
             raise Stop
         | Op.Scatter_add _, Scaled _ ->
             fail id "scaled scatter-add";
             raise Stop
         | Op.Scatter_add { indices; updates; _ }, Invariant
           when operand_cls indices <> Invariant
                || operand_cls updates <> Invariant ->
             fail id "scatter-add over scaled operands";
             raise Stop
         | _ -> ())
       done
     with Stop -> ());
    match !err with Some m -> Error m | None -> Ok cls
  end

(* Validate the classification against a third build (normally the max
   batch): linearity inferred from {1,2} must actually hold there.
   Catches families that are only locally linear (overlapping pooling
   windows, padding on the batch axis, ...). *)
let validate_at (cls : cls array) ~(base : Graph.t) ~(at : Graph.t) ~batch :
    (unit, string) result =
  let n = Graph.num_nodes base in
  if Graph.num_nodes at <> n then Error "node count changes with batch"
  else begin
    let err = ref None in
    (let exception Stop in
     try
       for id = 0 to n - 1 do
         let want = shape_at cls.(id) (Graph.shape base id) ~batch in
         if not (Shape.equal want (Graph.shape at id)) then begin
           err :=
             Some
               (Printf.sprintf
                  "node %%%d: shape %s at batch %d, classification predicts %s"
                  id
                  (Shape.to_string (Graph.shape at id))
                  batch (Shape.to_string want));
           raise Stop
         end;
         if
           not
             (ops_compatible
                ~axis:(scaled_axis cls.(id))
                (Graph.op base id) (Graph.op at id))
         then begin
           err := Some (Printf.sprintf "node %%%d: op payload changes" id);
           raise Stop
         end
       done
     with Stop -> ());
    match !err with Some m -> Error m | None -> Ok ()
  end
