(* Immutable computation graphs.

   Node ids are dense and assigned in construction order, so every operand
   id is smaller than its user's id: graphs are acyclic by construction and
   the id order is a valid topological order. *)

type node = { id : Op.node_id; op : Op.t; shape : Shape.t; dtype : Dtype.t }

type t = {
  nodes : node array;
  outputs : Op.node_id list;
  consumers : Op.node_id list array; (* users of each node, ascending *)
  output_set : bool array; (* is_output without the per-call list scan *)
  mutable fingerprint_memo : string option;
      (* canonical fingerprint, filled on first request; sound because
         the graph is otherwise immutable *)
}

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let num_nodes g = Array.length g.nodes

let node g id =
  if id < 0 || id >= num_nodes g then ill_formed "node id %d out of range" id;
  g.nodes.(id)

let op g id = (node g id).op
let shape g id = (node g id).shape
let dtype g id = (node g id).dtype
let outputs g = g.outputs
let consumers g id = g.consumers.(id)
let operands g id = Op.operands (op g id)

let topo_order g = List.init (num_nodes g) Fun.id

let iter_nodes f g = Array.iter f g.nodes
let fold_nodes f acc g = Array.fold_left f acc g.nodes

let is_output g id = id >= 0 && id < num_nodes g && g.output_set.(id)

(* Fingerprint memo slot, owned by [Fingerprint] (which computes the
   canonical digest); serving looks graphs up by fingerprint per request,
   so recomputing the canonicalization each time would dominate a cache
   hit. *)
let fingerprint_memo g = g.fingerprint_memo
let set_fingerprint_memo g fp = g.fingerprint_memo <- Some fp

(* A node's value escapes the graph if a consumer exists outside it or it
   is a declared output; parameters never escape (they are inputs). *)
let num_elements g id = Shape.num_elements (shape g id)

let bytes g id = num_elements g id * Dtype.size_bytes (dtype g id)

let parameters g =
  fold_nodes
    (fun acc n -> match n.op with Op.Parameter _ -> n.id :: acc | _ -> acc)
    [] g
  |> List.rev

let find_parameter g name =
  let rec scan i =
    if i >= num_nodes g then None
    else
      match g.nodes.(i).op with
      | Op.Parameter { name = n } when String.equal n name -> Some i
      | _ -> scan (i + 1)
  in
  scan 0

let memory_intensive_ids g =
  fold_nodes
    (fun acc n ->
      match Op.classify n.op with
      | Op.Memory_intensive -> n.id :: acc
      | Op.Compute_intensive -> acc)
    [] g
  |> List.rev

let compute_intensive_ids g =
  fold_nodes
    (fun acc n ->
      match Op.classify n.op with
      | Op.Compute_intensive -> n.id :: acc
      | Op.Memory_intensive -> acc)
    [] g
  |> List.rev

(* --- Construction ----------------------------------------------------- *)

let of_nodes nodes ~outputs =
  let n = Array.length nodes in
  Array.iteri
    (fun i (nd : node) ->
      if nd.id <> i then ill_formed "node at position %d has id %d" i nd.id;
      List.iter
        (fun o ->
          if o < 0 || o >= i then
            ill_formed "node %d references operand %d (not yet defined)" i o)
        (Op.operands nd.op))
    nodes;
  List.iter
    (fun o ->
      if o < 0 || o >= n then ill_formed "output id %d out of range" o)
    outputs;
  if outputs = [] then ill_formed "graph must declare at least one output";
  let consumers = Array.make n [] in
  Array.iter
    (fun (nd : node) ->
      List.iter (fun o -> consumers.(o) <- nd.id :: consumers.(o))
        (Op.operands nd.op))
    nodes;
  Array.iteri (fun i l -> consumers.(i) <- List.sort_uniq compare l) consumers;
  let output_set = Array.make n false in
  List.iter (fun o -> output_set.(o) <- true) outputs;
  { nodes; outputs; consumers; output_set; fingerprint_memo = None }

(* Re-check all shapes/dtypes against the inference rules. *)
let validate g =
  iter_nodes
    (fun nd ->
      let shape_of id = shape g id and dtype_of id = dtype g id in
      match nd.op with
      | Op.Parameter _ | Op.Constant _ | Op.Iota _ -> ()
      | Op.Broadcast { input; dims } ->
          Shape_infer.validate_broadcast ~input_shape:(shape g input) ~dims
            ~output_shape:nd.shape
      | Op.Reshape { input } ->
          if Shape.num_elements (shape g input) <> Shape.num_elements nd.shape
          then
            ill_formed "node %d: reshape changes element count (%s -> %s)"
              nd.id
              (Shape.to_string (shape g input))
              (Shape.to_string nd.shape)
      | op ->
          let s, dt = Shape_infer.infer ~shape_of ~dtype_of op in
          if not (Shape.equal s nd.shape) then
            ill_formed "node %d (%s): stored shape %s but inferred %s" nd.id
              (Op.mnemonic op) (Shape.to_string nd.shape) (Shape.to_string s);
          if not (Dtype.equal dt nd.dtype) then
            ill_formed "node %d (%s): stored dtype %s but inferred %s" nd.id
              (Op.mnemonic op) (Dtype.to_string nd.dtype) (Dtype.to_string dt))
    g

let pp_node g fmt id =
  let nd = node g id in
  Format.fprintf fmt "%%%d = %s%s %s" nd.id (Op.mnemonic nd.op)
    (Shape.to_string nd.shape)
    (String.concat " "
       (List.map (fun o -> Printf.sprintf "%%%d" o) (Op.operands nd.op)))

let pp fmt g =
  Format.fprintf fmt "graph {@.";
  iter_nodes (fun nd -> Format.fprintf fmt "  %a@." (pp_node g) nd.id) g;
  Format.fprintf fmt "  outputs: %s@.}"
    (String.concat ", " (List.map (Printf.sprintf "%%%d") g.outputs))

(* Liveness: nodes reachable backwards from the outputs.  Compilers never
   emit code for dead nodes (XLA and TF both eliminate them), so every
   backend filters on this. *)
let live_ids g =
  let live = Array.make (num_nodes g) false in
  List.iter (fun o -> live.(o) <- true) g.outputs;
  for id = num_nodes g - 1 downto 0 do
    if live.(id) then
      List.iter (fun operand -> live.(operand) <- true) (operands g id)
  done;
  live

(* --- Statistics used by Figure 1 style reporting ---------------------- *)

type stats = {
  total_ops : int;
  memory_intensive_ops : int;
  compute_intensive_ops : int;
  reduce_ops : int;
  broadcast_ops : int;
  heavy_elementwise_ops : int;
}

let stats g =
  fold_nodes
    (fun acc nd ->
      let mem, comp =
        match Op.classify nd.op with
        | Op.Memory_intensive -> (1, 0)
        | Op.Compute_intensive -> (0, 1)
      in
      {
        total_ops = acc.total_ops + 1;
        memory_intensive_ops = acc.memory_intensive_ops + mem;
        compute_intensive_ops = acc.compute_intensive_ops + comp;
        reduce_ops = (acc.reduce_ops + if Op.is_reduce nd.op then 1 else 0);
        broadcast_ops =
          (acc.broadcast_ops + if Op.is_broadcast nd.op then 1 else 0);
        heavy_elementwise_ops =
          (acc.heavy_elementwise_ops
          + match (nd.op, Op.weight nd.op) with
            | (Op.Unary _ | Op.Binary _), Op.Heavy -> 1
            | _ -> 0);
      })
    {
      total_ops = 0;
      memory_intensive_ops = 0;
      compute_intensive_ops = 0;
      reduce_ops = 0;
      broadcast_ops = 0;
      heavy_elementwise_ops = 0;
    }
    g
