(** Reverse-mode differentiation.

    Appends the backward graph into the builder holding the forward graph
    and returns the gradient node for each requested input.  The adjoint of
    [output] is seeded with ones (i.e. the loss is the sum of the output
    elements). *)

exception Unsupported of string

val gradients :
  Builder.t -> output:Builder.v -> wrt:Builder.v list -> Builder.v list
(** @raise Unsupported for ops with no backward rule (convolution). *)
