(** Element-level dependency analysis along graph edges (paper Sec 2.3.1). *)

type edge_dep =
  | One_to_one  (** each consumer element reads at most one producer element *)
  | One_to_many  (** one producer element fans out to many consumer elements *)
  | Many_to_one  (** each consumer element reads many producer elements *)

val edge_dep :
  Graph.t -> producer:Op.node_id -> consumer:Op.node_id -> edge_dep
(** Dependency carried by the edge, from how the consumer indexes that
    operand. *)

val fanout : Graph.t -> producer:Op.node_id -> consumer:Op.node_id -> int
(** Consumer elements reading each producer element along the edge; the
    recompute factor paid by inline fusion of a one-to-many edge. *)

val is_pattern1_edge :
  Graph.t -> producer:Op.node_id -> consumer:Op.node_id -> bool
(** Paper pattern (1): reduce op feeding a consumer. *)

val is_pattern2_edge :
  Graph.t -> producer:Op.node_id -> consumer:Op.node_id -> bool
(** Paper pattern (2): heavy element-wise op followed by a broadcast. *)

val has_multi_consumer : Graph.t -> Op.node_id -> bool

val is_dominant_candidate : Graph.t -> Op.node_id -> bool
(** Sec 4.3 step 1 candidates: reduces, and heavy element-wise ops with a
    one-to-many (broadcast) consumer. *)

type reduce_layout = Row_reduce | Column_reduce

val reduce_layout_opt : Graph.t -> Op.node_id -> reduce_layout option
(** [None] if the node is not a reduce; never raises. *)

val reduce_layout : Graph.t -> Op.node_id -> reduce_layout
(** @raise Invalid_argument if the node is not a reduce. *)

val reduce_geometry_opt : Graph.t -> Op.node_id -> (int * int) option
(** [(rows, row_length)] as for [reduce_geometry], or [None] if the node
    is not a reduce; never raises. *)

val reduce_geometry : Graph.t -> Op.node_id -> int * int
(** [(rows, row_length)]: independent reductions and elements per
    reduction.  @raise Invalid_argument if the node is not a reduce. *)
