(** Symbolic batch-axis classification for shape-polymorphic plans.

    Classifies every node of a deterministic builder family
    [build : batch:int -> Graph.t] as batch-[Invariant] or [Scaled]
    (one axis growing linearly with the batch), by diffing the batch-1
    and batch-2 graphs node by node — node ids are dense in
    construction order, so they line up across batch sizes.

    A successful classification licenses *prefix execution*: a plan
    compiled at the maximum batch evaluates any smaller batch b by
    bounding each scaled loop at b x unit elements over the max-sized
    buffers.  [analyze] enforces the soundness conditions (batch axis
    effectively outermost, no batch-collapsing ops, no
    extent-dependent index arithmetic); families that fail are served
    by fixed-extent compilation instead. *)

type cls =
  | Invariant  (** same shape at every batch size *)
  | Scaled of { axis : int; unit : int }
      (** [axis] has extent [unit * batch]; [unit] is the batch-1 extent *)

type plan = { max_batch : int; cls : cls array }
(** What a compiled plan carries: the extent it was compiled at and the
    per-node classification (indexed by node id). *)

val cls_to_string : cls -> string

val shape_at : cls -> Shape.t -> batch:int -> Shape.t
(** The node's shape at [batch], given its batch-1 shape. *)

val analyze : g1:Graph.t -> g2:Graph.t -> (cls array, string) result
(** Diff the batch-1 and batch-2 builds.  [Error] carries the first
    node-level reason the family is not prefix-executable. *)

val validate_at :
  cls array -> base:Graph.t -> at:Graph.t -> batch:int -> (unit, string) result
(** Check the classification against a third build (normally the max
    batch): the linearity inferred from batches {1,2} must hold there
    too.  Catches locally-linear families (overlapping pool windows,
    batch-axis padding). *)
