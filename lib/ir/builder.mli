(** Mutable graph construction with on-the-fly shape inference.

    Every emit validates its operands, so {!finish} produces a well-formed
    {!Graph.t}.  Values ([v]) are node ids into the graph being built. *)

type t
type v = Op.node_id

val create : unit -> t
val shape_of : t -> v -> Shape.t
val dtype_of : t -> v -> Dtype.t
val op_of : t -> v -> Op.t
val num_nodes : t -> int

(** {2 Leaves} *)

val parameter : t -> ?dtype:Dtype.t -> string -> int list -> v
val constant : t -> ?dtype:Dtype.t -> ?dims:int list -> float -> v
val iota : t -> ?dtype:Dtype.t -> axis:int -> int list -> v

(** {2 Element-wise} *)

val unary : t -> Op.unary_kind -> v -> v
val neg : t -> v -> v
val abs : t -> v -> v
val sign : t -> v -> v
val relu : t -> v -> v
val rcp : t -> v -> v
val exp : t -> v -> v
val log : t -> v -> v
val tanh : t -> v -> v
val sigmoid : t -> v -> v
val sqrt : t -> v -> v
val rsqrt : t -> v -> v
val erf : t -> v -> v
val binary : t -> Op.binary_kind -> v -> v -> v
val add : t -> v -> v -> v
val sub : t -> v -> v -> v
val mul : t -> v -> v -> v
val div : t -> v -> v -> v
val max : t -> v -> v -> v
val min : t -> v -> v -> v
val pow : t -> v -> v -> v
val lt : t -> v -> v -> v
val gt : t -> v -> v -> v
val eq : t -> v -> v -> v
val select : t -> pred:v -> on_true:v -> on_false:v -> v

(** {2 Shape manipulation} *)

val broadcast : t -> v -> dims:int list -> int list -> v
(** [broadcast b x ~dims out] maps input axis [i] to output axis
    [List.nth dims i]; remaining output axes replicate. *)

val broadcast_scalar : t -> v -> int list -> v
val broadcast_trailing : t -> v -> int list -> v
val broadcast_leading : t -> v -> int list -> v
val reduce : t -> Op.reduce_kind -> axes:int list -> v -> v
val reduce_sum : t -> axes:int list -> v -> v
val reduce_max : t -> axes:int list -> v -> v
val reduce_min : t -> axes:int list -> v -> v
val reduce_mean : t -> axes:int list -> v -> v
val reshape : t -> v -> int list -> v
val transpose : t -> v -> perm:int list -> v
val concat : t -> axis:int -> v list -> v
val slice : t -> v -> starts:int list -> stops:int list -> v
val pad : t -> v -> low:int list -> high:int list -> v

val gather : t -> v -> v -> v
(** [gather b params indices]: embedding lookup (indices clamp). *)

val scatter_add : t -> rows:int -> v -> v -> v
(** [scatter_add b ~rows indices updates]: gather's reverse. *)

val max_pool : t -> window:int -> stride:int -> v -> v

(** {2 Compute-intensive} *)

val dot : t -> v -> v -> v
val conv2d : t -> stride:int -> v -> v -> v

(** {2 Composites used by the workload generators} *)

val softmax : t -> v -> v
(** Numerically-stable softmax over the last axis. *)

val layer_norm : t -> ?eps:float -> v -> gamma:v -> beta:v -> v
val gelu : t -> v -> v

val finish : t -> outputs:v list -> Graph.t
(** Freeze and validate. *)
