(** Tensor element types.

    The simulator's cost model uses only the byte width; numerics are
    always computed in OCaml [float]s regardless of the declared type. *)

type t = F32 | F16 | I32 | Pred

val size_bytes : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val is_floating : t -> bool
