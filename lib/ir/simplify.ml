(* Graph simplification: constant folding, algebraic identities, common
   subexpression elimination and (by construction) dead-code elimination.

   The pass rebuilds the graph through the builder, walking the original
   nodes in topological order and mapping each to a replacement value.
   Only value-preserving rules are applied - rules that could change
   IEEE semantics on non-finite inputs (like x - x -> 0) are left out so
   simplified graphs stay bit-compatible with the reference interpreter
   on ordinary inputs. *)

type stats = {
  folded : int; (* constant-folding rewrites *)
  identities : int; (* algebraic identity rewrites *)
  cse : int; (* nodes deduplicated *)
  dce : int; (* dead nodes dropped *)
}

let no_stats = { folded = 0; identities = 0; cse = 0; dce = 0 }

let pp_stats fmt s =
  Format.fprintf fmt "folded=%d identities=%d cse=%d dce=%d" s.folded
    s.identities s.cse s.dce

(* A node whose elements are all the same known value: a constant, or a
   pure data-movement chain above one. *)
let rec uniform_value g id =
  match Graph.op g id with
  | Op.Constant { value } -> Some value
  | Op.Broadcast { input; _ }
  | Op.Reshape { input }
  | Op.Transpose { input; _ } ->
      uniform_value g input
  | _ -> None

let apply_unary kind v =
  match (kind : Op.unary_kind) with
  | Op.Neg -> Some (-.v)
  | Op.Abs -> Some (Float.abs v)
  | Op.Sign -> Some (if v > 0. then 1. else if v < 0. then -1. else 0.)
  | Op.Relu -> Some (Float.max 0. v)
  | Op.Rcp -> Some (1. /. v)
  | Op.Exp -> Some (Stdlib.exp v)
  | Op.Log -> Some (Stdlib.log v)
  | Op.Tanh -> Some (Stdlib.tanh v)
  | Op.Sigmoid -> Some (1. /. (1. +. Stdlib.exp (-.v)))
  | Op.Sqrt -> Some (Stdlib.sqrt v)
  | Op.Rsqrt -> Some (1. /. Stdlib.sqrt v)
  | Op.Erf -> None (* interpreter uses a polynomial; avoid drift *)

let apply_binary kind a b =
  match (kind : Op.binary_kind) with
  | Op.Add -> Some (a +. b)
  | Op.Sub -> Some (a -. b)
  | Op.Mul -> Some (a *. b)
  | Op.Div -> Some (a /. b)
  | Op.Max -> Some (Float.max a b)
  | Op.Min -> Some (Float.min a b)
  | Op.Pow -> Some (a ** b)
  | Op.Lt -> Some (if a < b then 1. else 0.)
  | Op.Gt -> Some (if a > b then 1. else 0.)
  | Op.Eq -> Some (if a = b then 1. else 0.)

(* CSE key: the op with operands replaced by their new ids, plus the
   output shape (reshape/broadcast targets are not captured by the op
   record alone). *)
let cse_key op shape = (op, Shape.to_list shape)

(* Rebuild keeping only nodes reachable from the outputs. *)
let dce g =
  let live = Graph.live_ids g in
  let b = Builder.create () in
  let mapping = Hashtbl.create 64 in
  Graph.iter_nodes
    (fun nd ->
      if live.(nd.id) then begin
        let op = Op.map_operands (Hashtbl.find mapping) nd.op in
        let v =
          match op with
          | Op.Parameter { name } ->
              Builder.parameter b ~dtype:nd.dtype name (Shape.to_list nd.shape)
          | Op.Constant { value } ->
              Builder.constant b ~dtype:nd.dtype ~dims:(Shape.to_list nd.shape)
                value
          | Op.Iota { axis } ->
              Builder.iota b ~dtype:nd.dtype ~axis (Shape.to_list nd.shape)
          | Op.Broadcast { input; dims } ->
              Builder.broadcast b input ~dims:(Array.to_list dims)
                (Shape.to_list nd.shape)
          | Op.Reshape { input } ->
              Builder.reshape b input (Shape.to_list nd.shape)
          | Op.Unary { kind; input } -> Builder.unary b kind input
          | Op.Binary { kind; lhs; rhs } -> Builder.binary b kind lhs rhs
          | Op.Reduce { input; kind; axes } ->
              Builder.reduce b kind ~axes:(Array.to_list axes) input
          | Op.Transpose { input; perm } ->
              Builder.transpose b input ~perm:(Array.to_list perm)
          | Op.Select { pred; on_true; on_false } ->
              Builder.select b ~pred ~on_true ~on_false
          | Op.Concat { inputs; axis } -> Builder.concat b ~axis inputs
          | Op.Slice { input; starts; stops } ->
              Builder.slice b input ~starts:(Array.to_list starts)
                ~stops:(Array.to_list stops)
          | Op.Pad { input; low; high } ->
              Builder.pad b input ~low:(Array.to_list low)
                ~high:(Array.to_list high)
          | Op.Gather { params; indices } -> Builder.gather b params indices
          | Op.Scatter_add { indices; updates; rows } ->
              Builder.scatter_add b ~rows indices updates
          | Op.Max_pool { input; window; stride } ->
              Builder.max_pool b ~window ~stride input
          | Op.Dot { lhs; rhs } -> Builder.dot b lhs rhs
          | Op.Conv2d { input; filter; stride } ->
              Builder.conv2d b ~stride input filter
        in
        Hashtbl.replace mapping nd.id v
      end)
    g;
  Builder.finish b ~outputs:(List.map (Hashtbl.find mapping) (Graph.outputs g))

let run g =
  let b = Builder.create () in
  let mapping : (Op.node_id, Builder.v) Hashtbl.t = Hashtbl.create 64 in
  let table : (Op.t * int list, Builder.v) Hashtbl.t = Hashtbl.create 64 in
  let folded = ref 0 and identities = ref 0 and cse = ref 0 in
  let new_id id = Hashtbl.find mapping id in
  let live = Graph.live_ids g in
  let uniform_fill shape v =
    let c = Builder.constant b v in
    if Shape.rank shape = 0 then c
    else Builder.broadcast_scalar b c (Shape.to_list shape)
  in
  let emit_mapped nd_id (op : Op.t) shape dtype =
    (* CSE, then emit *)
    let key = cse_key op shape in
    match Hashtbl.find_opt table key with
    | Some v ->
        incr cse;
        Hashtbl.replace mapping nd_id v
    | None ->
        let v =
          match op with
          | Op.Parameter { name } ->
              Builder.parameter b ~dtype name (Shape.to_list shape)
          | Op.Constant { value } ->
              Builder.constant b ~dtype ~dims:(Shape.to_list shape) value
          | Op.Iota { axis } -> Builder.iota b ~dtype ~axis (Shape.to_list shape)
          | Op.Broadcast { input; dims } ->
              Builder.broadcast b input ~dims:(Array.to_list dims)
                (Shape.to_list shape)
          | Op.Reshape { input } -> Builder.reshape b input (Shape.to_list shape)
          | Op.Unary { kind; input } -> Builder.unary b kind input
          | Op.Binary { kind; lhs; rhs } -> Builder.binary b kind lhs rhs
          | Op.Reduce { input; kind; axes } ->
              Builder.reduce b kind ~axes:(Array.to_list axes) input
          | Op.Transpose { input; perm } ->
              Builder.transpose b input ~perm:(Array.to_list perm)
          | Op.Select { pred; on_true; on_false } ->
              Builder.select b ~pred ~on_true ~on_false
          | Op.Concat { inputs; axis } -> Builder.concat b ~axis inputs
          | Op.Slice { input; starts; stops } ->
              Builder.slice b input ~starts:(Array.to_list starts)
                ~stops:(Array.to_list stops)
          | Op.Pad { input; low; high } ->
              Builder.pad b input ~low:(Array.to_list low)
                ~high:(Array.to_list high)
          | Op.Gather { params; indices } -> Builder.gather b params indices
          | Op.Scatter_add { indices; updates; rows } ->
              Builder.scatter_add b ~rows indices updates
          | Op.Max_pool { input; window; stride } ->
              Builder.max_pool b ~window ~stride input
          | Op.Dot { lhs; rhs } -> Builder.dot b lhs rhs
          | Op.Conv2d { input; filter; stride } ->
              Builder.conv2d b ~stride input filter
        in
        Hashtbl.replace table key v;
        Hashtbl.replace mapping nd_id v
  in
  Graph.iter_nodes
    (fun nd ->
      if live.(nd.id) then begin
        let shape = nd.shape in
        let remapped = Op.map_operands new_id nd.op in
        let uniform_of v =
          (* uniform value of a node in the NEW builder *)
          let rec go v =
            match Builder.op_of b v with
            | Op.Constant { value } -> Some value
            | Op.Broadcast { input; _ }
            | Op.Reshape { input }
            | Op.Transpose { input; _ } ->
                go input
            | _ -> None
          in
          go v
        in
        let folded_value =
          match remapped with
          | Op.Unary { kind; input } -> (
              match uniform_of input with
              | Some v -> apply_unary kind v
              | None -> None)
          | Op.Binary { kind; lhs; rhs } -> (
              match (uniform_of lhs, uniform_of rhs) with
              | Some a, Some v -> apply_binary kind a v
              | _ -> None)
          | Op.Reduce { input; kind; axes } -> (
              match uniform_of input with
              | Some v -> (
                  let n = Shape.elements_along (Builder.shape_of b input) axes in
                  match kind with
                  | Op.Sum -> Some (v *. float_of_int n)
                  | Op.Mean | Op.Max_r | Op.Min_r -> Some v)
              | None -> None)
          | _ -> None
        in
        match folded_value with
        | Some v ->
            incr folded;
            Hashtbl.replace mapping nd.id (uniform_fill shape v)
        | None -> (
            (* algebraic identities *)
            let identity =
              match remapped with
              | Op.Binary { kind = Op.Add; lhs; rhs } -> (
                  match (uniform_of lhs, uniform_of rhs) with
                  | _, Some 0. -> Some lhs
                  | Some 0., _ -> Some rhs
                  | _ -> None)
              | Op.Binary { kind = Op.Sub; lhs; rhs } -> (
                  match uniform_of rhs with Some 0. -> Some lhs | _ -> None)
              | Op.Binary { kind = Op.Mul; lhs; rhs } -> (
                  match (uniform_of lhs, uniform_of rhs) with
                  | _, Some 1. -> Some lhs
                  | Some 1., _ -> Some rhs
                  | _ -> None)
              | Op.Binary { kind = Op.Div; lhs; rhs } -> (
                  match uniform_of rhs with Some 1. -> Some lhs | _ -> None)
              | Op.Binary { kind = Op.Pow; lhs; rhs } -> (
                  match uniform_of rhs with Some 1. -> Some lhs | _ -> None)
              | Op.Unary { kind = Op.Neg; input } -> (
                  match Builder.op_of b input with
                  | Op.Unary { kind = Op.Neg; input = inner } -> Some inner
                  | _ -> None)
              | Op.Unary { kind = Op.Abs; input } -> (
                  match Builder.op_of b input with
                  | Op.Unary { kind = Op.Abs | Op.Relu | Op.Exp; _ } ->
                      Some input
                  | _ -> None)
              | Op.Unary { kind = Op.Relu; input } -> (
                  match Builder.op_of b input with
                  | Op.Unary { kind = Op.Relu | Op.Abs | Op.Exp | Op.Sigmoid; _ }
                    ->
                      Some input
                  | _ -> None)
              | Op.Reshape { input } ->
                  if Shape.equal (Builder.shape_of b input) shape then
                    Some input
                  else None
              | Op.Transpose { input; perm } ->
                  if Array.to_list perm = List.init (Array.length perm) Fun.id
                  then Some input
                  else None
              | _ -> None
            in
            match identity with
            | Some v ->
                incr identities;
                Hashtbl.replace mapping nd.id v
            | None -> emit_mapped nd.id remapped shape nd.dtype)
      end)
    g;
  let outputs = List.map new_id (Graph.outputs g) in
  let g' = Builder.finish b ~outputs in
  (* rewrites strand their old operands (e.g. the zero a removed add was
     fed); a final dead-code sweep drops them *)
  let g'' = dce g' in
  let dce_count = Graph.num_nodes g - Graph.num_nodes g'' in
  (g'', { folded = !folded; identities = !identities; cse = !cse; dce = Stdlib.max 0 dce_count })
