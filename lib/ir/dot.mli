(** Graphviz export of computation graphs. *)

val to_string : ?name:string -> Graph.t -> string
