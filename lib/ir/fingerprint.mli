(** Canonical structural fingerprints for graphs: the plan-cache key.

    The fingerprint is the digest of a canonical serialization of the
    {e live} graph, with nodes renumbered by a deterministic depth-first
    walk from the outputs.  It is therefore invariant under node
    renumbering and dead code, and sensitive to every semantic detail:
    operator kinds and static attributes, operand wiring, shapes, dtypes,
    parameter names and output order. *)

val canonical_text : Graph.t -> string
(** The canonical serialization itself (stable across sessions); exposed
    for tests and debugging.  [of_graph] digests exactly this string. *)

val of_graph : Graph.t -> string
(** Hex digest of {!canonical_text}; equal for structurally identical
    graphs regardless of node numbering or dead nodes. *)
