(* Graphviz export, colouring op classes the way the paper's figures do:
   compute-intensive boxes, reduces in orange, heavy element-wise in blue,
   broadcasts in green. *)

let node_color g id =
  let op = Graph.op g id in
  match Op.classify op with
  | Op.Compute_intensive -> "gray"
  | Op.Memory_intensive -> (
      match op with
      | Op.Reduce _ -> "orange"
      | Op.Broadcast _ -> "palegreen"
      | Op.Unary _ | Op.Binary _ when Op.weight op = Op.Heavy -> "lightblue"
      | Op.Parameter _ -> "white"
      | _ -> "whitesmoke")

let node_label g id =
  let nd = Graph.node g id in
  Printf.sprintf "%s\\n%s" (Op.mnemonic nd.op) (Shape.to_string nd.shape)

let to_string ?(name = "g") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  node [shape=box, style=filled];\n";
  Graph.iter_nodes
    (fun nd ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", fillcolor=%s];\n" nd.id
           (node_label g nd.id) (node_color g nd.id)))
    g;
  Graph.iter_nodes
    (fun nd ->
      List.iter
        (fun operand ->
          Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" operand nd.id))
        (Op.operands nd.op))
    g;
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "  out%d [label=\"output\", shape=plaintext];\n" o);
      Buffer.add_string buf (Printf.sprintf "  n%d -> out%d;\n" o o))
    (Graph.outputs g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
