(* Element types carried by tensors. The cost model only cares about the
   byte width (AMP experiments run the same graphs at F16), while the
   reference interpreter computes everything in OCaml floats. *)

type t = F32 | F16 | I32 | Pred

let size_bytes = function
  | F32 -> 4
  | F16 -> 2
  | I32 -> 4
  | Pred -> 1

let to_string = function
  | F32 -> "f32"
  | F16 -> "f16"
  | I32 -> "i32"
  | Pred -> "pred"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal (a : t) (b : t) = a = b

let is_floating = function F32 | F16 -> true | I32 | Pred -> false
