(* Canonical structural fingerprints for graphs.

   The serving plan cache needs a key that identifies "the same graph" no
   matter how its nodes happen to be numbered: a session rebuilding a model
   from the same builder calls, a parser re-reading the same file, or a
   frontend emitting the same subgraph with interleaved dead nodes must all
   map to one cache entry.  We therefore canonicalize instead of hashing
   the raw node array: nodes are renumbered by a deterministic
   depth-first walk from the outputs (operands before users, outputs in
   declaration order), dead nodes disappear, and each live node is printed
   with its full operator identity - kind, every static attribute, operand
   canonical ids, shape and dtype.  Two graphs share a fingerprint exactly
   when their canonical texts collide, so cache-key soundness reduces to
   the collision resistance of [Digest] over a faithful serialization,
   not to the quality of an ad-hoc structural hash. *)

let attr_ints name ints =
  Printf.sprintf " %s=[%s]" name
    (String.concat "," (List.map string_of_int (Array.to_list ints)))

(* Operator identity beyond the operand list: every static attribute that
   changes semantics must appear here (a new op with attributes MUST be
   added, otherwise two semantically different graphs could collide). *)
let op_identity : Op.t -> string = function
  | Op.Parameter { name } -> Printf.sprintf "parameter name=%S" name
  | Op.Constant { value } ->
      (* hex float: distinguishes values that print equal at %g *)
      Printf.sprintf "constant value=%h" value
  | Op.Iota { axis } -> Printf.sprintf "iota axis=%d" axis
  | Op.Unary { kind; _ } -> "unary:" ^ Op.unary_to_string kind
  | Op.Binary { kind; _ } -> "binary:" ^ Op.binary_to_string kind
  | Op.Broadcast { dims; _ } -> "broadcast" ^ attr_ints "dims" dims
  | Op.Reduce { kind; axes; _ } ->
      "reduce:" ^ Op.reduce_to_string kind ^ attr_ints "axes" axes
  | Op.Reshape _ -> "reshape"
  | Op.Transpose { perm; _ } -> "transpose" ^ attr_ints "perm" perm
  | Op.Select _ -> "select"
  | Op.Concat { axis; _ } -> Printf.sprintf "concat axis=%d" axis
  | Op.Slice { starts; stops; _ } ->
      "slice" ^ attr_ints "starts" starts ^ attr_ints "stops" stops
  | Op.Pad { low; high; _ } ->
      "pad" ^ attr_ints "low" low ^ attr_ints "high" high
  | Op.Gather _ -> "gather"
  | Op.Scatter_add { rows; _ } -> Printf.sprintf "scatter-add rows=%d" rows
  | Op.Max_pool { window; stride; _ } ->
      Printf.sprintf "max-pool window=%d stride=%d" window stride
  | Op.Dot _ -> "dot"
  | Op.Conv2d { stride; _ } -> Printf.sprintf "conv2d stride=%d" stride

let canonical_text g =
  let n = Graph.num_nodes g in
  let canonical = Array.make n (-1) in
  let next = ref 0 in
  let buf = Buffer.create 1024 in
  (* Iterative post-order DFS from the outputs: operands are numbered (and
     printed) before their users, so a node's line only references already
     assigned canonical ids.  The visit order is fully determined by the
     output list and each op's operand order - never by raw node ids. *)
  let rec visit id =
    if canonical.(id) < 0 then begin
      List.iter visit (Graph.operands g id);
      if canonical.(id) < 0 then begin
        let c = !next in
        incr next;
        canonical.(id) <- c;
        let nd = Graph.node g id in
        Buffer.add_string buf
          (Printf.sprintf "%%%d = %s (%s) : %s %s\n" c (op_identity nd.op)
             (String.concat ","
                (List.map
                   (fun o -> Printf.sprintf "%%%d" canonical.(o))
                   (Graph.operands g id)))
             (Shape.to_string nd.shape)
             (Dtype.to_string nd.dtype))
      end
    end
  in
  List.iter visit (Graph.outputs g);
  Buffer.add_string buf
    (Printf.sprintf "outputs: %s\n"
       (String.concat ","
          (List.map
             (fun o -> Printf.sprintf "%%%d" canonical.(o))
             (Graph.outputs g))));
  Buffer.contents buf

(* Memoized on the graph value: serving fingerprints the same graph on
   every request, and the canonicalization walk would otherwise dominate
   a cache hit.  Sound because graphs are immutable after construction. *)
let of_graph g =
  match Graph.fingerprint_memo g with
  | Some fp -> fp
  | None ->
      let fp = Digest.to_hex (Digest.string (canonical_text g)) in
      Graph.set_fingerprint_memo g fp;
      fp
