(** Immutable computation graphs.

    Node ids are dense and assigned in construction order, so every operand
    id is smaller than its user's id: graphs are acyclic by construction
    and id order is a valid topological order. *)

type node = { id : Op.node_id; op : Op.t; shape : Shape.t; dtype : Dtype.t }
type t

exception Ill_formed of string

val ill_formed : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Ill_formed} with a formatted message. *)

val of_nodes : node array -> outputs:Op.node_id list -> t
(** @raise Ill_formed if ids are not dense/increasing, an operand is a
    forward reference, or the output list is empty/out of range. *)

val validate : t -> unit
(** Re-check every node against the shape-inference rules.
    @raise Ill_formed on any inconsistency. *)

val num_nodes : t -> int
val node : t -> Op.node_id -> node
val op : t -> Op.node_id -> Op.t
val shape : t -> Op.node_id -> Shape.t
val dtype : t -> Op.node_id -> Dtype.t
val outputs : t -> Op.node_id list
val is_output : t -> Op.node_id -> bool

val fingerprint_memo : t -> string option
(** Memoized canonical fingerprint.  Owned by [Fingerprint]; use
    [Fingerprint.of_graph], which fills it on first computation (sound
    because graphs are otherwise immutable). *)

val set_fingerprint_memo : t -> string -> unit
val consumers : t -> Op.node_id -> Op.node_id list
val operands : t -> Op.node_id -> Op.node_id list
val topo_order : t -> Op.node_id list
val iter_nodes : (node -> unit) -> t -> unit
val fold_nodes : ('a -> node -> 'a) -> 'a -> t -> 'a
val num_elements : t -> Op.node_id -> int
val bytes : t -> Op.node_id -> int
val parameters : t -> Op.node_id list
val find_parameter : t -> string -> Op.node_id option
val memory_intensive_ids : t -> Op.node_id list
val compute_intensive_ids : t -> Op.node_id list
val live_ids : t -> bool array
(** Nodes reachable backwards from the outputs; backends never lower dead
    nodes (matching XLA/TF dead-code elimination). *)

val pp_node : t -> Format.formatter -> Op.node_id -> unit
val pp : Format.formatter -> t -> unit

type stats = {
  total_ops : int;
  memory_intensive_ops : int;
  compute_intensive_ops : int;
  reduce_ops : int;
  broadcast_ops : int;
  heavy_elementwise_ops : int;
}

val stats : t -> stats
