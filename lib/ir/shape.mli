(** Row-major tensor shapes.

    A shape is an array of strictly positive dimensions; rank 0 denotes a
    scalar. *)

type t = int array

exception Invalid of string

val of_list : int list -> t
(** @raise Invalid if any dimension is < 1. *)

val to_list : t -> int list
val scalar : t
val rank : t -> int

val dim : t -> int -> int
(** @raise Invalid on out-of-range axis. *)

val num_elements : t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val strides : t -> int array
(** Row-major strides; the last dimension has stride 1. *)

val linear_index : t -> int array -> int
val multi_index : t -> int -> int array

val remove_axes : t -> int array -> t
(** Shape with the given axes dropped (reduce output shape). *)

val elements_along : t -> int array -> int
(** Product of the dimensions at the given axes. *)

val axes_are_suffix : t -> int array -> bool
(** True iff the axes form the contiguous suffix of the shape, i.e. a
    reduce over them touches memory-contiguous elements (row-reduce). *)
