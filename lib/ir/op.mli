(** The operator algebra.

    Ops reference operands by node id; the surrounding {!Graph} owns the
    id->node mapping.  Binary ops require equal operand shapes: implicit
    broadcasting is not allowed, a [Broadcast] must be inserted explicitly
    (as in XLA HLO) so element-level dependencies stay visible to the
    stitching analysis. *)

type node_id = int

type unary_kind =
  | Neg
  | Abs
  | Sign
  | Relu
  | Rcp
  | Exp
  | Log
  | Tanh
  | Sigmoid
  | Sqrt
  | Rsqrt
  | Erf

type binary_kind = Add | Sub | Mul | Div | Max | Min | Pow | Lt | Gt | Eq
type reduce_kind = Sum | Max_r | Min_r | Mean

type t =
  | Parameter of { name : string }
  | Constant of { value : float }
  | Iota of { axis : int }
  | Unary of { kind : unary_kind; input : node_id }
  | Binary of { kind : binary_kind; lhs : node_id; rhs : node_id }
  | Broadcast of { input : node_id; dims : int array }
      (** [dims.(i)] is the output axis carrying input axis [i]; strictly
          increasing.  Other output axes replicate their data. *)
  | Reduce of { input : node_id; kind : reduce_kind; axes : int array }
  | Reshape of { input : node_id }
  | Transpose of { input : node_id; perm : int array }
  | Select of { pred : node_id; on_true : node_id; on_false : node_id }
  | Concat of { inputs : node_id list; axis : int }
  | Slice of { input : node_id; starts : int array; stops : int array }
  | Pad of { input : node_id; low : int array; high : int array }
  | Gather of { params : node_id; indices : node_id }
      (** Embedding lookup: [params [n; rest..] x indices [k] -> [k; rest..]];
          out-of-range indices clamp, as in XLA. *)
  | Scatter_add of { indices : node_id; updates : node_id; rows : int }
      (** Reverse of gather: zeros with [updates.(i)] added at row
          [indices.(i)] (clamped); lowers to atomics. *)
  | Max_pool of { input : node_id; window : int; stride : int }
      (** NHWC max pooling, VALID padding. *)
  | Dot of { lhs : node_id; rhs : node_id }
      (** Batched matmul: [[...,m,k] x [...,k,n] -> [...,m,n]]. *)
  | Conv2d of { input : node_id; filter : node_id; stride : int }
      (** NHWC input x [[kh,kw,c,oc]] filter, VALID padding. *)

val operands : t -> node_id list
val map_operands : (node_id -> node_id) -> t -> t

(** {2 Classification (paper Sec 2.1)} *)

type op_class = Compute_intensive | Memory_intensive

val classify : t -> op_class

type weight = Light | Heavy

val unary_weight : unary_kind -> weight
val binary_weight : binary_kind -> weight

val weight : t -> weight
(** Per-element arithmetic weight; structural data movement is [Light]. *)

val fp32_insts_per_element : t -> int
(** FP32 instructions per produced element (the [inst_fp_32] counter);
    [Reduce]/[Dot]/[Conv2d] values are per consumed element and get scaled
    by the reduction width in the cost model. *)

val mnemonic : t -> string
val unary_to_string : unary_kind -> string
val binary_to_string : binary_kind -> string
val reduce_to_string : reduce_kind -> string
val is_reduce : t -> bool

(** Reduces and windowed reductions (max-pool): inlining them into a
    consumer re-runs the whole reduction per element. *)
val is_reduce_like : t -> bool

val is_broadcast : t -> bool
val is_parameter : t -> bool
val is_constant : t -> bool
