(* Tensor shapes: row-major, possibly rank 0 (scalars). *)

type t = int array

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let of_list dims =
  List.iter (fun d -> if d < 1 then invalid "dimension %d must be >= 1" d) dims;
  Array.of_list dims

let to_list = Array.to_list
let scalar : t = [||]
let rank (t : t) = Array.length t
let dim (t : t) i =
  if i < 0 || i >= Array.length t then invalid "dim %d out of range for rank %d" i (Array.length t);
  t.(i)

let num_elements (t : t) = Array.fold_left ( * ) 1 t

let equal (a : t) (b : t) =
  Array.length a = Array.length b && Array.for_all2 ( = ) a b

let to_string (t : t) =
  "<" ^ String.concat "," (List.map string_of_int (to_list t)) ^ ">"

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* Row-major strides: stride of the last dimension is 1. *)
let strides (t : t) =
  let n = rank t in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * t.(i + 1)
  done;
  s

let linear_index (t : t) (idx : int array) =
  let s = strides t in
  let acc = ref 0 in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= t.(i) then invalid "index %d out of bound %d at axis %d" v t.(i) i;
      acc := !acc + (v * s.(i)))
    idx;
  !acc

let multi_index (t : t) linear =
  let n = rank t in
  let idx = Array.make n 0 in
  let rem = ref linear in
  let s = strides t in
  for i = 0 to n - 1 do
    idx.(i) <- !rem / s.(i);
    rem := !rem mod s.(i)
  done;
  idx

(* Drop the axes listed in [axes] (sorted or not); used by reduce. *)
let remove_axes (t : t) axes =
  let keep i = not (Array.exists (fun a -> a = i) axes) in
  let out = ref [] in
  for i = rank t - 1 downto 0 do
    if keep i then out := t.(i) :: !out
  done;
  Array.of_list !out

(* Number of elements along the given axes. *)
let elements_along (t : t) axes =
  Array.fold_left (fun acc a -> acc * dim t a) 1 axes

(* Are the reduced axes a contiguous suffix of the shape?  If so a reduce
   over them is a row-reduce (contiguous elements in memory). *)
let axes_are_suffix (t : t) axes =
  let n = rank t in
  let k = Array.length axes in
  let sorted = Array.copy axes in
  Array.sort compare sorted;
  k > 0
  && Array.for_all (fun a -> a >= 0 && a < n) sorted
  && sorted.(0) = n - k
  && Array.for_all2 ( = ) sorted (Array.init k (fun i -> n - k + i))
