(* Mutable graph construction.  Shapes/dtypes are inferred as nodes are
   appended, so building is its own validation. *)

type v = Op.node_id

type t = { mutable nodes : Graph.node array; mutable next : int }

let dummy_node = { Graph.id = -1; op = Op.Constant { value = 0. }; shape = Shape.scalar; dtype = Dtype.F32 }

let create () = { nodes = Array.make 64 dummy_node; next = 0 }

let push b op shape dtype =
  let id = b.next in
  if id >= Array.length b.nodes then begin
    let bigger = Array.make (2 * Array.length b.nodes) dummy_node in
    Array.blit b.nodes 0 bigger 0 id;
    b.nodes <- bigger
  end;
  b.nodes.(id) <- { Graph.id; op; shape; dtype };
  b.next <- id + 1;
  id

let node b id =
  if id < 0 || id >= b.next then
    Graph.ill_formed "builder: unknown node id %d" id;
  b.nodes.(id)

let shape_of b id = (node b id).shape
let dtype_of b id = (node b id).dtype
let op_of b id = (node b id).op
let num_nodes b = b.next

let infer b op =
  Shape_infer.infer ~shape_of:(shape_of b) ~dtype_of:(dtype_of b) op

let emit b op =
  let shape, dtype = infer b op in
  push b op shape dtype

(* --- Leaves ------------------------------------------------------------ *)

let parameter b ?(dtype = Dtype.F32) name dims =
  push b (Op.Parameter { name }) (Shape.of_list dims) dtype

let constant b ?(dtype = Dtype.F32) ?(dims = []) value =
  push b (Op.Constant { value }) (Shape.of_list dims) dtype

let iota b ?(dtype = Dtype.F32) ~axis dims =
  let shape = Shape.of_list dims in
  if axis < 0 || axis >= Shape.rank shape then
    Graph.ill_formed "iota: axis %d out of rank %d" axis (Shape.rank shape);
  push b (Op.Iota { axis }) shape dtype

(* --- Element-wise ------------------------------------------------------ *)

let unary b kind x = emit b (Op.Unary { kind; input = x })
let neg b x = unary b Op.Neg x
let abs b x = unary b Op.Abs x
let sign b x = unary b Op.Sign x
let relu b x = unary b Op.Relu x
let rcp b x = unary b Op.Rcp x
let exp b x = unary b Op.Exp x
let log b x = unary b Op.Log x
let tanh b x = unary b Op.Tanh x
let sigmoid b x = unary b Op.Sigmoid x
let sqrt b x = unary b Op.Sqrt x
let rsqrt b x = unary b Op.Rsqrt x
let erf b x = unary b Op.Erf x

let binary b kind lhs rhs = emit b (Op.Binary { kind; lhs; rhs })
let add b x y = binary b Op.Add x y
let sub b x y = binary b Op.Sub x y
let mul b x y = binary b Op.Mul x y
let div b x y = binary b Op.Div x y
let max b x y = binary b Op.Max x y
let min b x y = binary b Op.Min x y
let pow b x y = binary b Op.Pow x y
let lt b x y = binary b Op.Lt x y
let gt b x y = binary b Op.Gt x y
let eq b x y = binary b Op.Eq x y

let select b ~pred ~on_true ~on_false =
  emit b (Op.Select { pred; on_true; on_false })

(* --- Shape manipulation ------------------------------------------------ *)

let broadcast b x ~dims out_dims =
  let out_shape = Shape.of_list out_dims in
  let dims = Array.of_list dims in
  Shape_infer.validate_broadcast ~input_shape:(shape_of b x) ~dims
    ~output_shape:out_shape;
  push b (Op.Broadcast { input = x; dims }) out_shape (dtype_of b x)

(* Broadcast a scalar (rank 0) to the given shape. *)
let broadcast_scalar b x out_dims =
  if Shape.rank (shape_of b x) <> 0 then
    Graph.ill_formed "broadcast_scalar: input is not a scalar";
  broadcast b x ~dims:[] out_dims

(* Broadcast [x] along new trailing axes: <a,b> -> <a,b,extra...>. *)
let broadcast_trailing b x extra =
  let s = Shape.to_list (shape_of b x) in
  let r = List.length s in
  broadcast b x ~dims:(List.init r Fun.id) (s @ extra)

(* Broadcast [x] along new leading axes: <a,b> -> <extra...,a,b>. *)
let broadcast_leading b x extra =
  let s = Shape.to_list (shape_of b x) in
  let r = List.length s and e = List.length extra in
  broadcast b x ~dims:(List.init r (fun i -> e + i)) (extra @ s)

let reduce b kind ~axes x =
  emit b (Op.Reduce { input = x; kind; axes = Array.of_list axes })

let reduce_sum b ~axes x = reduce b Op.Sum ~axes x
let reduce_max b ~axes x = reduce b Op.Max_r ~axes x
let reduce_min b ~axes x = reduce b Op.Min_r ~axes x
let reduce_mean b ~axes x = reduce b Op.Mean ~axes x

let reshape b x out_dims =
  let out_shape = Shape.of_list out_dims in
  let s = shape_of b x in
  if Shape.num_elements s <> Shape.num_elements out_shape then
    Graph.ill_formed "reshape: element count mismatch %s -> %s"
      (Shape.to_string s) (Shape.to_string out_shape);
  push b (Op.Reshape { input = x }) out_shape (dtype_of b x)

let transpose b x ~perm =
  emit b (Op.Transpose { input = x; perm = Array.of_list perm })

let concat b ~axis inputs = emit b (Op.Concat { inputs; axis })

let slice b x ~starts ~stops =
  emit b
    (Op.Slice
       { input = x; starts = Array.of_list starts; stops = Array.of_list stops })

let pad b x ~low ~high =
  emit b (Op.Pad { input = x; low = Array.of_list low; high = Array.of_list high })

(* --- Compute-intensive -------------------------------------------------- *)

let gather b params indices = emit b (Op.Gather { params; indices })

let scatter_add b ~rows indices updates =
  emit b (Op.Scatter_add { indices; updates; rows })

let max_pool b ~window ~stride x =
  emit b (Op.Max_pool { input = x; window; stride })

let dot b x y = emit b (Op.Dot { lhs = x; rhs = y })
let conv2d b ~stride x filter = emit b (Op.Conv2d { input = x; filter; stride })

(* --- Composite helpers shared by the workload generators ---------------- *)

(* Numerically-stable softmax over the last axis. *)
let softmax b x =
  let s = shape_of b x in
  let r = Shape.rank s in
  let last = r - 1 in
  let dims_all = Shape.to_list s in
  let keep_dims = List.init (r - 1) Fun.id in
  let m = reduce_max b ~axes:[ last ] x in
  let m_b = broadcast b m ~dims:keep_dims dims_all in
  let shifted = sub b x m_b in
  let e = exp b shifted in
  let z = reduce_sum b ~axes:[ last ] e in
  let z_b = broadcast b z ~dims:keep_dims dims_all in
  div b e z_b

(* Layer normalization over the last axis, with learned scale/offset. *)
let layer_norm b ?(eps = 1e-5) x ~gamma ~beta =
  let s = shape_of b x in
  let r = Shape.rank s in
  let last = r - 1 in
  let dims_all = Shape.to_list s in
  let keep_dims = List.init (r - 1) Fun.id in
  let mean = reduce_mean b ~axes:[ last ] x in
  let mean_b = broadcast b mean ~dims:keep_dims dims_all in
  let centered = sub b x mean_b in
  let var = reduce_mean b ~axes:[ last ] (mul b centered centered) in
  let eps_c = constant b eps in
  let eps_b = broadcast_scalar b eps_c (Shape.to_list (shape_of b var)) in
  let inv_std = rsqrt b (add b var eps_b) in
  let inv_std_b = broadcast b inv_std ~dims:keep_dims dims_all in
  let normalized = mul b centered inv_std_b in
  let gamma_b = broadcast b gamma ~dims:[ last ] dims_all in
  let beta_b = broadcast b beta ~dims:[ last ] dims_all in
  add b (mul b normalized gamma_b) beta_b

(* GELU via erf, as in BERT. *)
let gelu b x =
  let s = Shape.to_list (shape_of b x) in
  let half = broadcast_scalar b (constant b 0.5) s in
  let inv_sqrt2 = broadcast_scalar b (constant b 0.7071067811865476) s in
  let one = broadcast_scalar b (constant b 1.0) s in
  mul b (mul b x half) (add b one (erf b (mul b x inv_sqrt2)))

let finish b ~outputs =
  let nodes = Array.sub b.nodes 0 b.next in
  let g = Graph.of_nodes nodes ~outputs in
  Graph.validate g;
  g
