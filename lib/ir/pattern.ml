(* Element-level dependency analysis along graph edges (paper Sec 2.3.1).

   The fusion/stitching decisions hinge on how each consumer op reads its
   producer: one-to-one reads can be inlined into per-thread registers,
   while one-to-many (broadcast) and many-to-one (reduce) reads force
   either recomputation or cross-thread data exchange. *)

type edge_dep =
  | One_to_one (* each consumer element reads at most one producer element *)
  | One_to_many (* one producer element fans out to many consumer elements *)
  | Many_to_one (* each consumer element reads many producer elements *)

(* Dependency carried by the edge [producer -> consumer], looking at how
   the consumer op indexes that particular operand. *)
let edge_dep g ~producer ~consumer =
  let cop = Graph.op g consumer in
  match cop with
  | Op.Broadcast { input; dims } ->
      assert (input = producer);
      if Array.length dims = Shape.rank (Graph.shape g consumer) then One_to_one
      else One_to_many
  | Op.Reduce { input; _ } ->
      assert (input = producer);
      if Graph.num_elements g consumer = Graph.num_elements g producer then
        One_to_one (* degenerate reduce over size-1 axes *)
      else Many_to_one
  | Op.Dot _ | Op.Conv2d _ -> Many_to_one
  | Op.Max_pool _ -> Many_to_one
  | Op.Gather { params; indices } ->
      (* each output element reads one params element; each index is
         re-read once per trailing element *)
      if producer = params && producer <> indices then One_to_one
      else One_to_many
  | Op.Scatter_add { indices; updates; _ } ->
      if producer = updates && producer <> indices then One_to_one
      else One_to_many
  | Op.Parameter _ | Op.Constant _ | Op.Iota _ ->
      invalid_arg "edge_dep: leaf op has no operands"
  | Op.Unary _ | Op.Binary _ | Op.Reshape _ | Op.Transpose _ | Op.Select _
  | Op.Concat _ | Op.Slice _ | Op.Pad _ ->
      One_to_one

(* How many consumer elements read each producer element along this edge
   (>= 1 only for one-to-many edges; 1 otherwise, and irrelevant for
   many-to-one edges). *)
let fanout g ~producer ~consumer =
  match edge_dep g ~producer ~consumer with
  | One_to_many ->
      let out = Graph.num_elements g consumer in
      let inp = Graph.num_elements g producer in
      if inp = 0 then 1 else Stdlib.max 1 (out / inp)
  | One_to_one | Many_to_one -> 1

(* Paper pattern (1): a reduce op together with its consumers.  The edge
   from a reduce to anything downstream cannot be handled by per-element
   inlining without recomputing the whole reduction per consumer thread. *)
let is_pattern1_edge g ~producer ~consumer:_ =
  Op.is_reduce_like (Graph.op g producer)

(* Paper pattern (2): a costly element-wise op followed by a broadcast.
   Inline fusion recomputes the expensive producer once per broadcast
   replica (the power<2> - broadcast<2,128> - add<2,128> example). *)
let is_pattern2_edge g ~producer ~consumer =
  (match Graph.op g producer with
  | Op.Unary _ | Op.Binary _ -> Op.weight (Graph.op g producer) = Op.Heavy
  | _ -> false)
  && edge_dep g ~producer ~consumer = One_to_many

(* An op has operator-level one-to-many fan-out when several distinct
   memory-intensive consumers read it (operators B and C reading A in the
   paper's Figure 4). *)
let has_multi_consumer g id = List.length (Graph.consumers g id) > 1

(* Candidate dominant ops (Sec 4.3 step 1): reduces, and heavy element-wise
   ops followed by a broadcast.  Output nodes of a stitch scope are added
   by the caller, which knows the scope boundary. *)
let is_dominant_candidate g id =
  let op = Graph.op g id in
  Op.is_reduce_like op
  || (match op with
     | Op.Unary _ | Op.Binary _ -> Op.weight op = Op.Heavy
     | _ -> false)
     && List.exists
          (fun c -> edge_dep g ~producer:id ~consumer:c = One_to_many)
          (Graph.consumers g id)

(* Is the reduce a row-reduce (contiguous elements, one thread block per
   row) or a column-reduce (strided, needs atomics)?  Paper Sec 2.1. *)
type reduce_layout = Row_reduce | Column_reduce

let reduce_layout_opt g id =
  match Graph.op g id with
  | Op.Reduce { input; axes; _ } ->
      let s = Graph.shape g input in
      Some (if Shape.axes_are_suffix s axes then Row_reduce else Column_reduce)
  | _ -> None

let reduce_layout g id =
  match reduce_layout_opt g id with
  | Some l -> l
  | None -> invalid_arg "reduce_layout: not a reduce"

(* Geometry of a reduce: (rows, row_length) where [rows] is the number of
   independent reductions and [row_length] the elements per reduction. *)
let reduce_geometry_opt g id =
  match Graph.op g id with
  | Op.Reduce { input; axes; _ } ->
      let s = Graph.shape g input in
      let row_length = Shape.elements_along s axes in
      let rows = Shape.num_elements s / Stdlib.max 1 row_length in
      Some (rows, row_length)
  | _ -> None

let reduce_geometry g id =
  match reduce_geometry_opt g id with
  | Some geom -> geom
  | None -> invalid_arg "reduce_geometry: not a reduce"
