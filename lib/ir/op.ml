(* The operator algebra.

   Ops reference their operands by node id; the surrounding graph owns the
   id -> node mapping.  Binary ops require equal operand shapes — implicit
   numpy-style broadcasting is not allowed, a Broadcast node must be
   inserted explicitly (as in XLA HLO).  This keeps element-level
   dependencies visible to the stitching analysis. *)

type node_id = int

type unary_kind =
  | Neg
  | Abs
  | Sign
  | Relu
  | Rcp
  | Exp
  | Log
  | Tanh
  | Sigmoid
  | Sqrt
  | Rsqrt
  | Erf

type binary_kind = Add | Sub | Mul | Div | Max | Min | Pow | Lt | Gt | Eq

type reduce_kind = Sum | Max_r | Min_r | Mean

type t =
  | Parameter of { name : string }
  | Constant of { value : float }
  | Iota of { axis : int }
  | Unary of { kind : unary_kind; input : node_id }
  | Binary of { kind : binary_kind; lhs : node_id; rhs : node_id }
  | Broadcast of { input : node_id; dims : int array }
      (* [dims.(i)] is the output axis carrying input axis [i]; strictly
         increasing.  All other output axes replicate. *)
  | Reduce of { input : node_id; kind : reduce_kind; axes : int array }
  | Reshape of { input : node_id }
  | Transpose of { input : node_id; perm : int array }
  | Select of { pred : node_id; on_true : node_id; on_false : node_id }
  | Concat of { inputs : node_id list; axis : int }
  | Slice of { input : node_id; starts : int array; stops : int array }
  | Pad of { input : node_id; low : int array; high : int array }
  | Gather of { params : node_id; indices : node_id }
      (* Embedding lookup: params [n; rest..] x indices [k] -> [k; rest..].
         Out-of-range indices clamp, as in XLA. *)
  | Scatter_add of { indices : node_id; updates : node_id; rows : int }
      (* Reverse of gather: zeros [rows; rest..] with updates[i] added at
         row indices[i] (clamped); lowers to atomics on GPUs. *)
  | Max_pool of { input : node_id; window : int; stride : int }
      (* NHWC max pooling, VALID padding. *)
  | Dot of { lhs : node_id; rhs : node_id }
      (* Batched matmul: [...,m,k] x [...,k,n] -> [...,m,n]. *)
  | Conv2d of { input : node_id; filter : node_id; stride : int }
      (* NHWC x [kh,kw,c,oc], VALID padding. *)

let operands = function
  | Parameter _ | Constant _ | Iota _ -> []
  | Unary { input; _ } | Broadcast { input; _ } | Reduce { input; _ }
  | Reshape { input } | Transpose { input; _ }
  | Slice { input; _ } | Pad { input; _ } ->
      [ input ]
  | Binary { lhs; rhs; _ } | Dot { lhs; rhs } -> [ lhs; rhs ]
  | Gather { params; indices } -> [ params; indices ]
  | Scatter_add { indices; updates; _ } -> [ indices; updates ]
  | Max_pool { input; _ } -> [ input ]
  | Conv2d { input; filter; _ } -> [ input; filter ]
  | Select { pred; on_true; on_false } -> [ pred; on_true; on_false ]
  | Concat { inputs; _ } -> inputs

let map_operands f op =
  match op with
  | Parameter _ | Constant _ | Iota _ -> op
  | Unary u -> Unary { u with input = f u.input }
  | Binary b -> Binary { b with lhs = f b.lhs; rhs = f b.rhs }
  | Broadcast b -> Broadcast { b with input = f b.input }
  | Reduce r -> Reduce { r with input = f r.input }
  | Reshape { input } -> Reshape { input = f input }
  | Transpose t -> Transpose { t with input = f t.input }
  | Select s ->
      Select
        { pred = f s.pred; on_true = f s.on_true; on_false = f s.on_false }
  | Concat c -> Concat { c with inputs = List.map f c.inputs }
  | Slice s -> Slice { s with input = f s.input }
  | Pad p -> Pad { p with input = f p.input }
  | Gather gth -> Gather { params = f gth.params; indices = f gth.indices }
  | Scatter_add sc ->
      Scatter_add { sc with indices = f sc.indices; updates = f sc.updates }
  | Max_pool mp -> Max_pool { mp with input = f mp.input }
  | Dot d -> Dot { lhs = f d.lhs; rhs = f d.rhs }
  | Conv2d c -> Conv2d { c with input = f c.input; filter = f c.filter }

(* --- Classification (Sec 2.1 of the paper) --------------------------- *)

type op_class = Compute_intensive | Memory_intensive

let classify = function
  | Dot _ | Conv2d _ -> Compute_intensive
  | Parameter _ | Constant _ | Iota _ | Unary _ | Binary _ | Broadcast _
  | Reduce _ | Reshape _ | Transpose _ | Select _ | Concat _ | Slice _
  | Pad _ | Gather _ | Scatter_add _ | Max_pool _ ->
      Memory_intensive

type weight = Light | Heavy

let unary_weight = function
  | Neg | Abs | Sign | Relu | Rcp -> Light
  | Exp | Log | Tanh | Sigmoid | Sqrt | Rsqrt | Erf -> Heavy

let binary_weight = function
  | Add | Sub | Mul | Div | Max | Min | Lt | Gt | Eq -> Light
  | Pow -> Heavy

(* Weight of the computation performed per output element; structural ops
   move data without arithmetic. *)
let weight = function
  | Unary { kind; _ } -> unary_weight kind
  | Binary { kind; _ } -> binary_weight kind
  | Parameter _ | Constant _ | Iota _ | Broadcast _ | Reduce _ | Reshape _
  | Transpose _ | Select _ | Concat _ | Slice _ | Pad _ | Dot _ | Conv2d _
  | Gather _ | Scatter_add _ | Max_pool _ ->
      Light

(* FP32 instructions issued per produced element — the [inst_fp_32]
   counter of Table 5.  Values approximate what nvcc emits for the CUDA
   device functions (transcendentals expand to polynomial sequences). *)
let fp32_insts_per_element = function
  | Parameter _ | Constant _ | Iota _ -> 0
  | Unary { kind; _ } -> (
      match kind with
      | Neg | Abs | Sign -> 1
      | Relu -> 2
      | Rcp -> 5
      | Sqrt -> 8
      | Rsqrt -> 8
      | Exp -> 16
      | Log -> 20
      | Sigmoid -> 20
      | Tanh -> 28
      | Erf -> 36)
  | Binary { kind; _ } -> (
      match kind with
      | Add | Sub | Mul | Max | Min | Lt | Gt | Eq -> 1
      | Div -> 6
      | Pow -> 40)
  | Select _ -> 1
  | Broadcast _ | Reshape _ | Transpose _ | Concat _ | Slice _ | Pad _
  | Gather _ ->
      0
  | Scatter_add _ -> 1 (* one atomic add per update element *)
  | Max_pool _ -> 1 (* one compare per window element; scaled by window^2 *)
  | Reduce _ -> 1 (* one accumulate per consumed element; scaled by the
                     reduction width in the cost model *)
  | Dot _ | Conv2d _ -> 2 (* per multiply-accumulate; scaled by k *)

let unary_to_string = function
  | Neg -> "neg"
  | Abs -> "abs"
  | Sign -> "sign"
  | Relu -> "relu"
  | Rcp -> "rcp"
  | Exp -> "exp"
  | Log -> "log"
  | Tanh -> "tanh"
  | Sigmoid -> "sigmoid"
  | Sqrt -> "sqrt"
  | Rsqrt -> "rsqrt"
  | Erf -> "erf"

let binary_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "multiply"
  | Div -> "divide"
  | Max -> "maximum"
  | Min -> "minimum"
  | Pow -> "power"
  | Lt -> "less"
  | Gt -> "greater"
  | Eq -> "equal"

let reduce_to_string = function
  | Sum -> "sum"
  | Max_r -> "max"
  | Min_r -> "min"
  | Mean -> "mean"

let mnemonic = function
  | Parameter { name } -> "parameter:" ^ name
  | Constant { value } -> Printf.sprintf "constant:%g" value
  | Iota { axis } -> Printf.sprintf "iota:%d" axis
  | Unary { kind; _ } -> unary_to_string kind
  | Binary { kind; _ } -> binary_to_string kind
  | Broadcast _ -> "broadcast"
  | Reduce { kind; _ } -> "reduce-" ^ reduce_to_string kind
  | Reshape _ -> "reshape"
  | Transpose _ -> "transpose"
  | Select _ -> "select"
  | Concat _ -> "concatenate"
  | Slice _ -> "slice"
  | Pad _ -> "pad"
  | Gather _ -> "gather"
  | Scatter_add _ -> "scatter-add"
  | Max_pool { window; _ } -> Printf.sprintf "max-pool:%d" window
  | Dot _ -> "dot"
  | Conv2d _ -> "convolution"

let is_reduce = function Reduce _ -> true | _ -> false

(* Windowed reductions share the reduce ops' fusion behaviour: inlining
   them into consumers re-runs the whole window per element. *)
let is_reduce_like = function Reduce _ | Max_pool _ -> true | _ -> false
let is_broadcast = function Broadcast _ -> true | _ -> false
let is_parameter = function Parameter _ -> true | _ -> false
let is_constant = function Constant _ -> true | _ -> false
