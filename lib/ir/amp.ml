(* Auto mixed precision (the paper's Figure 12 configuration): run the
   same graph with f16 activations.  In the simulator the only effect that
   matters is halving every tensor's byte width - numerics stay in OCaml
   floats either way. *)

let to_half g =
  let nodes =
    Array.of_list
      (List.rev
         (Graph.fold_nodes
            (fun acc (nd : Graph.node) ->
              let dtype =
                match nd.dtype with
                | Dtype.F32 -> Dtype.F16
                | (Dtype.F16 | Dtype.I32 | Dtype.Pred) as d -> d
              in
              { nd with dtype } :: acc)
            [] g))
  in
  Graph.of_nodes nodes ~outputs:(Graph.outputs g)
