(** Auto mixed precision: the same graph with f16 activations (halved
    byte widths in the cost model). *)

val to_half : Graph.t -> Graph.t
