(** Minimal strict JSON parser (RFC 8259 grammar; no comments, no
    trailing commas, BMP-only unicode escapes) used to validate the
    Chrome-trace exporter's output in-process - the tree deliberately
    has no JSON library dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Whole-input parse; [Error] carries a message with a byte offset. *)

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects and missing keys. *)

val as_arr : t -> t list option
val as_str : t -> string option
val as_num : t -> float option
