(* Structured trace spans, events and cross-domain flows.

   One global sink (installed by the CLI's --trace, the `trace` command,
   or a test) collects records into *per-domain ring buffers*: each
   emitting domain lazily registers its own fixed-capacity buffer, writes
   to it without any synchronization, and the buffers only meet at
   collection time.  Concurrent emitters therefore can never interleave
   or corrupt each other's records - the QCheck property in
   test_obs.ml leans on exactly this structure.

   A second, independent sink - the *flight recorder* - reuses the same
   ring machinery.  When installed it receives a copy of every record the
   trace sink would see (and keeps receiving them when no trace sink is
   installed), so the last N lifecycle events per domain are always
   available for an incident dump even in production runs that never
   asked for a full trace.

   Zero cost when disabled: every entry point first reads the two sink
   atomics; with neither installed, [span_begin] returns 0, [span_end 0],
   [instant] and the flow emitters return immediately, [new_context]
   returns the preallocated [null_context], and none of them allocates
   (the timestamps are plain ints, the optional [?attrs] defaults to an
   immediate [None]).  Hot paths (the executor's per-kernel loop) guard
   on [enabled ()] / a zero span id and so pay one atomic load per
   kernel when tracing is off - verified by the allocation test.

   Span identity: ids come from one atomic counter per sink (0 is
   reserved for "no span"); parentage is tracked with a per-domain
   stack, so spans nest per domain and a span opened on a worker domain
   starts a fresh root there (its records still carry the domain id,
   which becomes the Chrome-trace tid).

   Cross-domain rule: a span MUST be closed on the domain that opened
   it.  [span_end] for an id that is not open on the calling domain does
   not touch any foreign stack (that would race); instead of silently
   dropping the close it emits a ["cross-domain-span-end"] diagnostic
   instant carrying the id, and the opening domain's copy is eventually
   auto-closed when its own enclosing span ends.  Work that migrates
   between domains (the worker pool's wedge-steal path) links its spans
   with flow events via a [context] instead of sharing a span stack. *)

type value = Int of int | Float of float | Str of string | Bool of bool
type attrs = (string * value) list

type span = {
  id : int;
  parent : int; (* 0 = root *)
  name : string;
  phase : string;
  domain : int;
  start_ns : int;
  end_ns : int;
  attrs : attrs;
}

type event = {
  ename : string;
  ephase : string;
  edomain : int;
  ts_ns : int;
  eattrs : attrs;
}

type flow_dir = Flow_start | Flow_step | Flow_end

type flow = {
  fdir : flow_dir;
  fid : int; (* flow (trace) id; joins the arrow chain *)
  fname : string;
  fphase : string;
  fdomain : int;
  fts_ns : int;
  fattrs : attrs;
}

type record = Span of span | Event of event | Flow of flow

(* A request-scoped trace context: the flow id that joins the request's
   spans across domains, plus the span that was innermost when the
   context was minted (the client-side submit span). *)
type context = { trace_id : int; parent_span : int }

let null_context = { trace_id = 0; parent_span = 0 }

(* --- Sink and per-domain buffers ---------------------------------------- *)

type buffer = {
  dom : int;
  ring : record option array;
  mutable next : int; (* total records ever emitted on this domain *)
}

type sink = {
  clock : Clock.t;
  capacity : int;
  mutable buffers : buffer list; (* registration under [mu]; emission is
                                    single-domain and lock-free *)
  mu : Mutex.t;
  ids : int Atomic.t;
}

let current : sink option Atomic.t = Atomic.make None
let recorder : sink option Atomic.t = Atomic.make None

(* Flow ids are global (never reset): a context minted under one sink
   must stay unique if a recorder dump and a trace export are merged. *)
let flow_ids : int Atomic.t = Atomic.make 0

let make_sink ?(clock = Clock.wall_ns) ?(capacity = 65536) ~what () =
  if capacity <= 0 then
    invalid_arg (Printf.sprintf "Trace.%s: capacity must be > 0" what);
  {
    clock;
    capacity;
    buffers = [];
    mu = Mutex.create ();
    ids = Atomic.make 0;
  }

let install ?clock ?capacity () =
  Atomic.set current (Some (make_sink ?clock ?capacity ~what:"install" ()))

let recorder_install ?clock ?(capacity = 4096) () =
  Atomic.set recorder
    (Some (make_sink ?clock ~capacity ~what:"recorder_install" ()))

let installed () =
  match Atomic.get current with None -> false | Some _ -> true

let recorder_installed () =
  match Atomic.get recorder with None -> false | Some _ -> true

let enabled = installed

(* Any sink live?  Instrumentation sites that build attribute lists
   guard on this so lifecycle events reach a recorder-only setup too. *)
let active () = installed () || recorder_installed ()

(* --- Domain-local emission state ---------------------------------------- *)

type open_span = {
  oid : int;
  oparent : int;
  oname : string;
  ophase : string;
  ostart : int;
  oattrs : attrs;
}

type dstate = {
  towner : sink option; (* trace sink this state registered with *)
  rowner : sink option; (* recorder sink this state registered with *)
  tbuf : buffer option;
  rbuf : buffer option;
  mutable stack : open_span list;
}

let dls : dstate option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let register_buffer (s : sink) : buffer =
  let buf =
    { dom = (Domain.self () :> int); ring = Array.make s.capacity None; next = 0 }
  in
  Mutex.lock s.mu;
  s.buffers <- buf :: s.buffers;
  Mutex.unlock s.mu;
  buf

let same_owner (o : sink option) (s : sink option) =
  match (o, s) with
  | None, None -> true
  | Some a, Some b -> a == b
  | _ -> false

(* The domain's state under the currently installed sinks; buffers are
   registered on first use.  A reinstalled sink is detected by physical
   identity, so stale state from a previous sink is abandoned rather
   than mixed in. *)
let dstate_for (cur : sink option) (rec_ : sink option) : dstate =
  let cell = Domain.DLS.get dls in
  match !cell with
  | Some d when same_owner d.towner cur && same_owner d.rowner rec_ -> d
  | _ ->
      let tbuf = match cur with None -> None | Some s -> Some (register_buffer s)
      and rbuf =
        match rec_ with None -> None | Some s -> Some (register_buffer s)
      in
      let d = { towner = cur; rowner = rec_; tbuf; rbuf; stack = [] } in
      cell := Some d;
      d

let emit (b : buffer) (r : record) =
  b.ring.(b.next mod Array.length b.ring) <- Some r;
  b.next <- b.next + 1

let emit_both (d : dstate) (r : record) =
  (match d.tbuf with Some b -> emit b r | None -> ());
  match d.rbuf with Some b -> emit b r | None -> ()

(* The trace sink drives span ids and the clock when installed; with
   only the recorder live, the recorder's do. *)
let primary (cur : sink option) (rec_ : sink option) : sink =
  match cur with Some s -> s | None -> Option.get rec_

(* --- Emission ------------------------------------------------------------ *)

let span_begin ?attrs ~phase name =
  match (Atomic.get current, Atomic.get recorder) with
  | None, None -> 0
  | cur, rec_ ->
      let d = dstate_for cur rec_ in
      let s = primary cur rec_ in
      let id = Atomic.fetch_and_add s.ids 1 + 1 in
      let parent = match d.stack with [] -> 0 | o :: _ -> o.oid in
      d.stack <-
        {
          oid = id;
          oparent = parent;
          oname = name;
          ophase = phase;
          ostart = s.clock ();
          oattrs = (match attrs with None -> [] | Some a -> a);
        }
        :: d.stack;
      id

let span_end ?attrs id =
  if id <> 0 then
    match (Atomic.get current, Atomic.get recorder) with
    | None, None -> ()
    | cur, rec_ ->
        let d = dstate_for cur rec_ in
        let s = primary cur rec_ in
        (* Only unwind if the span is actually open on this domain (a
           sink swapped mid-span leaves orphan ids; a span opened on
           another domain lives on *that* domain's stack).  Children
           left open above [id] are auto-closed at the same timestamp so
           the record stream stays well-nested even under exceptions. *)
        if List.exists (fun o -> o.oid = id) d.stack then begin
          let end_ns = s.clock () in
          let extra = match attrs with None -> [] | Some a -> a in
          let rec close () =
            match d.stack with
            | [] -> ()
            | o :: rest ->
                d.stack <- rest;
                emit_both d
                  (Span
                     {
                       id = o.oid;
                       parent = o.oparent;
                       name = o.oname;
                       phase = o.ophase;
                       domain = (Domain.self () :> int);
                       start_ns = o.ostart;
                       end_ns;
                       attrs =
                         (if o.oid = id then o.oattrs @ extra else o.oattrs);
                     });
                if o.oid <> id then close ()
          in
          close ()
        end
        else
          (* Cross-domain (or stale) close: record the attempt instead
             of silently dropping it - see the module comment's rule. *)
          emit_both d
            (Event
               {
                 ename = "cross-domain-span-end";
                 ephase = "trace";
                 edomain = (Domain.self () :> int);
                 ts_ns = s.clock ();
                 eattrs =
                   (("span", Int id)
                   :: (match attrs with None -> [] | Some a -> a));
               })

let instant ?attrs ~phase name =
  match (Atomic.get current, Atomic.get recorder) with
  | None, None -> ()
  | cur, rec_ ->
      let d = dstate_for cur rec_ in
      let s = primary cur rec_ in
      emit_both d
        (Event
           {
             ename = name;
             ephase = phase;
             edomain = (Domain.self () :> int);
             ts_ns = s.clock ();
             eattrs = (match attrs with None -> [] | Some a -> a);
           })

let with_span ?attrs ~phase name f =
  if not (installed () || recorder_installed ()) then f ()
  else begin
    let id = span_begin ?attrs ~phase name in
    match f () with
    | v ->
        span_end id;
        v
    | exception e ->
        span_end ~attrs:[ ("error", Str (Printexc.to_string e)) ] id;
        raise e
  end

(* --- Cross-domain contexts and flow events ------------------------------- *)

let new_context () =
  match (Atomic.get current, Atomic.get recorder) with
  | None, None -> null_context
  | cur, rec_ ->
      let d = dstate_for cur rec_ in
      let parent = match d.stack with [] -> 0 | o :: _ -> o.oid in
      { trace_id = Atomic.fetch_and_add flow_ids 1 + 1; parent_span = parent }

let flow ?attrs dir ~phase (ctx : context) name =
  if ctx.trace_id <> 0 then
    match (Atomic.get current, Atomic.get recorder) with
    | None, None -> ()
    | cur, rec_ ->
        let d = dstate_for cur rec_ in
        let s = primary cur rec_ in
        emit_both d
          (Flow
             {
               fdir = dir;
               fid = ctx.trace_id;
               fname = name;
               fphase = phase;
               fdomain = (Domain.self () :> int);
               fts_ns = s.clock ();
               fattrs = (match attrs with None -> [] | Some a -> a);
             })

let flow_start ?attrs ~phase ctx name = flow ?attrs Flow_start ~phase ctx name
let flow_step ?attrs ~phase ctx name = flow ?attrs Flow_step ~phase ctx name
let flow_end ?attrs ~phase ctx name = flow ?attrs Flow_end ~phase ctx name

(* --- Collection ----------------------------------------------------------- *)

let ts_of = function
  | Span sp -> sp.start_ns
  | Event e -> e.ts_ns
  | Flow f -> f.fts_ns

let seq_of = function
  | Span sp -> sp.id
  | Event e -> e.ts_ns
  | Flow f -> f.fid

let buffer_records (b : buffer) =
  let cap = Array.length b.ring in
  let n = Stdlib.min b.next cap in
  let start = b.next - n in
  List.init n (fun i ->
      match b.ring.((start + i) mod cap) with
      | Some r -> r
      | None -> assert false)

let sink_records (s : sink) =
  Mutex.lock s.mu;
  let bufs = s.buffers in
  Mutex.unlock s.mu;
  List.concat_map buffer_records bufs
  |> List.stable_sort (fun a b ->
         let c = compare (ts_of a) (ts_of b) in
         if c <> 0 then c else compare (seq_of a) (seq_of b))

let sink_dropped (s : sink) =
  Mutex.lock s.mu;
  let bufs = s.buffers in
  Mutex.unlock s.mu;
  List.fold_left
    (fun acc b -> acc + Stdlib.max 0 (b.next - s.capacity))
    0 bufs

let records () =
  match Atomic.get current with None -> [] | Some s -> sink_records s

let dropped () =
  match Atomic.get current with None -> 0 | Some s -> sink_dropped s

let recorder_records () =
  match Atomic.get recorder with None -> [] | Some s -> sink_records s

let recorder_dropped () =
  match Atomic.get recorder with None -> 0 | Some s -> sink_dropped s

let open_spans () =
  match (Atomic.get current, Atomic.get recorder) with
  | None, None -> 0
  | cur, rec_ -> List.length (dstate_for cur rec_).stack

let uninstall () =
  let rs = records () in
  Atomic.set current None;
  rs

let recorder_uninstall () =
  let rs = recorder_records () in
  Atomic.set recorder None;
  rs
