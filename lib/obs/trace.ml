(* Structured trace spans and events.

   One global sink (installed by the CLI's --trace, the `trace` command,
   or a test) collects records into *per-domain ring buffers*: each
   emitting domain lazily registers its own fixed-capacity buffer, writes
   to it without any synchronization, and the buffers only meet at
   collection time.  Concurrent emitters therefore can never interleave
   or corrupt each other's records - the QCheck property in
   test_obs.ml leans on exactly this structure.

   Zero cost when disabled: every entry point first reads the sink
   atomic; with no sink installed, [span_begin] returns 0, [span_end 0]
   and [instant] return immediately, and none of them allocates (the
   timestamps are plain ints, the optional [?attrs] defaults to an
   immediate [None]).  Hot paths (the executor's per-kernel loop) guard
   on [enabled ()] / a zero span id and so pay one atomic load per
   kernel when tracing is off - verified by the allocation test.

   Span identity: ids come from one atomic counter (0 is reserved for
   "no span"); parentage is tracked with a per-domain stack, so spans
   nest per domain and a span opened on a worker domain starts a fresh
   root there (its records still carry the domain id, which becomes the
   Chrome-trace tid). *)

type value = Int of int | Float of float | Str of string | Bool of bool
type attrs = (string * value) list

type span = {
  id : int;
  parent : int; (* 0 = root *)
  name : string;
  phase : string;
  domain : int;
  start_ns : int;
  end_ns : int;
  attrs : attrs;
}

type event = {
  ename : string;
  ephase : string;
  edomain : int;
  ts_ns : int;
  eattrs : attrs;
}

type record = Span of span | Event of event

(* --- Sink and per-domain buffers ---------------------------------------- *)

type buffer = {
  dom : int;
  ring : record option array;
  mutable next : int; (* total records ever emitted on this domain *)
}

type sink = {
  clock : Clock.t;
  capacity : int;
  mutable buffers : buffer list; (* registration under [mu]; emission is
                                    single-domain and lock-free *)
  mu : Mutex.t;
  ids : int Atomic.t;
}

let current : sink option Atomic.t = Atomic.make None

let install ?(clock = Clock.wall_ns) ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.install: capacity must be > 0";
  Atomic.set current
    (Some
       {
         clock;
         capacity;
         buffers = [];
         mu = Mutex.create ();
         ids = Atomic.make 0;
       })

let installed () =
  match Atomic.get current with None -> false | Some _ -> true

let enabled = installed

(* --- Domain-local emission state ---------------------------------------- *)

type open_span = {
  oid : int;
  oparent : int;
  oname : string;
  ophase : string;
  ostart : int;
  oattrs : attrs;
}

type dstate = { owner : sink; buf : buffer; mutable stack : open_span list }

let dls : dstate option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* The domain's buffer under [s]; registered on first use.  A reinstalled
   sink is detected by physical identity, so stale state from a previous
   sink is abandoned rather than mixed in. *)
let dstate_for (s : sink) : dstate =
  let cell = Domain.DLS.get dls in
  match !cell with
  | Some d when d.owner == s -> d
  | _ ->
      let buf =
        {
          dom = (Domain.self () :> int);
          ring = Array.make s.capacity None;
          next = 0;
        }
      in
      Mutex.lock s.mu;
      s.buffers <- buf :: s.buffers;
      Mutex.unlock s.mu;
      let d = { owner = s; buf; stack = [] } in
      cell := Some d;
      d

let emit (b : buffer) (r : record) =
  b.ring.(b.next mod Array.length b.ring) <- Some r;
  b.next <- b.next + 1

(* --- Emission ------------------------------------------------------------ *)

let span_begin ?attrs ~phase name =
  match Atomic.get current with
  | None -> 0
  | Some s ->
      let d = dstate_for s in
      let id = Atomic.fetch_and_add s.ids 1 + 1 in
      let parent = match d.stack with [] -> 0 | o :: _ -> o.oid in
      d.stack <-
        {
          oid = id;
          oparent = parent;
          oname = name;
          ophase = phase;
          ostart = s.clock ();
          oattrs = (match attrs with None -> [] | Some a -> a);
        }
        :: d.stack;
      id

let span_end ?attrs id =
  if id <> 0 then
    match Atomic.get current with
    | None -> ()
    | Some s ->
        let d = dstate_for s in
        (* Only act if the span is actually open on this domain (a sink
           swapped mid-span leaves orphan ids; ignore them).  Children
           left open above [id] are auto-closed at the same timestamp so
           the record stream stays well-nested even under exceptions. *)
        if List.exists (fun o -> o.oid = id) d.stack then begin
          let end_ns = s.clock () in
          let extra = match attrs with None -> [] | Some a -> a in
          let rec close () =
            match d.stack with
            | [] -> ()
            | o :: rest ->
                d.stack <- rest;
                emit d.buf
                  (Span
                     {
                       id = o.oid;
                       parent = o.oparent;
                       name = o.oname;
                       phase = o.ophase;
                       domain = d.buf.dom;
                       start_ns = o.ostart;
                       end_ns;
                       attrs =
                         (if o.oid = id then o.oattrs @ extra else o.oattrs);
                     });
                if o.oid <> id then close ()
          in
          close ()
        end

let instant ?attrs ~phase name =
  match Atomic.get current with
  | None -> ()
  | Some s ->
      let d = dstate_for s in
      emit d.buf
        (Event
           {
             ename = name;
             ephase = phase;
             edomain = d.buf.dom;
             ts_ns = s.clock ();
             eattrs = (match attrs with None -> [] | Some a -> a);
           })

let with_span ?attrs ~phase name f =
  if not (installed ()) then f ()
  else begin
    let id = span_begin ?attrs ~phase name in
    match f () with
    | v ->
        span_end id;
        v
    | exception e ->
        span_end ~attrs:[ ("error", Str (Printexc.to_string e)) ] id;
        raise e
  end

(* --- Collection ----------------------------------------------------------- *)

let ts_of = function Span sp -> sp.start_ns | Event e -> e.ts_ns
let seq_of = function Span sp -> sp.id | Event e -> e.ts_ns

let buffer_records (b : buffer) =
  let cap = Array.length b.ring in
  let n = Stdlib.min b.next cap in
  let start = b.next - n in
  List.init n (fun i ->
      match b.ring.((start + i) mod cap) with
      | Some r -> r
      | None -> assert false)

let records () =
  match Atomic.get current with
  | None -> []
  | Some s ->
      Mutex.lock s.mu;
      let bufs = s.buffers in
      Mutex.unlock s.mu;
      List.concat_map buffer_records bufs
      |> List.stable_sort (fun a b ->
             let c = compare (ts_of a) (ts_of b) in
             if c <> 0 then c else compare (seq_of a) (seq_of b))

let dropped () =
  match Atomic.get current with
  | None -> 0
  | Some s ->
      Mutex.lock s.mu;
      let bufs = s.buffers in
      Mutex.unlock s.mu;
      List.fold_left
        (fun acc b -> acc + Stdlib.max 0 (b.next - s.capacity))
        0 bufs

let open_spans () =
  match Atomic.get current with
  | None -> 0
  | Some s -> List.length (dstate_for s).stack

let uninstall () =
  let rs = records () in
  Atomic.set current None;
  rs
