(* A minimal strict JSON parser.

   The tree has no JSON library (DESIGN.md dependency policy), but the
   Chrome-trace exporter's output must be provably loadable by real
   consumers (Perfetto, chrome://tracing, python -m json).  This parser
   exists to close that loop in-process: the `trace --check` CLI path and
   the test suite parse the emitted file with it and then assert on the
   structure.  It accepts exactly the JSON grammar (RFC 8259) minus
   number edge cases nobody emits: no NaN/Infinity literals, no
   trailing commas, no comments. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "%s at %d" m !pos))) fmt
  in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let next () =
    let c = peek () in
    incr pos;
    c
  in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then incr pos else fail "expected %C, got %C" c (peek ())
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' -> (
          (match next () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape %S" hex
              in
              (* BMP-only decoding is enough for our own output *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else Buffer.add_string b (Printf.sprintf "\\u%s" hex)
          | c -> fail "bad escape %C" c);
          go ())
      | '\255' -> fail "unterminated string"
      | c when Char.code c < 0x20 -> fail "unescaped control %C" c
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while peek () >= '0' && peek () <= '9' do
        incr pos
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
    | 'e' | 'E' ->
        incr pos;
        (match peek () with '+' | '-' -> incr pos | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail "bad number %S" text
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        incr pos;
        skip_ws ();
        if peek () = '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> Obj (List.rev ((k, v) :: acc))
            | c -> fail "expected ',' or '}', got %C" c
          in
          members []
    | '[' ->
        incr pos;
        skip_ws ();
        if peek () = ']' then begin
          incr pos;
          Arr []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> elems (v :: acc)
            | ']' -> Arr (List.rev (v :: acc))
            | c -> fail "expected ',' or ']', got %C" c
          in
          elems []
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | '-' | '0' .. '9' -> parse_number ()
    | c -> fail "unexpected %C" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad m -> Error m

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let as_arr = function Arr l -> Some l | _ -> None
let as_str = function Str s -> Some s | _ -> None
let as_num = function Num f -> Some f | _ -> None
