(** Structured trace spans, events and cross-domain flows, collected
    into per-domain ring buffers behind one globally installed sink,
    plus an independent always-on {e flight recorder} sink reusing the
    same ring machinery.

    Zero-cost when disabled: with neither sink installed every entry
    point returns immediately without allocating ([span_begin] returns
    the reserved id 0, [new_context] the shared {!null_context}).
    Emission is lock-free within a domain - each domain owns its buffer
    per sink - so concurrent emitters never corrupt each other's
    records.

    {b Cross-domain rule.}  Spans are domain-local: the parent of a new
    span is the innermost span still open on the {e calling} domain, and
    a span must be closed on the domain that opened it.  Calling
    {!span_end} on a different domain never touches the opening domain's
    stack (that would race); it emits a ["cross-domain-span-end"]
    diagnostic instant (phase ["trace"], the id in attrs) instead of
    silently dropping the close, and the opening domain's copy is
    auto-closed when its own enclosing span ends.  {!with_span} opens
    and closes on one domain by construction, so it is safe to wrap work
    that may be {e stolen} by another domain (the worker pool's
    wedge-steal path): the stealing domain starts fresh root spans and
    the two sides are linked by flow events through a {!context} that
    travels with the request, not by a shared span stack. *)

type value = Int of int | Float of float | Str of string | Bool of bool
type attrs = (string * value) list

type span = {
  id : int;
  parent : int;  (** 0 = root (no enclosing span on this domain) *)
  name : string;
  phase : string;  (** coarse category: compile / exec / cache / fault... *)
  domain : int;  (** emitting domain, the Chrome-trace tid *)
  start_ns : int;
  end_ns : int;
  attrs : attrs;
}

type event = {
  ename : string;
  ephase : string;
  edomain : int;
  ts_ns : int;
  eattrs : attrs;
}

type flow_dir = Flow_start | Flow_step | Flow_end
(** Chrome-trace flow phases ["s"] / ["t"] / ["f"]: the arrows that link
    spans across domains (tids) in Perfetto. *)

type flow = {
  fdir : flow_dir;
  fid : int;  (** flow id: all arrows of one request share it *)
  fname : string;
  fphase : string;
  fdomain : int;
  fts_ns : int;
  fattrs : attrs;
}

type record = Span of span | Event of event | Flow of flow

type context = { trace_id : int; parent_span : int }
(** A request-scoped trace context that rides across domain boundaries
    (on [Request.t]): [trace_id] is the flow id joining the request's
    arrow chain, [parent_span] the span that was innermost when the
    context was minted (the client-side submit span).  [trace_id = 0]
    means "not traced" - every flow emitter is then a no-op. *)

val null_context : context
(** The disabled context ([trace_id = 0]); preallocated, so propagating
    it allocates nothing. *)

val install : ?clock:Clock.t -> ?capacity:int -> unit -> unit
(** Install a fresh trace sink (replacing any previous one).  [clock]
    defaults to {!Clock.wall_ns}; [capacity] (default 65536) bounds each
    domain's ring buffer - overflow overwrites the oldest records and is
    counted by {!dropped}.  @raise Invalid_argument if [capacity <= 0]. *)

val uninstall : unit -> record list
(** Remove the trace sink, returning everything collected. *)

val installed : unit -> bool

val enabled : unit -> bool
(** Alias of {!installed}; the guard hot paths use before building
    attribute lists. *)

val active : unit -> bool
(** True when the trace sink {e or} the recorder is installed - the
    guard for lifecycle instrumentation that must also reach a
    recorder-only (black-box) setup. *)

val recorder_install : ?clock:Clock.t -> ?capacity:int -> unit -> unit
(** Install the flight recorder: an independent sink that receives a
    copy of every record (spans, instants, flows) whether or not a trace
    sink is installed.  [capacity] defaults to 4096 - a small bounded
    ring per domain holding the last events before an incident.
    @raise Invalid_argument if [capacity <= 0]. *)

val recorder_uninstall : unit -> record list
val recorder_installed : unit -> bool

val recorder_records : unit -> record list
(** The recorder's current contents without uninstalling it - what an
    incident dump snapshots (merged across domains, sorted). *)

val recorder_dropped : unit -> int

val span_begin : ?attrs:attrs -> phase:string -> string -> int
(** Open a span on the calling domain; returns its id (0 when disabled).
    The parent is the innermost span still open on this domain. *)

val span_end : ?attrs:attrs -> int -> unit
(** Close the span (extra [attrs] are appended).  Children left open are
    auto-closed at the same timestamp; id 0 is a no-op.  An id not open
    on the calling domain (closed cross-domain, or orphaned by a sink
    swap) emits a ["cross-domain-span-end"] diagnostic instant - see the
    cross-domain rule above. *)

val instant : ?attrs:attrs -> phase:string -> string -> unit
(** Emit a point event. *)

val with_span : ?attrs:attrs -> phase:string -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  An escaping exception closes the span
    with an ["error"] attribute and re-raises.  Opens and closes on the
    calling domain, so it is safe around work whose {e requests} migrate
    to other domains (steal paths) - see the cross-domain rule. *)

val new_context : unit -> context
(** Mint a context for a request: a fresh flow id (never reused, even
    across sink reinstalls) and the calling domain's innermost open span
    as [parent_span].  Returns {!null_context} when disabled. *)

val flow_start : ?attrs:attrs -> phase:string -> context -> string -> unit
(** Emit the flow-start arrow ([ph:"s"]).  Call inside the span the
    arrow should leave from (the submit span).  No-op on
    {!null_context}. *)

val flow_step : ?attrs:attrs -> phase:string -> context -> string -> unit
(** A flow step ([ph:"t"]): the arrow passes through the enclosing span
    on this domain (dispatch, retry, steal hops). *)

val flow_end : ?attrs:attrs -> phase:string -> context -> string -> unit
(** Terminate the flow ([ph:"f"]) inside the span where the request
    completed.  Every started flow should be ended exactly once - the
    span-chain QCheck property asserts this. *)

val records : unit -> record list
(** Everything collected so far, merged across domains and sorted by
    timestamp (span start).  Spans still open are not included.  Call
    after the traced work has quiesced; emission concurrent with
    collection may miss the newest records. *)

val dropped : unit -> int
(** Records lost to ring-buffer overflow, summed over domains. *)

val open_spans : unit -> int
(** Spans currently open on the calling domain (tests use this to assert
    balanced begin/end). *)
