(** Structured trace spans and events, collected into per-domain ring
    buffers behind one globally installed sink.

    Zero-cost when disabled: with no sink installed every entry point
    returns immediately without allocating ([span_begin] returns the
    reserved id 0).  Emission is lock-free within a domain - each domain
    owns its buffer - so concurrent emitters never corrupt each other's
    records. *)

type value = Int of int | Float of float | Str of string | Bool of bool
type attrs = (string * value) list

type span = {
  id : int;
  parent : int;  (** 0 = root (no enclosing span on this domain) *)
  name : string;
  phase : string;  (** coarse category: compile / exec / cache / fault... *)
  domain : int;  (** emitting domain, the Chrome-trace tid *)
  start_ns : int;
  end_ns : int;
  attrs : attrs;
}

type event = {
  ename : string;
  ephase : string;
  edomain : int;
  ts_ns : int;
  eattrs : attrs;
}

type record = Span of span | Event of event

val install : ?clock:Clock.t -> ?capacity:int -> unit -> unit
(** Install a fresh sink (replacing any previous one).  [clock] defaults
    to {!Clock.wall_ns}; [capacity] (default 65536) bounds each domain's
    ring buffer - overflow overwrites the oldest records and is counted
    by {!dropped}.  @raise Invalid_argument if [capacity <= 0]. *)

val uninstall : unit -> record list
(** Remove the sink, returning everything collected (see {!records}). *)

val installed : unit -> bool

val enabled : unit -> bool
(** Alias of {!installed}; the guard hot paths use before building
    attribute lists. *)

val span_begin : ?attrs:attrs -> phase:string -> string -> int
(** Open a span on the calling domain; returns its id (0 when disabled).
    The parent is the innermost span still open on this domain. *)

val span_end : ?attrs:attrs -> int -> unit
(** Close the span (extra [attrs] are appended).  Children left open are
    auto-closed at the same timestamp; id 0 and unknown ids are no-ops. *)

val instant : ?attrs:attrs -> phase:string -> string -> unit
(** Emit a point event. *)

val with_span : ?attrs:attrs -> phase:string -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  An escaping exception closes the span
    with an ["error"] attribute and re-raises. *)

val records : unit -> record list
(** Everything collected so far, merged across domains and sorted by
    timestamp (span start).  Spans still open are not included.  Call
    after the traced work has quiesced; emission concurrent with
    collection may miss the newest records. *)

val dropped : unit -> int
(** Records lost to ring-buffer overflow, summed over domains. *)

val open_spans : unit -> int
(** Spans currently open on the calling domain (tests use this to assert
    balanced begin/end). *)
