(* Injectable clocks for the trace layer.

   Timestamps are plain [int] nanoseconds (63 bits cover ~292 years), so
   reading a clock never allocates - int64 would box on every read and
   break the zero-cost-when-disabled guarantee of the instrumentation.

   The wall clock is what production traces use; tests inject a manual
   clock whose every read advances by a fixed step, which makes trace
   output byte-deterministic (each record gets a distinct, predictable
   timestamp with no reliance on the host). *)

type t = unit -> int

let wall_ns : t = fun () -> int_of_float (Unix.gettimeofday () *. 1e9)

(* A deterministic clock: every read returns the current value and
   advances by [step].  Backed by an atomic so concurrent domains can
   share one manual clock without torn reads (each still gets a unique
   timestamp). *)
type manual = { cell : int Atomic.t; step : int }

let manual ?(start = 0) ?(step = 1_000) () =
  if step <= 0 then invalid_arg "Clock.manual: step must be > 0";
  { cell = Atomic.make start; step }

let read (m : manual) : t = fun () -> Atomic.fetch_and_add m.cell m.step
let advance m ns = ignore (Atomic.fetch_and_add m.cell ns)
let now m = Atomic.get m.cell
