(* Human-readable roll-up of a trace: spans aggregated by (phase, name)
   with count / total / mean / min / max wall time, events and flows by
   (phase, name) with counts.  The cheap complement to the Chrome
   exporter when there is no Perfetto at hand.

   Ordering is deterministic across runs and domain interleavings: rows
   sort by total time (then count) descending with the (phase, name) key
   as the final tie-break, so two runs that collected the same spans in
   a different cross-domain order print identical tables. *)

type srow = {
  mutable count : int;
  mutable total_ns : int;
  mutable min_ns : int;
  mutable max_ns : int;
}

let pp ppf (records : Trace.record list) =
  let spans : (string * string, srow) Hashtbl.t = Hashtbl.create 32 in
  let events : (string * string, int ref) Hashtbl.t = Hashtbl.create 16 in
  let count_event key =
    match Hashtbl.find_opt events key with
    | Some n -> incr n
    | None -> Hashtbl.add events key (ref 1)
  in
  List.iter
    (fun r ->
      match r with
      | Trace.Span sp ->
          let key = (sp.Trace.phase, sp.Trace.name) in
          let row =
            match Hashtbl.find_opt spans key with
            | Some row -> row
            | None ->
                let row =
                  { count = 0; total_ns = 0; min_ns = max_int; max_ns = 0 }
                in
                Hashtbl.add spans key row;
                row
          in
          let d = Stdlib.max 0 (sp.Trace.end_ns - sp.Trace.start_ns) in
          row.count <- row.count + 1;
          row.total_ns <- row.total_ns + d;
          row.min_ns <- Stdlib.min row.min_ns d;
          row.max_ns <- Stdlib.max row.max_ns d
      | Trace.Event e -> count_event (e.Trace.ephase, e.Trace.ename)
      | Trace.Flow f ->
          (* One request emits several arrows; counting them by name
             keeps the roll-up honest about flow volume without a third
             table. *)
          count_event (f.Trace.fphase, "flow:" ^ f.Trace.fname))
    records;
  let srows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) spans [] in
  let srows =
    List.sort
      (fun (ka, a) (kb, b) ->
        compare (b.total_ns, b.count, ka) (a.total_ns, a.count, kb))
      srows
  in
  let us ns = float_of_int ns /. 1e3 in
  Format.fprintf ppf "@[<v>trace summary: %d span kinds, %d event kinds@,"
    (List.length srows) (Hashtbl.length events);
  if srows <> [] then begin
    Format.fprintf ppf "  %-22s %-28s %6s %12s %12s %12s %12s@," "phase"
      "span" "count" "total_us" "mean_us" "min_us" "max_us";
    List.iter
      (fun ((phase, name), row) ->
        let mean_ns =
          if row.count = 0 then 0 else row.total_ns / row.count
        in
        let min_ns = if row.min_ns = max_int then 0 else row.min_ns in
        Format.fprintf ppf "  %-22s %-28s %6d %12.1f %12.1f %12.1f %12.1f@,"
          phase name row.count (us row.total_ns) (us mean_ns) (us min_ns)
          (us row.max_ns))
      srows
  end;
  if Hashtbl.length events > 0 then begin
    let erows = Hashtbl.fold (fun k n acc -> (k, !n) :: acc) events [] in
    let erows =
      List.sort (fun (ka, na) (kb, nb) -> compare (nb, ka) (na, kb)) erows
    in
    Format.fprintf ppf "  %-22s %-28s %6s@," "phase" "event" "count";
    List.iter
      (fun ((phase, name), n) ->
        Format.fprintf ppf "  %-22s %-28s %6d@," phase name n)
      erows
  end;
  Format.fprintf ppf "@]"

let to_string records = Format.asprintf "%a" pp records
