(* Human-readable roll-up of a trace: spans aggregated by (phase, name)
   with count / total / max wall time, events by (phase, name) with
   counts.  The cheap complement to the Chrome exporter when there is no
   Perfetto at hand. *)

type srow = {
  mutable count : int;
  mutable total_ns : int;
  mutable max_ns : int;
}

let pp ppf (records : Trace.record list) =
  let spans : (string * string, srow) Hashtbl.t = Hashtbl.create 32 in
  let events : (string * string, int ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match r with
      | Trace.Span sp ->
          let key = (sp.Trace.phase, sp.Trace.name) in
          let row =
            match Hashtbl.find_opt spans key with
            | Some row -> row
            | None ->
                let row = { count = 0; total_ns = 0; max_ns = 0 } in
                Hashtbl.add spans key row;
                row
          in
          let d = Stdlib.max 0 (sp.Trace.end_ns - sp.Trace.start_ns) in
          row.count <- row.count + 1;
          row.total_ns <- row.total_ns + d;
          row.max_ns <- Stdlib.max row.max_ns d
      | Trace.Event e ->
          let key = (e.Trace.ephase, e.Trace.ename) in
          (match Hashtbl.find_opt events key with
          | Some n -> incr n
          | None -> Hashtbl.add events key (ref 1)))
    records;
  let srows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) spans [] in
  let srows =
    List.sort
      (fun (_, a) (_, b) -> compare (b.total_ns, b.count) (a.total_ns, a.count))
      srows
  in
  let us ns = float_of_int ns /. 1e3 in
  Format.fprintf ppf "@[<v>trace summary: %d span kinds, %d event kinds@,"
    (List.length srows) (Hashtbl.length events);
  if srows <> [] then begin
    Format.fprintf ppf "  %-22s %-28s %6s %12s %12s@," "phase" "span" "count"
      "total_us" "max_us";
    List.iter
      (fun ((phase, name), row) ->
        Format.fprintf ppf "  %-22s %-28s %6d %12.1f %12.1f@," phase name
          row.count (us row.total_ns) (us row.max_ns))
      srows
  end;
  if Hashtbl.length events > 0 then begin
    let erows = Hashtbl.fold (fun k n acc -> (k, !n) :: acc) events [] in
    let erows =
      List.sort (fun (ka, na) (kb, nb) -> compare (nb, ka) (na, kb)) erows
    in
    Format.fprintf ppf "  %-22s %-28s %6s@," "phase" "event" "count";
    List.iter
      (fun ((phase, name), n) ->
        Format.fprintf ppf "  %-22s %-28s %6d@," phase name n)
      erows
  end;
  Format.fprintf ppf "@]"

let to_string records = Format.asprintf "%a" pp records
