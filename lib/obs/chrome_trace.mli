(** Chrome trace-event JSON exporter (loadable in Perfetto and
    chrome://tracing).  Spans become complete events ("ph":"X") with
    microsecond ts/dur, instants become "ph":"i", cross-domain flows
    become flow events ("ph":"s"/"t"/"f" with the flow id in "id" - the
    arrows Perfetto draws between tids); the emitting domain is the tid,
    span/parent ids travel in [args]. *)

val to_string : ?process_name:string -> Trace.record list -> string
val to_buffer : Buffer.t -> ?process_name:string -> Trace.record list -> unit
val to_file : path:string -> ?process_name:string -> Trace.record list -> unit
