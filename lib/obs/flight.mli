(** Black-box flight-recorder dumps.

    The bounded per-domain ring itself is {!Trace}'s recorder sink; this
    module owns the dump policy.  [arm ~dir ()] installs the recorder
    and directs incident dumps into [dir]; from then on every
    {!incident} emits a phase-["incident"] instant (so the trigger is
    inside its own dump) and snapshots the ring into a self-contained
    Chrome-trace file [incident-NNN-<reason>.json].  A dump [limit]
    (default 32) bounds file spam under chaos; suppressed incidents are
    counted.  All state is global, like the recorder sink - incident
    sites live deep inside the scheduler and worker pool. *)

val arm : ?capacity:int -> ?limit:int -> dir:string -> unit -> unit
(** Install the recorder ring ([capacity] per domain, default 4096) and
    enable dumps into [dir], which must already exist.  Resets the dump
    sequence, suppression counter and path list. *)

val disarm : unit -> unit
(** Disable dumps and uninstall the recorder ring. *)

val armed : unit -> bool

val incident : ?attrs:Trace.attrs -> reason:string -> unit -> string option
(** Record an incident: emits the marker instant (even when only a trace
    sink is installed), then - if armed and under the limit - dumps the
    recorder to a fresh file and returns its path. *)

val dump_paths : unit -> string list
(** Paths written since {!arm}, oldest first. *)

val suppressed : unit -> int
(** Incidents that produced no dump because the limit was reached. *)
