(* Metrics registry: counters, gauges and log-bucketed histograms.

   Unlike the trace layer (off unless a sink is installed), metrics are
   always on: every update is a single atomic read-modify-write with no
   allocation, cheap enough for compile- and cache-path instrumentation
   to bump unconditionally.  Registration (name -> metric) goes through
   a mutex and is get-or-create, so instrumented modules can look their
   metrics up lazily and share them across call sites.

   Histograms use geometric buckets with ratio 2^(1/4) (~19% wide, so a
   quantile estimate is within ~9.5% of the true sample), covering
   ~1e-9 .. ~1.5e12; observations outside clamp to the edge buckets.
   Every bucket is an atomic counter, so concurrent domains can observe
   into one histogram; quantiles are computed from the bucket counts at
   read time (p50/p95/p99 in the serving bench and text summaries). *)

type counter = { cname : string; c : int Atomic.t }
type gauge = { gname : string; g : float Atomic.t }

let nbuckets = 283
let offset = 120
let log_gamma = 0.25 *. Float.log 2.

type histogram = {
  hname : string;
  buckets : int Atomic.t array;
  hcount : int Atomic.t;
  sum_milli : int Atomic.t; (* fixed-point sum, 1/1000 units *)
  min_milli : int Atomic.t; (* exact extrema (CAS), not bucket-rounded; *)
  max_milli : int Atomic.t; (* max_int / min_int = "no finite sample yet" *)
}

type metric = C of counter | G of gauge | H of histogram

type t = { mu : Mutex.t; tbl : (string, metric) Hashtbl.t }

let create () = { mu = Mutex.create (); tbl = Hashtbl.create 64 }
let default = create ()

let register t name make classify =
  Mutex.lock t.mu;
  let m =
    match Hashtbl.find_opt t.tbl name with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.replace t.tbl name m;
        m
  in
  Mutex.unlock t.mu;
  match classify m with
  | Some x -> x
  | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered as another kind"
           name)

let counter t name =
  register t name
    (fun () -> C { cname = name; c = Atomic.make 0 })
    (function C c -> Some c | _ -> None)

let inc c = ignore (Atomic.fetch_and_add c.c 1)
let add c n = ignore (Atomic.fetch_and_add c.c n)
let value c = Atomic.get c.c

let gauge t name =
  register t name
    (fun () -> G { gname = name; g = Atomic.make 0. })
    (function G g -> Some g | _ -> None)

let set g v = Atomic.set g.g v

let set_max g v =
  let rec go () =
    let cur = Atomic.get g.g in
    if v > cur && not (Atomic.compare_and_set g.g cur v) then go ()
  in
  go ()

let gauge_value g = Atomic.get g.g

let histogram t name =
  register t name
    (fun () ->
      H
        {
          hname = name;
          buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
          hcount = Atomic.make 0;
          sum_milli = Atomic.make 0;
          min_milli = Atomic.make max_int;
          max_milli = Atomic.make min_int;
        })
    (function H h -> Some h | _ -> None)

let bucket_index v =
  if not (Float.is_finite v) || v <= 0. then 0
  else
    let i = offset + int_of_float (Float.floor (Float.log v /. log_gamma)) in
    if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

(* Geometric midpoint of bucket [i] - the representative a quantile
   query returns.  Bucket 0 is the underflow bucket (zero, negative and
   non-finite observations); its representative is exactly 0., so a
   histogram of all-zero latencies reports p50 = 0 rather than a
   nonsensical 1e-9. *)
let bucket_value i =
  if i = 0 then 0.
  else Float.exp (log_gamma *. (float_of_int (i - offset) +. 0.5))

let rec cas_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then cas_min a v

let rec cas_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then cas_max a v

let observe h v =
  ignore (Atomic.fetch_and_add h.buckets.(bucket_index v) 1);
  ignore (Atomic.fetch_and_add h.hcount 1);
  (* NaN/infinite observations land in an edge bucket above; keep them
     out of the fixed-point sum and extrema too (int_of_float nan is
     unspecified). *)
  if Float.is_finite v then begin
    let milli = int_of_float (Float.round (v *. 1000.)) in
    ignore (Atomic.fetch_and_add h.sum_milli milli);
    cas_min h.min_milli milli;
    cas_max h.max_milli milli
  end

let hist_min h =
  let m = Atomic.get h.min_milli in
  if m = max_int then 0. else float_of_int m /. 1000.

let hist_max h =
  let m = Atomic.get h.max_milli in
  if m = min_int then 0. else float_of_int m /. 1000.

let hist_count h = Atomic.get h.hcount
let hist_sum h = float_of_int (Atomic.get h.sum_milli) /. 1000.

let hist_mean h =
  let n = hist_count h in
  if n = 0 then 0. else hist_sum h /. float_of_int n

(* Quantiles must be total: an empty histogram (a serving run that shed
   every request, a bench leg that never sampled) answers 0 for every q,
   and a NaN q clamps like an out-of-range one instead of poisoning the
   rank arithmetic. *)
let quantile h q =
  let total = hist_count h in
  if total = 0 then 0.
  else begin
    let q = if Float.is_nan q then 1. else q in
    let q = Float.max 0. (Float.min 1. q) in
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int total)))
    in
    let rec go i cum =
      if i >= nbuckets then bucket_value (nbuckets - 1)
      else
        let cum = cum + Atomic.get h.buckets.(i) in
        if cum >= rank then bucket_value i else go (i + 1) cum
    in
    go 0 0
  end

(* --- Snapshots and reporting --------------------------------------------- *)

type sample =
  | Counter_s of { name : string; count : int }
  | Gauge_s of { name : string; level : float }
  | Hist_s of {
      name : string;
      n : int;
      total : float;
      mean : float;
      min : float;
      max : float;
      p50 : float;
      p95 : float;
      p99 : float;
    }

let sample_name = function
  | Counter_s { name; _ } | Gauge_s { name; _ } | Hist_s { name; _ } -> name

let snapshot t =
  Mutex.lock t.mu;
  let items = Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.tbl [] in
  Mutex.unlock t.mu;
  items
  |> List.map (fun (name, m) ->
         match m with
         | C c -> Counter_s { name; count = value c }
         | G g -> Gauge_s { name; level = gauge_value g }
         | H h ->
             Hist_s
               {
                 name;
                 n = hist_count h;
                 total = hist_sum h;
                 mean = hist_mean h;
                 min = hist_min h;
                 max = hist_max h;
                 p50 = quantile h 0.5;
                 p95 = quantile h 0.95;
                 p99 = quantile h 0.99;
               })
  |> List.sort (fun a b -> compare (sample_name a) (sample_name b))

let reset t =
  Mutex.lock t.mu;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> Atomic.set c.c 0
      | G g -> Atomic.set g.g 0.
      | H h ->
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.hcount 0;
          Atomic.set h.sum_milli 0;
          Atomic.set h.min_milli max_int;
          Atomic.set h.max_milli min_int)
    t.tbl;
  Mutex.unlock t.mu

let pp fmt t =
  let samples = snapshot t in
  Format.fprintf fmt "@[<v>metrics (%d registered):" (List.length samples);
  List.iter
    (fun s ->
      match s with
      | Counter_s { name; count } ->
          Format.fprintf fmt "@,  %-36s %12d" name count
      | Gauge_s { name; level } ->
          Format.fprintf fmt "@,  %-36s %12.6g" name level
      | Hist_s { name; n; total; mean; min; max; p50; p95; p99 } ->
          Format.fprintf fmt
            "@,  %-36s n=%-8d sum=%-12.1f mean=%-10.2f min=%-10.2f \
             max=%-10.2f p50=%-10.2f p95=%-10.2f p99=%.2f"
            name n total mean min max p50 p95 p99)
    samples;
  Format.fprintf fmt "@]"
