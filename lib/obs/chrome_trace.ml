(* Chrome trace-event JSON exporter.

   Emits the "JSON object format" of the Trace Event spec, loadable in
   Perfetto (ui.perfetto.dev) and chrome://tracing:

     { "displayTimeUnit": "ms",
       "traceEvents": [
         {"name":"process_name","ph":"M","pid":1,"args":{"name":"astitch"}},
         {"name":"clustering","cat":"compile","ph":"X","pid":1,"tid":0,
          "ts":12.345,"dur":3.210,"args":{"span":4,"parent":1,...}},
         {"name":"degrade","cat":"fallback","ph":"i","s":"t","pid":1,
          "tid":0,"ts":15.000,"args":{...}} ] }

   Spans map to complete events ("ph":"X", microsecond ts/dur with
   nanosecond precision in the fraction), instants to "ph":"i"; the
   emitting domain becomes the tid, so parallel compiles render as one
   track per domain.  Span id and parent id travel in args - Perfetto
   nests "X" events by interval containment, which our per-domain span
   stack guarantees. *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_str b s =
  Buffer.add_char b '"';
  escape b s;
  Buffer.add_char b '"'

let add_value b = function
  | Trace.Int i -> Buffer.add_string b (string_of_int i)
  | Trace.Float f ->
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
      else add_str b (Float.to_string f)
  | Trace.Str s -> add_str b s
  | Trace.Bool v -> Buffer.add_string b (if v then "true" else "false")

(* args = span/parent bookkeeping + user attrs; later keys win is not a
   JSON guarantee, so bookkeeping keys are prefixed to avoid collision. *)
let add_args b extra attrs =
  Buffer.add_char b '{';
  let first = ref true in
  let field k v =
    if not !first then Buffer.add_char b ',';
    first := false;
    add_str b k;
    Buffer.add_char b ':';
    v ()
  in
  List.iter (fun (k, i) -> field k (fun () -> Buffer.add_string b (string_of_int i))) extra;
  List.iter (fun (k, v) -> field k (fun () -> add_value b v)) attrs;
  Buffer.add_char b '}'

let us ns = float_of_int ns /. 1e3

let add_record b = function
  | Trace.Span sp ->
      Buffer.add_string b "{\"name\":";
      add_str b sp.Trace.name;
      Buffer.add_string b ",\"cat\":";
      add_str b sp.Trace.phase;
      Buffer.add_string b ",\"ph\":\"X\",\"pid\":1,\"tid\":";
      Buffer.add_string b (string_of_int sp.Trace.domain);
      Buffer.add_string b (Printf.sprintf ",\"ts\":%.3f" (us sp.Trace.start_ns));
      Buffer.add_string b
        (Printf.sprintf ",\"dur\":%.3f"
           (us (Stdlib.max 0 (sp.Trace.end_ns - sp.Trace.start_ns))));
      Buffer.add_string b ",\"args\":";
      add_args b
        [ ("span", sp.Trace.id); ("parent", sp.Trace.parent) ]
        sp.Trace.attrs;
      Buffer.add_char b '}'
  | Trace.Event e ->
      Buffer.add_string b "{\"name\":";
      add_str b e.Trace.ename;
      Buffer.add_string b ",\"cat\":";
      add_str b e.Trace.ephase;
      Buffer.add_string b ",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":";
      Buffer.add_string b (string_of_int e.Trace.edomain);
      Buffer.add_string b (Printf.sprintf ",\"ts\":%.3f" (us e.Trace.ts_ns));
      Buffer.add_string b ",\"args\":";
      add_args b [] e.Trace.eattrs;
      Buffer.add_char b '}'
  | Trace.Flow f ->
      (* Flow arrows: same name/cat/id joins a chain; "f" binds to the
         enclosing slice ("bp":"e") so the arrow lands inside the span
         where the request completed. *)
      Buffer.add_string b "{\"name\":";
      add_str b f.Trace.fname;
      Buffer.add_string b ",\"cat\":";
      add_str b f.Trace.fphase;
      Buffer.add_string b ",\"ph\":";
      Buffer.add_string b
        (match f.Trace.fdir with
        | Trace.Flow_start -> "\"s\""
        | Trace.Flow_step -> "\"t\""
        | Trace.Flow_end -> "\"f\",\"bp\":\"e\"");
      Buffer.add_string b ",\"id\":";
      Buffer.add_string b (string_of_int f.Trace.fid);
      Buffer.add_string b ",\"pid\":1,\"tid\":";
      Buffer.add_string b (string_of_int f.Trace.fdomain);
      Buffer.add_string b (Printf.sprintf ",\"ts\":%.3f" (us f.Trace.fts_ns));
      Buffer.add_string b ",\"args\":";
      add_args b [] f.Trace.fattrs;
      Buffer.add_char b '}'

let to_buffer b ?(process_name = "astitch") (records : Trace.record list) =
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  Buffer.add_string b "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":";
  add_str b process_name;
  Buffer.add_string b "}}";
  List.iter
    (fun r ->
      Buffer.add_string b ",\n";
      add_record b r)
    records;
  Buffer.add_string b "\n]}\n"

let to_string ?process_name records =
  let b = Buffer.create 4096 in
  to_buffer b ?process_name records;
  Buffer.contents b

let to_file ~path ?process_name records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?process_name records))
