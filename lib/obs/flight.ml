(* Black-box flight-recorder dumps.

   The recorder ring itself lives in [Trace] (an independent sink teed a
   copy of every record); this module owns the *dump* policy: where
   incident files go, how many may be written before further incidents
   are suppressed (a chaos run can fire hundreds), and the incident
   marker event itself.  [incident] first emits a phase-["incident"]
   instant - so the triggering event is always inside the dump it
   produces - then snapshots the recorder into a self-contained
   Chrome-trace file.

   Everything is global state, mirroring the recorder sink: the serving
   runtime's incident sites (batch failure, quarantine, breaker-open,
   worker death, wedge-steal) sit deep inside the scheduler and worker
   pool, and threading a dump handle through them would couple every
   layer to observability plumbing. *)

let dump_dir : string option Atomic.t = Atomic.make None
let dump_limit : int Atomic.t = Atomic.make 32
let dump_seq : int Atomic.t = Atomic.make 0
let suppressed_n : int Atomic.t = Atomic.make 0
let mu = Mutex.create ()
let paths : string list ref = ref []

let arm ?capacity ?(limit = 32) ~dir () =
  Trace.recorder_install ?capacity ();
  Atomic.set dump_limit limit;
  Atomic.set dump_seq 0;
  Atomic.set suppressed_n 0;
  Mutex.lock mu;
  paths := [];
  Mutex.unlock mu;
  Atomic.set dump_dir (Some dir)

let disarm () =
  Atomic.set dump_dir None;
  ignore (Trace.recorder_uninstall ())

let armed () = Trace.recorder_installed ()

let dump_paths () =
  Mutex.lock mu;
  let ps = List.rev !paths in
  Mutex.unlock mu;
  ps

let suppressed () = Atomic.get suppressed_n

let sanitize reason =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' -> c | _ -> '-')
    reason

(* Snapshot the recorder into [dir] and remember the path.  Concurrent
   incidents on different domains each get a unique sequence number and
   write distinct files. *)
let dump ~reason =
  match Atomic.get dump_dir with
  | None -> None
  | Some dir when Trace.recorder_installed () ->
      let n = Atomic.fetch_and_add dump_seq 1 in
      if n >= Atomic.get dump_limit then begin
        Atomic.incr suppressed_n;
        None
      end
      else begin
        let path =
          Filename.concat dir
            (Printf.sprintf "incident-%03d-%s.json" n (sanitize reason))
        in
        Chrome_trace.to_file ~path ~process_name:"astitch-flight"
          (Trace.recorder_records ());
        Mutex.lock mu;
        paths := path :: !paths;
        Mutex.unlock mu;
        Some path
      end
  | Some _ -> None

let incident ?attrs ~reason () =
  (* The marker goes through the normal emission path, so it lands in
     the recorder ring (and any trace sink) before the snapshot below -
     every dump contains its own trigger. *)
  Trace.instant ?attrs ~phase:"incident" reason;
  dump ~reason
