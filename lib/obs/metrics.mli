(** Metrics registry: counters, gauges and log-bucketed histograms with
    p50/p95/p99 quantile estimation.

    Always on (unlike tracing): every update is one atomic
    read-modify-write with no allocation.  Registration is get-or-create
    by name; registering an existing name as a different kind raises
    [Invalid_argument].  All metric types are safe to update from
    concurrent domains. *)

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : unit -> t
val default : t
(** The process-wide registry instrumented modules publish into. *)

val counter : t -> string -> counter
val inc : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** Raise the gauge to [v] if larger (high-water marks). *)

val gauge_value : gauge -> float

val histogram : t -> string -> histogram
(** Geometric buckets of ratio 2^(1/4): quantile estimates are within
    ~9.5% of the true sample value over ~1e-9 .. 1.5e12. *)

val observe : histogram -> float -> unit
(** Record one observation (non-positive and non-finite values clamp to
    the lowest bucket). *)

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_mean : histogram -> float

val hist_min : histogram -> float
(** Exact smallest finite observation (not bucket-rounded); 0 when no
    finite value has been observed. *)

val hist_max : histogram -> float
(** Exact largest finite observation; 0 when none. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]; 0 when empty (never raises or
    returns NaN, whatever [q]).  Returns the geometric midpoint of the
    bucket holding the rank-[ceil(q*n)] observation; the underflow
    bucket (zero/negative/non-finite observations) answers exactly 0.
    Out-of-range [q] clamps to [0,1]; NaN [q] behaves like 1. *)

type sample =
  | Counter_s of { name : string; count : int }
  | Gauge_s of { name : string; level : float }
  | Hist_s of {
      name : string;
      n : int;
      total : float;
      mean : float;
      min : float;  (** exact extrema, see {!hist_min} / {!hist_max} *)
      max : float;
      p50 : float;
      p95 : float;
      p99 : float;
    }

val snapshot : t -> sample list
(** Point-in-time view, sorted by name. *)

val reset : t -> unit
(** Zero every registered metric (tests; the registry keeps its names). *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump of {!snapshot}. *)
