(** Human-readable trace roll-up: spans aggregated by (phase, name) with
    count/total/mean/min/max wall time sorted by total descending (the
    (phase, name) key breaks ties, so ordering is deterministic across
    domain interleavings), plus event and flow counts. *)

val pp : Format.formatter -> Trace.record list -> unit
val to_string : Trace.record list -> string
