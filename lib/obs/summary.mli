(** Human-readable trace roll-up: spans aggregated by (phase, name) with
    count/total/max wall time sorted by total descending, plus event
    counts. *)

val pp : Format.formatter -> Trace.record list -> unit
val to_string : Trace.record list -> string
