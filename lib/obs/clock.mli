(** Injectable clocks for the trace layer.

    Timestamps are [int] nanoseconds: reading a clock never allocates,
    which keeps disabled instrumentation allocation-free. *)

type t = unit -> int
(** A clock: returns the current time in nanoseconds. *)

val wall_ns : t
(** Host wall clock ([Unix.gettimeofday]), in nanoseconds. *)

type manual
(** A deterministic test clock: every read advances by a fixed step, so
    two identical runs produce identical timestamps.  Domain-safe. *)

val manual : ?start:int -> ?step:int -> unit -> manual
(** Fresh manual clock starting at [start] (default 0) advancing [step]
    (default 1000ns) per read.  @raise Invalid_argument if [step <= 0]. *)

val read : manual -> t
(** The reading function: returns the current value, then advances. *)

val advance : manual -> int -> unit
(** Skip the clock forward by [ns] without producing a reading. *)

val now : manual -> int
(** Current value without advancing. *)
