(** Multi-tenant model-zoo serving: N models, one worker pool, SLO
    classes, and a persistent plan store.

    A zoo wraps {!Serve} with the multi-tenant policy surface: every
    model registers with an {!Slo.t} class, which drives the
    scheduler's class-priority/EDF dispatch, its fair-share floor, and
    per-request default deadlines; outcomes are additionally accounted
    per class ({!class_stats}), which is what the zoo bench's
    per-SLO-class p99 and goodput read.

    The plan store closes the compile-once loop across process
    restarts: {!prewarm} loads every registered model's plans from
    [plan_dir] (falling back to compiling and saving them), optionally
    gating each loaded plan on bit-identity against a fresh compile,
    and then warms executor contexts - all before the zoo admits any
    traffic.  A restarted zoo pointed at the same directory serves its
    first request of every model with zero compile-phase spans. *)

open Astitch_tensor

type config = {
  serve : Serve.config;
      (** the underlying server's config; its [slos] field is
          overwritten from the registration list *)
  plan_dir : string option;  (** plan-store directory; [None] = no persistence *)
  verify_plans : bool;
      (** bit-identity gate: recompile each store-loaded plan and
          require [Plan_codec.equal] with the fresh compile, discarding
          (and recounting as compiled) on mismatch.  Costs the compiles
          the store was saving, so it is a verification mode, not the
          serving default. *)
}

val default_config : config
(** [Serve.default_config], no plan dir, no verification. *)

type prewarm = {
  loaded : int;  (** plans served from the store (no compile) *)
  compiled : int;  (** cold compiles (absent/rejected/unverified plans) *)
  verified : int;  (** loaded plans that passed the bit-identity gate *)
  rejected : int;
      (** store files discarded: codec error, structural check failure,
          or bit-identity mismatch (each recompiled fresh) *)
  saved : int;  (** plans newly persisted to the store *)
}

type t

val create : ?config:config -> (Serve.model * Slo.t) list -> t
(** Register models with their SLO classes.  The zoo refuses traffic
    until {!prewarm} has run.
    @raise Invalid_argument on duplicate or empty registrations. *)

val prewarm : t -> prewarm
(** Load-or-compile every registered model's plans, then warm executor
    contexts.  For each plan the store either hits ([loaded], gated by
    [verify_plans]) or the plan is compiled cold and saved back
    ([compiled], [saved]).  Idempotent; traffic is admitted after the
    first call. *)

val server : t -> Serve.t
(** The underlying server (trace/metrics surfaces, supervision,
    drain). *)

val slo : t -> model:string -> Slo.t
(** @raise Invalid_argument on an unknown model. *)

val models : t -> (string * Slo.t) list
(** Registered models in registration order. *)

type ticket = Serve.ticket

val submit_async :
  ?deadline_us:float ->
  t ->
  model:string ->
  params:(string * Tensor.t) list ->
  (ticket, Request.overload) result
(** {!Serve.submit_async} plus per-class accounting.
    @raise Invalid_argument on an unknown model or before {!prewarm}. *)

val await : t -> ticket -> Request.outcome
(** Blocks for the outcome and folds it into the per-class accounts. *)

val poll : t -> ticket -> Request.outcome option

val submit :
  ?deadline_us:float ->
  t ->
  model:string ->
  params:(string * Tensor.t) list ->
  Request.outcome

type class_stats = {
  cls : string;  (** "latency" | "throughput" | "best-effort" *)
  submitted : int;  (** admitted requests *)
  completed : int;
  shed : int;  (** overloaded after admission (deadline, displaced...) *)
  rejected : int;  (** refused at admission *)
  failed : int;
  deadline_met : int;
      (** completions within the class deadline (equals [completed]
          for classes without one) *)
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
}

val class_stats : t -> class_stats list
(** Per-SLO-class accounting over every outcome observed via
    {!await}/{!poll}, in class rank order.  Goodput for a class is
    [deadline_met] (or [completed]) over the run's wall time. *)

val drain : t -> unit

val shutdown : t -> int
(** Drain, persist every cached plan to the store (returns how many
    were saved; 0 without a [plan_dir]), and shut the server down.
    Idempotent. *)
