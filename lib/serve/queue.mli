(** Bounded per-model FIFO of pending requests.

    Not thread-safe on its own: the scheduler owns the lock.  The bound
    is the admission-control line - [push] refuses rather than queue
    past [depth]. *)

type 'a t

val create : depth:int -> 'a t
val length : 'a t -> int
val max_depth_seen : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> model:string -> 'a -> bool
(** [false] when the total backlog is already at [depth]. *)

val pending : 'a t -> model:string -> int
val oldest : 'a t -> model:string -> 'a option

val take : 'a t -> model:string -> max:int -> 'a list
(** Dequeue up to [max] requests of [model], FIFO order. *)

val remove_if : 'a t -> ('a -> bool) -> 'a list
(** Remove and return every entry matching the predicate (shedding). *)

val newest : 'a t -> model:string -> 'a option
(** Peek at the most recently pushed entry of [model] - the entry a
    displacement shed would evict. *)

val pop_newest : 'a t -> model:string -> 'a option
(** Remove and return the most recently pushed entry of [model]
    (displacement shedding: evict the request that has waited least to
    admit a higher-priority one). *)

val models : 'a t -> string list
(** Models with at least one pending request. *)
