(* Domain worker pool: turns scheduled batches into outcomes.

   Each worker is an OCaml 5 domain looping on [Scheduler.next_batch].
   Execution state is pooled per (model x bucket): a compiled executor
   context is checked out for the duration of one batch and checked back
   in afterwards, so steady-state serving does zero compilation and zero
   plan-level allocation - only the numeric work.  Contexts are NOT
   concurrent-safe (they reuse buffers across runs), hence the pool:
   two workers serving the same (model, bucket) simultaneously each get
   their own context, and the pool grows to the observed concurrency.

   Compilation goes through the shared domain-safe [Session.cache], so
   two workers racing to compile the same bucket duplicate at most the
   planning work, never the cached artifact.

   Failure never takes the server down.  A batch that raises anywhere
   (packing, execution, unpacking) falls back to serving each of its
   requests alone at batch 1 through the degradation ladder
   ([Session.compile_resilient]); requests that still fail resolve to
   [Failed], and everything else in the server keeps going. *)

open Astitch_ir
open Astitch_tensor
open Astitch_runtime
open Astitch_obs

type model_state = {
  spec : Batching.spec;
  shared : (string * Tensor.t) list;  (** weight bindings, fixed at load *)
  mu : Mutex.t;  (** guards [contexts] *)
  contexts : (int, Executor.context list ref) Hashtbl.t;
      (** bucket -> free list *)
}

type t = {
  scheduler : Scheduler.t;
  models : (string, model_state) Hashtbl.t;
  cache : Session.cache;
  arch : Astitch_simt.Arch.t;
  fused : bool;
  verify_every : int;  (** re-check batch i vs solo when i mod n = 0 *)
  batch_counter : int Atomic.t;
  mutable domains : unit Domain.t list;
  m_batch_size : Metrics.histogram;
  m_padded : Metrics.counter;
  m_batches : Metrics.counter;
  m_request_us : Metrics.histogram;
  m_verified : Metrics.counter;
}

let now_us () = Unix.gettimeofday () *. 1e6

(* --- Context pool -------------------------------------------------------- *)

let free_list m bucket =
  match Hashtbl.find_opt m.contexts bucket with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.add m.contexts bucket l;
      l

(* Check out a context for [bucket], compiling one if the free list is
   empty.  Compilation happens OUTSIDE the model lock: two workers
   racing on a cold bucket both compile (through the shared plan cache,
   so the expensive half is shared) and both contexts join the pool. *)
let checkout pool m bucket =
  let cached =
    Mutex.lock m.mu;
    let l = free_list m bucket in
    let c =
      match !l with
      | ctx :: rest ->
          l := rest;
          Some ctx
      | [] -> None
    in
    Mutex.unlock m.mu;
    c
  in
  match cached with
  | Some ctx -> ctx
  | None ->
      let g = m.spec.Batching.build bucket in
      let result, _outcome =
        Session.compile_cached pool.cache Astitch_core.Astitch.full_backend
          pool.arch g
      in
      Executor.create_context ~fused:pool.fused result.Session.plan

let checkin m bucket ctx =
  Mutex.lock m.mu;
  let l = free_list m bucket in
  l := ctx :: !l;
  Mutex.unlock m.mu

(* --- Serving one batch --------------------------------------------------- *)

let bitwise_equal a b =
  Shape.equal (Tensor.shape a) (Tensor.shape b)
  &&
  let da = Tensor.data a and db = Tensor.data b in
  let n = Array.length da in
  let rec go i = i >= n || (Float.equal da.(i) db.(i) && go (i + 1)) in
  go 0

(* Bit-identity spot check: serve the batch's first request alone at
   bucket 1 and compare against its slice of the batched outputs.  A
   mismatch means a row-dependent builder slipped past analysis - that
   is a server bug, not a request failure, so it raises (and the batch
   falls back to the per-request path, which is trivially identical). *)
let verify_first pool m (req : Request.t) sliced =
  let ctx = checkout pool m 1 in
  let solo =
    Fun.protect
      ~finally:(fun () -> checkin m 1 ctx)
      (fun () ->
        Executor.run_context ctx ~params:(m.shared @ req.params))
  in
  if not (List.for_all2 bitwise_equal solo sliced) then
    failwith "batched outputs diverge from solo execution";
  Metrics.inc pool.m_verified

let complete_done pool t0 ~bucket ~degraded (req : Request.t) outputs =
  let latency = now_us () -. req.submitted_us in
  ignore t0;
  Metrics.observe pool.m_request_us latency;
  Scheduler.complete pool.scheduler req.id
    (Request.Done { outputs; latency_us = latency; batch = bucket; degraded })

(* The degradation path: each request alone, batch 1, through the
   resilient compile ladder.  Never raises. *)
let serve_fallback pool m (requests : Request.t list) =
  List.iter
    (fun (req : Request.t) ->
      match
        Session.compile_resilient pool.arch (m.spec.Batching.build 1)
      with
      | Error e ->
          Scheduler.complete pool.scheduler req.id
            (Request.Failed (Astitch_plan.Compile_error.to_string e))
      | Ok { result; _ } -> (
          match
            Executor.run result.Session.plan ~params:(m.shared @ req.params)
          with
          | outputs ->
              complete_done pool 0. ~bucket:1 ~degraded:true req outputs
          | exception e ->
              Scheduler.complete pool.scheduler req.id
                (Request.Failed (Printexc.to_string e))))
    requests

let serve_batch pool (batch : Scheduler.batch) =
  let m = Hashtbl.find pool.models batch.model in
  let n = List.length batch.requests in
  let seq = Atomic.fetch_and_add pool.batch_counter 1 in
  Metrics.inc pool.m_batches;
  Metrics.observe pool.m_batch_size (float_of_int n);
  Metrics.add pool.m_padded (batch.bucket - n);
  let attrs =
    [
      ("model", Trace.Str batch.model);
      ("bucket", Trace.Int batch.bucket);
      ("requests", Trace.Int n);
    ]
  in
  Trace.with_span ~attrs ~phase:"serve"
    (Printf.sprintf "batch:%s" batch.model) (fun () ->
      match
        let ctx = checkout pool m batch.bucket in
        let outputs =
          Fun.protect
            ~finally:(fun () -> checkin m batch.bucket ctx)
            (fun () ->
              let packed =
                Batching.pack m.spec ~batch:batch.bucket
                  (List.map (fun (r : Request.t) -> r.params) batch.requests)
              in
              Executor.run_context ctx ~params:(m.shared @ packed))
        in
        let per_request = Batching.unpack m.spec ~count:n outputs in
        (if pool.verify_every > 0 && seq mod pool.verify_every = 0 then
           match (batch.requests, per_request) with
           | req :: _, sliced :: _ -> verify_first pool m req sliced
           | _ -> ());
        per_request
      with
      | per_request ->
          List.iter2
            (fun req outs ->
              complete_done pool 0. ~bucket:batch.bucket ~degraded:false req
                outs)
            batch.requests per_request
      | exception _ -> serve_fallback pool m batch.requests)

(* --- Caller-runs (inline) mode ------------------------------------------- *)

(* With [workers = 0] no domains exist and the thread that wants
   progress makes it.  On a single-core machine this sidesteps the
   stop-the-world synchronization that worker domains would impose on
   every minor collection; batching and context reuse carry the win.

   [pump] serves every dispatchable batch on the calling domain,
   sleeping out still-open batching windows, and returns once the
   queue is empty.  During a drain the window is forced shut, so the
   sleep branch never runs there. *)
let rec pump pool =
  match Scheduler.try_next_batch pool.scheduler with
  | `Batch b ->
      serve_batch pool b;
      pump pool
  | `Waiting ->
      Unix.sleepf (Scheduler.poll_interval_s pool.scheduler);
      pump pool
  | `Empty -> ()

(* Inline [await]: pump until the outcome for [id] lands.  [`Empty]
   with work still outstanding means another caller is mid-batch with
   our request - poll until its completion lands. *)
let await_pumping pool id =
  let rec go () =
    match Scheduler.poll pool.scheduler id with
    | Some o -> o
    | None -> (
        match Scheduler.try_next_batch pool.scheduler with
        | `Batch b ->
            serve_batch pool b;
            go ()
        | `Waiting ->
            Unix.sleepf (Scheduler.poll_interval_s pool.scheduler);
            go ()
        | `Empty ->
            if Scheduler.outstanding pool.scheduler = 0 then
              invalid_arg "Serve.await: unknown or already-consumed ticket"
            else begin
              Unix.sleepf (Scheduler.poll_interval_s pool.scheduler);
              go ()
            end)
  in
  go ()

(* --- Pool lifecycle ------------------------------------------------------ *)

let worker_loop pool () =
  let rec go () =
    match Scheduler.next_batch pool.scheduler with
    | None -> ()
    | Some batch ->
        serve_batch pool batch;
        go ()
  in
  go ()

let create ~scheduler ~models ~cache ~arch ~fused ~verify_every ~workers =
  if workers < 0 then invalid_arg "Worker_pool.create: workers must be >= 0";
  let r = Metrics.default in
  let pool =
    {
      scheduler;
      models;
      cache;
      arch;
      fused;
      verify_every;
      batch_counter = Atomic.make 1;
      domains = [];
      m_batch_size = Metrics.histogram r "serve.batch_size";
      m_padded = Metrics.counter r "serve.padded";
      m_batches = Metrics.counter r "serve.batches";
      m_request_us = Metrics.histogram r "serve.request_us";
      m_verified = Metrics.counter r "serve.verified";
    }
  in
  pool.domains <-
    List.init workers (fun _ -> Domain.spawn (worker_loop pool));
  pool

(* Blocks until every worker exits; call after [Scheduler.shutdown]. *)
let join pool =
  List.iter Domain.join pool.domains;
  pool.domains <- []

(* Pre-compile the given buckets for every model so the first requests
   don't pay compilation latency (the CLI does this before the clock
   starts). *)
let warm pool ~buckets =
  Hashtbl.iter
    (fun _ m ->
      List.iter
        (fun bucket ->
          let ctx = checkout pool m bucket in
          checkin m bucket ctx)
        buckets)
    pool.models
