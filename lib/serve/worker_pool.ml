(* Domain worker pool: turns scheduled batches into outcomes.

   Each worker is an OCaml 5 domain looping on [Scheduler.next_batch].
   Execution state is pooled PER MODEL: a batchable builder compiles
   once at [max_batch] into a shape-polymorphic context (the plan
   carries its [Batch_axis.plan]), and every batch - whatever its size,
   3 or 7 or 8 - executes on that one context via
   [Executor.run_context ~batch:n] with zero padded rows and zero
   recompilation.  Builders the batch-axis analysis rejects (batch axis
   not outermost, batch-collapsing ops) fall back to fixed-extent
   serving: one context per exact batch size, still zero padding.
   Contexts are NOT concurrent-safe (they reuse buffers across runs),
   hence the free lists: two workers serving the same model
   simultaneously each get their own context, and the pool grows to the
   observed concurrency - steady state for a single-worker (or
   caller-runs) server is exactly one context per model.

   Compilation goes through the shared domain-safe [Session.cache], so
   two workers racing to compile the same model duplicate at most the
   planning work, never the cached artifact.

   Failure never takes the server down, and it never delivers corrupt
   numerics.  The supervision layers, outermost first:

   - A monitor domain watches per-worker heartbeats.  A dead worker
     (its loop raised) is restarted with exponential backoff; a wedged
     worker (alive but stuck mid-batch past [wedge_timeout_us]) has its
     batch stolen and recovered - the scheduler's first-wins completion
     makes the potential double execution harmless.

   - A batch that raises OR during which any fault site fired is
     treated as poisoned: its outputs are discarded, its context is
     quarantined (never returned to the pool, and the plan behind it is
     evicted from the compile cache), and its requests are re-dispatched
     individually under a per-request retry budget.

   - A request whose budget is spent falls back to solo execution
     through the resilient compile ladder ([Session.compile_resilient]
     + [Executor.run]) - the terminal rung, deliberately free of fault
     instrumentation, so every request resolves to [Done] or [Failed].
     Nothing is ever lost. *)

open Astitch_ir
open Astitch_tensor
open Astitch_runtime
open Astitch_obs
module Fault_site = Astitch_plan.Fault_site
module Kernel_plan = Astitch_plan.Kernel_plan

type mode =
  | Symbolic of Batch_axis.plan
      (** one context compiled at [max_batch] serves every size *)
  | Fixed  (** one context per exact batch size *)

type model_state = {
  spec : Batching.spec;
  shared : (string * Tensor.t) list;  (** weight bindings, fixed at load *)
  max_batch : int;
  mu : Mutex.t;  (** guards [mode] and both free lists *)
  mutable mode : mode;
      (** decided at load from the batch-axis analysis; demoted to
          [Fixed] if the compiled context can't rebind (e.g. a kernel
          fell back to the reference path) *)
  sym_ctxs : Executor.context list ref;  (** free shape-polymorphic ctxs *)
  fixed_ctxs : (int, Executor.context list ref) Hashtbl.t;
      (** exact batch size -> free list (fixed-extent fallback) *)
}

type worker_state = W_running | W_dead | W_stopped

type slot = {
  wid : int;
  hb : float Atomic.t;  (** last heartbeat, wall-clock us *)
  (* The remaining fields are guarded by the pool's [sup_mu]. *)
  mutable dom : unit Domain.t option;
  mutable inflight : Scheduler.batch option;
  mutable wstate : worker_state;
  mutable deaths : int;  (** consecutive deaths; resets on a served batch *)
  mutable restart_at : float;  (** us; backoff gate for the next respawn *)
  mutable wedge_flagged : bool;  (** current inflight batch already stolen *)
}

type supervision = {
  restarts : int;
  quarantined : int;
  wedged : int;
  workers_alive : int;
}

type t = {
  scheduler : Scheduler.t;
  models : (string, model_state) Hashtbl.t;
  cache : Session.cache;
  arch : Astitch_simt.Arch.t;
  fused : bool;
  verify_every : int;  (** re-check batch i vs solo when i mod n = 0 *)
  retry_budget : int;  (** failed batch executions before fallback *)
  wedge_timeout_us : float;
  restart_backoff_us : float;
  batch_counter : int Atomic.t;
  sup_mu : Mutex.t;  (** guards every slot's supervised fields *)
  slots : slot array;
  mutable monitor : unit Domain.t option;
  stop_monitor : bool Atomic.t;
  n_restarts : int Atomic.t;
  n_quarantined : int Atomic.t;
  n_wedged : int Atomic.t;
  n_padded : int Atomic.t;  (** padded rows executed; 0 by construction *)
  n_compiles : int Atomic.t;  (** plan compiles performed at checkout *)
  m_batch_size : Metrics.histogram;
  m_padded : Metrics.counter;
  m_compiles : Metrics.counter;
  m_batches : Metrics.counter;
  m_request_us : Metrics.histogram;
  (* The latency decomposition: per completed request, these five sum
     to [serve.request_us] up to clock granularity (same stamps, the
     differences telescope).  Queue wait runs submission -> dispatch;
     batch-wait covers the dispatch -> pack handoff including context
     checkout; pack/exec/unpack bracket the on-worker stages, with the
     completion bookkeeping folded into unpack. *)
  m_queue_us : Metrics.histogram;
  m_batch_wait_us : Metrics.histogram;
  m_pack_us : Metrics.histogram;
  m_exec_us : Metrics.histogram;
  m_unpack_us : Metrics.histogram;
  m_verified : Metrics.counter;
  m_restart : Metrics.counter;
  m_quarantine : Metrics.counter;
  m_wedged : Metrics.counter;
  g_alive : Metrics.gauge;
}

let now_us () = Unix.gettimeofday () *. 1e6

let sup_locked pool f =
  Mutex.lock pool.sup_mu;
  match f () with
  | v ->
      Mutex.unlock pool.sup_mu;
      v
  | exception e ->
      Mutex.unlock pool.sup_mu;
      raise e

let model_locked m f =
  Mutex.lock m.mu;
  match f () with
  | v ->
      Mutex.unlock m.mu;
      v
  | exception e ->
      Mutex.unlock m.mu;
      raise e

(* --- Context pool -------------------------------------------------------- *)

(* A checked-out context plus how to return (or blame) it: [`Sym] leases
   come from the per-model shape-polymorphic list, [`Fixed n] from the
   exact-size free list of the fixed-extent fallback. *)
type lease = { ctx : Executor.context; lkey : [ `Sym | `Fixed of int ] }

let fixed_list m n =
  match Hashtbl.find_opt m.fixed_ctxs n with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.add m.fixed_ctxs n l;
      l

let pop l =
  match !l with
  | ctx :: rest ->
      l := rest;
      Some ctx
  | [] -> None

let compile_for pool m ~batch =
  let g = m.spec.Batching.build batch in
  let result, outcome =
    Session.compile_cached pool.cache Astitch_core.Astitch.full_backend
      pool.arch g
  in
  (match outcome with
  | Plan_cache.Miss | Plan_cache.Bypassed ->
      Atomic.incr pool.n_compiles;
      Metrics.inc pool.m_compiles
  | Plan_cache.Hit -> ());
  result

(* Check out a context able to execute a batch of exactly [n] requests,
   compiling one if the free list is empty.  Compilation happens
   OUTSIDE the model lock: two workers racing on a cold model both
   compile (through the shared plan cache, so the expensive half is
   shared) and both contexts join the pool.

   A Symbolic model compiles ONCE, at [max_batch], and the context
   serves every [n] by prefix rebinding.  If the freshly created
   context turns out non-rebindable - a kernel fell back to the
   reference path, which re-derives values against the full compiled
   shapes - the model is demoted to [Fixed] and the checkout retries
   down that path. *)
let rec checkout pool m ~n =
  let cached =
    model_locked m (fun () ->
        match m.mode with
        | Symbolic _ ->
            Option.map (fun ctx -> { ctx; lkey = `Sym }) (pop m.sym_ctxs)
        | Fixed ->
            Option.map
              (fun ctx -> { ctx; lkey = `Fixed n })
              (pop (fixed_list m n)))
  in
  match cached with
  | Some lease -> lease
  | None -> (
      match model_locked m (fun () -> m.mode) with
      | Symbolic pb ->
          let result = compile_for pool m ~batch:m.max_batch in
          let plan = { result.Session.plan with Kernel_plan.batch = Some pb } in
          let ctx = Executor.create_context ~fused:pool.fused plan in
          if Executor.rebindable ctx then { ctx; lkey = `Sym }
          else begin
            model_locked m (fun () -> m.mode <- Fixed);
            checkout pool m ~n
          end
      | Fixed ->
          let result = compile_for pool m ~batch:n in
          let ctx =
            Executor.create_context ~fused:pool.fused result.Session.plan
          in
          { ctx; lkey = `Fixed n })

let checkin m lease =
  model_locked m (fun () ->
      match lease.lkey with
      | `Sym -> (
          (* a demotion may have raced this lease; a symbolic context
             under Fixed mode would never be popped again, so drop it *)
          match m.mode with
          | Symbolic _ -> m.sym_ctxs := lease.ctx :: !(m.sym_ctxs)
          | Fixed -> ())
      | `Fixed n ->
          let l = fixed_list m n in
          l := lease.ctx :: !l)

(* A context a fault touched never rejoins the pool, and the plan it
   was compiled from is evicted from the shared cache: the next
   checkout for this model recompiles from scratch instead of trusting
   either the mutated execution state or the cached artifact behind it.
   (Contexts rewrite every buffer on each run, so this is deliberately
   conservative - the cost is one recompile, the alternative is ever
   having served numerics from a suspect context.) *)
let quarantine pool m ~model ~reason lease =
  ignore (lease.ctx : Executor.context);
  Atomic.incr pool.n_quarantined;
  Metrics.inc pool.m_quarantine;
  let compiled_at =
    match lease.lkey with `Sym -> m.max_batch | `Fixed n -> n
  in
  let attrs =
    if Trace.active () then
      [
        ("model", Trace.Str model);
        ("batch", Trace.Int compiled_at);
        ("reason", Trace.Str reason);
      ]
    else []
  in
  (* A child span (under whatever batch/recover span is open on this
     domain), not just an instant: the eviction has real duration and a
     reason worth attributing in the blame view. *)
  Trace.with_span ~attrs ~phase:"serve" "quarantine" (fun () ->
      ignore
        (Session.uncache pool.cache Astitch_core.Astitch.full_backend
           pool.arch
           (m.spec.Batching.build compiled_at)));
  if Trace.active () then ignore (Flight.incident ~attrs ~reason:"quarantine" ())

(* Execute a lease at batch size [n]: symbolic contexts rebind to the
   prefix, fixed contexts were compiled at exactly [n] already. *)
let run_lease lease ~n params =
  match lease.lkey with
  | `Sym -> Executor.run_context ~batch:n lease.ctx ~params
  | `Fixed _ -> Executor.run_context lease.ctx ~params

(* --- Serving one batch --------------------------------------------------- *)

let bitwise_equal a b =
  Shape.equal (Tensor.shape a) (Tensor.shape b)
  &&
  let da = Tensor.data a and db = Tensor.data b in
  let n = Array.length da in
  let rec go i = i >= n || (Float.equal da.(i) db.(i) && go (i + 1)) in
  go 0

(* Bit-identity spot check: serve the batch's first request alone at
   batch 1 and compare against its slice of the batched outputs.  A
   mismatch means a row-dependent builder slipped past analysis - that
   is a server bug, not a request failure, so it raises (and the batch
   goes down the recovery path, which is trivially identical).  A
   symbolic lease verifies on the SAME context rebound to batch 1 - the
   polymorphism makes the check free of extra compilation; a fixed
   lease checks out a batch-1 context (a solo run that raises
   quarantines it). *)
let verify_first pool m ~model (lease : lease) (req : Request.t) sliced =
  let check solo =
    if not (List.for_all2 bitwise_equal solo sliced) then
      failwith "batched outputs diverge from solo execution";
    Metrics.inc pool.m_verified
  in
  match lease.lkey with
  | `Sym ->
      check
        (Executor.run_context ~batch:1 lease.ctx
           ~params:(m.shared @ req.params))
  | `Fixed _ -> (
      let l1 = checkout pool m ~n:1 in
      match run_lease l1 ~n:1 (m.shared @ req.params) with
      | solo ->
          checkin m l1;
          check solo
      | exception e ->
          quarantine pool m ~model ~reason:"verify-solo-failure" l1;
          raise e)

let complete_done pool ~t_done ~batch_size ~degraded (req : Request.t) outputs
    =
  let latency = t_done -. req.submitted_us in
  Metrics.observe pool.m_request_us latency;
  Scheduler.complete pool.scheduler req
    (Request.Done
       { outputs; latency_us = latency; batch = batch_size; degraded })

(* Feed the five-phase latency decomposition for one completed request.
   The stamps all come from the same clock, so the five observations
   telescope to [t_done - submitted_us] - exactly the [request_us]
   latency recorded by [complete_done] with the same [t_done].
   [t_pack] = pack begin (batch-wait runs dispatch -> here, covering
   the worker handoff and context checkout), [t_exec] = execution
   begin, [t_unpack] = execution end; completion bookkeeping between
   unpack and [t_done] folds into the unpack bucket. *)
let observe_phases pool (req : Request.t) ~t_pack ~t_exec ~t_unpack ~t_done =
  Metrics.observe pool.m_queue_us (req.dispatched_us -. req.submitted_us);
  Metrics.observe pool.m_batch_wait_us (t_pack -. req.dispatched_us);
  Metrics.observe pool.m_pack_us (t_exec -. t_pack);
  Metrics.observe pool.m_exec_us (t_unpack -. t_exec);
  Metrics.observe pool.m_unpack_us (t_done -. t_unpack)

(* The terminal rung: each request alone, batch 1, through the
   resilient compile ladder and the UN-instrumented [Executor.run].
   Keeping fault sites out of this path is what makes the whole ladder
   terminate: however chaotic the run, a request that reaches here
   resolves to [Done] (degraded) or [Failed].  Never raises.

   Decomposition on this path: there is no batch pack, so the pack
   bucket absorbs the resilient compile and the batch-wait bucket the
   handoff from the last dispatch - the per-request sum still
   telescopes to the end-to-end latency. *)
let serve_fallback pool m (requests : Request.t list) =
  List.iter
    (fun (req : Request.t) ->
      let attrs =
        if Trace.active () then
          [ ("model", Trace.Str req.model); ("id", Trace.Int req.id) ]
        else []
      in
      Trace.with_span ~attrs ~phase:"serve" "fallback" (fun () ->
          if Trace.active () then
            Trace.flow_step ~phase:"serve" req.trace "request"
              ~attrs:[ ("hop", Trace.Str "fallback") ];
          let t_pack = now_us () in
          match
            Session.compile_resilient pool.arch (m.spec.Batching.build 1)
          with
          | Error e ->
              Scheduler.complete pool.scheduler req
                (Request.Failed (Astitch_plan.Compile_error.to_string e))
          | Ok { result; _ } -> (
              let t_exec = now_us () in
              match
                Executor.run result.Session.plan
                  ~params:(m.shared @ req.params)
              with
              | outputs ->
                  let t_unpack = now_us () in
                  observe_phases pool req ~t_pack ~t_exec ~t_unpack
                    ~t_done:t_unpack;
                  complete_done pool ~t_done:t_unpack ~batch_size:1
                    ~degraded:true req outputs
              | exception e ->
                  Scheduler.complete pool.scheduler req
                    (Request.Failed (Printexc.to_string e)))))
    requests

(* Recovery for the requests of a batch that did not complete cleanly:
   each request re-enters the scheduler for a solo re-dispatch while it
   has retry budget left, and drops to the fallback rung when the
   budget is spent.  Completion is idempotent, so recovering requests a
   wedged worker might still finish is safe.  The whole detour is a
   span carrying the reason (batch-failure, worker-death, wedge-steal,
   worker-loop-fault), so recovery time is attributable in the trace. *)
let recover_requests pool ~reason (batch : Scheduler.batch) =
  let m = Hashtbl.find pool.models batch.model in
  let attrs =
    if Trace.active () then
      [
        ("model", Trace.Str batch.model);
        ("reason", Trace.Str reason);
        ("requests", Trace.Int (List.length batch.requests));
      ]
    else []
  in
  Trace.with_span ~attrs ~phase:"serve" "recover" (fun () ->
      List.iter
        (fun (r : Request.t) ->
          if r.attempts < pool.retry_budget then begin
            r.attempts <- r.attempts + 1;
            Scheduler.requeue pool.scheduler r
          end
          else serve_fallback pool m [ r ])
        batch.requests)

let serve_batch pool (batch : Scheduler.batch) =
  let m = Hashtbl.find pool.models batch.model in
  let n = List.length batch.requests in
  let seq = Atomic.fetch_and_add pool.batch_counter 1 in
  Metrics.inc pool.m_batches;
  Metrics.observe pool.m_batch_size (float_of_int n);
  (* Continuous batching packs exactly [n] rows - symbolic contexts
     rebind to the prefix, fixed ones compile at [n] - so the padded
     count is 0 by construction.  The accounting stays wired to the
     actual pack extent so any future padding would surface instead of
     hiding. *)
  let exec_rows = n in
  Metrics.add pool.m_padded (exec_rows - n);
  ignore (Atomic.fetch_and_add pool.n_padded (exec_rows - n));
  let attrs =
    [
      ("model", Trace.Str batch.model);
      ("requests", Trace.Int n);
      ("seq", Trace.Int seq);
    ]
  in
  Trace.with_span ~attrs ~phase:"serve"
    (Printf.sprintf "batch:%s" batch.model) (fun () ->
      (* Pull each request's flow arrow into this batch span: the "t"
         step is what links the client-thread submit span to this
         worker domain in Perfetto. *)
      if Trace.active () then
        List.iter
          (fun (r : Request.t) ->
            Trace.flow_step ~phase:"serve" r.trace "request"
              ~attrs:[ ("id", Trace.Int r.id) ])
          batch.requests;
      (* The lease is tracked outside the happy path so the failure
         handler knows whether there is one to quarantine.  Lifecycle
         stages run under child spans; an exception anywhere leaves the
         open child to the batch span's auto-close. *)
      let held = ref None in
      match
        let cid = Trace.span_begin ~phase:"serve" "checkout" in
        let lease = checkout pool m ~n in
        Trace.span_end cid;
        held := Some lease;
        (* Snapshot AFTER checkout: a compile-site fault firing during
           a cold-model compile surfaces as a compile error, not as
           corrupt execution, and must not poison this batch. *)
        let fired0 = Fault_site.fired () in
        let t_pack = now_us () in
        let pid = Trace.span_begin ~phase:"serve" "pack" in
        let packed =
          Batching.pack m.spec ~batch:exec_rows
            (List.map (fun (r : Request.t) -> r.params) batch.requests)
        in
        Trace.span_end pid;
        let t_exec = now_us () in
        (* [run_lease] opens the executor's own "run-context" span; it
           nests under this batch span via the domain stack, so the
           per-kernel exec spans are already parented correctly. *)
        let outputs = run_lease lease ~n (m.shared @ packed) in
        let t_unpack = now_us () in
        let uid = Trace.span_begin ~phase:"serve" "unpack" in
        let per_request = Batching.unpack m.spec ~count:n outputs in
        Trace.span_end uid;
        (if pool.verify_every > 0 && seq mod pool.verify_every = 0 then
           match (batch.requests, per_request) with
           | req :: _, sliced :: _ ->
               Trace.with_span ~phase:"serve" "verify" (fun () ->
                   verify_first pool m ~model:batch.model lease req sliced)
           | _ -> ());
        (* Corrupt-mode faults don't raise - they silently perturb
           numerics.  Any site that fired during this batch poisons it:
           outputs are discarded and the requests retried, so corrupt
           results are never delivered and survivors stay bit-identical
           to solo execution. *)
        if Fault_site.fired () > fired0 then
          failwith "fault fired during batch execution";
        checkin m lease;
        held := None;
        (per_request, t_pack, t_exec, t_unpack)
      with
      | per_request, t_pack, t_exec, t_unpack ->
          let t_done = now_us () in
          List.iter2
            (fun req outs ->
              observe_phases pool req ~t_pack ~t_exec ~t_unpack ~t_done;
              complete_done pool ~t_done ~batch_size:n ~degraded:false req
                outs)
            batch.requests per_request;
          Scheduler.note_batch_result pool.scheduler ~model:batch.model
            ~ok:true
      | exception _ ->
          (match !held with
          | Some lease ->
              quarantine pool m ~model:batch.model ~reason:"batch-failure"
                lease
          | None -> ());
          if Trace.active () then
            ignore
              (Flight.incident ~reason:"batch-failure"
                 ~attrs:
                   [
                     ("model", Trace.Str batch.model);
                     ("requests", Trace.Int n);
                   ]
                 ());
          Scheduler.note_batch_result pool.scheduler ~model:batch.model
            ~ok:false;
          recover_requests pool ~reason:"batch-failure" batch)

(* The worker-loop fault site models the worker itself dying or
   stalling with a batch in hand (as opposed to the batch failing).
   [true] means "this worker just crashed": in a domain worker the
   exception propagates to the supervision handler; in caller-runs mode
   the caller recovers the batch inline. *)
let worker_loop_fault () =
  match Fault_site.check_runtime Fault_site.Worker_loop ~pass:"worker-loop" with
  | Some _ -> true (* corrupt: worker-local state is toast *)
  | None -> false
  | exception Fault_site.Runtime_fault _ -> true

(* --- Caller-runs (inline) mode ------------------------------------------- *)

(* With [workers = 0] no domains exist and the thread that wants
   progress makes it.  On a single-core machine this sidesteps the
   stop-the-world synchronization that worker domains would impose on
   every minor collection; batching and context reuse carry the win.

   [pump] serves every dispatchable batch on the calling domain,
   parking out still-open batching windows on the scheduler's wake
   pipe, and returns once the queue is empty.  During a drain the
   window is forced shut, so the parked branch never runs there.  A
   worker-loop fault here plays the crashed-worker part without a
   domain to kill: the batch goes straight to recovery. *)
let serve_or_recover pool b =
  if worker_loop_fault () then
    recover_requests pool ~reason:"worker-loop-fault" b
  else serve_batch pool b

let rec pump pool =
  match Scheduler.try_next_batch pool.scheduler with
  | `Batch b ->
      serve_or_recover pool b;
      pump pool
  | `Waiting ->
      Scheduler.wait_poll pool.scheduler;
      pump pool
  | `Empty -> ()

(* Inline [await]: pump until the outcome for [id] lands.  [`Empty]
   with work still outstanding means another caller is mid-batch with
   our request - poll until its completion lands. *)
let await_pumping pool id =
  let rec go () =
    match Scheduler.poll pool.scheduler id with
    | Some o -> o
    | None -> (
        match Scheduler.try_next_batch pool.scheduler with
        | `Batch b ->
            serve_or_recover pool b;
            go ()
        | `Waiting ->
            Scheduler.wait_poll pool.scheduler;
            go ()
        | `Empty ->
            if Scheduler.outstanding pool.scheduler = 0 then
              invalid_arg "Serve.await: unknown or already-consumed ticket"
            else begin
              Scheduler.wait_poll pool.scheduler;
              go ()
            end)
  in
  go ()

(* --- Supervised worker loop ---------------------------------------------- *)

let set_inflight pool slot batch =
  sup_locked pool (fun () ->
      slot.inflight <- batch;
      match batch with
      | Some _ -> slot.wedge_flagged <- false
      | None ->
          (* a batch made it through: the worker is healthy again *)
          slot.deaths <- 0;
          slot.wedge_flagged <- false)

(* One worker domain.  The heartbeat is refreshed at every loop edge;
   [inflight] brackets each batch so the monitor can recover it if this
   domain dies or wedges.  The top-level handler converts any escaped
   exception (notably the injected worker-loop crash) into a [W_dead]
   marking with exponential-backoff restart gate - the domain body
   itself always returns normally, so [Domain.join] never re-raises. *)
let worker_body pool slot () =
  let rec go () =
    Atomic.set slot.hb (now_us ());
    match Scheduler.next_batch pool.scheduler with
    | None -> sup_locked pool (fun () -> slot.wstate <- W_stopped)
    | Some batch ->
        set_inflight pool slot (Some batch);
        Atomic.set slot.hb (now_us ());
        (* Injected worker failure point: batch in hand, not yet
           served - the harshest spot to die.  Raise kills the domain,
           stall freezes it (wedge detection), corrupt is treated as
           unrecoverable worker state. *)
        if worker_loop_fault () then failwith "worker state corrupted";
        serve_batch pool batch;
        set_inflight pool slot None;
        go ()
  in
  try go ()
  with _ ->
    sup_locked pool (fun () ->
        slot.wstate <- W_dead;
        slot.deaths <- slot.deaths + 1;
        let backoff =
          pool.restart_backoff_us
          *. Float.of_int (1 lsl Stdlib.min 7 (slot.deaths - 1))
        in
        slot.restart_at <- now_us () +. backoff);
    if Trace.active () then begin
      Trace.instant ~phase:"serve" "worker-death"
        ~attrs:[ ("worker", Trace.Int slot.wid) ];
      ignore
        (Flight.incident ~reason:"worker-death"
           ~attrs:[ ("worker", Trace.Int slot.wid) ]
           ())
    end

(* --- Monitor -------------------------------------------------------------- *)

let workers_alive_locked pool =
  Array.fold_left
    (fun acc s -> if s.wstate = W_running then acc + 1 else acc)
    0 pool.slots

(* One supervision sweep.  Decisions are made and slot state mutated
   under [sup_mu]; the slow parts (request recovery, joining the dead
   domain, spawning its replacement) run outside the lock.

   - A dead worker's inflight batch is recovered IMMEDIATELY (the
     backoff gates the respawn, never the requests).
   - A dead worker past its backoff gate is respawned; restarts are
     unbounded - a worker that keeps dying keeps its batch recovery
     working and just waits longer each time (capped at 128x).
   - A running worker with a batch in hand and a heartbeat staler than
     [wedge_timeout_us] is wedged: its batch is stolen ONCE (flagged)
     and recovered.  If the worker eventually finishes anyway, the
     scheduler's first-wins completion discards the late outcome. *)
let supervise_once pool =
  let now = now_us () in
  let to_recover = ref [] in
  let to_restart = ref [] in
  let stolen = ref [] in
  sup_locked pool (fun () ->
      Array.iter
        (fun s ->
          match s.wstate with
          | W_dead ->
              (match s.inflight with
              | Some b ->
                  s.inflight <- None;
                  to_recover := b :: !to_recover
              | None -> ());
              if now >= s.restart_at then begin
                s.wstate <- W_running;
                let old = s.dom in
                s.dom <- None;
                to_restart := (s, old) :: !to_restart
              end
          | W_running -> (
              match s.inflight with
              | Some b
                when (not s.wedge_flagged)
                     && now -. Atomic.get s.hb > pool.wedge_timeout_us ->
                  s.wedge_flagged <- true;
                  stolen := b :: !stolen
              | _ -> ())
          | W_stopped -> ())
        pool.slots);
  List.iter
    (fun b ->
      Atomic.incr pool.n_wedged;
      Metrics.inc pool.m_wedged;
      if Trace.active () then begin
        Trace.instant ~phase:"serve" "wedge-steal"
          ~attrs:[ ("model", Trace.Str b.Scheduler.model) ];
        ignore
          (Flight.incident ~reason:"wedge-steal"
             ~attrs:[ ("model", Trace.Str b.Scheduler.model) ]
             ())
      end;
      recover_requests pool ~reason:"wedge-steal" b)
    !stolen;
  List.iter
    (fun b -> recover_requests pool ~reason:"worker-death" b)
    !to_recover;
  List.iter
    (fun (s, old) ->
      (* the dead domain has already exited; join reclaims it *)
      (match old with Some d -> Domain.join d | None -> ());
      let d = Domain.spawn (worker_body pool s) in
      sup_locked pool (fun () -> s.dom <- Some d);
      Atomic.incr pool.n_restarts;
      Metrics.inc pool.m_restart;
      if Trace.active () then
        Trace.instant ~phase:"serve" "worker-restart"
          ~attrs:[ ("worker", Trace.Int s.wid) ])
    !to_restart;
  Metrics.set pool.g_alive
    (Float.of_int (sup_locked pool (fun () -> workers_alive_locked pool)))

let monitor_body pool () =
  (* fast enough to catch a wedge well inside the timeout, slow enough
     to be invisible in the profile *)
  let period_s =
    Float.max 0.0002 (Float.min 0.005 (1e-6 *. pool.wedge_timeout_us /. 8.))
  in
  while not (Atomic.get pool.stop_monitor) do
    supervise_once pool;
    Unix.sleepf period_s
  done;
  (* final sweep so a death racing the shutdown still gets recovered *)
  supervise_once pool

(* --- Pool lifecycle ------------------------------------------------------ *)

let create ~scheduler ~models ~cache ~arch ~fused ~verify_every ~retry_budget
    ~wedge_timeout_us ~restart_backoff_us ~workers =
  if workers < 0 then invalid_arg "Worker_pool.create: workers must be >= 0";
  if retry_budget < 0 then
    invalid_arg "Worker_pool.create: retry_budget must be >= 0";
  let r = Metrics.default in
  let pool =
    {
      scheduler;
      models;
      cache;
      arch;
      fused;
      verify_every;
      retry_budget;
      wedge_timeout_us;
      restart_backoff_us;
      batch_counter = Atomic.make 1;
      sup_mu = Mutex.create ();
      slots =
        Array.init workers (fun wid ->
            {
              wid;
              hb = Atomic.make (now_us ());
              dom = None;
              inflight = None;
              wstate = W_running;
              deaths = 0;
              restart_at = 0.;
              wedge_flagged = false;
            });
      monitor = None;
      stop_monitor = Atomic.make false;
      n_restarts = Atomic.make 0;
      n_quarantined = Atomic.make 0;
      n_wedged = Atomic.make 0;
      n_padded = Atomic.make 0;
      n_compiles = Atomic.make 0;
      m_batch_size = Metrics.histogram r "serve.batch_size";
      m_padded = Metrics.counter r "serve.padded";
      m_compiles = Metrics.counter r "serve.plan_compiles";
      m_batches = Metrics.counter r "serve.batches";
      m_request_us = Metrics.histogram r "serve.request_us";
      m_queue_us = Metrics.histogram r "serve.queue_us";
      m_batch_wait_us = Metrics.histogram r "serve.batch_wait_us";
      m_pack_us = Metrics.histogram r "serve.pack_us";
      m_exec_us = Metrics.histogram r "serve.exec_us";
      m_unpack_us = Metrics.histogram r "serve.unpack_us";
      m_verified = Metrics.counter r "serve.verified";
      m_restart = Metrics.counter r "serve.worker_restart";
      m_quarantine = Metrics.counter r "serve.quarantine";
      m_wedged = Metrics.counter r "serve.wedged";
      g_alive = Metrics.gauge r "serve.workers_alive";
    }
  in
  Array.iter
    (fun s -> s.dom <- Some (Domain.spawn (worker_body pool s)))
    pool.slots;
  Metrics.set pool.g_alive (Float.of_int workers);
  (* caller-runs mode has no domains to supervise - no monitor either *)
  if workers > 0 then pool.monitor <- Some (Domain.spawn (monitor_body pool));
  pool

(* Blocks until the monitor and every worker exit; call after
   [Scheduler.shutdown].  The monitor goes down first (with a final
   recovery sweep) so no restart races the joins. *)
let join pool =
  Atomic.set pool.stop_monitor true;
  (match pool.monitor with Some d -> Domain.join d | None -> ());
  pool.monitor <- None;
  Array.iter
    (fun s ->
      match sup_locked pool (fun () ->
                let d = s.dom in
                s.dom <- None;
                d)
      with
      | Some d -> Domain.join d
      | None -> ())
    pool.slots

let supervision pool =
  {
    restarts = Atomic.get pool.n_restarts;
    quarantined = Atomic.get pool.n_quarantined;
    wedged = Atomic.get pool.n_wedged;
    workers_alive = sup_locked pool (fun () -> workers_alive_locked pool);
  }

let padded_rows pool = Atomic.get pool.n_padded
let plan_compiles pool = Atomic.get pool.n_compiles
let plan_cache pool = pool.cache

let context_counts pool =
  Hashtbl.fold
    (fun name m acc ->
      let count =
        model_locked m (fun () ->
            List.length !(m.sym_ctxs)
            + Hashtbl.fold
                (fun _ l acc -> acc + List.length !l)
                m.fixed_ctxs 0)
      in
      (name, count) :: acc)
    pool.models []
  |> List.sort compare

(* Pre-compile every model so the first requests don't pay compilation
   latency (the CLI does this before the clock starts).  A symbolic
   model needs exactly its one max-batch context; a fixed-extent model
   warms the two sizes every server hits (solo verification/retries and
   full batches) - other sizes compile on first use. *)
let warm pool =
  Hashtbl.iter
    (fun _ m ->
      let sizes =
        match model_locked m (fun () -> m.mode) with
        | Symbolic _ -> [ m.max_batch ]
        | Fixed ->
            if m.max_batch = 1 then [ 1 ] else [ 1; m.max_batch ]
      in
      List.iter
        (fun n ->
          let lease = checkout pool m ~n in
          checkin m lease)
        sizes)
    pool.models
