(* Bounded per-model FIFO of pending requests.

   Pure data structure: the scheduler wraps every call in its own mutex,
   so nothing here synchronises.  Admission control lives at [push] -
   when the total backlog across models reaches [depth] the push is
   refused and the scheduler turns that refusal into a structured
   [Overloaded Queue_full], instead of letting the backlog (and tail
   latency) grow without bound. *)

type 'a t = {
  depth : int;
  by_model : (string, 'a Stdlib.Queue.t) Hashtbl.t;
  mutable count : int;
  mutable max_depth_seen : int;
}

let create ~depth =
  if depth < 1 then invalid_arg "Serve_queue.create: depth must be >= 1";
  { depth; by_model = Hashtbl.create 8; count = 0; max_depth_seen = 0 }

let length t = t.count
let max_depth_seen t = t.max_depth_seen
let is_empty t = t.count = 0

let model_queue t model =
  match Hashtbl.find_opt t.by_model model with
  | Some q -> q
  | None ->
      let q = Stdlib.Queue.create () in
      Hashtbl.add t.by_model model q;
      q

let push t ~model v =
  if t.count >= t.depth then false
  else begin
    Stdlib.Queue.push v (model_queue t model);
    t.count <- t.count + 1;
    if t.count > t.max_depth_seen then t.max_depth_seen <- t.count;
    true
  end

(* The pending count for one model, and a peek at its oldest entry. *)
let pending t ~model =
  match Hashtbl.find_opt t.by_model model with
  | None -> 0
  | Some q -> Stdlib.Queue.length q

let oldest t ~model =
  match Hashtbl.find_opt t.by_model model with
  | None -> None
  | Some q -> Stdlib.Queue.peek_opt q

(* Dequeue up to [max] requests of one model, FIFO order. *)
let take t ~model ~max =
  let q = model_queue t model in
  let rec go acc n =
    if n = 0 then List.rev acc
    else
      match Stdlib.Queue.take_opt q with
      | None -> List.rev acc
      | Some v ->
          t.count <- t.count - 1;
          go (v :: acc) (n - 1)
  in
  go [] max

(* Remove entries matching [pred] from every model queue (deadline
   shedding).  Returns the removed entries in FIFO order per model. *)
let remove_if t pred =
  let removed = ref [] in
  Hashtbl.iter
    (fun _ q ->
      let keep = Stdlib.Queue.create () in
      Stdlib.Queue.iter
        (fun v ->
          if pred v then begin
            removed := v :: !removed;
            t.count <- t.count - 1
          end
          else Stdlib.Queue.push v keep)
        q;
      Stdlib.Queue.clear q;
      Stdlib.Queue.transfer keep q)
    t.by_model;
  List.rev !removed

(* Peek at the most recently pushed entry for one model - the candidate
   a displacement shed would evict (newest first: it has waited least
   and, FIFO, would be served last anyway). *)
let newest t ~model =
  match Hashtbl.find_opt t.by_model model with
  | None -> None
  | Some q -> Stdlib.Queue.fold (fun _ v -> Some v) None q

(* Remove and return that newest entry.  O(pending(model)): rebuilds the
   model's queue without its last element - displacement is rare (only
   on full-queue, cross-class contention) so simplicity wins. *)
let pop_newest t ~model =
  match Hashtbl.find_opt t.by_model model with
  | None -> None
  | Some q ->
      let n = Stdlib.Queue.length q in
      if n = 0 then None
      else begin
        let keep = Stdlib.Queue.create () in
        let last = ref None in
        Stdlib.Queue.iter
          (fun v ->
            if Stdlib.Queue.length keep = n - 1 then last := Some v
            else Stdlib.Queue.push v keep)
          q;
        Stdlib.Queue.clear q;
        Stdlib.Queue.transfer keep q;
        t.count <- t.count - 1;
        !last
      end

(* Models with at least one pending request. *)
let models t =
  Hashtbl.fold
    (fun m q acc -> if Stdlib.Queue.is_empty q then acc else m :: acc)
    t.by_model []
