(* Request scheduler: the concurrent heart of the serving runtime.

   One mutex guards the bounded queue, the completion table and every
   counter; workers and submitters meet only here.  Two conditions:
   [nonempty] wakes workers when work (or shutdown) arrives, [done_cond]
   wakes waiters when an outcome lands.

   The OCaml stdlib has no timed condition wait, so the batching window
   is enforced by polling: a worker that sees pending-but-not-yet-
   dispatchable work sleeps a fraction of the window ([poll_s]) and
   re-evaluates, while a worker that sees an empty queue blocks on
   [nonempty] and costs nothing.  The poll interval is max_wait/4
   clamped to [50us, 200us], so a window is missed by at most a quarter
   of itself and an idle-but-pending server burns at most a few
   thousand wakeups per second across the pool.

   Admission control is synchronous: [submit] either admits (the caller
   will find an outcome under the request id) or returns the structured
   overload immediately - a refused request never occupies queue space
   and never has a dangling outcome entry.  Deadline shedding is
   asynchronous: expired requests are removed at dispatch time and
   completed as [Overloaded Deadline_exceeded]. *)

open Astitch_obs
module Rq = Queue

type batch = {
  model : string;
  requests : Request.t list;  (** FIFO, length in [1, bucket] *)
  bucket : int;  (** power-of-two context size to execute at *)
}

type t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  done_cond : Condition.t;
  queue : Request.t Rq.t;
  policy : Batcher.policy;
  poll_s : float;
  outcomes : (int, Request.outcome) Hashtbl.t;
  mutable outstanding : int;  (** admitted, outcome not yet recorded *)
  mutable draining : bool;
  mutable stopped : bool;
  mutable submitted : int;
  mutable rejected : int;
  mutable shed : int;
  mutable completed : int;
  mutable failed : int;
  mutable degraded : int;
  mutable batches : int;
  (* obs: published so `serve --metrics` and the smoke test see the
     runtime from the outside *)
  m_depth : Metrics.gauge;
  m_submitted : Metrics.counter;
  m_rejected : Metrics.counter;
  m_shed : Metrics.counter;
  m_completed : Metrics.counter;
  m_failed : Metrics.counter;
  m_degraded : Metrics.counter;
  m_wait_us : Metrics.histogram;
}

let create ~policy ~queue_depth =
  let r = Metrics.default in
  {
    mu = Mutex.create ();
    nonempty = Condition.create ();
    done_cond = Condition.create ();
    queue = Rq.create ~depth:queue_depth;
    policy;
    poll_s =
      1e-6 *. Float.min 200. (Float.max 50. (Batcher.max_wait_us policy /. 4.));
    outcomes = Hashtbl.create 64;
    outstanding = 0;
    draining = false;
    stopped = false;
    submitted = 0;
    rejected = 0;
    shed = 0;
    completed = 0;
    failed = 0;
    degraded = 0;
    batches = 0;
    m_depth = Metrics.gauge r "serve.queue_depth";
    m_submitted = Metrics.counter r "serve.submitted";
    m_rejected = Metrics.counter r "serve.rejected";
    m_shed = Metrics.counter r "serve.shed";
    m_completed = Metrics.counter r "serve.completed";
    m_failed = Metrics.counter r "serve.failed";
    m_degraded = Metrics.counter r "serve.degraded";
    m_wait_us = Metrics.histogram r "serve.queue_wait_us";
  }

let now_us () = Unix.gettimeofday () *. 1e6

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
      Mutex.unlock t.mu;
      v
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let publish_depth t = Metrics.set t.m_depth (float_of_int (Rq.length t.queue))

(* Record an outcome under the scheduler lock and wake waiters. *)
let complete_locked t id outcome =
  (match outcome with
  | Request.Done { degraded; _ } ->
      t.completed <- t.completed + 1;
      if degraded then t.degraded <- t.degraded + 1;
      Metrics.inc t.m_completed;
      if degraded then Metrics.inc t.m_degraded
  | Request.Overloaded _ ->
      t.shed <- t.shed + 1;
      Metrics.inc t.m_shed
  | Request.Failed _ ->
      t.failed <- t.failed + 1;
      Metrics.inc t.m_failed);
  Hashtbl.replace t.outcomes id outcome;
  t.outstanding <- t.outstanding - 1;
  Condition.broadcast t.done_cond

let complete t id outcome = locked t (fun () -> complete_locked t id outcome)

let submit t (req : Request.t) =
  locked t (fun () ->
      if t.stopped || t.draining then begin
        t.rejected <- t.rejected + 1;
        Metrics.inc t.m_rejected;
        Error Request.Shutting_down
      end
      else if not (Rq.push t.queue ~model:req.model req) then begin
        t.rejected <- t.rejected + 1;
        Metrics.inc t.m_rejected;
        Error Request.Queue_full
      end
      else begin
        t.submitted <- t.submitted + 1;
        t.outstanding <- t.outstanding + 1;
        Metrics.inc t.m_submitted;
        publish_depth t;
        Condition.signal t.nonempty;
        Ok ()
      end)

(* Shed every queued request past its deadline; their outcome is the
   structured overload, never a silent drop. *)
let shed_expired_locked t =
  let now = now_us () in
  let dead = Rq.remove_if t.queue (Request.expired ~now_us:now) in
  List.iter
    (fun (r : Request.t) ->
      complete_locked t r.id (Request.Overloaded Request.Deadline_exceeded))
    dead;
  if dead <> [] then publish_depth t

(* Under the lock: find the dispatchable model whose head request is the
   oldest (global FIFO fairness across models). *)
let pick_locked t =
  let now = now_us () in
  let draining = t.draining || t.stopped in
  List.fold_left
    (fun best model ->
      match Rq.oldest t.queue ~model with
      | None -> best
      | Some (head : Request.t) -> (
          let pending = Rq.pending t.queue ~model in
          let wait = now -. head.submitted_us in
          match Batcher.decide t.policy ~pending ~oldest_wait_us:wait ~draining with
          | Batcher.Wait -> best
          | Batcher.Dispatch n -> (
              match best with
              | Some (_, _, best_sub) when best_sub <= head.submitted_us -> best
              | _ -> Some (model, n, head.submitted_us))))
    None (Rq.models t.queue)

(* Under the lock: shed, pick, and take the next dispatchable batch. *)
let dispatch_locked t =
  shed_expired_locked t;
  match pick_locked t with
  | None -> None
  | Some (model, n, _) ->
      let requests = Rq.take t.queue ~model ~max:n in
      publish_depth t;
      t.batches <- t.batches + 1;
      let now = now_us () in
      List.iter
        (fun (r : Request.t) ->
          Metrics.observe t.m_wait_us (now -. r.submitted_us))
        requests;
      Some
        {
          model;
          requests;
          bucket = Batcher.bucket t.policy (List.length requests);
        }

(* Block until a batch is ready, the queue has pending-but-waiting work
   (then poll the batching window), or shutdown empties the world. *)
let rec next_batch t =
  let action =
    locked t (fun () ->
        match dispatch_locked t with
        | Some b -> `Batch b
        | None ->
            if Rq.is_empty t.queue then
              if t.stopped then `Exit
              else begin
                (* nothing pending: sleep free of charge *)
                Condition.wait t.nonempty t.mu;
                `Retry
              end
            else `Poll)
  in
  match action with
  | `Batch b -> Some b
  | `Exit -> None
  | `Retry -> next_batch t
  | `Poll ->
      Unix.sleepf t.poll_s;
      next_batch t

(* Non-blocking variant for caller-runs pumping: never sleeps, never
   waits.  [`Waiting] means requests are pending but every batching
   window is still open. *)
let try_next_batch t =
  locked t (fun () ->
      match dispatch_locked t with
      | Some b -> `Batch b
      | None -> if Rq.is_empty t.queue then `Empty else `Waiting)

let poll_interval_s t = t.poll_s
let outstanding t = locked t (fun () -> t.outstanding)

let await t id =
  locked t (fun () ->
      let rec go () =
        match Hashtbl.find_opt t.outcomes id with
        | Some o ->
            Hashtbl.remove t.outcomes id;
            o
        | None ->
            Condition.wait t.done_cond t.mu;
            go ()
      in
      go ())

let poll t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.outcomes id with
      | Some o ->
          Hashtbl.remove t.outcomes id;
          Some o
      | None -> None)

(* Flush everything in flight, then accept again.  While draining,
   submissions are refused ([Shutting_down]) and the batcher dispatches
   immediately instead of holding the window open. *)
let drain_with t ~pump =
  locked t (fun () ->
      t.draining <- true;
      Condition.broadcast t.nonempty);
  pump ();
  locked t (fun () ->
      while t.outstanding > 0 do
        Condition.wait t.done_cond t.mu
      done;
      t.draining <- false)

let drain t = drain_with t ~pump:ignore

let shutdown t =
  locked t (fun () ->
      t.stopped <- true;
      Condition.broadcast t.nonempty;
      Condition.broadcast t.done_cond)

type stats = {
  submitted : int;
  rejected : int;
  shed : int;
  completed : int;
  failed : int;
  degraded : int;
  batches : int;
  outstanding : int;
  queue_depth : int;
  max_depth_seen : int;
}

let stats t =
  locked t (fun () ->
      {
        submitted = t.submitted;
        rejected = t.rejected;
        shed = t.shed;
        completed = t.completed;
        failed = t.failed;
        degraded = t.degraded;
        batches = t.batches;
        outstanding = t.outstanding;
        queue_depth = Rq.length t.queue;
        max_depth_seen = Rq.max_depth_seen t.queue;
      })
